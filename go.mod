module github.com/duoquest/duoquest

go 1.24.0
