// Morsel-parallel grouped existence. The deterministic-merge discipline:
//
//  1. Partition — each worker streams its morsel's matching tuples into a
//     fully private morselPart: per-group row counts, and (only when a
//     HAVING references a concrete column) the matching tuples flattened in
//     visit order. Nothing is shared between workers, so a deadline-expired
//     or witness-cancelled worker can abandon its part on the floor without
//     any possibility of publishing a partial aggregate anywhere shared.
//  2. Merge — partials are stitched together strictly in morsel order.
//     Because morsel order is row order, a group's first appearance across
//     the stitched sequence is its first appearance in the global scan, so
//     group discovery order matches the sequential pipeline exactly; and a
//     group's concatenated tuple buffers list its rows in global scan order.
//  3. Fold — each merged group's tuples are folded through groupAcc
//     sequentially. One group's accumulator state depends only on that
//     group's rows in row order, so every float sum is the same additions
//     in the same order as the single-threaded scan: bit-identical, not
//     merely approximately equal.
//
// The COUNT(*)-only HAVING shape — the verification-probe hot path — never
// buffers tuples at all: row counts are integers, and integer addition is
// associative, so the merge is just a sum per group.
package sqlexec

import (
	"context"
	"math"

	"github.com/duoquest/duoquest/internal/faultinject"
	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/storage"
)

// morselGroup is one group's partial state private to one morsel worker.
type morselGroup[K comparable] struct {
	key    K
	null   bool // the dedicated NULL-key group (single-column keys)
	rows   int
	tuples []int32 // matching tuples flattened in visit order; nil when the
	// HAVINGs only need row counts
}

// morselPart is one morsel's private grouping state; order preserves
// first-appearance order within the morsel.
type morselPart[K comparable] struct {
	byKey map[K]*morselGroup[K]
	nullG *morselGroup[K]
	order []*morselGroup[K]
}

// mergedGroup collects one group's partials across morsels, in morsel order.
type mergedGroup[K comparable] struct {
	parts []*morselGroup[K]
}

// runGroupedMorsels is the generic three-phase grouped pipeline over a key
// type K (float bits, dictionary code, or the multi-column binary encoding).
// newKeyFn builds a per-worker key extractor (workers must not share key
// scratch buffers); the extractor's second result routes NULL cells to the
// dedicated NULL group exactly as the sequential specializations do.
func runGroupedMorsels[K comparable](ctx context.Context, inj *faultinject.Injector,
	plan *streamPlan, eq ExistsQuery, gb groupedBinding, pc *pipelineCounters,
	pool *WorkerPool, morsels []storage.Morsel,
	newKeyFn func() func(tp []int32) (K, bool)) (ok, handled bool, err error) {

	slots := len(plan.tables)
	needTuples := len(gb.cols) > 0
	parts := make([]*morselPart[K], len(morsels))

	res := runMorsels(ctx, pool, morsels, func(mctx context.Context, m int) (bool, error) {
		keyFn := newKeyFn()
		part := &morselPart[K]{byKey: make(map[K]*morselGroup[K])}
		parts[m] = part
		_, rerr := plan.runRange(mctx, inj, pc, morsels[m].Lo, morsels[m].Hi, func(tp []int32) (bool, error) {
			k, isNull := keyFn(tp)
			var g *morselGroup[K]
			if isNull {
				if part.nullG == nil {
					part.nullG = &morselGroup[K]{null: true}
					part.order = append(part.order, part.nullG)
				}
				g = part.nullG
			} else {
				g = part.byKey[k]
				if g == nil {
					g = &morselGroup[K]{key: k}
					part.byKey[k] = g
					part.order = append(part.order, g)
				}
			}
			g.rows++
			if needTuples {
				g.tuples = append(g.tuples, tp...)
			}
			return false, nil
		})
		return false, rerr
	})
	pc.addMorselRun(res)
	if res.err != nil {
		return false, true, res.err
	}

	// Merge in morsel order: global first-appearance group order.
	var order []*mergedGroup[K]
	byKey := make(map[K]*mergedGroup[K])
	var nullM *mergedGroup[K]
	for _, part := range parts {
		if part == nil {
			continue
		}
		for _, g := range part.order {
			var mg *mergedGroup[K]
			if g.null {
				if nullM == nil {
					nullM = &mergedGroup[K]{}
					order = append(order, nullM)
				}
				mg = nullM
			} else {
				mg = byKey[g.key]
				if mg == nil {
					mg = &mergedGroup[K]{}
					byKey[g.key] = mg
					order = append(order, mg)
				}
			}
			mg.parts = append(mg.parts, g)
		}
	}

	// Fold each merged group sequentially in global row order.
	states := make([]*groupState, 0, len(order)+1)
	if len(eq.GroupBy) == 0 && len(order) == 0 {
		// SQL's implicit single group exists even over zero rows.
		states = append(states, &groupState{accs: make([]groupAcc, len(gb.cols))})
	}
	for _, mg := range order {
		st := &groupState{accs: make([]groupAcc, len(gb.cols))}
		for _, g := range mg.parts {
			st.rows += g.rows
			for t := 0; t < len(g.tuples); t += slots {
				tp := g.tuples[t : t+slots]
				for i := range gb.cols {
					st.accs[i].observe(gb.cols[i].vec.Value(int(tp[gb.cols[i].slot])))
				}
			}
		}
		states = append(states, st)
	}
	return checkGroupHavings(states, gb.refs, gb.colAt, eq)
}

// streamGroupedExistsMorsels dispatches a grouped existence probe to the
// key-shape specialization, mirroring streamGroupedExists's getState
// switch: implicit single group, single numeric key by float bits (NaN
// canonicalized, -0 collapsed onto +0), single text key by dictionary code,
// and the multi-column fixed-width binary encoding. Sub-morsel domains run
// the sequential pipeline unchanged.
func streamGroupedExistsMorsels(ctx context.Context, inj *faultinject.Injector,
	plan *streamPlan, eq ExistsQuery, pc *pipelineCounters, pool *WorkerPool, msize int) (ok, handled bool, err error) {
	gb, bok := bindGrouped(plan, eq)
	if !bok {
		return false, false, nil
	}
	morsels := storage.Morsels(plan.domainLen(), msize)
	if len(morsels) < 2 {
		return streamGroupedExists(ctx, inj, plan, eq, pc)
	}
	switch {
	case len(eq.GroupBy) == 0:
		return runGroupedMorsels(ctx, inj, plan, eq, gb, pc, pool, morsels,
			func() func(tp []int32) (struct{}, bool) {
				return func([]int32) (struct{}, bool) { return struct{}{}, false }
			})
	case len(gb.keys) == 1 && gb.keys[0].vec.Type() == sqlir.TypeNumber:
		k := gb.keys[0]
		nan := math.Float64bits(math.NaN())
		return runGroupedMorsels(ctx, inj, plan, eq, gb, pc, pool, morsels,
			func() func(tp []int32) (uint64, bool) {
				return func(tp []int32) (uint64, bool) {
					ri := int(tp[k.slot])
					if k.vec.IsNull(ri) {
						return 0, true
					}
					f := k.vec.Num(ri)
					if f != f {
						return nan, false // all NaNs share one group
					}
					if f == 0 {
						f = 0 // collapse -0.0 onto +0.0, as Value.Equal does
					}
					return math.Float64bits(f), false
				}
			})
	case len(gb.keys) == 1 && gb.keys[0].vec.Type() == sqlir.TypeText:
		k := gb.keys[0]
		return runGroupedMorsels(ctx, inj, plan, eq, gb, pc, pool, morsels,
			func() func(tp []int32) (uint32, bool) {
				return func(tp []int32) (uint32, bool) {
					ri := int(tp[k.slot])
					if k.vec.IsNull(ri) {
						return 0, true
					}
					return k.vec.Code(ri), false
				}
			})
	default:
		keys := gb.keys
		return runGroupedMorsels(ctx, inj, plan, eq, gb, pc, pool, morsels,
			func() func(tp []int32) (string, bool) {
				var buf []byte // worker-local: extractors never share scratch
				return func(tp []int32) (string, bool) {
					buf = buf[:0]
					for _, k := range keys {
						buf = appendVecKey(buf, k.vec, int(tp[k.slot]))
					}
					// NULL cells are part of the binary encoding ('z'),
					// exactly as the sequential multi-column path groups them.
					return string(buf), false
				}
			})
	}
}
