package sqlexec

import (
	"context"
	"fmt"

	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/storage"
)

// ExistsQuery is the shape of the verifier's column-wise and row-wise
// verification queries (Examples 3.5 and 3.6): SELECT 1 FROM <path>
// WHERE (<preds joined by Conj>) AND <and-preds> [GROUP BY <cols>
// HAVING <conds>] LIMIT 1. AndPreds carries the example-tuple cell
// constraints, which are conjoined with the candidate query's own WHERE
// clause regardless of its connective; Having conditions are always
// conjoined.
type ExistsQuery struct {
	From     *sqlir.JoinPath
	Conj     sqlir.LogicalOp
	Preds    []sqlir.Predicate
	AndPreds []sqlir.Predicate
	GroupBy  []sqlir.ColumnRef
	Havings  []sqlir.HavingExpr
}

// Exists reports whether the query produces at least one row (the LIMIT 1
// early-exit the paper uses to keep verification cheap, §3.4). Probes run
// through the streaming index-nested-loop pipeline; query shapes the
// pipeline cannot compile fall back to materialize-then-filter, which is
// also kept as the reference oracle for differential tests.
func Exists(db *storage.Database, eq ExistsQuery) (bool, error) {
	return ExistsCtx(context.Background(), db, eq)
}

// ExistsCtx is Exists under a request context: probe and row loops poll ctx
// at checkpoint boundaries and unwind with ctx.Err() when it is done.
func ExistsCtx(ctx context.Context, db *storage.Database, eq ExistsQuery) (bool, error) {
	return existsWith(ctx, db, eq, nil, func(jp *sqlir.JoinPath) (*relation, error) {
		return join(ctx, db, jp, &discardCounters)
	})
}

// existsWith runs the shared Exists driver: predicate completeness checks,
// the streaming fast path, then the materializing fallback provided by the
// caller (a fresh join, or a JoinCache materialization).
func existsWith(ctx context.Context, db *storage.Database, eq ExistsQuery, pc *pipelineCounters, materialize func(*sqlir.JoinPath) (*relation, error)) (bool, error) {
	if pc == nil {
		pc = &discardCounters
	}
	for _, p := range eq.Preds {
		if !p.Complete() {
			return false, errIncomplete(p)
		}
	}
	for _, p := range eq.AndPreds {
		if !p.Complete() {
			return false, errIncomplete(p)
		}
	}
	if ok, handled, err := streamExists(ctx, db, eq, pc); handled {
		pc.add(&pc.streamed, 1)
		return ok, err
	}
	pc.add(&pc.fallback, 1)
	rel, err := materialize(eq.From)
	if err != nil {
		return false, err
	}
	return existsOn(ctx, db, rel, eq)
}

func errIncomplete(p sqlir.Predicate) error {
	return fmt.Errorf("sqlexec: exists query has incomplete predicate %s", p)
}

// existsOn evaluates an exists query against a pre-materialized relation.
func existsOn(ctx context.Context, db *storage.Database, rel *relation, eq ExistsQuery) (bool, error) {
	w := sqlir.Where{Conj: eq.Conj, ConjSet: true, Preds: eq.Preds, CountSet: true}
	wAnd := sqlir.Where{Conj: sqlir.LogicAnd, ConjSet: true, Preds: eq.AndPreds, CountSet: true}
	cc := newCanceller(ctx)

	// match evaluates WHERE (Preds by Conj) AND (AndPreds conjoined).
	match := func(tp tuple) (bool, error) {
		if err := cc.tick(); err != nil {
			return false, err
		}
		if len(eq.Preds) > 0 {
			ok, err := evalWhere(db, rel, tp, w)
			if err != nil || !ok {
				return false, err
			}
		}
		if len(eq.AndPreds) > 0 {
			ok, err := evalWhere(db, rel, tp, wAnd)
			if err != nil || !ok {
				return false, err
			}
		}
		return true, nil
	}

	if len(eq.GroupBy) == 0 && len(eq.Havings) == 0 {
		// Short-circuit on the first matching joined row.
		for _, tp := range rel.tuples {
			ok, err := match(tp)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	}

	var rows []tuple
	for _, tp := range rel.tuples {
		ok, err := match(tp)
		if err != nil {
			return false, err
		}
		if ok {
			rows = append(rows, tp)
		}
	}
	groups, err := groupRows(db, rel, rows, eq.GroupBy)
	if err != nil {
		return false, err
	}
	for _, g := range groups {
		if len(g) == 0 && len(eq.GroupBy) > 0 {
			continue
		}
		pass := true
		for _, h := range eq.Havings {
			hv, err := evalAggregate(db, rel, g, h.Agg, h.Col)
			if err != nil {
				return false, err
			}
			if !h.Op.Eval(hv, h.Val) {
				pass = false
				break
			}
		}
		if pass && (len(g) > 0 || len(eq.GroupBy) == 0) {
			return true, nil
		}
	}
	return false, nil
}
