// Pre-columnar row-based streaming executor, preserved verbatim as a frozen
// baseline: it probes the value-keyed hash indexes (storage.Table.Index)
// and reads cells through the row adapter (Table.Row), exactly as the
// production pipeline did before the columnar storage refactor. It is not
// on any production path — the differential tests use it as a third oracle
// (columnar streaming == row streaming == materializing reference) and the
// BenchmarkColumnar* suite measures the columnar path's speedup against it.
package sqlexec

import (
	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/storage"
)

// rowBoundPred is the row-path compiled predicate: slot and column ordinal
// resolved once, per-tuple evaluation via the shared row slices.
type rowBoundPred struct {
	slot int
	col  int
	op   sqlir.Op
	val  sqlir.Value
}

func (bp rowBoundPred) eval(p *rowStreamPlan, tp []int32) bool {
	v := p.tables[bp.slot].Row(int(tp[bp.slot]))[bp.col]
	return bp.op.Eval(v, bp.val)
}

// rowStreamStep extends a partial tuple by one join edge through the
// value-keyed hash index.
type rowStreamStep struct {
	probeSlot int
	probeCol  int
	index     map[sqlir.Value][]int32
}

// rowStreamPlan is the row-path compiled existence probe.
type rowStreamPlan struct {
	slots  map[string]int
	tables []*storage.Table

	steps []rowStreamStep

	rootRows []int32
	seeded   bool

	predsAt [][]rowBoundPred
	orPreds []rowBoundPred
	orDepth int
}

func (p *rowStreamPlan) bindCol(c sqlir.ColumnRef) (int, int, error) {
	slot, ok := p.slots[c.Table]
	if !ok {
		return 0, 0, errColNotInPath(c)
	}
	ci := p.tables[slot].ColumnIndex(c.Column)
	if ci < 0 {
		return 0, 0, errUnknownCol(c)
	}
	return slot, ci, nil
}

// buildRowStreamPlan compiles an exists query against the row
// representation (see buildStreamPlan for the planning rules — the two
// planners are kept line-for-line parallel).
func buildRowStreamPlan(db *storage.Database, eq ExistsQuery, canReorder bool) (*rowStreamPlan, error) {
	jp := eq.From
	pes, inSet, err := orientEdges(db, jp)
	if err != nil {
		return nil, err
	}

	andPreds, orRaw := splitPreds(eq)

	root := jp.Tables[0]
	var rootRows []int32
	seeded, best := false, -1
	for _, p := range andPreds {
		if p.Op != sqlir.OpEq || p.Val.IsNull() || !inSet[p.Col.Table] {
			continue
		}
		if !canReorder && p.Col.Table != jp.Tables[0] {
			continue
		}
		t := db.Table(p.Col.Table)
		if t == nil || t.ColumnIndex(p.Col.Column) < 0 {
			continue
		}
		idx, ierr := t.Index(p.Col.Column)
		if ierr != nil {
			continue
		}
		postings := idx[p.Val]
		if best < 0 || len(postings) < best {
			best = len(postings)
			root = p.Col.Table
			rootRows = postings
			seeded = true
		}
	}

	plan := &rowStreamPlan{slots: make(map[string]int, len(jp.Tables)), seeded: seeded, rootRows: rootRows}
	addTable := func(name string) {
		plan.slots[name] = len(plan.tables)
		plan.tables = append(plan.tables, db.Table(name))
	}
	addStep := func(parent string, parentCol string, child string, childCol string) error {
		pt, ct := db.Table(parent), db.Table(child)
		probeCol := pt.ColumnIndex(parentCol)
		ci := ct.ColumnIndex(childCol)
		if probeCol < 0 || ci < 0 {
			return errEdgeUnknownColumn()
		}
		idx, ierr := ct.Index(childCol)
		if ierr != nil {
			return ierr
		}
		probeSlot := plan.slots[parent]
		addTable(child)
		plan.steps = append(plan.steps, rowStreamStep{probeSlot: probeSlot, probeCol: probeCol, index: idx})
		return nil
	}

	addTable(root)
	if err := walkJoinTree(jp, pes, root, addStep); err != nil {
		return nil, err
	}

	plan.predsAt = make([][]rowBoundPred, len(plan.tables))
	for _, p := range andPreds {
		bp, berr := plan.bindPred(p)
		if berr != nil {
			return nil, berr
		}
		plan.predsAt[bp.slot] = append(plan.predsAt[bp.slot], bp)
	}
	for _, p := range orRaw {
		bp, berr := plan.bindPred(p)
		if berr != nil {
			return nil, berr
		}
		plan.orPreds = append(plan.orPreds, bp)
		if bp.slot > plan.orDepth {
			plan.orDepth = bp.slot
		}
	}
	return plan, nil
}

func (p *rowStreamPlan) bindPred(pr sqlir.Predicate) (rowBoundPred, error) {
	slot, ci, err := p.bindCol(pr.Col)
	if err != nil {
		return rowBoundPred{}, err
	}
	return rowBoundPred{slot: slot, col: ci, op: pr.Op, val: pr.Val}, nil
}

// run enumerates joined tuples depth-first through the value-keyed
// indexes, exactly as the pre-columnar pipeline did.
func (p *rowStreamPlan) run(pc *pipelineCounters, emit func(tp []int32) (stop bool, err error)) error {
	tp := make([]int32, len(p.tables))
	var probes int64

	check := func(depth int) bool {
		for _, bp := range p.predsAt[depth] {
			if !bp.eval(p, tp) {
				return false
			}
		}
		if len(p.orPreds) > 0 && depth == p.orDepth {
			hit := false
			for _, bp := range p.orPreds {
				if bp.eval(p, tp) {
					hit = true
					break
				}
			}
			if !hit {
				return false
			}
		}
		return true
	}

	var rec func(depth int) (bool, error)
	rec = func(depth int) (bool, error) {
		if depth == len(p.tables) {
			return emit(tp)
		}
		step := p.steps[depth-1]
		v := p.tables[step.probeSlot].Row(int(tp[step.probeSlot]))[step.probeCol]
		if v.IsNull() {
			return false, nil
		}
		probes++
		for _, ri := range step.index[v] {
			tp[depth] = ri
			if !check(depth) {
				continue
			}
			stop, err := rec(depth + 1)
			if stop || err != nil {
				return stop, err
			}
		}
		return false, nil
	}

	visit := func(ri int32) (bool, error) {
		tp[0] = ri
		if !check(0) {
			return false, nil
		}
		return rec(1)
	}

	defer func() { pc.add(&pc.indexProbes, probes) }()
	if p.seeded {
		for _, ri := range p.rootRows {
			if stop, err := visit(ri); stop || err != nil {
				return err
			}
		}
		return nil
	}
	for i, n := 0, p.tables[0].NumRows(); i < n; i++ {
		if stop, err := visit(int32(i)); stop || err != nil {
			return err
		}
	}
	return nil
}

// rowStreamExists answers an exists query through the preserved row-based
// pipeline, with the same handled/fallback contract as streamExists.
func rowStreamExists(db *storage.Database, eq ExistsQuery, pc *pipelineCounters) (ok, handled bool, err error) {
	grouped := len(eq.GroupBy) > 0 || len(eq.Havings) > 0
	plan, perr := buildRowStreamPlan(db, eq, !grouped)
	if perr != nil {
		return false, false, nil
	}
	if !grouped {
		if plan.seeded {
			pc.add(&pc.indexSeeds, 1)
		}
		found := false
		rerr := plan.run(pc, func([]int32) (bool, error) {
			found = true
			return true, nil
		})
		return found, true, rerr
	}
	ok, handled, err = rowStreamGroupedExists(plan, eq, pc)
	if handled && plan.seeded {
		pc.add(&pc.indexSeeds, 1)
	}
	return ok, handled, err
}

// rowStreamGroupedExists streams matching tuples into per-group aggregate
// states using the string-built group keys of the pre-columnar pipeline.
func rowStreamGroupedExists(plan *rowStreamPlan, eq ExistsQuery, pc *pipelineCounters) (ok, handled bool, err error) {
	type keyCol struct{ slot, col int }
	keys := make([]keyCol, 0, len(eq.GroupBy))
	for _, g := range eq.GroupBy {
		slot, ci, berr := plan.bindCol(g)
		if berr != nil {
			return false, false, nil
		}
		keys = append(keys, keyCol{slot, ci})
	}

	type aggCol struct{ slot, col int }
	var cols []aggCol
	var refs []sqlir.ColumnRef
	colAt := map[sqlir.ColumnRef]int{}
	for _, h := range eq.Havings {
		if h.Col.IsStar() {
			if h.Agg != sqlir.AggCount {
				return false, false, nil
			}
			continue
		}
		if h.Agg > sqlir.AggAvg {
			return false, false, nil
		}
		if _, seen := colAt[h.Col]; !seen {
			slot, ci, berr := plan.bindCol(h.Col)
			if berr != nil {
				return false, false, nil
			}
			colAt[h.Col] = len(cols)
			cols = append(cols, aggCol{slot: slot, col: ci})
			refs = append(refs, h.Col)
		}
	}

	states := map[string]*groupState{}
	var order []*groupState
	if len(eq.GroupBy) == 0 {
		st := &groupState{accs: make([]groupAcc, len(cols))}
		states[""] = st
		order = append(order, st)
	}

	var keyBuf []byte
	rerr := plan.run(pc, func(tp []int32) (bool, error) {
		keyBuf = keyBuf[:0]
		for _, k := range keys {
			v := plan.tables[k.slot].Row(int(tp[k.slot]))[k.col]
			keyBuf = appendValueKey(keyBuf, v)
		}
		st, seen := states[string(keyBuf)]
		if !seen {
			st = &groupState{accs: make([]groupAcc, len(cols))}
			states[string(keyBuf)] = st
			order = append(order, st)
		}
		st.rows++
		for i := range cols {
			c := &cols[i]
			v := plan.tables[c.slot].Row(int(tp[c.slot]))[c.col]
			st.accs[i].observe(v)
		}
		return false, nil
	})
	if rerr != nil {
		return false, true, rerr
	}
	return checkGroupHavings(order, refs, colAt, eq)
}
