package sqlexec

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/sqlparse"
	"github.com/duoquest/duoquest/internal/storage"
)

// wideDB builds a parent/child pair whose join materializes well past the
// cancellation checkpoint granularity, so a dead request context is
// guaranteed to be noticed mid-build.
func wideDB(t *testing.T) *storage.Database {
	t.Helper()
	parent := storage.NewTable("parent", "pid",
		storage.Column{Name: "pid", Type: sqlir.TypeNumber},
		storage.Column{Name: "name", Type: sqlir.TypeText},
	)
	child := storage.NewTable("child", "cid",
		storage.Column{Name: "cid", Type: sqlir.TypeNumber},
		storage.Column{Name: "pid", Type: sqlir.TypeNumber},
		storage.Column{Name: "v", Type: sqlir.TypeNumber},
	)
	s := storage.NewSchema(parent, child)
	s.AddForeignKey("child", "pid", "parent", "pid")
	const parents, children = 8, 4 * checkpointRows
	for i := 0; i < parents; i++ {
		parent.MustInsert(num(float64(i)), text("p"))
	}
	for i := 0; i < children; i++ {
		child.MustInsert(num(float64(i)), num(float64(i%parents)), num(float64(i)))
	}
	return storage.NewDatabase("wide", s)
}

// TestCancelledRequestDoesNotPoisonJoinCache: a request that dies mid-join
// must report its own cancellation, and the shared JoinCache must not memoize
// that fate — the next healthy request over the same join path recomputes and
// gets the full answer.
func TestCancelledRequestDoesNotPoisonJoinCache(t *testing.T) {
	db := wideDB(t)
	q := sqlparse.MustParse(db.Schema,
		"SELECT parent.name FROM parent JOIN child ON child.pid = parent.pid")
	want, err := Execute(db, q)
	if err != nil {
		t.Fatal(err)
	}

	c := NewJoinCache(db)
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.ExecuteCtx(dead, q); !errors.Is(err, context.Canceled) {
		t.Fatalf("ExecuteCtx under cancelled ctx: err = %v, want context.Canceled", err)
	}

	res, err := c.Execute(q)
	if err != nil {
		t.Fatalf("healthy Execute after cancelled one: %v", err)
	}
	if len(res.Rows) != len(want.Rows) {
		t.Fatalf("healthy Execute returned %d rows, want %d (cache poisoned?)",
			len(res.Rows), len(want.Rows))
	}
}

// TestExpiredDeadlineDoesNotPoisonJoinCache is the deadline-expiry twin: the
// error surfaces as DeadlineExceeded and is equally never memoized.
func TestExpiredDeadlineDoesNotPoisonJoinCache(t *testing.T) {
	db := wideDB(t)
	q := sqlparse.MustParse(db.Schema,
		"SELECT parent.name FROM parent JOIN child ON child.pid = parent.pid")

	c := NewJoinCache(db)
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := c.ExecuteCtx(expired, q); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ExecuteCtx under expired deadline: err = %v, want DeadlineExceeded", err)
	}

	eq := ExistsQuery{
		From:  pathOf("child"),
		Preds: []sqlir.Predicate{pred("child", "v", sqlir.OpEq, num(-1))},
	}
	if _, err := c.ExistsCtx(expired, eq); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ExistsCtx under expired deadline: err = %v, want DeadlineExceeded", err)
	}
	ok, err := c.Exists(eq)
	if err != nil {
		t.Fatalf("healthy Exists after expired one: %v", err)
	}
	if ok {
		t.Fatal("Exists found a row that is not there")
	}
}

// morselCtx attaches a wide morsel fan-out with deliberately tiny morsels to
// a request context, so many workers hold partial states when the request's
// fate lands.
func morselCtx(ctx context.Context) context.Context {
	return WithMorselSize(WithPool(ctx, NewWorkerPool(8, 0)), 64)
}

// TestExpiredDeadlineMorselWorkersDoNotPoison extends the poison fixtures to
// the morsel merge path: a deadline-expired request whose morsel workers are
// holding private partial aggregate states must surface DeadlineExceeded,
// and none of those partial states — nor the transient error itself — may
// leak into the shared JoinCache. The same probes re-asked by healthy
// requests (sequential and morsel-parallel alike) get full, correct answers.
func TestExpiredDeadlineMorselWorkersDoNotPoison(t *testing.T) {
	db := wideDB(t)
	c := NewJoinCache(db)
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()

	// Flat witness probe (miss) and a grouped probe whose merge would
	// accumulate per-morsel partial states across the child table.
	flat := ExistsQuery{
		From:  pathOf("child"),
		Preds: []sqlir.Predicate{pred("child", "v", sqlir.OpEq, num(-1))},
	}
	grouped := ExistsQuery{
		From:    pathOf("child"),
		GroupBy: []sqlir.ColumnRef{{Table: "child", Column: "pid"}},
		Havings: []sqlir.HavingExpr{{
			Agg: sqlir.AggCount, AggSet: true, Col: sqlir.Star, ColSet: true,
			Op: sqlir.OpGe, OpSet: true, Val: num(float64(checkpointRows / 4)), ValSet: true,
		}},
	}
	for name, eq := range map[string]ExistsQuery{"flat": flat, "grouped": grouped} {
		if _, err := c.ExistsCtx(morselCtx(expired), eq); !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("%s: ExistsCtx under expired deadline: err = %v, want DeadlineExceeded", name, err)
		}
	}

	// Healthy requests over the same cache: sequential and morsel-parallel
	// must both recompute and agree with the reference.
	for name, eq := range map[string]ExistsQuery{"flat": flat, "grouped": grouped} {
		want, err := ExistsReference(db, eq)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Exists(eq)
		if err != nil {
			t.Fatalf("%s: healthy sequential Exists after expired one: %v", name, err)
		}
		if got != want {
			t.Fatalf("%s: sequential after expiry = %v, want %v (poisoned?)", name, got, want)
		}
		mgot, err := c.ExistsCtx(morselCtx(context.Background()), eq)
		if err != nil {
			t.Fatalf("%s: healthy morsel Exists after expired one: %v", name, err)
		}
		if mgot != want {
			t.Fatalf("%s: morsel after expiry = %v, want %v (poisoned?)", name, mgot, want)
		}
	}
}

// TestCancelledMorselExecuteDoesNotPoisonJoinCache is the Execute-path twin:
// a cancelled morsel-parallel materialization must not memoize a truncated
// relation, and the next healthy morsel-parallel Execute sees every row.
func TestCancelledMorselExecuteDoesNotPoisonJoinCache(t *testing.T) {
	db := wideDB(t)
	q := sqlparse.MustParse(db.Schema,
		"SELECT parent.name FROM parent JOIN child ON child.pid = parent.pid")
	want, err := Execute(db, q)
	if err != nil {
		t.Fatal(err)
	}

	c := NewJoinCache(db)
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.ExecuteCtx(morselCtx(dead), q); !errors.Is(err, context.Canceled) {
		t.Fatalf("morsel ExecuteCtx under cancelled ctx: err = %v, want context.Canceled", err)
	}

	res, err := c.ExecuteCtx(morselCtx(context.Background()), q)
	if err != nil {
		t.Fatalf("healthy morsel Execute after cancelled one: %v", err)
	}
	if len(res.Rows) != len(want.Rows) {
		t.Fatalf("healthy morsel Execute returned %d rows, want %d (cache poisoned?)",
			len(res.Rows), len(want.Rows))
	}
}
