package sqlexec

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/sqlparse"
	"github.com/duoquest/duoquest/internal/storage"
)

// wideDB builds a parent/child pair whose join materializes well past the
// cancellation checkpoint granularity, so a dead request context is
// guaranteed to be noticed mid-build.
func wideDB(t *testing.T) *storage.Database {
	t.Helper()
	parent := storage.NewTable("parent", "pid",
		storage.Column{Name: "pid", Type: sqlir.TypeNumber},
		storage.Column{Name: "name", Type: sqlir.TypeText},
	)
	child := storage.NewTable("child", "cid",
		storage.Column{Name: "cid", Type: sqlir.TypeNumber},
		storage.Column{Name: "pid", Type: sqlir.TypeNumber},
		storage.Column{Name: "v", Type: sqlir.TypeNumber},
	)
	s := storage.NewSchema(parent, child)
	s.AddForeignKey("child", "pid", "parent", "pid")
	const parents, children = 8, 4 * checkpointRows
	for i := 0; i < parents; i++ {
		parent.MustInsert(num(float64(i)), text("p"))
	}
	for i := 0; i < children; i++ {
		child.MustInsert(num(float64(i)), num(float64(i%parents)), num(float64(i)))
	}
	return storage.NewDatabase("wide", s)
}

// TestCancelledRequestDoesNotPoisonJoinCache: a request that dies mid-join
// must report its own cancellation, and the shared JoinCache must not memoize
// that fate — the next healthy request over the same join path recomputes and
// gets the full answer.
func TestCancelledRequestDoesNotPoisonJoinCache(t *testing.T) {
	db := wideDB(t)
	q := sqlparse.MustParse(db.Schema,
		"SELECT parent.name FROM parent JOIN child ON child.pid = parent.pid")
	want, err := Execute(db, q)
	if err != nil {
		t.Fatal(err)
	}

	c := NewJoinCache(db)
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.ExecuteCtx(dead, q); !errors.Is(err, context.Canceled) {
		t.Fatalf("ExecuteCtx under cancelled ctx: err = %v, want context.Canceled", err)
	}

	res, err := c.Execute(q)
	if err != nil {
		t.Fatalf("healthy Execute after cancelled one: %v", err)
	}
	if len(res.Rows) != len(want.Rows) {
		t.Fatalf("healthy Execute returned %d rows, want %d (cache poisoned?)",
			len(res.Rows), len(want.Rows))
	}
}

// TestExpiredDeadlineDoesNotPoisonJoinCache is the deadline-expiry twin: the
// error surfaces as DeadlineExceeded and is equally never memoized.
func TestExpiredDeadlineDoesNotPoisonJoinCache(t *testing.T) {
	db := wideDB(t)
	q := sqlparse.MustParse(db.Schema,
		"SELECT parent.name FROM parent JOIN child ON child.pid = parent.pid")

	c := NewJoinCache(db)
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := c.ExecuteCtx(expired, q); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ExecuteCtx under expired deadline: err = %v, want DeadlineExceeded", err)
	}

	eq := ExistsQuery{
		From:  pathOf("child"),
		Preds: []sqlir.Predicate{pred("child", "v", sqlir.OpEq, num(-1))},
	}
	if _, err := c.ExistsCtx(expired, eq); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ExistsCtx under expired deadline: err = %v, want DeadlineExceeded", err)
	}
	ok, err := c.Exists(eq)
	if err != nil {
		t.Fatalf("healthy Exists after expired one: %v", err)
	}
	if ok {
		t.Fatal("Exists found a row that is not there")
	}
}
