package sqlexec

import (
	"context"

	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/storage"
)

// Hooks for the external test package (differential tests and paired
// benchmarks): direct access to the materialize-then-filter reference path,
// bypassing the streaming pipeline.

// ReferenceRelation wraps a materialized join for repeated probing — the
// pre-streaming JoinCache behavior.
type ReferenceRelation struct {
	db  *storage.Database
	rel *relation
}

// MaterializeReference materializes a join path through the reference
// executor.
func MaterializeReference(db *storage.Database, jp *sqlir.JoinPath) (*ReferenceRelation, error) {
	rel, err := join(context.Background(), db, jp, &discardCounters)
	if err != nil {
		return nil, err
	}
	return &ReferenceRelation{db: db, rel: rel}, nil
}

// ExistsOnReference scans a pre-materialized join for a witness, exactly as
// the pre-streaming executor did.
func (r *ReferenceRelation) ExistsOnReference(eq ExistsQuery) (bool, error) {
	return existsOn(context.Background(), r.db, r.rel, eq)
}

// ExistsStreaming answers through the vectorized columnar streaming
// pipeline only. handled=false means the probe did not compile and would
// fall back to the materializing path.
func ExistsStreaming(db *storage.Database, eq ExistsQuery) (ok, handled bool, err error) {
	return streamExists(context.Background(), db, eq, &discardCounters)
}

// ExistsRowStream answers through the preserved pre-columnar row-based
// streaming pipeline (rowstream.go) — the baseline the columnar path is
// benchmarked and differentially tested against.
func ExistsRowStream(db *storage.Database, eq ExistsQuery) (ok, handled bool, err error) {
	return rowStreamExists(db, eq, &discardCounters)
}

// ExistsReference answers an exists query by materializing the join and
// filtering — the reference oracle for the streaming pipeline.
func ExistsReference(db *storage.Database, eq ExistsQuery) (bool, error) {
	for _, p := range eq.Preds {
		if !p.Complete() {
			return false, errIncomplete(p)
		}
	}
	for _, p := range eq.AndPreds {
		if !p.Complete() {
			return false, errIncomplete(p)
		}
	}
	rel, err := join(context.Background(), db, eq.From, &discardCounters)
	if err != nil {
		return false, err
	}
	return existsOn(context.Background(), db, rel, eq)
}

// ExistsMorsel answers through the morsel-parallel columnar pipeline with an
// explicit worker count and morsel size — the hook the differential and
// property tests drive at morsel sizes down to a single row. handled=false
// means the probe did not compile (same shapes as ExistsStreaming).
func ExistsMorsel(db *storage.Database, eq ExistsQuery, workers, morselSize int) (ok, handled bool, err error) {
	ctx := WithMorselSize(WithPool(context.Background(), NewWorkerPool(workers, 0)), morselSize)
	return streamExists(ctx, db, eq, &discardCounters)
}

// ExistsMorselCtx is ExistsMorsel under a caller context (cancellation and
// poison tests derive deadlines and carry fault injectors).
func ExistsMorselCtx(ctx context.Context, db *storage.Database, eq ExistsQuery, workers, morselSize int) (ok, handled bool, err error) {
	ctx = WithMorselSize(WithPool(ctx, NewWorkerPool(workers, 0)), morselSize)
	return streamExists(ctx, db, eq, &discardCounters)
}
