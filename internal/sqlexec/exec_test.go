package sqlexec

import (
	"strings"
	"testing"

	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/sqlparse"
	"github.com/duoquest/duoquest/internal/storage"
)

func text(s string) sqlir.Value { return sqlir.NewText(s) }
func num(f float64) sqlir.Value { return sqlir.NewNumber(f) }

// movieDB builds the §2 movie database with the motivating example's data.
func movieDB() *storage.Database {
	actor := storage.NewTable("actor", "aid",
		storage.Column{Name: "aid", Type: sqlir.TypeNumber},
		storage.Column{Name: "name", Type: sqlir.TypeText},
		storage.Column{Name: "gender", Type: sqlir.TypeText},
		storage.Column{Name: "birth_yr", Type: sqlir.TypeNumber},
	)
	movie := storage.NewTable("movie", "mid",
		storage.Column{Name: "mid", Type: sqlir.TypeNumber},
		storage.Column{Name: "title", Type: sqlir.TypeText},
		storage.Column{Name: "year", Type: sqlir.TypeNumber},
		storage.Column{Name: "revenue", Type: sqlir.TypeNumber},
	)
	starring := storage.NewTable("starring", "sid",
		storage.Column{Name: "sid", Type: sqlir.TypeNumber},
		storage.Column{Name: "aid", Type: sqlir.TypeNumber},
		storage.Column{Name: "mid", Type: sqlir.TypeNumber},
	)
	s := storage.NewSchema(actor, movie, starring)
	s.AddForeignKey("starring", "aid", "actor", "aid")
	s.AddForeignKey("starring", "mid", "movie", "mid")

	actor.MustInsert(num(1), text("Tom Hanks"), text("male"), num(1956))
	actor.MustInsert(num(2), text("Sandra Bullock"), text("female"), num(1964))
	actor.MustInsert(num(3), text("Brad Pitt"), text("male"), num(1963))

	movie.MustInsert(num(1), text("Forrest Gump"), num(1994), num(678))
	movie.MustInsert(num(2), text("Gravity"), num(2013), num(723))
	movie.MustInsert(num(3), text("Fight Club"), num(1999), num(101))
	movie.MustInsert(num(4), text("Cast Away"), num(2000), num(429))

	starring.MustInsert(num(1), num(1), num(1)) // Hanks in Forrest Gump
	starring.MustInsert(num(2), num(2), num(2)) // Bullock in Gravity
	starring.MustInsert(num(3), num(3), num(3)) // Pitt in Fight Club
	starring.MustInsert(num(4), num(1), num(4)) // Hanks in Cast Away

	return storage.NewDatabase("movies", s)
}

func run(t *testing.T, db *storage.Database, sql string) *Result {
	t.Helper()
	q, err := sqlparse.Parse(db.Schema, sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	res, err := Execute(db, q)
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	return res
}

func TestExecuteProjection(t *testing.T) {
	res := run(t, movieDB(), "SELECT title, year FROM movie")
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Types[0] != sqlir.TypeText || res.Types[1] != sqlir.TypeNumber {
		t.Errorf("types = %v", res.Types)
	}
	if !res.Rows[0][0].Equal(text("Forrest Gump")) {
		t.Errorf("row0 = %v", res.Rows[0])
	}
}

func TestExecuteWhereEq(t *testing.T) {
	res := run(t, movieDB(), "SELECT title FROM movie WHERE year = 1994")
	if len(res.Rows) != 1 || !res.Rows[0][0].Equal(text("Forrest Gump")) {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestExecuteWhereOr(t *testing.T) {
	res := run(t, movieDB(), "SELECT title FROM movie WHERE year < 1995 OR year > 2000")
	if len(res.Rows) != 2 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestExecuteWhereAnd(t *testing.T) {
	res := run(t, movieDB(), "SELECT title FROM movie WHERE year > 1995 AND revenue < 200")
	if len(res.Rows) != 1 || !res.Rows[0][0].Equal(text("Fight Club")) {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestExecuteLike(t *testing.T) {
	res := run(t, movieDB(), "SELECT title FROM movie WHERE title LIKE '%gump%'")
	if len(res.Rows) != 1 || !res.Rows[0][0].Equal(text("Forrest Gump")) {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestExecuteTwoHopJoin(t *testing.T) {
	res := run(t, movieDB(),
		"SELECT m.title, a.name FROM actor a JOIN starring s ON a.aid = s.aid JOIN movie m ON s.mid = m.mid WHERE a.name = 'Tom Hanks'")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	titles := map[string]bool{}
	for _, r := range res.Rows {
		titles[r[0].Text] = true
	}
	if !titles["Forrest Gump"] || !titles["Cast Away"] {
		t.Errorf("titles = %v", titles)
	}
}

// TestExecuteMotivatingExample reproduces the paper's §2 example: CQ3
// returns Forrest Gump (male actor, pre-1995) and Gravity (post-2000),
// while CQ1 excludes Gravity (Sandra Bullock is not male).
func TestExecuteMotivatingExample(t *testing.T) {
	db := movieDB()
	cq1 := "SELECT m.title, a.name, m.year FROM actor a JOIN starring s ON a.aid = s.aid JOIN movie m ON s.mid = m.mid " +
		"WHERE a.gender = 'male' AND year < 1995 ORDER BY m.year ASC"
	res := run(t, db, cq1)
	if len(res.Rows) != 1 || !res.Rows[0][0].Equal(text("Forrest Gump")) {
		t.Errorf("CQ1-style rows = %v", res.Rows)
	}
	cq3ish := "SELECT m.title, a.name, m.year FROM actor a JOIN starring s ON a.aid = s.aid JOIN movie m ON s.mid = m.mid " +
		"WHERE m.year < 1995 OR m.year > 2000 ORDER BY m.year ASC"
	res = run(t, db, cq3ish)
	if len(res.Rows) != 2 {
		t.Fatalf("CQ3-style rows = %v", res.Rows)
	}
	if !res.Rows[0][0].Equal(text("Forrest Gump")) || !res.Rows[1][0].Equal(text("Gravity")) {
		t.Errorf("order wrong: %v", res.Rows)
	}
}

func TestExecuteAggregatesNoGroup(t *testing.T) {
	res := run(t, movieDB(), "SELECT COUNT(*), MIN(year), MAX(year), SUM(revenue), AVG(revenue) FROM movie")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	r := res.Rows[0]
	if !r[0].Equal(num(4)) || !r[1].Equal(num(1994)) || !r[2].Equal(num(2013)) {
		t.Errorf("count/min/max = %v", r)
	}
	if !r[3].Equal(num(678 + 723 + 101 + 429)) {
		t.Errorf("sum = %v", r[3])
	}
	if !r[4].Equal(num((678.0 + 723 + 101 + 429) / 4)) {
		t.Errorf("avg = %v", r[4])
	}
}

func TestExecuteCountColumnSkipsNulls(t *testing.T) {
	db := movieDB()
	db.Table("movie").MustInsert(num(9), text("Null Movie"), sqlir.Null(), sqlir.Null())
	res := run(t, db, "SELECT COUNT(year), COUNT(*) FROM movie")
	if !res.Rows[0][0].Equal(num(4)) || !res.Rows[0][1].Equal(num(5)) {
		t.Errorf("counts = %v", res.Rows[0])
	}
}

func TestExecuteGroupBy(t *testing.T) {
	res := run(t, movieDB(),
		"SELECT a.name, COUNT(*) FROM actor a JOIN starring s ON a.aid = s.aid GROUP BY a.name")
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	counts := map[string]float64{}
	for _, r := range res.Rows {
		counts[r[0].Text] = r[1].Num
	}
	if counts["Tom Hanks"] != 2 || counts["Sandra Bullock"] != 1 || counts["Brad Pitt"] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestExecuteHaving(t *testing.T) {
	res := run(t, movieDB(),
		"SELECT a.name, COUNT(*) FROM actor a JOIN starring s ON a.aid = s.aid GROUP BY a.name HAVING COUNT(*) > 1")
	if len(res.Rows) != 1 || !res.Rows[0][0].Equal(text("Tom Hanks")) {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestExecuteOrderByAsc(t *testing.T) {
	res := run(t, movieDB(), "SELECT title, year FROM movie ORDER BY year ASC")
	years := []float64{}
	for _, r := range res.Rows {
		years = append(years, r[1].Num)
	}
	for i := 1; i < len(years); i++ {
		if years[i-1] > years[i] {
			t.Fatalf("not ascending: %v", years)
		}
	}
}

func TestExecuteOrderByDescLimit(t *testing.T) {
	res := run(t, movieDB(), "SELECT title FROM movie ORDER BY revenue DESC LIMIT 2")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if !res.Rows[0][0].Equal(text("Gravity")) || !res.Rows[1][0].Equal(text("Forrest Gump")) {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestExecuteOrderByAggregate(t *testing.T) {
	res := run(t, movieDB(),
		"SELECT a.name FROM actor a JOIN starring s ON a.aid = s.aid GROUP BY a.name ORDER BY COUNT(*) DESC LIMIT 1")
	if len(res.Rows) != 1 || !res.Rows[0][0].Equal(text("Tom Hanks")) {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestExecuteDistinct(t *testing.T) {
	res := run(t, movieDB(), "SELECT DISTINCT a.gender FROM actor a")
	if len(res.Rows) != 2 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestExecuteEmptyResult(t *testing.T) {
	res := run(t, movieDB(), "SELECT title FROM movie WHERE year > 3000")
	if len(res.Rows) != 0 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestExecuteAggregateOverEmpty(t *testing.T) {
	res := run(t, movieDB(), "SELECT COUNT(*), SUM(revenue) FROM movie WHERE year > 3000")
	if len(res.Rows) != 1 {
		t.Fatalf("aggregate over empty should yield one row: %v", res.Rows)
	}
	if !res.Rows[0][0].Equal(num(0)) || !res.Rows[0][1].IsNull() {
		t.Errorf("row = %v", res.Rows[0])
	}
}

func TestExecuteNullJoinKeysDropped(t *testing.T) {
	db := movieDB()
	db.Table("starring").MustInsert(num(9), sqlir.Null(), num(1))
	res := run(t, db, "SELECT a.name FROM actor a JOIN starring s ON a.aid = s.aid")
	if len(res.Rows) != 4 {
		t.Errorf("null join keys must not match: %v", res.Rows)
	}
}

func TestExecuteIncompleteQueryRejected(t *testing.T) {
	q := sqlir.NewQuery()
	if _, err := Execute(movieDB(), q); err == nil {
		t.Error("incomplete query should be rejected")
	}
	if _, err := Execute(movieDB(), nil); err == nil {
		t.Error("nil query should be rejected")
	}
}

func TestExecuteUnknownTableInPath(t *testing.T) {
	db := movieDB()
	q := sqlparse.MustParse(db.Schema, "SELECT title FROM movie")
	q.From.Tables[0] = "nope"
	if _, err := Execute(db, q); err == nil || !strings.Contains(err.Error(), "unknown table") {
		t.Errorf("err = %v", err)
	}
}

func TestExecuteDisconnectedEdge(t *testing.T) {
	db := movieDB()
	q := sqlparse.MustParse(db.Schema, "SELECT title FROM movie")
	q.From.Tables = append(q.From.Tables, "actor")
	q.From.Edges = append(q.From.Edges, sqlir.JoinEdge{
		FromTable: "starring", FromColumn: "aid", ToTable: "actor", ToColumn: "aid",
	})
	if _, err := Execute(db, q); err == nil || !strings.Contains(err.Error(), "disconnected") {
		t.Errorf("err = %v", err)
	}
}

func TestExecuteColumnOutsidePath(t *testing.T) {
	db := movieDB()
	q := sqlparse.MustParse(db.Schema, "SELECT title FROM movie")
	q.Select[0].Col = sqlir.ColumnRef{Table: "actor", Column: "name"}
	if _, err := Execute(db, q); err == nil || !strings.Contains(err.Error(), "not in join path") {
		t.Errorf("err = %v", err)
	}
}

func TestExecuteOrderStability(t *testing.T) {
	// Rows with equal keys keep their base order (stable sort).
	db := movieDB()
	db.Table("movie").MustInsert(num(5), text("Twin A"), num(2010), num(1))
	db.Table("movie").MustInsert(num(6), text("Twin B"), num(2010), num(1))
	res := run(t, db, "SELECT title FROM movie WHERE year = 2010 ORDER BY year ASC")
	if !res.Rows[0][0].Equal(text("Twin A")) || !res.Rows[1][0].Equal(text("Twin B")) {
		t.Errorf("stability broken: %v", res.Rows)
	}
}
