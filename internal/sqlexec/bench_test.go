package sqlexec_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/duoquest/duoquest/internal/sqlexec"
	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/storage"
)

// Paired executor benchmarks: the same existence-probe workload over a
// multi-edge join path, answered by the materialize-then-filter reference
// path and by the streaming/index pipeline. Each streaming benchmark first
// asserts answer-for-answer equivalence with the reference executor, so the
// speedup can never come from changed semantics. `make bench` records these
// into BENCH_sqlexec.json.

var (
	benchOnce sync.Once
	benchDB   *storage.Database
)

// benchStore builds a three-table FK chain (cust ⋈ ord ⋈ prod) big enough
// that materializing the join dominates a naive probe: 4k customers, 1k
// products, 20k orders.
func benchStore() *storage.Database {
	benchOnce.Do(func() {
		r := rand.New(rand.NewSource(7))
		cust := storage.NewTable("cust", "cid",
			storage.Column{Name: "cid", Type: sqlir.TypeNumber},
			storage.Column{Name: "name", Type: sqlir.TypeText},
			storage.Column{Name: "city", Type: sqlir.TypeText},
		)
		prod := storage.NewTable("prod", "pid",
			storage.Column{Name: "pid", Type: sqlir.TypeNumber},
			storage.Column{Name: "pname", Type: sqlir.TypeText},
			storage.Column{Name: "price", Type: sqlir.TypeNumber},
		)
		ord := storage.NewTable("ord", "oid",
			storage.Column{Name: "oid", Type: sqlir.TypeNumber},
			storage.Column{Name: "cid", Type: sqlir.TypeNumber},
			storage.Column{Name: "pid", Type: sqlir.TypeNumber},
			storage.Column{Name: "qty", Type: sqlir.TypeNumber},
		)
		s := storage.NewSchema(cust, ord, prod)
		s.AddForeignKey("ord", "cid", "cust", "cid")
		s.AddForeignKey("ord", "pid", "prod", "pid")
		for i := 0; i < 4000; i++ {
			cust.MustInsert(sqlir.NewInt(i), sqlir.NewText(fmt.Sprintf("cust-%d", i)),
				sqlir.NewText(fmt.Sprintf("city-%d", i%50)))
		}
		for i := 0; i < 1000; i++ {
			prod.MustInsert(sqlir.NewInt(i), sqlir.NewText(fmt.Sprintf("prod-%d", i)),
				sqlir.NewInt(1+r.Intn(500)))
		}
		for i := 0; i < 20000; i++ {
			ord.MustInsert(sqlir.NewInt(i), sqlir.NewInt(r.Intn(4000)),
				sqlir.NewInt(r.Intn(1000)), sqlir.NewInt(1+r.Intn(9)))
		}
		benchDB = storage.NewDatabase("bench", s)
	})
	return benchDB
}

func benchPath() *sqlir.JoinPath {
	return &sqlir.JoinPath{
		Tables: []string{"cust", "ord", "prod"},
		Edges: []sqlir.JoinEdge{
			{FromTable: "ord", FromColumn: "cid", ToTable: "cust", ToColumn: "cid"},
			{FromTable: "ord", FromColumn: "pid", ToTable: "prod", ToColumn: "pid"},
		},
	}
}

func benchPred(table, col string, op sqlir.Op, v sqlir.Value) sqlir.Predicate {
	return sqlir.Predicate{
		Col: sqlir.ColumnRef{Table: table, Column: col}, ColSet: true,
		Op: op, OpSet: true, Val: v, ValSet: true,
	}
}

// benchProbes is the shared workload: selective by-row-style probes over
// the two-edge join path, roughly half of them misses.
func benchProbes() []sqlexec.ExistsQuery {
	r := rand.New(rand.NewSource(11))
	probes := make([]sqlexec.ExistsQuery, 0, 200)
	for i := 0; i < 200; i++ {
		name := fmt.Sprintf("cust-%d", r.Intn(8000)) // half miss the table
		probes = append(probes, sqlexec.ExistsQuery{
			From: benchPath(),
			Conj: sqlir.LogicAnd,
			Preds: []sqlir.Predicate{
				benchPred("cust", "name", sqlir.OpEq, sqlir.NewText(name)),
				benchPred("prod", "price", sqlir.OpGt, sqlir.NewInt(r.Intn(500))),
			},
		})
	}
	return probes
}

// benchGroupedProbes is the RV2-style workload: grouped existence with
// HAVING range constraints.
func benchGroupedProbes() []sqlexec.ExistsQuery {
	r := rand.New(rand.NewSource(13))
	probes := make([]sqlexec.ExistsQuery, 0, 50)
	for i := 0; i < 50; i++ {
		city := fmt.Sprintf("city-%d", r.Intn(60))
		probes = append(probes, sqlexec.ExistsQuery{
			From:  benchPath(),
			Conj:  sqlir.LogicAnd,
			Preds: []sqlir.Predicate{benchPred("cust", "city", sqlir.OpEq, sqlir.NewText(city))},
			GroupBy: []sqlir.ColumnRef{
				{Table: "cust", Column: "cid"},
			},
			Havings: []sqlir.HavingExpr{{
				Agg: sqlir.AggCount, AggSet: true, Col: sqlir.Star, ColSet: true,
				Op: sqlir.OpGe, OpSet: true, Val: sqlir.NewInt(8 + r.Intn(4)), ValSet: true,
			}},
		})
	}
	return probes
}

// referenceAnswers runs a probe set through the materializing reference
// executor (join memoized once, scan per probe — the pre-streaming
// JoinCache behavior).
func referenceAnswers(b *testing.B, db *storage.Database, probes []sqlexec.ExistsQuery) (*sqlexec.ReferenceRelation, []bool) {
	b.Helper()
	rel, err := sqlexec.MaterializeReference(db, benchPath())
	if err != nil {
		b.Fatal(err)
	}
	out := make([]bool, len(probes))
	for i, eq := range probes {
		ok, err := rel.ExistsOnReference(eq)
		if err != nil {
			b.Fatal(err)
		}
		out[i] = ok
	}
	return rel, out
}

// checkStreamingEquivalence asserts the streaming pipeline agrees with the
// reference on every probe before any timing begins.
func checkStreamingEquivalence(b *testing.B, jc *sqlexec.JoinCache, probes []sqlexec.ExistsQuery, want []bool) {
	b.Helper()
	for i, eq := range probes {
		ok, err := jc.Exists(eq)
		if err != nil {
			b.Fatal(err)
		}
		if ok != want[i] {
			b.Fatalf("probe %d: streaming=%v reference=%v", i, ok, want[i])
		}
	}
}

// BenchmarkExistsMaterialized is the baseline: the join path is
// materialized once (memoized, as the pre-streaming JoinCache did) and
// every probe scans the joined tuples.
func BenchmarkExistsMaterialized(b *testing.B) {
	db := benchStore()
	probes := benchProbes()
	rel, _ := referenceAnswers(b, db, probes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, eq := range probes {
			if _, err := rel.ExistsOnReference(eq); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkExistsStreaming is the paired measurement: the same probes
// answered by the pushdown + first-witness streaming pipeline.
func BenchmarkExistsStreaming(b *testing.B) {
	db := benchStore()
	probes := benchProbes()
	_, want := referenceAnswers(b, db, probes)
	jc := sqlexec.NewJoinCache(db)
	checkStreamingEquivalence(b, jc, probes, want)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, eq := range probes {
			if _, err := jc.Exists(eq); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkExistsGroupedMaterialized: grouped existence probes (GROUP BY +
// HAVING) against the materialized join.
func BenchmarkExistsGroupedMaterialized(b *testing.B) {
	db := benchStore()
	probes := benchGroupedProbes()
	rel, _ := referenceAnswers(b, db, probes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, eq := range probes {
			if _, err := rel.ExistsOnReference(eq); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkExistsGroupedStreaming: the same grouped probes streamed into
// per-group aggregate states with predicate pushdown, no tuple buffering.
func BenchmarkExistsGroupedStreaming(b *testing.B) {
	db := benchStore()
	probes := benchGroupedProbes()
	_, want := referenceAnswers(b, db, probes)
	jc := sqlexec.NewJoinCache(db)
	checkStreamingEquivalence(b, jc, probes, want)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, eq := range probes {
			if _, err := jc.Exists(eq); err != nil {
				b.Fatal(err)
			}
		}
	}
}
