package sqlexec_test

import (
	"testing"

	"github.com/duoquest/duoquest/internal/dataset"
	"github.com/duoquest/duoquest/internal/sqlexec"
	"github.com/duoquest/duoquest/internal/storage"
)

// BenchmarkColumnar*: paired measurements of the columnar refactor. Each
// pair runs the identical probe workload through the preserved pre-refactor
// row-based streaming pipeline (RowPath: value-keyed hash indexes, cell
// reads through the row adapter, string-built group keys) and through the
// vectorized columnar pipeline (Columnar: float/dictionary-code keyed
// indexes, typed predicate evaluators, fixed-width binary group keys).
// Every Columnar benchmark first asserts probe-for-probe equivalence with
// the row path and the materializing reference, so the speedup cannot come
// from changed semantics. `make bench-storage` records the pairs (with
// -benchmem, so allocs/op lands next to ns/op) into BENCH_storage.json.

// checkThreeWayEquivalence asserts row path == columnar path == reference
// on every probe, returning the answers.
func checkThreeWayEquivalence(b *testing.B, db *storage.Database, probes []sqlexec.ExistsQuery) []bool {
	b.Helper()
	out := make([]bool, len(probes))
	for i, eq := range probes {
		colOK, colHandled, colErr := sqlexec.ExistsStreaming(db, eq)
		rowOK, rowHandled, rowErr := sqlexec.ExistsRowStream(db, eq)
		if colErr != nil || rowErr != nil {
			b.Fatalf("probe %d: columnar err=%v row err=%v", i, colErr, rowErr)
		}
		if !colHandled || !rowHandled {
			b.Fatalf("probe %d: not streamed (columnar=%v row=%v) — benchmark workload must stay on the pipelines", i, colHandled, rowHandled)
		}
		if colOK != rowOK {
			b.Fatalf("probe %d: columnar=%v row=%v", i, colOK, rowOK)
		}
		refOK, refErr := sqlexec.ExistsReference(db, eq)
		if refErr != nil {
			b.Fatal(refErr)
		}
		if refOK != colOK {
			b.Fatalf("probe %d: reference=%v streaming=%v", i, refOK, colOK)
		}
		out[i] = colOK
	}
	return out
}

func runRowPath(b *testing.B, db *storage.Database, probes []sqlexec.ExistsQuery) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, eq := range probes {
			if _, _, err := sqlexec.ExistsRowStream(db, eq); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func runColumnar(b *testing.B, db *storage.Database, probes []sqlexec.ExistsQuery) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, eq := range probes {
			if _, _, err := sqlexec.ExistsStreaming(db, eq); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// Flat existence probes (selective equality + range over the two-edge join).
func BenchmarkColumnarExistsRowPath(b *testing.B) {
	db := benchStore()
	probes := benchProbes()
	checkThreeWayEquivalence(b, db, probes)
	runRowPath(b, db, probes)
}

func BenchmarkColumnarExistsColumnar(b *testing.B) {
	db := benchStore()
	probes := benchProbes()
	checkThreeWayEquivalence(b, db, probes)
	runColumnar(b, db, probes)
}

// Grouped existence (GROUP BY + HAVING): the headline pair — group keys and
// per-group accumulators dominate, which is where dictionary codes and
// fixed-width binary keys replace per-tuple string formatting.
func BenchmarkColumnarGroupedExistsRowPath(b *testing.B) {
	db := benchStore()
	probes := benchGroupedProbes()
	checkThreeWayEquivalence(b, db, probes)
	runRowPath(b, db, probes)
}

func BenchmarkColumnarGroupedExistsColumnar(b *testing.B) {
	db := benchStore()
	probes := benchGroupedProbes()
	checkThreeWayEquivalence(b, db, probes)
	runColumnar(b, db, probes)
}

// End-to-end verification-shaped workload over the MAS database: random
// by-row/by-column style probes from the differential generator, kept only
// when both pipelines stream them (no fallback in the timed loop).
func masVerificationProbes(b *testing.B) (*storage.Database, []sqlexec.ExistsQuery) {
	b.Helper()
	db := dataset.MAS()
	g := newQueryGen(21, db)
	var probes []sqlexec.ExistsQuery
	for len(probes) < 250 {
		eq := g.existsQuery()
		_, colHandled, colErr := sqlexec.ExistsStreaming(db, eq)
		_, rowHandled, rowErr := sqlexec.ExistsRowStream(db, eq)
		if colErr != nil || rowErr != nil || !colHandled || !rowHandled {
			continue
		}
		probes = append(probes, eq)
	}
	return db, probes
}

func BenchmarkColumnarVerifyMASRowPath(b *testing.B) {
	db, probes := masVerificationProbes(b)
	checkThreeWayEquivalence(b, db, probes)
	runRowPath(b, db, probes)
}

func BenchmarkColumnarVerifyMASColumnar(b *testing.B) {
	db, probes := masVerificationProbes(b)
	checkThreeWayEquivalence(b, db, probes)
	runColumnar(b, db, probes)
}
