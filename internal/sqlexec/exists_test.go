package sqlexec

import (
	"testing"

	"github.com/duoquest/duoquest/internal/sqlir"
)

func pathOf(tables ...string) *sqlir.JoinPath {
	return &sqlir.JoinPath{Tables: tables}
}

func pred(table, col string, op sqlir.Op, v sqlir.Value) sqlir.Predicate {
	return sqlir.Predicate{
		Col: sqlir.ColumnRef{Table: table, Column: col}, ColSet: true,
		Op: op, OpSet: true, Val: v, ValSet: true,
	}
}

func TestExistsSimple(t *testing.T) {
	db := movieDB()
	// CV1 from Example 3.5: SELECT 1 FROM actor WHERE name='Tom Hanks' LIMIT 1
	ok, err := Exists(db, ExistsQuery{
		From:  pathOf("actor"),
		Preds: []sqlir.Predicate{pred("actor", "name", sqlir.OpEq, text("Tom Hanks"))},
	})
	if err != nil || !ok {
		t.Errorf("exists = %v, %v", ok, err)
	}
	// CV3-style failure: revenue between 1950 and 1960 never holds.
	ok, err = Exists(db, ExistsQuery{
		From: pathOf("movie"),
		Conj: sqlir.LogicAnd,
		Preds: []sqlir.Predicate{
			pred("movie", "revenue", sqlir.OpGe, num(1950)),
			pred("movie", "revenue", sqlir.OpLe, num(1960)),
		},
	})
	if err != nil || ok {
		t.Errorf("exists = %v, %v; want false", ok, err)
	}
}

func TestExistsNoPreds(t *testing.T) {
	db := movieDB()
	ok, err := Exists(db, ExistsQuery{From: pathOf("actor")})
	if err != nil || !ok {
		t.Errorf("exists = %v, %v", ok, err)
	}
}

func TestExistsEmptyTable(t *testing.T) {
	db := movieDB()
	db.Table("actor").Rows() // no-op; use a filter that matches nothing
	ok, err := Exists(db, ExistsQuery{
		From:  pathOf("actor"),
		Preds: []sqlir.Predicate{pred("actor", "name", sqlir.OpEq, text("Nobody"))},
	})
	if err != nil || ok {
		t.Errorf("exists = %v, %v; want false", ok, err)
	}
}

func TestExistsWithJoin(t *testing.T) {
	db := movieDB()
	jp := &sqlir.JoinPath{
		Tables: []string{"actor", "starring", "movie"},
		Edges: []sqlir.JoinEdge{
			{FromTable: "starring", FromColumn: "aid", ToTable: "actor", ToColumn: "aid"},
			{FromTable: "starring", FromColumn: "mid", ToTable: "movie", ToColumn: "mid"},
		},
	}
	ok, err := Exists(db, ExistsQuery{
		From: jp,
		Conj: sqlir.LogicAnd,
		Preds: []sqlir.Predicate{
			pred("actor", "name", sqlir.OpEq, text("Tom Hanks")),
			pred("movie", "title", sqlir.OpEq, text("Forrest Gump")),
		},
	})
	if err != nil || !ok {
		t.Errorf("join exists = %v, %v", ok, err)
	}
	ok, _ = Exists(db, ExistsQuery{
		From: jp,
		Conj: sqlir.LogicAnd,
		Preds: []sqlir.Predicate{
			pred("actor", "name", sqlir.OpEq, text("Tom Hanks")),
			pred("movie", "title", sqlir.OpEq, text("Gravity")),
		},
	})
	if ok {
		t.Error("Hanks was not in Gravity")
	}
}

// TestExistsGroupedHaving covers RV2 from Example 3.6: a row-wise
// verification query with GROUP BY and HAVING range constraints.
func TestExistsGroupedHaving(t *testing.T) {
	db := movieDB()
	jp := &sqlir.JoinPath{
		Tables: []string{"actor", "starring"},
		Edges:  []sqlir.JoinEdge{{FromTable: "starring", FromColumn: "aid", ToTable: "actor", ToColumn: "aid"}},
	}
	having := func(op sqlir.Op, v float64) sqlir.HavingExpr {
		return sqlir.HavingExpr{
			Agg: sqlir.AggCount, AggSet: true, Col: sqlir.Star, ColSet: true,
			Op: op, OpSet: true, Val: num(v), ValSet: true,
		}
	}
	// Tom Hanks has 2 starring rows: COUNT between 1950 and 1960 fails...
	ok, err := Exists(db, ExistsQuery{
		From:    jp,
		Preds:   []sqlir.Predicate{pred("actor", "name", sqlir.OpEq, text("Tom Hanks"))},
		GroupBy: []sqlir.ColumnRef{{Table: "actor", Column: "name"}},
		Havings: []sqlir.HavingExpr{having(sqlir.OpGe, 1950), having(sqlir.OpLe, 1960)},
	})
	if err != nil || ok {
		t.Errorf("RV2-style check = %v, %v; want false", ok, err)
	}
	// ...but COUNT between 1 and 5 succeeds.
	ok, err = Exists(db, ExistsQuery{
		From:    jp,
		Preds:   []sqlir.Predicate{pred("actor", "name", sqlir.OpEq, text("Tom Hanks"))},
		GroupBy: []sqlir.ColumnRef{{Table: "actor", Column: "name"}},
		Havings: []sqlir.HavingExpr{having(sqlir.OpGe, 1), having(sqlir.OpLe, 5)},
	})
	if err != nil || !ok {
		t.Errorf("grouped exists = %v, %v; want true", ok, err)
	}
}

func TestExistsIncompletePredicateRejected(t *testing.T) {
	db := movieDB()
	p := pred("actor", "name", sqlir.OpEq, text("X"))
	p.ValSet = false
	if _, err := Exists(db, ExistsQuery{From: pathOf("actor"), Preds: []sqlir.Predicate{p}}); err == nil {
		t.Error("incomplete predicate should error")
	}
}

func TestExistsBadPath(t *testing.T) {
	db := movieDB()
	if _, err := Exists(db, ExistsQuery{From: pathOf("nope")}); err == nil {
		t.Error("unknown table should error")
	}
	if _, err := Exists(db, ExistsQuery{From: nil}); err == nil {
		t.Error("nil path should error")
	}
}

func TestExistsHavingOnlyNoGroupBy(t *testing.T) {
	db := movieDB()
	// Single implicit group over all rows: COUNT(*) = 4 movies.
	h := sqlir.HavingExpr{
		Agg: sqlir.AggCount, AggSet: true, Col: sqlir.Star, ColSet: true,
		Op: sqlir.OpEq, OpSet: true, Val: num(4), ValSet: true,
	}
	ok, err := Exists(db, ExistsQuery{From: pathOf("movie"), Havings: []sqlir.HavingExpr{h}})
	if err != nil || !ok {
		t.Errorf("implicit group exists = %v, %v", ok, err)
	}
	h.Val = num(5)
	ok, _ = Exists(db, ExistsQuery{From: pathOf("movie"), Havings: []sqlir.HavingExpr{h}})
	if ok {
		t.Error("COUNT(*)=5 should fail")
	}
}
