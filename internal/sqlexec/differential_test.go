package sqlexec_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"github.com/duoquest/duoquest/internal/dataset"
	"github.com/duoquest/duoquest/internal/sqlexec"
	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/storage"
)

// Differential property tests: for seeded random SPJA queries over the
// Movies and MAS databases, the streaming/index execution pipeline must
// return results identical to the materializing reference executor, and
// Exists must agree with len(Execute(...).Rows) > 0. This is the
// bag-equivalence discipline backing the perf rewrite: the fast path is
// only trusted because it is provably result-identical to the slow one.

// queryGen draws random query fragments from a database's actual schema and
// value distributions, so predicates hit real selectivities.
type queryGen struct {
	r    *rand.Rand
	db   *storage.Database
	pool map[sqlir.ColumnRef][]sqlir.Value
}

func newQueryGen(seed int64, db *storage.Database) *queryGen {
	return &queryGen{
		r:    rand.New(rand.NewSource(seed)),
		db:   db,
		pool: map[sqlir.ColumnRef][]sqlir.Value{},
	}
}

// values returns (and caches) up to 40 distinct values of a column.
func (g *queryGen) values(c sqlir.ColumnRef) []sqlir.Value {
	if vs, ok := g.pool[c]; ok {
		return vs
	}
	vs, err := g.db.Table(c.Table).DistinctValues(c.Column, 40)
	if err != nil {
		vs = nil
	}
	g.pool[c] = vs
	return vs
}

// path builds a random connected join path of up to maxTables tables over
// the schema's FK-PK edges.
func (g *queryGen) path(maxTables int) *sqlir.JoinPath {
	s := g.db.Schema
	start := s.Tables[g.r.Intn(len(s.Tables))].Name
	jp := &sqlir.JoinPath{Tables: []string{start}}
	in := map[string]bool{start: true}
	want := 1 + g.r.Intn(maxTables)
	for len(jp.Tables) < want {
		var cands []sqlir.JoinEdge
		for _, fk := range s.ForeignKeys {
			e := sqlir.JoinEdge{FromTable: fk.Table, FromColumn: fk.Column, ToTable: fk.RefTable, ToColumn: fk.RefColumn}
			if in[e.FromTable] != in[e.ToTable] { // exactly one endpoint bound
				cands = append(cands, e)
			}
		}
		if len(cands) == 0 {
			break
		}
		e := cands[g.r.Intn(len(cands))]
		nt := e.ToTable
		if in[nt] {
			nt = e.FromTable
		}
		in[nt] = true
		jp.Tables = append(jp.Tables, nt)
		jp.Edges = append(jp.Edges, e)
	}
	return jp
}

// column picks a random column of a random table in the path.
func (g *queryGen) column(jp *sqlir.JoinPath) sqlir.ColumnRef {
	t := g.db.Table(jp.Tables[g.r.Intn(len(jp.Tables))])
	c := t.Columns[g.r.Intn(len(t.Columns))]
	return sqlir.ColumnRef{Table: t.Name, Column: c.Name}
}

// numericColumn picks a random numeric column in the path, or ok=false.
func (g *queryGen) numericColumn(jp *sqlir.JoinPath) (sqlir.ColumnRef, bool) {
	for try := 0; try < 12; try++ {
		c := g.column(jp)
		if ty, ok := g.db.Schema.Resolve(c); ok && ty == sqlir.TypeNumber {
			return c, true
		}
	}
	return sqlir.ColumnRef{}, false
}

// pred builds a random complete predicate on the path. Values are drawn
// from the column's own distribution most of the time, so probes succeed and
// fail in interesting proportions.
func (g *queryGen) pred(jp *sqlir.JoinPath) sqlir.Predicate {
	c := g.column(jp)
	ops := []sqlir.Op{sqlir.OpEq, sqlir.OpEq, sqlir.OpEq, sqlir.OpNe, sqlir.OpLt, sqlir.OpGt, sqlir.OpLe, sqlir.OpGe}
	op := ops[g.r.Intn(len(ops))]
	var val sqlir.Value
	vs := g.values(c)
	switch {
	case len(vs) > 0 && g.r.Intn(5) > 0:
		val = vs[g.r.Intn(len(vs))]
	case g.r.Intn(2) == 0:
		val = sqlir.NewNumber(float64(g.r.Intn(2000)))
	default:
		val = sqlir.NewText(fmt.Sprintf("nope-%d", g.r.Intn(50)))
	}
	return sqlir.Predicate{Col: c, ColSet: true, Op: op, OpSet: true, Val: val, ValSet: true}
}

// existsQuery builds a random verification-shaped existence probe:
// optionally OR-connected candidate predicates, conjoined example-cell
// constraints, and sometimes GROUP BY/HAVING.
func (g *queryGen) existsQuery() sqlexec.ExistsQuery {
	jp := g.path(3)
	eq := sqlexec.ExistsQuery{From: jp, Conj: sqlir.LogicAnd}
	if g.r.Intn(2) == 0 {
		n := 1 + g.r.Intn(3)
		if n >= 2 && g.r.Intn(2) == 0 {
			eq.Conj = sqlir.LogicOr
		}
		for i := 0; i < n; i++ {
			eq.Preds = append(eq.Preds, g.pred(jp))
		}
	}
	for i := g.r.Intn(3); i > 0; i-- {
		eq.AndPreds = append(eq.AndPreds, g.pred(jp))
	}
	if g.r.Intn(3) == 0 {
		for i := 1 + g.r.Intn(2); i > 0; i-- {
			eq.GroupBy = append(eq.GroupBy, g.column(jp))
		}
	}
	if g.r.Intn(3) == 0 {
		for i := 1 + g.r.Intn(2); i > 0; i-- {
			if h, ok := g.having(jp); ok {
				eq.Havings = append(eq.Havings, h)
			}
		}
	}
	return eq
}

// having builds a random complete HAVING condition.
func (g *queryGen) having(jp *sqlir.JoinPath) (sqlir.HavingExpr, bool) {
	ops := []sqlir.Op{sqlir.OpEq, sqlir.OpNe, sqlir.OpLt, sqlir.OpGt, sqlir.OpLe, sqlir.OpGe}
	op := ops[g.r.Intn(len(ops))]
	mk := func(agg sqlir.AggFunc, col sqlir.ColumnRef, val sqlir.Value) (sqlir.HavingExpr, bool) {
		return sqlir.HavingExpr{
			Agg: agg, AggSet: true, Col: col, ColSet: true,
			Op: op, OpSet: true, Val: val, ValSet: true,
		}, true
	}
	switch g.r.Intn(4) {
	case 0: // COUNT(*)
		return mk(sqlir.AggCount, sqlir.Star, sqlir.NewInt(g.r.Intn(6)))
	case 1: // COUNT(col)
		return mk(sqlir.AggCount, g.column(jp), sqlir.NewInt(g.r.Intn(6)))
	case 2: // MIN/MAX over any column
		aggs := []sqlir.AggFunc{sqlir.AggMin, sqlir.AggMax}
		c := g.column(jp)
		vs := g.values(c)
		if len(vs) == 0 {
			return sqlir.HavingExpr{}, false
		}
		return mk(aggs[g.r.Intn(2)], c, vs[g.r.Intn(len(vs))])
	default: // SUM/AVG over a numeric column
		c, ok := g.numericColumn(jp)
		if !ok {
			return sqlir.HavingExpr{}, false
		}
		aggs := []sqlir.AggFunc{sqlir.AggSum, sqlir.AggAvg}
		return mk(aggs[g.r.Intn(2)], c, sqlir.NewNumber(float64(g.r.Intn(4000))))
	}
}

// completeQuery builds a random complete SPJA query suitable for Execute.
// orderIdx is the projection index of the ORDER BY key, or -1.
func (g *queryGen) completeQuery() (*sqlir.Query, int) {
	jp := g.path(3)
	q := &sqlir.Query{KWSet: true, SelectCountSet: true, LimitSet: true, From: jp}

	grouped := g.r.Intn(3) == 0
	if grouped {
		q.GroupByState = sqlir.ClausePresent
		q.GroupBy = []sqlir.ColumnRef{g.column(jp)}
		q.Select = []sqlir.SelectItem{{Agg: sqlir.AggNone, AggSet: true, Col: q.GroupBy[0], ColSet: true}}
		agg := []sqlir.AggFunc{sqlir.AggCount, sqlir.AggMin, sqlir.AggMax}[g.r.Intn(3)]
		q.Select = append(q.Select, sqlir.SelectItem{Agg: agg, AggSet: true, Col: g.column(jp), ColSet: true})
		if c, ok := g.numericColumn(jp); ok && g.r.Intn(2) == 0 {
			aggs := []sqlir.AggFunc{sqlir.AggSum, sqlir.AggAvg}
			q.Select = append(q.Select, sqlir.SelectItem{Agg: aggs[g.r.Intn(2)], AggSet: true, Col: c, ColSet: true})
		}
		if h, ok := g.having(jp); ok && g.r.Intn(2) == 0 {
			q.HavingState = sqlir.ClausePresent
			q.Having = h
		}
	} else {
		for i := 1 + g.r.Intn(3); i > 0; i-- {
			q.Select = append(q.Select, sqlir.SelectItem{Agg: sqlir.AggNone, AggSet: true, Col: g.column(jp), ColSet: true})
		}
		q.Distinct = g.r.Intn(4) == 0
	}

	if g.r.Intn(2) == 0 {
		n := 1 + g.r.Intn(3)
		w := sqlir.Where{ConjSet: true, CountSet: true}
		if n >= 2 && g.r.Intn(2) == 0 {
			w.Conj = sqlir.LogicOr
		}
		for i := 0; i < n; i++ {
			w.Preds = append(w.Preds, g.pred(jp))
		}
		q.WhereState = sqlir.ClausePresent
		q.Where = w
	}

	orderIdx := -1
	if g.r.Intn(2) == 0 {
		orderIdx = 0
		key := sqlir.OrderKey{Agg: sqlir.AggNone, Col: q.Select[0].Col}
		if grouped {
			orderIdx = 1
			key = sqlir.OrderKey{Agg: q.Select[1].Agg, Col: q.Select[1].Col}
		}
		q.OrderByState = sqlir.ClausePresent
		q.OrderBy = sqlir.OrderBy{Key: key, KeySet: true, Desc: g.r.Intn(2) == 0, DirSet: true}
		if g.r.Intn(2) == 0 {
			q.Limit = 1 + g.r.Intn(10)
		}
	}
	return q, orderIdx
}

// rowStrings renders result rows for multiset comparison.
func rowStrings(res *sqlexec.Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		s := ""
		for _, v := range r {
			s += v.String() + "|"
		}
		out[i] = s
	}
	return out
}

func diffDBs(t *testing.T) map[string]*storage.Database {
	t.Helper()
	return map[string]*storage.Database{
		"movies": dataset.Movies(),
		"mas":    dataset.MAS(),
	}
}

// TestDifferentialExists checks streaming Exists (both the package-level
// entry point and the JoinCache one) against the materializing reference on
// random existence probes.
func TestDifferentialExists(t *testing.T) {
	for name, db := range diffDBs(t) {
		t.Run(name, func(t *testing.T) {
			g := newQueryGen(1, db)
			jc := sqlexec.NewJoinCache(db)
			for i := 0; i < 600; i++ {
				eq := g.existsQuery()
				want, werr := sqlexec.ExistsReference(db, eq)
				got, gerr := sqlexec.Exists(db, eq)
				cached, cerr := jc.Exists(eq)
				if (werr != nil) != (gerr != nil) || (werr != nil) != (cerr != nil) {
					t.Fatalf("query %d: error divergence: ref=%v stream=%v cached=%v", i, werr, gerr, cerr)
				}
				if werr != nil {
					if werr.Error() != gerr.Error() {
						t.Fatalf("query %d: error text diverges: ref=%v stream=%v", i, werr, gerr)
					}
					continue
				}
				if got != want || cached != want {
					t.Fatalf("query %d: exists diverges: ref=%v stream=%v cached=%v eq=%+v", i, want, got, cached, eq)
				}
			}
		})
	}
}

// TestDifferentialExistsAgreesWithExecute checks the §3.4 contract on the
// no-GROUP-BY shape: Exists(q) == (len(Execute(select-from-where).Rows) > 0).
func TestDifferentialExistsAgreesWithExecute(t *testing.T) {
	for name, db := range diffDBs(t) {
		t.Run(name, func(t *testing.T) {
			g := newQueryGen(2, db)
			for i := 0; i < 300; i++ {
				jp := g.path(3)
				var preds []sqlir.Predicate
				conj := sqlir.LogicAnd
				n := 1 + g.r.Intn(3)
				if n >= 2 && g.r.Intn(2) == 0 {
					conj = sqlir.LogicOr
				}
				for j := 0; j < n; j++ {
					preds = append(preds, g.pred(jp))
				}
				q := &sqlir.Query{
					KWSet: true, SelectCountSet: true, LimitSet: true, From: jp,
					Select:     []sqlir.SelectItem{{Agg: sqlir.AggNone, AggSet: true, Col: g.column(jp), ColSet: true}},
					WhereState: sqlir.ClausePresent,
					Where:      sqlir.Where{Conj: conj, ConjSet: true, CountSet: true, Preds: preds},
				}
				res, err := sqlexec.Execute(db, q)
				if err != nil {
					t.Fatalf("query %d: execute: %v", i, err)
				}
				ok, err := sqlexec.Exists(db, sqlexec.ExistsQuery{From: jp, Conj: conj, Preds: preds})
				if err != nil {
					t.Fatalf("query %d: exists: %v", i, err)
				}
				if ok != (len(res.Rows) > 0) {
					t.Fatalf("query %d: exists=%v but execute returned %d rows", i, ok, len(res.Rows))
				}
			}
		})
	}
}

// TestDifferentialExecutePrefixSharing checks the JoinCache's
// prefix-extending materialization against the reference executor. A fresh
// cache must reproduce the reference result exactly — same rows, same order.
// A cache shared across queries may serve a relation built from an earlier
// query's edge order for the same canonical table/edge set (that was already
// true before prefix sharing), so there the result must be bag-identical,
// with the ORDER BY key sequence identical when ORDER BY is set.
func TestDifferentialExecutePrefixSharing(t *testing.T) {
	for name, db := range diffDBs(t) {
		t.Run(name, func(t *testing.T) {
			g := newQueryGen(3, db)
			shared := sqlexec.NewJoinCache(db)
			for i := 0; i < 300; i++ {
				q, orderIdx := g.completeQuery()
				if !q.Complete() {
					t.Fatalf("query %d: generator produced incomplete query %+v", i, q)
				}
				want, werr := sqlexec.Execute(db, q)

				// Fresh cache: prefix extension alone must be exact.
				fresh, ferr := sqlexec.NewJoinCache(db).Execute(q)
				if (werr != nil) != (ferr != nil) {
					t.Fatalf("query %d: error divergence: ref=%v fresh=%v", i, werr, ferr)
				}
				if werr == nil {
					if len(want.Rows) != len(fresh.Rows) {
						t.Fatalf("query %d: %d rows vs %d (fresh cache)", i, len(want.Rows), len(fresh.Rows))
					}
					for ri := range want.Rows {
						for ci := range want.Rows[ri] {
							if !want.Rows[ri][ci].Equal(fresh.Rows[ri][ci]) {
								t.Fatalf("query %d: row %d col %d: %v vs %v (fresh cache)",
									i, ri, ci, want.Rows[ri][ci], fresh.Rows[ri][ci])
							}
						}
					}
				}

				// Shared cache: bag equality (modulo LIMIT tie-breaking),
				// plus the ordered key sequence when ORDER BY is set.
				got, gerr := shared.Execute(q)
				if (werr != nil) != (gerr != nil) {
					t.Fatalf("query %d: error divergence: ref=%v shared=%v", i, werr, gerr)
				}
				if werr != nil {
					continue
				}
				if len(want.Rows) != len(got.Rows) {
					t.Fatalf("query %d: %d rows vs %d (shared cache)", i, len(want.Rows), len(got.Rows))
				}
				if orderIdx >= 0 {
					for ri := range want.Rows {
						if !want.Rows[ri][orderIdx].Equal(got.Rows[ri][orderIdx]) {
							t.Fatalf("query %d: ORDER BY key diverges at row %d: %v vs %v",
								i, ri, want.Rows[ri][orderIdx], got.Rows[ri][orderIdx])
						}
					}
				}
				if q.LimitSet && q.Limit > 0 && len(want.Rows) == q.Limit {
					continue // ties at the cutoff may legitimately differ
				}
				a, b := rowStrings(want), rowStrings(got)
				sort.Strings(a)
				sort.Strings(b)
				for ri := range a {
					if a[ri] != b[ri] {
						t.Fatalf("query %d: result bags differ: %q vs %q", i, a[ri], b[ri])
					}
				}
			}
		})
	}
}

// TestJoinCachePrefixReuse pins the prefix-sharing behavior deterministically:
// once starring⋈actor is cached, materializing starring⋈actor⋈movie extends
// the cached prefix instead of re-joining it.
func TestJoinCachePrefixReuse(t *testing.T) {
	db := dataset.Movies()
	jc := sqlexec.NewJoinCache(db)
	sel := func(jp *sqlir.JoinPath) *sqlir.Query {
		return &sqlir.Query{
			KWSet: true, SelectCountSet: true, LimitSet: true, From: jp,
			Select: []sqlir.SelectItem{{
				Agg: sqlir.AggNone, AggSet: true,
				Col: sqlir.ColumnRef{Table: "starring", Column: "sid"}, ColSet: true,
			}},
		}
	}
	two := &sqlir.JoinPath{
		Tables: []string{"starring", "actor"},
		Edges:  []sqlir.JoinEdge{{FromTable: "starring", FromColumn: "aid", ToTable: "actor", ToColumn: "aid"}},
	}
	if _, err := jc.Execute(sel(two)); err != nil {
		t.Fatal(err)
	}
	if st := jc.Stats(); st.PrefixHits != 0 {
		t.Fatalf("premature prefix hit: %+v", st)
	}
	three := &sqlir.JoinPath{
		Tables: []string{"starring", "actor", "movie"},
		Edges: []sqlir.JoinEdge{
			{FromTable: "starring", FromColumn: "aid", ToTable: "actor", ToColumn: "aid"},
			{FromTable: "starring", FromColumn: "mid", ToTable: "movie", ToColumn: "mid"},
		},
	}
	res, err := jc.Execute(sel(three))
	if err != nil {
		t.Fatal(err)
	}
	want, err := sqlexec.Execute(db, sel(three))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 || len(res.Rows) != len(want.Rows) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(want.Rows))
	}
	if st := jc.Stats(); st.PrefixHits != 1 {
		t.Fatalf("prefix hits = %d, want 1 (%+v)", st.PrefixHits, st)
	}
}

// TestSumOverTextRejected pins the evalAggregate fix: SUM/AVG over a text
// column is an error on both the reference and streaming paths, not a
// silent zero.
func TestSumOverTextRejected(t *testing.T) {
	db := dataset.Movies()
	q := &sqlir.Query{
		KWSet: true, SelectCountSet: true, LimitSet: true,
		From: &sqlir.JoinPath{Tables: []string{"actor"}},
		Select: []sqlir.SelectItem{{
			Agg: sqlir.AggSum, AggSet: true,
			Col: sqlir.ColumnRef{Table: "actor", Column: "name"}, ColSet: true,
		}},
	}
	if _, err := sqlexec.Execute(db, q); err == nil {
		t.Error("SUM over text column should error")
	}
	h := sqlir.HavingExpr{
		Agg: sqlir.AggAvg, AggSet: true,
		Col: sqlir.ColumnRef{Table: "actor", Column: "name"}, ColSet: true,
		Op: sqlir.OpGt, OpSet: true, Val: sqlir.NewNumber(0), ValSet: true,
	}
	eq := sqlexec.ExistsQuery{From: &sqlir.JoinPath{Tables: []string{"actor"}}, Havings: []sqlir.HavingExpr{h}}
	if _, err := sqlexec.Exists(db, eq); err == nil {
		t.Error("AVG over text column should error on the streaming path")
	}
	if _, err := sqlexec.ExistsReference(db, eq); err == nil {
		t.Error("AVG over text column should error on the reference path")
	}
}

// TestDifferentialColumnarVsRowPath is the three-oracle check behind the
// columnar storage refactor: on random existence probes over Movies and
// MAS, the vectorized columnar pipeline, the preserved pre-refactor
// row-based pipeline, and the materializing reference executor must agree
// probe-for-probe — same compile coverage, same answers, same errors. The
// debug row-copy guard is enabled throughout, so any code path that
// mutated a shared row slice would also surface here as a divergence or a
// row/column consistency failure.
func TestDifferentialColumnarVsRowPath(t *testing.T) {
	prev := storage.SetDebugRowCopies(true)
	defer storage.SetDebugRowCopies(prev)

	for name, db := range diffDBs(t) {
		t.Run(name, func(t *testing.T) {
			g := newQueryGen(7, db)
			for i := 0; i < 400; i++ {
				eq := g.existsQuery()
				colOK, colHandled, colErr := sqlexec.ExistsStreaming(db, eq)
				rowOK, rowHandled, rowErr := sqlexec.ExistsRowStream(db, eq)
				if colHandled != rowHandled {
					t.Fatalf("probe %d: compile coverage diverges: columnar=%v row=%v", i, colHandled, rowHandled)
				}
				if !colHandled {
					continue
				}
				if (colErr != nil) != (rowErr != nil) {
					t.Fatalf("probe %d: error divergence: columnar=%v row=%v", i, colErr, rowErr)
				}
				if colErr != nil {
					if colErr.Error() != rowErr.Error() {
						t.Fatalf("probe %d: error text diverges: %v vs %v", i, colErr, rowErr)
					}
					continue
				}
				if colOK != rowOK {
					t.Fatalf("probe %d: columnar=%v row=%v for %+v", i, colOK, rowOK, eq)
				}
				refOK, refErr := sqlexec.ExistsReference(db, eq)
				if refErr != nil {
					t.Fatalf("probe %d: reference errored where streaming did not: %v", i, refErr)
				}
				if refOK != colOK {
					t.Fatalf("probe %d: reference=%v streaming=%v for %+v", i, refOK, colOK, eq)
				}
			}
			for _, tb := range db.Schema.Tables {
				if err := tb.CheckRowColumnConsistency(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}
