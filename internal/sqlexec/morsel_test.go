package sqlexec_test

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"github.com/duoquest/duoquest/internal/loadgen"
	"github.com/duoquest/duoquest/internal/sqlexec"
	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/storage"
)

// Morsel-parallel differential tests: the morsel fan-out must be
// bit-identical to the single-threaded columnar pipeline (which in turn is
// differentially pinned to the preserved row pipeline and the materializing
// reference) at every morsel size, including degenerate ones — one row per
// morsel, a prime that misaligns every boundary, the production default,
// and a single morsel spanning the whole table. Workers vary so the claim
// holds regardless of how many goroutines actually raced over the morsels.

// morselSizes are the swept morsel widths: single-row, prime misalignment,
// production default, and one morsel larger than any test table.
var morselSizes = []int{1, 7, 1024, 1 << 20}

// morselWorkers cycles the fan-out widths.
var morselWorkers = []int{1, 2, 4, 8}

// TestMorselDifferentialExists checks the morsel-parallel pipeline against
// the single-threaded columnar pipeline, the row pipeline, and the
// materializing reference on random existence probes over Movies and MAS.
func TestMorselDifferentialExists(t *testing.T) {
	for name, db := range diffDBs(t) {
		t.Run(name, func(t *testing.T) {
			for _, size := range morselSizes {
				t.Run(fmt.Sprintf("morsel=%d", size), func(t *testing.T) {
					g := newQueryGen(11, db)
					for i := 0; i < 120; i++ {
						eq := g.existsQuery()
						workers := morselWorkers[i%len(morselWorkers)]
						mOK, mHandled, mErr := sqlexec.ExistsMorsel(db, eq, workers, size)
						cOK, cHandled, cErr := sqlexec.ExistsStreaming(db, eq)
						if mHandled != cHandled {
							t.Fatalf("probe %d: compile coverage diverges: morsel=%v columnar=%v", i, mHandled, cHandled)
						}
						if !mHandled {
							continue
						}
						if (mErr != nil) != (cErr != nil) {
							t.Fatalf("probe %d: error divergence: morsel=%v columnar=%v", i, mErr, cErr)
						}
						if mErr != nil {
							if mErr.Error() != cErr.Error() {
								t.Fatalf("probe %d: error text diverges: morsel=%v columnar=%v", i, mErr, cErr)
							}
							continue
						}
						if mOK != cOK {
							t.Fatalf("probe %d (workers=%d): morsel=%v columnar=%v for %+v", i, workers, mOK, cOK, eq)
						}
						rowOK, rowHandled, rowErr := sqlexec.ExistsRowStream(db, eq)
						if rowHandled && rowErr == nil && rowOK != mOK {
							t.Fatalf("probe %d: morsel=%v rowstream=%v", i, mOK, rowOK)
						}
						refOK, refErr := sqlexec.ExistsReference(db, eq)
						if refErr != nil {
							t.Fatalf("probe %d: reference errored where morsel did not: %v", i, refErr)
						}
						if refOK != mOK {
							t.Fatalf("probe %d: reference=%v morsel=%v for %+v", i, refOK, mOK, eq)
						}
					}
				})
			}
		})
	}
}

// nullHeavyDB generates a database whose nullable columns are ~35% NULL, so
// the morsel merge exercises the NULL group, NULL-skipping aggregates, and
// NULL-encoding group keys far more often than the demo sets do.
func nullHeavyDB(t testing.TB) *loadgen.Generated {
	t.Helper()
	g, err := loadgen.Generate(loadgen.Spec{Name: "nullheavy", Tables: 4, Rows: 8000, NullRate: 0.35}, 5)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestMorselDifferentialNullHeavy runs the loadgen probe workload plus
// random generator probes over a NULL-heavy generated database at every
// swept morsel size.
func TestMorselDifferentialNullHeavy(t *testing.T) {
	gen := nullHeavyDB(t)
	db := gen.DB
	probes := gen.Probes(60, 3)
	qg := newQueryGen(13, db)
	for i := 0; i < 60; i++ {
		probes = append(probes, qg.existsQuery())
	}
	for _, size := range morselSizes {
		t.Run(fmt.Sprintf("morsel=%d", size), func(t *testing.T) {
			for i, eq := range probes {
				workers := morselWorkers[i%len(morselWorkers)]
				mOK, mHandled, mErr := sqlexec.ExistsMorsel(db, eq, workers, size)
				cOK, cHandled, cErr := sqlexec.ExistsStreaming(db, eq)
				if mHandled != cHandled {
					t.Fatalf("probe %d: compile coverage diverges: morsel=%v columnar=%v", i, mHandled, cHandled)
				}
				if !mHandled {
					continue
				}
				if (mErr != nil) != (cErr != nil) {
					t.Fatalf("probe %d: error divergence: morsel=%v columnar=%v", i, mErr, cErr)
				}
				if mErr != nil {
					if mErr.Error() != cErr.Error() {
						t.Fatalf("probe %d: error text diverges: morsel=%v columnar=%v", i, mErr, cErr)
					}
					continue
				}
				if mOK != cOK {
					t.Fatalf("probe %d (workers=%d, size=%d): morsel=%v columnar=%v", i, workers, size, mOK, cOK)
				}
				refOK, refErr := sqlexec.ExistsReference(db, eq)
				if refErr != nil {
					t.Fatalf("probe %d: reference errored where morsel did not: %v", i, refErr)
				}
				if refOK != mOK {
					t.Fatalf("probe %d: reference=%v morsel=%v", i, refOK, mOK)
				}
			}
		})
	}
}

// TestMorselExecuteEquivalence checks the morsel-parallel Execute path
// (filter and index-probe fan-out with order-preserving concatenation)
// against the sequential executor on random complete SPJA queries: same
// rows, same order, cell for cell.
func TestMorselExecuteEquivalence(t *testing.T) {
	for name, db := range diffDBs(t) {
		t.Run(name, func(t *testing.T) {
			g := newQueryGen(17, db)
			for i := 0; i < 150; i++ {
				q, _ := g.completeQuery()
				want, werr := sqlexec.Execute(db, q)

				size := morselSizes[i%len(morselSizes)]
				workers := morselWorkers[i%len(morselWorkers)]
				ctx := sqlexec.WithMorselSize(
					sqlexec.WithPool(context.Background(), sqlexec.NewWorkerPool(workers, 0)), size)
				got, gerr := sqlexec.ExecuteCtx(ctx, db, q)
				if (werr != nil) != (gerr != nil) {
					t.Fatalf("query %d: error divergence: seq=%v morsel=%v", i, werr, gerr)
				}
				if werr != nil {
					if werr.Error() != gerr.Error() {
						t.Fatalf("query %d: error text diverges: seq=%v morsel=%v", i, werr, gerr)
					}
					continue
				}
				if len(want.Rows) != len(got.Rows) {
					t.Fatalf("query %d (workers=%d, size=%d): %d rows vs %d",
						i, workers, size, len(want.Rows), len(got.Rows))
				}
				for ri := range want.Rows {
					for ci := range want.Rows[ri] {
						if !want.Rows[ri][ci].Equal(got.Rows[ri][ci]) {
							t.Fatalf("query %d: row %d col %d: %v vs %v",
								i, ri, ci, want.Rows[ri][ci], got.Rows[ri][ci])
						}
					}
				}
			}
		})
	}
}

// witnessDB builds a single wide table with exactly one matching row at a
// chosen position, so first-witness cancellation has a deterministic
// decisive morsel to race against the rest of the pool.
func witnessDB(t testing.TB, rows, witnessAt int) *storage.Database {
	t.Helper()
	tab := storage.NewTable("t", "id",
		storage.Column{Name: "id", Type: sqlir.TypeNumber},
		storage.Column{Name: "v", Type: sqlir.TypeNumber},
	)
	for i := 0; i < rows; i++ {
		v := 0.0
		if i == witnessAt {
			v = 1
		}
		tab.MustInsert(sqlir.NewInt(i), sqlir.NewNumber(v))
	}
	return storage.NewDatabase("witness", storage.NewSchema(tab))
}

func witnessProbe(v float64) sqlexec.ExistsQuery {
	return sqlexec.ExistsQuery{
		From: &sqlir.JoinPath{Tables: []string{"t"}},
		AndPreds: []sqlir.Predicate{{
			Col: sqlir.ColumnRef{Table: "t", Column: "v"}, ColSet: true,
			Op: sqlir.OpEq, OpSet: true, Val: sqlir.NewNumber(v), ValSet: true,
		}},
	}
}

// TestMorselFirstWitnessCancellationRace races first-witness cancellation
// against pool drain under the race detector: a witness in the first
// morsel, a witness in the last morsel, and no witness at all, each
// repeated with a wide fan-out and morsels small enough that dozens are in
// flight when the decisive one lands. The answer must be deterministic in
// every case — benign morsel cancellations above the watermark must never
// surface.
func TestMorselFirstWitnessCancellationRace(t *testing.T) {
	const rows = 50_000
	cases := []struct {
		name      string
		witnessAt int
		probe     sqlexec.ExistsQuery
		want      bool
	}{
		{"witness-first-morsel", 3, witnessProbe(1), true},
		{"witness-last-morsel", rows - 2, witnessProbe(1), true},
		{"no-witness", 0, witnessProbe(2), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db := witnessDB(t, rows, tc.witnessAt)
			iters := 60
			if testing.Short() {
				iters = 12
			}
			for i := 0; i < iters; i++ {
				ok, handled, err := sqlexec.ExistsMorsel(db, tc.probe, 8, 64)
				if err != nil {
					t.Fatalf("iter %d: %v", i, err)
				}
				if !handled {
					t.Fatalf("iter %d: probe fell off the streaming pipeline", i)
				}
				if ok != tc.want {
					t.Fatalf("iter %d: exists=%v, want %v", i, ok, tc.want)
				}
			}
		})
	}
}

// TestMorselExternalCancellation races caller cancellation against the
// morsel pool: a context cancelled mid-scan must surface context.Canceled
// (or, if the witness won the race, the true answer) and never a partial
// "false" — and the very next uncancelled probe over the same database must
// answer correctly, proving no shared state was poisoned.
func TestMorselExternalCancellation(t *testing.T) {
	const rows = 50_000
	db := witnessDB(t, rows, rows-2)
	probe := witnessProbe(1)
	iters := 40
	if testing.Short() {
		iters = 8
	}
	for i := 0; i < iters; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			// Cancel while morsels are (likely) mid-flight; the exact
			// interleaving varies run to run, which is the point.
			cancel()
			close(done)
		}()
		ok, handled, err := sqlexec.ExistsMorselCtx(ctx, db, probe, 8, 64)
		<-done
		if !handled {
			t.Fatalf("iter %d: probe fell off the streaming pipeline", i)
		}
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("iter %d: err = %v, want nil or context.Canceled", i, err)
		}
		if err == nil && !ok {
			t.Fatalf("iter %d: cancelled scan returned a definitive false", i)
		}
		// Shared storage (indexes, dictionaries) must be unharmed.
		ok, handled, err = sqlexec.ExistsMorsel(db, probe, 4, 1024)
		if err != nil || !handled || !ok {
			t.Fatalf("iter %d: healthy probe after cancellation: ok=%v handled=%v err=%v", i, ok, handled, err)
		}
	}
}
