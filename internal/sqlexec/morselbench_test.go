package sqlexec_test

import (
	"fmt"
	"testing"

	"github.com/duoquest/duoquest/internal/sqlexec"
)

// BenchmarkMorsel*: cores-vs-speedup measurements of the morsel-driven scan
// fan-out over the 300k-row (and, without -short, 1M-row) generated sweep
// database, at explicit worker counts so the recorded curve does not depend
// on the recording machine's core count. Every configuration first asserts
// probe-for-probe equivalence with the single-threaded columnar pipeline —
// the differential oracle — so parallel speedup can never come from changed
// semantics. `make bench-storage` records these alongside the columnar
// pairs into BENCH_storage.json. NOTE: wall-clock speedup only materializes
// when GOMAXPROCS >= workers; on a single-core recorder the curve is flat
// and the recorded value documents scheduling overhead, not scaling (see
// EXPERIMENTS.md).

// morselBenchWorkers is the swept fan-out width (caller included).
var morselBenchWorkers = []int{1, 2, 4, 8}

// morselBenchRows returns the swept data scales; the 1M scale is skipped
// under -short so CI's quick path stays quick.
func morselBenchRows() []int {
	if testing.Short() {
		return []int{300_000}
	}
	return []int{300_000, 1_000_000}
}

// splitSweepProbes partitions the loadgen probe workload into flat witness
// probes and grouped (GROUP BY/HAVING) probes, the two morsel merge paths.
func splitSweepProbes(b *testing.B, rows int) (flat, grouped []sqlexec.ExistsQuery) {
	b.Helper()
	g := sweepDB(b, rows)
	for _, eq := range g.Probes(150, 2) {
		if len(eq.GroupBy) > 0 || len(eq.Havings) > 0 {
			grouped = append(grouped, eq)
		} else {
			flat = append(flat, eq)
		}
	}
	if len(flat) == 0 || len(grouped) == 0 {
		b.Fatalf("probe split degenerate: %d flat, %d grouped", len(flat), len(grouped))
	}
	return flat, grouped
}

// checkMorselEquivalence asserts the morsel fan-out agrees with the
// single-threaded columnar pipeline on every probe at this configuration.
func checkMorselEquivalence(b *testing.B, rows, workers int, probes []sqlexec.ExistsQuery) {
	b.Helper()
	g := sweepDB(b, rows)
	for i, eq := range probes {
		mOK, mHandled, mErr := sqlexec.ExistsMorsel(g.DB, eq, workers, sqlexec.DefaultMorselSize)
		cOK, cHandled, cErr := sqlexec.ExistsStreaming(g.DB, eq)
		if mErr != nil || cErr != nil {
			b.Fatalf("probe %d: morsel err=%v columnar err=%v", i, mErr, cErr)
		}
		if !mHandled || !cHandled {
			b.Fatalf("probe %d: not streamed (morsel=%v columnar=%v)", i, mHandled, cHandled)
		}
		if mOK != cOK {
			b.Fatalf("probe %d (workers=%d): morsel=%v columnar=%v", i, workers, mOK, cOK)
		}
	}
}

func runMorselBench(b *testing.B, pick func(flat, grouped []sqlexec.ExistsQuery) []sqlexec.ExistsQuery) {
	for _, rows := range morselBenchRows() {
		for _, workers := range morselBenchWorkers {
			b.Run(fmt.Sprintf("rows=%d/workers=%d", rows, workers), func(b *testing.B) {
				flat, grouped := splitSweepProbes(b, rows)
				probes := pick(flat, grouped)
				checkMorselEquivalence(b, rows, workers, probes)
				g := sweepDB(b, rows)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for pi, eq := range probes {
						if _, _, err := sqlexec.ExistsMorsel(g.DB, eq, workers, sqlexec.DefaultMorselSize); err != nil {
							b.Fatalf("probe %d: %v", pi, err)
						}
					}
				}
			})
		}
	}
}

// Flat witness probes: first-witness short-circuit plus full-scan misses.
func BenchmarkMorselExists(b *testing.B) {
	runMorselBench(b, func(flat, _ []sqlexec.ExistsQuery) []sqlexec.ExistsQuery { return flat })
}

// Grouped existence: the deterministic partition/merge/fold path.
func BenchmarkMorselGroupedExists(b *testing.B) {
	runMorselBench(b, func(_, grouped []sqlexec.ExistsQuery) []sqlexec.ExistsQuery { return grouped })
}
