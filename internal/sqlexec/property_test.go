package sqlexec

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/sqlparse"
	"github.com/duoquest/duoquest/internal/storage"
)

// randomDB builds a seeded single-table database for property tests.
func randomDB(seed int64, rows int) *storage.Database {
	r := rand.New(rand.NewSource(seed))
	items := storage.NewTable("items", "id",
		storage.Column{Name: "id", Type: sqlir.TypeNumber},
		storage.Column{Name: "grp", Type: sqlir.TypeText},
		storage.Column{Name: "val", Type: sqlir.TypeNumber},
	)
	for i := 0; i < rows; i++ {
		items.MustInsert(
			sqlir.NewInt(i),
			sqlir.NewText(string(rune('a'+r.Intn(4)))),
			sqlir.NewInt(r.Intn(100)),
		)
	}
	return storage.NewDatabase("rand", storage.NewSchema(items))
}

func exec(t *testing.T, db *storage.Database, sql string) *Result {
	t.Helper()
	q, err := sqlparse.Parse(db.Schema, sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	res, err := Execute(db, q)
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	return res
}

// Property: selection is monotone — adding an AND predicate never grows the
// result set, and the filtered set is a subset of the base.
func TestPropSelectionMonotone(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		db := randomDB(seed, 50)
		base := exec(t, db, "SELECT id FROM items WHERE val > 20")
		narrowed := exec(t, db, "SELECT id FROM items WHERE val > 20 AND val < 80")
		if len(narrowed.Rows) > len(base.Rows) {
			t.Fatalf("seed %d: narrowed %d > base %d", seed, len(narrowed.Rows), len(base.Rows))
		}
		baseIDs := map[float64]bool{}
		for _, r := range base.Rows {
			baseIDs[r[0].Num] = true
		}
		for _, r := range narrowed.Rows {
			if !baseIDs[r[0].Num] {
				t.Fatalf("seed %d: row %v not in base", seed, r)
			}
		}
	}
}

// Property: OR is the union of its disjuncts.
func TestPropOrIsUnion(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		db := randomDB(seed, 50)
		left := exec(t, db, "SELECT id FROM items WHERE val < 30")
		right := exec(t, db, "SELECT id FROM items WHERE val > 70")
		both := exec(t, db, "SELECT id FROM items WHERE val < 30 OR val > 70")
		want := map[float64]bool{}
		for _, r := range left.Rows {
			want[r[0].Num] = true
		}
		for _, r := range right.Rows {
			want[r[0].Num] = true
		}
		if len(both.Rows) != len(want) {
			t.Fatalf("seed %d: OR size %d, union size %d", seed, len(both.Rows), len(want))
		}
	}
}

// Property: GROUP BY partitions — group COUNTs sum to the filtered row count.
func TestPropGroupPartition(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		db := randomDB(seed, 60)
		all := exec(t, db, "SELECT COUNT(*) FROM items")
		grouped := exec(t, db, "SELECT grp, COUNT(*) FROM items GROUP BY grp")
		sum := 0.0
		for _, r := range grouped.Rows {
			sum += r[1].Num
		}
		if sum != all.Rows[0][0].Num {
			t.Fatalf("seed %d: group counts sum %v != total %v", seed, sum, all.Rows[0][0].Num)
		}
	}
}

// Property: LIMIT k returns min(k, n) rows and a prefix of the unlimited
// ordering.
func TestPropLimitPrefix(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		db := randomDB(seed, 30)
		full := exec(t, db, "SELECT id FROM items ORDER BY val DESC")
		for _, k := range []int{1, 3, 10, 100} {
			lim := exec(t, db, fmt.Sprintf("SELECT id FROM items ORDER BY val DESC LIMIT %d", k))
			want := k
			if len(full.Rows) < k {
				want = len(full.Rows)
			}
			if len(lim.Rows) != want {
				t.Fatalf("seed %d k %d: got %d rows, want %d", seed, k, len(lim.Rows), want)
			}
			// Prefix check on the order key values (ids may tie on val,
			// but stable sort makes the full prefix deterministic).
			for i, r := range lim.Rows {
				if !r[0].Equal(full.Rows[i][0]) {
					t.Fatalf("seed %d k %d: row %d differs", seed, k, i)
				}
			}
		}
	}
}

// Property: ORDER BY yields a monotone key sequence.
func TestPropOrderMonotone(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		db := randomDB(seed, 40)
		asc := exec(t, db, "SELECT val FROM items ORDER BY val ASC")
		for i := 1; i < len(asc.Rows); i++ {
			if asc.Rows[i-1][0].Compare(asc.Rows[i][0]) > 0 {
				t.Fatalf("seed %d: ASC violated at %d", seed, i)
			}
		}
		desc := exec(t, db, "SELECT val FROM items ORDER BY val DESC")
		for i := 1; i < len(desc.Rows); i++ {
			if desc.Rows[i-1][0].Compare(desc.Rows[i][0]) < 0 {
				t.Fatalf("seed %d: DESC violated at %d", seed, i)
			}
		}
	}
}

// Property: DISTINCT result has no duplicate rows and the same value set as
// the non-distinct projection.
func TestPropDistinct(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		db := randomDB(seed, 50)
		all := exec(t, db, "SELECT grp FROM items")
		dis := exec(t, db, "SELECT DISTINCT grp FROM items")
		seen := map[string]bool{}
		for _, r := range dis.Rows {
			k := r[0].String()
			if seen[k] {
				t.Fatalf("seed %d: duplicate %v in DISTINCT", seed, r)
			}
			seen[k] = true
		}
		for _, r := range all.Rows {
			if !seen[r[0].String()] {
				t.Fatalf("seed %d: value %v missing from DISTINCT", seed, r)
			}
		}
	}
}

// Property: Exists(q) agrees with len(Execute(select-from-where)) > 0.
func TestPropExistsAgreesWithExecute(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		db := randomDB(seed, 30)
		for _, cut := range []float64{-1, 25, 50, 75, 101} {
			res := exec(t, db, fmt.Sprintf("SELECT id FROM items WHERE val > %g", cut))
			ok, err := Exists(db, ExistsQuery{
				From: pathOf("items"),
				Preds: []sqlir.Predicate{
					pred("items", "val", sqlir.OpGt, sqlir.NewNumber(cut)),
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if ok != (len(res.Rows) > 0) {
				t.Fatalf("seed %d cut %g: exists %v vs rows %d", seed, cut, ok, len(res.Rows))
			}
		}
	}
}

// Property: AVG lies within [MIN, MAX].
func TestPropAvgWithinMinMax(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		db := randomDB(seed, 40)
		res := exec(t, db, "SELECT MIN(val), AVG(val), MAX(val) FROM items")
		r := res.Rows[0]
		if r[1].Num < r[0].Num || r[1].Num > r[2].Num {
			t.Fatalf("seed %d: AVG %v outside [%v, %v]", seed, r[1], r[0], r[2])
		}
	}
}
