package sqlexec

import (
	"context"

	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/sqlparse"
	"github.com/duoquest/duoquest/internal/storage"
)

// randomDB builds a seeded single-table database for property tests.
func randomDB(seed int64, rows int) *storage.Database {
	r := rand.New(rand.NewSource(seed))
	items := storage.NewTable("items", "id",
		storage.Column{Name: "id", Type: sqlir.TypeNumber},
		storage.Column{Name: "grp", Type: sqlir.TypeText},
		storage.Column{Name: "val", Type: sqlir.TypeNumber},
	)
	for i := 0; i < rows; i++ {
		items.MustInsert(
			sqlir.NewInt(i),
			sqlir.NewText(string(rune('a'+r.Intn(4)))),
			sqlir.NewInt(r.Intn(100)),
		)
	}
	return storage.NewDatabase("rand", storage.NewSchema(items))
}

func exec(t *testing.T, db *storage.Database, sql string) *Result {
	t.Helper()
	q, err := sqlparse.Parse(db.Schema, sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	res, err := Execute(db, q)
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	return res
}

// Property: selection is monotone — adding an AND predicate never grows the
// result set, and the filtered set is a subset of the base.
func TestPropSelectionMonotone(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		db := randomDB(seed, 50)
		base := exec(t, db, "SELECT id FROM items WHERE val > 20")
		narrowed := exec(t, db, "SELECT id FROM items WHERE val > 20 AND val < 80")
		if len(narrowed.Rows) > len(base.Rows) {
			t.Fatalf("seed %d: narrowed %d > base %d", seed, len(narrowed.Rows), len(base.Rows))
		}
		baseIDs := map[float64]bool{}
		for _, r := range base.Rows {
			baseIDs[r[0].Num] = true
		}
		for _, r := range narrowed.Rows {
			if !baseIDs[r[0].Num] {
				t.Fatalf("seed %d: row %v not in base", seed, r)
			}
		}
	}
}

// Property: OR is the union of its disjuncts.
func TestPropOrIsUnion(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		db := randomDB(seed, 50)
		left := exec(t, db, "SELECT id FROM items WHERE val < 30")
		right := exec(t, db, "SELECT id FROM items WHERE val > 70")
		both := exec(t, db, "SELECT id FROM items WHERE val < 30 OR val > 70")
		want := map[float64]bool{}
		for _, r := range left.Rows {
			want[r[0].Num] = true
		}
		for _, r := range right.Rows {
			want[r[0].Num] = true
		}
		if len(both.Rows) != len(want) {
			t.Fatalf("seed %d: OR size %d, union size %d", seed, len(both.Rows), len(want))
		}
	}
}

// Property: GROUP BY partitions — group COUNTs sum to the filtered row count.
func TestPropGroupPartition(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		db := randomDB(seed, 60)
		all := exec(t, db, "SELECT COUNT(*) FROM items")
		grouped := exec(t, db, "SELECT grp, COUNT(*) FROM items GROUP BY grp")
		sum := 0.0
		for _, r := range grouped.Rows {
			sum += r[1].Num
		}
		if sum != all.Rows[0][0].Num {
			t.Fatalf("seed %d: group counts sum %v != total %v", seed, sum, all.Rows[0][0].Num)
		}
	}
}

// Property: LIMIT k returns min(k, n) rows and a prefix of the unlimited
// ordering.
func TestPropLimitPrefix(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		db := randomDB(seed, 30)
		full := exec(t, db, "SELECT id FROM items ORDER BY val DESC")
		for _, k := range []int{1, 3, 10, 100} {
			lim := exec(t, db, fmt.Sprintf("SELECT id FROM items ORDER BY val DESC LIMIT %d", k))
			want := k
			if len(full.Rows) < k {
				want = len(full.Rows)
			}
			if len(lim.Rows) != want {
				t.Fatalf("seed %d k %d: got %d rows, want %d", seed, k, len(lim.Rows), want)
			}
			// Prefix check on the order key values (ids may tie on val,
			// but stable sort makes the full prefix deterministic).
			for i, r := range lim.Rows {
				if !r[0].Equal(full.Rows[i][0]) {
					t.Fatalf("seed %d k %d: row %d differs", seed, k, i)
				}
			}
		}
	}
}

// Property: ORDER BY yields a monotone key sequence.
func TestPropOrderMonotone(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		db := randomDB(seed, 40)
		asc := exec(t, db, "SELECT val FROM items ORDER BY val ASC")
		for i := 1; i < len(asc.Rows); i++ {
			if asc.Rows[i-1][0].Compare(asc.Rows[i][0]) > 0 {
				t.Fatalf("seed %d: ASC violated at %d", seed, i)
			}
		}
		desc := exec(t, db, "SELECT val FROM items ORDER BY val DESC")
		for i := 1; i < len(desc.Rows); i++ {
			if desc.Rows[i-1][0].Compare(desc.Rows[i][0]) < 0 {
				t.Fatalf("seed %d: DESC violated at %d", seed, i)
			}
		}
	}
}

// Property: DISTINCT result has no duplicate rows and the same value set as
// the non-distinct projection.
func TestPropDistinct(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		db := randomDB(seed, 50)
		all := exec(t, db, "SELECT grp FROM items")
		dis := exec(t, db, "SELECT DISTINCT grp FROM items")
		seen := map[string]bool{}
		for _, r := range dis.Rows {
			k := r[0].String()
			if seen[k] {
				t.Fatalf("seed %d: duplicate %v in DISTINCT", seed, r)
			}
			seen[k] = true
		}
		for _, r := range all.Rows {
			if !seen[r[0].String()] {
				t.Fatalf("seed %d: value %v missing from DISTINCT", seed, r)
			}
		}
	}
}

// Property: Exists(q) agrees with len(Execute(select-from-where)) > 0.
func TestPropExistsAgreesWithExecute(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		db := randomDB(seed, 30)
		for _, cut := range []float64{-1, 25, 50, 75, 101} {
			res := exec(t, db, fmt.Sprintf("SELECT id FROM items WHERE val > %g", cut))
			ok, err := Exists(db, ExistsQuery{
				From: pathOf("items"),
				Preds: []sqlir.Predicate{
					pred("items", "val", sqlir.OpGt, sqlir.NewNumber(cut)),
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if ok != (len(res.Rows) > 0) {
				t.Fatalf("seed %d cut %g: exists %v vs rows %d", seed, cut, ok, len(res.Rows))
			}
		}
	}
}

// Property: AVG lies within [MIN, MAX].
func TestPropAvgWithinMinMax(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		db := randomDB(seed, 40)
		res := exec(t, db, "SELECT MIN(val), AVG(val), MAX(val) FROM items")
		r := res.Rows[0]
		if r[1].Num < r[0].Num || r[1].Num > r[2].Num {
			t.Fatalf("seed %d: AVG %v outside [%v, %v]", seed, r[1], r[0], r[2])
		}
	}
}

// ---------------------------------------------------------------------------
// Columnar differential properties: for random SPJA existence probes, the
// vectorized streaming pipeline (stream.go), the preserved pre-refactor
// row-based pipeline (rowstream.go), and the materializing reference
// executor must agree answer-for-answer — including on NULL-heavy columns
// (stressing the null bitmaps) and duplicate-heavy text columns (stressing
// the dictionary encoding), and across text-keyed FK joins (stressing
// dictionary-code probe translation).

// columnarDB builds a seeded three-table database with a text primary key
// (text-text join steps), a numeric FK chain, ~40% NULLs in two columns,
// and text drawn from a tiny alphabet so dictionary codes repeat heavily.
func columnarDB(seed int64, rows int) *storage.Database {
	r := rand.New(rand.NewSource(seed))
	cat := storage.NewTable("cat", "name",
		storage.Column{Name: "name", Type: sqlir.TypeText},
		storage.Column{Name: "rank", Type: sqlir.TypeNumber},
	)
	owner := storage.NewTable("owner", "oid",
		storage.Column{Name: "oid", Type: sqlir.TypeNumber},
		storage.Column{Name: "region", Type: sqlir.TypeText},
	)
	item := storage.NewTable("item", "id",
		storage.Column{Name: "id", Type: sqlir.TypeNumber},
		storage.Column{Name: "cat", Type: sqlir.TypeText},
		storage.Column{Name: "oid", Type: sqlir.TypeNumber},
		storage.Column{Name: "val", Type: sqlir.TypeNumber},
		storage.Column{Name: "note", Type: sqlir.TypeText},
	)
	s := storage.NewSchema(cat, owner, item)
	s.AddForeignKey("item", "cat", "cat", "name")
	s.AddForeignKey("item", "oid", "owner", "oid")

	cats := []string{"alpha", "beta", "gamma", "delta"}
	for i, c := range cats {
		cat.MustInsert(sqlir.NewText(c), sqlir.NewInt(i))
	}
	for i := 0; i < 6; i++ {
		owner.MustInsert(sqlir.NewInt(i), sqlir.NewText(string(rune('p'+i%3))))
	}
	notes := []string{"dup", "dup", "dup", "rare", "x y", "'quoted'", ""}
	for i := 0; i < rows; i++ {
		catV, oidV, valV, noteV := sqlir.Null(), sqlir.NewInt(r.Intn(7)), sqlir.Null(), sqlir.Null()
		if r.Intn(10) < 9 {
			catV = sqlir.NewText(cats[r.Intn(len(cats))])
		}
		if r.Intn(10) < 6 { // ~40% NULL
			valV = sqlir.NewInt(r.Intn(5))
		}
		if r.Intn(10) < 6 {
			noteV = sqlir.NewText(notes[r.Intn(len(notes))])
		}
		item.MustInsert(sqlir.NewInt(i), catV, oidV, valV, noteV)
	}
	return storage.NewDatabase("columnar", storage.NewSchema(cat, owner, item))
}

// randomColumnarExists draws one random existence probe over columnarDB's
// join path: mixed AND/OR predicates across all columns and ops, sometimes
// grouped with HAVING aggregates.
func randomColumnarExists(r *rand.Rand) ExistsQuery {
	cols := []sqlir.ColumnRef{
		{Table: "item", Column: "val"},
		{Table: "item", Column: "note"},
		{Table: "item", Column: "cat"},
		{Table: "cat", Column: "rank"},
		{Table: "cat", Column: "name"},
		{Table: "owner", Column: "region"},
	}
	vals := []sqlir.Value{
		sqlir.NewInt(0), sqlir.NewInt(2), sqlir.NewInt(4), sqlir.NewInt(99),
		sqlir.NewText("alpha"), sqlir.NewText("dup"), sqlir.NewText("rare"),
		sqlir.NewText("absent"), sqlir.NewText("%u%"), sqlir.NewText("p"),
		sqlir.Null(),
	}
	ops := []sqlir.Op{sqlir.OpEq, sqlir.OpNe, sqlir.OpLt, sqlir.OpGt, sqlir.OpLe, sqlir.OpGe, sqlir.OpLike}
	randPred := func() sqlir.Predicate {
		c := cols[r.Intn(len(cols))]
		return sqlir.Predicate{
			Col: c, ColSet: true,
			Op: ops[r.Intn(len(ops))], OpSet: true,
			Val: vals[r.Intn(len(vals))], ValSet: true,
		}
	}
	eq := ExistsQuery{
		From: &sqlir.JoinPath{
			Tables: []string{"item", "cat", "owner"},
			Edges: []sqlir.JoinEdge{
				{FromTable: "item", FromColumn: "cat", ToTable: "cat", ToColumn: "name"},
				{FromTable: "item", FromColumn: "oid", ToTable: "owner", ToColumn: "oid"},
			},
		},
		Conj: sqlir.LogicAnd,
	}
	if r.Intn(2) == 0 {
		eq.Conj = sqlir.LogicOr
	}
	for n := r.Intn(3); n > 0; n-- {
		eq.Preds = append(eq.Preds, randPred())
	}
	for n := r.Intn(2); n > 0; n-- {
		eq.AndPreds = append(eq.AndPreds, randPred())
	}
	if r.Intn(3) == 0 {
		eq.GroupBy = append(eq.GroupBy, cols[r.Intn(len(cols))])
		aggs := []sqlir.AggFunc{sqlir.AggCount, sqlir.AggSum, sqlir.AggMin, sqlir.AggMax, sqlir.AggAvg}
		h := sqlir.HavingExpr{
			Agg: aggs[r.Intn(len(aggs))], AggSet: true,
			Col: cols[r.Intn(len(cols))], ColSet: true,
			Op: ops[r.Intn(4)], OpSet: true,
			Val: vals[r.Intn(4)], ValSet: true,
		}
		if r.Intn(3) == 0 {
			h.Agg, h.Col = sqlir.AggCount, sqlir.Star
		}
		eq.Havings = append(eq.Havings, h)
	}
	return eq
}

// Property: the columnar streaming pipeline, the preserved row-based
// pipeline, and the materializing reference executor agree on every random
// probe — same answer, same error, and identical compile coverage.
func TestPropColumnarRowReferenceAgree(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		db := columnarDB(seed, 120)
		r := rand.New(rand.NewSource(seed + 1000))
		for i := 0; i < 150; i++ {
			eq := randomColumnarExists(r)

			colOK, colHandled, colErr := streamExists(context.Background(), db, eq, &discardCounters)
			rowOK, rowHandled, rowErr := rowStreamExists(db, eq, &discardCounters)

			if colHandled != rowHandled {
				t.Fatalf("seed %d probe %d: columnar handled=%v, row handled=%v", seed, i, colHandled, rowHandled)
			}
			if !colHandled {
				continue // both fall back to the same materializing path
			}
			if (colErr == nil) != (rowErr == nil) {
				t.Fatalf("seed %d probe %d: columnar err=%v, row err=%v", seed, i, colErr, rowErr)
			}
			if colErr != nil {
				if colErr.Error() != rowErr.Error() {
					t.Fatalf("seed %d probe %d: error mismatch: %v vs %v", seed, i, colErr, rowErr)
				}
				continue
			}
			if colOK != rowOK {
				t.Fatalf("seed %d probe %d: columnar=%v row=%v for %+v", seed, i, colOK, rowOK, eq)
			}

			refOK, refErr := ExistsReference(db, eq)
			if (refErr == nil) != (colErr == nil) {
				t.Fatalf("seed %d probe %d: reference err=%v, streaming err=%v", seed, i, refErr, colErr)
			}
			if refErr == nil && refOK != colOK {
				t.Fatalf("seed %d probe %d: reference=%v streaming=%v for %+v", seed, i, refOK, colOK, eq)
			}
		}
		// The workload must not have corrupted the row/column duality.
		for _, tb := range db.Schema.Tables {
			if err := tb.CheckRowColumnConsistency(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// Property: full SPJA Execute over the NULL-heavy, duplicate-text database
// agrees between the fresh reference join and the prefix-sharing cache, for
// grouped aggregates over dictionary-encoded and NULL-heavy columns.
func TestPropColumnarExecuteAgree(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		db := columnarDB(seed, 100)
		jc := NewJoinCache(db)
		queries := []string{
			"SELECT item.note, COUNT(*) FROM item GROUP BY item.note",
			"SELECT item.cat, SUM(item.val) FROM item GROUP BY item.cat HAVING COUNT(*) > 3",
			"SELECT item.cat, AVG(item.val) FROM item GROUP BY item.cat",
			"SELECT DISTINCT item.note FROM item",
			"SELECT MIN(item.val), MAX(item.val) FROM item WHERE item.note = 'dup'",
		}
		for _, q := range queries {
			parsed, err := sqlparse.Parse(db.Schema, q)
			if err != nil {
				t.Fatalf("parse %q: %v", q, err)
			}
			ref, err := Execute(db, parsed)
			if err != nil {
				t.Fatalf("execute %q: %v", q, err)
			}
			cached, err := jc.Execute(parsed)
			if err != nil {
				t.Fatalf("cached execute %q: %v", q, err)
			}
			if len(ref.Rows) != len(cached.Rows) {
				t.Fatalf("%q: %d rows vs %d cached", q, len(ref.Rows), len(cached.Rows))
			}
			for i := range ref.Rows {
				for j := range ref.Rows[i] {
					if !ref.Rows[i][j].Equal(cached.Rows[i][j]) {
						t.Fatalf("%q row %d col %d: %s vs %s", q, i, j, ref.Rows[i][j], cached.Rows[i][j])
					}
				}
			}
		}
	}
}

// Regression: Value.Compare treats NaN as ordering-equal to everything
// (both float comparisons false => 0), so the reference executor answers
// true for `NaN <= x` and `NaN >= x`. The columnar typed evaluator must
// reproduce that, not raw float comparison semantics.
func TestPropNaNComparisonSemantics(t *testing.T) {
	tb := storage.NewTable("n", "id",
		storage.Column{Name: "id", Type: sqlir.TypeNumber},
		storage.Column{Name: "v", Type: sqlir.TypeNumber},
	)
	tb.MustInsert(sqlir.NewInt(1), sqlir.NewNumber(math.NaN()))
	db := storage.NewDatabase("nan", storage.NewSchema(tb))

	for _, op := range []sqlir.Op{sqlir.OpEq, sqlir.OpNe, sqlir.OpLt, sqlir.OpGt, sqlir.OpLe, sqlir.OpGe} {
		for _, val := range []sqlir.Value{sqlir.NewNumber(5), sqlir.NewNumber(math.NaN())} {
			eq := ExistsQuery{
				From: pathOf("n"),
				Preds: []sqlir.Predicate{{
					Col: sqlir.ColumnRef{Table: "n", Column: "v"}, ColSet: true,
					Op: op, OpSet: true, Val: val, ValSet: true,
				}},
			}
			refOK, refErr := ExistsReference(db, eq)
			colOK, colHandled, colErr := streamExists(context.Background(), db, eq, &discardCounters)
			rowOK, rowHandled, rowErr := rowStreamExists(db, eq, &discardCounters)
			if refErr != nil || colErr != nil || rowErr != nil {
				t.Fatalf("op %s val %s: errors ref=%v col=%v row=%v", op, val, refErr, colErr, rowErr)
			}
			if !colHandled || !rowHandled {
				t.Fatalf("op %s val %s: not streamed", op, val)
			}
			if colOK != refOK || rowOK != refOK {
				t.Errorf("op %s val %s: ref=%v columnar=%v row=%v", op, val, refOK, colOK, rowOK)
			}
		}
	}
}
