package sqlexec

import (
	"context"

	"math"
	"strings"
	"testing"

	"github.com/duoquest/duoquest/internal/sqlir"
)

// TestExistsMalformedPathNoPanic pins the fallback behavior for a join path
// with edges but no tables: both entry points must report the reference
// error, not panic in the prefix splitter.
func TestExistsMalformedPathNoPanic(t *testing.T) {
	db := movieDB()
	eq := ExistsQuery{From: &sqlir.JoinPath{
		Edges: []sqlir.JoinEdge{{FromTable: "starring", FromColumn: "aid", ToTable: "actor", ToColumn: "aid"}},
	}}
	if _, err := Exists(db, eq); err == nil || !strings.Contains(err.Error(), "empty join path") {
		t.Errorf("Exists error = %v", err)
	}
	if _, err := NewJoinCache(db).Exists(eq); err == nil || !strings.Contains(err.Error(), "empty join path") {
		t.Errorf("JoinCache.Exists error = %v", err)
	}
}

// TestGroupedSumOverTextLazyError pins the lazy HAVING evaluation contract:
// SUM/AVG over a text column only errors when that aggregate is actually
// evaluated — a group rejected by an earlier HAVING condition must not
// surface the type error, matching the materializing reference path.
func TestGroupedSumOverTextLazyError(t *testing.T) {
	db := movieDB()
	sumName := sqlir.HavingExpr{
		Agg: sqlir.AggSum, AggSet: true,
		Col: sqlir.ColumnRef{Table: "actor", Column: "name"}, ColSet: true,
		Op: sqlir.OpGt, OpSet: true, Val: num(0), ValSet: true,
	}
	countStar := func(op sqlir.Op, v float64) sqlir.HavingExpr {
		return sqlir.HavingExpr{
			Agg: sqlir.AggCount, AggSet: true, Col: sqlir.Star, ColSet: true,
			Op: op, OpSet: true, Val: num(v), ValSet: true,
		}
	}
	path := &sqlir.JoinPath{Tables: []string{"actor"}}
	group := []sqlir.ColumnRef{{Table: "actor", Column: "gender"}}

	// COUNT(*) > 100 fails every group first: SUM(name) is never evaluated,
	// so neither path may error.
	eq := ExistsQuery{From: path, GroupBy: group, Havings: []sqlir.HavingExpr{countStar(sqlir.OpGt, 100), sumName}}
	refRel, err := join(context.Background(), db, path, &discardCounters)
	if err != nil {
		t.Fatal(err)
	}
	refOK, refErr := existsOn(context.Background(), db, refRel, eq)
	gotOK, gotErr := Exists(db, eq)
	if refErr != nil || gotErr != nil {
		t.Fatalf("short-circuited SUM must not error: ref=%v stream=%v", refErr, gotErr)
	}
	if refOK || gotOK {
		t.Fatalf("no group passes COUNT(*)>100: ref=%v stream=%v", refOK, gotOK)
	}

	// COUNT(*) >= 1 passes, so SUM(name) is evaluated: both paths must
	// report the same non-numeric error.
	eq.Havings = []sqlir.HavingExpr{countStar(sqlir.OpGe, 1), sumName}
	_, refErr = existsOn(context.Background(), db, refRel, eq)
	_, gotErr = Exists(db, eq)
	if refErr == nil || gotErr == nil {
		t.Fatalf("evaluated SUM over text must error: ref=%v stream=%v", refErr, gotErr)
	}
	if refErr.Error() != gotErr.Error() {
		t.Fatalf("error text diverges: ref=%q stream=%q", refErr, gotErr)
	}
}

// TestValueKeyInjective pins the key encoding against separator collisions:
// text payloads containing the NUL separator must not merge under
// DISTINCT/grouping.
func TestValueKeyInjective(t *testing.T) {
	rows := [][]sqlir.Value{
		{sqlir.NewText("a\x00tb"), sqlir.NewText("c")},
		{sqlir.NewText("a"), sqlir.NewText("b\x00tc")},
		{sqlir.NewText("a"), sqlir.NewText("b")},
		{sqlir.NewText("ab"), sqlir.NewText("")},
		{sqlir.NewText("5"), sqlir.NewText("x")},
		{sqlir.NewNumber(5), sqlir.NewText("x")},
		{sqlir.Null(), sqlir.NewText("x")},
	}
	seen := map[string][]sqlir.Value{}
	for _, row := range rows {
		var buf []byte
		for _, v := range row {
			buf = appendValueKey(buf, v)
		}
		if prev, dup := seen[string(buf)]; dup {
			t.Errorf("rows %v and %v collide on key %q", prev, row, buf)
		}
		seen[string(buf)] = row
	}
	// Equal rows must still produce equal keys.
	a := appendValueKey(nil, sqlir.NewText("x"))
	b := appendValueKey(nil, sqlir.NewText("x"))
	if string(a) != string(b) {
		t.Error("equal values must encode identically")
	}
	// -0.0 equals 0.0 under Value.Equal, so the keys must merge too (the
	// pre-refactor FormatNumber-based keys rendered both as "0").
	z := appendValueKey(nil, sqlir.NewNumber(0))
	nz := appendValueKey(nil, sqlir.NewNumber(math.Copysign(0, -1)))
	if string(z) != string(nz) {
		t.Errorf("-0.0 and 0.0 must share a key: %q vs %q", z, nz)
	}
}
