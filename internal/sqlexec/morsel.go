// Morsel-driven intra-query parallelism. One query's scan domain (a table's
// rows or a pushdown posting list) is partitioned into fixed-size morsels
// (storage.Morsels); workers claim morsels in ascending order off a shared
// cursor, evaluate the compiled plan over their morsel with fully private
// state, and the per-morsel outcomes are resolved in morsel order — so the
// parallel run's answer, error, and (for grouped probes, see morselgroup.go)
// accumulation order are bit-identical to the single-threaded scan, which
// remains the differential oracle.
//
// Parallelism is elastic and never blocking: the caller always works, and
// extra workers are recruited only by TryAcquire on the engine's bounded
// WorkerPool — the same pool whose tokens the enumeration verify workers
// hold while verifying (internal/enumerate), so total parallelism across
// inter-state verification and intra-query morsels stays capped at the
// engine's Workers setting. A pool-less context (PoolFrom == nil) runs the
// pre-existing sequential code paths untouched.
package sqlexec

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/duoquest/duoquest/internal/storage"
)

// DefaultMorselSize is the scan rows per morsel when the context does not
// carry an explicit size. 4096 rows (64 null-bitmap words) is large enough
// that the per-morsel claim/cancel bookkeeping amortizes below the cost of
// scanning the morsel, and small enough that a 300k-row scan still splits
// into ~73 units of work for the pool to balance.
const DefaultMorselSize = 64 * storage.MorselAlign

// WorkerPool is a bounded semaphore of execution tokens shared by everything
// that parallelizes on behalf of one engine: enumeration verify workers hold
// a token per verification job, and morsel fan-out recruits extra scan
// workers one token at a time. Acquisition never blocks (TryAcquire), so the
// pool throttles parallelism without ever deadlocking or delaying the
// caller's own progress. A nil *WorkerPool is valid everywhere and always
// declines tokens.
type WorkerPool struct {
	sem      chan struct{}
	perQuery int
}

// NewWorkerPool builds a pool with n tokens (n <= 0 means GOMAXPROCS).
// perQuery caps the workers one morsel run may use, caller included;
// perQuery <= 0 or > n means no per-query cap beyond the pool itself.
func NewWorkerPool(n, perQuery int) *WorkerPool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if perQuery <= 0 || perQuery > n {
		perQuery = n
	}
	return &WorkerPool{sem: make(chan struct{}, n), perQuery: perQuery}
}

// Cap is the pool's total token count (0 for a nil pool).
func (p *WorkerPool) Cap() int {
	if p == nil {
		return 0
	}
	return cap(p.sem)
}

// PerQuery is the per-morsel-run worker cap, caller included.
func (p *WorkerPool) PerQuery() int {
	if p == nil {
		return 1
	}
	return p.perQuery
}

// TryAcquire takes a token if one is free, never blocking.
func (p *WorkerPool) TryAcquire() bool {
	if p == nil {
		return false
	}
	select {
	case p.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release returns a token taken by TryAcquire.
func (p *WorkerPool) Release() {
	if p == nil {
		return
	}
	<-p.sem
}

type poolCtxKey struct{}
type morselSizeCtxKey struct{}

// WithPool attaches the engine's worker pool to a request context; execution
// paths opt into morsel parallelism only when a pool is present.
func WithPool(ctx context.Context, p *WorkerPool) context.Context {
	if p == nil {
		return ctx
	}
	return context.WithValue(ctx, poolCtxKey{}, p)
}

// PoolFrom returns the context's worker pool, or nil (sequential execution).
func PoolFrom(ctx context.Context) *WorkerPool {
	p, _ := ctx.Value(poolCtxKey{}).(*WorkerPool)
	return p
}

// WithMorselSize overrides the scan rows per morsel for this request.
// Any size >= 1 is honored (tests partition at 1 and 7 to stress the merge
// path); operator-facing flags normalize through storage.AlignMorselSize.
func WithMorselSize(ctx context.Context, size int) context.Context {
	if size < 1 {
		return ctx
	}
	return context.WithValue(ctx, morselSizeCtxKey{}, size)
}

// MorselSizeFrom returns the context's morsel size, or DefaultMorselSize.
func MorselSizeFrom(ctx context.Context) int {
	if n, ok := ctx.Value(morselSizeCtxKey{}).(int); ok {
		return n
	}
	return DefaultMorselSize
}

// morselResult is one fan-out's resolved outcome plus its stats.
type morselResult struct {
	found     bool  // a witness was found (flat-exists mode)
	err       error // the decisive error, resolved in morsel order
	workers   int   // workers that participated, caller included
	processed int64 // morsels actually claimed and run
}

// morselRun coordinates one fan-out: a shared ascending claim cursor,
// per-morsel outcome slots (each written by exactly one worker), and the
// "decided" watermark — the lowest morsel index whose outcome short-circuits
// the run (a witness, or an error). Claims above the watermark are skipped
// and in-flight morsels above it are cancelled through their per-morsel
// contexts, which the scan loops poll via the cancel.go checkpoints; morsels
// BELOW the watermark always finish, because sequential semantics demand
// that the first decisive event in row order wins (an error in morsel 2
// beats a witness in morsel 5, and vice versa).
type morselRun struct {
	morsels []storage.Morsel
	next    atomic.Int64
	decided atomic.Int64
	claimed atomic.Int64
	found   []bool
	errs    []error

	mu      sync.Mutex
	cancels map[int]context.CancelFunc
}

// decide lowers the watermark to m and cancels in-flight morsels above it.
func (r *morselRun) decide(m int) {
	for {
		cur := r.decided.Load()
		if int64(m) >= cur {
			return
		}
		if r.decided.CompareAndSwap(cur, int64(m)) {
			break
		}
	}
	r.mu.Lock()
	d := r.decided.Load()
	for idx, cancel := range r.cancels {
		if int64(idx) > d {
			cancel()
		}
	}
	r.mu.Unlock()
}

// worker claims and runs morsels until the domain or the watermark ends it.
// work receives the morsel's derived context and index, and must keep all
// mutable state private to that index.
func (r *morselRun) worker(ctx context.Context, work func(ctx context.Context, m int) (bool, error)) {
	for {
		m := int(r.next.Add(1)) - 1
		if m >= len(r.morsels) {
			return
		}
		// Claims are ascending: once this claim is above the watermark,
		// every later one is too.
		if int64(m) > r.decided.Load() {
			return
		}
		// Poll the request context once per claim: the per-morsel canceller
		// only checkpoints every checkpointRows rows, so with morsels smaller
		// than that a dead request would otherwise scan to completion.
		if err := ctx.Err(); err != nil {
			r.errs[m] = err
			r.decide(m)
			return
		}
		mctx, cancel := context.WithCancel(ctx)
		r.mu.Lock()
		if int64(m) > r.decided.Load() { // decided while registering
			r.mu.Unlock()
			cancel()
			return
		}
		r.cancels[m] = cancel
		r.mu.Unlock()
		r.claimed.Add(1)
		found, err := work(mctx, m)
		r.mu.Lock()
		delete(r.cancels, m)
		r.mu.Unlock()
		cancel()
		r.found[m], r.errs[m] = found, err
		if found || err != nil {
			r.decide(m)
		}
	}
}

// resolve scans outcomes in morsel order and returns the first decisive one
// — exactly the event the sequential scan would have hit first. Morsels
// cancelled or skipped because of the watermark sit strictly above the
// decisive index, so their (benign) context errors are never surfaced.
func (r *morselRun) resolve() (bool, error) {
	for m := range r.morsels {
		if r.found[m] {
			return true, nil
		}
		if err := r.errs[m]; err != nil {
			return false, err
		}
	}
	return false, nil
}

// runMorsels fans work over the morsels: the caller works the cursor itself
// and recruits up to PerQuery-1 extra workers by non-blocking pool token
// acquisition, so a saturated pool degrades gracefully to a sequential
// morsel walk rather than queuing.
func runMorsels(ctx context.Context, pool *WorkerPool, morsels []storage.Morsel,
	work func(ctx context.Context, m int) (bool, error)) morselResult {
	r := &morselRun{
		morsels: morsels,
		found:   make([]bool, len(morsels)),
		errs:    make([]error, len(morsels)),
		cancels: make(map[int]context.CancelFunc),
	}
	r.decided.Store(int64(len(morsels))) // sentinel: nothing decided yet

	maxExtra := len(morsels) - 1
	if pq := pool.PerQuery() - 1; pq < maxExtra {
		maxExtra = pq
	}
	extras := 0
	for extras < maxExtra && pool.TryAcquire() {
		extras++
	}
	var wg sync.WaitGroup
	for i := 0; i < extras; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer pool.Release()
			r.worker(ctx, work)
		}()
	}
	r.worker(ctx, work)
	wg.Wait()

	found, err := r.resolve()
	return morselResult{found: found, err: err, workers: extras + 1, processed: r.claimed.Load()}
}
