// Streaming verification executor: instead of materializing the full join
// and filtering afterwards (the reference path in exec.go), existence probes
// compile their predicates into bound evaluators, seed the pipeline from the
// most selective equality predicate's posting list in a persistent column
// index, and walk the join tree as a pipelined index-nested-loop join that
// short-circuits on the first witness. Grouped existence streams per-group
// aggregate accumulators instead of buffering matching tuples. The pipeline
// is behavior-preserving: any query shape it cannot compile falls back to
// the materializing path, and grouped probes keep the reference tuple
// enumeration order so floating-point aggregates stay bit-identical.
package sqlexec

import (
	"fmt"
	"strconv"
	"sync/atomic"

	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/storage"
)

// PipelineStats is a snapshot of the streaming executor's counters: how
// much verification work the pushdown pipeline served (and avoided) on
// behalf of one JoinCache.
type PipelineStats struct {
	StreamedExists int64 // existence probes answered by the streaming pipeline
	FallbackExists int64 // existence probes that fell back to materialize-then-filter
	IndexSeeds     int64 // probes seeded from a persistent column-index posting list
	IndexProbes    int64 // join-step posting-list lookups
	PrefixHits     int64 // joins materialized by extending an already-cached prefix
	JoinsBuilt     int64 // joins materialized from scratch
}

// IndexHits is the total posting-list work served by persistent indexes.
func (s PipelineStats) IndexHits() int64 { return s.IndexSeeds + s.IndexProbes }

// pipelineCounters is the mutable, concurrency-safe form of PipelineStats.
type pipelineCounters struct {
	streamed    atomic.Int64
	fallback    atomic.Int64
	indexSeeds  atomic.Int64
	indexProbes atomic.Int64
	prefixHits  atomic.Int64
	joinsBuilt  atomic.Int64
}

func (pc *pipelineCounters) snapshot() PipelineStats {
	if pc == nil {
		return PipelineStats{}
	}
	return PipelineStats{
		StreamedExists: pc.streamed.Load(),
		FallbackExists: pc.fallback.Load(),
		IndexSeeds:     pc.indexSeeds.Load(),
		IndexProbes:    pc.indexProbes.Load(),
		PrefixHits:     pc.prefixHits.Load(),
		JoinsBuilt:     pc.joinsBuilt.Load(),
	}
}

func (pc *pipelineCounters) add(c *atomic.Int64, n int64) {
	if n != 0 {
		c.Add(n)
	}
}

// discardCounters sinks pipeline counters for callers without a JoinCache
// (the package-level Exists/Execute entry points).
var discardCounters pipelineCounters

// boundPred is a predicate compiled against a stream plan: the slot and
// column ordinal are resolved once, so per-tuple evaluation is two slice
// loads and an operator dispatch instead of a map lookup plus a linear
// column-name scan.
type boundPred struct {
	slot int
	col  int
	op   sqlir.Op
	val  sqlir.Value
}

func (bp boundPred) eval(p *streamPlan, tp []int32) bool {
	v := p.tables[bp.slot].Row(int(tp[bp.slot]))[bp.col]
	return bp.op.Eval(v, bp.val)
}

// streamStep extends a partial tuple by one join edge: probe the bound
// probeSlot's probeCol value against the new table's hash index.
type streamStep struct {
	probeSlot int
	probeCol  int
	index     map[sqlir.Value][]int32
}

// streamPlan is a compiled existence probe: slot layout, join steps in
// enumeration order, the pushdown seed, and predicates bound to the
// earliest slot at which they can be evaluated.
type streamPlan struct {
	slots  map[string]int
	tables []*storage.Table // per slot, in bind order

	steps []streamStep // steps[i] binds slot i+1

	rootRows []int32 // pushdown seed posting list (valid when seeded)
	seeded   bool

	predsAt [][]boundPred // AND-semantics predicates checked when their slot binds
	orPreds []boundPred   // OR-connected predicates, checked once orDepth binds
	orDepth int
}

// bindCol resolves a column reference to (slot, column ordinal).
func (p *streamPlan) bindCol(c sqlir.ColumnRef) (int, int, error) {
	slot, ok := p.slots[c.Table]
	if !ok {
		return 0, 0, fmt.Errorf("sqlexec: column %s not in join path", c)
	}
	ci := p.tables[slot].ColumnIndex(c.Column)
	if ci < 0 {
		return 0, 0, fmt.Errorf("sqlexec: unknown column %s", c)
	}
	return slot, ci, nil
}

// pathEdge is a join edge oriented by introduction order: table a was bound
// before table b in the reference executor's edge walk.
type pathEdge struct {
	a, b       string
	aCol, bCol string
}

// orientEdges validates a join path exactly like the materializing join and
// returns its edges oriented from already-bound to newly-introduced table.
func orientEdges(db *storage.Database, jp *sqlir.JoinPath) ([]pathEdge, map[string]bool, error) {
	if jp == nil || len(jp.Tables) == 0 {
		return nil, nil, fmt.Errorf("sqlexec: empty join path")
	}
	if db.Table(jp.Tables[0]) == nil {
		return nil, nil, fmt.Errorf("sqlexec: unknown table %s", jp.Tables[0])
	}
	inSet := map[string]bool{jp.Tables[0]: true}
	pes := make([]pathEdge, 0, len(jp.Edges))
	for _, e := range jp.Edges {
		var pe pathEdge
		switch {
		case inSet[e.FromTable] && inSet[e.ToTable]:
			return nil, nil, fmt.Errorf("sqlexec: table %s joined twice", e.ToTable)
		case inSet[e.FromTable]:
			pe = pathEdge{a: e.FromTable, b: e.ToTable, aCol: e.FromColumn, bCol: e.ToColumn}
		case inSet[e.ToTable]:
			pe = pathEdge{a: e.ToTable, b: e.FromTable, aCol: e.ToColumn, bCol: e.FromColumn}
		default:
			return nil, nil, fmt.Errorf("sqlexec: join edge %s disconnected from path", e)
		}
		if db.Table(pe.b) == nil {
			return nil, nil, fmt.Errorf("sqlexec: unknown table %s", pe.b)
		}
		inSet[pe.b] = true
		pes = append(pes, pe)
	}
	return pes, inSet, nil
}

// buildStreamPlan compiles an exists query into a streaming plan. canReorder
// allows the root to move to the most selective equality predicate's table;
// it is only sound when tuple enumeration order is immaterial (the plain
// no-GROUP-BY witness probe). With canReorder false the plan keeps the
// reference executor's root and edge order, so emitted tuples appear in
// exactly the order the materializing path would produce them.
func buildStreamPlan(db *storage.Database, eq ExistsQuery, canReorder bool) (*streamPlan, error) {
	jp := eq.From
	pes, inSet, err := orientEdges(db, jp)
	if err != nil {
		return nil, err
	}

	andSem := eq.Conj == sqlir.LogicAnd || len(eq.Preds) <= 1
	andPreds := make([]sqlir.Predicate, 0, len(eq.Preds)+len(eq.AndPreds))
	var orRaw []sqlir.Predicate
	if andSem {
		andPreds = append(andPreds, eq.Preds...)
	} else {
		orRaw = eq.Preds
	}
	andPreds = append(andPreds, eq.AndPreds...)

	// Predicate pushdown: seed the pipeline from the smallest posting list
	// among the AND-semantics equality predicates. Posting lists preserve
	// row order, so seeding on the reference root table is always sound;
	// moving the root elsewhere additionally requires canReorder.
	root := jp.Tables[0]
	var rootRows []int32
	seeded, best := false, -1
	for _, p := range andPreds {
		if p.Op != sqlir.OpEq || p.Val.IsNull() || !inSet[p.Col.Table] {
			continue
		}
		if !canReorder && p.Col.Table != jp.Tables[0] {
			continue
		}
		t := db.Table(p.Col.Table)
		if t == nil || t.ColumnIndex(p.Col.Column) < 0 {
			continue // surfaces as a bind error below
		}
		idx, ierr := t.Index(p.Col.Column)
		if ierr != nil {
			continue
		}
		postings := idx[p.Val]
		if best < 0 || len(postings) < best {
			best = len(postings)
			root = p.Col.Table
			rootRows = postings
			seeded = true
		}
	}

	plan := &streamPlan{slots: make(map[string]int, len(jp.Tables)), seeded: seeded, rootRows: rootRows}
	addTable := func(name string) {
		plan.slots[name] = len(plan.tables)
		plan.tables = append(plan.tables, db.Table(name))
	}
	addStep := func(parent string, parentCol string, child string, childCol string) error {
		pt, ct := db.Table(parent), db.Table(child)
		probeCol := pt.ColumnIndex(parentCol)
		ci := ct.ColumnIndex(childCol)
		if probeCol < 0 || ci < 0 {
			return fmt.Errorf("sqlexec: join edge references unknown column")
		}
		idx, ierr := ct.Index(childCol)
		if ierr != nil {
			return ierr
		}
		probeSlot := plan.slots[parent]
		addTable(child)
		plan.steps = append(plan.steps, streamStep{probeSlot: probeSlot, probeCol: probeCol, index: idx})
		return nil
	}

	addTable(root)
	if root == jp.Tables[0] {
		// Reference enumeration order: edges exactly as introduced.
		for _, pe := range pes {
			if err := addStep(pe.a, pe.aCol, pe.b, pe.bCol); err != nil {
				return nil, err
			}
		}
	} else {
		// Re-root the join tree at the seed table (BFS over the edge set).
		type half struct{ fromCol, to, toCol string }
		adj := map[string][]half{}
		for _, pe := range pes {
			adj[pe.a] = append(adj[pe.a], half{pe.aCol, pe.b, pe.bCol})
			adj[pe.b] = append(adj[pe.b], half{pe.bCol, pe.a, pe.aCol})
		}
		queue := []string{root}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, h := range adj[cur] {
				if _, bound := plan.slots[h.to]; bound {
					continue
				}
				if err := addStep(cur, h.fromCol, h.to, h.toCol); err != nil {
					return nil, err
				}
				queue = append(queue, h.to)
			}
		}
	}

	plan.predsAt = make([][]boundPred, len(plan.tables))
	for _, p := range andPreds {
		bp, berr := plan.bindPred(p)
		if berr != nil {
			return nil, berr
		}
		plan.predsAt[bp.slot] = append(plan.predsAt[bp.slot], bp)
	}
	for _, p := range orRaw {
		bp, berr := plan.bindPred(p)
		if berr != nil {
			return nil, berr
		}
		plan.orPreds = append(plan.orPreds, bp)
		if bp.slot > plan.orDepth {
			plan.orDepth = bp.slot
		}
	}
	return plan, nil
}

func (p *streamPlan) bindPred(pr sqlir.Predicate) (boundPred, error) {
	slot, ci, err := p.bindCol(pr.Col)
	if err != nil {
		return boundPred{}, err
	}
	return boundPred{slot: slot, col: ci, op: pr.Op, val: pr.Val}, nil
}

// run enumerates joined tuples depth-first, evaluating each bound predicate
// at the shallowest depth where its slot is bound. emit returning stop=true
// short-circuits the whole enumeration (the first-witness early exit).
func (p *streamPlan) run(pc *pipelineCounters, emit func(tp []int32) (stop bool, err error)) error {
	tp := make([]int32, len(p.tables))
	var probes int64

	check := func(depth int) bool {
		for _, bp := range p.predsAt[depth] {
			if !bp.eval(p, tp) {
				return false
			}
		}
		if len(p.orPreds) > 0 && depth == p.orDepth {
			hit := false
			for _, bp := range p.orPreds {
				if bp.eval(p, tp) {
					hit = true
					break
				}
			}
			if !hit {
				return false
			}
		}
		return true
	}

	var rec func(depth int) (bool, error)
	rec = func(depth int) (bool, error) {
		if depth == len(p.tables) {
			return emit(tp)
		}
		step := p.steps[depth-1]
		v := p.tables[step.probeSlot].Row(int(tp[step.probeSlot]))[step.probeCol]
		if v.IsNull() {
			return false, nil
		}
		probes++
		for _, ri := range step.index[v] {
			tp[depth] = ri
			if !check(depth) {
				continue
			}
			stop, err := rec(depth + 1)
			if stop || err != nil {
				return stop, err
			}
		}
		return false, nil
	}

	visit := func(ri int32) (bool, error) {
		tp[0] = ri
		if !check(0) {
			return false, nil
		}
		return rec(1)
	}

	defer func() { pc.add(&pc.indexProbes, probes) }()
	if p.seeded {
		for _, ri := range p.rootRows {
			if stop, err := visit(ri); stop || err != nil {
				return err
			}
		}
		return nil
	}
	for i, n := 0, p.tables[0].NumRows(); i < n; i++ {
		if stop, err := visit(int32(i)); stop || err != nil {
			return err
		}
	}
	return nil
}

// streamExists answers an exists query through the streaming pipeline.
// handled=false means the query could not be compiled (structurally broken
// path, predicate outside it, or an unsupported HAVING shape); the caller
// must fall back to the materializing path, which reproduces the reference
// behavior — including its error messages — exactly.
func streamExists(db *storage.Database, eq ExistsQuery, pc *pipelineCounters) (ok, handled bool, err error) {
	grouped := len(eq.GroupBy) > 0 || len(eq.Havings) > 0
	plan, perr := buildStreamPlan(db, eq, !grouped)
	if perr != nil {
		return false, false, nil
	}
	if !grouped {
		if plan.seeded {
			pc.add(&pc.indexSeeds, 1)
		}
		found := false
		rerr := plan.run(pc, func([]int32) (bool, error) {
			found = true
			return true, nil
		})
		return found, true, rerr
	}
	ok, handled, err = streamGroupedExists(plan, eq, pc)
	if handled && plan.seeded {
		// Counted only once the probe is actually streamed, so fallbacks
		// (e.g. unsupported HAVING shapes) don't inflate pushdown coverage.
		pc.add(&pc.indexSeeds, 1)
	}
	return ok, handled, err
}

// groupCol is one aggregated column tracked per group state.
type groupCol struct {
	slot, col int
	ref       sqlir.ColumnRef
}

// groupAcc accumulates one column's aggregates over a streamed group,
// mirroring evalAggregate's accumulation exactly (including NULL handling
// and first-value semantics for unaggregated HAVING columns). The first
// non-numeric value is recorded rather than rejected eagerly: the reference
// path evaluates HAVING aggregates lazily per group and short-circuits on
// the first failing condition, so a SUM/AVG type error must only surface if
// that aggregate is actually evaluated.
type groupAcc struct {
	count    int
	sum      float64
	min, max sqlir.Value
	first    sqlir.Value
	hasFirst bool
	bad      sqlir.Value // first non-null non-numeric value, for SUM/AVG
	hasBad   bool
}

type groupState struct {
	rows int
	accs []groupAcc
}

// streamGroupedExists streams matching tuples into per-group aggregate
// states — no tuple buffering — then checks HAVING per group. The plan keeps
// reference enumeration order, so group discovery order and floating-point
// accumulation order match the materializing path bit for bit.
func streamGroupedExists(plan *streamPlan, eq ExistsQuery, pc *pipelineCounters) (ok, handled bool, err error) {
	type keyCol struct{ slot, col int }
	keys := make([]keyCol, 0, len(eq.GroupBy))
	for _, g := range eq.GroupBy {
		slot, ci, berr := plan.bindCol(g)
		if berr != nil {
			return false, false, nil
		}
		keys = append(keys, keyCol{slot, ci})
	}

	var cols []groupCol
	colAt := map[sqlir.ColumnRef]int{}
	for _, h := range eq.Havings {
		if h.Col.IsStar() {
			if h.Agg != sqlir.AggCount {
				return false, false, nil // reference path reports the error
			}
			continue
		}
		if h.Agg > sqlir.AggAvg {
			return false, false, nil
		}
		if _, seen := colAt[h.Col]; !seen {
			slot, ci, berr := plan.bindCol(h.Col)
			if berr != nil {
				return false, false, nil
			}
			colAt[h.Col] = len(cols)
			cols = append(cols, groupCol{slot: slot, col: ci, ref: h.Col})
		}
	}

	states := map[string]*groupState{}
	var order []*groupState
	if len(eq.GroupBy) == 0 {
		// SQL's implicit single group exists even over zero rows.
		st := &groupState{accs: make([]groupAcc, len(cols))}
		states[""] = st
		order = append(order, st)
	}

	var keyBuf []byte
	rerr := plan.run(pc, func(tp []int32) (bool, error) {
		keyBuf = keyBuf[:0]
		for _, k := range keys {
			v := plan.tables[k.slot].Row(int(tp[k.slot]))[k.col]
			keyBuf = appendValueKey(keyBuf, v)
		}
		st, seen := states[string(keyBuf)]
		if !seen {
			st = &groupState{accs: make([]groupAcc, len(cols))}
			states[string(keyBuf)] = st
			order = append(order, st)
		}
		st.rows++
		for i := range cols {
			c := &cols[i]
			v := plan.tables[c.slot].Row(int(tp[c.slot]))[c.col]
			a := &st.accs[i]
			if !a.hasFirst {
				a.first, a.hasFirst = v, true
			}
			if v.IsNull() {
				continue
			}
			if !a.hasBad && v.Kind != sqlir.KindNumber {
				a.bad, a.hasBad = v, true
			}
			if a.count == 0 {
				a.min, a.max = v, v
			} else {
				if v.Less(a.min) {
					a.min = v
				}
				if a.max.Less(v) {
					a.max = v
				}
			}
			if v.Kind == sqlir.KindNumber {
				a.sum += v.Num
			}
			a.count++
		}
		return false, nil
	})
	if rerr != nil {
		return false, true, rerr
	}

	for _, st := range order {
		pass := true
		for _, h := range eq.Havings {
			hv, herr := streamedHavingValue(st, cols, colAt, h)
			if herr != nil {
				return false, true, herr
			}
			if !h.Op.Eval(hv, h.Val) {
				pass = false
				break
			}
		}
		if pass && (st.rows > 0 || len(eq.GroupBy) == 0) {
			return true, true, nil
		}
	}
	return false, true, nil
}

// streamedHavingValue reads one HAVING aggregate off a streamed group state,
// with the same empty-group and non-numeric-rejection semantics as
// evalAggregate — in particular, SUM/AVG over non-numeric data only errors
// when that aggregate is actually evaluated for a group.
func streamedHavingValue(st *groupState, cols []groupCol, colAt map[sqlir.ColumnRef]int, h sqlir.HavingExpr) (sqlir.Value, error) {
	if h.Col.IsStar() {
		return sqlir.NewInt(st.rows), nil
	}
	i := colAt[h.Col]
	a := st.accs[i]
	switch h.Agg {
	case sqlir.AggNone:
		if st.rows == 0 {
			return sqlir.Null(), nil
		}
		return a.first, nil
	case sqlir.AggCount:
		return sqlir.NewInt(a.count), nil
	case sqlir.AggMin:
		return a.min, nil
	case sqlir.AggMax:
		return a.max, nil
	case sqlir.AggSum:
		if a.hasBad {
			return sqlir.Null(), errNonNumericAgg(cols[i].ref, a.bad)
		}
		if a.count == 0 {
			return sqlir.Null(), nil
		}
		return sqlir.NewNumber(a.sum), nil
	case sqlir.AggAvg:
		if a.hasBad {
			return sqlir.Null(), errNonNumericAgg(cols[i].ref, a.bad)
		}
		if a.count == 0 {
			return sqlir.Null(), nil
		}
		return sqlir.NewNumber(a.sum / float64(a.count)), nil
	default:
		return sqlir.Null(), nil
	}
}

// errNonNumericAgg is shared by the streaming and materializing aggregate
// evaluators so both paths reject SUM/AVG over non-numeric data identically.
func errNonNumericAgg(col sqlir.ColumnRef, v sqlir.Value) error {
	return fmt.Errorf("sqlexec: SUM/AVG over non-numeric value %s in column %s", v, col)
}

// appendValueKey appends an injective, kind-tagged encoding of v to buf —
// the shared key builder for grouping, DISTINCT, and streamed group states.
// Text is length-prefixed so payloads containing the separator byte cannot
// collide across adjacent values; numbers rely on FormatFloat 'g/-1'
// round-tripping exactly. Key equality therefore coincides with Value.Equal
// on concatenated encodings.
func appendValueKey(buf []byte, v sqlir.Value) []byte {
	switch v.Kind {
	case sqlir.KindText:
		buf = append(buf, 't')
		buf = strconv.AppendInt(buf, int64(len(v.Text)), 10)
		buf = append(buf, ':')
		buf = append(buf, v.Text...)
	case sqlir.KindNumber:
		buf = append(buf, 'n')
		if v.Num == 0 {
			buf = append(buf, '0') // normalize -0.0, which Value.Equal treats as 0
		} else {
			buf = strconv.AppendFloat(buf, v.Num, 'g', -1, 64)
		}
	default:
		buf = append(buf, 'z')
	}
	return append(buf, 0)
}
