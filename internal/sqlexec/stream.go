// Vectorized streaming verification executor: existence probes compile
// their predicates into typed evaluators over the storage engine's column
// vectors — float comparisons for numeric columns, dictionary-code
// comparisons for text equality — seed the pipeline from the most selective
// equality predicate's posting list in a typed column index, and walk the
// join tree as a pipelined index-nested-loop join whose probes are keyed by
// float value or dictionary code instead of boxed sqlir.Value structs.
// Grouped existence streams per-group aggregate accumulators under
// fixed-width binary group keys (a tag byte plus the float bits or
// dictionary code — no string formatting). The pipeline is
// behavior-preserving: any query shape it cannot compile falls back to the
// materializing path, and grouped probes keep the reference tuple
// enumeration order so floating-point aggregates stay bit-identical. The
// pre-columnar row-based pipeline is preserved in rowstream.go as a second
// oracle and benchmark baseline.
package sqlexec

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"sync/atomic"

	"github.com/duoquest/duoquest/internal/faultinject"
	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/storage"
)

// PipelineStats is a snapshot of the streaming executor's counters: how
// much verification work the pushdown pipeline served (and avoided) on
// behalf of one JoinCache.
type PipelineStats struct {
	StreamedExists int64 // existence probes answered by the streaming pipeline
	FallbackExists int64 // existence probes that fell back to materialize-then-filter
	IndexSeeds     int64 // probes seeded from a persistent column-index posting list
	IndexProbes    int64 // join-step posting-list lookups
	PrefixHits     int64 // joins materialized by extending an already-cached prefix
	JoinsBuilt     int64 // joins materialized from scratch
	MorselRuns     int64 // scans fanned out through the morsel runner
	Morsels        int64 // morsels claimed and executed across all runs
	MorselWorkers  int64 // sum over runs of workers used (caller included)
}

// IndexHits is the total posting-list work served by persistent indexes.
func (s PipelineStats) IndexHits() int64 { return s.IndexSeeds + s.IndexProbes }

// AvgMorselWorkers is the mean degree of parallelism actually achieved per
// morsel-parallel scan — the per-query parallel efficiency numerator: with
// an idle pool it approaches the per-query worker cap, and under saturation
// (all tokens held by enumeration verify workers) it degrades toward 1.
func (s PipelineStats) AvgMorselWorkers() float64 {
	if s.MorselRuns == 0 {
		return 0
	}
	return float64(s.MorselWorkers) / float64(s.MorselRuns)
}

// pipelineCounters is the mutable, concurrency-safe form of PipelineStats.
type pipelineCounters struct {
	streamed      atomic.Int64
	fallback      atomic.Int64
	indexSeeds    atomic.Int64
	indexProbes   atomic.Int64
	prefixHits    atomic.Int64
	joinsBuilt    atomic.Int64
	morselRuns    atomic.Int64
	morsels       atomic.Int64
	morselWorkers atomic.Int64
}

func (pc *pipelineCounters) snapshot() PipelineStats {
	if pc == nil {
		return PipelineStats{}
	}
	return PipelineStats{
		StreamedExists: pc.streamed.Load(),
		FallbackExists: pc.fallback.Load(),
		IndexSeeds:     pc.indexSeeds.Load(),
		IndexProbes:    pc.indexProbes.Load(),
		PrefixHits:     pc.prefixHits.Load(),
		JoinsBuilt:     pc.joinsBuilt.Load(),
		MorselRuns:     pc.morselRuns.Load(),
		Morsels:        pc.morsels.Load(),
		MorselWorkers:  pc.morselWorkers.Load(),
	}
}

func (pc *pipelineCounters) add(c *atomic.Int64, n int64) {
	if n != 0 {
		c.Add(n)
	}
}

// addMorselRun records one resolved fan-out's stats.
func (pc *pipelineCounters) addMorselRun(res morselResult) {
	pc.add(&pc.morselRuns, 1)
	pc.add(&pc.morsels, res.processed)
	pc.add(&pc.morselWorkers, int64(res.workers))
}

// discardCounters sinks pipeline counters for callers without a JoinCache
// (the package-level Exists/Execute entry points).
var discardCounters pipelineCounters

func errColNotInPath(c sqlir.ColumnRef) error {
	return fmt.Errorf("sqlexec: column %s not in join path", c)
}

func errUnknownCol(c sqlir.ColumnRef) error {
	return fmt.Errorf("sqlexec: unknown column %s", c)
}

func errEdgeUnknownColumn() error {
	return fmt.Errorf("sqlexec: join edge references unknown column")
}

// predKind discriminates the compiled form of a bound predicate.
type predKind uint8

const (
	// predGeneric materializes the cell and calls Op.Eval — the fallback
	// that is correct for every (column type, literal kind, op) shape.
	predGeneric predKind = iota
	// predNum compares the raw float vector against a numeric literal.
	predNum
	// predTextEq/predTextNe compare dictionary codes against the
	// literal's code — one integer compare, no string hashing.
	predTextEq
	predTextNe
	// predTextNeAll: != against a string absent from the dictionary —
	// every non-null row matches.
	predTextNeAll
	// predNever can match no row (NULL literal, or = against a string
	// absent from the dictionary).
	predNever
)

// boundPred is a predicate compiled against a stream plan: the slot is
// resolved once and the comparison is specialized to the column vector's
// type, so per-row evaluation is a bitmap test plus a typed compare.
type boundPred struct {
	slot int
	vec  *storage.ColumnVec
	kind predKind
	op   sqlir.Op
	fval float64
	code uint32
	val  sqlir.Value
}

func (bp *boundPred) eval(ri int32) bool {
	i := int(ri)
	switch bp.kind {
	case predNum:
		if bp.vec.IsNull(i) {
			return false
		}
		f := bp.vec.Num(i)
		switch bp.op {
		case sqlir.OpEq:
			return f == bp.fval
		case sqlir.OpNe:
			return f != bp.fval
		case sqlir.OpLt:
			return f < bp.fval
		case sqlir.OpGt:
			return f > bp.fval
		case sqlir.OpLe:
			// Not `f <= fval`: Value.Compare returns 0 when either side is
			// NaN (both float comparisons false), so the reference treats
			// NaN as satisfying <= and >=. The negated compare reproduces
			// that exactly; for ordinary floats it is identical.
			return !(f > bp.fval)
		case sqlir.OpGe:
			return !(f < bp.fval)
		default: // LIKE on a numeric cell never matches
			return false
		}
	case predTextEq:
		return !bp.vec.IsNull(i) && bp.vec.Code(i) == bp.code
	case predTextNe:
		return !bp.vec.IsNull(i) && bp.vec.Code(i) != bp.code
	case predTextNeAll:
		return !bp.vec.IsNull(i)
	case predNever:
		return false
	default:
		return bp.op.Eval(bp.vec.Value(i), bp.val)
	}
}

// compilePred specializes one predicate to its column vector. Every branch
// reproduces Op.Eval's semantics exactly (NULL never matches; kind
// mismatches fall to the generic evaluator, which encodes them).
func compilePred(slot int, vec *storage.ColumnVec, op sqlir.Op, val sqlir.Value) boundPred {
	bp := boundPred{slot: slot, vec: vec, kind: predGeneric, op: op, val: val}
	switch {
	case val.IsNull():
		bp.kind = predNever
	case vec.Type() == sqlir.TypeNumber && val.Kind == sqlir.KindNumber:
		bp.kind = predNum
		bp.fval = val.Num
	case vec.Type() == sqlir.TypeText && val.Kind == sqlir.KindText && (op == sqlir.OpEq || op == sqlir.OpNe):
		code, ok := uint32(0), false
		if dict := vec.Dict(); dict != nil {
			code, ok = dict.Lookup(val.Text)
		}
		switch {
		case ok && op == sqlir.OpEq:
			bp.kind, bp.code = predTextEq, code
		case ok:
			bp.kind, bp.code = predTextNe, code
		case op == sqlir.OpEq:
			bp.kind = predNever
		default:
			bp.kind = predTextNeAll
		}
	}
	return bp
}

// stepKind discriminates how a join step probes the child index.
type stepKind uint8

const (
	// stepNum probes the float-keyed index with the parent's numeric cell.
	stepNum stepKind = iota
	// stepText resolves the parent's interned string in the child
	// dictionary and reads the code's posting list.
	stepText
	// stepNone joins columns of mismatched types: no value can ever match
	// (exactly as a typed key never hits the other type's index entries).
	stepNone
)

// streamStep extends a partial tuple by one join edge: probe the bound
// probeSlot's column vector against the child column's typed index.
type streamStep struct {
	probeSlot int
	kind      stepKind
	probeVec  *storage.ColumnVec
	idx       *storage.CodeIndex
}

// postings returns the child rows matching the parent tuple's cell, and
// whether the cell was non-null (a NULL join key matches nothing).
func (st *streamStep) postings(ri int32) ([]int32, bool) {
	i := int(ri)
	if st.probeVec.IsNull(i) {
		return nil, false
	}
	switch st.kind {
	case stepNum:
		return st.idx.Num(st.probeVec.Num(i)), true
	case stepText:
		return st.idx.TextString(st.probeVec.Dict().String(st.probeVec.Code(i))), true
	default:
		return nil, true
	}
}

// streamPlan is a compiled existence probe: slot layout, join steps in
// enumeration order, the pushdown seed, and predicates bound to the
// earliest slot at which they can be evaluated.
type streamPlan struct {
	slots  map[string]int
	tables []*storage.Table // per slot, in bind order

	steps []streamStep // steps[i] binds slot i+1

	rootRows []int32 // pushdown seed posting list (valid when seeded)
	seeded   bool

	predsAt [][]boundPred // AND-semantics predicates checked when their slot binds
	orPreds []boundPred   // OR-connected predicates, checked once orDepth binds
	orDepth int
}

// bindCol resolves a column reference to (slot, column ordinal).
func (p *streamPlan) bindCol(c sqlir.ColumnRef) (int, int, error) {
	slot, ok := p.slots[c.Table]
	if !ok {
		return 0, 0, errColNotInPath(c)
	}
	ci := p.tables[slot].ColumnIndex(c.Column)
	if ci < 0 {
		return 0, 0, errUnknownCol(c)
	}
	return slot, ci, nil
}

// pathEdge is a join edge oriented by introduction order: table a was bound
// before table b in the reference executor's edge walk.
type pathEdge struct {
	a, b       string
	aCol, bCol string
}

// orientEdges validates a join path exactly like the materializing join and
// returns its edges oriented from already-bound to newly-introduced table.
func orientEdges(db *storage.Database, jp *sqlir.JoinPath) ([]pathEdge, map[string]bool, error) {
	if jp == nil || len(jp.Tables) == 0 {
		return nil, nil, fmt.Errorf("sqlexec: empty join path")
	}
	if db.Table(jp.Tables[0]) == nil {
		return nil, nil, fmt.Errorf("sqlexec: unknown table %s", jp.Tables[0])
	}
	inSet := map[string]bool{jp.Tables[0]: true}
	pes := make([]pathEdge, 0, len(jp.Edges))
	for _, e := range jp.Edges {
		var pe pathEdge
		switch {
		case inSet[e.FromTable] && inSet[e.ToTable]:
			return nil, nil, fmt.Errorf("sqlexec: table %s joined twice", e.ToTable)
		case inSet[e.FromTable]:
			pe = pathEdge{a: e.FromTable, b: e.ToTable, aCol: e.FromColumn, bCol: e.ToColumn}
		case inSet[e.ToTable]:
			pe = pathEdge{a: e.ToTable, b: e.FromTable, aCol: e.ToColumn, bCol: e.FromColumn}
		default:
			return nil, nil, fmt.Errorf("sqlexec: join edge %s disconnected from path", e)
		}
		if db.Table(pe.b) == nil {
			return nil, nil, fmt.Errorf("sqlexec: unknown table %s", pe.b)
		}
		inSet[pe.b] = true
		pes = append(pes, pe)
	}
	return pes, inSet, nil
}

// splitPreds separates an exists query's predicates into AND-semantics
// predicates (checkable at the shallowest binding slot) and OR-connected
// predicates, shared by both streaming planners.
func splitPreds(eq ExistsQuery) (andPreds, orRaw []sqlir.Predicate) {
	andSem := eq.Conj == sqlir.LogicAnd || len(eq.Preds) <= 1
	andPreds = make([]sqlir.Predicate, 0, len(eq.Preds)+len(eq.AndPreds))
	if andSem {
		andPreds = append(andPreds, eq.Preds...)
	} else {
		orRaw = eq.Preds
	}
	andPreds = append(andPreds, eq.AndPreds...)
	return andPreds, orRaw
}

// walkJoinTree adds every join edge in plan order: reference edge order
// when the root is the reference root, otherwise a BFS re-rooting at the
// seed table. Shared by both streaming planners so their enumeration
// orders stay identical.
func walkJoinTree(jp *sqlir.JoinPath, pes []pathEdge, root string,
	addStep func(parent, parentCol, child, childCol string) error) error {
	if root == jp.Tables[0] {
		// Reference enumeration order: edges exactly as introduced.
		for _, pe := range pes {
			if err := addStep(pe.a, pe.aCol, pe.b, pe.bCol); err != nil {
				return err
			}
		}
		return nil
	}
	// Re-root the join tree at the seed table (BFS over the edge set).
	type half struct{ fromCol, to, toCol string }
	adj := map[string][]half{}
	bound := map[string]bool{root: true}
	for _, pe := range pes {
		adj[pe.a] = append(adj[pe.a], half{pe.aCol, pe.b, pe.bCol})
		adj[pe.b] = append(adj[pe.b], half{pe.bCol, pe.a, pe.aCol})
	}
	queue := []string{root}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, h := range adj[cur] {
			if bound[h.to] {
				continue
			}
			if err := addStep(cur, h.fromCol, h.to, h.toCol); err != nil {
				return err
			}
			bound[h.to] = true
			queue = append(queue, h.to)
		}
	}
	return nil
}

// buildStreamPlan compiles an exists query into a vectorized streaming
// plan. canReorder allows the root to move to the most selective equality
// predicate's table; it is only sound when tuple enumeration order is
// immaterial (the plain no-GROUP-BY witness probe). With canReorder false
// the plan keeps the reference executor's root and edge order, so emitted
// tuples appear in exactly the order the materializing path would produce
// them.
func buildStreamPlan(db *storage.Database, eq ExistsQuery, canReorder bool) (*streamPlan, error) {
	jp := eq.From
	pes, inSet, err := orientEdges(db, jp)
	if err != nil {
		return nil, err
	}

	andPreds, orRaw := splitPreds(eq)

	// Predicate pushdown: seed the pipeline from the smallest posting list
	// among the AND-semantics equality predicates. Posting lists preserve
	// row order, so seeding on the reference root table is always sound;
	// moving the root elsewhere additionally requires canReorder.
	root := jp.Tables[0]
	var rootRows []int32
	seeded, best := false, -1
	for _, p := range andPreds {
		if p.Op != sqlir.OpEq || p.Val.IsNull() || !inSet[p.Col.Table] {
			continue
		}
		if !canReorder && p.Col.Table != jp.Tables[0] {
			continue
		}
		t := db.Table(p.Col.Table)
		if t == nil || t.ColumnIndex(p.Col.Column) < 0 {
			continue // surfaces as a bind error below
		}
		ix, ierr := t.CodeIndex(p.Col.Column)
		if ierr != nil {
			continue
		}
		postings := ix.Postings(p.Val)
		if best < 0 || len(postings) < best {
			best = len(postings)
			root = p.Col.Table
			rootRows = postings
			seeded = true
		}
	}

	plan := &streamPlan{slots: make(map[string]int, len(jp.Tables)), seeded: seeded, rootRows: rootRows}
	addTable := func(name string) {
		plan.slots[name] = len(plan.tables)
		plan.tables = append(plan.tables, db.Table(name))
	}
	addStep := func(parent string, parentCol string, child string, childCol string) error {
		pt, ct := db.Table(parent), db.Table(child)
		probeCol := pt.ColumnIndex(parentCol)
		ci := ct.ColumnIndex(childCol)
		if probeCol < 0 || ci < 0 {
			return errEdgeUnknownColumn()
		}
		ix, ierr := ct.CodeIndex(childCol)
		if ierr != nil {
			return ierr
		}
		probeVec := pt.VectorAt(probeCol)
		kind := stepNone
		switch {
		case probeVec.Type() == sqlir.TypeNumber && ct.VectorAt(ci).Type() == sqlir.TypeNumber:
			kind = stepNum
		case probeVec.Type() == sqlir.TypeText && ct.VectorAt(ci).Type() == sqlir.TypeText:
			kind = stepText
		}
		probeSlot := plan.slots[parent]
		addTable(child)
		plan.steps = append(plan.steps, streamStep{probeSlot: probeSlot, kind: kind, probeVec: probeVec, idx: ix})
		return nil
	}

	addTable(root)
	if err := walkJoinTree(jp, pes, root, addStep); err != nil {
		return nil, err
	}

	plan.predsAt = make([][]boundPred, len(plan.tables))
	for _, p := range andPreds {
		bp, berr := plan.bindPred(p)
		if berr != nil {
			return nil, berr
		}
		plan.predsAt[bp.slot] = append(plan.predsAt[bp.slot], bp)
	}
	for _, p := range orRaw {
		bp, berr := plan.bindPred(p)
		if berr != nil {
			return nil, berr
		}
		plan.orPreds = append(plan.orPreds, bp)
		if bp.slot > plan.orDepth {
			plan.orDepth = bp.slot
		}
	}
	return plan, nil
}

func (p *streamPlan) bindPred(pr sqlir.Predicate) (boundPred, error) {
	slot, ci, err := p.bindCol(pr.Col)
	if err != nil {
		return boundPred{}, err
	}
	return compilePred(slot, p.tables[slot].VectorAt(ci), pr.Op, pr.Val), nil
}

// domainLen is the size of the plan's root scan domain: the pushdown
// posting list when seeded, else the root table's row count. Morsels
// partition exactly this domain.
func (p *streamPlan) domainLen() int {
	if p.seeded {
		return len(p.rootRows)
	}
	return p.tables[0].NumRows()
}

// run enumerates the full root domain; see runRange.
func (p *streamPlan) run(ctx context.Context, inj *faultinject.Injector, pc *pipelineCounters, emit func(tp []int32) (stop bool, err error)) error {
	_, err := p.runRange(ctx, inj, pc, 0, p.domainLen(), emit)
	return err
}

// runRange enumerates joined tuples depth-first over the root-domain slice
// [lo, hi), evaluating each bound predicate at the shallowest depth where
// its slot is bound. emit returning stop=true short-circuits the
// enumeration (the first-witness early exit), reported as stopped=true.
// All mutable state (the tuple scratch, the canceller, the probe counter)
// is local to the call, so morsel workers may run disjoint ranges of one
// plan concurrently. Every visited row and every probed posting ticks a
// cancellation checkpoint, so a cancelled request — or a morsel whose range
// was made moot by a witness in an earlier morsel — unwinds mid-scan within
// checkpointRows units of work; inj (nil for clean requests) injects
// per-probe latency for the chaos harness.
func (p *streamPlan) runRange(ctx context.Context, inj *faultinject.Injector, pc *pipelineCounters, lo, hi int, emit func(tp []int32) (stop bool, err error)) (stopped bool, err error) {
	tp := make([]int32, len(p.tables))
	var probes int64
	cc := newCanceller(ctx)

	check := func(depth int) bool {
		for i := range p.predsAt[depth] {
			if !p.predsAt[depth][i].eval(tp[p.predsAt[depth][i].slot]) {
				return false
			}
		}
		if len(p.orPreds) > 0 && depth == p.orDepth {
			hit := false
			for i := range p.orPreds {
				if p.orPreds[i].eval(tp[p.orPreds[i].slot]) {
					hit = true
					break
				}
			}
			if !hit {
				return false
			}
		}
		return true
	}

	var rec func(depth int) (bool, error)
	rec = func(depth int) (bool, error) {
		if depth == len(p.tables) {
			return emit(tp)
		}
		step := &p.steps[depth-1]
		if inj != nil {
			faultinject.Sleep(ctx, inj.ProbeDelay())
		}
		postings, ok := step.postings(tp[step.probeSlot])
		if !ok {
			return false, nil
		}
		probes++
		for _, ri := range postings {
			if err := cc.tick(); err != nil {
				return false, err
			}
			tp[depth] = ri
			if !check(depth) {
				continue
			}
			stop, err := rec(depth + 1)
			if stop || err != nil {
				return stop, err
			}
		}
		return false, nil
	}

	visit := func(ri int32) (bool, error) {
		if err := cc.tick(); err != nil {
			return false, err
		}
		tp[0] = ri
		if !check(0) {
			return false, nil
		}
		return rec(1)
	}

	defer func() { pc.add(&pc.indexProbes, probes) }()
	if err := ctx.Err(); err != nil {
		return false, err
	}
	if p.seeded {
		for _, ri := range p.rootRows[lo:hi] {
			if stop, err := visit(ri); stop || err != nil {
				return stop, err
			}
		}
		return false, nil
	}
	for i := lo; i < hi; i++ {
		if stop, err := visit(int32(i)); stop || err != nil {
			return stop, err
		}
	}
	return false, nil
}

// existsMorsels is the flat witness probe fanned over morsels: each worker
// short-circuits its own morsel on a local witness; the run's watermark
// cancels morsels above the lowest decisive one; and resolve() returns the
// outcome of the lowest decided morsel — the exact event (witness or error)
// the sequential scan would have hit first, so answers and errors are
// indistinguishable from the single-threaded path.
func (p *streamPlan) existsMorsels(ctx context.Context, inj *faultinject.Injector, pc *pipelineCounters, pool *WorkerPool, msize int) (bool, error) {
	witness := func([]int32) (bool, error) { return true, nil }
	n := p.domainLen()
	morsels := storage.Morsels(n, msize)
	if len(morsels) < 2 {
		return p.runRange(ctx, inj, pc, 0, n, witness)
	}
	res := runMorsels(ctx, pool, morsels, func(mctx context.Context, m int) (bool, error) {
		return p.runRange(mctx, inj, pc, morsels[m].Lo, morsels[m].Hi, witness)
	})
	pc.addMorselRun(res)
	return res.found, res.err
}

// streamExists answers an exists query through the vectorized streaming
// pipeline. handled=false means the query could not be compiled
// (structurally broken path, predicate outside it, or an unsupported HAVING
// shape); the caller must fall back to the materializing path, which
// reproduces the reference behavior — including its error messages —
// exactly.
func streamExists(ctx context.Context, db *storage.Database, eq ExistsQuery, pc *pipelineCounters) (ok, handled bool, err error) {
	grouped := len(eq.GroupBy) > 0 || len(eq.Havings) > 0
	plan, perr := buildStreamPlan(db, eq, !grouped)
	if perr != nil {
		return false, false, nil
	}
	inj := faultinject.From(ctx)
	pool := PoolFrom(ctx)
	if !grouped {
		if plan.seeded {
			pc.add(&pc.indexSeeds, 1)
		}
		if pool != nil {
			found, rerr := plan.existsMorsels(ctx, inj, pc, pool, MorselSizeFrom(ctx))
			return found, true, rerr
		}
		found := false
		rerr := plan.run(ctx, inj, pc, func([]int32) (bool, error) {
			found = true
			return true, nil
		})
		return found, true, rerr
	}
	if pool != nil {
		ok, handled, err = streamGroupedExistsMorsels(ctx, inj, plan, eq, pc, pool, MorselSizeFrom(ctx))
	} else {
		ok, handled, err = streamGroupedExists(ctx, inj, plan, eq, pc)
	}
	if handled && plan.seeded {
		// Counted only once the probe is actually streamed, so fallbacks
		// (e.g. unsupported HAVING shapes) don't inflate pushdown coverage.
		pc.add(&pc.indexSeeds, 1)
	}
	return ok, handled, err
}

// groupAcc accumulates one column's aggregates over a streamed group,
// mirroring evalAggregate's accumulation exactly (including NULL handling
// and first-value semantics for unaggregated HAVING columns). The first
// non-numeric value is recorded rather than rejected eagerly: the reference
// path evaluates HAVING aggregates lazily per group and short-circuits on
// the first failing condition, so a SUM/AVG type error must only surface if
// that aggregate is actually evaluated.
type groupAcc struct {
	count    int
	sum      float64
	min, max sqlir.Value
	first    sqlir.Value
	hasFirst bool
	bad      sqlir.Value // first non-null non-numeric value, for SUM/AVG
	hasBad   bool
}

// observe folds one cell into the accumulator (evalAggregate's loop body).
func (a *groupAcc) observe(v sqlir.Value) {
	if !a.hasFirst {
		a.first, a.hasFirst = v, true
	}
	if v.IsNull() {
		return
	}
	if !a.hasBad && v.Kind != sqlir.KindNumber {
		a.bad, a.hasBad = v, true
	}
	if a.count == 0 {
		a.min, a.max = v, v
	} else {
		if v.Less(a.min) {
			a.min = v
		}
		if a.max.Less(v) {
			a.max = v
		}
	}
	if v.Kind == sqlir.KindNumber {
		a.sum += v.Num
	}
	a.count++
}

type groupState struct {
	rows int
	accs []groupAcc
}

// checkGroupHavings evaluates the HAVING conditions over streamed group
// states in discovery order, shared by both streaming pipelines.
func checkGroupHavings(order []*groupState, refs []sqlir.ColumnRef, colAt map[sqlir.ColumnRef]int, eq ExistsQuery) (ok, handled bool, err error) {
	for _, st := range order {
		pass := true
		for _, h := range eq.Havings {
			hv, herr := streamedHavingValue(st, refs, colAt, h)
			if herr != nil {
				return false, true, herr
			}
			if !h.Op.Eval(hv, h.Val) {
				pass = false
				break
			}
		}
		if pass && (st.rows > 0 || len(eq.GroupBy) == 0) {
			return true, true, nil
		}
	}
	return false, true, nil
}

// keyCol/aggCol bind one GROUP BY or HAVING column to its slot and vector.
type keyCol struct {
	slot int
	vec  *storage.ColumnVec
}
type aggCol struct {
	slot int
	vec  *storage.ColumnVec
}

// groupedBinding is an exists query's grouping shape compiled against a
// stream plan, shared by the sequential and morsel grouped pipelines so
// both reject exactly the same shapes (ok=false → materializing fallback).
type groupedBinding struct {
	keys  []keyCol
	cols  []aggCol
	refs  []sqlir.ColumnRef
	colAt map[sqlir.ColumnRef]int
}

// bindGrouped resolves GROUP BY keys and HAVING aggregate columns.
// ok=false means the shape is unsupported (or a column fails to bind) and
// the caller must fall back to the materializing path, which reproduces the
// reference behavior — including its error messages — exactly.
func bindGrouped(plan *streamPlan, eq ExistsQuery) (gb groupedBinding, ok bool) {
	gb.keys = make([]keyCol, 0, len(eq.GroupBy))
	for _, g := range eq.GroupBy {
		slot, ci, berr := plan.bindCol(g)
		if berr != nil {
			return gb, false
		}
		gb.keys = append(gb.keys, keyCol{slot, plan.tables[slot].VectorAt(ci)})
	}
	gb.colAt = map[sqlir.ColumnRef]int{}
	for _, h := range eq.Havings {
		if h.Col.IsStar() {
			if h.Agg != sqlir.AggCount {
				return gb, false // reference path reports the error
			}
			continue
		}
		if h.Agg > sqlir.AggAvg {
			return gb, false
		}
		if _, seen := gb.colAt[h.Col]; !seen {
			slot, ci, berr := plan.bindCol(h.Col)
			if berr != nil {
				return gb, false
			}
			gb.colAt[h.Col] = len(gb.cols)
			gb.cols = append(gb.cols, aggCol{slot: slot, vec: plan.tables[slot].VectorAt(ci)})
			gb.refs = append(gb.refs, h.Col)
		}
	}
	return gb, true
}

// streamGroupedExists streams matching tuples into per-group aggregate
// states — no tuple buffering — then checks HAVING per group. The plan keeps
// reference enumeration order, so group discovery order and floating-point
// accumulation order match the materializing path bit for bit. Group keys
// are fixed-width binary encodings of the typed cells (dictionary code or
// float bits), not formatted strings.
func streamGroupedExists(ctx context.Context, inj *faultinject.Injector, plan *streamPlan, eq ExistsQuery, pc *pipelineCounters) (ok, handled bool, err error) {
	gb, bok := bindGrouped(plan, eq)
	if !bok {
		return false, false, nil
	}
	keys, cols, refs, colAt := gb.keys, gb.cols, gb.refs, gb.colAt

	var order []*groupState
	newState := func() *groupState {
		st := &groupState{accs: make([]groupAcc, len(cols))}
		order = append(order, st)
		return st
	}
	if len(eq.GroupBy) == 0 {
		// SQL's implicit single group exists even over zero rows.
		newState()
	}

	// Group-state lookup, specialized to the key shape. A single-column key
	// — the overwhelmingly common grouping — is looked up directly by float
	// bits or dictionary code through the runtime's fast integer map paths,
	// with NULL (and NaN, which a float map could never find again) routed
	// to dedicated states. Multi-column keys fall back to the fixed-width
	// binary encoding. Each specialization partitions rows exactly as
	// Value.Equal does, so group contents match the reference path.
	var getState func(tp []int32) *groupState
	switch {
	case len(eq.GroupBy) == 0:
		st := order[0]
		getState = func([]int32) *groupState { return st }
	case len(keys) == 1 && keys[0].vec.Type() == sqlir.TypeNumber:
		k := keys[0]
		var nullState, nanState *groupState
		fm := map[uint64]*groupState{}
		getState = func(tp []int32) *groupState {
			ri := int(tp[k.slot])
			if k.vec.IsNull(ri) {
				if nullState == nil {
					nullState = newState()
				}
				return nullState
			}
			f := k.vec.Num(ri)
			if f != f {
				// NaN: the pre-refactor string key grouped all NaNs
				// together; a float-keyed map never would.
				if nanState == nil {
					nanState = newState()
				}
				return nanState
			}
			if f == 0 {
				f = 0 // collapse -0.0 onto +0.0, as Value.Equal does
			}
			b := math.Float64bits(f)
			st, ok := fm[b]
			if !ok {
				st = newState()
				fm[b] = st
			}
			return st
		}
	case len(keys) == 1 && keys[0].vec.Type() == sqlir.TypeText:
		k := keys[0]
		var nullState *groupState
		cm := map[uint32]*groupState{}
		getState = func(tp []int32) *groupState {
			ri := int(tp[k.slot])
			if k.vec.IsNull(ri) {
				if nullState == nil {
					nullState = newState()
				}
				return nullState
			}
			c := k.vec.Code(ri)
			st, ok := cm[c]
			if !ok {
				st = newState()
				cm[c] = st
			}
			return st
		}
	default:
		states := map[string]*groupState{}
		var keyBuf []byte
		getState = func(tp []int32) *groupState {
			keyBuf = keyBuf[:0]
			for _, k := range keys {
				keyBuf = appendVecKey(keyBuf, k.vec, int(tp[k.slot]))
			}
			st, ok := states[string(keyBuf)]
			if !ok {
				st = &groupState{accs: make([]groupAcc, len(cols))}
				order = append(order, st)
				states[string(keyBuf)] = st
			}
			return st
		}
	}

	rerr := plan.run(ctx, inj, pc, func(tp []int32) (bool, error) {
		st := getState(tp)
		st.rows++
		for i := range cols {
			st.accs[i].observe(cols[i].vec.Value(int(tp[cols[i].slot])))
		}
		return false, nil
	})
	if rerr != nil {
		return false, true, rerr
	}
	return checkGroupHavings(order, refs, colAt, eq)
}

// streamedHavingValue reads one HAVING aggregate off a streamed group state,
// with the same empty-group and non-numeric-rejection semantics as
// evalAggregate — in particular, SUM/AVG over non-numeric data only errors
// when that aggregate is actually evaluated for a group.
func streamedHavingValue(st *groupState, refs []sqlir.ColumnRef, colAt map[sqlir.ColumnRef]int, h sqlir.HavingExpr) (sqlir.Value, error) {
	if h.Col.IsStar() {
		return sqlir.NewInt(st.rows), nil
	}
	i := colAt[h.Col]
	a := st.accs[i]
	switch h.Agg {
	case sqlir.AggNone:
		if st.rows == 0 {
			return sqlir.Null(), nil
		}
		return a.first, nil
	case sqlir.AggCount:
		return sqlir.NewInt(a.count), nil
	case sqlir.AggMin:
		return a.min, nil
	case sqlir.AggMax:
		return a.max, nil
	case sqlir.AggSum:
		if a.hasBad {
			return sqlir.Null(), errNonNumericAgg(refs[i], a.bad)
		}
		if a.count == 0 {
			return sqlir.Null(), nil
		}
		return sqlir.NewNumber(a.sum), nil
	case sqlir.AggAvg:
		if a.hasBad {
			return sqlir.Null(), errNonNumericAgg(refs[i], a.bad)
		}
		if a.count == 0 {
			return sqlir.Null(), nil
		}
		return sqlir.NewNumber(a.sum / float64(a.count)), nil
	default:
		return sqlir.Null(), nil
	}
}

// errNonNumericAgg is shared by the streaming and materializing aggregate
// evaluators so both paths reject SUM/AVG over non-numeric data identically.
func errNonNumericAgg(col sqlir.ColumnRef, v sqlir.Value) error {
	return fmt.Errorf("sqlexec: SUM/AVG over non-numeric value %s in column %s", v, col)
}

// appendVecKey appends a fixed-width, kind-tagged binary encoding of one
// cell to a group-key buffer: 'z' for NULL, 'c' + the 4-byte dictionary
// code for text, 'n' + the 8-byte float bits for numbers (-0 normalized to
// +0, matching Value.Equal). Each tag determines its payload length, so the
// concatenation over key columns is prefix-free and therefore injective —
// key equality coincides with Value.Equal per column, with none of
// appendValueKey's decimal float formatting.
func appendVecKey(buf []byte, vec *storage.ColumnVec, ri int) []byte {
	if vec.IsNull(ri) {
		return append(buf, 'z')
	}
	switch vec.Type() {
	case sqlir.TypeNumber:
		f := vec.Num(ri)
		if f == 0 {
			f = 0 // collapse -0.0 onto +0.0, which Value.Equal treats as equal
		}
		if f != f {
			// Canonicalize NaN payloads: the reference key renders every
			// NaN as the same string, so all NaNs must share one group.
			f = math.NaN()
		}
		return binary.LittleEndian.AppendUint64(append(buf, 'n'), math.Float64bits(f))
	case sqlir.TypeText:
		return binary.LittleEndian.AppendUint32(append(buf, 'c'), vec.Code(ri))
	default:
		return append(buf, 'z')
	}
}

// appendValueKey appends an injective, kind-tagged encoding of v to buf —
// the shared key builder for the materializing executor's grouping and
// DISTINCT (and the row-path pipeline's streamed group states). Text is
// length-prefixed so payloads containing the separator byte cannot collide
// across adjacent values; numbers rely on FormatFloat 'g/-1' round-tripping
// exactly. Key equality therefore coincides with Value.Equal on
// concatenated encodings.
func appendValueKey(buf []byte, v sqlir.Value) []byte {
	switch v.Kind {
	case sqlir.KindText:
		buf = append(buf, 't')
		buf = strconv.AppendInt(buf, int64(len(v.Text)), 10)
		buf = append(buf, ':')
		buf = append(buf, v.Text...)
	case sqlir.KindNumber:
		buf = append(buf, 'n')
		if v.Num == 0 {
			buf = append(buf, '0') // normalize -0.0, which Value.Equal treats as 0
		} else {
			buf = strconv.AppendFloat(buf, v.Num, 'g', -1, 64)
		}
	default:
		buf = append(buf, 'z')
	}
	return append(buf, 0)
}
