package sqlexec_test

import (
	"fmt"
	"sync"
	"testing"

	"github.com/duoquest/duoquest/internal/loadgen"
	"github.com/duoquest/duoquest/internal/sqlexec"
	"github.com/duoquest/duoquest/internal/storage"
)

// BenchmarkLoadgenVerifySweep is the data-scale sweep: the same
// verification-shaped probe workload (loadgen.Probes — selective equality +
// range over an FK edge, exact-name by-row probes, grouped HAVING) against
// generated databases of growing row counts, so the recorded artifact
// (`make bench-loadgen` → BENCH_loadgen.json) tracks how verification cost
// scales with data size, not just how fast it is on the small demo sets. At
// the smallest scale every probe is first checked against the streaming
// pipeline (all probes must compile — no silent fallback in the sweep) and
// the materializing reference.

// sweepRows are the swept scales. The 1M scale is skipped under -short so
// CI's quick path stays fast; `make bench-loadgen` (no -short) records the
// full curve including 1M into BENCH_loadgen.json.
var sweepRows = []int{10_000, 30_000, 100_000, 300_000}

// sweepScales appends the 1M scale outside -short runs.
func sweepScales() []int {
	if testing.Short() {
		return sweepRows
	}
	return append(append([]int{}, sweepRows...), 1_000_000)
}

var (
	sweepMu  sync.Mutex
	sweepDBs = map[int]*loadgen.Generated{}
)

func sweepDB(b *testing.B, rows int) *loadgen.Generated {
	b.Helper()
	sweepMu.Lock()
	defer sweepMu.Unlock()
	if g, ok := sweepDBs[rows]; ok {
		return g
	}
	g, err := loadgen.Generate(loadgen.Spec{Name: "sweep", Tables: 6, Rows: rows}, 1)
	if err != nil {
		b.Fatal(err)
	}
	sweepDBs[rows] = g
	return g
}

func BenchmarkLoadgenVerifySweep(b *testing.B) {
	for _, rows := range sweepScales() {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			g := sweepDB(b, rows)
			probes := g.Probes(100, 2)
			if rows == sweepRows[0] {
				checkSweepEquivalence(b, g.DB, probes)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for pi, eq := range probes {
					if _, err := sqlexec.Exists(g.DB, eq); err != nil {
						b.Fatalf("probe %d: %v", pi, err)
					}
				}
			}
		})
	}
}

// checkSweepEquivalence asserts every sweep probe compiles to the streaming
// pipeline and agrees with the materializing reference.
func checkSweepEquivalence(b *testing.B, db *storage.Database, probes []sqlexec.ExistsQuery) {
	b.Helper()
	for i, eq := range probes {
		got, handled, err := sqlexec.ExistsStreaming(db, eq)
		if err != nil {
			b.Fatalf("probe %d: %v", i, err)
		}
		if !handled {
			b.Fatalf("probe %d: not handled by the streaming pipeline — the sweep must not silently fall back", i)
		}
		ref, err := sqlexec.ExistsReference(db, eq)
		if err != nil {
			b.Fatal(err)
		}
		if got != ref {
			b.Fatalf("probe %d: streaming=%v reference=%v", i, got, ref)
		}
	}
}
