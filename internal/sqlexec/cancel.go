// Cooperative cancellation for the execution paths. Synthesis is
// interactive: an abandoned or deadline-expired request must unwind
// mid-scan in milliseconds, not at operator boundaries, so every row loop —
// streaming probes, join materialization, filtering, grouping — ticks a
// shared checkpoint that polls the request context once per checkpointRows
// units of work. The poll amortizes to a counter increment and a mask per
// row; context.Background() requests pay essentially nothing.
package sqlexec

import (
	"context"
	"errors"

	"github.com/duoquest/duoquest/internal/faultinject"
)

// checkpointRows is the cancellation granularity: rows (or index probes)
// processed between context polls. At ~10ns/row of scan work, 1024 rows
// bounds cancel-to-checkpoint latency around 10µs while keeping the
// amortized cost of a poll below 1% of the loop body.
const checkpointRows = 1024

// canceller amortizes context polls over tight row loops. The zero value is
// invalid; build with newCanceller.
type canceller struct {
	ctx  context.Context
	work uint32
}

func newCanceller(ctx context.Context) canceller { return canceller{ctx: ctx} }

// tick counts one unit of work and polls the context at checkpoint
// boundaries, returning the context's error when the request is done.
func (c *canceller) tick() error {
	c.work++
	if c.work&(checkpointRows-1) != 0 {
		return nil
	}
	return c.ctx.Err()
}

// transientErr reports whether err reflects the fate of one request —
// cancellation, deadline expiry, or an injected fault — rather than a
// property of the database or query. Transient errors must never be
// memoized: a shared cache that stored one would replay a dead request's
// failure to every later, healthy request asking the same question.
func transientErr(err error) bool {
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		faultinject.IsInjected(err)
}
