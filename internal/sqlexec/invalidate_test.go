package sqlexec

import (
	"testing"

	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/sqlparse"
)

// A long-lived JoinCache (one per database in the service layer) must not
// serve pre-Insert answers: every public entry point revalidates against the
// database generation.
func TestJoinCacheInvalidatesOnInsert(t *testing.T) {
	db := movieDB()
	c := NewJoinCache(db)

	eq := ExistsQuery{
		From:  pathOf("movie"),
		Preds: []sqlir.Predicate{pred("movie", "title", sqlir.OpEq, text("Interstellar"))},
	}
	if ok, err := c.Exists(eq); err != nil || ok {
		t.Fatalf("Exists before insert = %v, %v; want false", ok, err)
	}

	q := sqlparse.MustParse(db.Schema, "SELECT title FROM movie")
	res, err := c.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	before := len(res.Rows)

	db.Table("movie").MustInsert(num(9), text("Interstellar"), num(2014), num(677))

	if ok, err := c.Exists(eq); err != nil || !ok {
		t.Errorf("Exists after insert = %v, %v; want true", ok, err)
	}
	res, err = c.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != before+1 {
		t.Errorf("Execute after insert returned %d rows, want %d", len(res.Rows), before+1)
	}
}

// A joined Execute exercises the materialized-path memo; the memo must be
// dropped, not extended, after an Insert.
func TestJoinCacheJoinInvalidatesOnInsert(t *testing.T) {
	db := movieDB()
	c := NewJoinCache(db)
	q := sqlparse.MustParse(db.Schema,
		"SELECT actor.name FROM actor JOIN starring ON starring.aid = actor.aid")
	res, err := c.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	before := len(res.Rows)
	if c.Size() == 0 {
		t.Fatal("expected a cached join path")
	}

	db.Table("starring").MustInsert(num(9), num(2), num(3)) // Bullock in Fight Club
	res, err = c.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != before+1 {
		t.Errorf("joined rows after insert = %d, want %d", len(res.Rows), before+1)
	}
}
