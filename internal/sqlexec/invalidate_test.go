package sqlexec

import (
	"testing"

	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/sqlparse"
	"github.com/duoquest/duoquest/internal/storage"
)

// A long-lived JoinCache is bound to one immutable epoch snapshot: a write
// to the live database never touches it. Readers that want the new rows
// take a new snapshot and a new cache; readers pinned to the old epoch keep
// their warm memos and their pre-write answers.
func TestJoinCachePinnedEpochSurvivesInsert(t *testing.T) {
	db := movieDB()
	snap := db.Snapshot()
	c := NewJoinCache(snap)

	eq := ExistsQuery{
		From:  pathOf("movie"),
		Preds: []sqlir.Predicate{pred("movie", "title", sqlir.OpEq, text("Interstellar"))},
	}
	if ok, err := c.Exists(eq); err != nil || ok {
		t.Fatalf("Exists before insert = %v, %v; want false", ok, err)
	}

	q := sqlparse.MustParse(db.Schema, "SELECT title FROM movie")
	res, err := c.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	before := len(res.Rows)

	db.Table("movie").MustInsert(num(9), text("Interstellar"), num(2014), num(677))

	// The pinned cache still answers at its epoch.
	if ok, err := c.Exists(eq); err != nil || ok {
		t.Errorf("pinned Exists after insert = %v, %v; want false (old epoch)", ok, err)
	}
	res, err = c.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != before {
		t.Errorf("pinned Execute after insert returned %d rows, want %d", len(res.Rows), before)
	}

	// A cache on the next snapshot sees the new row.
	c2 := NewJoinCache(db.Snapshot())
	if ok, err := c2.Exists(eq); err != nil || !ok {
		t.Errorf("fresh-epoch Exists after insert = %v, %v; want true", ok, err)
	}
	res, err = c2.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != before+1 {
		t.Errorf("fresh-epoch Execute returned %d rows, want %d", len(res.Rows), before+1)
	}
}

// The zero-eviction regression for the stampede this design removes: a bulk
// append to the live database during an in-flight session must not evict a
// single memoized join from the pinned epoch's cache.
func TestJoinCacheZeroEvictionsOnBulkAppend(t *testing.T) {
	db := movieDB()
	snap := db.Snapshot()
	c := NewJoinCache(snap)
	q := sqlparse.MustParse(db.Schema,
		"SELECT actor.name FROM actor JOIN starring ON starring.aid = actor.aid")
	res, err := c.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	before := len(res.Rows)
	size := c.Size()
	if size == 0 {
		t.Fatal("expected a cached join path")
	}
	built := c.Stats().JoinsBuilt

	if _, err := db.Append("starring", []storage.ColumnData{
		{Nums: []float64{9}},
		{Nums: []float64{2}},
		{Nums: []float64{3}},
	}); err != nil {
		t.Fatal(err)
	}

	// Re-running the same query on the pinned cache is a pure cache hit:
	// same rows, no join rebuilt, nothing evicted.
	res, err = c.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != before {
		t.Errorf("pinned joined rows after append = %d, want %d", len(res.Rows), before)
	}
	if got := c.Size(); got != size {
		t.Errorf("cache size after append = %d, want %d (zero evictions)", got, size)
	}
	if got := c.Stats().JoinsBuilt; got != built {
		t.Errorf("joins built after append = %d, want %d (no rebuild)", got, built)
	}

	// And the new epoch's cache sees the appended row.
	c2 := NewJoinCache(db.Snapshot())
	res, err = c2.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != before+1 {
		t.Errorf("fresh-epoch joined rows = %d, want %d", len(res.Rows), before+1)
	}
}
