package sqlexec

import (
	"context"
	"sort"
	"strings"
	"sync"

	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/storage"
)

// JoinCache memoizes materialized join paths so the verifier's many
// verification queries over the same FROM clause share one join computation
// (§3.4's cost concern: executing verification queries dominates). A cache
// is safe for concurrent use: the enumerator's verification worker pool
// issues overlapping Exists/Execute calls, and concurrent requests for the
// same join path share a single materialization instead of duplicating it.
//
// A cache may outlive one request — the service layer shares one JoinCache
// per database epoch across all requests. The cache assumes its database is
// an immutable view (the service layer hands it a frozen epoch snapshot, see
// storage.Database.Snapshot): memos are never invalidated, so a write to the
// live database can never evict another reader's warm joins — readers that
// want the new rows use a new snapshot's cache. Handing a JoinCache a live,
// still-mutating database is not supported.
type JoinCache struct {
	db *storage.Database
	mu sync.Mutex
	m  map[string]*joinEntry

	pc pipelineCounters
}

// joinEntry is one memoized join. The entry lock gates materialization so
// that concurrent first requests for a signature compute the join once and
// everyone else blocks until it is ready. Unlike a sync.Once, a transient
// failure — the computing request was cancelled, hit its deadline, or drew
// an injected fault — leaves the entry unfilled, so the cache is never
// poisoned by one request's fate and the next healthy request recomputes.
type joinEntry struct {
	mu   sync.Mutex
	done bool
	rel  *relation
	err  error

	// jp is the path that first requested this signature, recorded at entry
	// creation (immutable afterwards) so WarmFrom can re-materialize the
	// join against a newer snapshot without reverse-parsing the signature.
	jp *sqlir.JoinPath
}

// NewJoinCache builds a cache for a database (normally a frozen epoch
// snapshot; see the type comment).
func NewJoinCache(db *storage.Database) *JoinCache {
	return &JoinCache{db: db, m: map[string]*joinEntry{}}
}

// NewJoinCacheFrom builds a cache for a new epoch snapshot, carrying
// forward the previous epoch's memoized joins whose paths touch only
// tables unchanged between the two snapshots. Unchanged tables share the
// same frozen *Table across epochs (storage.Database.Snapshot reuses
// them), so a carried relation is bit-identical to what the new cache
// would recompute; paths through a changed table are not carried and
// rebuild on demand. prev may still be serving other readers — entries
// are copied, never moved.
func NewJoinCacheFrom(db *storage.Database, prev *JoinCache) *JoinCache {
	c := NewJoinCache(db)
	if prev == nil {
		return c
	}
	// Snapshot the entry set first: holding prev.mu while taking entry
	// locks would invert the entry→cache lock order build uses on its
	// prefix probe and could deadlock with an in-flight materialization.
	prev.mu.Lock()
	entries := make(map[string]*joinEntry, len(prev.m))
	for sig, e := range prev.m {
		entries[sig] = e
	}
	prev.mu.Unlock()
	for sig, e := range entries {
		if !carriable(db, prev.db, sig) {
			continue
		}
		e.mu.Lock()
		done, rel, err := e.done, e.rel, e.err
		e.mu.Unlock()
		if done && err == nil {
			c.m[sig] = &joinEntry{done: true, rel: rel, jp: e.jp}
		}
	}
	return c
}

// WarmFrom re-materializes, against this cache's snapshot, every join path
// the previous epoch's cache had memoized but this cache did not carry
// forward (the path touches a changed table). The writer calls this right
// after publishing an epoch: the write pays to rebuild exactly what it
// invalidated, so the next reader's latency stays flat across the epoch
// boundary instead of spiking on cold joins. Best-effort — a failed build
// leaves the entry for the next reader to retry.
func (c *JoinCache) WarmFrom(ctx context.Context, prev *JoinCache) {
	if prev == nil {
		return
	}
	prev.mu.Lock()
	sigs := make([]string, 0, len(prev.m))
	paths := make([]*sqlir.JoinPath, 0, len(prev.m))
	for sig, e := range prev.m {
		sigs = append(sigs, sig)
		paths = append(paths, e.jp)
	}
	prev.mu.Unlock()
	for i, sig := range sigs {
		if paths[i] == nil {
			continue
		}
		c.mu.Lock()
		_, have := c.m[sig]
		c.mu.Unlock()
		if !have {
			c.materialize(ctx, paths[i]) //nolint:errcheck // warming is best-effort
		}
	}
}

// carriable reports whether every table named in a join signature resolves
// to the same frozen *Table in both snapshots (sig format: "t1,t2|edges").
func carriable(db, prev *storage.Database, sig string) bool {
	names, _, ok := strings.Cut(sig, "|")
	if !ok || names == "" {
		return false
	}
	for _, name := range strings.Split(names, ",") {
		t := db.Table(name)
		if t == nil || t != prev.Table(name) {
			return false
		}
	}
	return true
}

// Size returns the number of cached join paths.
func (c *JoinCache) Size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Stats returns a snapshot of the streaming-pipeline and prefix-sharing
// counters accumulated by this cache.
func (c *JoinCache) Stats() PipelineStats {
	return c.pc.snapshot()
}

// joinSig canonically identifies a join path (table set + edge set).
func joinSig(jp *sqlir.JoinPath) string {
	if jp == nil {
		return ""
	}
	tables := append([]string{}, jp.Tables...)
	sort.Strings(tables)
	edges := make([]string, len(jp.Edges))
	for i, e := range jp.Edges {
		a := e.FromTable + "." + e.FromColumn
		b := e.ToTable + "." + e.ToColumn
		if a > b {
			a, b = b, a
		}
		edges[i] = a + "=" + b
	}
	sort.Strings(edges)
	return strings.Join(tables, ",") + "|" + strings.Join(edges, "&")
}

// materialize returns the (cached) joined relation for a path. Waiters for
// an in-flight materialization block on the entry lock; the holder's context
// governs the computation, and if it dies mid-join each waiter retries under
// its own context rather than inheriting the failure.
func (c *JoinCache) materialize(ctx context.Context, jp *sqlir.JoinPath) (*relation, error) {
	sig := joinSig(jp)
	c.mu.Lock()
	e, ok := c.m[sig]
	if !ok {
		e = &joinEntry{jp: jp}
		c.m[sig] = e
	}
	c.mu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.done {
		rel, err := c.build(ctx, jp)
		if err != nil && transientErr(err) {
			// This request's fate, not the join's: report it to the caller
			// but leave the entry unfilled for the next request.
			return nil, err
		}
		e.rel, e.err = rel, err
		e.done = true
	}
	return e.rel, e.err
}

// build materializes a join path, reusing the cached prefix relation when
// one exists: sibling enumeration states that already joined A⋈B extend it
// by one edge to probe A⋈B⋈C instead of re-joining the whole path. Edgeless
// or malformed paths go through the reference join, which also reproduces
// its error messages.
func (c *JoinCache) build(ctx context.Context, jp *sqlir.JoinPath) (*relation, error) {
	if jp == nil || len(jp.Tables) == 0 || len(jp.Edges) == 0 {
		c.pc.add(&c.pc.joinsBuilt, 1)
		return join(ctx, c.db, jp, &c.pc)
	}
	pes, _, oerr := orientEdges(c.db, jp)
	if oerr != nil {
		c.pc.add(&c.pc.joinsBuilt, 1)
		return join(ctx, c.db, jp, &c.pc) // malformed; join reports the reference error
	}
	last := jp.Edges[len(jp.Edges)-1]
	lastTable := pes[len(pes)-1].b
	prefix := &sqlir.JoinPath{Edges: jp.Edges[:len(jp.Edges)-1]}
	for _, t := range jp.Tables {
		if t != lastTable {
			prefix.Tables = append(prefix.Tables, t)
		}
	}
	c.mu.Lock()
	_, had := c.m[joinSig(prefix)]
	c.mu.Unlock()
	prel, err := c.materialize(ctx, prefix)
	if err != nil {
		return nil, err
	}
	if had {
		c.pc.add(&c.pc.prefixHits, 1)
	}
	return extendRelation(ctx, c.db, prel, last, &c.pc)
}

// Exists is Exists through the streaming pipeline, with this cache's
// counters and its memoized joins backing the materializing fallback.
func (c *JoinCache) Exists(eq ExistsQuery) (bool, error) {
	return c.ExistsCtx(context.Background(), eq)
}

// ExistsCtx is the cache-backed Exists under a request context.
func (c *JoinCache) ExistsCtx(ctx context.Context, eq ExistsQuery) (bool, error) {
	return existsWith(ctx, c.db, eq, &c.pc, func(jp *sqlir.JoinPath) (*relation, error) {
		return c.materialize(ctx, jp)
	})
}
