package sqlexec

import (
	"sort"
	"strings"
	"sync"

	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/storage"
)

// JoinCache memoizes materialized join paths so the verifier's many
// verification queries over the same FROM clause share one join computation
// (§3.4's cost concern: executing verification queries dominates). A cache
// is bound to one database snapshot and is safe for concurrent use: the
// enumerator's verification worker pool issues overlapping Exists/Execute
// calls, and concurrent requests for the same join path share a single
// materialization instead of duplicating it.
type JoinCache struct {
	db *storage.Database
	mu sync.Mutex
	m  map[string]*joinEntry
}

// joinEntry is one memoized join: the sync.Once gates materialization so
// that concurrent first requests for a signature compute the join once and
// everyone else blocks until it is ready.
type joinEntry struct {
	once sync.Once
	rel  *relation
	err  error
}

// NewJoinCache builds a cache for a database.
func NewJoinCache(db *storage.Database) *JoinCache {
	return &JoinCache{db: db, m: map[string]*joinEntry{}}
}

// Size returns the number of cached join paths.
func (c *JoinCache) Size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// joinSig canonically identifies a join path (table set + edge set).
func joinSig(jp *sqlir.JoinPath) string {
	if jp == nil {
		return ""
	}
	tables := append([]string{}, jp.Tables...)
	sort.Strings(tables)
	edges := make([]string, len(jp.Edges))
	for i, e := range jp.Edges {
		a := e.FromTable + "." + e.FromColumn
		b := e.ToTable + "." + e.ToColumn
		if a > b {
			a, b = b, a
		}
		edges[i] = a + "=" + b
	}
	sort.Strings(edges)
	return strings.Join(tables, ",") + "|" + strings.Join(edges, "&")
}

// materialize returns the (cached) joined relation for a path.
func (c *JoinCache) materialize(jp *sqlir.JoinPath) (*relation, error) {
	sig := joinSig(jp)
	c.mu.Lock()
	e, ok := c.m[sig]
	if !ok {
		e = &joinEntry{}
		c.m[sig] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.rel, e.err = join(c.db, jp) })
	return e.rel, e.err
}

// Exists is Exists with join memoization.
func (c *JoinCache) Exists(eq ExistsQuery) (bool, error) {
	for _, p := range eq.Preds {
		if !p.Complete() {
			return false, errIncomplete(p)
		}
	}
	for _, p := range eq.AndPreds {
		if !p.Complete() {
			return false, errIncomplete(p)
		}
	}
	rel, err := c.materialize(eq.From)
	if err != nil {
		return false, err
	}
	return existsOn(c.db, rel, eq)
}
