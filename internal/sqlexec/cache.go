package sqlexec

import (
	"context"
	"sort"
	"strings"
	"sync"

	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/storage"
)

// JoinCache memoizes materialized join paths so the verifier's many
// verification queries over the same FROM clause share one join computation
// (§3.4's cost concern: executing verification queries dominates). A cache
// is safe for concurrent use: the enumerator's verification worker pool
// issues overlapping Exists/Execute calls, and concurrent requests for the
// same join path share a single materialization instead of duplicating it.
//
// A cache may outlive one request — the service layer shares one JoinCache
// per database across all requests. Each public entry point compares the
// database generation against the one the memos were built at and drops
// them when rows have been inserted since, so queries issued after an
// Insert completes never see pre-Insert joins. (As with the underlying
// storage, mutating the database while queries are in flight is not
// supported.)
type JoinCache struct {
	db *storage.Database
	mu sync.Mutex
	m  map[string]*joinEntry
	// gen is the database generation the current memo map was built
	// against.
	gen int64

	pc pipelineCounters
}

// joinEntry is one memoized join. The entry lock gates materialization so
// that concurrent first requests for a signature compute the join once and
// everyone else blocks until it is ready. Unlike a sync.Once, a transient
// failure — the computing request was cancelled, hit its deadline, or drew
// an injected fault — leaves the entry unfilled, so the cache is never
// poisoned by one request's fate and the next healthy request recomputes.
type joinEntry struct {
	mu   sync.Mutex
	done bool
	rel  *relation
	err  error
}

// NewJoinCache builds a cache for a database.
func NewJoinCache(db *storage.Database) *JoinCache {
	return &JoinCache{db: db, m: map[string]*joinEntry{}, gen: db.Generation()}
}

// validate drops every memoized join built against an older database
// generation; the next materialization rebuilds from current rows. Called on
// each public entry point, so a shared cache self-invalidates after Insert.
func (c *JoinCache) validate() {
	g := c.db.Generation()
	c.mu.Lock()
	if c.gen != g {
		c.m = map[string]*joinEntry{}
		c.gen = g
	}
	c.mu.Unlock()
}

// Size returns the number of cached join paths.
func (c *JoinCache) Size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Stats returns a snapshot of the streaming-pipeline and prefix-sharing
// counters accumulated by this cache.
func (c *JoinCache) Stats() PipelineStats {
	return c.pc.snapshot()
}

// joinSig canonically identifies a join path (table set + edge set).
func joinSig(jp *sqlir.JoinPath) string {
	if jp == nil {
		return ""
	}
	tables := append([]string{}, jp.Tables...)
	sort.Strings(tables)
	edges := make([]string, len(jp.Edges))
	for i, e := range jp.Edges {
		a := e.FromTable + "." + e.FromColumn
		b := e.ToTable + "." + e.ToColumn
		if a > b {
			a, b = b, a
		}
		edges[i] = a + "=" + b
	}
	sort.Strings(edges)
	return strings.Join(tables, ",") + "|" + strings.Join(edges, "&")
}

// materialize returns the (cached) joined relation for a path. Waiters for
// an in-flight materialization block on the entry lock; the holder's context
// governs the computation, and if it dies mid-join each waiter retries under
// its own context rather than inheriting the failure.
func (c *JoinCache) materialize(ctx context.Context, jp *sqlir.JoinPath) (*relation, error) {
	sig := joinSig(jp)
	c.mu.Lock()
	e, ok := c.m[sig]
	if !ok {
		e = &joinEntry{}
		c.m[sig] = e
	}
	c.mu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.done {
		rel, err := c.build(ctx, jp)
		if err != nil && transientErr(err) {
			// This request's fate, not the join's: report it to the caller
			// but leave the entry unfilled for the next request.
			return nil, err
		}
		e.rel, e.err = rel, err
		e.done = true
	}
	return e.rel, e.err
}

// build materializes a join path, reusing the cached prefix relation when
// one exists: sibling enumeration states that already joined A⋈B extend it
// by one edge to probe A⋈B⋈C instead of re-joining the whole path. Edgeless
// or malformed paths go through the reference join, which also reproduces
// its error messages.
func (c *JoinCache) build(ctx context.Context, jp *sqlir.JoinPath) (*relation, error) {
	if jp == nil || len(jp.Tables) == 0 || len(jp.Edges) == 0 {
		c.pc.add(&c.pc.joinsBuilt, 1)
		return join(ctx, c.db, jp, &c.pc)
	}
	pes, _, oerr := orientEdges(c.db, jp)
	if oerr != nil {
		c.pc.add(&c.pc.joinsBuilt, 1)
		return join(ctx, c.db, jp, &c.pc) // malformed; join reports the reference error
	}
	last := jp.Edges[len(jp.Edges)-1]
	lastTable := pes[len(pes)-1].b
	prefix := &sqlir.JoinPath{Edges: jp.Edges[:len(jp.Edges)-1]}
	for _, t := range jp.Tables {
		if t != lastTable {
			prefix.Tables = append(prefix.Tables, t)
		}
	}
	c.mu.Lock()
	_, had := c.m[joinSig(prefix)]
	c.mu.Unlock()
	prel, err := c.materialize(ctx, prefix)
	if err != nil {
		return nil, err
	}
	if had {
		c.pc.add(&c.pc.prefixHits, 1)
	}
	return extendRelation(ctx, c.db, prel, last, &c.pc)
}

// Exists is Exists through the streaming pipeline, with this cache's
// counters and its memoized joins backing the materializing fallback.
func (c *JoinCache) Exists(eq ExistsQuery) (bool, error) {
	return c.ExistsCtx(context.Background(), eq)
}

// ExistsCtx is the cache-backed Exists under a request context.
func (c *JoinCache) ExistsCtx(ctx context.Context, eq ExistsQuery) (bool, error) {
	c.validate()
	return existsWith(ctx, c.db, eq, &c.pc, func(jp *sqlir.JoinPath) (*relation, error) {
		return c.materialize(ctx, jp)
	})
}
