// Package sqlexec executes complete SPJA queries (the paper's task scope,
// §2.5) against the in-memory storage engine: inner FK-PK joins, flat AND/OR
// selection, grouping with the five aggregates, HAVING, ORDER BY, LIMIT and
// DISTINCT. The verifier's column-wise and row-wise verification queries
// (Examples 3.5 and 3.6) run through the same engine via Exists.
package sqlexec

import (
	"context"
	"fmt"
	"sort"

	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/storage"
)

// Result is a materialized query result.
type Result struct {
	Columns []string
	Types   []sqlir.Type
	Rows    [][]sqlir.Value
}

// tuple is one joined row: per-slot row indexes into the slot's table.
// Index-based tuples keep join materialization allocation-light.
type tuple []int32

// relation is a working set of joined rows plus the table→slot map.
type relation struct {
	slots  map[string]int
	tables []*storage.Table // per slot
	tuples []tuple
}

// Execute runs a complete query and materializes its result.
func Execute(db *storage.Database, q *sqlir.Query) (*Result, error) {
	return ExecuteCtx(context.Background(), db, q)
}

// ExecuteCtx is Execute under a request context: join, filter, and grouping
// loops poll ctx at checkpoint boundaries and unwind with ctx.Err().
func ExecuteCtx(ctx context.Context, db *storage.Database, q *sqlir.Query) (*Result, error) {
	if q == nil || !q.Complete() {
		return nil, fmt.Errorf("sqlexec: query is not complete: %v", q)
	}
	rel, err := join(ctx, db, q.From, &discardCounters)
	if err != nil {
		return nil, err
	}
	return executeOn(ctx, db, rel, q, &discardCounters)
}

// Execute runs a complete query reusing the cache's materialized join.
func (c *JoinCache) Execute(q *sqlir.Query) (*Result, error) {
	return c.ExecuteCtx(context.Background(), q)
}

// ExecuteCtx is the cache-backed Execute under a request context. The
// materialization itself is shared across requests, so a cancelled
// materialization is not stored (see materialize).
func (c *JoinCache) ExecuteCtx(ctx context.Context, q *sqlir.Query) (*Result, error) {
	if q == nil || !q.Complete() {
		return nil, fmt.Errorf("sqlexec: query is not complete: %v", q)
	}
	rel, err := c.materialize(ctx, q.From)
	if err != nil {
		return nil, err
	}
	return executeOn(ctx, c.db, rel, q, &c.pc)
}

// executeOn evaluates a complete query over a pre-joined relation. The
// WHERE filter runs morsel-parallel when the context carries a pool; the
// group/aggregate/order loop below stays sequential — its interleaved
// HAVING and select-aggregate evaluation order is part of the reference
// error semantics, and after filtering it touches only group-sized data.
func executeOn(ctx context.Context, db *storage.Database, rel *relation, q *sqlir.Query, pc *pipelineCounters) (*Result, error) {
	rows, err := filter(ctx, db, rel, q.Where, q.WhereState, pc)
	if err != nil {
		return nil, err
	}
	cc := newCanceller(ctx)

	needsGroup := q.GroupByState == sqlir.ClausePresent || q.HasAggregate() ||
		(q.OrderByState == sqlir.ClausePresent && q.OrderBy.Key.Agg != sqlir.AggNone)

	res := &Result{}
	for _, s := range q.Select {
		res.Columns = append(res.Columns, s.String())
		ty, ok := db.Schema.Resolve(s.Col)
		if !ok {
			return nil, fmt.Errorf("sqlexec: unknown column %s", s.Col)
		}
		res.Types = append(res.Types, s.Agg.ResultType(ty))
	}

	type outRow struct {
		vals     []sqlir.Value
		orderKey sqlir.Value
	}
	var out []outRow

	if needsGroup {
		groups, err := groupRows(db, rel, rows, q.GroupBy)
		if err != nil {
			return nil, err
		}
		for _, g := range groups {
			if err := cc.tick(); err != nil {
				return nil, err
			}
			if q.HavingState == sqlir.ClausePresent {
				hv, err := evalAggregate(db, rel, g, q.Having.Agg, q.Having.Col)
				if err != nil {
					return nil, err
				}
				if !q.Having.Op.Eval(hv, q.Having.Val) {
					continue
				}
			}
			r := outRow{}
			for _, s := range q.Select {
				v, err := evalAggregate(db, rel, g, s.Agg, s.Col)
				if err != nil {
					return nil, err
				}
				r.vals = append(r.vals, v)
			}
			if q.OrderByState == sqlir.ClausePresent {
				v, err := evalAggregate(db, rel, g, q.OrderBy.Key.Agg, q.OrderBy.Key.Col)
				if err != nil {
					return nil, err
				}
				r.orderKey = v
			}
			out = append(out, r)
		}
	} else {
		for _, tp := range rows {
			if err := cc.tick(); err != nil {
				return nil, err
			}
			r := outRow{}
			for _, s := range q.Select {
				v, err := colValue(db, rel, tp, s.Col)
				if err != nil {
					return nil, err
				}
				r.vals = append(r.vals, v)
			}
			if q.OrderByState == sqlir.ClausePresent {
				v, err := colValue(db, rel, tp, q.OrderBy.Key.Col)
				if err != nil {
					return nil, err
				}
				r.orderKey = v
			}
			out = append(out, r)
		}
	}

	if q.Distinct {
		seen := map[string]bool{}
		dedup := out[:0]
		var buf []byte // reused row-key buffer: no per-row concatenation garbage
		for _, r := range out {
			buf = buf[:0]
			for _, v := range r.vals {
				buf = appendValueKey(buf, v)
			}
			if seen[string(buf)] {
				continue
			}
			seen[string(buf)] = true
			dedup = append(dedup, r)
		}
		out = dedup
	}

	if q.OrderByState == sqlir.ClausePresent {
		desc := q.OrderBy.Desc
		sort.SliceStable(out, func(i, j int) bool {
			c := out[i].orderKey.Compare(out[j].orderKey)
			if desc {
				return c > 0
			}
			return c < 0
		})
	}

	if q.LimitSet && q.Limit > 0 && len(out) > q.Limit {
		out = out[:q.Limit]
	}

	res.Rows = make([][]sqlir.Value, len(out))
	for i, r := range out {
		res.Rows[i] = r.vals
	}
	return res, nil
}

// join materializes the join path into a relation of joined tuples using
// hash joins on the FK-PK edges.
func join(ctx context.Context, db *storage.Database, jp *sqlir.JoinPath, pc *pipelineCounters) (*relation, error) {
	if jp == nil || len(jp.Tables) == 0 {
		return nil, fmt.Errorf("sqlexec: empty join path")
	}
	rel := &relation{slots: map[string]int{}}
	t0 := db.Table(jp.Tables[0])
	if t0 == nil {
		return nil, fmt.Errorf("sqlexec: unknown table %s", jp.Tables[0])
	}
	rel.slots[t0.Name] = 0
	rel.tables = append(rel.tables, t0)
	rel.tuples = make([]tuple, t0.NumRows())
	for i := range rel.tuples {
		rel.tuples[i] = tuple{int32(i)}
	}
	for _, e := range jp.Edges {
		var err error
		rel, err = extendRelation(ctx, db, rel, e, pc)
		if err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// extendRelation joins one more FK-PK edge onto a relation, probing the
// incoming table's persistent hash index. It returns a new relation and
// leaves the input untouched, so cached join prefixes can be shared. With a
// pool in the context the probe loop fans out over morsels of the input
// tuples; per-morsel output slices are concatenated in morsel order, so the
// materialized tuple order is identical to the sequential probe.
func extendRelation(ctx context.Context, db *storage.Database, rel *relation, e sqlir.JoinEdge, pc *pipelineCounters) (*relation, error) {
	var existing, incoming string
	if _, ok := rel.slots[e.FromTable]; ok {
		existing, incoming = e.FromTable, e.ToTable
	} else if _, ok := rel.slots[e.ToTable]; ok {
		existing, incoming = e.ToTable, e.FromTable
	} else {
		return nil, fmt.Errorf("sqlexec: join edge %s disconnected from path", e)
	}
	if _, dup := rel.slots[incoming]; dup {
		return nil, fmt.Errorf("sqlexec: table %s joined twice", incoming)
	}
	nt := db.Table(incoming)
	if nt == nil {
		return nil, fmt.Errorf("sqlexec: unknown table %s", incoming)
	}
	exCol, inCol := e.FromColumn, e.ToColumn
	if existing == e.ToTable {
		exCol, inCol = e.ToColumn, e.FromColumn
	}
	exTbl := db.Table(existing)
	exIdx := exTbl.ColumnIndex(exCol)
	inIdx := nt.ColumnIndex(inCol)
	if exIdx < 0 || inIdx < 0 {
		return nil, fmt.Errorf("sqlexec: join edge %s references unknown column", e)
	}
	index, err := nt.Index(inCol)
	if err != nil {
		return nil, err
	}
	next := &relation{
		slots:  make(map[string]int, len(rel.slots)+1),
		tables: append(append([]*storage.Table{}, rel.tables...), nt),
	}
	for t, s := range rel.slots {
		next.slots[t] = s
	}
	slot := len(rel.slots)
	next.slots[incoming] = slot
	exSlot := rel.slots[existing]
	exRows := rel.tables[exSlot]

	// probeRange extends one range of input tuples into a private output
	// slice. Tick per output tuple too: a fanning-out edge can append many
	// rows per input tuple, and the checkpoint cadence must follow the work
	// actually done, not the rows scanned.
	probeRange := func(ctx context.Context, lo, hi int) ([]tuple, error) {
		cc := newCanceller(ctx)
		var out []tuple
		for _, tp := range rel.tuples[lo:hi] {
			if err := cc.tick(); err != nil {
				return nil, err
			}
			v := exRows.Row(int(tp[exSlot]))[exIdx]
			if v.IsNull() {
				continue
			}
			for _, m := range index[v] {
				if err := cc.tick(); err != nil {
					return nil, err
				}
				ext := make(tuple, len(tp)+1)
				copy(ext, tp)
				ext[slot] = m
				out = append(out, ext)
			}
		}
		return out, nil
	}

	if pool := PoolFrom(ctx); pool != nil {
		morsels := storage.Morsels(len(rel.tuples), MorselSizeFrom(ctx))
		if len(morsels) >= 2 {
			parts := make([][]tuple, len(morsels))
			res := runMorsels(ctx, pool, morsels, func(mctx context.Context, m int) (bool, error) {
				out, perr := probeRange(mctx, morsels[m].Lo, morsels[m].Hi)
				parts[m] = out
				return false, perr
			})
			pc.addMorselRun(res)
			if res.err != nil {
				return nil, res.err
			}
			total := 0
			for _, p := range parts {
				total += len(p)
			}
			next.tuples = make([]tuple, 0, total)
			for _, p := range parts {
				next.tuples = append(next.tuples, p...)
			}
			return next, nil
		}
	}
	out, err := probeRange(ctx, 0, len(rel.tuples))
	if err != nil {
		return nil, err
	}
	next.tuples = out
	return next, nil
}

// colValue resolves a column reference against a joined tuple.
func colValue(db *storage.Database, rel *relation, tp tuple, c sqlir.ColumnRef) (sqlir.Value, error) {
	slot, ok := rel.slots[c.Table]
	if !ok {
		return sqlir.Null(), fmt.Errorf("sqlexec: column %s not in join path", c)
	}
	tbl := rel.tables[slot]
	ci := tbl.ColumnIndex(c.Column)
	if ci < 0 {
		return sqlir.Null(), fmt.Errorf("sqlexec: unknown column %s", c)
	}
	return tbl.Row(int(tp[slot]))[ci], nil
}

// filter applies the WHERE clause. With a pool in the context the predicate
// loop fans out over morsels of the input tuples; per-morsel keep-lists are
// concatenated in morsel order, so the surviving tuples appear in exactly
// the sequential scan's order (grouping and ORDER BY downstream see
// bit-identical input).
func filter(ctx context.Context, db *storage.Database, rel *relation, w sqlir.Where, state sqlir.ClauseState, pc *pipelineCounters) ([]tuple, error) {
	if state != sqlir.ClausePresent || len(w.Preds) == 0 {
		return rel.tuples, nil
	}
	filterRange := func(ctx context.Context, lo, hi int) ([]tuple, error) {
		var out []tuple
		cc := newCanceller(ctx)
		for _, tp := range rel.tuples[lo:hi] {
			if err := cc.tick(); err != nil {
				return nil, err
			}
			ok, err := evalWhere(db, rel, tp, w)
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, tp)
			}
		}
		return out, nil
	}
	if pool := PoolFrom(ctx); pool != nil {
		morsels := storage.Morsels(len(rel.tuples), MorselSizeFrom(ctx))
		if len(morsels) >= 2 {
			parts := make([][]tuple, len(morsels))
			res := runMorsels(ctx, pool, morsels, func(mctx context.Context, m int) (bool, error) {
				out, ferr := filterRange(mctx, morsels[m].Lo, morsels[m].Hi)
				parts[m] = out
				return false, ferr
			})
			pc.addMorselRun(res)
			if res.err != nil {
				return nil, res.err
			}
			var out []tuple
			for _, p := range parts {
				out = append(out, p...)
			}
			return out, nil
		}
	}
	return filterRange(ctx, 0, len(rel.tuples))
}

// evalWhere evaluates the flat conjunction/disjunction on one tuple.
func evalWhere(db *storage.Database, rel *relation, tp tuple, w sqlir.Where) (bool, error) {
	and := w.Conj == sqlir.LogicAnd || len(w.Preds) == 1
	for _, p := range w.Preds {
		v, err := colValue(db, rel, tp, p.Col)
		if err != nil {
			return false, err
		}
		hit := p.Op.Eval(v, p.Val)
		if and && !hit {
			return false, nil
		}
		if !and && hit {
			return true, nil
		}
	}
	return and, nil
}

// groupRows partitions tuples by the GROUP BY key. With no GROUP BY columns
// (pure aggregate query) all rows form a single group; with zero input rows
// a pure aggregate query still yields one empty group, matching SQL.
func groupRows(db *storage.Database, rel *relation, rows []tuple, groupBy []sqlir.ColumnRef) ([][]tuple, error) {
	if len(groupBy) == 0 {
		return [][]tuple{rows}, nil
	}
	idx := map[string]int{}
	var out [][]tuple
	var buf []byte // reused key buffer; the key string is allocated once per group
	for _, tp := range rows {
		buf = buf[:0]
		for _, g := range groupBy {
			v, err := colValue(db, rel, tp, g)
			if err != nil {
				return nil, err
			}
			buf = appendValueKey(buf, v)
		}
		if i, ok := idx[string(buf)]; ok {
			out[i] = append(out[i], tp)
		} else {
			idx[string(buf)] = len(out)
			out = append(out, []tuple{tp})
		}
	}
	return out, nil
}

// evalAggregate computes agg(col) over a group. AggNone returns the first
// row's value (the column is expected to be in the GROUP BY key).
func evalAggregate(db *storage.Database, rel *relation, group []tuple, agg sqlir.AggFunc, col sqlir.ColumnRef) (sqlir.Value, error) {
	if agg == sqlir.AggNone {
		if len(group) == 0 {
			return sqlir.Null(), nil
		}
		return colValue(db, rel, group[0], col)
	}
	if agg == sqlir.AggCount && col.IsStar() {
		return sqlir.NewInt(len(group)), nil
	}
	var (
		count int
		sum   float64
		min   sqlir.Value
		max   sqlir.Value
	)
	for _, tp := range group {
		v, err := colValue(db, rel, tp, col)
		if err != nil {
			return sqlir.Null(), err
		}
		if v.IsNull() {
			continue
		}
		if (agg == sqlir.AggSum || agg == sqlir.AggAvg) && v.Kind != sqlir.KindNumber {
			return sqlir.Null(), errNonNumericAgg(col, v)
		}
		if count == 0 {
			min, max = v, v
		} else {
			if v.Less(min) {
				min = v
			}
			if max.Less(v) {
				max = v
			}
		}
		if v.Kind == sqlir.KindNumber {
			sum += v.Num
		}
		count++
	}
	switch agg {
	case sqlir.AggCount:
		return sqlir.NewInt(count), nil
	case sqlir.AggMin:
		return min, nil
	case sqlir.AggMax:
		return max, nil
	case sqlir.AggSum:
		if count == 0 {
			return sqlir.Null(), nil
		}
		return sqlir.NewNumber(sum), nil
	case sqlir.AggAvg:
		if count == 0 {
			return sqlir.Null(), nil
		}
		return sqlir.NewNumber(sum / float64(count)), nil
	default:
		return sqlir.Null(), fmt.Errorf("sqlexec: unknown aggregate %v", agg)
	}
}
