// Package autocomplete implements the paper's autocomplete server (§4): a
// master inverted column index [16] over every text column in the database.
// Typing a double-quote in the front-end searches this index so users can
// tag literal values in the NLQ and fill TSQ cells without schema knowledge.
package autocomplete

import (
	"sort"
	"strings"

	"github.com/duoquest/duoquest/internal/storage"
)

// Hit is one autocomplete suggestion: a stored text value and the column it
// occurs in.
type Hit struct {
	Value  string
	Table  string
	Column string
}

// entry is an indexed value with its pre-computed fold.
type entry struct {
	folded string
	hit    Hit
}

// Index is an in-memory inverted column index supporting case-insensitive
// prefix and token-prefix lookups over all text columns.
type Index struct {
	// byPrefix is sorted by folded value for whole-value prefix scans.
	byPrefix []entry
	// byToken maps each word token to the entries containing it.
	byToken map[string][]int
	size    int
}

// Build indexes every distinct value of every text column in the database.
// The entries come straight from the storage engine's per-column string
// dictionaries: an interned dictionary holds exactly the column's distinct
// non-null values, so the build reads each value once instead of scanning
// and de-duplicating rows.
func Build(db *storage.Database) *Index {
	idx := &Index{byToken: map[string][]int{}}
	for _, col := range db.Schema.TextColumns() {
		t := db.Schema.Table(col.Table)
		vec := t.Vector(col.Column)
		if vec == nil || vec.Dict() == nil {
			continue
		}
		for _, s := range vec.Dict().Strings() {
			if s == "" {
				continue
			}
			idx.byPrefix = append(idx.byPrefix, entry{
				folded: strings.ToLower(s),
				hit:    Hit{Value: s, Table: col.Table, Column: col.Column},
			})
		}
	}
	sort.Slice(idx.byPrefix, func(i, j int) bool {
		if idx.byPrefix[i].folded != idx.byPrefix[j].folded {
			return idx.byPrefix[i].folded < idx.byPrefix[j].folded
		}
		if idx.byPrefix[i].hit.Table != idx.byPrefix[j].hit.Table {
			return idx.byPrefix[i].hit.Table < idx.byPrefix[j].hit.Table
		}
		if idx.byPrefix[i].hit.Column != idx.byPrefix[j].hit.Column {
			return idx.byPrefix[i].hit.Column < idx.byPrefix[j].hit.Column
		}
		// Case-variant values share a fold within one column; break the tie
		// on the stored value so the order is fully deterministic.
		return idx.byPrefix[i].hit.Value < idx.byPrefix[j].hit.Value
	})
	for i, e := range idx.byPrefix {
		for _, tok := range strings.Fields(e.folded) {
			idx.byToken[tok] = append(idx.byToken[tok], i)
		}
	}
	idx.size = len(idx.byPrefix)
	return idx
}

// Size returns the number of indexed (value, column) pairs.
func (idx *Index) Size() int { return idx.size }

// Complete returns up to max suggestions for a query prefix, preferring
// whole-value prefix matches, then token-prefix matches ("gump" finds
// "Forrest Gump"). Results are deterministic.
func (idx *Index) Complete(q string, max int) []Hit {
	if max <= 0 {
		max = 10
	}
	q = strings.ToLower(strings.TrimSpace(q))
	if q == "" {
		return nil
	}
	var out []Hit
	seen := map[Hit]bool{}
	add := func(h Hit) bool {
		if seen[h] {
			return len(out) < max
		}
		seen[h] = true
		out = append(out, h)
		return len(out) < max
	}
	// Whole-value prefix scan via binary search.
	lo := sort.Search(len(idx.byPrefix), func(i int) bool {
		return idx.byPrefix[i].folded >= q
	})
	for i := lo; i < len(idx.byPrefix) && strings.HasPrefix(idx.byPrefix[i].folded, q); i++ {
		if !add(idx.byPrefix[i].hit) {
			return out
		}
	}
	// Token prefix matches, in token order for determinism.
	var toks []string
	for tok := range idx.byToken {
		if strings.HasPrefix(tok, q) {
			toks = append(toks, tok)
		}
	}
	sort.Strings(toks)
	for _, tok := range toks {
		for _, i := range idx.byToken[tok] {
			if !add(idx.byPrefix[i].hit) {
				return out
			}
		}
	}
	return out
}

// Lookup reports whether the exact value (case-insensitive) is stored in any
// text column, returning the matching columns. The front-end uses this to
// validate tagged literals.
func (idx *Index) Lookup(value string) []Hit {
	q := strings.ToLower(value)
	lo := sort.Search(len(idx.byPrefix), func(i int) bool {
		return idx.byPrefix[i].folded >= q
	})
	var out []Hit
	for i := lo; i < len(idx.byPrefix) && idx.byPrefix[i].folded == q; i++ {
		out = append(out, idx.byPrefix[i].hit)
	}
	return out
}
