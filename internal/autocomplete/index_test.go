package autocomplete

import (
	"testing"

	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/storage"
)

func text(s string) sqlir.Value { return sqlir.NewText(s) }
func num(f float64) sqlir.Value { return sqlir.NewNumber(f) }

func testDB() *storage.Database {
	actor := storage.NewTable("actor", "aid",
		storage.Column{Name: "aid", Type: sqlir.TypeNumber},
		storage.Column{Name: "name", Type: sqlir.TypeText},
	)
	movie := storage.NewTable("movie", "mid",
		storage.Column{Name: "mid", Type: sqlir.TypeNumber},
		storage.Column{Name: "title", Type: sqlir.TypeText},
		storage.Column{Name: "year", Type: sqlir.TypeNumber},
	)
	s := storage.NewSchema(actor, movie)
	actor.MustInsert(num(1), text("Tom Hanks"))
	actor.MustInsert(num(2), text("Sandra Bullock"))
	actor.MustInsert(num(3), text("Tom Hardy"))
	movie.MustInsert(num(1), text("Forrest Gump"), num(1994))
	movie.MustInsert(num(2), text("Gravity"), num(2013))
	movie.MustInsert(num(3), text("Tomorrowland"), num(2015))
	return storage.NewDatabase("t", s)
}

func TestBuildSize(t *testing.T) {
	idx := Build(testDB())
	if idx.Size() != 6 {
		t.Errorf("size = %d, want 6", idx.Size())
	}
}

func TestCompletePrefix(t *testing.T) {
	idx := Build(testDB())
	hits := idx.Complete("tom", 10)
	// Whole-value prefixes first: Tom Hanks, Tom Hardy, Tomorrowland; then
	// token matches (none new).
	if len(hits) != 3 {
		t.Fatalf("hits = %v", hits)
	}
	if hits[0].Value != "Tom Hanks" || hits[1].Value != "Tom Hardy" || hits[2].Value != "Tomorrowland" {
		t.Errorf("hits = %v", hits)
	}
	if hits[0].Table != "actor" || hits[0].Column != "name" {
		t.Errorf("hit metadata = %+v", hits[0])
	}
}

func TestCompleteTokenMatch(t *testing.T) {
	idx := Build(testDB())
	// "gump" is not a value prefix but is a token of "Forrest Gump".
	hits := idx.Complete("gump", 10)
	if len(hits) != 1 || hits[0].Value != "Forrest Gump" {
		t.Errorf("hits = %v", hits)
	}
}

func TestCompleteCaseInsensitive(t *testing.T) {
	idx := Build(testDB())
	if len(idx.Complete("FORREST", 10)) != 1 {
		t.Error("case-insensitive prefix failed")
	}
}

func TestCompleteMax(t *testing.T) {
	idx := Build(testDB())
	if hits := idx.Complete("tom", 2); len(hits) != 2 {
		t.Errorf("max ignored: %v", hits)
	}
	if hits := idx.Complete("tom", 0); len(hits) != 3 {
		t.Errorf("default max: %v", hits)
	}
}

func TestCompleteEmptyAndMiss(t *testing.T) {
	idx := Build(testDB())
	if idx.Complete("", 10) != nil {
		t.Error("empty query should return nil")
	}
	if idx.Complete("   ", 10) != nil {
		t.Error("blank query should return nil")
	}
	if len(idx.Complete("zzz", 10)) != 0 {
		t.Error("miss should be empty")
	}
}

func TestLookup(t *testing.T) {
	idx := Build(testDB())
	hits := idx.Lookup("forrest gump")
	if len(hits) != 1 || hits[0].Table != "movie" {
		t.Errorf("lookup = %v", hits)
	}
	if len(idx.Lookup("nobody")) != 0 {
		t.Error("missing value should not resolve")
	}
}

func TestDeterminism(t *testing.T) {
	a := Build(testDB()).Complete("tom", 10)
	b := Build(testDB()).Complete("tom", 10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic: %v vs %v", a, b)
		}
	}
}

func TestEmptyDatabase(t *testing.T) {
	s := storage.NewSchema(storage.NewTable("t", "", storage.Column{Name: "x", Type: sqlir.TypeText}))
	idx := Build(storage.NewDatabase("empty", s))
	if idx.Size() != 0 {
		t.Error("empty database should index nothing")
	}
	if len(idx.Complete("a", 5)) != 0 {
		t.Error("empty index should return nothing")
	}
}
