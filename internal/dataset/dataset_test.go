package dataset

import (
	"testing"

	"github.com/duoquest/duoquest/internal/semrules"
	"github.com/duoquest/duoquest/internal/sqlexec"
	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/tsq"
)

func TestMASSchemaShape(t *testing.T) {
	db := MAS()
	if err := db.Schema.Validate(); err != nil {
		t.Fatalf("MAS schema invalid: %v", err)
	}
	if got := len(db.Schema.Tables); got != 15 {
		t.Errorf("tables = %d, want 15 (Table 5)", got)
	}
	if got := len(db.Schema.ForeignKeys); got != 19 {
		t.Errorf("foreign keys = %d, want 19 (Table 5)", got)
	}
	if db.TotalRows() == 0 {
		t.Error("MAS is empty")
	}
}

func TestMASDeterministic(t *testing.T) {
	a, b := MAS(), MAS()
	if a.TotalRows() != b.TotalRows() {
		t.Fatal("MAS not deterministic in size")
	}
	ta, tb := a.Table("publication"), b.Table("publication")
	for i := 0; i < ta.NumRows(); i++ {
		for j := range ta.Row(i) {
			if !ta.Row(i)[j].Equal(tb.Row(i)[j]) {
				t.Fatalf("row %d differs", i)
			}
		}
	}
}

// TestMASTasksGold: every Appendix A task parses, passes the semantic rules,
// and yields a non-empty result with the expected interesting shape.
func TestMASTasksGold(t *testing.T) {
	tasks, db := MASTasks()
	if len(tasks) != 14 {
		t.Fatalf("tasks = %d", len(tasks))
	}
	rules := semrules.Default()
	for _, task := range tasks {
		if v := rules.Check(task.Gold, db.Schema); v != nil {
			t.Errorf("%s: gold violates %v", task.ID, v)
		}
		res, err := task.GoldResult()
		if err != nil {
			t.Errorf("%s: %v", task.ID, err)
			continue
		}
		if len(res.Rows) == 0 {
			t.Errorf("%s: empty gold result", task.ID)
		}
	}
}

// TestMASTaskAnswers pins the task semantics to the synthetic data.
func TestMASTaskAnswers(t *testing.T) {
	tasks, _ := MASTasks()
	byID := map[string]*Task{}
	for _, task := range tasks {
		byID[task.ID] = task
	}
	// A4: exactly TODS (60) and VLDB Journal (55) exceed 50 publications.
	res, err := byID["A4"].GoldResult()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("A4 rows = %v", res.Rows)
	}
	// B3: Michigan (12) and Oxford (10) exceed 8 authors.
	res, _ = byID["B3"].GoldResult()
	if len(res.Rows) != 2 {
		t.Errorf("B3 rows = %v", res.Rows)
	}
	// D3: only Alice Johnson has more than 8 SIGMOD papers.
	res, _ = byID["D3"].GoldResult()
	if len(res.Rows) != 1 || !res.Rows[0][0].Equal(text("Alice Johnson")) {
		t.Errorf("D3 rows = %v", res.Rows)
	}
	// C3: Alice (9) and Bob (6) have more than 5.
	res, _ = byID["C3"].GoldResult()
	if len(res.Rows) != 2 {
		t.Errorf("C3 rows = %v", res.Rows)
	}
	// D2: Europe has 4 organizations.
	res, _ = byID["D2"].GoldResult()
	if len(res.Rows) != 4 {
		t.Errorf("D2 rows = %v", res.Rows)
	}
}

func TestStudySplits(t *testing.T) {
	nli, _ := NLIStudyTasks()
	if len(nli) != 8 || nli[0].ID != "A1" || nli[7].ID != "B4" {
		t.Errorf("NLI study tasks = %v", ids(nli))
	}
	pbeT, _ := PBEStudyTasks()
	if len(pbeT) != 6 || pbeT[0].ID != "C1" || pbeT[5].ID != "D3" {
		t.Errorf("PBE study tasks = %v", ids(pbeT))
	}
}

func ids(tasks []*Task) []string {
	var out []string
	for _, t := range tasks {
		out = append(out, t.ID)
	}
	return out
}

func TestClassifyDifficulty(t *testing.T) {
	tasks, _ := MASTasks()
	want := map[string]Difficulty{
		"A1": Medium, "A2": Hard, "A3": Hard, "A4": Hard,
		"B1": Medium, "B2": Medium, "B3": Hard, "B4": Hard,
		"C1": Medium, "C2": Medium, "C3": Hard, "D1": Medium,
		"D2": Medium, "D3": Hard,
	}
	for _, task := range tasks {
		if task.Difficulty != want[task.ID] {
			t.Errorf("%s difficulty = %v, want %v", task.ID, task.Difficulty, want[task.ID])
		}
	}
}

func TestSynthesizeTSQLevels(t *testing.T) {
	tasks, _ := MASTasks()
	task := tasks[0] // A1: title, year

	full, err := SynthesizeTSQ(task, DetailFull, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := full.Validate(); err != nil {
		t.Fatalf("full TSQ invalid: %v", err)
	}
	if len(full.Types) != 2 || len(full.Tuples) != 2 {
		t.Errorf("full TSQ = %v", full)
	}
	res, _ := task.GoldResult()
	if !full.Satisfies(res) {
		t.Error("full TSQ must satisfy the gold result")
	}

	partial, err := SynthesizeTSQ(task, DetailPartial, 42)
	if err != nil {
		t.Fatal(err)
	}
	empties := 0
	for _, tp := range partial.Tuples {
		for _, c := range tp {
			if c.Kind == tsq.CellEmpty {
				empties++
			}
		}
	}
	if empties < 2 {
		t.Errorf("partial TSQ should erase one column: %v", partial)
	}
	if !partial.Satisfies(res) {
		t.Error("partial TSQ must satisfy the gold result")
	}

	minimal, err := SynthesizeTSQ(task, DetailMinimal, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(minimal.Tuples) != 0 || len(minimal.Types) != 2 {
		t.Errorf("minimal TSQ = %v", minimal)
	}
}

func TestSynthesizeTSQSortedRespectsOrder(t *testing.T) {
	tasks, _ := MASTasks()
	var a2 *Task
	for _, task := range tasks {
		if task.ID == "A2" {
			a2 = task
		}
	}
	sk, err := SynthesizeTSQ(a2, DetailFull, 99)
	if err != nil {
		t.Fatal(err)
	}
	if !sk.Sorted {
		t.Error("A2 is ordered; TSQ must carry τ=⊤")
	}
	res, _ := a2.GoldResult()
	if !sk.Satisfies(res) {
		t.Error("sorted TSQ must satisfy gold in order")
	}
}

func TestFactBank(t *testing.T) {
	tasks, _ := MASTasks()
	facts, err := FactBank(tasks[0], 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(facts) == 0 || len(facts) > 10 {
		t.Errorf("fact bank size = %d", len(facts))
	}
	res, _ := tasks[0].GoldResult()
	if got := VerifyAgainstFacts(res, facts); got != len(facts) {
		t.Errorf("all facts should verify against gold: %d/%d", got, len(facts))
	}
}

func TestSpiderDevShape(t *testing.T) {
	dev := SpiderDev()
	if len(dev.Databases) != 20 {
		t.Errorf("dev dbs = %d", len(dev.Databases))
	}
	if len(dev.Tasks) != 589 {
		t.Errorf("dev tasks = %d, want 589", len(dev.Tasks))
	}
	counts := map[Difficulty]int{}
	for _, task := range dev.Tasks {
		counts[task.Difficulty]++
	}
	if counts[Easy] != 239 || counts[Medium] != 252 || counts[Hard] != 98 {
		t.Errorf("dev difficulty mix = %v, want 239/252/98", counts)
	}
}

func TestSpiderTestShape(t *testing.T) {
	ts := SpiderTest()
	if len(ts.Databases) != 40 {
		t.Errorf("test dbs = %d", len(ts.Databases))
	}
	if len(ts.Tasks) != 1247 {
		t.Errorf("test tasks = %d, want 1247", len(ts.Tasks))
	}
	counts := map[Difficulty]int{}
	for _, task := range ts.Tasks {
		counts[task.Difficulty]++
	}
	if counts[Easy] != 524 || counts[Medium] != 481 || counts[Hard] != 242 {
		t.Errorf("test difficulty mix = %v, want 524/481/242", counts)
	}
}

// TestSpiderTasksWellFormed: all gold queries execute non-empty, pass the
// semantic rules, and every predicate literal is in the task's literal list.
func TestSpiderTasksWellFormed(t *testing.T) {
	dev := SpiderDev()
	rules := semrules.Default()
	for _, task := range dev.Tasks {
		res, err := sqlexec.Execute(task.DB, task.Gold)
		if err != nil {
			t.Fatalf("%s: %v", task.ID, err)
		}
		if len(res.Rows) == 0 {
			t.Errorf("%s: empty result", task.ID)
		}
		if v := rules.Check(task.Gold, task.DB.Schema); v != nil {
			t.Errorf("%s: %v", task.ID, v)
		}
		used := task.Gold.Literals()
		for _, lit := range used {
			found := false
			for _, l := range task.Literals {
				if l.Equal(lit) {
					found = true
				}
			}
			if !found {
				t.Errorf("%s: literal %s missing from task literals", task.ID, lit)
			}
		}
		if task.NLQ == "" {
			t.Errorf("%s: empty NLQ", task.ID)
		}
	}
}

func TestSpiderDeterministic(t *testing.T) {
	a := SpiderDev()
	b := SpiderDev()
	if len(a.Tasks) != len(b.Tasks) {
		t.Fatal("task counts differ")
	}
	for i := range a.Tasks {
		if a.Tasks[i].SQL != b.Tasks[i].SQL || a.Tasks[i].NLQ != b.Tasks[i].NLQ {
			t.Fatalf("task %d differs between runs", i)
		}
	}
}

func TestSpiderDevTestDistinct(t *testing.T) {
	dev, ts := SpiderDev(), SpiderTest()
	// Same domain cycled, but different seeds produce different data sizes
	// or literals; check the first concert database differs.
	a := dev.Databases[0].Table("concert")
	b := ts.Databases[0].Table("concert")
	if a.NumRows() == b.NumRows() {
		// Same size is possible; require some row to differ then.
		same := true
		for i := 0; i < a.NumRows() && same; i++ {
			for j := range a.Row(i) {
				if !a.Row(i)[j].Equal(b.Row(i)[j]) {
					same = false
					break
				}
			}
		}
		if same {
			t.Error("dev and test databases are identical")
		}
	}
}

func TestSynthesizeTSQEmptyGold(t *testing.T) {
	tasks, db := MASTasks()
	bad := &Task{
		ID: "X", DB: db,
		Gold: tasks[0].Gold.Clone(),
	}
	// Make the gold query produce nothing.
	bad.Gold.Where.Preds[0].Val = sqlir.NewText("No Such Conference")
	if _, err := SynthesizeTSQ(bad, DetailFull, 1); err == nil {
		t.Error("empty gold result should error")
	}
	if _, err := FactBank(bad, 1); err == nil {
		t.Error("empty gold result should error for fact bank")
	}
}

func TestDifficultyString(t *testing.T) {
	if Easy.String() != "easy" || Medium.String() != "medium" || Hard.String() != "hard" {
		t.Error("difficulty names")
	}
	if DetailFull.String() != "Full" || DetailPartial.String() != "Partial" || DetailMinimal.String() != "Minimal" {
		t.Error("detail names")
	}
}
