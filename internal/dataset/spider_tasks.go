package dataset

import (
	"fmt"
	"math/rand"

	"github.com/duoquest/duoquest/internal/semrules"
	"github.com/duoquest/duoquest/internal/sqlexec"
	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/storage"
)

// Benchmark is a generated Spider-like task suite (§5.4.1).
type Benchmark struct {
	Name      string
	Databases []*storage.Database
	Tasks     []*Task
}

// quota fixes the difficulty mix, matching the paper's filtered sets
// (Table 5 / Figure 11).
type quota struct{ easy, medium, hard int }

// SpiderDev generates the development benchmark: 20 databases, 589 tasks
// (239 easy, 252 medium, 98 hard).
func SpiderDev() *Benchmark {
	return generateBenchmark("spider-dev", 20, quota{239, 252, 98}, 1001)
}

// SpiderTest generates the test benchmark: 40 databases, 1247 tasks
// (524 easy, 481 medium, 242 hard).
func SpiderTest() *Benchmark {
	return generateBenchmark("spider-test", 40, quota{524, 481, 242}, 2002)
}

// generateBenchmark instantiates nDBs databases by cycling the domain specs
// with distinct seeds, generates a task pool per database, and samples the
// exact difficulty quotas.
func generateBenchmark(name string, nDBs int, q quota, seed int64) *Benchmark {
	bench := &Benchmark{Name: name}
	var builts []*builtDB
	for i := 0; i < nDBs; i++ {
		spec := spiderDomains[i%len(spiderDomains)]
		variant := i/len(spiderDomains) + 1
		b := buildDomain(spec, variant, seed+int64(i)*31)
		builts = append(builts, b)
		bench.Databases = append(bench.Databases, b.db)
	}

	// Per-database shares with remainders on the first databases.
	share := func(total, i int) int {
		base := total / nDBs
		if i < total%nDBs {
			base++
		}
		return base
	}

	rules := semrules.Default()
	for i, b := range builts {
		r := rand.New(rand.NewSource(seed + 7919*int64(i)))
		pool := generateTaskPool(b, r, rules)
		for _, diff := range []Difficulty{Easy, Medium, Hard} {
			want := 0
			switch diff {
			case Easy:
				want = share(q.easy, i)
			case Medium:
				want = share(q.medium, i)
			case Hard:
				want = share(q.hard, i)
			}
			got := 0
			for _, t := range pool[diff] {
				if got >= want {
					break
				}
				t.ID = fmt.Sprintf("%s/%s-%d", b.db.Name, diff, got+1)
				bench.Tasks = append(bench.Tasks, t)
				got++
			}
			if got < want {
				panic(fmt.Sprintf("dataset: %s: %s pool exhausted (%d < %d)",
					b.db.Name, diff, got, want))
			}
		}
	}
	return bench
}

// generateTaskPool enumerates template instances on one database, keeping
// only tasks whose gold query is semantically clean and non-empty.
func generateTaskPool(b *builtDB, r *rand.Rand, rules *semrules.RuleSet) map[Difficulty][]*Task {
	g := &taskGen{b: b, r: r, rules: rules, pool: map[Difficulty][]*Task{}}
	g.easyTasks()
	g.mediumTasks()
	g.hardTasks()
	g.singleTableHardTasks()
	for _, d := range []Difficulty{Easy, Medium, Hard} {
		r.Shuffle(len(g.pool[d]), func(i, j int) {
			g.pool[d][i], g.pool[d][j] = g.pool[d][j], g.pool[d][i]
		})
	}
	return g.pool
}

type taskGen struct {
	b     *builtDB
	r     *rand.Rand
	rules *semrules.RuleSet
	pool  map[Difficulty][]*Task
}

// keep validates and stores a candidate task.
func (g *taskGen) keep(q *sqlir.Query, nlq string, lits []sqlir.Value) {
	if v := g.rules.Check(q, g.b.db.Schema); v != nil {
		return
	}
	res, err := sqlexec.Execute(g.b.db, q)
	if err != nil || len(res.Rows) == 0 {
		return
	}
	// Sorted TSQs need deterministic tuple order; skip gold queries whose
	// ORDER BY key ties everywhere (degenerate ordering).
	task := &Task{
		DB:         g.b.db,
		NLQ:        nlq,
		SQL:        q.String(),
		Gold:       q,
		Literals:   lits,
		Difficulty: ClassifyDifficulty(q),
	}
	g.pool[task.Difficulty] = append(g.pool[task.Difficulty], task)
}

// pick chooses a seeded variant.
func (g *taskGen) pick(variants ...string) string {
	return variants[g.r.Intn(len(variants))]
}

// --- column helpers -------------------------------------------------------

func (g *taskGen) isFK(table, col string) bool {
	for _, fk := range g.b.spec.fks {
		if fk.table == table && fk.col == col {
			return true
		}
	}
	return false
}

// textCols returns non-key text columns of a table.
func (g *taskGen) textCols(table string) []sqlir.ColumnRef {
	t := g.b.db.Schema.Table(table)
	var out []sqlir.ColumnRef
	for _, c := range t.Columns {
		if c.Type == sqlir.TypeText && c.Name != t.PrimaryKey && !g.isFK(table, c.Name) {
			out = append(out, sqlir.ColumnRef{Table: table, Column: c.Name})
		}
	}
	return out
}

// numCols returns non-key numeric columns of a table.
func (g *taskGen) numCols(table string) []sqlir.ColumnRef {
	t := g.b.db.Schema.Table(table)
	var out []sqlir.ColumnRef
	for _, c := range t.Columns {
		if c.Type == sqlir.TypeNumber && c.Name != t.PrimaryKey && !g.isFK(table, c.Name) {
			out = append(out, sqlir.ColumnRef{Table: table, Column: c.Name})
		}
	}
	return out
}

func (g *taskGen) phrase(c sqlir.ColumnRef) string { return g.b.phrase[c] }
func (g *taskGen) plural(table string) string      { return g.b.plural[table] }
func (g *taskGen) entity(table string) string      { return g.b.entity[table] }

// sampleValue draws a value of the column from the data.
func (g *taskGen) sampleValue(c sqlir.ColumnRef) (sqlir.Value, bool) {
	t := g.b.db.Schema.Table(c.Table)
	vals, err := t.DistinctValues(c.Column, 0)
	if err != nil || len(vals) == 0 {
		return sqlir.Null(), false
	}
	return vals[g.r.Intn(len(vals))], true
}

// --- query constructors ---------------------------------------------------

func selectItem(c sqlir.ColumnRef, agg sqlir.AggFunc) sqlir.SelectItem {
	return sqlir.SelectItem{Agg: agg, AggSet: true, Col: c, ColSet: true}
}

func singleTable(table string) *sqlir.JoinPath {
	return &sqlir.JoinPath{Tables: []string{table}}
}

// joinVia builds the two-table join path along an FK.
func (g *taskGen) joinVia(fk fkSpec) *sqlir.JoinPath {
	return &sqlir.JoinPath{
		Tables: []string{fk.table, fk.refTable},
		Edges: []sqlir.JoinEdge{{
			FromTable: fk.table, FromColumn: fk.col,
			ToTable: fk.refTable, ToColumn: fk.refCol,
		}},
	}
}

func baseQuery(from *sqlir.JoinPath, items ...sqlir.SelectItem) *sqlir.Query {
	q := sqlir.NewQuery()
	q.KWSet = true
	q.LimitSet = true
	q.SelectCountSet = true
	q.Select = items
	q.From = from
	return q
}

func addWhere(q *sqlir.Query, conj sqlir.LogicalOp, preds ...sqlir.Predicate) {
	q.WhereState = sqlir.ClausePresent
	q.Where = sqlir.Where{Conj: conj, ConjSet: true, CountSet: true, Preds: preds}
}

func pred(c sqlir.ColumnRef, op sqlir.Op, v sqlir.Value) sqlir.Predicate {
	return sqlir.Predicate{Col: c, ColSet: true, Op: op, OpSet: true, Val: v, ValSet: true}
}

func addGroupBy(q *sqlir.Query, cols ...sqlir.ColumnRef) {
	q.GroupByState = sqlir.ClausePresent
	q.GroupBy = cols
	q.HavingState = sqlir.ClauseAbsent
}

func addHaving(q *sqlir.Query, agg sqlir.AggFunc, col sqlir.ColumnRef, op sqlir.Op, v sqlir.Value) {
	q.HavingState = sqlir.ClausePresent
	q.Having = sqlir.HavingExpr{
		Agg: agg, AggSet: true, Col: col, ColSet: true,
		Op: op, OpSet: true, Val: v, ValSet: true,
	}
}

func addOrder(q *sqlir.Query, agg sqlir.AggFunc, col sqlir.ColumnRef, desc bool, limit int) {
	q.OrderByState = sqlir.ClausePresent
	q.OrderBy = sqlir.OrderBy{
		Key:    sqlir.OrderKey{Agg: agg, Col: col},
		KeySet: true, Desc: desc, DirSet: true,
	}
	q.Limit = limit
}

// --- easy templates --------------------------------------------------------

func (g *taskGen) easyTasks() {
	for _, ts := range g.b.spec.tables {
		table := ts.name
		tcols := g.textCols(table)
		ncols := g.numCols(table)

		// E1: single projection.
		for _, c := range tcols {
			nlq := g.pick(
				fmt.Sprintf("List the %s of all %s.", g.phrase(c), g.plural(table)),
				fmt.Sprintf("Show every %s's %s.", g.entity(table), g.phrase(c)),
				fmt.Sprintf("What are the %ss of the %s?", g.phrase(c), g.plural(table)),
			)
			g.keep(baseQuery(singleTable(table), selectItem(c, sqlir.AggNone)), nlq, nil)
		}

		// E2: two projections.
		if len(tcols) >= 1 && len(ncols) >= 1 {
			c1, c2 := tcols[0], ncols[g.r.Intn(len(ncols))]
			nlq := g.pick(
				fmt.Sprintf("List the %s and %s of each %s.", g.phrase(c1), g.phrase(c2), g.entity(table)),
				fmt.Sprintf("Show %s together with their %s.", g.plural(table), g.phrase(c2)),
			)
			g.keep(baseQuery(singleTable(table),
				selectItem(c1, sqlir.AggNone), selectItem(c2, sqlir.AggNone)), nlq, nil)
		}

		// E4: count.
		nlq := g.pick(
			fmt.Sprintf("How many %s are there?", g.plural(table)),
			fmt.Sprintf("Count the number of %s.", g.plural(table)),
			fmt.Sprintf("What is the total number of %s?", g.plural(table)),
		)
		g.keep(baseQuery(singleTable(table),
			selectItem(sqlir.Star, sqlir.AggCount)), nlq, nil)

		// E5: aggregate over a numeric column.
		for _, c := range ncols {
			for _, agg := range []sqlir.AggFunc{sqlir.AggMax, sqlir.AggMin, sqlir.AggAvg} {
				var word string
				switch agg {
				case sqlir.AggMax:
					word = g.pick("maximum", "highest", "largest")
				case sqlir.AggMin:
					word = g.pick("minimum", "lowest", "smallest")
				case sqlir.AggAvg:
					word = g.pick("average", "mean")
				}
				nlq := fmt.Sprintf("What is the %s %s of the %s?", word, g.phrase(c), g.plural(table))
				g.keep(baseQuery(singleTable(table), selectItem(c, agg)), nlq, nil)
			}
		}

		// E6: order by. Half the NLQs leave the sort direction implicit —
		// the §2 ambiguity that the TSQ's ordered tuples resolve.
		if len(tcols) >= 1 && len(ncols) >= 1 {
			c1 := tcols[0]
			c2 := ncols[g.r.Intn(len(ncols))]
			desc := g.r.Intn(2) == 0
			var nlq string
			if g.r.Intn(2) == 0 {
				nlq = g.pick(
					fmt.Sprintf("List the %s of %s sorted by %s.", g.phrase(c1), g.plural(table), g.phrase(c2)),
					fmt.Sprintf("Show %s by %s.", g.plural(table), g.phrase(c2)),
				)
			} else {
				dirWords := "from lowest to highest"
				if desc {
					dirWords = g.pick("from highest to lowest", "in descending order", "from most to least")
				} else {
					dirWords = g.pick("from lowest to highest", "in ascending order", dirWords)
				}
				nlq = fmt.Sprintf("List the %s of %s ordered by %s %s.",
					g.phrase(c1), g.plural(table), g.phrase(c2), dirWords)
			}
			q := baseQuery(singleTable(table), selectItem(c1, sqlir.AggNone))
			addOrder(q, sqlir.AggNone, c2, desc, 0)
			g.keep(q, nlq, nil)
		}

		// E7: top-k.
		if len(tcols) >= 1 && len(ncols) >= 1 {
			c1 := tcols[0]
			c2 := ncols[len(ncols)-1]
			k := 1 + g.r.Intn(5)
			nlq := g.pick(
				fmt.Sprintf("Show the top %d %s by %s.", k, g.plural(table), g.phrase(c2)),
				fmt.Sprintf("List the %d %s with the highest %s.", k, g.plural(table), g.phrase(c2)),
			)
			q := baseQuery(singleTable(table), selectItem(c1, sqlir.AggNone))
			addOrder(q, sqlir.AggNone, c2, true, k)
			g.keep(q, nlq, []sqlir.Value{num(float64(k))})
		}
	}

	// E3: project-join along each FK.
	for _, fk := range g.b.spec.fks {
		aCols := g.textCols(fk.table)
		bCols := g.textCols(fk.refTable)
		if len(aCols) == 0 || len(bCols) == 0 {
			continue
		}
		c1, c2 := aCols[0], bCols[0]
		nlq := g.pick(
			fmt.Sprintf("For each %s, show its %s and the %s of its %s.",
				g.entity(fk.table), g.phrase(c1), g.phrase(c2), g.entity(fk.refTable)),
			fmt.Sprintf("List %s %ss together with their %s %ss.",
				g.entity(fk.table), g.phrase(c1), g.entity(fk.refTable), g.phrase(c2)),
		)
		g.keep(baseQuery(g.joinVia(fk),
			selectItem(c1, sqlir.AggNone), selectItem(c2, sqlir.AggNone)), nlq, nil)
	}
}

// --- medium templates -------------------------------------------------------

func (g *taskGen) mediumTasks() {
	for _, ts := range g.b.spec.tables {
		table := ts.name
		tcols := g.textCols(table)
		ncols := g.numCols(table)

		// M1: text equality filter (projection differs from filter column).
		if len(tcols) >= 2 {
			for i := 0; i < 2; i++ {
				proj, filt := tcols[0], tcols[1]
				if i == 1 {
					proj, filt = tcols[1], tcols[0]
				}
				v, ok := g.sampleValue(filt)
				if !ok {
					continue
				}
				nlq := g.pick(
					fmt.Sprintf("List the %s of %s whose %s is %s.", g.phrase(proj), g.plural(table), g.phrase(filt), v.Display()),
					fmt.Sprintf("Show %s with %s %s.", g.plural(table), g.phrase(filt), v.Display()),
					fmt.Sprintf("Which %s have %s %s?", g.plural(table), g.phrase(filt), v.Display()),
					// Vague variants drop the column name entirely.
					fmt.Sprintf("Show the %s %s.", v.Display(), g.plural(table)),
					fmt.Sprintf("List %s from %s.", g.plural(table), v.Display()),
				)
				q := baseQuery(singleTable(table), selectItem(proj, sqlir.AggNone))
				addWhere(q, sqlir.LogicAnd, pred(filt, sqlir.OpEq, v))
				g.keep(q, nlq, []sqlir.Value{v})
			}
		}

		// M2: numeric comparison filter, both directions.
		if len(tcols) >= 1 && len(ncols) >= 1 {
			proj := tcols[0]
			for _, filt := range ncols {
				st, err := g.b.db.Stats(filt)
				if err != nil || st.NonNull == 0 || st.Min.Num == st.Max.Num {
					continue
				}
				mid := (st.Min.Num + st.Max.Num) / 2
				v := num(float64(int(mid)))
				for _, op := range []sqlir.Op{sqlir.OpGt, sqlir.OpLt} {
					opWord := g.pick("more than", "greater than", "over", "above")
					if op == sqlir.OpLt {
						opWord = g.pick("less than", "under", "below", "fewer than")
					}
					var nlq string
					if g.r.Intn(3) == 0 {
						// Vague: no column name ("movies before 1995").
						bare := "over"
						if op == sqlir.OpLt {
							bare = g.pick("under", "before", "below")
						} else {
							bare = g.pick("over", "after", "above")
						}
						nlq = fmt.Sprintf("List the %s of %s %s %s.",
							g.phrase(proj), g.plural(table), bare, v.Display())
					} else {
						nlq = fmt.Sprintf("List the %s of %s with %s %s %s.",
							g.phrase(proj), g.plural(table), g.phrase(filt), opWord, v.Display())
					}
					q := baseQuery(singleTable(table), selectItem(proj, sqlir.AggNone))
					addWhere(q, sqlir.LogicAnd, pred(filt, op, v))
					g.keep(q, nlq, []sqlir.Value{v})
				}
			}
		}

		// M2b: numeric projection with text equality filter.
		if len(tcols) >= 1 && len(ncols) >= 1 {
			filt := tcols[0]
			for _, proj := range ncols {
				v, ok := g.sampleValue(filt)
				if !ok {
					continue
				}
				nlq := g.pick(
					fmt.Sprintf("What is the %s of the %s with %s %s?",
						g.phrase(proj), g.entity(table), g.phrase(filt), v.Display()),
					fmt.Sprintf("Show the %s of %s whose %s is %s.",
						g.phrase(proj), g.plural(table), g.phrase(filt), v.Display()),
				)
				q := baseQuery(singleTable(table), selectItem(proj, sqlir.AggNone))
				addWhere(q, sqlir.LogicAnd, pred(filt, sqlir.OpEq, v))
				g.keep(q, nlq, []sqlir.Value{v})
			}
		}

		// M4: two numeric predicates, AND range or OR extremes.
		if len(tcols) >= 1 && len(ncols) >= 1 {
			proj := tcols[0]
			filt := ncols[0]
			st, err := g.b.db.Stats(filt)
			if err == nil && st.NonNull > 0 && st.Max.Num-st.Min.Num >= 4 {
				span := st.Max.Num - st.Min.Num
				lo := num(float64(int(st.Min.Num + span/4)))
				hi := num(float64(int(st.Max.Num - span/4)))
				if g.r.Intn(2) == 0 {
					nlq := fmt.Sprintf("List the %s of %s with %s between %s and %s.",
						g.phrase(proj), g.plural(table), g.phrase(filt), lo.Display(), hi.Display())
					q := baseQuery(singleTable(table), selectItem(proj, sqlir.AggNone))
					addWhere(q, sqlir.LogicAnd,
						pred(filt, sqlir.OpGe, lo), pred(filt, sqlir.OpLe, hi))
					g.keep(q, nlq, []sqlir.Value{lo, hi})
				} else {
					nlq := fmt.Sprintf("Show the %s of %s with %s below %s, and those above %s.",
						g.phrase(proj), g.plural(table), g.phrase(filt), lo.Display(), hi.Display())
					q := baseQuery(singleTable(table), selectItem(proj, sqlir.AggNone))
					addWhere(q, sqlir.LogicOr,
						pred(filt, sqlir.OpLt, lo), pred(filt, sqlir.OpGt, hi))
					g.keep(q, nlq, []sqlir.Value{lo, hi})
				}
			}
		}

		// M5: count with filter.
		if len(ncols) >= 1 {
			filt := ncols[0]
			st, err := g.b.db.Stats(filt)
			if err == nil && st.NonNull > 0 && st.Min.Num != st.Max.Num {
				v := num(float64(int((st.Min.Num + st.Max.Num) / 2)))
				nlq := g.pick(
					fmt.Sprintf("How many %s have %s greater than %s?", g.plural(table), g.phrase(filt), v.Display()),
					fmt.Sprintf("Count the %s whose %s is more than %s.", g.plural(table), g.phrase(filt), v.Display()),
				)
				q := baseQuery(singleTable(table), selectItem(sqlir.Star, sqlir.AggCount))
				addWhere(q, sqlir.LogicAnd, pred(filt, sqlir.OpGt, v))
				g.keep(q, nlq, []sqlir.Value{v})
			}
		}

		// M6: filter + order.
		if len(tcols) >= 2 && len(ncols) >= 1 {
			proj, filt := tcols[0], tcols[1]
			key := ncols[0]
			v, ok := g.sampleValue(filt)
			if ok {
				nlq := fmt.Sprintf("List the %s of %s with %s %s, ordered by %s %s.",
					g.phrase(proj), g.plural(table), g.phrase(filt), v.Display(),
					g.phrase(key), g.pick("from highest to lowest", "descending"))
				q := baseQuery(singleTable(table), selectItem(proj, sqlir.AggNone))
				addWhere(q, sqlir.LogicAnd, pred(filt, sqlir.OpEq, v))
				addOrder(q, sqlir.AggNone, key, true, 0)
				g.keep(q, nlq, []sqlir.Value{v})
			}
		}
	}

	// M3: join + filter on the referenced table. Projections fall back to a
	// numeric column when the referencing table has no text attributes
	// (bridge tables).
	for _, fk := range g.b.spec.fks {
		aTexts := g.textCols(fk.table)
		aNums := g.numCols(fk.table)
		bCols := g.textCols(fk.refTable)
		if len(bCols) == 0 {
			continue
		}
		var proj sqlir.ColumnRef
		switch {
		case len(aTexts) > 0:
			proj = aTexts[0]
		case len(aNums) > 0:
			proj = aNums[0]
		default:
			continue
		}
		filt := bCols[g.r.Intn(len(bCols))]
		v, ok := g.sampleValue(filt)
		if !ok {
			continue
		}
		nlq := g.pick(
			fmt.Sprintf("List the %s of %s whose %s has %s %s.",
				g.phrase(proj), g.plural(fk.table), g.entity(fk.refTable), g.phrase(filt), v.Display()),
			fmt.Sprintf("Show the %s of %s in the %s with %s %s.",
				g.phrase(proj), g.plural(fk.table), g.entity(fk.refTable), g.phrase(filt), v.Display()),
		)
		q := baseQuery(g.joinVia(fk), selectItem(proj, sqlir.AggNone))
		addWhere(q, sqlir.LogicAnd, pred(filt, sqlir.OpEq, v))
		g.keep(q, nlq, []sqlir.Value{v})

		// Reverse direction: project the referenced entity filtered by the
		// referencing side (text equality or numeric comparison).
		proj2 := bCols[0]
		if len(aTexts) > 0 {
			filt2 := aTexts[g.r.Intn(len(aTexts))]
			v2, ok := g.sampleValue(filt2)
			if ok {
				nlq := fmt.Sprintf("Show the %s of %s that have a %s with %s %s.",
					g.phrase(proj2), g.plural(fk.refTable), g.entity(fk.table), g.phrase(filt2), v2.Display())
				q := baseQuery(g.joinVia(fk), selectItem(proj2, sqlir.AggNone))
				addWhere(q, sqlir.LogicAnd, pred(filt2, sqlir.OpEq, v2))
				g.keep(q, nlq, []sqlir.Value{v2})
			}
		}
		if len(aNums) > 0 {
			filt2 := aNums[0]
			st, err := g.b.db.Stats(filt2)
			if err == nil && st.NonNull > 0 && st.Min.Num != st.Max.Num {
				v2 := num(float64(int((st.Min.Num + st.Max.Num) / 2)))
				nlq := fmt.Sprintf("Show the %s of %s that have a %s with %s above %s.",
					g.phrase(proj2), g.plural(fk.refTable), g.entity(fk.table), g.phrase(filt2), v2.Display())
				q := baseQuery(g.joinVia(fk), selectItem(proj2, sqlir.AggNone))
				addWhere(q, sqlir.LogicAnd, pred(filt2, sqlir.OpGt, v2))
				g.keep(q, nlq, []sqlir.Value{v2})
			}
		}
	}
}

// --- hard templates ----------------------------------------------------------

func (g *taskGen) hardTasks() {
	for _, fk := range g.b.spec.fks {
		bCols := g.textCols(fk.refTable)
		if len(bCols) == 0 {
			continue
		}
		groupCol := bCols[0]
		jp := g.joinVia(fk)

		// H1: count per group.
		nlq := g.pick(
			fmt.Sprintf("For each %s, show its %s and the number of %s.",
				g.entity(fk.refTable), g.phrase(groupCol), g.plural(fk.table)),
			fmt.Sprintf("List %s %ss and how many %s each has.",
				g.entity(fk.refTable), g.phrase(groupCol), g.plural(fk.table)),
		)
		q := baseQuery(jp, selectItem(groupCol, sqlir.AggNone), selectItem(sqlir.Star, sqlir.AggCount))
		addGroupBy(q, groupCol)
		g.keep(q, nlq, nil)

		// H2: with HAVING threshold k chosen from the count distribution.
		if k, ok := g.havingThreshold(jp, groupCol); ok {
			nlq := g.pick(
				fmt.Sprintf("List the %ss of %s with more than %d %s and the count for each.",
					g.phrase(groupCol), g.plural(fk.refTable), k, g.plural(fk.table)),
				fmt.Sprintf("Which %s have more than %d %s? Show the count for each.",
					g.plural(fk.refTable), k, g.plural(fk.table)),
			)
			q := baseQuery(jp, selectItem(groupCol, sqlir.AggNone), selectItem(sqlir.Star, sqlir.AggCount))
			addGroupBy(q, groupCol)
			addHaving(q, sqlir.AggCount, sqlir.Star, sqlir.OpGt, num(float64(k)))
			g.keep(q, nlq, []sqlir.Value{num(float64(k))})
		}

		// H3: ordered by count.
		nlq = fmt.Sprintf("List %s %ss and the number of %s, ordered from most to least %s.",
			g.entity(fk.refTable), g.phrase(groupCol), g.plural(fk.table), g.plural(fk.table))
		q = baseQuery(jp, selectItem(groupCol, sqlir.AggNone), selectItem(sqlir.Star, sqlir.AggCount))
		addGroupBy(q, groupCol)
		addOrder(q, sqlir.AggCount, sqlir.Star, true, 0)
		g.keep(q, nlq, nil)

		// H4: max of a numeric column per group.
		aNums := g.numCols(fk.table)
		if len(aNums) > 0 {
			c := aNums[0]
			nlq := fmt.Sprintf("For each %s, show its %s and the highest %s among its %s.",
				g.entity(fk.refTable), g.phrase(groupCol), g.phrase(c), g.plural(fk.table))
			q := baseQuery(jp, selectItem(groupCol, sqlir.AggNone), selectItem(c, sqlir.AggMax))
			addGroupBy(q, groupCol)
			g.keep(q, nlq, nil)
		}

		// H5: grouped count with a selection predicate on the child table.
		aTexts := g.textCols(fk.table)
		if len(aTexts) > 0 {
			filt := aTexts[0]
			v, ok := g.sampleValue(filt)
			if ok {
				nlq := fmt.Sprintf("For each %s %s, count the %s with %s %s.",
					g.entity(fk.refTable), g.phrase(groupCol), g.plural(fk.table), g.phrase(filt), v.Display())
				q := baseQuery(jp, selectItem(groupCol, sqlir.AggNone), selectItem(sqlir.Star, sqlir.AggCount))
				addWhere(q, sqlir.LogicAnd, pred(filt, sqlir.OpEq, v))
				addGroupBy(q, groupCol)
				g.keep(q, nlq, []sqlir.Value{v})
			}
		}
	}
}

// singleTableHardTasks adds grouping tasks that need no join: counts per
// categorical column, with and without HAVING.
func (g *taskGen) singleTableHardTasks() {
	for _, ts := range g.b.spec.tables {
		table := ts.name
		for _, groupCol := range g.textCols(table) {
			st, err := g.b.db.Stats(groupCol)
			if err != nil || st.Distinct < 2 {
				continue
			}
			jp := singleTable(table)
			nlq := g.pick(
				fmt.Sprintf("For each %s, count the %s.", g.phrase(groupCol), g.plural(table)),
				fmt.Sprintf("How many %s are there for each %s?", g.plural(table), g.phrase(groupCol)),
			)
			q := baseQuery(jp, selectItem(groupCol, sqlir.AggNone), selectItem(sqlir.Star, sqlir.AggCount))
			addGroupBy(q, groupCol)
			g.keep(q, nlq, nil)

			if k, ok := g.havingThreshold(jp, groupCol); ok {
				nlq := fmt.Sprintf("List the %ss that appear in more than %d %s, with their counts.",
					g.phrase(groupCol), k, g.plural(table))
				q := baseQuery(jp, selectItem(groupCol, sqlir.AggNone), selectItem(sqlir.Star, sqlir.AggCount))
				addGroupBy(q, groupCol)
				addHaving(q, sqlir.AggCount, sqlir.Star, sqlir.OpGt, num(float64(k)))
				g.keep(q, nlq, []sqlir.Value{num(float64(k))})
			}

			// Grouped max of a numeric column.
			for _, c := range g.numCols(table) {
				nlq := fmt.Sprintf("For each %s, what is the highest %s among the %s?",
					g.phrase(groupCol), g.phrase(c), g.plural(table))
				q := baseQuery(jp, selectItem(groupCol, sqlir.AggNone), selectItem(c, sqlir.AggMax))
				addGroupBy(q, groupCol)
				g.keep(q, nlq, nil)
				break // one numeric column suffices per group column
			}
		}
	}
}

// havingThreshold picks a HAVING cutoff that keeps some but not all groups.
func (g *taskGen) havingThreshold(jp *sqlir.JoinPath, groupCol sqlir.ColumnRef) (int, bool) {
	q := baseQuery(jp, selectItem(groupCol, sqlir.AggNone), selectItem(sqlir.Star, sqlir.AggCount))
	addGroupBy(q, groupCol)
	res, err := sqlexec.Execute(g.b.db, q)
	if err != nil || len(res.Rows) < 2 {
		return 0, false
	}
	min, max := res.Rows[0][1].Num, res.Rows[0][1].Num
	for _, row := range res.Rows {
		c := row[1].Num
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max <= min {
		return 0, false
	}
	k := int((min + max) / 2)
	if k < 1 {
		k = 1
	}
	return k, true
}
