package dataset

import (
	"fmt"
	"math/rand"

	"github.com/duoquest/duoquest/internal/sqlexec"
	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/tsq"
)

// DetailLevel is the amount of TSQ specification detail (§5.4.4).
type DetailLevel uint8

const (
	// DetailFull: type annotations, two example tuples randomly selected
	// from the gold result, and τ/k from the gold query (§5.4.1).
	DetailFull DetailLevel = iota
	// DetailPartial: the Full TSQ with all values of one randomly-selected
	// column erased (only for tasks with at least 2 projected columns).
	DetailPartial
	// DetailMinimal: type annotations only.
	DetailMinimal
)

// String names the level.
func (d DetailLevel) String() string {
	switch d {
	case DetailFull:
		return "Full"
	case DetailPartial:
		return "Partial"
	default:
		return "Minimal"
	}
}

// SynthesizeTSQ builds the simulation study's TSQ for a task at the given
// detail level, seeded for reproducibility. The gold query must produce a
// non-empty result (tasks with empty results were removed, §5.4.1).
func SynthesizeTSQ(task *Task, level DetailLevel, seed int64) (*tsq.TSQ, error) {
	res, err := task.GoldResult()
	if err != nil {
		return nil, err
	}
	if len(res.Rows) == 0 {
		return nil, fmt.Errorf("dataset: task %s: gold result is empty", task.ID)
	}
	sk := &tsq.TSQ{
		Types:  append([]sqlir.Type{}, res.Types...),
		Sorted: task.Gold.OrderByState == sqlir.ClausePresent,
		Limit:  task.Gold.Limit,
	}
	if level == DetailMinimal {
		return sk, nil
	}

	r := rand.New(rand.NewSource(seed))
	// Two example tuples randomly selected from the result set. When the
	// TSQ is sorted the tuples must respect the result order (Def. 2.4).
	idxs := pickRows(r, len(res.Rows), 2)
	for _, i := range idxs {
		var tp tsq.Tuple
		for _, v := range res.Rows[i] {
			if v.IsNull() {
				tp = append(tp, tsq.Empty())
			} else {
				tp = append(tp, tsq.Exact(v))
			}
		}
		sk.Tuples = append(sk.Tuples, tp)
	}

	if level == DetailPartial && len(res.Types) >= 2 {
		erase := r.Intn(len(res.Types))
		for ti := range sk.Tuples {
			sk.Tuples[ti][erase] = tsq.Empty()
		}
	}
	return sk, nil
}

// pickRows selects up to n distinct row indexes in ascending order (so
// sorted TSQs respect the result order).
func pickRows(r *rand.Rand, total, n int) []int {
	if total <= n {
		out := make([]int, total)
		for i := range out {
			out[i] = i
		}
		return out
	}
	seen := map[int]bool{}
	for len(seen) < n {
		seen[r.Intn(total)] = true
	}
	out := make([]int, 0, n)
	for i := 0; i < total; i++ {
		if seen[i] {
			out = append(out, i)
		}
	}
	return out
}

// Fact is one entry of a user-study fact bank (§5.1.5): domain knowledge
// expressed as a partial example tuple, possibly with a numeric range
// instead of an exact value.
type Fact struct {
	Tuple tsq.Tuple
}

// FactBank builds the 10-fact bank for a task: rows drawn from the gold
// result, some numeric cells widened into ranges, mimicking imprecise
// domain knowledge ("Sandra Bullock starred in Gravity sometime between
// 2010 and 2017").
func FactBank(task *Task, seed int64) ([]Fact, error) {
	res, err := task.GoldResult()
	if err != nil {
		return nil, err
	}
	if len(res.Rows) == 0 {
		return nil, fmt.Errorf("dataset: task %s: empty gold result", task.ID)
	}
	r := rand.New(rand.NewSource(seed))
	var facts []Fact
	idxs := pickRows(r, len(res.Rows), 10)
	for _, i := range idxs {
		var tp tsq.Tuple
		for _, v := range res.Rows[i] {
			switch {
			case v.IsNull():
				tp = append(tp, tsq.Empty())
			case v.Kind == sqlir.KindNumber && r.Float64() < 0.4:
				// Imprecise knowledge: a range around the true value.
				span := 1 + float64(r.Intn(5))
				tp = append(tp, tsq.Range(v.Num-span, v.Num+span))
			default:
				tp = append(tp, tsq.Exact(v))
			}
		}
		facts = append(facts, Fact{Tuple: tp})
	}
	// Shuffle presentation order (the study presented facts shuffled).
	r.Shuffle(len(facts), func(i, j int) { facts[i], facts[j] = facts[j], facts[i] })
	return facts, nil
}

// VerifyAgainstFacts reports how many facts appear in a result preview —
// the simulated user's sanity check on a candidate query.
func VerifyAgainstFacts(res *sqlexec.Result, facts []Fact) int {
	n := 0
	for _, f := range facts {
		sk := tsq.TSQ{Tuples: []tsq.Tuple{f.Tuple}}
		if sk.Satisfies(res) {
			n++
		}
	}
	return n
}
