package dataset

import (
	"fmt"
	"math/rand"

	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/storage"
)

// builtDB is a generated database plus the NL metadata the task templates
// need.
type builtDB struct {
	db     *storage.Database
	spec   domainSpec
	phrase map[sqlir.ColumnRef]string
	entity map[string]string // table -> singular noun
	plural map[string]string // table -> plural noun
}

// buildDomain instantiates one domain spec into a populated database. The
// seed controls row counts and all generated values, so the same domain
// yields different databases across the dev and test sets.
func buildDomain(spec domainSpec, variant int, seed int64) *builtDB {
	r := rand.New(rand.NewSource(seed))
	b := &builtDB{
		spec:   spec,
		phrase: map[sqlir.ColumnRef]string{},
		entity: map[string]string{},
		plural: map[string]string{},
	}

	var tables []*storage.Table
	rows := map[string]int{}
	for _, ts := range spec.tables {
		cols := make([]storage.Column, len(ts.cols))
		for i, c := range ts.cols {
			cols[i] = storage.Column{Name: c.name, Type: c.typ}
			b.phrase[sqlir.ColumnRef{Table: ts.name, Column: c.name}] = c.phrase
		}
		tables = append(tables, storage.NewTable(ts.name, ts.pk, cols...))
		rows[ts.name] = ts.minRows + r.Intn(ts.maxRows-ts.minRows+1)
		b.entity[ts.name] = ts.entity
		b.plural[ts.name] = ts.entities
	}
	schema := storage.NewSchema(tables...)
	for _, fk := range spec.fks {
		schema.AddForeignKey(fk.table, fk.col, fk.refTable, fk.refCol)
	}
	if err := schema.Validate(); err != nil {
		panic(fmt.Sprintf("dataset: domain %s: %v", spec.name, err))
	}

	// fkFor finds the FK target for a column, if any.
	fkFor := func(table, col string) (string, bool) {
		for _, fk := range spec.fks {
			if fk.table == table && fk.col == col {
				return fk.refTable, true
			}
		}
		return "", false
	}

	// Populate in declaration order (specs list referenced tables first).
	for _, ts := range spec.tables {
		t := schema.Table(ts.name)
		n := rows[ts.name]
		for i := 0; i < n; i++ {
			vals := make([]sqlir.Value, len(ts.cols))
			for ci, c := range ts.cols {
				if ref, ok := fkFor(ts.name, c.name); ok {
					vals[ci] = num(float64(1 + r.Intn(rows[ref])))
					continue
				}
				if c.gen == nil {
					panic(fmt.Sprintf("dataset: %s.%s has no generator and no FK", ts.name, c.name))
				}
				vals[ci] = c.gen(r, i)
			}
			t.MustInsert(vals...)
		}
	}

	name := fmt.Sprintf("%s_%d", spec.name, variant)
	b.db = storage.NewDatabase(name, schema)
	return b
}
