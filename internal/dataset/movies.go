package dataset

import (
	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/storage"
)

// Movies builds the paper's §2 motivating-example database (actors, movies,
// starring): the tiny demo target behind `cmd/duoquest -db movies`, small
// enough that any synthesis completes in milliseconds.
func Movies() *storage.Database {
	actor := storage.NewTable("actor", "aid",
		storage.Column{Name: "aid", Type: sqlir.TypeNumber},
		storage.Column{Name: "name", Type: sqlir.TypeText},
		storage.Column{Name: "gender", Type: sqlir.TypeText},
		storage.Column{Name: "birth_yr", Type: sqlir.TypeNumber},
	)
	movie := storage.NewTable("movie", "mid",
		storage.Column{Name: "mid", Type: sqlir.TypeNumber},
		storage.Column{Name: "title", Type: sqlir.TypeText},
		storage.Column{Name: "year", Type: sqlir.TypeNumber},
	)
	starring := storage.NewTable("starring", "sid",
		storage.Column{Name: "sid", Type: sqlir.TypeNumber},
		storage.Column{Name: "aid", Type: sqlir.TypeNumber},
		storage.Column{Name: "mid", Type: sqlir.TypeNumber},
	)
	schema := storage.NewSchema(actor, movie, starring)
	schema.AddForeignKey("starring", "aid", "actor", "aid")
	schema.AddForeignKey("starring", "mid", "movie", "mid")

	actors := []struct {
		name, gender string
		birth        float64
	}{
		{"Tom Hanks", "male", 1956},
		{"Sandra Bullock", "female", 1964},
		{"Brad Pitt", "male", 1963},
		{"Meryl Streep", "female", 1949},
	}
	for i, x := range actors {
		actor.MustInsert(num(float64(i+1)), text(x.name), text(x.gender), num(x.birth))
	}
	movies := []struct {
		title string
		year  float64
	}{
		{"Forrest Gump", 1994},
		{"Gravity", 2013},
		{"Fight Club", 1999},
		{"Cast Away", 2000},
		{"The Post", 2017},
	}
	for i, x := range movies {
		movie.MustInsert(num(float64(i+1)), text(x.title), num(x.year))
	}
	for i, l := range [][2]float64{{1, 1}, {2, 2}, {3, 3}, {1, 4}, {4, 5}} {
		starring.MustInsert(num(float64(i+1)), num(l[0]), num(l[1]))
	}
	return storage.NewDatabase("movies", schema)
}
