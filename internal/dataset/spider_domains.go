package dataset

import (
	"fmt"
	"math/rand"

	"github.com/duoquest/duoquest/internal/sqlir"
)

// The Spider-like generator builds cross-domain databases from declarative
// domain specs: tables, typed columns with value generators, FK-PK edges,
// and a natural-language phrase for every column (used by the NLQ
// templates). Each database instance is seeded, so dev and test sets get
// distinct data and literals from the same domain shapes.

// valueGen produces the i-th row's value for a column.
type valueGen func(r *rand.Rand, i int) sqlir.Value

// colSpec declares a column.
type colSpec struct {
	name   string
	typ    sqlir.Type
	phrase string // NL phrase ("release year")
	gen    valueGen
}

// tableSpec declares a table. rows may vary by variant via the seeded rand.
type tableSpec struct {
	name     string
	entity   string // singular noun ("movie")
	entities string // plural noun ("movies")
	pk       string
	cols     []colSpec
	minRows  int
	maxRows  int
}

// fkSpec declares a foreign key.
type fkSpec struct{ table, col, refTable, refCol string }

// domainSpec declares a domain.
type domainSpec struct {
	name   string
	tables []tableSpec
	fks    []fkSpec
}

// --- generic value generators -------------------------------------------

func seq() valueGen {
	return func(_ *rand.Rand, i int) sqlir.Value { return num(float64(i + 1)) }
}

func fromList(items []string) valueGen {
	return func(r *rand.Rand, i int) sqlir.Value {
		if i < len(items) {
			return text(items[i])
		}
		return text(fmt.Sprintf("%s %d", items[r.Intn(len(items))], i+1))
	}
}

func composite(first, second []string) valueGen {
	return func(r *rand.Rand, i int) sqlir.Value {
		return text(first[r.Intn(len(first))] + " " + second[r.Intn(len(second))])
	}
}

func intRange(lo, hi int) valueGen {
	return func(r *rand.Rand, _ int) sqlir.Value {
		return num(float64(lo + r.Intn(hi-lo+1)))
	}
}

func choice(items ...string) valueGen {
	return func(r *rand.Rand, _ int) sqlir.Value {
		return text(items[r.Intn(len(items))])
	}
}

// fk generates a reference into 1..refRows; the builder rebinds refRows.
type fkGen struct{ refTable string }

// --- shared vocabulary ----------------------------------------------------

var peopleFirst = []string{
	"Ava", "Ben", "Clara", "Dan", "Elena", "Felix", "Gina", "Hugo", "Ines",
	"Jon", "Kara", "Leo", "Mia", "Nils", "Oona", "Paul", "Rita", "Sven",
	"Tara", "Ugo", "Vera", "Walt", "Xena", "Yuri", "Zoe",
}

var peopleLast = []string{
	"Adler", "Brooks", "Costa", "Diaz", "Ekman", "Fischer", "Grant", "Haas",
	"Iyer", "Jensen", "Katz", "Lindt", "Moreau", "Nolan", "Ortiz", "Park",
	"Quist", "Roth", "Sato", "Torres",
}

var cityNames = []string{
	"Springfield", "Riverton", "Lakewood", "Fairview", "Georgetown",
	"Ashland", "Milton", "Clayton", "Dover", "Bristol", "Salem", "Oxford",
	"Burlington", "Clinton", "Dayton", "Florence", "Greenville", "Hudson",
	"Jackson", "Kingston",
}

var countryNames = []string{
	"Atlantis", "Borduria", "Carpania", "Drusselstein", "Elbonia",
	"Freedonia", "Genovia", "Krakozhia", "Latveria", "Molvania",
	"Novistrana", "Petoria", "Ruritania", "Sylvania", "Zubrowka",
}

// --- domain specifications ------------------------------------------------

// spiderDomains lists every generated domain. Shapes follow common Spider
// databases: 3–5 tables, FK chains and bridge tables, a mix of text and
// numeric attributes.
var spiderDomains = []domainSpec{
	{
		name: "concert",
		tables: []tableSpec{
			{name: "stadium", entity: "stadium", entities: "stadiums", pk: "stadium_id",
				cols: []colSpec{
					{"stadium_id", sqlir.TypeNumber, "id", seq()},
					{"name", sqlir.TypeText, "name", composite(cityNames, []string{"Arena", "Park", "Dome", "Field"})},
					{"location", sqlir.TypeText, "location", fromList(cityNames)},
					{"capacity", sqlir.TypeNumber, "capacity", intRange(5000, 90000)},
				},
				minRows: 9, maxRows: 15},
			{name: "singer", entity: "singer", entities: "singers", pk: "singer_id",
				cols: []colSpec{
					{"singer_id", sqlir.TypeNumber, "id", seq()},
					{"name", sqlir.TypeText, "name", composite(peopleFirst, peopleLast)},
					{"country", sqlir.TypeText, "country", fromList(countryNames)},
					{"age", sqlir.TypeNumber, "age", intRange(18, 70)},
				},
				minRows: 12, maxRows: 20},
			{name: "concert", entity: "concert", entities: "concerts", pk: "concert_id",
				cols: []colSpec{
					{"concert_id", sqlir.TypeNumber, "id", seq()},
					{"concert_name", sqlir.TypeText, "name", composite([]string{"Summer", "Winter", "Spring", "Harvest", "Midnight"}, []string{"Fest", "Jam", "Night", "Tour", "Gala"})},
					{"theme", sqlir.TypeText, "theme", choice("Rock", "Pop", "Jazz", "Folk", "Classical")},
					{"stadium_id", sqlir.TypeNumber, "stadium", nil},
					{"year", sqlir.TypeNumber, "year", intRange(2005, 2023)},
					{"attendance", sqlir.TypeNumber, "attendance", intRange(1000, 80000)},
				},
				minRows: 25, maxRows: 45},
			{name: "singer_in_concert", entity: "appearance", entities: "appearances", pk: "sic_id",
				cols: []colSpec{
					{"sic_id", sqlir.TypeNumber, "id", seq()},
					{"concert_id", sqlir.TypeNumber, "concert", nil},
					{"singer_id", sqlir.TypeNumber, "singer", nil},
				},
				minRows: 45, maxRows: 80},
		},
		fks: []fkSpec{
			{"concert", "stadium_id", "stadium", "stadium_id"},
			{"singer_in_concert", "concert_id", "concert", "concert_id"},
			{"singer_in_concert", "singer_id", "singer", "singer_id"},
		},
	},
	{
		name: "pets",
		tables: []tableSpec{
			{name: "student", entity: "student", entities: "students", pk: "student_id",
				cols: []colSpec{
					{"student_id", sqlir.TypeNumber, "id", seq()},
					{"name", sqlir.TypeText, "name", composite(peopleFirst, peopleLast)},
					{"major", sqlir.TypeText, "major", choice("History", "Biology", "Physics", "Economics", "Art")},
					{"age", sqlir.TypeNumber, "age", intRange(17, 30)},
					{"city", sqlir.TypeText, "home city", fromList(cityNames)},
				},
				minRows: 18, maxRows: 30},
			{name: "pet", entity: "pet", entities: "pets", pk: "pet_id",
				cols: []colSpec{
					{"pet_id", sqlir.TypeNumber, "id", seq()},
					{"pet_type", sqlir.TypeText, "type", choice("dog", "cat", "bird", "rabbit", "hamster")},
					{"pet_name", sqlir.TypeText, "name", fromList(peopleFirst)},
					{"weight", sqlir.TypeNumber, "weight", intRange(1, 40)},
					{"pet_age", sqlir.TypeNumber, "age", intRange(1, 15)},
				},
				minRows: 15, maxRows: 25},
			{name: "has_pet", entity: "ownership", entities: "ownerships", pk: "hp_id",
				cols: []colSpec{
					{"hp_id", sqlir.TypeNumber, "id", seq()},
					{"student_id", sqlir.TypeNumber, "student", nil},
					{"pet_id", sqlir.TypeNumber, "pet", nil},
				},
				minRows: 20, maxRows: 35},
		},
		fks: []fkSpec{
			{"has_pet", "student_id", "student", "student_id"},
			{"has_pet", "pet_id", "pet", "pet_id"},
		},
	},
	{
		name: "flights",
		tables: []tableSpec{
			{name: "airline", entity: "airline", entities: "airlines", pk: "airline_id",
				cols: []colSpec{
					{"airline_id", sqlir.TypeNumber, "id", seq()},
					{"name", sqlir.TypeText, "name", composite(countryNames, []string{"Air", "Airways", "Jet", "Wings"})},
					{"country", sqlir.TypeText, "country", fromList(countryNames)},
					{"fleet_size", sqlir.TypeNumber, "fleet size", intRange(5, 400)},
				},
				minRows: 8, maxRows: 14},
			{name: "airport", entity: "airport", entities: "airports", pk: "airport_id",
				cols: []colSpec{
					{"airport_id", sqlir.TypeNumber, "id", seq()},
					{"name", sqlir.TypeText, "name", composite(cityNames, []string{"International", "Regional", "Municipal"})},
					{"city", sqlir.TypeText, "city", fromList(cityNames)},
					{"elevation", sqlir.TypeNumber, "elevation", intRange(0, 9000)},
				},
				minRows: 10, maxRows: 18},
			{name: "flight", entity: "flight", entities: "flights", pk: "flight_id",
				cols: []colSpec{
					{"flight_id", sqlir.TypeNumber, "id", seq()},
					{"airline_id", sqlir.TypeNumber, "airline", nil},
					{"src_airport_id", sqlir.TypeNumber, "origin airport", nil},
					{"distance", sqlir.TypeNumber, "distance", intRange(100, 9000)},
					{"price", sqlir.TypeNumber, "price", intRange(50, 2200)},
				},
				minRows: 35, maxRows: 60},
		},
		fks: []fkSpec{
			{"flight", "airline_id", "airline", "airline_id"},
			{"flight", "src_airport_id", "airport", "airport_id"},
		},
	},
	{
		name: "employees",
		tables: []tableSpec{
			{name: "department", entity: "department", entities: "departments", pk: "dept_id",
				cols: []colSpec{
					{"dept_id", sqlir.TypeNumber, "id", seq()},
					{"name", sqlir.TypeText, "name", fromList([]string{"Engineering", "Marketing", "Sales", "Finance", "Support", "Research", "Legal", "Operations"})},
					{"budget", sqlir.TypeNumber, "budget", intRange(100000, 5000000)},
					{"city", sqlir.TypeText, "city", fromList(cityNames)},
				},
				minRows: 6, maxRows: 8},
			{name: "employee", entity: "employee", entities: "employees", pk: "emp_id",
				cols: []colSpec{
					{"emp_id", sqlir.TypeNumber, "id", seq()},
					{"name", sqlir.TypeText, "name", composite(peopleFirst, peopleLast)},
					{"dept_id", sqlir.TypeNumber, "department", nil},
					{"salary", sqlir.TypeNumber, "salary", intRange(30000, 180000)},
					{"hire_year", sqlir.TypeNumber, "hire year", intRange(1995, 2023)},
				},
				minRows: 30, maxRows: 50},
			{name: "project", entity: "project", entities: "projects", pk: "proj_id",
				cols: []colSpec{
					{"proj_id", sqlir.TypeNumber, "id", seq()},
					{"name", sqlir.TypeText, "name", composite([]string{"Project", "Initiative", "Program"}, []string{"Alpha", "Beta", "Gamma", "Delta", "Omega", "Zephyr", "Titan"})},
					{"dept_id", sqlir.TypeNumber, "department", nil},
					{"cost", sqlir.TypeNumber, "cost", intRange(10000, 900000)},
				},
				minRows: 12, maxRows: 22},
		},
		fks: []fkSpec{
			{"employee", "dept_id", "department", "dept_id"},
			{"project", "dept_id", "department", "dept_id"},
		},
	},
	{
		name: "library",
		tables: []tableSpec{
			{name: "writer", entity: "writer", entities: "writers", pk: "writer_id",
				cols: []colSpec{
					{"writer_id", sqlir.TypeNumber, "id", seq()},
					{"name", sqlir.TypeText, "name", composite(peopleFirst, peopleLast)},
					{"country", sqlir.TypeText, "country", fromList(countryNames)},
					{"birth_year", sqlir.TypeNumber, "birth year", intRange(1900, 1995)},
				},
				minRows: 12, maxRows: 20},
			{name: "book", entity: "book", entities: "books", pk: "book_id",
				cols: []colSpec{
					{"book_id", sqlir.TypeNumber, "id", seq()},
					{"title", sqlir.TypeText, "title", composite([]string{"The Silent", "A Distant", "The Last", "Beyond the", "Tales of the"}, []string{"River", "Mountain", "Garden", "Harbor", "Winter", "Mirror"})},
					{"writer_id", sqlir.TypeNumber, "writer", nil},
					{"pub_year", sqlir.TypeNumber, "publication year", intRange(1950, 2023)},
					{"pages", sqlir.TypeNumber, "page count", intRange(80, 900)},
				},
				minRows: 25, maxRows: 45},
			{name: "branch", entity: "branch", entities: "branches", pk: "branch_id",
				cols: []colSpec{
					{"branch_id", sqlir.TypeNumber, "id", seq()},
					{"name", sqlir.TypeText, "name", composite(cityNames, []string{"Central", "North", "South", "East"})},
					{"city", sqlir.TypeText, "city", fromList(cityNames)},
				},
				minRows: 6, maxRows: 10},
			{name: "copy", entity: "copy", entities: "copies", pk: "copy_id",
				cols: []colSpec{
					{"copy_id", sqlir.TypeNumber, "id", seq()},
					{"book_id", sqlir.TypeNumber, "book", nil},
					{"branch_id", sqlir.TypeNumber, "branch", nil},
				},
				minRows: 40, maxRows: 70},
		},
		fks: []fkSpec{
			{"book", "writer_id", "writer", "writer_id"},
			{"copy", "book_id", "book", "book_id"},
			{"copy", "branch_id", "branch", "branch_id"},
		},
	},
	{
		name: "courses",
		tables: []tableSpec{
			{name: "teacher", entity: "teacher", entities: "teachers", pk: "teacher_id",
				cols: []colSpec{
					{"teacher_id", sqlir.TypeNumber, "id", seq()},
					{"name", sqlir.TypeText, "name", composite(peopleFirst, peopleLast)},
					{"department", sqlir.TypeText, "department", choice("Mathematics", "Science", "Literature", "History", "Music")},
					{"years_teaching", sqlir.TypeNumber, "years of experience", intRange(1, 40)},
				},
				minRows: 10, maxRows: 16},
			{name: "course", entity: "course", entities: "courses", pk: "course_id",
				cols: []colSpec{
					{"course_id", sqlir.TypeNumber, "id", seq()},
					{"title", sqlir.TypeText, "title", composite([]string{"Intro to", "Advanced", "Applied", "Foundations of"}, []string{"Algebra", "Chemistry", "Poetry", "World History", "Harmony", "Statistics"})},
					{"teacher_id", sqlir.TypeNumber, "teacher", nil},
					{"credits", sqlir.TypeNumber, "credits", intRange(1, 6)},
					{"enrollment", sqlir.TypeNumber, "enrollment", intRange(5, 120)},
				},
				minRows: 20, maxRows: 35},
		},
		fks: []fkSpec{
			{"course", "teacher_id", "teacher", "teacher_id"},
		},
	},
	{
		name: "shop",
		tables: []tableSpec{
			{name: "supplier", entity: "supplier", entities: "suppliers", pk: "supplier_id",
				cols: []colSpec{
					{"supplier_id", sqlir.TypeNumber, "id", seq()},
					{"name", sqlir.TypeText, "name", composite(cityNames, []string{"Goods", "Trading", "Supply", "Wholesale"})},
					{"country", sqlir.TypeText, "country", fromList(countryNames)},
				},
				minRows: 8, maxRows: 12},
			{name: "product", entity: "product", entities: "products", pk: "product_id",
				cols: []colSpec{
					{"product_id", sqlir.TypeNumber, "id", seq()},
					{"name", sqlir.TypeText, "name", composite([]string{"Classic", "Deluxe", "Eco", "Ultra", "Mini"}, []string{"Lamp", "Chair", "Desk", "Kettle", "Blanket", "Clock"})},
					{"supplier_id", sqlir.TypeNumber, "supplier", nil},
					{"price", sqlir.TypeNumber, "price", intRange(5, 900)},
					{"stock", sqlir.TypeNumber, "stock", intRange(0, 500)},
				},
				minRows: 25, maxRows: 40},
			{name: "customer", entity: "customer", entities: "customers", pk: "customer_id",
				cols: []colSpec{
					{"customer_id", sqlir.TypeNumber, "id", seq()},
					{"name", sqlir.TypeText, "name", composite(peopleFirst, peopleLast)},
					{"city", sqlir.TypeText, "city", fromList(cityNames)},
				},
				minRows: 15, maxRows: 25},
			{name: "purchase", entity: "purchase", entities: "purchases", pk: "purchase_id",
				cols: []colSpec{
					{"purchase_id", sqlir.TypeNumber, "id", seq()},
					{"customer_id", sqlir.TypeNumber, "customer", nil},
					{"product_id", sqlir.TypeNumber, "product", nil},
					{"quantity", sqlir.TypeNumber, "quantity", intRange(1, 12)},
				},
				minRows: 40, maxRows: 70},
		},
		fks: []fkSpec{
			{"product", "supplier_id", "supplier", "supplier_id"},
			{"purchase", "customer_id", "customer", "customer_id"},
			{"purchase", "product_id", "product", "product_id"},
		},
	},
	{
		name: "hospital",
		tables: []tableSpec{
			{name: "doctor", entity: "doctor", entities: "doctors", pk: "doctor_id",
				cols: []colSpec{
					{"doctor_id", sqlir.TypeNumber, "id", seq()},
					{"name", sqlir.TypeText, "name", composite(peopleFirst, peopleLast)},
					{"specialty", sqlir.TypeText, "specialty", choice("Cardiology", "Neurology", "Pediatrics", "Oncology", "Radiology")},
					{"experience", sqlir.TypeNumber, "years of experience", intRange(1, 40)},
				},
				minRows: 10, maxRows: 16},
			{name: "patient", entity: "patient", entities: "patients", pk: "patient_id",
				cols: []colSpec{
					{"patient_id", sqlir.TypeNumber, "id", seq()},
					{"name", sqlir.TypeText, "name", composite(peopleFirst, peopleLast)},
					{"age", sqlir.TypeNumber, "age", intRange(1, 95)},
					{"city", sqlir.TypeText, "city", fromList(cityNames)},
				},
				minRows: 20, maxRows: 35},
			{name: "appointment", entity: "appointment", entities: "appointments", pk: "appt_id",
				cols: []colSpec{
					{"appt_id", sqlir.TypeNumber, "id", seq()},
					{"doctor_id", sqlir.TypeNumber, "doctor", nil},
					{"patient_id", sqlir.TypeNumber, "patient", nil},
					{"fee", sqlir.TypeNumber, "fee", intRange(40, 600)},
				},
				minRows: 35, maxRows: 60},
		},
		fks: []fkSpec{
			{"appointment", "doctor_id", "doctor", "doctor_id"},
			{"appointment", "patient_id", "patient", "patient_id"},
		},
	},
	{
		name: "racing",
		tables: []tableSpec{
			{name: "team", entity: "team", entities: "teams", pk: "team_id",
				cols: []colSpec{
					{"team_id", sqlir.TypeNumber, "id", seq()},
					{"name", sqlir.TypeText, "name", composite(cityNames, []string{"Racing", "Motors", "Speed", "GP"})},
					{"country", sqlir.TypeText, "country", fromList(countryNames)},
					{"founded", sqlir.TypeNumber, "founding year", intRange(1950, 2015)},
				},
				minRows: 8, maxRows: 12},
			{name: "driver", entity: "driver", entities: "drivers", pk: "driver_id",
				cols: []colSpec{
					{"driver_id", sqlir.TypeNumber, "id", seq()},
					{"name", sqlir.TypeText, "name", composite(peopleFirst, peopleLast)},
					{"team_id", sqlir.TypeNumber, "team", nil},
					{"age", sqlir.TypeNumber, "age", intRange(18, 45)},
					{"wins", sqlir.TypeNumber, "wins", intRange(0, 60)},
				},
				minRows: 16, maxRows: 26},
		},
		fks: []fkSpec{
			{"driver", "team_id", "team", "team_id"},
		},
	},
	{
		name: "hotel",
		tables: []tableSpec{
			{name: "hotel", entity: "hotel", entities: "hotels", pk: "hotel_id",
				cols: []colSpec{
					{"hotel_id", sqlir.TypeNumber, "id", seq()},
					{"name", sqlir.TypeText, "name", composite(cityNames, []string{"Grand", "Plaza", "Inn", "Suites"})},
					{"city", sqlir.TypeText, "city", fromList(cityNames)},
					{"stars", sqlir.TypeNumber, "star rating", intRange(1, 5)},
				},
				minRows: 8, maxRows: 14},
			{name: "guest", entity: "guest", entities: "guests", pk: "guest_id",
				cols: []colSpec{
					{"guest_id", sqlir.TypeNumber, "id", seq()},
					{"name", sqlir.TypeText, "name", composite(peopleFirst, peopleLast)},
					{"country", sqlir.TypeText, "country", fromList(countryNames)},
				},
				minRows: 15, maxRows: 25},
			{name: "booking", entity: "booking", entities: "bookings", pk: "booking_id",
				cols: []colSpec{
					{"booking_id", sqlir.TypeNumber, "id", seq()},
					{"hotel_id", sqlir.TypeNumber, "hotel", nil},
					{"guest_id", sqlir.TypeNumber, "guest", nil},
					{"nights", sqlir.TypeNumber, "number of nights", intRange(1, 21)},
					{"rate", sqlir.TypeNumber, "nightly rate", intRange(40, 900)},
				},
				minRows: 30, maxRows: 55},
		},
		fks: []fkSpec{
			{"booking", "hotel_id", "hotel", "hotel_id"},
			{"booking", "guest_id", "guest", "guest_id"},
		},
	},
	{
		name: "museum",
		tables: []tableSpec{
			{name: "museum", entity: "museum", entities: "museums", pk: "museum_id",
				cols: []colSpec{
					{"museum_id", sqlir.TypeNumber, "id", seq()},
					{"name", sqlir.TypeText, "name", composite(cityNames, []string{"Museum", "Gallery", "Collection"})},
					{"city", sqlir.TypeText, "city", fromList(cityNames)},
					{"founded", sqlir.TypeNumber, "founding year", intRange(1800, 2010)},
				},
				minRows: 7, maxRows: 11},
			{name: "artist", entity: "artist", entities: "artists", pk: "artist_id",
				cols: []colSpec{
					{"artist_id", sqlir.TypeNumber, "id", seq()},
					{"name", sqlir.TypeText, "name", composite(peopleFirst, peopleLast)},
					{"nationality", sqlir.TypeText, "nationality", fromList(countryNames)},
					{"birth_year", sqlir.TypeNumber, "birth year", intRange(1850, 1990)},
				},
				minRows: 12, maxRows: 18},
			{name: "artwork", entity: "artwork", entities: "artworks", pk: "artwork_id",
				cols: []colSpec{
					{"artwork_id", sqlir.TypeNumber, "id", seq()},
					{"title", sqlir.TypeText, "title", composite([]string{"Study of", "Portrait of", "Landscape with", "Composition"}, []string{"Light", "Shadows", "a Garden", "the Sea", "Motion", "Stillness"})},
					{"artist_id", sqlir.TypeNumber, "artist", nil},
					{"museum_id", sqlir.TypeNumber, "museum", nil},
					{"year_created", sqlir.TypeNumber, "creation year", intRange(1880, 2020)},
				},
				minRows: 30, maxRows: 50},
		},
		fks: []fkSpec{
			{"artwork", "artist_id", "artist", "artist_id"},
			{"artwork", "museum_id", "museum", "museum_id"},
		},
	},
	{
		name: "restaurant",
		tables: []tableSpec{
			{name: "chef", entity: "chef", entities: "chefs", pk: "chef_id",
				cols: []colSpec{
					{"chef_id", sqlir.TypeNumber, "id", seq()},
					{"name", sqlir.TypeText, "name", composite(peopleFirst, peopleLast)},
					{"cuisine", sqlir.TypeText, "cuisine", choice("Italian", "Japanese", "Mexican", "French", "Indian")},
					{"rating", sqlir.TypeNumber, "rating", intRange(1, 10)},
				},
				minRows: 10, maxRows: 16},
			{name: "restaurant", entity: "restaurant", entities: "restaurants", pk: "rest_id",
				cols: []colSpec{
					{"rest_id", sqlir.TypeNumber, "id", seq()},
					{"name", sqlir.TypeText, "name", composite([]string{"Casa", "Chez", "The", "Little"}, []string{"Verde", "Amber", "Harbor", "Olive", "Saffron"})},
					{"chef_id", sqlir.TypeNumber, "head chef", nil},
					{"city", sqlir.TypeText, "city", fromList(cityNames)},
					{"seats", sqlir.TypeNumber, "seat count", intRange(15, 200)},
				},
				minRows: 14, maxRows: 24},
			{name: "dish", entity: "dish", entities: "dishes", pk: "dish_id",
				cols: []colSpec{
					{"dish_id", sqlir.TypeNumber, "id", seq()},
					{"name", sqlir.TypeText, "name", composite([]string{"Grilled", "Roasted", "Braised", "Seared"}, []string{"Salmon", "Risotto", "Dumplings", "Lamb", "Tofu"})},
					{"rest_id", sqlir.TypeNumber, "restaurant", nil},
					{"price", sqlir.TypeNumber, "price", intRange(6, 80)},
				},
				minRows: 28, maxRows: 48},
		},
		fks: []fkSpec{
			{"restaurant", "chef_id", "chef", "chef_id"},
			{"dish", "rest_id", "restaurant", "rest_id"},
		},
	},
}
