package dataset

import (
	"fmt"

	"github.com/duoquest/duoquest/internal/sqlexec"
	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/sqlparse"
	"github.com/duoquest/duoquest/internal/storage"
)

// Difficulty follows the Table 5 caption: Easy tasks are project-join
// queries including aggregates, sorting, and limit operators; Medium tasks
// also include selection predicates; Hard tasks include grouping operators.
type Difficulty uint8

const (
	Easy Difficulty = iota
	Medium
	Hard
)

// String names the difficulty.
func (d Difficulty) String() string {
	switch d {
	case Easy:
		return "easy"
	case Medium:
		return "medium"
	default:
		return "hard"
	}
}

// ClassifyDifficulty derives the difficulty of a gold query per the paper's
// definition.
func ClassifyDifficulty(q *sqlir.Query) Difficulty {
	if q.GroupByState == sqlir.ClausePresent {
		return Hard
	}
	if q.WhereState == sqlir.ClausePresent && len(q.Where.Preds) > 0 {
		return Medium
	}
	return Easy
}

// Task is one benchmark task: an NLQ paired with its gold SQL on a database.
type Task struct {
	ID         string
	DB         *storage.Database
	NLQ        string
	SQL        string
	Gold       *sqlir.Query
	Literals   []sqlir.Value
	Difficulty Difficulty
}

// GoldResult executes the gold query.
func (t *Task) GoldResult() (*sqlexec.Result, error) {
	return sqlexec.Execute(t.DB, t.Gold)
}

// NewTask parses sql against the database schema and builds a task with its
// difficulty classified from the gold query. Task generators (the MAS task
// table, loadgen's synthetic workloads) all funnel through here so gold
// queries are always parsed and classified the same way.
func NewTask(id string, db *storage.Database, nlq, sql string, lits []sqlir.Value) (*Task, error) {
	gold, err := sqlparse.Parse(db.Schema, sql)
	if err != nil {
		return nil, fmt.Errorf("dataset: task %s: %w", id, err)
	}
	return &Task{
		ID:         id,
		DB:         db,
		NLQ:        nlq,
		SQL:        sql,
		Gold:       gold,
		Literals:   lits,
		Difficulty: ClassifyDifficulty(gold),
	}, nil
}

// masTaskDef defines one Appendix A task.
type masTaskDef struct {
	id   string
	desc string // English task description (Tables 7 and 8)
	sql  string
	lits []sqlir.Value
}

// The Appendix A tasks with literals re-scaled to the synthetic MAS data
// (DESIGN.md §3): conference C → SIGMOD, organization R → University of
// Michigan, author A → Alice Johnson, domain D → Databases; the count
// thresholds 500/100/50 become 50/8/10 at this data scale, and 5/8 for the
// PBE-study tasks.
var masTaskDefs = []masTaskDef{
	{"A1", "List all publications in conference SIGMOD and their year of publication.",
		"SELECT t2.title, t2.year FROM conference AS t1 JOIN publication AS t2 ON t1.cid = t2.cid WHERE t1.name = 'SIGMOD'",
		[]sqlir.Value{text("SIGMOD")}},
	{"A2", "List keywords and the number of publications containing each, ordered from most to least publications.",
		"SELECT t1.keyword, COUNT(*) FROM keyword AS t1 JOIN publication_keyword AS t2 ON t1.kid = t2.kid GROUP BY t1.keyword ORDER BY COUNT(*) DESC",
		nil},
	{"A3", "How many publications has each author from organization University of Michigan published?",
		"SELECT t1.name, COUNT(*) FROM author AS t1 JOIN writes AS t2 ON t2.aid = t1.aid JOIN organization AS t3 ON t3.oid = t1.oid WHERE t3.name = 'University of Michigan' GROUP BY t1.name",
		[]sqlir.Value{text("University of Michigan")}},
	{"A4", "List journals with more than 50 publications and the publication count for each.",
		"SELECT t1.name, COUNT(*) FROM journal AS t1 JOIN publication AS t2 ON t1.jid = t2.jid GROUP BY t1.name HAVING COUNT(*) > 50",
		[]sqlir.Value{num(50)}},
	{"B1", "List the titles and years of publications by author Alice Johnson.",
		"SELECT t1.title, t1.year FROM publication AS t1 JOIN writes AS t2 ON t2.pid = t1.pid JOIN author AS t3 ON t3.aid = t2.aid WHERE t3.name = 'Alice Johnson'",
		[]sqlir.Value{text("Alice Johnson")}},
	{"B2", "List the conferences and homepages in the Databases domain.",
		"SELECT t1.name, t1.homepage FROM conference AS t1 JOIN domain_conference AS t2 ON t2.cid = t1.cid JOIN domain AS t3 ON t3.did = t2.did WHERE t3.name = 'Databases'",
		[]sqlir.Value{text("Databases")}},
	{"B3", "List organizations with more than 8 authors and the number of authors for each.",
		"SELECT t2.name, COUNT(*) FROM author AS t1 JOIN organization AS t2 ON t1.oid = t2.oid GROUP BY t2.name HAVING COUNT(*) > 8",
		[]sqlir.Value{num(8)}},
	{"B4", "List authors from organization University of Michigan with more than 10 publications and the number of publications for each author.",
		"SELECT t1.name, COUNT(*) FROM author AS t1 JOIN writes AS t2 ON t1.aid = t2.aid JOIN organization AS t3 ON t1.oid = t3.oid WHERE t3.name = 'University of Michigan' GROUP BY t1.name HAVING COUNT(*) > 10",
		[]sqlir.Value{text("University of Michigan"), num(10)}},
	{"C1", "List all publications in conference SIGMOD.",
		"SELECT t2.title FROM conference AS t1 JOIN publication AS t2 ON t1.cid = t2.cid WHERE t1.name = 'SIGMOD'",
		[]sqlir.Value{text("SIGMOD")}},
	{"C2", "List authors in domain Databases.",
		"SELECT t1.name FROM author AS t1 JOIN domain_author AS t2 ON t1.aid = t2.aid JOIN domain AS t3 ON t2.did = t3.did WHERE t3.name = 'Databases'",
		[]sqlir.Value{text("Databases")}},
	{"C3", "List authors with more than 5 papers in conference SIGMOD.",
		"SELECT t1.name FROM author AS t1 JOIN writes AS t2 ON t1.aid = t2.aid JOIN publication AS t3 ON t2.pid = t3.pid JOIN conference AS t4 ON t3.cid = t4.cid WHERE t4.name = 'SIGMOD' GROUP BY t1.name HAVING COUNT(*) > 5",
		[]sqlir.Value{text("SIGMOD"), num(5)}},
	{"D1", "List the titles of publications published by author Alice Johnson.",
		"SELECT t3.title FROM author AS t1 JOIN writes AS t2 ON t1.aid = t2.aid JOIN publication AS t3 ON t2.pid = t3.pid WHERE t1.name = 'Alice Johnson'",
		[]sqlir.Value{text("Alice Johnson")}},
	{"D2", "List the names of organizations in continent Europe.",
		"SELECT name FROM organization WHERE continent = 'Europe'",
		[]sqlir.Value{text("Europe")}},
	{"D3", "List authors with more than 8 papers in conference SIGMOD.",
		"SELECT t1.name FROM author AS t1 JOIN writes AS t2 ON t1.aid = t2.aid JOIN publication AS t3 ON t2.pid = t3.pid JOIN conference AS t4 ON t3.cid = t4.cid WHERE t4.name = 'SIGMOD' GROUP BY t1.name HAVING COUNT(*) > 8",
		[]sqlir.Value{text("SIGMOD"), num(8)}},
}

// MASTasks builds the 14 Appendix A tasks bound to one shared MAS database.
// Tasks A1–B4 form the NLI-study sets (Table 7); C1–D3 the PBE-study sets
// (Table 8).
func MASTasks() ([]*Task, *storage.Database) {
	db := MAS()
	var out []*Task
	for _, def := range masTaskDefs {
		task, err := NewTask(def.id, db, def.desc, def.sql, def.lits)
		if err != nil {
			panic(err)
		}
		out = append(out, task)
	}
	return out, db
}

// NLIStudyTasks returns the A/B task sets.
func NLIStudyTasks() ([]*Task, *storage.Database) {
	all, db := MASTasks()
	return all[:8], db
}

// PBEStudyTasks returns the C/D task sets.
func PBEStudyTasks() ([]*Task, *storage.Database) {
	all, db := MASTasks()
	return all[8:], db
}
