// Package dataset provides the benchmark substrates of the evaluation
// (§5.1, §5.4): a scaled-down synthetic Microsoft Academic Search (MAS)
// database with the Appendix A user-study tasks, a seeded cross-domain
// Spider-like task generator, and the TSQ synthesiser of §5.4.1/§5.4.4.
//
// The real MAS and Spider data cannot be shipped; DESIGN.md §3 documents how
// these substitutes preserve the evaluation's behaviour. MAS keeps the
// paper's 15-table / 19-FK shape (Table 5) with literals re-scaled to the
// synthetic data sizes.
package dataset

import (
	"fmt"
	"math/rand"

	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/storage"
)

func text(s string) sqlir.Value { return sqlir.NewText(s) }
func num(f float64) sqlir.Value { return sqlir.NewNumber(f) }

// MAS builds the synthetic Microsoft Academic Search database: 15 tables and
// 19 FK-PK relationships, deterministically populated so every Appendix A
// task has a non-empty, non-trivial answer.
func MAS() *storage.Database {
	author := storage.NewTable("author", "aid",
		storage.Column{Name: "aid", Type: sqlir.TypeNumber},
		storage.Column{Name: "name", Type: sqlir.TypeText},
		storage.Column{Name: "homepage", Type: sqlir.TypeText},
		storage.Column{Name: "oid", Type: sqlir.TypeNumber},
	)
	publication := storage.NewTable("publication", "pid",
		storage.Column{Name: "pid", Type: sqlir.TypeNumber},
		storage.Column{Name: "title", Type: sqlir.TypeText},
		storage.Column{Name: "year", Type: sqlir.TypeNumber},
		storage.Column{Name: "citation_num", Type: sqlir.TypeNumber},
		storage.Column{Name: "cid", Type: sqlir.TypeNumber},
		storage.Column{Name: "jid", Type: sqlir.TypeNumber},
	)
	conference := storage.NewTable("conference", "cid",
		storage.Column{Name: "cid", Type: sqlir.TypeNumber},
		storage.Column{Name: "name", Type: sqlir.TypeText},
		storage.Column{Name: "homepage", Type: sqlir.TypeText},
	)
	journal := storage.NewTable("journal", "jid",
		storage.Column{Name: "jid", Type: sqlir.TypeNumber},
		storage.Column{Name: "name", Type: sqlir.TypeText},
		storage.Column{Name: "homepage", Type: sqlir.TypeText},
	)
	keyword := storage.NewTable("keyword", "kid",
		storage.Column{Name: "kid", Type: sqlir.TypeNumber},
		storage.Column{Name: "keyword", Type: sqlir.TypeText},
	)
	organization := storage.NewTable("organization", "oid",
		storage.Column{Name: "oid", Type: sqlir.TypeNumber},
		storage.Column{Name: "name", Type: sqlir.TypeText},
		storage.Column{Name: "continent", Type: sqlir.TypeText},
		storage.Column{Name: "homepage", Type: sqlir.TypeText},
	)
	domain := storage.NewTable("domain", "did",
		storage.Column{Name: "did", Type: sqlir.TypeNumber},
		storage.Column{Name: "name", Type: sqlir.TypeText},
	)
	writes := storage.NewTable("writes", "wid",
		storage.Column{Name: "wid", Type: sqlir.TypeNumber},
		storage.Column{Name: "aid", Type: sqlir.TypeNumber},
		storage.Column{Name: "pid", Type: sqlir.TypeNumber},
	)
	pubKeyword := storage.NewTable("publication_keyword", "pkid",
		storage.Column{Name: "pkid", Type: sqlir.TypeNumber},
		storage.Column{Name: "pid", Type: sqlir.TypeNumber},
		storage.Column{Name: "kid", Type: sqlir.TypeNumber},
	)
	domainAuthor := storage.NewTable("domain_author", "daid",
		storage.Column{Name: "daid", Type: sqlir.TypeNumber},
		storage.Column{Name: "aid", Type: sqlir.TypeNumber},
		storage.Column{Name: "did", Type: sqlir.TypeNumber},
	)
	domainConference := storage.NewTable("domain_conference", "dcid",
		storage.Column{Name: "dcid", Type: sqlir.TypeNumber},
		storage.Column{Name: "cid", Type: sqlir.TypeNumber},
		storage.Column{Name: "did", Type: sqlir.TypeNumber},
	)
	domainJournal := storage.NewTable("domain_journal", "djid",
		storage.Column{Name: "djid", Type: sqlir.TypeNumber},
		storage.Column{Name: "jid", Type: sqlir.TypeNumber},
		storage.Column{Name: "did", Type: sqlir.TypeNumber},
	)
	domainKeyword := storage.NewTable("domain_keyword", "dkid",
		storage.Column{Name: "dkid", Type: sqlir.TypeNumber},
		storage.Column{Name: "kid", Type: sqlir.TypeNumber},
		storage.Column{Name: "did", Type: sqlir.TypeNumber},
	)
	domainPublication := storage.NewTable("domain_publication", "dpid",
		storage.Column{Name: "dpid", Type: sqlir.TypeNumber},
		storage.Column{Name: "pid", Type: sqlir.TypeNumber},
		storage.Column{Name: "did", Type: sqlir.TypeNumber},
	)
	cite := storage.NewTable("cite", "ctid",
		storage.Column{Name: "ctid", Type: sqlir.TypeNumber},
		storage.Column{Name: "citing", Type: sqlir.TypeNumber},
		storage.Column{Name: "cited", Type: sqlir.TypeNumber},
	)

	s := storage.NewSchema(author, publication, conference, journal, keyword,
		organization, domain, writes, pubKeyword, domainAuthor,
		domainConference, domainJournal, domainKeyword, domainPublication, cite)
	s.AddForeignKey("author", "oid", "organization", "oid")
	s.AddForeignKey("publication", "cid", "conference", "cid")
	s.AddForeignKey("publication", "jid", "journal", "jid")
	s.AddForeignKey("writes", "aid", "author", "aid")
	s.AddForeignKey("writes", "pid", "publication", "pid")
	s.AddForeignKey("publication_keyword", "pid", "publication", "pid")
	s.AddForeignKey("publication_keyword", "kid", "keyword", "kid")
	s.AddForeignKey("domain_author", "aid", "author", "aid")
	s.AddForeignKey("domain_author", "did", "domain", "did")
	s.AddForeignKey("domain_conference", "cid", "conference", "cid")
	s.AddForeignKey("domain_conference", "did", "domain", "did")
	s.AddForeignKey("domain_journal", "jid", "journal", "jid")
	s.AddForeignKey("domain_journal", "did", "domain", "did")
	s.AddForeignKey("domain_keyword", "kid", "keyword", "kid")
	s.AddForeignKey("domain_keyword", "did", "domain", "did")
	s.AddForeignKey("domain_publication", "pid", "publication", "pid")
	s.AddForeignKey("domain_publication", "did", "domain", "did")
	s.AddForeignKey("cite", "citing", "publication", "pid")
	s.AddForeignKey("cite", "cited", "publication", "pid")

	populateMAS(s)
	return storage.NewDatabase("mas", s)
}

// masOrgs: name, continent, author count. Michigan and Oxford exceed the B3
// threshold (more than 8 authors).
var masOrgs = []struct {
	name      string
	continent string
	authors   int
}{
	{"University of Michigan", "North America", 12},
	{"University of Oxford", "Europe", 10},
	{"Stanford University", "North America", 7},
	{"ETH Zurich", "Europe", 6},
	{"Tsinghua University", "Asia", 8},
	{"MIT", "North America", 5},
	{"University of Tokyo", "Asia", 4},
	{"TU Munich", "Europe", 4},
	{"Carnegie Mellon University", "North America", 4},
	{"National University of Singapore", "Asia", 3},
	{"EPFL", "Europe", 3},
	{"University of Washington", "North America", 3},
}

var masConfs = []string{"SIGMOD", "VLDB", "ICDE", "KDD", "CHI", "SOSP"}

// masJournals: TODS and VLDBJ exceed the A4 threshold (more than 50 pubs).
var masJournals = []struct {
	name string
	pubs int
}{
	{"TODS", 60}, {"VLDB Journal", 55}, {"TKDE", 40}, {"CACM", 28}, {"JACM", 18},
}

var masDomains = []string{"Databases", "Machine Learning", "Systems", "HCI", "Theory"}

var masKeywords = []string{
	"query processing", "transactions", "indexing", "neural networks",
	"deep learning", "distributed systems", "operating systems",
	"user interfaces", "complexity", "optimization", "crowdsourcing",
	"data integration", "streaming", "privacy", "benchmarking",
	"graph analytics", "recommendation", "visualization", "caching",
	"concurrency control",
}

var firstNames = []string{
	"Alice", "Bob", "Carol", "David", "Emma", "Frank", "Grace", "Henry",
	"Iris", "Jack", "Karen", "Liam", "Mona", "Noah", "Olga", "Peter",
	"Quinn", "Rosa", "Sam", "Tina", "Uma", "Victor", "Wendy", "Xavier",
	"Yara", "Zane",
}

var lastNames = []string{
	"Johnson", "Smith", "Chen", "Garcia", "Mueller", "Tanaka", "Kumar",
	"Okafor", "Rossi", "Novak", "Dubois", "Larsen", "Petrov", "Silva",
	"Nguyen", "Kim",
}

// populateMAS fills the schema deterministically (seed 7).
func populateMAS(s *storage.Schema) {
	r := rand.New(rand.NewSource(7))

	org := s.Table("organization")
	for i, o := range masOrgs {
		org.MustInsert(num(float64(i+1)), text(o.name), text(o.continent),
			text(fmt.Sprintf("http://%s.example.edu", slug(o.name))))
	}

	author := s.Table("author")
	aid := 0
	var authorNames []string
	for oi, o := range masOrgs {
		for k := 0; k < o.authors; k++ {
			aid++
			var name string
			if aid == 1 {
				name = "Alice Johnson" // the A3/B1/B4/D1 focal author
			} else {
				name = fmt.Sprintf("%s %s",
					firstNames[(aid*3)%len(firstNames)],
					lastNames[(aid*5)%len(lastNames)])
				// De-duplicate by suffixing a middle initial.
				for contains(authorNames, name) {
					name = fmt.Sprintf("%s %c. %s",
						firstNames[(aid*3)%len(firstNames)],
						'A'+byte(len(authorNames)%26),
						lastNames[(aid*5)%len(lastNames)])
				}
			}
			authorNames = append(authorNames, name)
			author.MustInsert(num(float64(aid)), text(name),
				text(fmt.Sprintf("http://people.example.org/a%d", aid)),
				num(float64(oi+1)))
		}
	}

	conference := s.Table("conference")
	for i, c := range masConfs {
		conference.MustInsert(num(float64(i+1)), text(c),
			text(fmt.Sprintf("http://%s.example.org", slug(c))))
	}
	journal := s.Table("journal")
	for i, j := range masJournals {
		journal.MustInsert(num(float64(i+1)), text(j.name),
			text(fmt.Sprintf("http://%s.example.org", slug(j.name))))
	}
	keyword := s.Table("keyword")
	for i, k := range masKeywords {
		keyword.MustInsert(num(float64(i+1)), text(k))
	}
	domain := s.Table("domain")
	for i, d := range masDomains {
		domain.MustInsert(num(float64(i+1)), text(d))
	}

	pub := s.Table("publication")
	writes := s.Table("writes")
	pubKeyword := s.Table("publication_keyword")
	pid, wid, pkid := 0, 0, 0
	addPub := func(title string, year, cid, jid int, authors []int) {
		pid++
		pub.MustInsert(num(float64(pid)), text(title), num(float64(year)),
			num(float64(r.Intn(400))), numOrNull(cid), numOrNull(jid))
		for _, a := range authors {
			wid++
			writes.MustInsert(num(float64(wid)), num(float64(a)), num(float64(pid)))
		}
		// 1-2 keywords per publication.
		nk := 1 + r.Intn(2)
		for k := 0; k < nk; k++ {
			pkid++
			pubKeyword.MustInsert(num(float64(pkid)), num(float64(pid)),
				num(float64(1+r.Intn(len(masKeywords)))))
		}
	}

	nAuthors := aid
	randAuthors := func(n int) []int {
		seen := map[int]bool{}
		var out []int
		for len(out) < n {
			a := 1 + r.Intn(nAuthors)
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
		return out
	}

	// Alice Johnson (aid 1): 9 SIGMOD papers (C3 >5 and D3 >8 thresholds)
	// plus 5 others = 14 publications (B4 threshold: more than 10).
	for k := 0; k < 9; k++ {
		addPub(fmt.Sprintf("Adaptive Query Processing %d", k+1), 2010+k, 1, 0, append([]int{1}, randAuthors(1)...))
	}
	for k := 0; k < 5; k++ {
		addPub(fmt.Sprintf("Data Systems Perspective %d", k+1), 2005+k, 2+k%3, 0, []int{1})
	}
	// Bob (aid 2, Michigan): 6 SIGMOD papers (passes C3, fails D3) and 6
	// more elsewhere = 12 publications (passes B4).
	for k := 0; k < 6; k++ {
		addPub(fmt.Sprintf("Transactional Memory Study %d", k+1), 2012+k, 1, 0, append([]int{2}, randAuthors(1)...))
	}
	for k := 0; k < 6; k++ {
		addPub(fmt.Sprintf("Storage Engines Revisited %d", k+1), 2008+k, 2+k%4, 0, []int{2})
	}
	// Journal volume: TODS 60, VLDBJ 55, TKDE 40, CACM 28, JACM 18.
	for ji, j := range masJournals {
		for k := 0; k < j.pubs; k++ {
			addPub(fmt.Sprintf("%s Article %d", j.name, k+1), 1995+r.Intn(25), 0, ji+1, randAuthors(1+r.Intn(2)))
		}
	}
	// Conference volume: ~20 extra papers per conference.
	for ci, c := range masConfs {
		for k := 0; k < 20; k++ {
			addPub(fmt.Sprintf("%s Paper %d", c, k+1), 1998+r.Intn(22), ci+1, 0, randAuthors(1+r.Intn(2)))
		}
	}

	// Citations: 300 random edges.
	cite := s.Table("cite")
	for i := 0; i < 300; i++ {
		a, b := 1+r.Intn(pid), 1+r.Intn(pid)
		if a == b {
			continue
		}
		cite.MustInsert(num(float64(i+1)), num(float64(a)), num(float64(b)))
	}

	// Domain links.
	domainAuthor := s.Table("domain_author")
	for a := 1; a <= nAuthors; a++ {
		d := 1 + (a % len(masDomains))
		if a <= 12 {
			d = 1 // Michigan authors work in Databases (C2 answer set)
		}
		domainAuthor.MustInsert(num(float64(a)), num(float64(a)), num(float64(d)))
	}
	domainConference := s.Table("domain_conference")
	dcLinks := [][2]int{{1, 1}, {2, 1}, {3, 1}, {4, 2}, {5, 4}, {6, 3}}
	for i, l := range dcLinks {
		domainConference.MustInsert(num(float64(i+1)), num(float64(l[0])), num(float64(l[1])))
	}
	domainJournal := s.Table("domain_journal")
	djLinks := [][2]int{{1, 1}, {2, 1}, {3, 2}, {4, 3}, {5, 5}}
	for i, l := range djLinks {
		domainJournal.MustInsert(num(float64(i+1)), num(float64(l[0])), num(float64(l[1])))
	}
	domainKeyword := s.Table("domain_keyword")
	for k := 1; k <= len(masKeywords); k++ {
		domainKeyword.MustInsert(num(float64(k)), num(float64(k)), num(float64(1+(k%len(masDomains)))))
	}
	domainPublication := s.Table("domain_publication")
	for p := 1; p <= pid; p += 2 {
		domainPublication.MustInsert(num(float64((p+1)/2)), num(float64(p)), num(float64(1+(p%len(masDomains)))))
	}
}

func numOrNull(n int) sqlir.Value {
	if n == 0 {
		return sqlir.Null()
	}
	return num(float64(n))
}

func slug(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case 'a' <= c && c <= 'z':
			out = append(out, c)
		case 'A' <= c && c <= 'Z':
			out = append(out, c+'a'-'A')
		}
	}
	return string(out)
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
