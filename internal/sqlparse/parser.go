package sqlparse

import (
	"fmt"
	"strconv"

	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/storage"
)

// Parse parses one SQL statement against a schema, resolving table aliases
// and unqualified column names, and returns a complete sqlir.Query.
//
// Supported grammar (case-insensitive keywords):
//
//	SELECT [DISTINCT] item (, item)*
//	FROM table [AS alias] (JOIN table [AS alias] ON col = col)*
//	[WHERE pred ((AND|OR) pred)*]
//	[GROUP BY col (, col)* [HAVING agg(col) op value]]
//	[ORDER BY key [ASC|DESC]] [LIMIT n]
//
// where item is col or AGG(col|*). Mixed AND/OR, set operations and
// subqueries are outside the paper's task scope and are rejected.
func Parse(schema *storage.Schema, input string) (*sqlir.Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{schema: schema, toks: toks, aliases: map[string]string{}}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	return q, nil
}

type parser struct {
	schema     *storage.Schema
	toks       []token
	pos        int
	aliases    map[string]string // alias (lower) -> table name
	fromTables []string          // tables in FROM, for unqualified resolution
}

// MustParse parses or panics; for tests and dataset construction where the
// SQL is a compile-time constant.
func MustParse(schema *storage.Schema, input string) *sqlir.Query {
	q, err := Parse(schema, input)
	if err != nil {
		panic(err)
	}
	return q
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

// acceptKw consumes the token if it is the given keyword.
func (p *parser) acceptKw(kw string) bool {
	if p.cur().kind == tokIdent && p.cur().text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return fmt.Errorf("sqlparse: expected %q at %d, got %q", kw, p.cur().pos, p.cur().text)
	}
	return nil
}

func (p *parser) acceptSym(s string) bool {
	if p.cur().kind == tokSymbol && p.cur().text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectSym(s string) error {
	if !p.acceptSym(s) {
		return fmt.Errorf("sqlparse: expected %q at %d, got %q", s, p.cur().pos, p.cur().text)
	}
	return nil
}

var aggNames = map[string]sqlir.AggFunc{
	"max": sqlir.AggMax, "min": sqlir.AggMin, "count": sqlir.AggCount,
	"sum": sqlir.AggSum, "avg": sqlir.AggAvg,
}

func (p *parser) parseQuery() (*sqlir.Query, error) {
	q := sqlir.NewQuery()
	q.KWSet = true
	q.LimitSet = true
	if err := p.expectKw("select"); err != nil {
		return nil, err
	}
	if p.acceptKw("distinct") {
		q.Distinct = true
	}

	// Projections are parsed before FROM (so aliases are not yet known);
	// collect raw refs and resolve afterwards.
	type rawItem struct {
		agg  sqlir.AggFunc
		qual string // table or alias, "" if unqualified
		col  string // "*" for star
	}
	var rawSel []rawItem
	for {
		it := rawItem{agg: sqlir.AggNone}
		if p.cur().kind == tokIdent {
			if agg, ok := aggNames[p.cur().text]; ok && p.peekSym(1, "(") {
				it.agg = agg
				p.pos += 2 // ident + (
				if p.acceptSym("*") {
					it.col = "*"
				} else {
					var err error
					it.qual, it.col, err = p.parseRawRef()
					if err != nil {
						return nil, err
					}
				}
				if err := p.expectSym(")"); err != nil {
					return nil, err
				}
				rawSel = append(rawSel, it)
				if !p.acceptSym(",") {
					break
				}
				continue
			}
		}
		if p.acceptSym("*") {
			it.col = "*"
		} else {
			var err error
			it.qual, it.col, err = p.parseRawRef()
			if err != nil {
				return nil, err
			}
		}
		rawSel = append(rawSel, it)
		if !p.acceptSym(",") {
			break
		}
	}

	if err := p.expectKw("from"); err != nil {
		return nil, err
	}
	jp, rawEdges, err := p.parseFrom()
	if err != nil {
		return nil, err
	}
	q.From = jp
	// Resolve the ON conditions now that aliases exist.
	for _, re := range rawEdges {
		a, err := p.resolveRef(re[0], re[1])
		if err != nil {
			return nil, err
		}
		b, err := p.resolveRef(re[2], re[3])
		if err != nil {
			return nil, err
		}
		q.From.Edges = append(q.From.Edges, sqlir.JoinEdge{
			FromTable: a.Table, FromColumn: a.Column,
			ToTable: b.Table, ToColumn: b.Column,
		})
	}

	// Resolve projections.
	q.SelectCountSet = true
	for _, it := range rawSel {
		si := sqlir.SelectItem{Agg: it.agg, AggSet: true, ColSet: true}
		if it.col == "*" {
			if it.agg != sqlir.AggCount {
				return nil, fmt.Errorf("sqlparse: bare * only supported under COUNT")
			}
			si.Col = sqlir.Star
		} else {
			ref, err := p.resolveRef(it.qual, it.col)
			if err != nil {
				return nil, err
			}
			si.Col = ref
		}
		q.Select = append(q.Select, si)
	}

	if p.acceptKw("where") {
		q.WhereState = sqlir.ClausePresent
		q.Where.CountSet = true
		conjSeen := ""
		for {
			pred, err := p.parsePredicate()
			if err != nil {
				return nil, err
			}
			q.Where.Preds = append(q.Where.Preds, pred)
			if p.acceptKw("and") {
				if conjSeen == "or" {
					return nil, fmt.Errorf("sqlparse: mixed AND/OR not in task scope")
				}
				conjSeen = "and"
				continue
			}
			if p.acceptKw("or") {
				if conjSeen == "and" {
					return nil, fmt.Errorf("sqlparse: mixed AND/OR not in task scope")
				}
				conjSeen = "or"
				continue
			}
			break
		}
		q.Where.ConjSet = true
		if conjSeen == "or" {
			q.Where.Conj = sqlir.LogicOr
		} else {
			q.Where.Conj = sqlir.LogicAnd
		}
	}

	if p.acceptKw("group") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		q.GroupByState = sqlir.ClausePresent
		for {
			qual, col, err := p.parseRawRef()
			if err != nil {
				return nil, err
			}
			ref, err := p.resolveRef(qual, col)
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, ref)
			if !p.acceptSym(",") {
				break
			}
		}
		if p.acceptKw("having") {
			q.HavingState = sqlir.ClausePresent
			h := sqlir.HavingExpr{AggSet: true, ColSet: true, OpSet: true, ValSet: true}
			aggName := p.cur().text
			agg, ok := aggNames[aggName]
			if p.cur().kind != tokIdent || !ok {
				return nil, fmt.Errorf("sqlparse: HAVING requires an aggregate at %d", p.cur().pos)
			}
			p.pos++
			if err := p.expectSym("("); err != nil {
				return nil, err
			}
			h.Agg = agg
			if p.acceptSym("*") {
				h.Col = sqlir.Star
			} else {
				qual, col, err := p.parseRawRef()
				if err != nil {
					return nil, err
				}
				ref, err := p.resolveRef(qual, col)
				if err != nil {
					return nil, err
				}
				h.Col = ref
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			op, err := p.parseOp()
			if err != nil {
				return nil, err
			}
			h.Op = op
			val, err := p.parseValue()
			if err != nil {
				return nil, err
			}
			h.Val = val
			q.Having = h
		}
	}

	if p.acceptKw("order") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		q.OrderByState = sqlir.ClausePresent
		key := sqlir.OrderKey{Agg: sqlir.AggNone}
		if agg, ok := aggNames[p.cur().text]; ok && p.cur().kind == tokIdent && p.peekSym(1, "(") {
			key.Agg = agg
			p.pos += 2
			if p.acceptSym("*") {
				key.Col = sqlir.Star
			} else {
				qual, col, err := p.parseRawRef()
				if err != nil {
					return nil, err
				}
				ref, err := p.resolveRef(qual, col)
				if err != nil {
					return nil, err
				}
				key.Col = ref
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
		} else {
			qual, col, err := p.parseRawRef()
			if err != nil {
				return nil, err
			}
			ref, err := p.resolveRef(qual, col)
			if err != nil {
				return nil, err
			}
			key.Col = ref
		}
		q.OrderBy.Key = key
		q.OrderBy.KeySet = true
		q.OrderBy.DirSet = true
		if p.acceptKw("desc") {
			q.OrderBy.Desc = true
		} else {
			p.acceptKw("asc")
		}
	}

	if p.acceptKw("limit") {
		if p.cur().kind != tokNumber {
			return nil, fmt.Errorf("sqlparse: LIMIT requires a number at %d", p.cur().pos)
		}
		n, err := strconv.Atoi(p.next().text)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("sqlparse: bad LIMIT value")
		}
		q.Limit = n
	}

	p.acceptSym(";")
	if p.cur().kind != tokEOF {
		return nil, fmt.Errorf("sqlparse: trailing input at %d: %q", p.cur().pos, p.cur().text)
	}
	return q, nil
}

// peekSym reports whether the token at offset d is the given symbol.
func (p *parser) peekSym(d int, s string) bool {
	if p.pos+d >= len(p.toks) {
		return false
	}
	t := p.toks[p.pos+d]
	return t.kind == tokSymbol && t.text == s
}

// parseRawRef reads [qual .] name without resolving.
func (p *parser) parseRawRef() (qual, col string, err error) {
	if p.cur().kind != tokIdent {
		return "", "", fmt.Errorf("sqlparse: expected column reference at %d, got %q", p.cur().pos, p.cur().text)
	}
	first := p.next().text
	if p.acceptSym(".") {
		if p.cur().kind != tokIdent {
			return "", "", fmt.Errorf("sqlparse: expected column after '.' at %d", p.cur().pos)
		}
		return first, p.next().text, nil
	}
	return "", first, nil
}

// resolveRef maps an alias-or-table qualifier and column name to a concrete
// schema column. Unqualified names are resolved if unambiguous across the
// tables in the FROM clause.
func (p *parser) resolveRef(qual, col string) (sqlir.ColumnRef, error) {
	if qual != "" {
		tbl := qual
		if real, ok := p.aliases[qual]; ok {
			tbl = real
		}
		t := p.schema.Table(tbl)
		if t == nil {
			return sqlir.ColumnRef{}, fmt.Errorf("sqlparse: unknown table %q", qual)
		}
		if t.ColumnIndex(col) < 0 {
			return sqlir.ColumnRef{}, fmt.Errorf("sqlparse: table %s has no column %q", tbl, col)
		}
		return sqlir.ColumnRef{Table: tbl, Column: col}, nil
	}
	// Unqualified: search FROM tables.
	var found []string
	for _, tbl := range p.fromTables {
		t := p.schema.Table(tbl)
		if t != nil && t.ColumnIndex(col) >= 0 {
			found = append(found, tbl)
		}
	}
	switch len(found) {
	case 1:
		return sqlir.ColumnRef{Table: found[0], Column: col}, nil
	case 0:
		return sqlir.ColumnRef{}, fmt.Errorf("sqlparse: column %q not found in FROM tables", col)
	default:
		return sqlir.ColumnRef{}, fmt.Errorf("sqlparse: column %q is ambiguous (%v)", col, found)
	}
}

// parseFrom reads the FROM clause, registering aliases. Join ON conditions
// are returned raw because later aliases may be referenced.
func (p *parser) parseFrom() (*sqlir.JoinPath, [][4]string, error) {
	jp := &sqlir.JoinPath{}
	var rawEdges [][4]string
	readTable := func() error {
		if p.cur().kind != tokIdent {
			return fmt.Errorf("sqlparse: expected table name at %d", p.cur().pos)
		}
		name := p.next().text
		if p.schema.Table(name) == nil {
			return fmt.Errorf("sqlparse: unknown table %q", name)
		}
		for _, t := range jp.Tables {
			if t == name {
				return fmt.Errorf("sqlparse: table %q joined twice (self-joins out of scope)", name)
			}
		}
		jp.Tables = append(jp.Tables, name)
		if p.acceptKw("as") {
			if p.cur().kind != tokIdent {
				return fmt.Errorf("sqlparse: expected alias at %d", p.cur().pos)
			}
			p.aliases[p.next().text] = name
		} else if p.cur().kind == tokIdent && !reserved[p.cur().text] {
			p.aliases[p.next().text] = name
		}
		return nil
	}
	if err := readTable(); err != nil {
		return nil, nil, err
	}
	for p.acceptKw("join") {
		if err := readTable(); err != nil {
			return nil, nil, err
		}
		if err := p.expectKw("on"); err != nil {
			return nil, nil, err
		}
		q1, c1, err := p.parseRawRef()
		if err != nil {
			return nil, nil, err
		}
		if err := p.expectSym("="); err != nil {
			return nil, nil, err
		}
		q2, c2, err := p.parseRawRef()
		if err != nil {
			return nil, nil, err
		}
		rawEdges = append(rawEdges, [4]string{q1, c1, q2, c2})
	}
	p.fromTables = jp.Tables
	return jp, rawEdges, nil
}

var reserved = map[string]bool{
	"join": true, "on": true, "where": true, "group": true, "order": true,
	"having": true, "limit": true, "as": true, "and": true, "or": true,
	"select": true, "from": true, "by": true, "asc": true, "desc": true,
}

func (p *parser) parsePredicate() (sqlir.Predicate, error) {
	pred := sqlir.Predicate{ColSet: true, OpSet: true, ValSet: true}
	qual, col, err := p.parseRawRef()
	if err != nil {
		return pred, err
	}
	ref, err := p.resolveRef(qual, col)
	if err != nil {
		return pred, err
	}
	pred.Col = ref
	op, err := p.parseOp()
	if err != nil {
		return pred, err
	}
	pred.Op = op
	val, err := p.parseValue()
	if err != nil {
		return pred, err
	}
	pred.Val = val
	return pred, nil
}

func (p *parser) parseOp() (sqlir.Op, error) {
	t := p.cur()
	if t.kind == tokIdent && t.text == "like" {
		p.pos++
		return sqlir.OpLike, nil
	}
	if t.kind == tokSymbol {
		switch t.text {
		case "=":
			p.pos++
			return sqlir.OpEq, nil
		case "!=", "<>":
			p.pos++
			return sqlir.OpNe, nil
		case "<":
			p.pos++
			return sqlir.OpLt, nil
		case ">":
			p.pos++
			return sqlir.OpGt, nil
		case "<=":
			p.pos++
			return sqlir.OpLe, nil
		case ">=":
			p.pos++
			return sqlir.OpGe, nil
		}
	}
	return sqlir.OpEq, fmt.Errorf("sqlparse: expected operator at %d, got %q", t.pos, t.text)
}

func (p *parser) parseValue() (sqlir.Value, error) {
	t := p.cur()
	switch t.kind {
	case tokString:
		p.pos++
		return sqlir.NewText(t.text), nil
	case tokNumber:
		p.pos++
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return sqlir.Null(), fmt.Errorf("sqlparse: bad number %q", t.text)
		}
		return sqlir.NewNumber(f), nil
	default:
		return sqlir.Null(), fmt.Errorf("sqlparse: expected literal at %d, got %q", t.pos, t.text)
	}
}
