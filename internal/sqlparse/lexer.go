// Package sqlparse parses the SQL subset in the paper's task scope (§2.5)
// into the sqlir AST. It is used to load gold queries for benchmark tasks,
// to round-trip queries in tests, and by the CLI tooling.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokenKind
	text string // identifiers are lower-cased; strings are unquoted
	pos  int
}

// lex tokenizes the input. Keywords are returned as tokIdent; the parser
// matches them case-insensitively.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			closed := false
			for j < n {
				if input[j] == '\'' {
					if j+1 < n && input[j+1] == '\'' {
						sb.WriteByte('\'')
						j += 2
						continue
					}
					closed = true
					j++
					break
				}
				sb.WriteByte(input[j])
				j++
			}
			if !closed {
				return nil, fmt.Errorf("sqlparse: unterminated string at %d", i)
			}
			toks = append(toks, token{tokString, sb.String(), i})
			i = j
		case c == '"':
			// Double-quoted identifier (Spider-style t1."name").
			j := i + 1
			for j < n && input[j] != '"' {
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("sqlparse: unterminated quoted identifier at %d", i)
			}
			toks = append(toks, token{tokIdent, strings.ToLower(input[i+1 : j]), i})
			i = j + 1
		case isDigit(c) || (c == '-' && i+1 < n && isDigit(input[i+1]) && startsValue(toks)):
			j := i
			if c == '-' {
				j++
			}
			for j < n && (isDigit(input[j]) || input[j] == '.') {
				j++
			}
			toks = append(toks, token{tokNumber, input[i:j], i})
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < n && isIdentPart(rune(input[j])) {
				j++
			}
			toks = append(toks, token{tokIdent, strings.ToLower(input[i:j]), i})
			i = j
		default:
			// Multi-char operators first.
			for _, op := range []string{"<=", ">=", "!=", "<>"} {
				if strings.HasPrefix(input[i:], op) {
					toks = append(toks, token{tokSymbol, op, i})
					i += 2
					goto next
				}
			}
			switch c {
			case '(', ')', ',', '.', '*', '=', '<', '>', ';':
				toks = append(toks, token{tokSymbol, string(c), i})
				i++
			default:
				return nil, fmt.Errorf("sqlparse: unexpected character %q at %d", c, i)
			}
		next:
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

// startsValue reports whether the previous token allows a negative number
// literal here (after an operator or comma) rather than a minus.
func startsValue(toks []token) bool {
	if len(toks) == 0 {
		return true
	}
	t := toks[len(toks)-1]
	if t.kind == tokSymbol {
		switch t.text {
		case "=", "<", ">", "<=", ">=", "!=", "<>", ",", "(":
			return true
		}
	}
	return false
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
