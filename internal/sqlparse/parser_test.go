package sqlparse

import (
	"strings"
	"testing"

	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/storage"
)

func movieSchema() *storage.Schema {
	actor := storage.NewTable("actor", "aid",
		storage.Column{Name: "aid", Type: sqlir.TypeNumber},
		storage.Column{Name: "name", Type: sqlir.TypeText},
		storage.Column{Name: "gender", Type: sqlir.TypeText},
		storage.Column{Name: "birth_yr", Type: sqlir.TypeNumber},
	)
	movie := storage.NewTable("movie", "mid",
		storage.Column{Name: "mid", Type: sqlir.TypeNumber},
		storage.Column{Name: "title", Type: sqlir.TypeText},
		storage.Column{Name: "year", Type: sqlir.TypeNumber},
		storage.Column{Name: "revenue", Type: sqlir.TypeNumber},
	)
	starring := storage.NewTable("starring", "sid",
		storage.Column{Name: "sid", Type: sqlir.TypeNumber},
		storage.Column{Name: "aid", Type: sqlir.TypeNumber},
		storage.Column{Name: "mid", Type: sqlir.TypeNumber},
	)
	s := storage.NewSchema(actor, movie, starring)
	s.AddForeignKey("starring", "aid", "actor", "aid")
	s.AddForeignKey("starring", "mid", "movie", "mid")
	return s
}

func TestParseSimpleSelect(t *testing.T) {
	q, err := Parse(movieSchema(), "SELECT title FROM movie")
	if err != nil {
		t.Fatal(err)
	}
	if !q.Complete() {
		t.Fatalf("parsed query should be complete: %s", q)
	}
	if len(q.Select) != 1 || q.Select[0].Col != (sqlir.ColumnRef{Table: "movie", Column: "title"}) {
		t.Errorf("select = %v", q.Select)
	}
	if q.From.Len() != 1 || q.From.Tables[0] != "movie" {
		t.Errorf("from = %v", q.From)
	}
}

func TestParseAliasResolution(t *testing.T) {
	q, err := Parse(movieSchema(),
		"SELECT m.title, a.name FROM actor AS a JOIN starring s ON a.aid = s.aid JOIN movie m ON s.mid = m.mid")
	if err != nil {
		t.Fatal(err)
	}
	if q.Select[0].Col.Table != "movie" || q.Select[1].Col.Table != "actor" {
		t.Errorf("aliases not resolved: %v", q.Select)
	}
	if len(q.From.Edges) != 2 {
		t.Fatalf("edges = %v", q.From.Edges)
	}
	if q.From.Edges[0].FromTable != "actor" || q.From.Edges[0].ToTable != "starring" {
		t.Errorf("edge0 = %v", q.From.Edges[0])
	}
}

func TestParseUnqualifiedColumns(t *testing.T) {
	q, err := Parse(movieSchema(), "SELECT title FROM movie WHERE year > 1995")
	if err != nil {
		t.Fatal(err)
	}
	if q.Where.Preds[0].Col.Table != "movie" {
		t.Errorf("unqualified resolution failed: %v", q.Where.Preds)
	}
}

func TestParseAmbiguousColumn(t *testing.T) {
	_, err := Parse(movieSchema(),
		"SELECT aid FROM actor JOIN starring ON actor.aid = starring.aid")
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("want ambiguity error, got %v", err)
	}
}

func TestParseWhereOps(t *testing.T) {
	for _, c := range []struct {
		sql string
		op  sqlir.Op
	}{
		{"year = 1995", sqlir.OpEq},
		{"year != 1995", sqlir.OpNe},
		{"year <> 1995", sqlir.OpNe},
		{"year < 1995", sqlir.OpLt},
		{"year > 1995", sqlir.OpGt},
		{"year <= 1995", sqlir.OpLe},
		{"year >= 1995", sqlir.OpGe},
		{"title LIKE '%gump%'", sqlir.OpLike},
	} {
		q, err := Parse(movieSchema(), "SELECT title FROM movie WHERE "+c.sql)
		if err != nil {
			t.Fatalf("%s: %v", c.sql, err)
		}
		if q.Where.Preds[0].Op != c.op {
			t.Errorf("%s: op = %v, want %v", c.sql, q.Where.Preds[0].Op, c.op)
		}
	}
}

func TestParseAndOr(t *testing.T) {
	q, err := Parse(movieSchema(), "SELECT title FROM movie WHERE year < 1995 OR year > 2000")
	if err != nil {
		t.Fatal(err)
	}
	if q.Where.Conj != sqlir.LogicOr || len(q.Where.Preds) != 2 {
		t.Errorf("where = %+v", q.Where)
	}
	q, err = Parse(movieSchema(), "SELECT title FROM movie WHERE year > 1995 AND year < 2000 AND revenue > 5")
	if err != nil {
		t.Fatal(err)
	}
	if q.Where.Conj != sqlir.LogicAnd || len(q.Where.Preds) != 3 {
		t.Errorf("where = %+v", q.Where)
	}
}

func TestParseMixedAndOrRejected(t *testing.T) {
	_, err := Parse(movieSchema(),
		"SELECT title FROM movie WHERE year > 1995 AND year < 2000 OR revenue > 5")
	if err == nil || !strings.Contains(err.Error(), "mixed") {
		t.Errorf("want mixed AND/OR rejection, got %v", err)
	}
}

func TestParseAggregates(t *testing.T) {
	q, err := Parse(movieSchema(), "SELECT COUNT(*), MAX(year), avg(revenue) FROM movie")
	if err != nil {
		t.Fatal(err)
	}
	if q.Select[0].Agg != sqlir.AggCount || !q.Select[0].Col.IsStar() {
		t.Errorf("item0 = %v", q.Select[0])
	}
	if q.Select[1].Agg != sqlir.AggMax || q.Select[2].Agg != sqlir.AggAvg {
		t.Errorf("aggs = %v", q.Select)
	}
}

func TestParseGroupByHaving(t *testing.T) {
	q, err := Parse(movieSchema(),
		"SELECT a.name, COUNT(*) FROM actor a JOIN starring s ON a.aid = s.aid GROUP BY a.name HAVING COUNT(*) > 5")
	if err != nil {
		t.Fatal(err)
	}
	if q.GroupByState != sqlir.ClausePresent || len(q.GroupBy) != 1 {
		t.Errorf("group by = %v", q.GroupBy)
	}
	if q.HavingState != sqlir.ClausePresent || q.Having.Agg != sqlir.AggCount ||
		q.Having.Op != sqlir.OpGt || !q.Having.Val.Equal(sqlir.NewInt(5)) {
		t.Errorf("having = %v", q.Having)
	}
}

func TestParseOrderByLimit(t *testing.T) {
	q, err := Parse(movieSchema(), "SELECT title FROM movie ORDER BY year DESC LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if q.OrderByState != sqlir.ClausePresent || !q.OrderBy.Desc || q.Limit != 3 {
		t.Errorf("order/limit = %+v limit=%d", q.OrderBy, q.Limit)
	}
	q, err = Parse(movieSchema(), "SELECT title FROM movie ORDER BY year ASC")
	if err != nil {
		t.Fatal(err)
	}
	if q.OrderBy.Desc || q.Limit != 0 {
		t.Errorf("asc parse: %+v", q.OrderBy)
	}
	q, err = Parse(movieSchema(),
		"SELECT a.name, COUNT(*) FROM actor a JOIN starring s ON a.aid = s.aid GROUP BY a.name ORDER BY COUNT(*) DESC")
	if err != nil {
		t.Fatal(err)
	}
	if q.OrderBy.Key.Agg != sqlir.AggCount {
		t.Errorf("order key = %v", q.OrderBy.Key)
	}
}

func TestParseDistinct(t *testing.T) {
	q, err := Parse(movieSchema(), "SELECT DISTINCT title FROM movie")
	if err != nil {
		t.Fatal(err)
	}
	if !q.Distinct {
		t.Error("distinct not parsed")
	}
}

func TestParseStringEscapes(t *testing.T) {
	q, err := Parse(movieSchema(), "SELECT title FROM movie WHERE title = 'it''s a movie'")
	if err != nil {
		t.Fatal(err)
	}
	if !q.Where.Preds[0].Val.Equal(sqlir.NewText("it's a movie")) {
		t.Errorf("val = %v", q.Where.Preds[0].Val)
	}
}

func TestParseNegativeNumber(t *testing.T) {
	q, err := Parse(movieSchema(), "SELECT title FROM movie WHERE year > -5")
	if err != nil {
		t.Fatal(err)
	}
	if !q.Where.Preds[0].Val.Equal(sqlir.NewNumber(-5)) {
		t.Errorf("val = %v", q.Where.Preds[0].Val)
	}
}

func TestParseQuotedIdentifier(t *testing.T) {
	q, err := Parse(movieSchema(), `SELECT movie."title" FROM movie`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Select[0].Col.Column != "title" {
		t.Errorf("quoted ident: %v", q.Select[0])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		sql  string
		want string
	}{
		{"", `expected "select"`},
		{"SELECT", "expected column reference"},
		{"SELECT title", `expected "from"`},
		{"SELECT title FROM nosuch", "unknown table"},
		{"SELECT nosuch FROM movie", "not found"},
		{"SELECT title FROM movie WHERE", "expected column reference"},
		{"SELECT title FROM movie WHERE year", "expected operator"},
		{"SELECT title FROM movie WHERE year >", "expected literal"},
		{"SELECT title FROM movie LIMIT x", "LIMIT requires a number"},
		{"SELECT title FROM movie LIMIT 0", "bad LIMIT"},
		{"SELECT title FROM movie LIMIT 3 3", "trailing input"},
		{"SELECT * FROM movie", "only supported under COUNT"},
		{"SELECT title FROM movie JOIN movie ON movie.mid = movie.mid", "joined twice"},
		{"SELECT title FROM movie WHERE title = 'unterminated", "unterminated string"},
		{"SELECT a.name, COUNT(*) FROM actor a JOIN starring s ON a.aid = s.aid GROUP BY a.name HAVING year > 5", "HAVING requires an aggregate"},
	}
	for _, c := range cases {
		_, err := Parse(movieSchema(), c.sql)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: err = %v, want containing %q", c.sql, err, c.want)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic")
		}
	}()
	MustParse(movieSchema(), "not sql")
}

// TestParsePrintRoundTrip parses, prints, re-parses and checks canonical
// equality — the parser/printer agreement property.
func TestParsePrintRoundTrip(t *testing.T) {
	schema := movieSchema()
	queries := []string{
		"SELECT title FROM movie",
		"SELECT DISTINCT title, year FROM movie",
		"SELECT COUNT(*) FROM movie WHERE year > 1995",
		"SELECT a.name FROM actor a JOIN starring s ON s.aid = a.aid",
		"SELECT m.title, a.name, m.year FROM actor a JOIN starring s ON a.aid = s.aid JOIN movie m ON s.mid = m.mid WHERE a.gender = 'male' AND m.year < 1995 ORDER BY m.year ASC",
		"SELECT a.name, COUNT(*) FROM actor a JOIN starring s ON a.aid = s.aid GROUP BY a.name HAVING COUNT(*) > 5 ORDER BY COUNT(*) DESC LIMIT 10",
		"SELECT title FROM movie WHERE year < 1995 OR year > 2000",
	}
	for _, sql := range queries {
		q1, err := Parse(schema, sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		q2, err := Parse(schema, q1.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", q1.String(), err)
		}
		if !sqlir.Equivalent(q1, q2) {
			t.Errorf("round trip mismatch:\n  in:  %s\n  out: %s", q1.Canonical(), q2.Canonical())
		}
	}
}

func TestLexerTokens(t *testing.T) {
	toks, err := lex("SELECT a.b, 'x''y' >= -3.5 <> != <=")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []tokenKind{tokIdent, tokIdent, tokSymbol, tokIdent, tokSymbol,
		tokString, tokSymbol, tokNumber, tokSymbol, tokSymbol, tokSymbol, tokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("tokens = %d, want %d: %+v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].kind != k {
			t.Errorf("token %d kind = %v, want %v (%q)", i, toks[i].kind, k, toks[i].text)
		}
	}
	if toks[5].text != "x'y" {
		t.Errorf("string literal = %q", toks[5].text)
	}
	if toks[7].text != "-3.5" {
		t.Errorf("number = %q", toks[7].text)
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := lex("'unterminated"); err == nil {
		t.Error("unterminated string should fail")
	}
	if _, err := lex(`"unterminated`); err == nil {
		t.Error("unterminated quoted identifier should fail")
	}
	if _, err := lex("a @ b"); err == nil {
		t.Error("bad character should fail")
	}
}

func TestLexerMinusIsOperatorContext(t *testing.T) {
	// After an identifier, '-' is not a negative-number start.
	if _, err := lex("a - b"); err == nil {
		t.Error("bare minus outside value position should fail (unsupported)")
	}
	// After '=', it is a negative literal.
	toks, err := lex("a = -5")
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].kind != tokNumber || toks[2].text != "-5" {
		t.Errorf("negative literal = %+v", toks[2])
	}
}
