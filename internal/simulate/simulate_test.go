package simulate

import (
	"testing"
	"time"

	"github.com/duoquest/duoquest/internal/dataset"
	"github.com/duoquest/duoquest/internal/sqlexec"
	"github.com/duoquest/duoquest/internal/sqlir"
)

func TestSystemString(t *testing.T) {
	if SystemDuoquest.String() != "Duoquest" || SystemNLI.String() != "NLI" || SystemPBE.String() != "PBE" {
		t.Error("system names")
	}
}

func TestRunTrialDuoquestSucceedsOnEasyTask(t *testing.T) {
	tasks, _ := dataset.PBEStudyTasks()
	r := NewRunner()
	// D2 is a single-table medium task Duoquest solves quickly.
	var d2 *dataset.Task
	for _, task := range tasks {
		if task.ID == "D2" {
			d2 = task
		}
	}
	tr, err := r.RunTrial(d2, SystemDuoquest, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Success {
		t.Errorf("D2 should succeed: %+v", tr)
	}
	if tr.Duration <= 0 || tr.Duration > r.Params.Budget {
		t.Errorf("duration out of range: %v", tr.Duration)
	}
	if tr.Examples < 1 || tr.Examples > 2 {
		t.Errorf("Duoquest uses 1-2 examples: %d", tr.Examples)
	}
}

func TestRunTrialDeterministicPerUser(t *testing.T) {
	tasks, _ := dataset.PBEStudyTasks()
	r := NewRunner()
	a, err := r.RunTrial(tasks[0], SystemDuoquest, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.RunTrial(tasks[0], SystemDuoquest, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Success != b.Success || a.Duration != b.Duration || a.Examples != b.Examples {
		t.Errorf("same user+task should be deterministic: %+v vs %+v", a, b)
	}
}

func TestRunTrialPBE(t *testing.T) {
	tasks, _ := dataset.PBEStudyTasks()
	r := NewRunner()
	// D2 (continent filter) is squarely in SQuID's wheelhouse.
	var d2, d3 *dataset.Task
	for _, task := range tasks {
		switch task.ID {
		case "D2":
			d2 = task
		case "D3":
			d3 = task
		}
	}
	tr, err := r.RunTrial(d2, SystemPBE, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Success {
		t.Errorf("PBE should handle D2: %+v", tr)
	}
	if tr.Examples < 2 {
		t.Errorf("PBE users enter at least 2 examples: %d", tr.Examples)
	}
	// D3 (grouped count threshold) is harder for PBE's single-shot output;
	// just assert the trial completes without error.
	if _, err := r.RunTrial(d3, SystemPBE, 0); err != nil {
		t.Fatal(err)
	}
}

func TestResultsMatch(t *testing.T) {
	text := sqlir.NewText
	num := sqlir.NewNumber
	mk := func(rows ...[]sqlir.Value) *sqlexec.Result {
		return &sqlexec.Result{Types: []sqlir.Type{sqlir.TypeText, sqlir.TypeNumber}, Rows: rows}
	}
	a := mk([]sqlir.Value{text("x"), num(1)}, []sqlir.Value{text("y"), num(2)})
	b := mk([]sqlir.Value{text("y"), num(2)}, []sqlir.Value{text("x"), num(1)})
	if !resultsMatch(a, b, false) {
		t.Error("unordered match should ignore row order")
	}
	if resultsMatch(a, b, true) {
		t.Error("ordered match should respect row order")
	}
	if !resultsMatch(a, a, true) {
		t.Error("identical ordered results match")
	}
	c := mk([]sqlir.Value{text("x"), num(1)})
	if resultsMatch(a, c, false) {
		t.Error("row count must match")
	}
	d := &sqlexec.Result{Types: []sqlir.Type{sqlir.TypeText}, Rows: [][]sqlir.Value{{text("x")}}}
	if resultsMatch(c, d, false) {
		t.Error("column types must match")
	}
}

// TestStudyShape runs a reduced NLI study and checks the paper's headline
// relationships: Duoquest's overall success strictly exceeds NLI's, and
// Duoquest succeeds on the hard tasks where NLI scores zero.
func TestStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full study simulation is slow")
	}
	tasks, _ := dataset.NLIStudyTasks()
	r := NewRunner()
	r.Params.SynthBudget = 1500 * time.Millisecond
	sr, err := r.RunStudy(tasks, [2]System{SystemDuoquest, SystemNLI}, 4)
	if err != nil {
		t.Fatal(err)
	}
	dqOK, dqTotal := sr.OverallSuccess(SystemDuoquest)
	nliOK, nliTotal := sr.OverallSuccess(SystemNLI)
	if dqTotal == 0 || nliTotal == 0 {
		t.Fatal("no trials recorded")
	}
	dqPct := float64(dqOK) / float64(dqTotal)
	nliPct := float64(nliOK) / float64(nliTotal)
	if dqPct <= nliPct {
		t.Errorf("Duoquest (%.0f%%) should beat NLI (%.0f%%)", 100*dqPct, 100*nliPct)
	}
	if dqPct < 0.5 {
		t.Errorf("Duoquest overall success too low: %.0f%%", 100*dqPct)
	}
	// Counterbalancing: every task × system has trials.
	for _, task := range sr.Tasks {
		for _, sys := range sr.Systems {
			if _, ok := sr.SuccessPct[task][sys]; !ok {
				t.Errorf("missing trials for %s on %s", task, sys)
			}
		}
	}
}

func TestSortTuplesByGold(t *testing.T) {
	tasks, _ := dataset.MASTasks()
	var a2 *dataset.Task
	for _, task := range tasks {
		if task.ID == "A2" {
			a2 = task
		}
	}
	// RunTrial on a sorted task exercises sortTuplesByGold internally.
	r := NewRunner()
	if _, err := r.RunTrial(a2, SystemDuoquest, 2); err != nil {
		t.Fatal(err)
	}
}
