// Package simulate models the paper's user studies (§5.1–§5.3) with a
// seeded stochastic user: 16 subjects, a 5-minute budget per task trial, a
// 10-fact bank of domain knowledge, and the per-system interaction flows the
// paper describes — typing an NLQ, entering example tuples, scanning ranked
// candidates with query previews (Duoquest/NLI), or reviewing abduced
// filters (PBE).
//
// All behavioural parameters are explicit in UserParams; DESIGN.md §3
// documents the substitution of human subjects by this model.
package simulate

import (
	"context"
	"math/rand"
	"strings"
	"time"

	"github.com/duoquest/duoquest/internal/dataset"
	"github.com/duoquest/duoquest/internal/enumerate"
	"github.com/duoquest/duoquest/internal/guidance"
	"github.com/duoquest/duoquest/internal/nli"
	"github.com/duoquest/duoquest/internal/pbe"
	"github.com/duoquest/duoquest/internal/semrules"
	"github.com/duoquest/duoquest/internal/sqlexec"
	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/tsq"
	"github.com/duoquest/duoquest/internal/verify"
)

// System identifies the system under trial.
type System uint8

// Systems compared in the user studies.
const (
	SystemDuoquest System = iota
	SystemNLI
	SystemPBE
)

// String names the system.
func (s System) String() string {
	switch s {
	case SystemDuoquest:
		return "Duoquest"
	case SystemNLI:
		return "NLI"
	default:
		return "PBE"
	}
}

// UserParams are the simulated user's behavioural constants.
type UserParams struct {
	// Budget is the per-trial time limit (5 minutes in the study).
	Budget time.Duration
	// TypeWord is the time to type one NLQ word.
	TypeWord time.Duration
	// EnterCell is the time to enter one example cell (with autocomplete).
	EnterCell time.Duration
	// ReadCandidate is the time to inspect one plausible candidate SQL
	// query in detail.
	ReadCandidate time.Duration
	// SkimCandidate is the time to dismiss a visibly wrong candidate
	// (wrong projection shape at a glance).
	SkimCandidate time.Duration
	// PreviewCheck is the extra time for a "Query Preview" fact check.
	PreviewCheck time.Duration
	// ReviewFilters is the time to review PBE's abduced filter list.
	ReviewFilters time.Duration
	// RecognizeProb is the chance of recognising the desired query when it
	// is inspected.
	RecognizeProb float64
	// LatencyScale converts the engine's wall-clock candidate arrival
	// times into simulated-study time, standing in for the paper's GPU
	// inference latency.
	LatencyScale float64
	// SynthBudget bounds the engine's real search time per trial.
	SynthBudget time.Duration
	// MaxCandidates bounds the ranked list length per trial.
	MaxCandidates int
}

// DefaultUserParams mirrors the study setup (5-minute budget) with
// inspection costs in the range the paper's per-task times imply.
func DefaultUserParams() UserParams {
	return UserParams{
		Budget:        5 * time.Minute,
		TypeWord:      2200 * time.Millisecond,
		EnterCell:     4 * time.Second,
		ReadCandidate: 5 * time.Second,
		SkimCandidate: 1500 * time.Millisecond,
		PreviewCheck:  6 * time.Second,
		ReviewFilters: 25 * time.Second,
		RecognizeProb: 0.95,
		LatencyScale:  40,
		SynthBudget:   2 * time.Second,
		MaxCandidates: 120,
	}
}

// Trial is the outcome of one (user, task, system) trial.
type Trial struct {
	TaskID   string
	System   System
	User     int
	Success  bool
	Duration time.Duration // simulated user time
	Examples int           // example tuples entered
}

// Runner executes user-study trials.
type Runner struct {
	Params UserParams
}

// NewRunner builds a runner with default parameters.
func NewRunner() *Runner { return &Runner{Params: DefaultUserParams()} }

// RunTrial simulates one trial of a task on a system by one user.
func (r *Runner) RunTrial(task *dataset.Task, sys System, user int) (*Trial, error) {
	seed := int64(user)*1_000_003 + int64(len(task.ID))*7919 + int64(task.ID[0])*131 + int64(task.ID[len(task.ID)-1])
	rng := rand.New(rand.NewSource(seed))
	switch sys {
	case SystemPBE:
		return r.runPBETrial(task, user, rng)
	default:
		return r.runRankedListTrial(task, sys, user, rng)
	}
}

// goldRows executes the gold query once for fact checking.
func goldRows(task *dataset.Task) (*sqlexec.Result, error) {
	return sqlexec.Execute(task.DB, task.Gold)
}

// resultsMatch compares a candidate's result with the gold result: equal
// multisets of rows, in order when the gold query sorts.
func resultsMatch(gold, cand *sqlexec.Result, ordered bool) bool {
	if len(gold.Rows) != len(cand.Rows) || len(gold.Types) != len(cand.Types) {
		return false
	}
	for i := range gold.Types {
		if gold.Types[i] != cand.Types[i] {
			return false
		}
	}
	key := func(row []sqlir.Value) string {
		var b strings.Builder
		for _, v := range row {
			b.WriteString(v.String())
			b.WriteByte(0)
		}
		return b.String()
	}
	if ordered {
		for i := range gold.Rows {
			if key(gold.Rows[i]) != key(cand.Rows[i]) {
				return false
			}
		}
		return true
	}
	counts := map[string]int{}
	for _, row := range gold.Rows {
		counts[key(row)]++
	}
	for _, row := range cand.Rows {
		counts[key(row)]--
		if counts[key(row)] < 0 {
			return false
		}
	}
	return true
}

// runRankedListTrial simulates the Duoquest and NLI flows: type the NLQ,
// optionally enter example tuples (Duoquest), then scan the ranked list,
// previewing candidates against the fact bank.
func (r *Runner) runRankedListTrial(task *dataset.Task, sys System, user int, rng *rand.Rand) (*Trial, error) {
	p := r.Params
	trial := &Trial{TaskID: task.ID, System: sys, User: user}

	facts, err := dataset.FactBank(task, rng.Int63())
	if err != nil {
		return nil, err
	}
	gold, err := goldRows(task)
	if err != nil {
		return nil, err
	}

	elapsed := time.Duration(0)
	// Type the NLQ.
	words := len(strings.Fields(task.NLQ))
	elapsed += time.Duration(words) * p.TypeWord

	var sketch *tsq.TSQ
	if sys == SystemDuoquest {
		// The user supplies 1–2 example tuples from the fact bank (§5.2:
		// mean examples fell between 1 and 1.5 per task).
		trial.Examples = 1 + rng.Intn(2)
		if trial.Examples > len(facts) {
			trial.Examples = len(facts)
		}
		sketch = &tsq.TSQ{
			Types:  append([]sqlir.Type{}, gold.Types...),
			Sorted: task.Gold.OrderByState == sqlir.ClausePresent,
			Limit:  task.Gold.Limit,
		}
		for i := 0; i < trial.Examples; i++ {
			sketch.Tuples = append(sketch.Tuples, facts[i].Tuple)
			elapsed += time.Duration(len(facts[i].Tuple)) * p.EnterCell
		}
		if sketch.Sorted {
			// Order the example tuples as the gold result orders them
			// (the user knows the expected ordering of their own facts).
			sortTuplesByGold(sketch, gold)
		}
	}

	// Run the engine.
	candidates, err := r.synthesize(task, sketch, sys)
	if err != nil {
		return nil, err
	}

	// Scan the ranked list.
	for _, c := range candidates {
		arrival := time.Duration(float64(c.Elapsed) * p.LatencyScale)
		if arrival > elapsed {
			elapsed = arrival
		}
		// A glance at the projection shape dismisses obviously wrong
		// candidates cheaply (§5.1.4: "eyeballing the selection
		// predicates").
		if len(c.Query.Select) != len(gold.Types) {
			elapsed += p.SkimCandidate
			if elapsed > p.Budget {
				trial.Duration = p.Budget
				return trial, nil
			}
			continue
		}
		elapsed += p.ReadCandidate
		if elapsed > p.Budget {
			trial.Duration = p.Budget
			return trial, nil
		}
		res, err := sqlexec.Execute(task.DB, c.Query)
		if err != nil {
			continue
		}
		correct := sqlir.Equivalent(c.Query, task.Gold) ||
			resultsMatch(gold, res, task.Gold.OrderByState == sqlir.ClausePresent)
		if !correct {
			// A preview against the facts rejects most wrong candidates
			// quickly; visibly inconsistent ones cost no preview.
			if dataset.VerifyAgainstFacts(res, facts) == len(facts) && sameWidth(res, gold) {
				elapsed += p.PreviewCheck
			}
			continue
		}
		// The desired query: the user recognises it with high probability
		// after a preview.
		elapsed += p.PreviewCheck
		if rng.Float64() < p.RecognizeProb {
			trial.Success = elapsed <= p.Budget
			if elapsed > p.Budget {
				elapsed = p.Budget
			}
			trial.Duration = elapsed
			return trial, nil
		}
	}
	trial.Duration = p.Budget
	return trial, nil
}

func sameWidth(a, b *sqlexec.Result) bool { return len(a.Types) == len(b.Types) }

// sortTuplesByGold reorders sketch tuples to match the gold result order.
func sortTuplesByGold(sk *tsq.TSQ, gold *sqlexec.Result) {
	pos := func(tp tsq.Tuple) int {
		for i, row := range gold.Rows {
			probe := tsq.TSQ{Tuples: []tsq.Tuple{tp}}
			if probe.Satisfies(&sqlexec.Result{Types: gold.Types, Rows: [][]sqlir.Value{row}}) {
				return i
			}
		}
		return len(gold.Rows)
	}
	for i := 0; i < len(sk.Tuples); i++ {
		for j := i + 1; j < len(sk.Tuples); j++ {
			if pos(sk.Tuples[j]) < pos(sk.Tuples[i]) {
				sk.Tuples[i], sk.Tuples[j] = sk.Tuples[j], sk.Tuples[i]
			}
		}
	}
}

// synthesize runs the underlying engine for a ranked-list system.
func (r *Runner) synthesize(task *dataset.Task, sketch *tsq.TSQ, sys System) ([]enumerate.Candidate, error) {
	p := r.Params
	if sys == SystemNLI {
		base := nli.New(task.DB)
		res, err := base.Synthesize(context.Background(), task.NLQ, task.Literals,
			nli.Options{MaxCandidates: p.MaxCandidates, Budget: p.SynthBudget}, nil)
		if err != nil {
			return nil, err
		}
		return res.Candidates, nil
	}
	v := verify.New(task.DB, semrules.Default(), sketch, task.Literals)
	e := enumerate.New(task.DB, guidance.NewLexicalModel(), v, enumerate.Options{
		Mode:          enumerate.ModeGPQE,
		MaxCandidates: p.MaxCandidates,
		Budget:        p.SynthBudget,
	})
	res, err := e.Enumerate(context.Background(), task.NLQ, task.Literals, nil)
	if err != nil {
		return nil, err
	}
	return res.Candidates, nil
}

// runPBETrial simulates the SQuID flow: enter 2–4 full example tuples, get
// one output, review the filter checklist.
func (r *Runner) runPBETrial(task *dataset.Task, user int, rng *rand.Rand) (*Trial, error) {
	p := r.Params
	trial := &Trial{TaskID: task.ID, System: SystemPBE, User: user}
	facts, err := dataset.FactBank(task, rng.Int63())
	if err != nil {
		return nil, err
	}

	// PBE requires full, exact tuples: project facts onto exact text cells
	// where possible (§5.3: users issue more examples on PBE, Figure 9).
	trial.Examples = 2 + rng.Intn(3)
	var examples []tsq.Tuple
	for _, f := range facts {
		if len(examples) >= trial.Examples {
			break
		}
		exact := true
		for _, c := range f.Tuple {
			if c.Kind != tsq.CellExact || c.Val.Kind != sqlir.KindText {
				exact = false
				break
			}
		}
		if exact {
			examples = append(examples, f.Tuple)
		}
	}
	trial.Examples = len(examples)

	elapsed := time.Duration(0)
	for _, ex := range examples {
		elapsed += time.Duration(len(ex)) * p.EnterCell
	}
	if len(examples) == 0 {
		// The task's facts cannot be expressed as full exact tuples: the
		// user cannot operate the system.
		trial.Duration = p.Budget
		return trial, nil
	}

	sys := pbe.New(task.DB, pbe.DefaultOptions())
	out, err := sys.Synthesize(examples)
	if err != nil {
		return nil, err
	}
	elapsed += p.ReviewFilters
	if elapsed > p.Budget {
		trial.Duration = p.Budget
		return trial, nil
	}
	if supported, _ := pbe.Supports(task.Gold, task.DB.Schema); supported && out.Correct(task.Gold) {
		// The user must check exactly the right filters in the suggested
		// list; longer lists invite mistakes.
		selectOK := 1 - 0.004*float64(len(out.Filters))
		if selectOK < 0.8 {
			selectOK = 0.8
		}
		trial.Success = rng.Float64() < selectOK
	}
	trial.Duration = elapsed
	return trial, nil
}

// StudyResult aggregates trials per task and system.
type StudyResult struct {
	Tasks   []string
	Systems []System
	// SuccessPct[task][system] is the % of successful trials (Figures 5, 7).
	SuccessPct map[string]map[System]float64
	// MeanTime[task][system] is the mean duration of successful trials
	// (Figures 6, 8); zero when no trial succeeded.
	MeanTime map[string]map[System]time.Duration
	// MeanExamples[task][system] is the mean example count of successful
	// trials (Figure 9).
	MeanExamples map[string]map[System]float64
	Trials       []*Trial
}

// RunStudy executes a within-subject study: nUsers users, each task tried on
// both systems following the paper's counterbalanced design (half the users
// see set 1 on system A first, half on system B), yielding nUsers/2 trials
// per (task, system).
func (r *Runner) RunStudy(tasks []*dataset.Task, systems [2]System, nUsers int) (*StudyResult, error) {
	sr := &StudyResult{
		Systems:      systems[:],
		SuccessPct:   map[string]map[System]float64{},
		MeanTime:     map[string]map[System]time.Duration{},
		MeanExamples: map[string]map[System]float64{},
	}
	half := len(tasks) / 2
	for _, task := range tasks {
		sr.Tasks = append(sr.Tasks, task.ID)
	}
	for user := 0; user < nUsers; user++ {
		for ti, task := range tasks {
			// Counterbalancing: the first half of users run the first
			// task set on systems[0]; the second half swap.
			sysIdx := 0
			if (ti >= half) != (user >= nUsers/2) {
				sysIdx = 1
			}
			trial, err := r.RunTrial(task, systems[sysIdx], user)
			if err != nil {
				return nil, err
			}
			sr.Trials = append(sr.Trials, trial)
		}
	}
	// Aggregate.
	type agg struct {
		n, ok    int
		dur      time.Duration
		examples int
	}
	stats := map[string]map[System]*agg{}
	for _, tr := range sr.Trials {
		if stats[tr.TaskID] == nil {
			stats[tr.TaskID] = map[System]*agg{}
		}
		if stats[tr.TaskID][tr.System] == nil {
			stats[tr.TaskID][tr.System] = &agg{}
		}
		a := stats[tr.TaskID][tr.System]
		a.n++
		if tr.Success {
			a.ok++
			a.dur += tr.Duration
			a.examples += tr.Examples
		}
	}
	for task, bySys := range stats {
		sr.SuccessPct[task] = map[System]float64{}
		sr.MeanTime[task] = map[System]time.Duration{}
		sr.MeanExamples[task] = map[System]float64{}
		for sys, a := range bySys {
			sr.SuccessPct[task][sys] = 100 * float64(a.ok) / float64(a.n)
			if a.ok > 0 {
				sr.MeanTime[task][sys] = a.dur / time.Duration(a.ok)
				sr.MeanExamples[task][sys] = float64(a.examples) / float64(a.ok)
			}
		}
	}
	return sr, nil
}

// OverallSuccess returns total successful trials and trial count for a
// system.
func (sr *StudyResult) OverallSuccess(sys System) (ok, total int) {
	for _, tr := range sr.Trials {
		if tr.System != sys {
			continue
		}
		total++
		if tr.Success {
			ok++
		}
	}
	return ok, total
}
