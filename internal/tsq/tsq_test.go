package tsq

import (
	"strings"
	"testing"

	"github.com/duoquest/duoquest/internal/sqlexec"
	"github.com/duoquest/duoquest/internal/sqlir"
)

func text(s string) sqlir.Value { return sqlir.NewText(s) }
func num(f float64) sqlir.Value { return sqlir.NewNumber(f) }

func TestCellMatches(t *testing.T) {
	cases := []struct {
		cell Cell
		v    sqlir.Value
		want bool
	}{
		{Empty(), text("anything"), true},
		{Empty(), sqlir.Null(), true},
		{Exact(text("Tom Hanks")), text("Tom Hanks"), true},
		{Exact(text("Tom Hanks")), text("tom hanks"), true}, // case-insensitive
		{Exact(text("Tom Hanks")), text("Brad Pitt"), false},
		{Exact(num(1994)), num(1994), true},
		{Exact(num(1994)), num(1995), false},
		{Exact(num(1994)), text("1994"), false},
		{Range(2010, 2017), num(2013), true},
		{Range(2010, 2017), num(2010), true}, // inclusive
		{Range(2010, 2017), num(2017), true},
		{Range(2010, 2017), num(2009), false},
		{Range(2010, 2017), text("2013"), false},
		{Range(2010, 2017), sqlir.Null(), false},
	}
	for _, c := range cases {
		if got := c.cell.Matches(c.v); got != c.want {
			t.Errorf("%v.Matches(%v) = %v, want %v", c.cell, c.v, got, c.want)
		}
	}
}

func TestCellType(t *testing.T) {
	if Empty().Type() != sqlir.TypeUnknown {
		t.Error("empty cell type")
	}
	if Exact(text("x")).Type() != sqlir.TypeText {
		t.Error("exact text type")
	}
	if Range(1, 2).Type() != sqlir.TypeNumber {
		t.Error("range type")
	}
}

func TestCellString(t *testing.T) {
	if Empty().String() != "_" {
		t.Error("empty cell string")
	}
	if Exact(text("X")).String() != "X" {
		t.Error("exact string")
	}
	if Range(2010, 2017).String() != "[2010,2017]" {
		t.Errorf("range string = %q", Range(2010, 2017).String())
	}
}

// kevinTSQ is the paper's Table 2 example.
func kevinTSQ() *TSQ {
	return &TSQ{
		Types: []sqlir.Type{sqlir.TypeText, sqlir.TypeText, sqlir.TypeNumber},
		Tuples: []Tuple{
			{Exact(text("Forrest Gump")), Exact(text("Tom Hanks")), Empty()},
			{Exact(text("Gravity")), Exact(text("Sandra Bullock")), Range(2010, 2017)},
		},
		Sorted: false,
		Limit:  0,
	}
}

func TestValidateOK(t *testing.T) {
	if err := kevinTSQ().Validate(); err != nil {
		t.Fatalf("Table 2 TSQ should validate: %v", err)
	}
	empty := &TSQ{}
	if err := empty.Validate(); err != nil {
		t.Fatalf("empty TSQ should validate: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		tsq  *TSQ
		want string
	}{
		{"ragged tuples", &TSQ{Tuples: []Tuple{
			{Exact(text("a"))},
			{Exact(text("a")), Exact(text("b"))},
		}}, "cells"},
		{"tuple wider than types", &TSQ{
			Types:  []sqlir.Type{sqlir.TypeText},
			Tuples: []Tuple{{Exact(text("a")), Exact(text("b"))}},
		}, "cells"},
		{"inverted range", &TSQ{Tuples: []Tuple{{Cell{Kind: CellRange, Lo: num(5), Hi: num(1)}}}}, "empty range"},
		{"non-numeric range", &TSQ{Tuples: []Tuple{{Cell{Kind: CellRange, Lo: text("a"), Hi: text("b")}}}}, "numeric"},
		{"type clash", &TSQ{
			Types:  []sqlir.Type{sqlir.TypeNumber},
			Tuples: []Tuple{{Exact(text("a"))}},
		}, "annotation"},
		{"negative limit", &TSQ{Limit: -1}, "negative limit"},
		{"tuples exceed limit", &TSQ{
			Limit:  1,
			Tuples: []Tuple{{Exact(text("a"))}, {Exact(text("b"))}},
		}, "cannot fit"},
	}
	for _, c := range cases {
		err := c.tsq.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.want)
		}
	}
}

func TestWidth(t *testing.T) {
	if kevinTSQ().Width() != 3 {
		t.Error("width from types")
	}
	noTypes := &TSQ{Tuples: []Tuple{{Empty(), Empty()}}}
	if noTypes.Width() != 2 {
		t.Error("width from tuples")
	}
	if (&TSQ{}).Width() != 0 {
		t.Error("empty width")
	}
}

func mkResult(types []sqlir.Type, rows ...[]sqlir.Value) *sqlexec.Result {
	return &sqlexec.Result{Types: types, Rows: rows}
}

var ttn = []sqlir.Type{sqlir.TypeText, sqlir.TypeText, sqlir.TypeNumber}

// TestSatisfiesMotivatingExample mirrors §2: CQ3's output satisfies the TSQ,
// CQ1's (no Gravity row) does not, CQ2's (birth years) fails the range.
func TestSatisfiesMotivatingExample(t *testing.T) {
	sketch := kevinTSQ()
	cq3 := mkResult(ttn,
		[]sqlir.Value{text("Forrest Gump"), text("Tom Hanks"), num(1994)},
		[]sqlir.Value{text("Gravity"), text("Sandra Bullock"), num(2013)},
		[]sqlir.Value{text("Fight Club"), text("Brad Pitt"), num(1999)},
	)
	if !sketch.Satisfies(cq3) {
		t.Error("CQ3 output should satisfy the TSQ (open world: extra rows fine)")
	}
	cq1 := mkResult(ttn,
		[]sqlir.Value{text("Forrest Gump"), text("Tom Hanks"), num(1994)},
	)
	if sketch.Satisfies(cq1) {
		t.Error("CQ1 output lacks the Gravity tuple")
	}
	cq2 := mkResult(ttn,
		[]sqlir.Value{text("Forrest Gump"), text("Tom Hanks"), num(1956)},
		[]sqlir.Value{text("Gravity"), text("Sandra Bullock"), num(1964)},
	)
	if sketch.Satisfies(cq2) {
		t.Error("CQ2 output fails the [2010,2017] range")
	}
}

func TestSatisfiesTypeMismatch(t *testing.T) {
	sketch := kevinTSQ()
	wrongTypes := mkResult([]sqlir.Type{sqlir.TypeText, sqlir.TypeText, sqlir.TypeText},
		[]sqlir.Value{text("Forrest Gump"), text("Tom Hanks"), text("x")},
		[]sqlir.Value{text("Gravity"), text("Sandra Bullock"), text("y")},
	)
	if sketch.Satisfies(wrongTypes) {
		t.Error("type annotation mismatch should fail")
	}
	wrongWidth := mkResult([]sqlir.Type{sqlir.TypeText},
		[]sqlir.Value{text("Forrest Gump")},
	)
	if sketch.Satisfies(wrongWidth) {
		t.Error("width mismatch should fail")
	}
}

func TestSatisfiesDistinctness(t *testing.T) {
	// Two identical example tuples need two distinct matching rows.
	sketch := &TSQ{Tuples: []Tuple{
		{Exact(text("A"))},
		{Exact(text("A"))},
	}}
	one := mkResult([]sqlir.Type{sqlir.TypeText}, []sqlir.Value{text("A")})
	if sketch.Satisfies(one) {
		t.Error("one row cannot satisfy two tuples")
	}
	two := mkResult([]sqlir.Type{sqlir.TypeText},
		[]sqlir.Value{text("A")}, []sqlir.Value{text("A")})
	if !sketch.Satisfies(two) {
		t.Error("two rows satisfy two tuples")
	}
}

// TestSatisfiesMatchingRequiresAugmenting builds the case where greedy
// assignment fails but a perfect matching exists: tuple0 matches rows {0,1},
// tuple1 matches only row 0.
func TestSatisfiesMatchingRequiresAugmenting(t *testing.T) {
	sketch := &TSQ{Tuples: []Tuple{
		{Empty(), Exact(num(1))},          // matches rows 0 and 1
		{Exact(text("a")), Exact(num(1))}, // matches only row 0
	}}
	res := mkResult([]sqlir.Type{sqlir.TypeText, sqlir.TypeNumber},
		[]sqlir.Value{text("a"), num(1)},
		[]sqlir.Value{text("b"), num(1)},
	)
	if !sketch.Satisfies(res) {
		t.Error("augmenting matching should find the assignment")
	}
}

func TestSatisfiesSorted(t *testing.T) {
	sketch := &TSQ{
		Sorted: true,
		Tuples: []Tuple{
			{Exact(text("A"))},
			{Exact(text("B"))},
		},
	}
	inOrder := mkResult([]sqlir.Type{sqlir.TypeText},
		[]sqlir.Value{text("X")}, []sqlir.Value{text("A")}, []sqlir.Value{text("B")})
	if !sketch.Satisfies(inOrder) {
		t.Error("A before B holds")
	}
	outOfOrder := mkResult([]sqlir.Type{sqlir.TypeText},
		[]sqlir.Value{text("B")}, []sqlir.Value{text("A")})
	if sketch.Satisfies(outOfOrder) {
		t.Error("B before A violates order")
	}
}

func TestSatisfiesLimit(t *testing.T) {
	sketch := &TSQ{Limit: 2, Tuples: []Tuple{{Exact(text("A"))}}}
	ok := mkResult([]sqlir.Type{sqlir.TypeText},
		[]sqlir.Value{text("A")}, []sqlir.Value{text("B")})
	if !sketch.Satisfies(ok) {
		t.Error("2 rows within limit 2")
	}
	tooMany := mkResult([]sqlir.Type{sqlir.TypeText},
		[]sqlir.Value{text("A")}, []sqlir.Value{text("B")}, []sqlir.Value{text("C")})
	if sketch.Satisfies(tooMany) {
		t.Error("3 rows exceed limit 2")
	}
}

func TestSatisfiesNoConstraints(t *testing.T) {
	empty := &TSQ{}
	res := mkResult([]sqlir.Type{sqlir.TypeText}, []sqlir.Value{text("A")})
	if !empty.Satisfies(res) {
		t.Error("unconstrained TSQ satisfies everything")
	}
	if empty.Satisfies(nil) {
		t.Error("nil result never satisfies")
	}
}

func TestSatisfiesUnknownTypeAnnotation(t *testing.T) {
	sketch := &TSQ{Types: []sqlir.Type{sqlir.TypeUnknown}}
	res := mkResult([]sqlir.Type{sqlir.TypeText}, []sqlir.Value{text("A")})
	if !sketch.Satisfies(res) {
		t.Error("unknown annotation matches any type")
	}
}

// Property: making a cell less specific (exact -> range -> empty) never
// shrinks the set of satisfied results.
func TestPropCellSpecificityMonotone(t *testing.T) {
	vals := []sqlir.Value{num(5), num(10), num(15), text("x"), sqlir.Null()}
	exact := Exact(num(10))
	rng := Range(5, 15)
	empty := Empty()
	for _, v := range vals {
		if exact.Matches(v) && !rng.Matches(v) {
			t.Errorf("range should cover exact for %v", v)
		}
		if rng.Matches(v) && !empty.Matches(v) {
			t.Errorf("empty should cover range for %v", v)
		}
	}
}

func TestTSQString(t *testing.T) {
	s := kevinTSQ().String()
	for _, want := range []string{"Forrest Gump", "[2010,2017]", "sorted=false", "limit=0"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
