// Package tsq implements the table sketch query (Definitions 2.3 and 2.4):
// the PBE-like half of Duoquest's dual specification. A TSQ carries optional
// column type annotations, optional example tuples whose cells may be exact,
// empty, or ranges, a sorted flag, and a top-k limit.
package tsq

import (
	"fmt"
	"strings"

	"github.com/duoquest/duoquest/internal/sqlexec"
	"github.com/duoquest/duoquest/internal/sqlir"
)

// CellKind discriminates example tuple cells (Table 2).
type CellKind uint8

const (
	// CellEmpty matches any value.
	CellEmpty CellKind = iota
	// CellExact matches only the identical value.
	CellExact
	// CellRange matches numeric values within [Lo, Hi].
	CellRange
)

// Cell is one cell of an example tuple.
type Cell struct {
	Kind   CellKind
	Val    sqlir.Value // exact value
	Lo, Hi sqlir.Value // inclusive numeric range bounds
}

// Empty returns a cell matching any value.
func Empty() Cell { return Cell{Kind: CellEmpty} }

// Exact returns a cell matching exactly v.
func Exact(v sqlir.Value) Cell { return Cell{Kind: CellExact, Val: v} }

// Range returns a cell matching numbers within [lo, hi].
func Range(lo, hi float64) Cell {
	return Cell{Kind: CellRange, Lo: sqlir.NewNumber(lo), Hi: sqlir.NewNumber(hi)}
}

// Matches reports whether a result cell satisfies this example cell.
func (c Cell) Matches(v sqlir.Value) bool {
	switch c.Kind {
	case CellEmpty:
		return true
	case CellExact:
		if c.Val.Kind == sqlir.KindText && v.Kind == sqlir.KindText {
			// Text matching is case-insensitive, mirroring the
			// autocomplete interface's behaviour.
			return strings.EqualFold(c.Val.Text, v.Text)
		}
		return c.Val.Equal(v)
	case CellRange:
		if v.Kind != sqlir.KindNumber {
			return false
		}
		return v.Num >= c.Lo.Num && v.Num <= c.Hi.Num
	default:
		return false
	}
}

// Type returns the type implied by the cell, or TypeUnknown for empty cells.
func (c Cell) Type() sqlir.Type {
	switch c.Kind {
	case CellExact:
		return c.Val.Type()
	case CellRange:
		return sqlir.TypeNumber
	default:
		return sqlir.TypeUnknown
	}
}

// String renders the cell for display.
func (c Cell) String() string {
	switch c.Kind {
	case CellEmpty:
		return "_"
	case CellExact:
		return c.Val.Display()
	case CellRange:
		return "[" + c.Lo.Display() + "," + c.Hi.Display() + "]"
	default:
		return "?"
	}
}

// Tuple is one example tuple.
type Tuple []Cell

// String renders the tuple.
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, c := range t {
		parts[i] = c.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// TSQ is a table sketch query T = (α, χ, τ, k).
type TSQ struct {
	// Types is the optional list of column type annotations α; nil means
	// unannotated.
	Types []sqlir.Type
	// Tuples is the optional list of example tuples χ.
	Tuples []Tuple
	// Sorted is the sorting flag τ.
	Sorted bool
	// Limit is k; 0 indicates no limit.
	Limit int
}

// Width returns the number of columns the TSQ constrains, or 0 when it
// constrains none.
func (t *TSQ) Width() int {
	if len(t.Types) > 0 {
		return len(t.Types)
	}
	if len(t.Tuples) > 0 {
		return len(t.Tuples[0])
	}
	return 0
}

// Validate checks internal consistency: uniform tuple widths, tuple widths
// agreeing with annotations, well-formed ranges, and cells whose implied
// type is consistent with the annotation.
func (t *TSQ) Validate() error {
	w := t.Width()
	for i, tp := range t.Tuples {
		if len(tp) != w {
			return fmt.Errorf("tsq: tuple %d has %d cells, want %d", i, len(tp), w)
		}
		for j, c := range tp {
			if c.Kind == CellRange {
				if c.Lo.Kind != sqlir.KindNumber || c.Hi.Kind != sqlir.KindNumber {
					return fmt.Errorf("tsq: tuple %d cell %d: range bounds must be numeric", i, j)
				}
				if c.Lo.Num > c.Hi.Num {
					return fmt.Errorf("tsq: tuple %d cell %d: empty range [%v,%v]", i, j, c.Lo, c.Hi)
				}
			}
			if len(t.Types) > 0 {
				ct := c.Type()
				if ct != sqlir.TypeUnknown && t.Types[j] != sqlir.TypeUnknown && ct != t.Types[j] {
					return fmt.Errorf("tsq: tuple %d cell %d: %s cell under %s annotation", i, j, ct, t.Types[j])
				}
			}
		}
	}
	if t.Limit < 0 {
		return fmt.Errorf("tsq: negative limit %d", t.Limit)
	}
	if t.Limit > 0 && len(t.Tuples) > t.Limit {
		return fmt.Errorf("tsq: %d example tuples cannot fit in limit %d", len(t.Tuples), t.Limit)
	}
	return nil
}

// String renders the sketch.
func (t *TSQ) String() string {
	var b strings.Builder
	b.WriteString("TSQ{")
	if len(t.Types) > 0 {
		names := make([]string, len(t.Types))
		for i, ty := range t.Types {
			names[i] = ty.String()
		}
		b.WriteString("types=[" + strings.Join(names, ",") + "] ")
	}
	for i, tp := range t.Tuples {
		if i > 0 {
			b.WriteString(" ")
		}
		b.WriteString(tp.String())
	}
	fmt.Fprintf(&b, " sorted=%v limit=%d}", t.Sorted, t.Limit)
	return b.String()
}

// Satisfies implements Definition 2.4 against a materialized result:
//
//  1. column types match the annotations (if α present);
//  2. each example tuple is satisfied by a distinct result tuple;
//  3. if sorted, the satisfying tuples appear in the example order;
//  4. if k > 0, the result has at most k rows.
//
// The result's column count must equal the TSQ width when the TSQ
// constrains columns at all.
func (t *TSQ) Satisfies(res *sqlexec.Result) bool {
	if res == nil {
		return false
	}
	if w := t.Width(); w > 0 && len(res.Types) != w {
		return false
	}
	if len(t.Types) > 0 {
		for i, ty := range t.Types {
			if ty != sqlir.TypeUnknown && res.Types[i] != ty {
				return false
			}
		}
	}
	if t.Limit > 0 && len(res.Rows) > t.Limit {
		return false
	}
	if len(t.Tuples) == 0 {
		return true
	}
	if t.Sorted {
		return matchInOrder(t.Tuples, res.Rows)
	}
	return matchDistinct(t.Tuples, res.Rows)
}

// tupleMatchesRow checks every cell.
func tupleMatchesRow(tp Tuple, row []sqlir.Value) bool {
	if len(tp) != len(row) {
		return false
	}
	for i, c := range tp {
		if !c.Matches(row[i]) {
			return false
		}
	}
	return true
}

// matchInOrder greedily assigns each example tuple the earliest matching row
// after the previous assignment (order-respecting distinct matching; greedy
// earliest-match is exact for subsequence matching).
func matchInOrder(tuples []Tuple, rows [][]sqlir.Value) bool {
	next := 0
	for _, tp := range tuples {
		found := -1
		for i := next; i < len(rows); i++ {
			if tupleMatchesRow(tp, rows[i]) {
				found = i
				break
			}
		}
		if found < 0 {
			return false
		}
		next = found + 1
	}
	return true
}

// matchDistinct finds a perfect matching of example tuples onto distinct
// result rows via augmenting paths (tuple counts are small; rows may be
// many).
func matchDistinct(tuples []Tuple, rows [][]sqlir.Value) bool {
	// candidate rows per tuple
	cand := make([][]int, len(tuples))
	for i, tp := range tuples {
		for j, row := range rows {
			if tupleMatchesRow(tp, row) {
				cand[i] = append(cand[i], j)
			}
		}
		if len(cand[i]) == 0 {
			return false
		}
	}
	rowOwner := map[int]int{} // row -> tuple
	var try func(i int, visited map[int]bool) bool
	try = func(i int, visited map[int]bool) bool {
		for _, r := range cand[i] {
			if visited[r] {
				continue
			}
			visited[r] = true
			owner, taken := rowOwner[r]
			if !taken || try(owner, visited) {
				rowOwner[r] = i
				return true
			}
		}
		return false
	}
	for i := range tuples {
		if !try(i, map[int]bool{}) {
			return false
		}
	}
	return true
}
