package tsq

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/duoquest/duoquest/internal/sqlexec"
	"github.com/duoquest/duoquest/internal/sqlir"
)

// genResult builds a random single-text-column result.
func genResult(r *rand.Rand, rows int) *sqlexec.Result {
	res := &sqlexec.Result{Types: []sqlir.Type{sqlir.TypeText, sqlir.TypeNumber}}
	for i := 0; i < rows; i++ {
		res.Rows = append(res.Rows, []sqlir.Value{
			sqlir.NewText(string(rune('a' + r.Intn(6)))),
			sqlir.NewInt(r.Intn(20)),
		})
	}
	return res
}

// Property: removing a tuple from a satisfied TSQ keeps it satisfied
// (constraints are monotone).
func TestQuickTupleRemovalMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for i := 0; i < 500; i++ {
		res := genResult(r, 2+r.Intn(8))
		// Build a sketch from two random result rows.
		var sk TSQ
		for k := 0; k < 2; k++ {
			row := res.Rows[r.Intn(len(res.Rows))]
			sk.Tuples = append(sk.Tuples, Tuple{Exact(row[0]), Exact(row[1])})
		}
		if !sk.Satisfies(res) {
			continue // duplicates may defeat distinct matching; skip
		}
		smaller := TSQ{Tuples: sk.Tuples[:1]}
		if !smaller.Satisfies(res) {
			t.Fatalf("removing a tuple broke satisfaction: %v on %v", smaller, res.Rows)
		}
	}
}

// Property: widening a cell (exact → range covering it → empty) keeps a
// satisfied TSQ satisfied.
func TestQuickCellWideningMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	for i := 0; i < 500; i++ {
		res := genResult(r, 1+r.Intn(8))
		row := res.Rows[r.Intn(len(res.Rows))]
		exact := TSQ{Tuples: []Tuple{{Exact(row[0]), Exact(row[1])}}}
		if !exact.Satisfies(res) {
			t.Fatalf("exact sketch must satisfy its source row")
		}
		widened := TSQ{Tuples: []Tuple{{Exact(row[0]), Range(row[1].Num-1, row[1].Num+1)}}}
		if !widened.Satisfies(res) {
			t.Fatal("range widening broke satisfaction")
		}
		empty := TSQ{Tuples: []Tuple{{Exact(row[0]), Empty()}}}
		if !empty.Satisfies(res) {
			t.Fatal("empty widening broke satisfaction")
		}
	}
}

// Property: adding rows to the result never breaks satisfaction when no
// limit is set (the open-world assumption).
func TestQuickOpenWorldMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for i := 0; i < 500; i++ {
		res := genResult(r, 1+r.Intn(6))
		row := res.Rows[0]
		sk := TSQ{Tuples: []Tuple{{Exact(row[0]), Exact(row[1])}}}
		if !sk.Satisfies(res) {
			t.Fatal("sketch must satisfy its source")
		}
		grown := &sqlexec.Result{Types: res.Types, Rows: append(res.Rows, genResult(r, 3).Rows...)}
		if !sk.Satisfies(grown) {
			t.Fatal("open world: extra rows broke satisfaction")
		}
	}
}

// Property: a limit k rejects exactly when the result exceeds k rows.
func TestQuickLimitThreshold(t *testing.T) {
	f := func(k uint8, rows uint8) bool {
		limit := int(k%10) + 1
		n := int(rows % 20)
		res := &sqlexec.Result{Types: []sqlir.Type{sqlir.TypeText}}
		for i := 0; i < n; i++ {
			res.Rows = append(res.Rows, []sqlir.Value{sqlir.NewText("x")})
		}
		sk := TSQ{Limit: limit}
		return sk.Satisfies(res) == (n <= limit)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ordered satisfaction implies unordered satisfaction.
func TestQuickOrderedImpliesUnordered(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	for i := 0; i < 500; i++ {
		res := genResult(r, 2+r.Intn(6))
		i1, i2 := r.Intn(len(res.Rows)), r.Intn(len(res.Rows))
		if i1 > i2 {
			i1, i2 = i2, i1
		}
		tuples := []Tuple{
			{Exact(res.Rows[i1][0]), Empty()},
			{Exact(res.Rows[i2][0]), Empty()},
		}
		ordered := TSQ{Sorted: true, Tuples: tuples}
		unordered := TSQ{Sorted: false, Tuples: tuples}
		if ordered.Satisfies(res) && !unordered.Satisfies(res) {
			t.Fatalf("ordered satisfied but unordered not: %v", res.Rows)
		}
	}
}
