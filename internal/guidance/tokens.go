package guidance

import (
	"strings"
	"unicode"
)

// Tokenize lower-cases and splits a natural language query (or schema
// identifier) into word tokens. Underscores split identifiers so that
// birth_yr matches "birth" and "yr".
func Tokenize(s string) []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range strings.ToLower(s) {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			cur.WriteRune(r)
		} else {
			flush()
		}
	}
	flush()
	return out
}

// synonyms maps a token to related tokens; matching through a synonym scores
// lower than an exact match. The table covers the generic vocabulary of the
// benchmark domains; domain-specific models can extend LexicalModel.Synonyms.
var synonyms = map[string][]string{
	"publication":  {"paper", "papers", "article", "articles", "publications", "work"},
	"paper":        {"publication", "publications", "article"},
	"author":       {"writer", "researcher", "authors", "people"},
	"name":         {"names", "called", "titled", "title"},
	"title":        {"titles", "name", "named", "called"},
	"year":         {"years", "date", "when", "time"},
	"count":        {"number", "many", "total"},
	"movie":        {"movies", "film", "films"},
	"actor":        {"actors", "actress", "actresses", "star", "stars", "starring"},
	"organization": {"organizations", "institution", "affiliation", "org"},
	"conference":   {"conferences", "venue", "venues"},
	"journal":      {"journals", "venue", "venues"},
	"keyword":      {"keywords", "topic", "topics", "term", "terms"},
	"domain":       {"domains", "area", "areas", "field", "fields"},
	"homepage":     {"homepages", "website", "websites", "url", "page"},
	"continent":    {"continents", "region"},
	"student":      {"students", "pupil", "pupils"},
	"teacher":      {"teachers", "instructor", "instructors", "professor"},
	"course":       {"courses", "class", "classes"},
	"grade":        {"grades", "score", "scores", "mark"},
	"price":        {"prices", "cost", "costs", "expensive", "cheap"},
	"salary":       {"salaries", "pay", "wage", "earnings", "paid"},
	"city":         {"cities", "town", "towns"},
	"country":      {"countries", "nation", "nations"},
	"population":   {"populations", "people", "inhabitants"},
	"airport":      {"airports"},
	"airline":      {"airlines", "carrier", "carriers"},
	"flight":       {"flights"},
	"employee":     {"employees", "staff", "worker", "workers"},
	"department":   {"departments", "dept"},
	"product":      {"products", "item", "items", "goods"},
	"customer":     {"customers", "client", "clients", "buyer", "buyers"},
	"order":        {"orders", "purchase", "purchases"},
	"patient":      {"patients"},
	"doctor":       {"doctors", "physician", "physicians"},
	"song":         {"songs", "track", "tracks"},
	"album":        {"albums", "record", "records"},
	"artist":       {"artists", "musician", "musicians", "singer", "singers", "band", "bands"},
	"team":         {"teams", "club", "clubs"},
	"player":       {"players", "athlete", "athletes"},
	"stadium":      {"stadiums", "arena", "arenas", "venue"},
	"capacity":     {"capacities", "seats", "size"},
	"budget":       {"budgets", "funding", "funds", "money"},
	"revenue":      {"revenues", "earnings", "income", "gross", "sales"},
	"rating":       {"ratings", "stars", "score", "rated"},
	"age":          {"ages", "old", "older", "young", "younger"},
	"gender":       {"sex", "male", "female"},
	"birth":        {"born", "birthday"},
	"yr":           {"year", "years"},
	"id":           {"identifier", "number"},
	"book":         {"books", "novel", "novels"},
	"branch":       {"branches", "store", "stores", "shop", "location"},
	"member":       {"members", "membership"},
	"room":         {"rooms"},
	"guest":        {"guests", "visitor", "visitors"},
	"hotel":        {"hotels"},
	"duration":     {"length", "time", "minutes", "long"},
	"genre":        {"genres", "kind", "type", "category", "style"},
	"wins":         {"won", "win", "victories"},
	"enrollment":   {"enrollments", "enrolled", "size"},
}

// related reports the match strength between two tokens: 1.0 exact, 0.8
// synonym, 0.6 shared 4+ character prefix (stemming-ish), 0 otherwise.
func related(a, b string) float64 {
	if a == b {
		return 1.0
	}
	for _, s := range synonyms[a] {
		if s == b {
			return 0.8
		}
	}
	for _, s := range synonyms[b] {
		if s == a {
			return 0.8
		}
	}
	if len(a) >= 4 && len(b) >= 4 {
		n := 4
		if a[:n] == b[:n] {
			return 0.6
		}
	}
	return 0
}

// tokenSetScore computes how strongly the NLQ token multiset evokes the
// identifier tokens: the mean, over identifier tokens, of the best NLQ
// match.
func tokenSetScore(nlq []string, ident []string) float64 {
	if len(ident) == 0 {
		return 0
	}
	total := 0.0
	for _, it := range ident {
		best := 0.0
		for _, nt := range nlq {
			if s := related(it, nt); s > best {
				best = s
			}
		}
		total += best
	}
	return total / float64(len(ident))
}

// containsPhrase reports whether the token sequence contains the given
// space-separated phrase contiguously.
func containsPhrase(tokens []string, phrase string) bool {
	words := strings.Fields(phrase)
	if len(words) == 0 {
		return false
	}
outer:
	for i := 0; i+len(words) <= len(tokens); i++ {
		for j, w := range words {
			if tokens[i+j] != w {
				continue outer
			}
		}
		return true
	}
	return false
}

// containsAny reports whether any of the phrases occurs.
func containsAny(tokens []string, phrases ...string) bool {
	for _, p := range phrases {
		if containsPhrase(tokens, p) {
			return true
		}
	}
	return false
}
