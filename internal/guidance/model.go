// Package guidance defines the enumeration guidance model interface that
// GPQE consumes (§3.3): one method per SyntaxSQLNet module (Table 3), each
// returning a softmax-style probability distribution over the module's
// output classes. Any model satisfying the two §3.3.5 extensibility
// requirements — incremental partial-query updates and [0,1] confidences
// obeying Property 1 — can be plugged in.
//
// The paper uses a neural SyntaxSQLNet checkpoint served from PyTorch; this
// repository substitutes a deterministic lexical model (LexicalModel) and a
// noise-parameterised oracle (OracleModel) for testing and calibration. See
// DESIGN.md §3 for why the substitution preserves GPQE's behaviour.
package guidance

import (
	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/storage"
)

// Scored pairs an output class with its probability. Each module returns a
// slice whose probabilities sum to 1 (enforced by Normalize), which yields
// Property 1: the children of a state partition the parent's confidence.
type Scored[T any] struct {
	Class T
	Prob  float64
}

// KeywordSet is the KW module's output: which optional clauses appear.
type KeywordSet struct {
	Where   bool
	GroupBy bool
	OrderBy bool
}

// AllKeywordSets enumerates the KW module's 8 output classes.
func AllKeywordSets() []KeywordSet {
	var out []KeywordSet
	for _, w := range []bool{false, true} {
		for _, g := range []bool{false, true} {
			for _, o := range []bool{false, true} {
				out = append(out, KeywordSet{Where: w, GroupBy: g, OrderBy: o})
			}
		}
	}
	return out
}

// AggCol is an aggregate applied to a column (HAVING expressions and ORDER
// BY keys).
type AggCol struct {
	Agg sqlir.AggFunc
	Col sqlir.ColumnRef
}

// DirLimit is the DESC/ASC module's output: sort direction plus LIMIT row
// count (0 = no limit), decided together as in Table 3.
type DirLimit struct {
	Desc  bool
	Limit int
}

// Model is the guidance interface: one method per inference module. The
// Context carries the NLQ, literals, schema, and the partial query built so
// far; index arguments identify the slot being decided. Every method must
// return a distribution whose probabilities sum to 1; an empty slice means
// the module has no viable output class and the branch dies.
type Model interface {
	// Keywords predicts which optional clauses the query contains.
	Keywords(ctx *Context) []Scored[KeywordSet]
	// SelectCount predicts the number of projections.
	SelectCount(ctx *Context) []Scored[int]
	// SelectColumn predicts the idx-th projected column.
	SelectColumn(ctx *Context, idx int) []Scored[sqlir.ColumnRef]
	// SelectAgg predicts the aggregate for the idx-th projection.
	SelectAgg(ctx *Context, idx int, col sqlir.ColumnRef) []Scored[sqlir.AggFunc]
	// WhereCount predicts the number of selection predicates.
	WhereCount(ctx *Context) []Scored[int]
	// WhereConj predicts the logical connective for multi-predicate WHERE.
	WhereConj(ctx *Context) []Scored[sqlir.LogicalOp]
	// WhereColumn predicts the idx-th predicate's column.
	WhereColumn(ctx *Context, idx int) []Scored[sqlir.ColumnRef]
	// WhereOp predicts the operator for a predicate on col.
	WhereOp(ctx *Context, col sqlir.ColumnRef) []Scored[sqlir.Op]
	// WhereValue predicts the literal for a predicate (from the tagged
	// literals L).
	WhereValue(ctx *Context, col sqlir.ColumnRef, op sqlir.Op) []Scored[sqlir.Value]
	// HavingPresent predicts whether a HAVING clause exists.
	HavingPresent(ctx *Context) []Scored[bool]
	// HavingAggCol predicts the aggregate expression in HAVING.
	HavingAggCol(ctx *Context) []Scored[AggCol]
	// HavingOp predicts the HAVING comparison operator.
	HavingOp(ctx *Context) []Scored[sqlir.Op]
	// HavingValue predicts the HAVING literal.
	HavingValue(ctx *Context) []Scored[sqlir.Value]
	// OrderKey predicts the ORDER BY expression.
	OrderKey(ctx *Context) []Scored[AggCol]
	// OrderDir predicts sort direction and LIMIT together.
	OrderDir(ctx *Context) []Scored[DirLimit]
}

// Context is the input every module receives: the NLQ (tokenised), the
// tagged literal values, the database schema, and the partial query
// synthesised so far (§3.3.1). When a Database is attached, the context also
// knows which columns contain each tagged literal — the metadata the
// autocomplete tagging interface provides in the paper's front end (§4).
type Context struct {
	NLQ      string
	Tokens   []string
	Literals []sqlir.Value
	Schema   *storage.Schema
	DB       *storage.Database // optional; enables literal-column grounding
	Query    *sqlir.Query

	litCols map[sqlir.ColumnRef]int // columns containing >=1 literal
}

// NewContext tokenises the NLQ and builds a module context.
func NewContext(nlq string, literals []sqlir.Value, schema *storage.Schema, q *sqlir.Query) *Context {
	return &Context{
		NLQ:      nlq,
		Tokens:   Tokenize(nlq),
		Literals: literals,
		Schema:   schema,
		Query:    q,
	}
}

// NewContextDB builds a context with literal-column grounding enabled.
func NewContextDB(nlq string, literals []sqlir.Value, db *storage.Database, q *sqlir.Query) *Context {
	c := NewContext(nlq, literals, db.Schema, q)
	c.DB = db
	return c
}

// WithQuery returns a shallow copy bound to a different partial query.
func (c *Context) WithQuery(q *sqlir.Query) *Context {
	cp := *c
	cp.Query = q
	return &cp
}

// LiteralColumns returns, lazily, how many tagged literals each column
// contains: text literals by value scan, numeric literals by min/max range.
// Nil when no Database is attached.
func (c *Context) LiteralColumns() map[sqlir.ColumnRef]int {
	if c.DB == nil || len(c.Literals) == 0 {
		return nil
	}
	if c.litCols != nil {
		return c.litCols
	}
	c.litCols = map[sqlir.ColumnRef]int{}
	for _, t := range c.Schema.Tables {
		for _, col := range t.Columns {
			ref := sqlir.ColumnRef{Table: t.Name, Column: col.Name}
			for _, lit := range c.Literals {
				if lit.Type() != col.Type {
					continue
				}
				if col.Type == sqlir.TypeText {
					ci := t.ColumnIndex(col.Name)
					for _, row := range t.Rows() {
						if row[ci].Equal(lit) {
							c.litCols[ref]++
							break
						}
					}
				} else {
					st, err := c.DB.Stats(ref)
					if err == nil && st.NonNull > 0 &&
						lit.Num >= st.Min.Num && lit.Num <= st.Max.Num {
						c.litCols[ref]++
					}
				}
			}
		}
	}
	return c.litCols
}

// Normalize scales probabilities to sum to 1, dropping non-positive entries.
// Returns nil if nothing remains.
func Normalize[T any](in []Scored[T]) []Scored[T] {
	total := 0.0
	for _, s := range in {
		if s.Prob > 0 {
			total += s.Prob
		}
	}
	if total <= 0 {
		return nil
	}
	out := make([]Scored[T], 0, len(in))
	for _, s := range in {
		if s.Prob <= 0 {
			continue
		}
		out = append(out, Scored[T]{Class: s.Class, Prob: s.Prob / total})
	}
	return out
}

// NumericLiterals filters the context's literals to numbers.
func (c *Context) NumericLiterals() []sqlir.Value {
	var out []sqlir.Value
	for _, l := range c.Literals {
		if l.Kind == sqlir.KindNumber {
			out = append(out, l)
		}
	}
	return out
}

// TextLiterals filters the context's literals to text.
func (c *Context) TextLiterals() []sqlir.Value {
	var out []sqlir.Value
	for _, l := range c.Literals {
		if l.Kind == sqlir.KindText {
			out = append(out, l)
		}
	}
	return out
}
