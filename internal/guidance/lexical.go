package guidance

import (
	"math"

	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/storage"
)

// LexicalModel is the deterministic guidance model substituting for the
// paper's SyntaxSQLNet checkpoint. It scores each module's output classes by
// token and synonym overlap between the NLQ and schema identifiers plus
// keyword cues ("how many" → COUNT, "before" → <, "for each" → GROUP BY …)
// and softmax-normalises each decision, satisfying the two §3.3.5
// requirements: incremental partial-query updates and Property 1.
//
// Like the neural model it replaces, it is an imperfect ranker: paraphrased
// or ambiguous NLQs produce flat or misordered distributions, which is
// exactly the regime where TSQ-based pruning pays off.
type LexicalModel struct {
	// MaxSelect bounds the number of projections considered (default 3).
	MaxSelect int
	// MaxWhere bounds the number of selection predicates (default 3).
	MaxWhere int
	// Temperature sharpens (<1) or flattens (>1) every distribution;
	// 1 leaves the lexical scores as-is.
	Temperature float64
}

// NewLexicalModel returns a model with the defaults used in the evaluation.
func NewLexicalModel() *LexicalModel {
	return &LexicalModel{MaxSelect: 3, MaxWhere: 3, Temperature: 1.35}
}

var _ Model = (*LexicalModel)(nil)

// temper applies temperature scaling then normalises.
func temper[T any](m *LexicalModel, in []Scored[T]) []Scored[T] {
	t := m.Temperature
	if t <= 0 {
		t = 1
	}
	if t != 1 {
		for i := range in {
			if in[i].Prob > 0 {
				in[i].Prob = math.Pow(in[i].Prob, 1/t)
			}
		}
	}
	return Normalize(in)
}

// candidateTables returns the tables later modules may reference: the join
// path's tables once FROM is decided, or the whole schema before that.
func candidateTables(ctx *Context) []*storage.Table {
	if ctx.Query != nil && ctx.Query.From != nil {
		var out []*storage.Table
		for _, name := range ctx.Query.From.Tables {
			if t := ctx.Schema.Table(name); t != nil {
				out = append(out, t)
			}
		}
		return out
	}
	return ctx.Schema.Tables
}

// nameColumn returns the table's display attribute: its first non-key text
// column ("name", "title", …), which an NLQ mentioning the entity usually
// asks for.
func nameColumn(table *storage.Table) string {
	for _, c := range table.Columns {
		if c.Type == sqlir.TypeText && c.Name != table.PrimaryKey {
			return c.Name
		}
	}
	return ""
}

// columnScore rates how strongly the NLQ evokes table.column.
func columnScore(ctx *Context, table *storage.Table, col storage.Column) float64 {
	colTok := Tokenize(col.Name)
	tblTok := Tokenize(table.Name)
	s := tokenSetScore(ctx.Tokens, colTok)
	tblScore := tokenSetScore(ctx.Tokens, tblTok)
	s += 0.35 * tblScore
	// "List the publications …" asks for the entity's display attribute —
	// unless the question is a count ("how many movies"), where the entity
	// mention feeds COUNT(*) instead.
	if tblScore >= 0.75 && col.Name == nameColumn(table) {
		s += 0.45 * (1 - countCue(ctx.Tokens))
	}
	// Primary/foreign key id columns are rarely what an NLQ asks for.
	if col.Name == table.PrimaryKey || (len(col.Name) > 2 && col.Name[len(col.Name)-2:] == "id") || col.Name == "id" {
		s *= 0.3
	}
	return s + 0.02 // smoothing: every column stays reachable
}

// scoredColumns scores every candidate column, excluding any in skip.
func scoredColumns(ctx *Context, skip map[sqlir.ColumnRef]bool) []Scored[sqlir.ColumnRef] {
	var out []Scored[sqlir.ColumnRef]
	for _, t := range candidateTables(ctx) {
		for _, c := range t.Columns {
			ref := sqlir.ColumnRef{Table: t.Name, Column: c.Name}
			if skip[ref] {
				continue
			}
			out = append(out, Scored[sqlir.ColumnRef]{Class: ref, Prob: columnScore(ctx, t, c)})
		}
	}
	return out
}

// --- cue detectors -------------------------------------------------------

func countCue(tok []string) float64 {
	switch {
	case containsAny(tok, "how many", "number of", "count of", "count the", "total number"):
		return 0.9
	case containsAny(tok, "count", "number"):
		return 0.5
	default:
		return 0.05
	}
}

func aggCue(tok []string, agg sqlir.AggFunc) float64 {
	switch agg {
	case sqlir.AggCount:
		return countCue(tok)
	case sqlir.AggMax:
		if containsAny(tok, "maximum", "highest", "largest", "greatest", "most recent", "latest", "biggest", "max") {
			return 0.7
		}
	case sqlir.AggMin:
		if containsAny(tok, "minimum", "lowest", "smallest", "earliest", "least recent", "min", "cheapest") {
			return 0.7
		}
	case sqlir.AggAvg:
		if containsAny(tok, "average", "mean", "avg") {
			return 0.85
		}
	case sqlir.AggSum:
		if containsAny(tok, "total", "sum", "combined", "altogether") {
			return 0.7
		}
	}
	return 0.03
}

func whereCue(tok []string, lits int) float64 {
	s := 0.12
	if lits > 0 {
		s += 0.55
	}
	if containsAny(tok, "with", "whose", "that", "which", "in", "from", "by", "named", "called",
		"before", "after", "between", "more than", "less than", "at least", "at most",
		"over", "under", "above", "below", "starring", "containing") {
		s += 0.25
	}
	return math.Min(s, 0.95)
}

func groupCue(tok []string) float64 {
	switch {
	case containsAny(tok, "each", "every", "per", "for each", "grouped", "group"):
		return 0.85
	case containsAny(tok, "and the number", "and their number", "with more than", "with at least", "with fewer than"):
		return 0.75
	default:
		return 0.08
	}
}

func orderCue(tok []string) float64 {
	switch {
	case containsAny(tok, "ordered", "order", "sorted", "sort", "ranked", "rank",
		"from earliest", "from most", "from least", "from oldest", "from newest",
		"alphabetical", "alphabetically", "descending", "ascending", "top", "first"):
		return 0.85
	case containsAny(tok, "most", "least", "earliest", "latest", "highest", "lowest"):
		return 0.4
	default:
		return 0.07
	}
}

func havingCue(tok []string, numericLits int) float64 {
	if containsAny(tok, "more than", "at least", "fewer than", "less than", "at most", "over", "under", "exceeding") &&
		numericLits > 0 {
		return 0.8
	}
	return 0.1
}

func opCue(tok []string, op sqlir.Op) float64 {
	switch op {
	case sqlir.OpEq:
		return 0.5
	case sqlir.OpNe:
		if containsAny(tok, "not", "except", "other than", "excluding") {
			return 0.6
		}
		return 0.02
	case sqlir.OpLt:
		if containsAny(tok, "before", "less than", "fewer than", "under", "below", "earlier than", "smaller than", "cheaper than", "younger than") {
			return 0.6
		}
		return 0.04
	case sqlir.OpGt:
		if containsAny(tok, "after", "more than", "greater than", "over", "above", "later than", "larger than", "exceeding", "older than", "at least one") {
			return 0.6
		}
		return 0.04
	case sqlir.OpLe:
		if containsAny(tok, "at most", "no more than", "up to") {
			return 0.55
		}
		return 0.02
	case sqlir.OpGe:
		if containsAny(tok, "at least", "no less than", "or more", "minimum of") {
			return 0.55
		}
		return 0.02
	case sqlir.OpLike:
		if containsAny(tok, "containing", "contains", "include", "includes", "including", "like", "starting with", "ending with", "substring") {
			return 0.7
		}
		return 0.02
	}
	return 0.02
}

func descCue(tok []string) float64 {
	switch {
	case containsAny(tok, "descending", "most to least", "newest", "latest first", "highest first",
		"from most", "from newest", "from highest", "most recent first", "largest first", "top"):
		return 0.8
	case containsAny(tok, "ascending", "least to most", "oldest", "earliest", "alphabetical",
		"from least", "from oldest", "from lowest", "from earliest", "to most recent"):
		return 0.15
	default:
		return 0.42
	}
}

// --- Model implementation ------------------------------------------------

// Keywords scores the 8 clause combinations as a product of per-clause cues.
func (m *LexicalModel) Keywords(ctx *Context) []Scored[KeywordSet] {
	w := whereCue(ctx.Tokens, len(ctx.Literals))
	g := groupCue(ctx.Tokens)
	o := orderCue(ctx.Tokens)
	var out []Scored[KeywordSet]
	for _, ks := range AllKeywordSets() {
		p := 1.0
		if ks.Where {
			p *= w
		} else {
			p *= 1 - w
		}
		if ks.GroupBy {
			p *= g
		} else {
			p *= 1 - g
		}
		if ks.OrderBy {
			p *= o
		} else {
			p *= 1 - o
		}
		out = append(out, Scored[KeywordSet]{Class: ks, Prob: p})
	}
	return temper(m, out)
}

// SelectCount estimates the projection count from coordination cues: each
// "and their X" / "together with" style conjunction adds a column, and
// "how many X per Y" grouping implies entity + count.
func (m *LexicalModel) SelectCount(ctx *Context) []Scored[int] {
	max := m.MaxSelect
	if max <= 0 {
		max = 3
	}
	est := 1
	for _, tok := range ctx.Tokens {
		if tok == "and" && est < max {
			est++
		}
	}
	for _, cue := range []string{"together with", "as well as", "with corresponding", "along with"} {
		if containsPhrase(ctx.Tokens, cue) && est < max {
			est++
		}
	}
	// Grouped counting ("how many X has each Y", "number of X for each Y")
	// projects the group key plus the count.
	if groupCue(ctx.Tokens) > 0.5 && countCue(ctx.Tokens) > 0.4 && est < 2 {
		est = 2
	}
	if est > max {
		est = max
	}
	var out []Scored[int]
	for n := 1; n <= max; n++ {
		d := float64(n - est)
		out = append(out, Scored[int]{Class: n, Prob: math.Exp(-0.9 * d * d)})
	}
	return temper(m, out)
}

// SelectColumn scores candidate columns (plus * for COUNT(*)), excluding
// already-projected ones. Columns containing a tagged literal are likely
// predicate targets, not projections ("publications in conference SIGMOD"
// filters on conference.name rather than projecting it).
func (m *LexicalModel) SelectColumn(ctx *Context, idx int) []Scored[sqlir.ColumnRef] {
	skip := map[sqlir.ColumnRef]bool{}
	if ctx.Query != nil {
		for i, s := range ctx.Query.Select {
			if i < idx && s.ColSet {
				skip[s.Col] = true
			}
		}
	}
	out := scoredColumns(ctx, skip)
	litCols := ctx.LiteralColumns()
	for i := range out {
		if out[i].Class.Column != "" && litCols[out[i].Class] > 0 {
			ty, _ := ctx.Schema.Resolve(out[i].Class)
			if ty == sqlir.TypeText {
				out[i].Prob *= 0.25
			}
		}
	}
	star := countCue(ctx.Tokens)
	if !skip[sqlir.Star] {
		out = append(out, Scored[sqlir.ColumnRef]{Class: sqlir.Star, Prob: star * 0.8})
	}
	return temper(m, out)
}

// SelectAgg scores the aggregate for a projection: * forces COUNT; numeric
// aggregates are suppressed on text columns (they would be pruned anyway).
func (m *LexicalModel) SelectAgg(ctx *Context, idx int, col sqlir.ColumnRef) []Scored[sqlir.AggFunc] {
	if col.IsStar() {
		return []Scored[sqlir.AggFunc]{{Class: sqlir.AggCount, Prob: 1}}
	}
	ty, _ := ctx.Schema.Resolve(col)
	var out []Scored[sqlir.AggFunc]
	maxCue := 0.0
	for _, agg := range []sqlir.AggFunc{sqlir.AggMax, sqlir.AggMin, sqlir.AggCount, sqlir.AggSum, sqlir.AggAvg} {
		if agg.NumericOnly() && ty == sqlir.TypeText {
			continue
		}
		cue := aggCue(ctx.Tokens, agg)
		if cue > maxCue {
			maxCue = cue
		}
		out = append(out, Scored[sqlir.AggFunc]{Class: agg, Prob: 0.9 * cue})
	}
	// The unaggregated prior yields to strong aggregate cues.
	nonePrior := 0.9 - 0.8*maxCue
	if nonePrior < 0.15 {
		nonePrior = 0.15
	}
	out = append(out, Scored[sqlir.AggFunc]{Class: sqlir.AggNone, Prob: nonePrior})
	return temper(m, out)
}

// WhereCount peaks at the number of tagged literals.
func (m *LexicalModel) WhereCount(ctx *Context) []Scored[int] {
	max := m.MaxWhere
	if max <= 0 {
		max = 3
	}
	est := len(ctx.Literals)
	if est < 1 {
		est = 1
	}
	if est > max {
		est = max
	}
	var out []Scored[int]
	for n := 1; n <= max; n++ {
		d := float64(n - est)
		out = append(out, Scored[int]{Class: n, Prob: math.Exp(-1.1 * d * d)})
	}
	return temper(m, out)
}

// WhereConj prefers AND unless an "or"/"either" cue appears. "and" in an
// NLQ is notoriously ambiguous (the §2 example), so OR keeps real mass.
func (m *LexicalModel) WhereConj(ctx *Context) []Scored[sqlir.LogicalOp] {
	or := 0.25
	if containsAny(ctx.Tokens, "or", "either", "and those") {
		or = 0.6
	}
	return temper(m, []Scored[sqlir.LogicalOp]{
		{Class: sqlir.LogicAnd, Prob: 1 - or},
		{Class: sqlir.LogicOr, Prob: or},
	})
}

// WhereColumn scores predicate columns: lexical score plus a boost when the
// column's type matches a still-unused literal.
func (m *LexicalModel) WhereColumn(ctx *Context, idx int) []Scored[sqlir.ColumnRef] {
	used := map[sqlir.ColumnRef]int{}
	if ctx.Query != nil {
		for i, p := range ctx.Query.Where.Preds {
			if i < idx && p.ColSet {
				used[p.Col]++
			}
		}
	}
	textLits := len(ctx.TextLiterals())
	numLits := len(ctx.NumericLiterals())
	litCols := ctx.LiteralColumns()
	var out []Scored[sqlir.ColumnRef]
	for _, t := range candidateTables(ctx) {
		for _, c := range t.Columns {
			ref := sqlir.ColumnRef{Table: t.Name, Column: c.Name}
			s := columnScore(ctx, t, c)
			if c.Type == sqlir.TypeText && textLits > 0 {
				s *= 1.6
			}
			if c.Type == sqlir.TypeNumber && numLits > 0 {
				s *= 1.3
			}
			// Autocomplete grounding (§4): a tagged literal that actually
			// occurs in this column is strong evidence for the predicate.
			if n := litCols[ref]; n > 0 {
				if c.Type == sqlir.TypeText {
					s *= 3.5 * float64(n)
				} else {
					s *= 1.4
				}
			}
			// Re-using a column is allowed (ranges) but discounted.
			if used[ref] > 0 {
				s *= 0.5
			}
			out = append(out, Scored[sqlir.ColumnRef]{Class: ref, Prob: s})
		}
	}
	return temper(m, out)
}

// WhereOp scores operators with cue words, masking type-invalid choices.
func (m *LexicalModel) WhereOp(ctx *Context, col sqlir.ColumnRef) []Scored[sqlir.Op] {
	ty, _ := ctx.Schema.Resolve(col)
	var out []Scored[sqlir.Op]
	for _, op := range sqlir.AllOps {
		if ty == sqlir.TypeText && op.Ordering() {
			continue
		}
		if ty == sqlir.TypeNumber && op == sqlir.OpLike {
			continue
		}
		out = append(out, Scored[sqlir.Op]{Class: op, Prob: opCue(ctx.Tokens, op)})
	}
	return temper(m, out)
}

// WhereValue proposes type-compatible tagged literals, discounting ones
// already used in earlier predicates.
func (m *LexicalModel) WhereValue(ctx *Context, col sqlir.ColumnRef, op sqlir.Op) []Scored[sqlir.Value] {
	ty, _ := ctx.Schema.Resolve(col)
	used := map[string]int{}
	if ctx.Query != nil {
		for _, p := range ctx.Query.Where.Preds {
			if p.ValSet {
				used[p.Val.String()]++
			}
		}
	}
	var out []Scored[sqlir.Value]
	for _, l := range ctx.Literals {
		if op == sqlir.OpLike {
			if l.Kind != sqlir.KindText {
				continue
			}
		} else if l.Type() != ty {
			continue
		}
		v := l
		if op == sqlir.OpLike {
			v = sqlir.NewText("%" + l.Text + "%")
		}
		p := 1.0
		if used[v.String()] > 0 {
			p = 0.3
		}
		out = append(out, Scored[sqlir.Value]{Class: v, Prob: p})
	}
	return temper(m, out)
}

// HavingPresent uses comparative cues plus unused numeric literals.
func (m *LexicalModel) HavingPresent(ctx *Context) []Scored[bool] {
	h := havingCue(ctx.Tokens, len(ctx.NumericLiterals()))
	return temper(m, []Scored[bool]{
		{Class: false, Prob: 1 - h},
		{Class: true, Prob: h},
	})
}

// HavingAggCol favours COUNT(*) (the overwhelmingly common case), with
// numeric-column aggregates as alternatives.
func (m *LexicalModel) HavingAggCol(ctx *Context) []Scored[AggCol] {
	out := []Scored[AggCol]{{Class: AggCol{Agg: sqlir.AggCount, Col: sqlir.Star}, Prob: 0.7}}
	for _, t := range candidateTables(ctx) {
		for _, c := range t.Columns {
			if c.Type != sqlir.TypeNumber {
				continue
			}
			ref := sqlir.ColumnRef{Table: t.Name, Column: c.Name}
			base := columnScore(ctx, t, c)
			for _, agg := range []sqlir.AggFunc{sqlir.AggSum, sqlir.AggAvg, sqlir.AggMax, sqlir.AggMin} {
				out = append(out, Scored[AggCol]{
					Class: AggCol{Agg: agg, Col: ref},
					Prob:  0.3 * base * aggCue(ctx.Tokens, agg),
				})
			}
		}
	}
	return temper(m, out)
}

// HavingOp reuses the operator cues; equality is rare in HAVING.
func (m *LexicalModel) HavingOp(ctx *Context) []Scored[sqlir.Op] {
	var out []Scored[sqlir.Op]
	for _, op := range []sqlir.Op{sqlir.OpEq, sqlir.OpNe, sqlir.OpLt, sqlir.OpGt, sqlir.OpLe, sqlir.OpGe} {
		p := opCue(ctx.Tokens, op)
		if op == sqlir.OpEq {
			p *= 0.3
		}
		out = append(out, Scored[sqlir.Op]{Class: op, Prob: p})
	}
	return temper(m, out)
}

// HavingValue proposes numeric literals.
func (m *LexicalModel) HavingValue(ctx *Context) []Scored[sqlir.Value] {
	var out []Scored[sqlir.Value]
	for _, l := range ctx.NumericLiterals() {
		out = append(out, Scored[sqlir.Value]{Class: l, Prob: 1})
	}
	return temper(m, out)
}

// OrderKey proposes projected columns, COUNT(*) under grouping, aggregated
// projections, and lexical matches among join-path columns.
func (m *LexicalModel) OrderKey(ctx *Context) []Scored[AggCol] {
	var out []Scored[AggCol]
	grouped := ctx.Query != nil && ctx.Query.GroupByState != sqlir.ClauseAbsent
	seen := map[string]bool{}
	add := func(ac AggCol, p float64) {
		k := ac.Agg.String() + "|" + ac.Col.String()
		if seen[k] {
			return
		}
		seen[k] = true
		out = append(out, Scored[AggCol]{Class: ac, Prob: p})
	}
	if ctx.Query != nil {
		for _, s := range ctx.Query.Select {
			if !s.Complete() {
				continue
			}
			p := 0.5
			if s.Agg != sqlir.AggNone {
				p = 0.7 // "most publications" usually orders by the count
			}
			add(AggCol{Agg: s.Agg, Col: s.Col}, p)
		}
	}
	if grouped {
		add(AggCol{Agg: sqlir.AggCount, Col: sqlir.Star}, 0.45)
	}
	for _, t := range candidateTables(ctx) {
		for _, c := range t.Columns {
			ref := sqlir.ColumnRef{Table: t.Name, Column: c.Name}
			p := 0.4 * columnScore(ctx, t, c)
			if !grouped {
				add(AggCol{Agg: sqlir.AggNone, Col: ref}, p)
			}
		}
	}
	return temper(m, out)
}

// OrderDir decides direction and limit together: limit candidates come from
// small numeric literals plus 1 when a superlative cue appears.
func (m *LexicalModel) OrderDir(ctx *Context) []Scored[DirLimit] {
	d := descCue(ctx.Tokens)
	limits := []int{0}
	if containsAny(ctx.Tokens, "top", "first", "most", "least", "highest", "lowest", "best") {
		limits = append(limits, 1)
	}
	for _, l := range ctx.NumericLiterals() {
		n := int(l.Num)
		if float64(n) == l.Num && n >= 1 && n <= 100 {
			dup := false
			for _, x := range limits {
				if x == n {
					dup = true
				}
			}
			if !dup {
				limits = append(limits, n)
			}
		}
	}
	hasLimitCue := containsAny(ctx.Tokens, "top", "first") && len(limits) > 1
	var out []Scored[DirLimit]
	for _, lim := range limits {
		pl := 0.75
		if lim > 0 {
			pl = 0.25 / float64(len(limits)-1)
			if hasLimitCue {
				pl = 0.6 / float64(len(limits)-1)
			}
		} else if hasLimitCue {
			pl = 0.4
		}
		out = append(out,
			Scored[DirLimit]{Class: DirLimit{Desc: true, Limit: lim}, Prob: pl * d},
			Scored[DirLimit]{Class: DirLimit{Desc: false, Limit: lim}, Prob: pl * (1 - d)},
		)
	}
	return temper(m, out)
}
