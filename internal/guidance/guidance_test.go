package guidance

import (
	"math"
	"testing"

	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/sqlparse"
	"github.com/duoquest/duoquest/internal/storage"
)

func moviesSchema() *storage.Schema {
	actor := storage.NewTable("actor", "aid",
		storage.Column{Name: "aid", Type: sqlir.TypeNumber},
		storage.Column{Name: "name", Type: sqlir.TypeText},
		storage.Column{Name: "gender", Type: sqlir.TypeText},
		storage.Column{Name: "birth_yr", Type: sqlir.TypeNumber},
	)
	movie := storage.NewTable("movie", "mid",
		storage.Column{Name: "mid", Type: sqlir.TypeNumber},
		storage.Column{Name: "title", Type: sqlir.TypeText},
		storage.Column{Name: "year", Type: sqlir.TypeNumber},
		storage.Column{Name: "revenue", Type: sqlir.TypeNumber},
	)
	starring := storage.NewTable("starring", "sid",
		storage.Column{Name: "sid", Type: sqlir.TypeNumber},
		storage.Column{Name: "aid", Type: sqlir.TypeNumber},
		storage.Column{Name: "mid", Type: sqlir.TypeNumber},
	)
	s := storage.NewSchema(actor, movie, starring)
	s.AddForeignKey("starring", "aid", "actor", "aid")
	s.AddForeignKey("starring", "mid", "movie", "mid")
	return s
}

func ctxFor(nlq string, lits ...sqlir.Value) *Context {
	return NewContext(nlq, lits, moviesSchema(), sqlir.NewQuery())
}

func sumProbs[T any](s []Scored[T]) float64 {
	t := 0.0
	for _, x := range s {
		t += x.Prob
	}
	return t
}

func assertNormalized[T any](t *testing.T, name string, s []Scored[T]) {
	t.Helper()
	if len(s) == 0 {
		t.Fatalf("%s: empty distribution", name)
	}
	if d := math.Abs(sumProbs(s) - 1); d > 1e-9 {
		t.Errorf("%s: probabilities sum to %v", name, sumProbs(s))
	}
	for _, x := range s {
		if x.Prob <= 0 || x.Prob > 1 {
			t.Errorf("%s: probability %v out of (0,1]", name, x.Prob)
		}
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("Show names of movies starring actors, from before 1995!")
	want := []string{"show", "names", "of", "movies", "starring", "actors", "from", "before", "1995"}
	if len(got) != len(want) {
		t.Fatalf("tokens = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
	got = Tokenize("birth_yr")
	if len(got) != 2 || got[0] != "birth" || got[1] != "yr" {
		t.Errorf("underscore split: %v", got)
	}
}

func TestRelated(t *testing.T) {
	if related("movie", "movie") != 1.0 {
		t.Error("exact match")
	}
	if related("movie", "films") != 0.8 {
		t.Error("synonym via table")
	}
	if related("publication", "papers") != 0.8 {
		t.Error("synonym forward")
	}
	if related("papers", "publication") != 0.8 {
		t.Error("synonym reverse")
	}
	if related("directed", "director") != 0.6 {
		t.Error("prefix stem")
	}
	if related("cat", "dog") != 0 {
		t.Error("unrelated")
	}
}

func TestContainsPhrase(t *testing.T) {
	toks := []string{"how", "many", "movies", "are", "there"}
	if !containsPhrase(toks, "how many") {
		t.Error("bigram")
	}
	if containsPhrase(toks, "many how") {
		t.Error("order matters")
	}
	if containsPhrase(toks, "") {
		t.Error("empty phrase")
	}
	if !containsAny(toks, "nope", "movies") {
		t.Error("containsAny")
	}
}

// Property 1 plumbing: every module's distribution sums to 1.
func TestAllModulesNormalized(t *testing.T) {
	m := NewLexicalModel()
	ctx := ctxFor("show the names of movies starring actors before 1995 ordered by year",
		sqlir.NewInt(1995))
	assertNormalized(t, "Keywords", m.Keywords(ctx))
	assertNormalized(t, "SelectCount", m.SelectCount(ctx))
	assertNormalized(t, "SelectColumn", m.SelectColumn(ctx, 0))
	assertNormalized(t, "SelectAgg", m.SelectAgg(ctx, 0, sqlir.ColumnRef{Table: "movie", Column: "year"}))
	assertNormalized(t, "WhereCount", m.WhereCount(ctx))
	assertNormalized(t, "WhereConj", m.WhereConj(ctx))
	assertNormalized(t, "WhereColumn", m.WhereColumn(ctx, 0))
	assertNormalized(t, "WhereOp", m.WhereOp(ctx, sqlir.ColumnRef{Table: "movie", Column: "year"}))
	assertNormalized(t, "WhereValue", m.WhereValue(ctx, sqlir.ColumnRef{Table: "movie", Column: "year"}, sqlir.OpLt))
	assertNormalized(t, "HavingPresent", m.HavingPresent(ctx))
	assertNormalized(t, "HavingAggCol", m.HavingAggCol(ctx))
	assertNormalized(t, "HavingOp", m.HavingOp(ctx))
	assertNormalized(t, "HavingValue", m.HavingValue(ctx))
	assertNormalized(t, "OrderKey", m.OrderKey(ctx))
	assertNormalized(t, "OrderDir", m.OrderDir(ctx))
}

func top[T any](s []Scored[T]) T {
	best := 0
	for i := range s {
		if s[i].Prob > s[best].Prob {
			best = i
		}
	}
	return s[best].Class
}

func TestKeywordCues(t *testing.T) {
	m := NewLexicalModel()
	// Plain projection: no clauses.
	ks := top(m.Keywords(ctxFor("show all movie titles")))
	if ks.Where || ks.GroupBy || ks.OrderBy {
		t.Errorf("plain NLQ keywords = %+v", ks)
	}
	// Literal implies WHERE.
	ks = top(m.Keywords(ctxFor("movies released before 1995", sqlir.NewInt(1995))))
	if !ks.Where {
		t.Errorf("literal should imply WHERE: %+v", ks)
	}
	// "for each" implies GROUP BY.
	ks = top(m.Keywords(ctxFor("number of movies for each actor")))
	if !ks.GroupBy {
		t.Errorf("'for each' should imply GROUP BY: %+v", ks)
	}
	// "ordered" implies ORDER BY.
	ks = top(m.Keywords(ctxFor("movies ordered from earliest to most recent")))
	if !ks.OrderBy {
		t.Errorf("'ordered' should imply ORDER BY: %+v", ks)
	}
}

func TestSelectColumnLexicalMatch(t *testing.T) {
	m := NewLexicalModel()
	best := top(m.SelectColumn(ctxFor("list the titles of all movies"), 0))
	if best != (sqlir.ColumnRef{Table: "movie", Column: "title"}) {
		t.Errorf("best column = %v", best)
	}
	best = top(m.SelectColumn(ctxFor("names of actors"), 0))
	if best != (sqlir.ColumnRef{Table: "actor", Column: "name"}) {
		t.Errorf("best column = %v", best)
	}
}

func TestSelectColumnStarForCount(t *testing.T) {
	m := NewLexicalModel()
	s := m.SelectColumn(ctxFor("how many movies are there"), 0)
	if got := top(s); !got.IsStar() {
		t.Errorf("count NLQ should rank * first, got %v", got)
	}
}

func TestSelectAggCues(t *testing.T) {
	m := NewLexicalModel()
	year := sqlir.ColumnRef{Table: "movie", Column: "year"}
	if got := top(m.SelectAgg(ctxFor("the average year of movies"), 0, year)); got != sqlir.AggAvg {
		t.Errorf("avg cue: %v", got)
	}
	if got := top(m.SelectAgg(ctxFor("list years"), 0, year)); got != sqlir.AggNone {
		t.Errorf("no cue: %v", got)
	}
	if got := top(m.SelectAgg(ctxFor("x"), 0, sqlir.Star)); got != sqlir.AggCount {
		t.Errorf("star forces count: %v", got)
	}
	// Text column excludes numeric aggregates entirely.
	name := sqlir.ColumnRef{Table: "actor", Column: "name"}
	for _, s := range m.SelectAgg(ctxFor("average name"), 0, name) {
		if s.Class.NumericOnly() {
			t.Errorf("numeric-only agg %v offered on text column", s.Class)
		}
	}
}

func TestWhereOpCues(t *testing.T) {
	m := NewLexicalModel()
	year := sqlir.ColumnRef{Table: "movie", Column: "year"}
	if got := top(m.WhereOp(ctxFor("movies before 1995"), year)); got != sqlir.OpLt {
		t.Errorf("before → <, got %v", got)
	}
	if got := top(m.WhereOp(ctxFor("movies after 2000"), year)); got != sqlir.OpGt {
		t.Errorf("after → >, got %v", got)
	}
	if got := top(m.WhereOp(ctxFor("movies from 1995"), year)); got != sqlir.OpEq {
		t.Errorf("default → =, got %v", got)
	}
	// Text columns never get ordering ops.
	name := sqlir.ColumnRef{Table: "actor", Column: "name"}
	for _, s := range m.WhereOp(ctxFor("actors before 1995"), name) {
		if s.Class.Ordering() {
			t.Errorf("ordering op %v offered on text column", s.Class)
		}
	}
}

func TestWhereValueTypeFiltered(t *testing.T) {
	m := NewLexicalModel()
	ctx := ctxFor("movies named Gravity from 2013", sqlir.NewText("Gravity"), sqlir.NewInt(2013))
	year := sqlir.ColumnRef{Table: "movie", Column: "year"}
	vals := m.WhereValue(ctx, year, sqlir.OpEq)
	if len(vals) != 1 || !vals[0].Class.Equal(sqlir.NewInt(2013)) {
		t.Errorf("year values = %v", vals)
	}
	title := sqlir.ColumnRef{Table: "movie", Column: "title"}
	vals = m.WhereValue(ctx, title, sqlir.OpEq)
	if len(vals) != 1 || !vals[0].Class.Equal(sqlir.NewText("Gravity")) {
		t.Errorf("title values = %v", vals)
	}
	// LIKE wraps the literal in wildcards.
	vals = m.WhereValue(ctx, title, sqlir.OpLike)
	if len(vals) != 1 || vals[0].Class.Text != "%Gravity%" {
		t.Errorf("like values = %v", vals)
	}
	// No literals of the right type: empty distribution (branch dies).
	ctx2 := ctxFor("movies", sqlir.NewText("Gravity"))
	if vals := m.WhereValue(ctx2, year, sqlir.OpEq); len(vals) != 0 {
		t.Errorf("expected no numeric candidates: %v", vals)
	}
}

func TestOrderDirCues(t *testing.T) {
	m := NewLexicalModel()
	got := top(m.OrderDir(ctxFor("movies from earliest to most recent")))
	if got.Desc {
		t.Errorf("earliest-first should be ASC: %+v", got)
	}
	got = top(m.OrderDir(ctxFor("top movies from most to least revenue")))
	if !got.Desc {
		t.Errorf("most-first should be DESC: %+v", got)
	}
	// "top 3" proposes limit 3.
	s := m.OrderDir(ctxFor("top 3 movies by revenue", sqlir.NewInt(3)))
	found := false
	for _, x := range s {
		if x.Class.Limit == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("limit 3 not proposed: %v", s)
	}
}

func TestWhereCountTracksLiterals(t *testing.T) {
	m := NewLexicalModel()
	got := top(m.WhereCount(ctxFor("movies before 1995 or after 2000", sqlir.NewInt(1995), sqlir.NewInt(2000))))
	if got != 2 {
		t.Errorf("two literals → 2 predicates, got %d", got)
	}
}

func TestCandidateTablesRestrictedByFrom(t *testing.T) {
	schema := moviesSchema()
	q := sqlir.NewQuery()
	q.From = &sqlir.JoinPath{Tables: []string{"movie"}}
	ctx := NewContext("title year", nil, schema, q)
	for _, s := range NewLexicalModel().SelectColumn(ctx, 0) {
		if !s.Class.IsStar() && s.Class.Table != "movie" {
			t.Errorf("column %v outside join path offered", s.Class)
		}
	}
}

func TestNormalizeDropsNonPositive(t *testing.T) {
	in := []Scored[int]{{1, 0.5}, {2, 0}, {3, -1}, {4, 0.5}}
	out := Normalize(in)
	if len(out) != 2 {
		t.Fatalf("out = %v", out)
	}
	if out[0].Prob != 0.5 || out[1].Prob != 0.5 {
		t.Errorf("out = %v", out)
	}
	if Normalize([]Scored[int]{{1, 0}}) != nil {
		t.Error("all-zero should normalize to nil")
	}
}

func TestOracleModelConcentratesOnGold(t *testing.T) {
	schema := moviesSchema()
	gold := sqlparse.MustParse(schema,
		"SELECT title FROM movie WHERE year < 1995 ORDER BY year ASC")
	m := NewOracleModel(gold, 0)
	ctx := NewContext("movies before 1995", []sqlir.Value{sqlir.NewInt(1995)}, schema, sqlir.NewQuery())

	ks := m.Keywords(ctx)
	assertNormalized(t, "oracle keywords", ks)
	best := top(ks)
	if !best.Where || best.GroupBy || !best.OrderBy {
		t.Errorf("oracle keywords = %+v", best)
	}
	if got := top(m.SelectCount(ctx)); got != 1 {
		t.Errorf("oracle select count = %d", got)
	}
	if got := top(m.SelectColumn(ctx, 0)); got != (sqlir.ColumnRef{Table: "movie", Column: "title"}) {
		t.Errorf("oracle select col = %v", got)
	}
	if got := top(m.WhereOp(ctx, sqlir.ColumnRef{Table: "movie", Column: "year"})); got != sqlir.OpLt {
		t.Errorf("oracle op = %v", got)
	}
	if got := top(m.OrderDir(ctx)); got.Desc || got.Limit != 0 {
		t.Errorf("oracle dir = %+v", got)
	}
}

func TestOracleNoiseSpreadsMass(t *testing.T) {
	schema := moviesSchema()
	gold := sqlparse.MustParse(schema, "SELECT title FROM movie")
	m := NewOracleModel(gold, 0.5)
	ctx := NewContext("titles", nil, schema, sqlir.NewQuery())
	s := m.SelectColumn(ctx, 0)
	assertNormalized(t, "noisy oracle", s)
	var goldP float64
	for _, x := range s {
		if x.Class == (sqlir.ColumnRef{Table: "movie", Column: "title"}) {
			goldP = x.Prob
		}
	}
	if math.Abs(goldP-0.5) > 1e-9 {
		t.Errorf("gold mass = %v, want 0.5", goldP)
	}
}

func TestOracleAddsMissingGoldClass(t *testing.T) {
	schema := moviesSchema()
	// Gold uses a literal the context does not know: the oracle must add it.
	gold := sqlparse.MustParse(schema, "SELECT title FROM movie WHERE year = 1937")
	m := NewOracleModel(gold, 0.1)
	// Simulate the enumeration state: one predicate with col and op decided
	// and the value slot open.
	q := sqlir.NewQuery()
	q.WhereState = sqlir.ClausePresent
	q.Where.CountSet = true
	q.Where.Preds = []sqlir.Predicate{{
		Col: sqlir.ColumnRef{Table: "movie", Column: "year"}, ColSet: true,
		Op: sqlir.OpEq, OpSet: true,
	}}
	ctx := NewContext("movies", nil, schema, q)
	vals := m.WhereValue(ctx, sqlir.ColumnRef{Table: "movie", Column: "year"}, sqlir.OpEq)
	if len(vals) != 1 || !vals[0].Class.Equal(sqlir.NewInt(1937)) {
		t.Errorf("oracle values = %v", vals)
	}
}

func TestTemperatureFlattens(t *testing.T) {
	sharp := NewLexicalModel()
	flat := NewLexicalModel()
	flat.Temperature = 4
	ctx := ctxFor("list the titles of all movies")
	s1 := sharp.SelectColumn(ctx, 0)
	s2 := flat.SelectColumn(ctx, 0)
	max1, max2 := 0.0, 0.0
	for _, x := range s1 {
		if x.Prob > max1 {
			max1 = x.Prob
		}
	}
	for _, x := range s2 {
		if x.Prob > max2 {
			max2 = x.Prob
		}
	}
	if max2 >= max1 {
		t.Errorf("temperature should flatten: %v vs %v", max1, max2)
	}
}

func TestLiteralColumnsGrounding(t *testing.T) {
	schema := moviesSchema()
	// Populate so containment checks have data.
	schema.Table("movie").MustInsert(sqlir.NewInt(1), sqlir.NewText("Gravity"), sqlir.NewInt(2013), sqlir.NewInt(700))
	schema.Table("actor").MustInsert(sqlir.NewInt(1), sqlir.NewText("Tom Hanks"), sqlir.NewText("male"), sqlir.NewInt(1956))
	db := storage.NewDatabase("g", schema)
	ctx := NewContextDB("movies named Gravity from 2013",
		[]sqlir.Value{sqlir.NewText("Gravity"), sqlir.NewInt(2013)}, db, sqlir.NewQuery())
	lc := ctx.LiteralColumns()
	if lc[sqlir.ColumnRef{Table: "movie", Column: "title"}] == 0 {
		t.Error("movie.title contains 'Gravity'")
	}
	if lc[sqlir.ColumnRef{Table: "actor", Column: "name"}] != 0 {
		t.Error("actor.name does not contain 'Gravity'")
	}
	// Numeric grounding: year range covers 2013.
	if lc[sqlir.ColumnRef{Table: "movie", Column: "year"}] == 0 {
		t.Error("movie.year covers 2013")
	}
	// Memoized: second call returns the same map.
	if got := ctx.LiteralColumns(); len(got) != len(lc) {
		t.Error("memoization broken")
	}
	// Without a database, grounding is disabled.
	ctx2 := NewContext("x", []sqlir.Value{sqlir.NewText("Gravity")}, schema, nil)
	if ctx2.LiteralColumns() != nil {
		t.Error("no DB should mean no grounding")
	}
}

func TestWhereColumnPrefersGroundedLiteral(t *testing.T) {
	schema := moviesSchema()
	schema.Table("movie").MustInsert(sqlir.NewInt(1), sqlir.NewText("Gravity"), sqlir.NewInt(2013), sqlir.NewInt(700))
	db := storage.NewDatabase("g", schema)
	ctx := NewContextDB("show things about Gravity", []sqlir.Value{sqlir.NewText("Gravity")}, db, sqlir.NewQuery())
	best := top(NewLexicalModel().WhereColumn(ctx, 0))
	if best != (sqlir.ColumnRef{Table: "movie", Column: "title"}) {
		t.Errorf("grounded literal should pick movie.title, got %v", best)
	}
}
