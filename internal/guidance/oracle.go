package guidance

import (
	"github.com/duoquest/duoquest/internal/sqlir"
)

// OracleModel knows the gold query and concentrates probability mass
// (1 - Noise) on the gold decision at every module, spreading Noise over the
// fallback model's remaining candidates. Noise=0 makes GPQE walk straight to
// the gold query (used to test enumeration completeness); higher noise
// simulates weaker neural checkpoints for calibration ablations.
type OracleModel struct {
	Gold     *sqlir.Query
	Noise    float64
	Fallback Model
}

// NewOracleModel wraps a gold query with a lexical fallback.
func NewOracleModel(gold *sqlir.Query, noise float64) *OracleModel {
	return &OracleModel{Gold: gold, Noise: noise, Fallback: NewLexicalModel()}
}

var _ Model = (*OracleModel)(nil)

// reweight gives the gold class 1-noise and scales the rest into noise. If
// the gold class is absent from the candidate set it is added.
func reweight[T any](cands []Scored[T], gold T, eq func(a, b T) bool, noise float64) []Scored[T] {
	found := false
	rest := 0.0
	for _, c := range cands {
		if eq(c.Class, gold) {
			found = true
		} else {
			rest += c.Prob
		}
	}
	if !found {
		cands = append(cands, Scored[T]{Class: gold})
	}
	out := make([]Scored[T], 0, len(cands))
	for _, c := range cands {
		if eq(c.Class, gold) {
			out = append(out, Scored[T]{Class: c.Class, Prob: 1 - noise})
		} else if rest > 0 {
			out = append(out, Scored[T]{Class: c.Class, Prob: noise * c.Prob / rest})
		}
	}
	return Normalize(out)
}

func colEq(a, b sqlir.ColumnRef) bool  { return a == b }
func aggColEq(a, b AggCol) bool        { return a == b }
func intEq(a, b int) bool              { return a == b }
func aggEq(a, b sqlir.AggFunc) bool    { return a == b }
func opEq(a, b sqlir.Op) bool          { return a == b }
func valEq(a, b sqlir.Value) bool      { return a.Equal(b) }
func boolEq(a, b bool) bool            { return a == b }
func conjEq(a, b sqlir.LogicalOp) bool { return a == b }
func ksEq(a, b KeywordSet) bool        { return a == b }
func dirEq(a, b DirLimit) bool         { return a == b }

// Keywords reflects the gold query's clause presence.
func (m *OracleModel) Keywords(ctx *Context) []Scored[KeywordSet] {
	gold := KeywordSet{
		Where:   m.Gold.WhereState != sqlir.ClauseAbsent,
		GroupBy: m.Gold.GroupByState != sqlir.ClauseAbsent,
		OrderBy: m.Gold.OrderByState != sqlir.ClauseAbsent,
	}
	return reweight(m.Fallback.Keywords(ctx), gold, ksEq, m.Noise)
}

// SelectCount reflects the gold projection count.
func (m *OracleModel) SelectCount(ctx *Context) []Scored[int] {
	return reweight(m.Fallback.SelectCount(ctx), len(m.Gold.Select), intEq, m.Noise)
}

// SelectColumn reflects the idx-th gold projection.
func (m *OracleModel) SelectColumn(ctx *Context, idx int) []Scored[sqlir.ColumnRef] {
	cands := m.Fallback.SelectColumn(ctx, idx)
	if idx >= len(m.Gold.Select) {
		return cands
	}
	return reweight(cands, m.Gold.Select[idx].Col, colEq, m.Noise)
}

// SelectAgg reflects the idx-th gold aggregate.
func (m *OracleModel) SelectAgg(ctx *Context, idx int, col sqlir.ColumnRef) []Scored[sqlir.AggFunc] {
	cands := m.Fallback.SelectAgg(ctx, idx, col)
	if idx >= len(m.Gold.Select) || m.Gold.Select[idx].Col != col {
		return cands
	}
	return reweight(cands, m.Gold.Select[idx].Agg, aggEq, m.Noise)
}

// WhereCount reflects the gold predicate count.
func (m *OracleModel) WhereCount(ctx *Context) []Scored[int] {
	n := len(m.Gold.Where.Preds)
	if n == 0 {
		return m.Fallback.WhereCount(ctx)
	}
	return reweight(m.Fallback.WhereCount(ctx), n, intEq, m.Noise)
}

// WhereConj reflects the gold connective.
func (m *OracleModel) WhereConj(ctx *Context) []Scored[sqlir.LogicalOp] {
	return reweight(m.Fallback.WhereConj(ctx), m.Gold.Where.Conj, conjEq, m.Noise)
}

// WhereColumn reflects the idx-th gold predicate column.
func (m *OracleModel) WhereColumn(ctx *Context, idx int) []Scored[sqlir.ColumnRef] {
	cands := m.Fallback.WhereColumn(ctx, idx)
	if idx >= len(m.Gold.Where.Preds) {
		return cands
	}
	return reweight(cands, m.Gold.Where.Preds[idx].Col, colEq, m.Noise)
}

// goldPredAt returns the gold predicate aligned with the slot currently
// being decided: the enumerator fills predicate fields in index order, so
// the first predicate in the context's partial query with the field unset
// identifies the position.
func (m *OracleModel) goldPredAt(ctx *Context, fieldUnset func(sqlir.Predicate) bool) (sqlir.Predicate, bool) {
	if ctx.Query == nil {
		return sqlir.Predicate{}, false
	}
	for i, p := range ctx.Query.Where.Preds {
		if fieldUnset(p) {
			if i < len(m.Gold.Where.Preds) {
				return m.Gold.Where.Preds[i], true
			}
			return sqlir.Predicate{}, false
		}
	}
	return sqlir.Predicate{}, false
}

// WhereOp reflects the gold operator for the predicate slot being decided.
func (m *OracleModel) WhereOp(ctx *Context, col sqlir.ColumnRef) []Scored[sqlir.Op] {
	cands := m.Fallback.WhereOp(ctx, col)
	if p, ok := m.goldPredAt(ctx, func(p sqlir.Predicate) bool { return !p.OpSet }); ok && p.Col == col {
		return reweight(cands, p.Op, opEq, m.Noise)
	}
	return cands
}

// WhereValue reflects the gold literal for the predicate slot being decided.
func (m *OracleModel) WhereValue(ctx *Context, col sqlir.ColumnRef, op sqlir.Op) []Scored[sqlir.Value] {
	cands := m.Fallback.WhereValue(ctx, col, op)
	if p, ok := m.goldPredAt(ctx, func(p sqlir.Predicate) bool { return !p.ValSet }); ok && p.Col == col && p.Op == op {
		return reweight(cands, p.Val, valEq, m.Noise)
	}
	return cands
}

// HavingPresent reflects the gold HAVING state.
func (m *OracleModel) HavingPresent(ctx *Context) []Scored[bool] {
	gold := m.Gold.HavingState != sqlir.ClauseAbsent
	return reweight(m.Fallback.HavingPresent(ctx), gold, boolEq, m.Noise)
}

// HavingAggCol reflects the gold HAVING expression.
func (m *OracleModel) HavingAggCol(ctx *Context) []Scored[AggCol] {
	cands := m.Fallback.HavingAggCol(ctx)
	if m.Gold.HavingState == sqlir.ClauseAbsent {
		return cands
	}
	gold := AggCol{Agg: m.Gold.Having.Agg, Col: m.Gold.Having.Col}
	return reweight(cands, gold, aggColEq, m.Noise)
}

// HavingOp reflects the gold HAVING operator.
func (m *OracleModel) HavingOp(ctx *Context) []Scored[sqlir.Op] {
	cands := m.Fallback.HavingOp(ctx)
	if m.Gold.HavingState == sqlir.ClauseAbsent {
		return cands
	}
	return reweight(cands, m.Gold.Having.Op, opEq, m.Noise)
}

// HavingValue reflects the gold HAVING literal.
func (m *OracleModel) HavingValue(ctx *Context) []Scored[sqlir.Value] {
	cands := m.Fallback.HavingValue(ctx)
	if m.Gold.HavingState == sqlir.ClauseAbsent {
		return cands
	}
	return reweight(cands, m.Gold.Having.Val, valEq, m.Noise)
}

// OrderKey reflects the gold ORDER BY key.
func (m *OracleModel) OrderKey(ctx *Context) []Scored[AggCol] {
	cands := m.Fallback.OrderKey(ctx)
	if m.Gold.OrderByState == sqlir.ClauseAbsent {
		return cands
	}
	gold := AggCol{Agg: m.Gold.OrderBy.Key.Agg, Col: m.Gold.OrderBy.Key.Col}
	return reweight(cands, gold, aggColEq, m.Noise)
}

// OrderDir reflects the gold direction and limit.
func (m *OracleModel) OrderDir(ctx *Context) []Scored[DirLimit] {
	cands := m.Fallback.OrderDir(ctx)
	if m.Gold.OrderByState == sqlir.ClauseAbsent {
		return cands
	}
	gold := DirLimit{Desc: m.Gold.OrderBy.Desc, Limit: m.Gold.Limit}
	return reweight(cands, gold, dirEq, m.Noise)
}
