package semrules

import (
	"strings"
	"testing"

	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/sqlparse"
	"github.com/duoquest/duoquest/internal/storage"
)

func actorSchema() *storage.Schema {
	actor := storage.NewTable("actor", "aid",
		storage.Column{Name: "aid", Type: sqlir.TypeNumber},
		storage.Column{Name: "name", Type: sqlir.TypeText},
		storage.Column{Name: "birth_yr", Type: sqlir.TypeNumber},
	)
	starring := storage.NewTable("starring", "sid",
		storage.Column{Name: "sid", Type: sqlir.TypeNumber},
		storage.Column{Name: "aid", Type: sqlir.TypeNumber},
	)
	s := storage.NewSchema(actor, starring)
	s.AddForeignKey("starring", "aid", "actor", "aid")
	return s
}

// check parses SQL and runs the default rules.
func check(t *testing.T, sql string) *Violation {
	t.Helper()
	schema := actorSchema()
	q, err := sqlparse.Parse(schema, sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	return Default().Check(q, schema)
}

func wantViolation(t *testing.T, sql, rule string) {
	t.Helper()
	v := check(t, sql)
	if v == nil {
		t.Errorf("%q: expected %q violation, got none", sql, rule)
		return
	}
	if v.Rule != rule {
		t.Errorf("%q: violation = %q, want %q", sql, v.Rule, rule)
	}
	if !strings.Contains(v.Error(), "semrules:") {
		t.Errorf("error rendering: %q", v.Error())
	}
}

func wantClean(t *testing.T, sql string) {
	t.Helper()
	if v := check(t, sql); v != nil {
		t.Errorf("%q: unexpected violation %v", sql, v)
	}
}

// Each case mirrors a Table 4 row: the "Example" column must be pruned and
// the "Possible Alternative" column must pass.
func TestTable4Examples(t *testing.T) {
	// Row 1: inconsistent predicates.
	wantViolation(t, "SELECT birth_yr FROM actor WHERE name = 'Tom Hanks' AND name = 'Brad Pitt'",
		"inconsistent predicates")
	wantClean(t, "SELECT birth_yr FROM actor WHERE name = 'Tom Hanks' OR name = 'Brad Pitt'")

	// Row 2: constant output column.
	wantViolation(t, "SELECT name, birth_yr FROM actor WHERE birth_yr = 1950",
		"constant output column")
	wantClean(t, "SELECT name FROM actor WHERE birth_yr = 1950")

	// Row 3: ungrouped aggregation.
	wantViolation(t, "SELECT birth_yr, COUNT(*) FROM actor", "ungrouped aggregation")
	wantClean(t, "SELECT birth_yr, COUNT(*) FROM actor GROUP BY birth_yr")

	// Row 4: GROUP BY with singleton groups.
	wantViolation(t, "SELECT aid, MAX(birth_yr) FROM actor GROUP BY aid",
		"GROUP BY with singleton groups")
	wantClean(t, "SELECT aid, birth_yr FROM actor")

	// Row 5: unnecessary GROUP BY.
	wantViolation(t, "SELECT name FROM actor GROUP BY name", "unnecessary GROUP BY")
	wantClean(t, "SELECT name FROM actor")

	// Row 6: aggregate type usage.
	wantViolation(t, "SELECT AVG(name) FROM actor", "aggregate type usage")

	// Row 7: faulty type comparison.
	wantViolation(t, "SELECT name FROM actor WHERE name >= 'Tom Hanks'",
		"faulty type comparison")
	wantViolation(t, "SELECT birth_yr FROM actor WHERE birth_yr LIKE '%1956%'",
		"faulty type comparison")
}

func TestInconsistentNumericIntervals(t *testing.T) {
	wantViolation(t, "SELECT name FROM actor WHERE birth_yr > 1990 AND birth_yr < 1980",
		"inconsistent predicates")
	wantViolation(t, "SELECT name FROM actor WHERE birth_yr > 1990 AND birth_yr <= 1990",
		"inconsistent predicates")
	wantClean(t, "SELECT name FROM actor WHERE birth_yr >= 1990 AND birth_yr <= 1990")
	wantViolation(t, "SELECT name FROM actor WHERE birth_yr = 1950 AND birth_yr > 1990",
		"inconsistent predicates")
	wantViolation(t, "SELECT name FROM actor WHERE birth_yr = 1950 AND birth_yr != 1950",
		"inconsistent predicates")
	wantClean(t, "SELECT name FROM actor WHERE birth_yr > 1950 AND birth_yr < 1990")
	// OR semantics never contradict.
	wantClean(t, "SELECT name FROM actor WHERE birth_yr < 1950 OR birth_yr > 1990")
}

func TestDuplicatePredicates(t *testing.T) {
	wantViolation(t, "SELECT name FROM actor WHERE birth_yr = 1950 OR birth_yr = 1950",
		"duplicate predicate")
	wantViolation(t, "SELECT name FROM actor WHERE birth_yr > 1950 AND birth_yr > 1950",
		"duplicate predicate")
}

func TestConstantOutputOnlyUnderAnd(t *testing.T) {
	// Under OR the projected column is not constant.
	wantClean(t, "SELECT birth_yr, name FROM actor WHERE birth_yr = 1950 OR birth_yr = 1960")
	// Aggregated projection of a pinned column is fine (COUNT of it).
	wantClean(t, "SELECT COUNT(birth_yr) FROM actor WHERE birth_yr = 1950")
}

func TestUngroupedAggregationPendingSafe(t *testing.T) {
	schema := actorSchema()
	q := sqlparse.MustParse(schema, "SELECT birth_yr, COUNT(*) FROM actor")
	q.GroupByState = sqlir.ClausePending // KW says GROUP BY is coming
	if v := Default().Check(q, schema); v != nil {
		t.Errorf("pending GROUP BY should suppress ungrouped aggregation: %v", v)
	}
	// Undecided aggregate slot also suppresses.
	q2 := sqlparse.MustParse(schema, "SELECT birth_yr, COUNT(*) FROM actor")
	q2.Select[1].AggSet = false
	if v := Default().Check(q2, schema); v != nil {
		t.Errorf("undecided agg should suppress: %v", v)
	}
}

func TestUnnecessaryGroupBySuppressedByHavingOrOrder(t *testing.T) {
	wantClean(t, "SELECT name FROM actor GROUP BY name HAVING COUNT(*) > 1")
	wantClean(t, "SELECT name FROM actor GROUP BY name ORDER BY COUNT(*) DESC")
	schema := actorSchema()
	q := sqlparse.MustParse(schema, "SELECT name FROM actor GROUP BY name")
	q.HavingState = sqlir.ClausePending
	if v := Default().Check(q, schema); v != nil {
		t.Errorf("pending HAVING should suppress: %v", v)
	}
	q.HavingState = sqlir.ClauseAbsent
	q.OrderByState = sqlir.ClausePending
	if v := Default().Check(q, schema); v != nil {
		t.Errorf("pending ORDER BY should suppress: %v", v)
	}
}

func TestAggregateTypeUsageInHavingAndOrder(t *testing.T) {
	schema := actorSchema()
	q := sqlparse.MustParse(schema, "SELECT name FROM actor GROUP BY name HAVING COUNT(*) > 1")
	q.Having.Agg = sqlir.AggAvg
	q.Having.Col = sqlir.ColumnRef{Table: "actor", Column: "name"}
	v := Default().Check(q, schema)
	if v == nil || v.Rule != "aggregate type usage" {
		t.Errorf("HAVING AVG(text) should violate: %v", v)
	}
	q2 := sqlparse.MustParse(schema, "SELECT name FROM actor GROUP BY name ORDER BY COUNT(*) DESC")
	q2.OrderBy.Key = sqlir.OrderKey{Agg: sqlir.AggSum, Col: sqlir.ColumnRef{Table: "actor", Column: "name"}}
	v = Default().Check(q2, schema)
	if v == nil || v.Rule != "aggregate type usage" {
		t.Errorf("ORDER BY SUM(text) should violate: %v", v)
	}
	// MIN/MAX on numbers fine; COUNT on text fine.
	wantClean(t, "SELECT MAX(birth_yr) FROM actor")
	wantClean(t, "SELECT COUNT(name) FROM actor")
}

func TestPredicateValueTypeRule(t *testing.T) {
	wantViolation(t, "SELECT birth_yr FROM actor WHERE name = 1950", "predicate value type")
	wantViolation(t, "SELECT name FROM actor WHERE birth_yr = 'x'", "predicate value type")
	schema := actorSchema()
	q := sqlparse.MustParse(schema, "SELECT name FROM actor GROUP BY name HAVING COUNT(*) > 1")
	q.Having.Val = sqlir.NewText("many")
	v := Default().Check(q, schema)
	if v == nil || v.Rule != "predicate value type" {
		t.Errorf("HAVING COUNT(*) > 'many' should violate: %v", v)
	}
}

func TestEmptyRuleSetAndAppend(t *testing.T) {
	rs := Empty()
	if rs.Len() != 0 {
		t.Error("empty rule set")
	}
	schema := actorSchema()
	q := sqlparse.MustParse(schema, "SELECT AVG(name) FROM actor")
	if v := rs.Check(q, schema); v != nil {
		t.Errorf("empty rule set should pass everything: %v", v)
	}
	rs.Append(Rule{
		Name: "no actor table",
		Check: func(q *sqlir.Query, _ *storage.Schema) *Violation {
			if q.From != nil && q.From.Contains("actor") {
				return &Violation{"no actor table", "domain rule"}
			}
			return nil
		},
	})
	if rs.Len() != 1 {
		t.Error("append failed")
	}
	if v := rs.Check(q, schema); v == nil || v.Rule != "no actor table" {
		t.Errorf("custom rule should fire: %v", v)
	}
}

func TestPartialQueriesDontFirePrematurely(t *testing.T) {
	schema := actorSchema()
	// A bare pending query triggers nothing.
	q := sqlir.NewQuery()
	q.WhereState = sqlir.ClausePending
	if v := Default().Check(q, schema); v != nil {
		t.Errorf("empty partial query: %v", v)
	}
	// Predicate with undecided value: constant-output fires on Op alone.
	q2 := sqlparse.MustParse(schema, "SELECT birth_yr FROM actor WHERE birth_yr = 1950")
	q2.Where.Preds[0].ValSet = false
	v := Default().Check(q2, schema)
	if v == nil || v.Rule != "constant output column" {
		t.Errorf("equality without value should still pin the column: %v", v)
	}
}

func TestDefaultRuleCount(t *testing.T) {
	if Default().Len() != 10 {
		t.Errorf("default rules = %d, want 10", Default().Len())
	}
}

func TestColumnOutsideJoinPath(t *testing.T) {
	schema := actorSchema()
	q := sqlparse.MustParse(schema, "SELECT name FROM actor WHERE birth_yr = 1950")
	// Rewrite the predicate to reference a table missing from FROM.
	q.Where.Preds[0].Col = sqlir.ColumnRef{Table: "starring", Column: "sid"}
	v := Default().Check(q, schema)
	if v == nil || v.Rule != "column outside join path" {
		t.Errorf("violation = %v", v)
	}
}
