// Package semrules implements the paper's semantic pruning rules (Table 4):
// checks that eliminate nonsensical or redundant yet syntactically-correct
// SQL queries during enumeration. Rules operate on partial queries and only
// fire once the relevant slots are decided, so pruning is always sound with
// respect to the completions of a partial query.
//
// The rule set is pluggable: domains may append their own rules (§4.1).
package semrules

import (
	"fmt"

	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/storage"
)

// Violation is a semantic rule failure.
type Violation struct {
	Rule   string
	Detail string
}

// Error implements error.
func (v *Violation) Error() string {
	return "semrules: " + v.Rule + ": " + v.Detail
}

// Rule checks one semantic property. A nil return means the rule passes or
// cannot be evaluated yet on this partial query.
type Rule struct {
	Name  string
	Check func(q *sqlir.Query, schema *storage.Schema) *Violation
}

// RuleSet is an ordered collection of rules.
type RuleSet struct {
	rules []Rule
}

// Default returns the paper's Table 4 rules plus the type-consistency
// additions described in §3.4.
func Default() *RuleSet {
	return &RuleSet{rules: []Rule{
		{"inconsistent predicates", checkInconsistentPredicates},
		{"duplicate predicate", checkDuplicatePredicates},
		{"constant output column", checkConstantOutputColumn},
		{"ungrouped aggregation", checkUngroupedAggregation},
		{"GROUP BY with singleton groups", checkSingletonGroups},
		{"unnecessary GROUP BY", checkUnnecessaryGroupBy},
		{"aggregate type usage", checkAggregateTypeUsage},
		{"faulty type comparison", checkFaultyTypeComparison},
		{"predicate value type", checkPredicateValueType},
		{"column outside join path", checkColumnsInJoinPath},
	}}
}

// Empty returns a rule set with no rules (for ablations).
func Empty() *RuleSet { return &RuleSet{} }

// Append adds a domain-specific rule.
func (rs *RuleSet) Append(r Rule) { rs.rules = append(rs.rules, r) }

// Len returns the number of rules.
func (rs *RuleSet) Len() int { return len(rs.rules) }

// Check runs every rule, returning the first violation or nil.
func (rs *RuleSet) Check(q *sqlir.Query, schema *storage.Schema) *Violation {
	for _, r := range rs.rules {
		if v := r.Check(q, schema); v != nil {
			return v
		}
	}
	return nil
}

// decidedPreds returns the fully decided predicates.
func decidedPreds(q *sqlir.Query) []sqlir.Predicate {
	var out []sqlir.Predicate
	for _, p := range q.Where.Preds {
		if p.Complete() {
			out = append(out, p)
		}
	}
	return out
}

// andSemantics reports whether the WHERE clause is known to be a
// conjunction: an explicit AND, or a single-predicate clause.
func andSemantics(q *sqlir.Query) bool {
	if q.Where.CountSet && len(q.Where.Preds) == 1 {
		return true
	}
	return q.Where.ConjSet && q.Where.Conj == sqlir.LogicAnd
}

// checkInconsistentPredicates prunes AND-conjoined predicates on one column
// that cannot be simultaneously satisfied (Table 4 row 1).
func checkInconsistentPredicates(q *sqlir.Query, _ *storage.Schema) *Violation {
	if !andSemantics(q) {
		return nil
	}
	byCol := map[sqlir.ColumnRef][]sqlir.Predicate{}
	for _, p := range decidedPreds(q) {
		byCol[p.Col] = append(byCol[p.Col], p)
	}
	for col, preds := range byCol {
		if len(preds) < 2 {
			continue
		}
		if contradictory(preds) {
			return &Violation{"inconsistent predicates",
				fmt.Sprintf("predicates on %s contradict", col)}
		}
	}
	return nil
}

// contradictory reports whether a set of same-column predicates is
// unsatisfiable under AND.
func contradictory(preds []sqlir.Predicate) bool {
	var eqs []sqlir.Value
	var nes []sqlir.Value
	// Numeric interval: [lo, hi] with exclusivity flags.
	var lo, hi *float64
	loExcl, hiExcl := false, false
	for _, p := range preds {
		switch p.Op {
		case sqlir.OpEq:
			eqs = append(eqs, p.Val)
		case sqlir.OpNe:
			nes = append(nes, p.Val)
		case sqlir.OpGt, sqlir.OpGe:
			if p.Val.Kind != sqlir.KindNumber {
				continue
			}
			v := p.Val.Num
			if lo == nil || v > *lo || (v == *lo && p.Op == sqlir.OpGt) {
				lo = &v
				loExcl = p.Op == sqlir.OpGt
			}
		case sqlir.OpLt, sqlir.OpLe:
			if p.Val.Kind != sqlir.KindNumber {
				continue
			}
			v := p.Val.Num
			if hi == nil || v < *hi || (v == *hi && p.Op == sqlir.OpLt) {
				hi = &v
				hiExcl = p.Op == sqlir.OpLt
			}
		}
	}
	for i := 1; i < len(eqs); i++ {
		if !eqs[i].Equal(eqs[0]) {
			return true // col = a AND col = b
		}
	}
	for _, ne := range nes {
		for _, eq := range eqs {
			if ne.Equal(eq) {
				return true // col = a AND col != a
			}
		}
	}
	if len(eqs) > 0 && eqs[0].Kind == sqlir.KindNumber {
		v := eqs[0].Num
		if lo != nil && (v < *lo || (v == *lo && loExcl)) {
			return true
		}
		if hi != nil && (v > *hi || (v == *hi && hiExcl)) {
			return true
		}
	}
	if lo != nil && hi != nil {
		if *lo > *hi || (*lo == *hi && (loExcl || hiExcl)) {
			return true // empty interval
		}
	}
	return false
}

// checkDuplicatePredicates prunes repeated identical predicates, which are
// redundant under both AND and OR.
func checkDuplicatePredicates(q *sqlir.Query, _ *storage.Schema) *Violation {
	preds := decidedPreds(q)
	for i := 0; i < len(preds); i++ {
		for j := i + 1; j < len(preds); j++ {
			if preds[i].Col == preds[j].Col && preds[i].Op == preds[j].Op &&
				preds[i].Val.Equal(preds[j].Val) {
				return &Violation{"duplicate predicate", preds[i].String()}
			}
		}
	}
	return nil
}

// checkConstantOutputColumn prunes projecting a column that an AND-conjoined
// equality predicate pins to a constant (Table 4 row 2). The value need not
// be decided: any equality makes the projection constant.
func checkConstantOutputColumn(q *sqlir.Query, _ *storage.Schema) *Violation {
	if !andSemantics(q) {
		return nil
	}
	pinned := map[sqlir.ColumnRef]bool{}
	for _, p := range q.Where.Preds {
		if p.ColSet && p.OpSet && p.Op == sqlir.OpEq {
			pinned[p.Col] = true
		}
	}
	if len(pinned) == 0 {
		return nil
	}
	for _, s := range q.Select {
		if s.Complete() && s.Agg == sqlir.AggNone && pinned[s.Col] {
			return &Violation{"constant output column",
				fmt.Sprintf("%s is pinned by an equality predicate", s.Col)}
		}
	}
	return nil
}

// checkUngroupedAggregation prunes mixing aggregated and unaggregated
// projections without GROUP BY (Table 4 row 3). Fires only once the select
// list and the KW decision are final.
func checkUngroupedAggregation(q *sqlir.Query, _ *storage.Schema) *Violation {
	if !q.KWSet || q.GroupByState != sqlir.ClauseAbsent || !q.SelectCountSet {
		return nil
	}
	hasAgg, hasPlain := false, false
	for _, s := range q.Select {
		if !s.AggSet {
			return nil // not final yet
		}
		if s.Agg == sqlir.AggNone {
			hasPlain = true
		} else {
			hasAgg = true
		}
	}
	if hasAgg && hasPlain {
		return &Violation{"ungrouped aggregation",
			"aggregated and unaggregated projections without GROUP BY"}
	}
	return nil
}

// checkSingletonGroups prunes GROUP BY on a primary key: every group is a
// single row and aggregation is unnecessary (Table 4 row 4).
func checkSingletonGroups(q *sqlir.Query, schema *storage.Schema) *Violation {
	if q.GroupByState != sqlir.ClausePresent {
		return nil
	}
	for _, g := range q.GroupBy {
		t := schema.Table(g.Table)
		if t != nil && t.PrimaryKey != "" && t.PrimaryKey == g.Column {
			return &Violation{"GROUP BY with singleton groups",
				fmt.Sprintf("%s is a primary key", g)}
		}
	}
	return nil
}

// checkUnnecessaryGroupBy prunes GROUP BY when no aggregate can appear in
// SELECT, ORDER BY, or HAVING (Table 4 row 5). Pending clauses block the
// rule because a later decision could still introduce an aggregate.
func checkUnnecessaryGroupBy(q *sqlir.Query, _ *storage.Schema) *Violation {
	if q.GroupByState != sqlir.ClausePresent || !q.SelectCountSet {
		return nil
	}
	for _, s := range q.Select {
		if !s.AggSet {
			return nil
		}
		if s.Agg != sqlir.AggNone {
			return nil
		}
	}
	switch q.HavingState {
	case sqlir.ClausePending, sqlir.ClausePresent:
		return nil // HAVING carries an aggregate by construction
	}
	switch q.OrderByState {
	case sqlir.ClausePending:
		return nil
	case sqlir.ClausePresent:
		if !q.OrderBy.KeySet {
			return nil
		}
		if q.OrderBy.Key.Agg != sqlir.AggNone {
			return nil
		}
	}
	return &Violation{"unnecessary GROUP BY", "no aggregates in SELECT, ORDER BY or HAVING"}
}

// checkAggregateTypeUsage prunes MIN/MAX/AVG/SUM applied to text columns
// (Table 4 row 6) anywhere an aggregate can occur.
func checkAggregateTypeUsage(q *sqlir.Query, schema *storage.Schema) *Violation {
	bad := func(agg sqlir.AggFunc, col sqlir.ColumnRef) bool {
		if agg == sqlir.AggNone || agg == sqlir.AggCount || col.IsStar() {
			return false
		}
		ty, ok := schema.Resolve(col)
		return ok && agg.NumericOnly() && ty == sqlir.TypeText
	}
	for _, s := range q.Select {
		if s.Complete() && bad(s.Agg, s.Col) {
			return &Violation{"aggregate type usage",
				fmt.Sprintf("%s(%s) on text column", s.Agg, s.Col)}
		}
	}
	if q.HavingState == sqlir.ClausePresent && q.Having.AggSet && q.Having.ColSet &&
		bad(q.Having.Agg, q.Having.Col) {
		return &Violation{"aggregate type usage",
			fmt.Sprintf("HAVING %s(%s) on text column", q.Having.Agg, q.Having.Col)}
	}
	if q.OrderByState == sqlir.ClausePresent && q.OrderBy.KeySet &&
		bad(q.OrderBy.Key.Agg, q.OrderBy.Key.Col) {
		return &Violation{"aggregate type usage",
			fmt.Sprintf("ORDER BY %s(%s) on text column", q.OrderBy.Key.Agg, q.OrderBy.Key.Col)}
	}
	return nil
}

// checkFaultyTypeComparison prunes ordering operators on text columns and
// LIKE on numeric columns (Table 4 row 7).
func checkFaultyTypeComparison(q *sqlir.Query, schema *storage.Schema) *Violation {
	for _, p := range q.Where.Preds {
		if !p.ColSet || !p.OpSet {
			continue
		}
		ty, ok := schema.Resolve(p.Col)
		if !ok {
			continue
		}
		if p.Op.Ordering() && ty == sqlir.TypeText {
			return &Violation{"faulty type comparison",
				fmt.Sprintf("%s %s on text column", p.Col, p.Op)}
		}
		if p.Op == sqlir.OpLike && ty == sqlir.TypeNumber {
			return &Violation{"faulty type comparison",
				fmt.Sprintf("%s LIKE on numeric column", p.Col)}
		}
	}
	return nil
}

// checkColumnsInJoinPath prunes queries referencing a column whose table is
// not in the decided FROM clause — structurally invalid SQL that guided
// enumeration can produce when a join path was fixed before a later column
// decision.
func checkColumnsInJoinPath(q *sqlir.Query, _ *storage.Schema) *Violation {
	if q.From == nil {
		return nil
	}
	for _, t := range q.ReferencedTables() {
		if !q.From.Contains(t) {
			return &Violation{"column outside join path",
				fmt.Sprintf("table %s is not in the FROM clause", t)}
		}
	}
	return nil
}

// checkPredicateValueType prunes predicates whose literal type disagrees
// with the column type (an addition beyond Table 4 that removes obviously
// empty comparisons early).
func checkPredicateValueType(q *sqlir.Query, schema *storage.Schema) *Violation {
	for _, p := range q.Where.Preds {
		if !p.Complete() {
			continue
		}
		ty, ok := schema.Resolve(p.Col)
		if !ok {
			continue
		}
		vt := p.Val.Type()
		if p.Op == sqlir.OpLike {
			if vt != sqlir.TypeText {
				return &Violation{"predicate value type",
					fmt.Sprintf("LIKE pattern for %s must be text", p.Col)}
			}
			continue
		}
		if vt != sqlir.TypeUnknown && vt != ty {
			return &Violation{"predicate value type",
				fmt.Sprintf("%s (%s) compared with %s literal", p.Col, ty, vt)}
		}
	}
	if q.HavingState == sqlir.ClausePresent && q.Having.Complete() {
		// Aggregate results compared in HAVING: COUNT/SUM/AVG are numeric;
		// MIN/MAX take the column type.
		ty, ok := schema.Resolve(q.Having.Col)
		if ok {
			rt := q.Having.Agg.ResultType(ty)
			vt := q.Having.Val.Type()
			if vt != sqlir.TypeUnknown && vt != rt {
				return &Violation{"predicate value type",
					fmt.Sprintf("HAVING %s(%s) (%s) compared with %s literal",
						q.Having.Agg, q.Having.Col, rt, vt)}
			}
		}
	}
	return nil
}
