package nli

import (
	"context"
	"testing"
	"time"

	"github.com/duoquest/duoquest/internal/enumerate"
	"github.com/duoquest/duoquest/internal/guidance"
	"github.com/duoquest/duoquest/internal/sqlexec"
	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/sqlparse"
	"github.com/duoquest/duoquest/internal/storage"
	"github.com/duoquest/duoquest/internal/tsq"
)

func testDB() *storage.Database {
	movie := storage.NewTable("movie", "mid",
		storage.Column{Name: "mid", Type: sqlir.TypeNumber},
		storage.Column{Name: "title", Type: sqlir.TypeText},
		storage.Column{Name: "year", Type: sqlir.TypeNumber},
	)
	movie.MustInsert(sqlir.NewInt(1), sqlir.NewText("Forrest Gump"), sqlir.NewInt(1994))
	movie.MustInsert(sqlir.NewInt(2), sqlir.NewText("Gravity"), sqlir.NewInt(2013))
	return storage.NewDatabase("m", storage.NewSchema(movie))
}

func TestNLISynthesizeRankedList(t *testing.T) {
	db := testDB()
	sys := New(db)
	res, err := sys.Synthesize(context.Background(), "movie titles", nil,
		Options{MaxCandidates: 10, Budget: 2 * time.Second}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) == 0 {
		t.Fatal("no candidates")
	}
	gold := sqlparse.MustParse(db.Schema, "SELECT title FROM movie")
	if !sqlir.Equivalent(res.Candidates[0].Query, gold) {
		t.Errorf("top candidate = %s", res.Candidates[0].Query)
	}
}

// TestNLIIsUnsound: without a TSQ, the NLI can return candidates that would
// violate a sketch — the soundness gap of Table 1.
func TestNLIIsUnsound(t *testing.T) {
	db := testDB()
	sys := New(db)
	sketch := &tsq.TSQ{Tuples: []tsq.Tuple{{tsq.Exact(sqlir.NewText("Forrest Gump"))}}}
	res, err := sys.Synthesize(context.Background(), "movies before 1995",
		[]sqlir.Value{sqlir.NewInt(1995)},
		Options{MaxCandidates: 30, Budget: 2 * time.Second}, nil)
	if err != nil {
		t.Fatal(err)
	}
	violations := 0
	for _, c := range res.Candidates {
		r, err := sqlexec.Execute(db, c.Query)
		if err != nil {
			continue
		}
		if !sketch.Satisfies(r) {
			violations++
		}
	}
	if violations == 0 {
		t.Error("expected at least one candidate violating the sketch")
	}
}

func TestNLIEmitStops(t *testing.T) {
	db := testDB()
	sys := NewWithModel(db, guidance.NewLexicalModel())
	n := 0
	_, err := sys.Synthesize(context.Background(), "titles", nil,
		Options{Budget: 2 * time.Second}, func(c enumerate.Candidate) bool {
			n++
			return false
		})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("emit calls = %d", n)
	}
}

// TestNLIHonorsLiterals: candidates must use every tagged literal.
func TestNLIHonorsLiterals(t *testing.T) {
	db := testDB()
	sys := New(db)
	res, err := sys.Synthesize(context.Background(), "movies before 1995",
		[]sqlir.Value{sqlir.NewInt(1995)},
		Options{MaxCandidates: 20, Budget: 2 * time.Second}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Candidates {
		found := false
		for _, lit := range c.Query.Literals() {
			if lit.Equal(sqlir.NewInt(1995)) {
				found = true
			}
		}
		if !found {
			t.Errorf("candidate ignores tagged literal: %s", c.Query)
		}
	}
}
