// Package nli implements the NLI baseline of the evaluation (§5.1.1): a
// SyntaxSQLNet-style natural-language-only system. As in the paper's
// adaptation, it is the same guided enumerator Duoquest uses, decoded purely
// by confidence — no TSQ is available, so no sketch-based pruning or
// soundness guarantee applies. The semantic rules and literal-usage check
// still hold (the NLI is given the NLQ and its tagged literals, §5.4.1).
package nli

import (
	"context"
	"time"

	"github.com/duoquest/duoquest/internal/enumerate"
	"github.com/duoquest/duoquest/internal/guidance"
	"github.com/duoquest/duoquest/internal/semrules"
	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/storage"
	"github.com/duoquest/duoquest/internal/verify"
)

// System is the NLQ-only baseline bound to one database.
type System struct {
	db    *storage.Database
	model guidance.Model
	rules *semrules.RuleSet
}

// New builds the baseline with the default lexical model and Table 4 rules.
func New(db *storage.Database) *System {
	return &System{db: db, model: guidance.NewLexicalModel(), rules: semrules.Default()}
}

// NewWithModel overrides the guidance model.
func NewWithModel(db *storage.Database, m guidance.Model) *System {
	return &System{db: db, model: m, rules: semrules.Default()}
}

// Options bounds one run.
type Options struct {
	MaxCandidates int
	Budget        time.Duration
}

// Synthesize returns the ranked candidate list for an NLQ.
func (s *System) Synthesize(ctx context.Context, nlq string, literals []sqlir.Value, opts Options, emit func(enumerate.Candidate) bool) (*enumerate.Result, error) {
	v := verify.New(s.db, s.rules, nil, literals)
	e := enumerate.New(s.db, s.model, v, enumerate.Options{
		Mode:          enumerate.ModeGPQE,
		MaxCandidates: opts.MaxCandidates,
		Budget:        opts.Budget,
	})
	return e.Enumerate(ctx, nlq, literals, emit)
}
