package storage

import (
	"fmt"
	"sync"
	"testing"

	"github.com/duoquest/duoquest/internal/sqlir"
)

// epochTable builds a small nullable schema for snapshot tests: a numeric
// and a text column, both taking NULLs, so appends exercise the null-bitmap
// copy-on-write in both representations.
func epochDB() (*Database, *Table) {
	tb := NewTable("ev", "id",
		Column{"id", sqlir.TypeNumber},
		Column{"name", sqlir.TypeText},
	)
	return NewDatabase("epochs", NewSchema(tb)), tb
}

// batch returns one deterministic bulk payload of n rows starting at row
// offset base; every third row is NULL in both columns.
func epochBatch(base, n int) []ColumnData {
	nums := make([]float64, n)
	texts := make([]string, n)
	nulls := make([]bool, n)
	for i := 0; i < n; i++ {
		ri := base + i
		nums[i] = float64(ri)
		texts[i] = fmt.Sprintf("s%d", ri%7)
		nulls[i] = ri%3 == 2
		if nulls[i] {
			nums[i], texts[i] = 0, ""
		}
	}
	return []ColumnData{
		{Nums: nums, Nulls: nulls},
		{Texts: texts, Nulls: nulls},
	}
}

// checkRows verifies the table holds exactly rows [0, n) of the epochBatch
// pattern — the oracle both for pinned snapshots and for the head.
func checkRows(t *testing.T, tb *Table, n int) {
	t.Helper()
	if got := tb.NumRows(); got != n {
		t.Fatalf("table %s rows = %d, want %d", tb.Name, got, n)
	}
	id, name := tb.Vector("id"), tb.Vector("name")
	for ri := 0; ri < n; ri++ {
		if ri%3 == 2 {
			if !id.IsNull(ri) || !name.IsNull(ri) {
				t.Fatalf("row %d should be NULL", ri)
			}
			continue
		}
		if id.IsNull(ri) || name.IsNull(ri) {
			t.Fatalf("row %d should not be NULL", ri)
		}
		if id.Num(ri) != float64(ri) {
			t.Fatalf("row %d id = %g, want %d", ri, id.Num(ri), ri)
		}
		if got, want := name.Dict().String(name.Code(ri)), fmt.Sprintf("s%d", ri%7); got != want {
			t.Fatalf("row %d name = %q, want %q", ri, got, want)
		}
	}
}

// TestSnapshotNullBoundaryCOW publishes a snapshot mid null-bitmap word and
// appends NULL-bearing rows into the same word: the snapshot must keep its
// pre-append bits (copy-on-write), the head must see the new ones.
func TestSnapshotNullBoundaryCOW(t *testing.T) {
	db, _ := epochDB()
	if _, err := db.Append("ev", epochBatch(0, 5)); err != nil {
		t.Fatal(err)
	}
	snap := db.Snapshot()
	checkRows(t, snap.Table("ev"), 5)
	// Rows 5..69 extend into the snapshot's partially filled word 0 and past
	// it, with NULLs on both sides of the 64-row boundary.
	if _, err := db.Append("ev", epochBatch(5, 65)); err != nil {
		t.Fatal(err)
	}
	checkRows(t, snap.Table("ev"), 5)
	checkRows(t, db.Snapshot().Table("ev"), 70)
	if got := snap.Table("ev").Vector("id").NullCount(); got != 1 {
		t.Errorf("snapshot null count = %d, want 1", got)
	}
}

// TestSnapshotPerRowInsert covers the per-row Insert path after a
// publication (the service's build-phase API): the pinned snapshot stays
// intact while the head sees each row.
func TestSnapshotPerRowInsert(t *testing.T) {
	db, tb := epochDB()
	tb.MustInsert(num(0), text("s0"))
	snap := db.Snapshot()
	for ri := 1; ri < 8; ri++ {
		if ri%3 == 2 {
			tb.MustInsert(sqlir.Null(), sqlir.Null())
		} else {
			tb.MustInsert(num(float64(ri)), text(fmt.Sprintf("s%d", ri%7)))
		}
	}
	checkRows(t, snap.Table("ev"), 1)
	checkRows(t, db.Snapshot().Table("ev"), 8)
}

// TestEpochRetention: only the last epochRetention epochs stay addressable
// by number; older pins fail loudly instead of silently serving new data.
func TestEpochRetention(t *testing.T) {
	db, _ := epochDB()
	first, err := db.Append("ev", epochBatch(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < epochRetention+4; i++ {
		if _, err := db.Append("ev", epochBatch(i, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.SnapshotAt(first); err == nil {
		t.Errorf("epoch %d should have been retired (head %d)", first, db.Epoch())
	}
	head, err := db.SnapshotAt(db.Epoch())
	if err != nil {
		t.Fatal(err)
	}
	checkRows(t, head.Table("ev"), epochRetention+4)
}

// TestConcurrentAppendAndSnapshots is the storage-level race test: one
// writer publishing epochs through Database.Append while readers pin
// snapshots and scan them. Run with -race this proves the clamped views,
// the frozen dictionaries, and the null-bitmap COW keep published epochs
// immutable under live ingest.
func TestConcurrentAppendAndSnapshots(t *testing.T) {
	db, _ := epochDB()
	if _, err := db.Append("ev", epochBatch(0, 5)); err != nil {
		t.Fatal(err)
	}
	pinned := db.Snapshot()

	const batches = 40
	const rowsPer = 9
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		base := 5
		for i := 0; i < batches; i++ {
			if _, err := db.Append("ev", epochBatch(base, rowsPer)); err != nil {
				t.Error(err)
				return
			}
			base += rowsPer
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				checkRows(t, pinned.Table("ev"), 5)
				snap := db.Snapshot()
				n := snap.Table("ev").NumRows()
				if n < 5 || (n-5)%rowsPer != 0 {
					t.Errorf("snapshot rows = %d, not a batch boundary", n)
					return
				}
				checkRows(t, snap.Table("ev"), n)
				if _, err := snap.Table("ev").Index("name"); err != nil {
					t.Error(err)
					return
				}
				if _, err := snap.Stats(sqlir.ColumnRef{Table: "ev", Column: "id"}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	checkRows(t, db.Snapshot().Table("ev"), 5+batches*rowsPer)
}
