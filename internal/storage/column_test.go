package storage

import (
	"testing"

	"github.com/duoquest/duoquest/internal/sqlir"
)

func colTable(t *testing.T) *Table {
	t.Helper()
	tb := NewTable("items", "id",
		Column{Name: "id", Type: sqlir.TypeNumber},
		Column{Name: "tag", Type: sqlir.TypeText},
		Column{Name: "score", Type: sqlir.TypeNumber},
	)
	rows := []struct {
		id    float64
		tag   sqlir.Value
		score sqlir.Value
	}{
		{1, sqlir.NewText("red"), sqlir.NewNumber(1.5)},
		{2, sqlir.NewText("blue"), sqlir.Null()},
		{3, sqlir.NewText("red"), sqlir.NewNumber(-2)},
		{4, sqlir.Null(), sqlir.NewNumber(0)},
		{5, sqlir.NewText("green"), sqlir.NewNumber(1.5)},
	}
	for _, r := range rows {
		tb.MustInsert(sqlir.NewNumber(r.id), r.tag, r.score)
	}
	return tb
}

// The dictionary interns each distinct string once, in first-appearance
// order, and codes round-trip.
func TestDictInterning(t *testing.T) {
	tb := colTable(t)
	vec := tb.Vector("tag")
	if vec == nil {
		t.Fatal("no vector for tag")
	}
	d := vec.Dict()
	if d.Size() != 3 {
		t.Fatalf("dict size = %d, want 3 (red, blue, green)", d.Size())
	}
	for want, s := range []string{"red", "blue", "green"} {
		c, ok := d.Lookup(s)
		if !ok || int(c) != want {
			t.Errorf("Lookup(%q) = (%d, %v), want (%d, true)", s, c, ok, want)
		}
		if d.String(c) != s {
			t.Errorf("String(%d) = %q, want %q", c, d.String(c), s)
		}
	}
	if _, ok := d.Lookup("absent"); ok {
		t.Error("Lookup of absent string reported present")
	}
	// Rows 0 and 2 share the "red" code.
	if vec.Code(0) != vec.Code(2) {
		t.Errorf("duplicate text got distinct codes: %d vs %d", vec.Code(0), vec.Code(2))
	}
}

// Null bitmap and typed accessors agree with the row representation.
func TestVectorNullsAndValues(t *testing.T) {
	tb := colTable(t)
	tag, score := tb.Vector("tag"), tb.Vector("score")
	if tag.NullCount() != 1 || score.NullCount() != 1 {
		t.Fatalf("null counts = %d, %d, want 1, 1", tag.NullCount(), score.NullCount())
	}
	if !tag.IsNull(3) || tag.IsNull(0) {
		t.Error("tag null bitmap wrong")
	}
	if !score.IsNull(1) || score.IsNull(3) {
		t.Error("score null bitmap wrong")
	}
	if score.Num(2) != -2 || score.Num(3) != 0 {
		t.Errorf("score nums = %v, %v", score.Num(2), score.Num(3))
	}
	for ri := 0; ri < tb.NumRows(); ri++ {
		for ci := range tb.Columns {
			if got, want := tb.VectorAt(ci).Value(ri), tb.Row(ri)[ci]; !got.Equal(want) {
				t.Errorf("vector value (%d,%d) = %s, row has %s", ri, ci, got, want)
			}
		}
	}
	if err := tb.CheckRowColumnConsistency(); err != nil {
		t.Error(err)
	}
}

// The typed code index serves the same posting lists as the value-keyed
// index, for both numeric and text columns, and misses cleanly.
func TestCodeIndexPostings(t *testing.T) {
	tb := colTable(t)
	ix, err := tb.CodeIndex("tag")
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.TextString("red"); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("red postings = %v, want [0 2]", got)
	}
	if got := ix.TextString("absent"); got != nil {
		t.Errorf("absent postings = %v, want nil", got)
	}
	if got := ix.Postings(sqlir.NewNumber(3)); got != nil {
		t.Errorf("kind-mismatched probe returned %v", got)
	}

	nix, err := tb.CodeIndex("score")
	if err != nil {
		t.Fatal(err)
	}
	if got := nix.Num(1.5); len(got) != 2 || got[0] != 0 || got[1] != 4 {
		t.Errorf("1.5 postings = %v, want [0 4]", got)
	}
	// NULL rows are not indexed.
	if got := nix.Num(0); len(got) != 1 || got[0] != 3 {
		t.Errorf("0 postings = %v, want [3]", got)
	}

	// The value-keyed index must agree.
	old, err := tb.Index("tag")
	if err != nil {
		t.Fatal(err)
	}
	for v, want := range old {
		got := ix.Postings(v)
		if len(got) != len(want) {
			t.Errorf("postings for %s: code index %v, value index %v", v, got, want)
		}
	}
}

// Insert invalidates the code index exactly like the value-keyed one.
func TestCodeIndexInvalidatedByInsert(t *testing.T) {
	tb := colTable(t)
	ix, err := tb.CodeIndex("tag")
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.TextString("blue"); len(got) != 1 {
		t.Fatalf("blue postings = %v", got)
	}
	tb.MustInsert(sqlir.NewNumber(6), sqlir.NewText("blue"), sqlir.NewNumber(9))
	ix2, err := tb.CodeIndex("tag")
	if err != nil {
		t.Fatal(err)
	}
	if got := ix2.TextString("blue"); len(got) != 2 {
		t.Errorf("post-insert blue postings = %v, want 2 rows", got)
	}
}

// A brand-new string interned by a post-build Insert must be findable after
// the rebuild (codes assigned past the old dictionary snapshot).
func TestCodeIndexNewCodeAfterInsert(t *testing.T) {
	tb := colTable(t)
	if _, err := tb.CodeIndex("tag"); err != nil {
		t.Fatal(err)
	}
	tb.MustInsert(sqlir.NewNumber(7), sqlir.NewText("violet"), sqlir.NewNumber(1))
	ix, err := tb.CodeIndex("tag")
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.TextString("violet"); len(got) != 1 || got[0] != 5 {
		t.Errorf("violet postings = %v, want [5]", got)
	}
}

// Footprint reports dictionary sizes and vector memory per column.
func TestFootprint(t *testing.T) {
	tb := colTable(t)
	fps := tb.Footprint()
	if len(fps) != 3 {
		t.Fatalf("footprint has %d columns", len(fps))
	}
	tag := fps[1]
	if tag.Column != "tag" || tag.DictEntries != 3 || tag.DictBytes == 0 {
		t.Errorf("tag footprint = %+v", tag)
	}
	if tag.Rows != 5 || tag.Nulls != 1 || tag.VectorBytes == 0 {
		t.Errorf("tag footprint = %+v", tag)
	}
	id := fps[0]
	if id.DictEntries != 0 || id.DictBytes != 0 || id.VectorBytes == 0 {
		t.Errorf("id footprint = %+v", id)
	}

	db := NewDatabase("t", NewSchema(tb))
	tfs := db.Footprint()
	if len(tfs) != 1 || tfs[0].Table != "items" || tfs[0].Rows != 5 {
		t.Fatalf("database footprint = %+v", tfs)
	}
	if tfs[0].VectorBytes == 0 || tfs[0].DictBytes == 0 {
		t.Errorf("database footprint bytes = %+v", tfs[0])
	}
}

// With the debug guard on, mutating a slice returned by Rows or Row cannot
// corrupt table data — the satellite test for the "callers must not mutate"
// contract: accidental writes through the shared slice are caught because
// they no longer reach the table at all.
func TestRowsMutationGuard(t *testing.T) {
	prev := SetDebugRowCopies(true)
	defer SetDebugRowCopies(prev)

	tb := colTable(t)
	rows := tb.Rows()
	rows[0][1] = sqlir.NewText("MUTATED")
	tb.Row(2)[1] = sqlir.NewText("MUTATED")

	if got := tb.Row(0)[1]; !got.Equal(sqlir.NewText("red")) {
		t.Errorf("row 0 tag = %s after mutation through Rows(), want 'red'", got)
	}
	if got := tb.Rows()[2][1]; !got.Equal(sqlir.NewText("red")) {
		t.Errorf("row 2 tag = %s after mutation through Row(), want 'red'", got)
	}
	if err := tb.CheckRowColumnConsistency(); err != nil {
		t.Errorf("consistency after guarded mutation: %v", err)
	}
}

// Without the guard the shared-slice contract is caught by the row/column
// consistency check — the columnar vectors are authoritative and do not see
// writes through the adapter.
func TestConsistencyCatchesSharedSliceMutation(t *testing.T) {
	tb := colTable(t)
	tb.Rows()[0][1] = sqlir.NewText("MUTATED")
	if err := tb.CheckRowColumnConsistency(); err == nil {
		t.Fatal("mutation through the shared slice went undetected")
	}
}

// Stats and DistinctValues, now computed from the vectors, keep their
// contracts on mixed null/duplicate data.
func TestColumnarStatsAndDistinct(t *testing.T) {
	tb := colTable(t)
	st, err := tb.Stats("tag")
	if err != nil {
		t.Fatal(err)
	}
	if st.NonNull != 4 || st.Distinct != 3 {
		t.Errorf("tag stats = %+v", st)
	}
	if !st.Min.Equal(sqlir.NewText("blue")) || !st.Max.Equal(sqlir.NewText("red")) {
		t.Errorf("tag min/max = %s/%s", st.Min, st.Max)
	}

	st, err = tb.Stats("score")
	if err != nil {
		t.Fatal(err)
	}
	if st.NonNull != 4 || st.Distinct != 3 {
		t.Errorf("score stats = %+v", st)
	}
	if st.Min.Num != -2 || st.Max.Num != 1.5 {
		t.Errorf("score min/max = %s/%s", st.Min, st.Max)
	}

	vals, err := tb.DistinctValues("tag", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 3 || vals[0].Text != "blue" || vals[1].Text != "green" || vals[2].Text != "red" {
		t.Errorf("distinct tags = %v", vals)
	}
	nums, err := tb.DistinctValues("score", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(nums) != 2 || nums[0].Num != -2 || nums[1].Num != 0 {
		t.Errorf("distinct scores = %v", nums)
	}
}
