// Content fingerprinting: one hash over the authoritative columnar state of
// a whole database. The fingerprint is the equality oracle shared by the
// loadgen determinism tests, the bulk-vs-row ingestion equivalence checks,
// and the segment store's persist→load self-check: two databases with
// byte-identical columnar state (same values, same dictionary code
// assignment, same null bitmaps) have equal fingerprints.
//
// The hash is built for that one job — detecting accidental divergence
// (ingest-path bugs, storage corruption) over millions of rows — so it
// favours throughput over cryptographic strength: values are folded a
// 64-bit word at a time through a splitmix64-style mixer, and the
// independent per-column sums are computed in parallel and then combined
// in schema order, which pins the catalog layout as well as the data.
package storage

import (
	"math"
	"runtime"
	"sync"
)

// mix64 is the splitmix64 finalizer: a cheap, well-dispersed 64-bit mixing
// permutation (two multiplies and three xor-shifts per word).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// fpSeed is the fingerprint chain's arbitrary non-zero starting state.
const fpSeed = 0x9e3779b97f4a7c15

// fpWord folds one word into a running fingerprint: one xor and one
// odd-multiplier multiply. The multiply is a bijection on uint64, so no two
// states collapse, and repeated folding diffuses every input bit upward;
// the weak low bits are repaired once by the mix64 finalizer instead of
// paying full mixing per word — the fold is on the cold-start critical
// path, where it runs once per 8 bytes of every column.
func fpWord(h, w uint64) uint64 { return (h ^ w) * 0xbf58476d1ce4e5b9 }

// fpString folds a length-prefixed string, eight bytes at a time.
func fpString(h uint64, s string) uint64 {
	return fpBytes(fpWord(h, uint64(len(s))), s)
}

// fpBytes folds raw bytes as little-endian words, the final partial word
// zero-padded.
func fpBytes(h uint64, s string) uint64 {
	for len(s) >= 8 {
		// The compiler recognises this byte assembly as a single
		// little-endian load.
		w := uint64(s[0]) | uint64(s[1])<<8 | uint64(s[2])<<16 | uint64(s[3])<<24 |
			uint64(s[4])<<32 | uint64(s[5])<<40 | uint64(s[6])<<48 | uint64(s[7])<<56
		h = fpWord(h, w)
		s = s[8:]
	}
	if len(s) > 0 {
		var w uint64
		for i := 0; i < len(s); i++ {
			w |= uint64(s[i]) << (8 * uint(i))
		}
		h = fpWord(h, w)
	}
	return h
}

// fpConcat folds the concatenation of strs exactly as fpBytes would fold
// the same bytes in one contiguous string: an 8-byte staging word is
// carried across string boundaries. It is the slow-path twin of the
// Dict.blob fast path — both must produce identical sums for the same
// concatenated content.
func fpConcat(h uint64, strs []string) uint64 {
	var w uint64
	var shift uint
	for _, s := range strs {
		for i := 0; i < len(s); i++ {
			w |= uint64(s[i]) << shift
			shift += 8
			if shift == 64 {
				h = fpWord(h, w)
				w, shift = 0, 0
			}
		}
	}
	if shift > 0 {
		h = fpWord(h, w)
	}
	return h
}

// lane2 is the arbitrary constant that splits a running fingerprint into a
// second independent accumulator lane.
const lane2 = 0x94d049bb133111eb

// columnFingerprint hashes one column vector: row count, dictionary
// contents in code order, the raw value words, and the null bitmap. NULL
// slots hold canonical zero placeholders in nums/codes (appendValue and
// appendBulk both enforce this), so hashing the raw arrays plus the bitmap
// distinguishes exactly the states the row-by-row definition would.
//
// Every array is folded in two interleaved accumulator lanes. fpWord's
// xor-multiply has a ~4-cycle dependency chain, so a single lane caps
// throughput at one word per 4 cycles regardless of superscalar width; two
// independent chains double it, and this function is the dominant cost of
// a segment cold start's integrity check.
func columnFingerprint(vec *ColumnVec) uint64 {
	h := uint64(fpSeed)
	h = fpWord(h, uint64(vec.typ))
	h = fpWord(h, uint64(vec.n))
	h = fpWord(h, uint64(vec.nullCount))
	if d := vec.dict; d != nil {
		// The dictionary folds as entry count, packed entry lengths, then
		// the concatenated bytes — NOT string by string, so a dictionary
		// adopted as one contiguous blob (segment loads) can take the
		// word-stream fast path while an incrementally interned one walks
		// fpConcat's staging loop to the identical sum. The lengths pin the
		// entry boundaries that concatenation alone would lose.
		strs := d.strs
		h = fpWord(h, uint64(len(strs)))
		a, b := h, h^lane2
		i := 0
		for ; i+3 < len(strs); i += 4 {
			a = fpWord(a, uint64(len(strs[i]))|uint64(len(strs[i+1]))<<32)
			b = fpWord(b, uint64(len(strs[i+2]))|uint64(len(strs[i+3]))<<32)
		}
		for ; i < len(strs); i++ {
			a = fpWord(a, uint64(len(strs[i])))
		}
		h = fpWord(a, b)
		if d.blob != "" {
			h = fpBytes(h, d.blob)
		} else {
			h = fpConcat(h, strs)
		}
	}
	if nums := vec.nums; len(nums) > 0 {
		a, b := h, h^lane2
		i := 0
		for ; i+1 < len(nums); i += 2 {
			a = fpWord(a, math.Float64bits(nums[i]))
			b = fpWord(b, math.Float64bits(nums[i+1]))
		}
		if i < len(nums) {
			a = fpWord(a, math.Float64bits(nums[i]))
		}
		h = fpWord(a, b)
	}
	if codes := vec.codes; len(codes) > 0 {
		// Codes are 32-bit: pack two per folded word, two words per lane
		// round — four codes per iteration.
		a, b := h, h^lane2
		i := 0
		for ; i+3 < len(codes); i += 4 {
			a = fpWord(a, uint64(codes[i])|uint64(codes[i+1])<<32)
			b = fpWord(b, uint64(codes[i+2])|uint64(codes[i+3])<<32)
		}
		for ; i < len(codes); i++ {
			a = fpWord(a, uint64(codes[i]))
		}
		h = fpWord(a, b)
	}
	if nulls := vec.nulls; len(nulls) > 0 {
		a, b := h, h^lane2
		i := 0
		for ; i+1 < len(nulls); i += 2 {
			a = fpWord(a, nulls[i])
			b = fpWord(b, nulls[i+1])
		}
		if i < len(nulls) {
			a = fpWord(a, nulls[i])
		}
		h = fpWord(a, b)
	}
	return mix64(h)
}

// Fingerprint hashes every column vector of the database — values, NULL
// bits, and dictionary contents in code order — into one 64-bit sum.
// Per-column hashes are independent and computed in parallel; tables and
// columns are folded in schema order, so the fingerprint also pins the
// catalog layout. It must not run concurrently with Insert/BulkAppend on
// the same database.
func Fingerprint(db *Database) uint64 {
	type colRef struct {
		vec *ColumnVec
		sum uint64
	}
	var cols []*colRef
	for _, t := range db.Schema.Tables {
		for ci := range t.Columns {
			cols = append(cols, &colRef{vec: &t.vecs[ci]})
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(cols) {
		workers = len(cols)
	}
	if workers > 1 {
		var next int
		var mu sync.Mutex
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					mu.Lock()
					i := next
					next++
					mu.Unlock()
					if i >= len(cols) {
						return
					}
					cols[i].sum = columnFingerprint(cols[i].vec)
				}
			}()
		}
		wg.Wait()
	} else {
		for _, c := range cols {
			c.sum = columnFingerprint(c.vec)
		}
	}

	h := uint64(fpSeed)
	i := 0
	for _, t := range db.Schema.Tables {
		h = fpString(h, t.Name)
		for _, c := range t.Columns {
			h = fpString(h, c.Name)
			h = fpWord(h, cols[i].sum)
			i++
		}
	}
	return mix64(h)
}
