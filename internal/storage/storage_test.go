package storage

import (
	"reflect"
	"strings"
	"testing"

	"github.com/duoquest/duoquest/internal/sqlir"
)

func text(s string) sqlir.Value { return sqlir.NewText(s) }
func num(f float64) sqlir.Value { return sqlir.NewNumber(f) }

// movieSchema builds the paper's §2 movie schema.
func movieSchema() *Schema {
	actor := NewTable("actor", "aid",
		Column{"aid", sqlir.TypeNumber},
		Column{"name", sqlir.TypeText},
		Column{"gender", sqlir.TypeText},
		Column{"birth_yr", sqlir.TypeNumber},
	)
	movie := NewTable("movie", "mid",
		Column{"mid", sqlir.TypeNumber},
		Column{"name", sqlir.TypeText},
		Column{"year", sqlir.TypeNumber},
		Column{"revenue", sqlir.TypeNumber},
	)
	starring := NewTable("starring", "sid",
		Column{"sid", sqlir.TypeNumber},
		Column{"aid", sqlir.TypeNumber},
		Column{"mid", sqlir.TypeNumber},
	)
	s := NewSchema(actor, movie, starring)
	s.AddForeignKey("starring", "aid", "actor", "aid")
	s.AddForeignKey("starring", "mid", "movie", "mid")
	return s
}

func TestSchemaValidateOK(t *testing.T) {
	if err := movieSchema().Validate(); err != nil {
		t.Fatalf("valid schema rejected: %v", err)
	}
}

func TestSchemaValidateErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Schema
		want  string
	}{
		{"duplicate table", func() *Schema {
			return NewSchema(NewTable("a", ""), NewTable("a", ""))
		}, "duplicate table"},
		{"duplicate column", func() *Schema {
			return NewSchema(NewTable("a", "", Column{"x", sqlir.TypeText}, Column{"x", sqlir.TypeText}))
		}, "duplicate column"},
		{"unknown type", func() *Schema {
			return NewSchema(NewTable("a", "", Column{"x", sqlir.TypeUnknown}))
		}, "unknown type"},
		{"bad pk", func() *Schema {
			return NewSchema(NewTable("a", "nope", Column{"x", sqlir.TypeText}))
		}, "primary key"},
		{"fk unknown table", func() *Schema {
			s := NewSchema(NewTable("a", "", Column{"x", sqlir.TypeNumber}))
			s.AddForeignKey("a", "x", "missing", "y")
			return s
		}, "unknown table"},
		{"fk unknown column", func() *Schema {
			s := movieSchema()
			s.AddForeignKey("starring", "nope", "actor", "aid")
			return s
		}, "unknown column"},
		{"fk not pk", func() *Schema {
			s := movieSchema()
			s.AddForeignKey("starring", "aid", "actor", "name")
			return s
		}, "primary key"},
		{"fk type mismatch", func() *Schema {
			a := NewTable("a", "id", Column{"id", sqlir.TypeText})
			b := NewTable("b", "", Column{"aid", sqlir.TypeNumber})
			s := NewSchema(a, b)
			s.AddForeignKey("b", "aid", "a", "id")
			return s
		}, "type mismatch"},
	}
	for _, c := range cases {
		err := c.build().Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.want)
		}
	}
}

func TestInsertAndRead(t *testing.T) {
	s := movieSchema()
	m := s.Table("movie")
	if err := m.Insert(num(1), text("Forrest Gump"), num(1994), num(678)); err != nil {
		t.Fatal(err)
	}
	if m.NumRows() != 1 {
		t.Fatalf("rows = %d", m.NumRows())
	}
	row := m.Row(0)
	if !row[1].Equal(text("Forrest Gump")) {
		t.Errorf("row = %v", row)
	}
}

func TestInsertArityError(t *testing.T) {
	m := movieSchema().Table("movie")
	if err := m.Insert(num(1)); err == nil || !strings.Contains(err.Error(), "arity") {
		t.Errorf("err = %v", err)
	}
}

func TestInsertTypeError(t *testing.T) {
	m := movieSchema().Table("movie")
	if err := m.Insert(text("x"), text("y"), num(1), num(2)); err == nil || !strings.Contains(err.Error(), "type") {
		t.Errorf("err = %v", err)
	}
}

func TestInsertNullAllowed(t *testing.T) {
	m := movieSchema().Table("movie")
	if err := m.Insert(num(1), sqlir.Null(), sqlir.Null(), sqlir.Null()); err != nil {
		t.Errorf("nulls should be allowed: %v", err)
	}
}

func TestMustInsertPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustInsert should panic on bad row")
		}
	}()
	movieSchema().Table("movie").MustInsert(num(1))
}

func TestInsertCopiesRow(t *testing.T) {
	m := movieSchema().Table("movie")
	vals := []sqlir.Value{num(1), text("A"), num(2000), num(10)}
	if err := m.Insert(vals...); err != nil {
		t.Fatal(err)
	}
	vals[1] = text("B")
	if !m.Row(0)[1].Equal(text("A")) {
		t.Error("Insert must copy the row")
	}
}

func TestColumnLookup(t *testing.T) {
	m := movieSchema().Table("movie")
	if m.ColumnIndex("year") != 2 {
		t.Errorf("ColumnIndex(year) = %d", m.ColumnIndex("year"))
	}
	if m.ColumnIndex("nope") != -1 {
		t.Error("missing column should be -1")
	}
	c, ok := m.Column("name")
	if !ok || c.Type != sqlir.TypeText {
		t.Errorf("Column(name) = %v, %v", c, ok)
	}
	if _, ok := m.Column("nope"); ok {
		t.Error("missing column should not resolve")
	}
}

func TestStats(t *testing.T) {
	m := movieSchema().Table("movie")
	m.MustInsert(num(1), text("A"), num(1990), num(5))
	m.MustInsert(num(2), text("B"), num(2000), num(7))
	m.MustInsert(num(3), text("B"), sqlir.Null(), num(7))
	st, err := m.Stats("year")
	if err != nil {
		t.Fatal(err)
	}
	if !st.Min.Equal(num(1990)) || !st.Max.Equal(num(2000)) {
		t.Errorf("min/max = %v/%v", st.Min, st.Max)
	}
	if st.NonNull != 2 || st.Distinct != 2 {
		t.Errorf("nonnull=%d distinct=%d", st.NonNull, st.Distinct)
	}
	st, _ = m.Stats("name")
	if st.Distinct != 2 || st.NonNull != 3 {
		t.Errorf("name stats: %+v", st)
	}
	if _, err := m.Stats("nope"); err == nil {
		t.Error("missing column should error")
	}
}

func TestStatsEmptyTable(t *testing.T) {
	m := movieSchema().Table("movie")
	st, err := m.Stats("year")
	if err != nil {
		t.Fatal(err)
	}
	if !st.Min.IsNull() || !st.Max.IsNull() || st.NonNull != 0 {
		t.Errorf("empty stats: %+v", st)
	}
}

func TestDistinctValues(t *testing.T) {
	m := movieSchema().Table("movie")
	m.MustInsert(num(1), text("B"), num(1990), num(5))
	m.MustInsert(num(2), text("A"), num(2000), num(7))
	m.MustInsert(num(3), text("A"), sqlir.Null(), num(7))
	vals, err := m.DistinctValues("name", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || !vals[0].Equal(text("A")) || !vals[1].Equal(text("B")) {
		t.Errorf("distinct = %v", vals)
	}
	vals, _ = m.DistinctValues("name", 1)
	if len(vals) != 1 {
		t.Errorf("capped distinct = %v", vals)
	}
	if _, err := m.DistinctValues("nope", 0); err == nil {
		t.Error("missing column should error")
	}
}

func TestSchemaResolve(t *testing.T) {
	s := movieSchema()
	ty, ok := s.Resolve(sqlir.ColumnRef{Table: "movie", Column: "year"})
	if !ok || ty != sqlir.TypeNumber {
		t.Errorf("resolve = %v %v", ty, ok)
	}
	if _, ok := s.Resolve(sqlir.ColumnRef{Table: "movie", Column: "nope"}); ok {
		t.Error("missing column resolved")
	}
	if _, ok := s.Resolve(sqlir.ColumnRef{Table: "nope", Column: "x"}); ok {
		t.Error("missing table resolved")
	}
	if ty, ok := s.Resolve(sqlir.Star); !ok || ty != sqlir.TypeNumber {
		t.Error("star should resolve as number")
	}
}

func TestNumColumnsAndTextColumns(t *testing.T) {
	s := movieSchema()
	if s.NumColumns() != 11 {
		t.Errorf("NumColumns = %d, want 11", s.NumColumns())
	}
	tc := s.TextColumns()
	if len(tc) != 3 { // actor.name, actor.gender, movie.name
		t.Errorf("TextColumns = %v", tc)
	}
}

func TestDatabaseStatsMemoized(t *testing.T) {
	s := movieSchema()
	db := NewDatabase("movies", s)
	m := s.Table("movie")
	m.MustInsert(num(1), text("A"), num(1990), num(5))
	ref := sqlir.ColumnRef{Table: "movie", Column: "year"}
	st, err := db.Stats(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Min.Equal(num(1990)) {
		t.Errorf("stats min = %v", st.Min)
	}
	// Insert clears the table's stats memo directly, so the next Stats call
	// recomputes from current rows.
	m.MustInsert(num(2), text("B"), num(1800), num(5))
	st, _ = db.Stats(ref)
	if !st.Min.Equal(num(1800)) {
		t.Error("expected refreshed stats after insert")
	}
	if _, err := db.Stats(sqlir.ColumnRef{Table: "nope", Column: "x"}); err == nil {
		t.Error("missing table should error")
	}
	// A frozen snapshot keeps its own permanent memo at the pinned state.
	snap := db.Snapshot()
	sst, err := snap.Stats(ref)
	if err != nil {
		t.Fatal(err)
	}
	m.MustInsert(num(3), text("C"), num(1700), num(5))
	sst2, _ := snap.Stats(ref)
	if !sst2.Min.Equal(sst.Min) || !sst2.Min.Equal(num(1800)) {
		t.Errorf("snapshot stats moved after insert: %v -> %v", sst.Min, sst2.Min)
	}
	st, _ = db.Stats(ref)
	if !st.Min.Equal(num(1700)) {
		t.Error("live stats should see the third insert")
	}
}

func TestEpochPublication(t *testing.T) {
	s := movieSchema()
	db := NewDatabase("movies", s)
	m := s.Table("movie")
	if db.Epoch() != 0 {
		t.Errorf("fresh database epoch = %d", db.Epoch())
	}
	m.MustInsert(num(1), text("A"), num(1990), num(5))
	m.MustInsert(num(2), text("B"), num(1991), num(6))
	snap := db.Snapshot()
	if db.Epoch() != 1 || snap.Epoch() != 1 {
		t.Errorf("first snapshot epoch = %d/%d, want 1", db.Epoch(), snap.Epoch())
	}
	if !snap.Frozen() || db.Frozen() {
		t.Error("snapshot should be frozen, live database should not")
	}
	// Snapshots of an unchanged database are the same frozen instance —
	// that identity is what caches key by.
	if db.Snapshot() != snap {
		t.Error("unchanged database should memoize one snapshot per epoch")
	}
	// Failed inserts do not publish a new epoch.
	if err := m.Insert(num(3)); err == nil {
		t.Fatal("bad arity should error")
	}
	if db.Publish() != 1 {
		t.Errorf("epoch after failed insert = %d, want 1", db.Epoch())
	}
	// A mutation makes the next snapshot a new epoch; the old one is intact.
	m.MustInsert(num(3), text("C"), num(1992), num(7))
	snap2 := db.Snapshot()
	if snap2.Epoch() != 2 {
		t.Errorf("second snapshot epoch = %d, want 2", snap2.Epoch())
	}
	if got := snap.Table("movie").NumRows(); got != 2 {
		t.Errorf("epoch 1 rows = %d, want 2", got)
	}
	if got := snap2.Table("movie").NumRows(); got != 3 {
		t.Errorf("epoch 2 rows = %d, want 3", got)
	}
	// Tables untouched between epochs share one frozen table (and with it
	// the lazily built indexes).
	if snap.Table("actor") != snap2.Table("actor") {
		t.Error("untouched table should be shared across epochs")
	}
	// Frozen tables and databases reject mutation.
	if err := snap.Table("movie").Insert(num(9), text("Z"), num(2000), num(1)); err == nil {
		t.Error("insert into frozen table should error")
	}
	if _, err := snap.Append("movie", nil); err == nil {
		t.Error("append to frozen database should error")
	}
	// SnapshotAt resolves retained epochs and rejects unknown ones.
	back, err := db.SnapshotAt(1)
	if err != nil || back != snap {
		t.Errorf("SnapshotAt(1) = %p (%v), want the memoized epoch-1 snapshot", back, err)
	}
	if _, err := db.SnapshotAt(99); err == nil {
		t.Error("SnapshotAt of unpublished epoch should error")
	}
}

func TestTotalRows(t *testing.T) {
	s := movieSchema()
	db := NewDatabase("movies", s)
	s.Table("movie").MustInsert(num(1), text("A"), num(1990), num(5))
	s.Table("actor").MustInsert(num(1), text("X"), text("male"), num(1950))
	if db.TotalRows() != 2 {
		t.Errorf("TotalRows = %d", db.TotalRows())
	}
	if db.Table("movie") == nil || db.Table("nope") != nil {
		t.Error("Table lookup wrong")
	}
}

func TestForeignKeyString(t *testing.T) {
	fk := ForeignKey{"starring", "aid", "actor", "aid"}
	if fk.String() != "starring.aid -> actor.aid" {
		t.Errorf("fk string = %q", fk.String())
	}
}

func TestIndexPostingLists(t *testing.T) {
	tbl := NewTable("t", "id",
		Column{"id", sqlir.TypeNumber},
		Column{"grp", sqlir.TypeText},
	)
	tbl.MustInsert(num(1), text("a"))
	tbl.MustInsert(num(2), text("b"))
	tbl.MustInsert(num(3), text("a"))
	tbl.MustInsert(num(4), sqlir.Null())

	idx, err := tbl.Index("grp")
	if err != nil {
		t.Fatal(err)
	}
	if got := idx[text("a")]; len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("postings for a = %v", got)
	}
	if len(idx[text("b")]) != 1 {
		t.Errorf("postings for b = %v", idx[text("b")])
	}
	if _, ok := idx[sqlir.Null()]; ok {
		t.Error("NULL must not be indexed")
	}
	// The index is memoized: a second request returns the same map.
	again, _ := tbl.Index("grp")
	if reflect.ValueOf(idx).Pointer() != reflect.ValueOf(again).Pointer() {
		t.Error("second Index call rebuilt the index instead of memoizing")
	}
	if _, err := tbl.Index("nope"); err == nil {
		t.Error("unknown column should error")
	}
}

func TestIndexInvalidatedByInsert(t *testing.T) {
	tbl := NewTable("t", "id",
		Column{"id", sqlir.TypeNumber},
		Column{"grp", sqlir.TypeText},
	)
	tbl.MustInsert(num(1), text("a"))
	idx, err := tbl.Index("grp")
	if err != nil {
		t.Fatal(err)
	}
	if len(idx[text("a")]) != 1 {
		t.Fatalf("postings = %v", idx[text("a")])
	}
	tbl.MustInsert(num(2), text("a"))
	idx, err = tbl.Index("grp")
	if err != nil {
		t.Fatal(err)
	}
	if len(idx[text("a")]) != 2 {
		t.Errorf("postings after insert = %v", idx[text("a")])
	}
}
