// Columnar storage: every table column is additionally held as a typed
// vector — []float64 for numeric columns, dictionary-encoded []uint32 codes
// plus an interned string table for text columns, and a null bitmap for
// both. The vectors are the authoritative representation for the vectorized
// execution path in sqlexec; the historical row API (Row/Rows) is kept in
// sync by Insert as a thin adapter so the materializing reference executor
// is untouched during the migration.
package storage

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/duoquest/duoquest/internal/sqlir"
)

// Dict is a per-column string dictionary: every distinct non-null text value
// inserted into the column is interned once and addressed by a dense uint32
// code. Codes are assigned in first-appearance order and never change, so a
// code remains valid across Inserts (Insert only ever appends entries).
type Dict struct {
	strs  []string
	codes map[string]uint32
	// blob, when non-empty, is the concatenation of strs in code order — the
	// segment loader slices a bulk-adopted dictionary out of one backing
	// string and records it here, letting columnFingerprint fold the whole
	// dictionary as a word stream instead of string by string. Cleared the
	// moment strs diverges from it (intern appending a new entry).
	blob string
	// mapOnce gates the lazy build of codes: a bulk dictionary adoption
	// (appendBulk) leaves the map nil so loading never pays for hashing,
	// and the first intern or Lookup builds it from strs exactly once.
	// Concurrent Lookups are safe — Once serializes the build; intern runs
	// only in exclusive (mutation) contexts and keeps the map current
	// afterwards.
	mapOnce sync.Once
}

// ensureMap builds the string→code map from strs on first need. The build
// pass doubles as the duplicate check for bulk-adopted dictionaries
// (BulkAppend documents the distinctness precondition; adoption itself is
// hash-free and cannot dedupe): a collision here means code-keyed equality
// would silently miss rows, so it is a programming bug worth a panic.
func (d *Dict) ensureMap() {
	d.mapOnce.Do(func() {
		if d.codes != nil {
			return
		}
		m := make(map[string]uint32, len(d.strs))
		for i, s := range d.strs {
			if _, dup := m[s]; dup {
				panic(fmt.Sprintf("storage: dictionary holds duplicate entry %q — bulk-adopted dictionaries must contain distinct strings", s))
			}
			m[s] = uint32(i)
		}
		d.codes = m
	})
}

// intern returns the code for s, assigning the next code on first sight.
func (d *Dict) intern(s string) uint32 {
	d.ensureMap()
	if c, ok := d.codes[s]; ok {
		return c
	}
	c := uint32(len(d.strs))
	d.strs = append(d.strs, s)
	d.codes[s] = c
	d.blob = "" // strs no longer matches the adopted concatenation
	return c
}

// Lookup returns the code for s, reporting whether s is interned. A miss
// means no row of the column holds s.
func (d *Dict) Lookup(s string) (uint32, bool) {
	d.ensureMap()
	c, ok := d.codes[s]
	return c, ok
}

// String returns the interned string for a code.
func (d *Dict) String(code uint32) string { return d.strs[code] }

// Size returns the number of interned strings — exactly the column's
// distinct non-null value count, since entries are never removed.
func (d *Dict) Size() int { return len(d.strs) }

// Strings returns the interned string table in code order (shared slice;
// callers must not mutate). Autocomplete builds its inverted index from
// this instead of re-scanning and de-duplicating rows.
func (d *Dict) Strings() []string { return d.strs }

// Bytes estimates the dictionary's memory footprint: string payloads plus
// string headers and the code map entries.
func (d *Dict) Bytes() int64 {
	var n int64
	for _, s := range d.strs {
		n += int64(len(s)) + 16 // payload + string header
	}
	// map entry ≈ string header + uint32 + bucket overhead.
	n += int64(len(d.strs)) * 28
	return n
}

// ColumnVec is one column's typed vector. Exactly one of nums/codes is
// populated, matching the column's declared type; nulls marks NULL rows in
// either representation (the slot in nums/codes holds a zero placeholder).
type ColumnVec struct {
	typ       sqlir.Type
	nums      []float64
	codes     []uint32
	dict      *Dict
	nulls     []uint64 // bitmap, bit i set = row i is NULL
	n         int
	nullCount int

	// sealedWords is the null-bitmap length at the last epoch publication
	// (epoch.go): snapshot readers share nulls[:sealedWords], so setting a
	// null bit inside that prefix — only ever possible in the partially
	// filled boundary word — must copy the bitmap first (cowNulls). Zero
	// means no published snapshot shares the bitmap.
	sealedWords int
}

// cowNulls makes the null bitmap safe to mutate in place at row ri. Value
// and code appends only ever write past the published lengths, but a null
// bit for a new row can land in a published epoch's partially filled last
// word. The first such write after a publication copies the bitmap once
// (O(rows/64), amortised over all subsequent appends); vectors never
// captured in a snapshot pay nothing.
func (v *ColumnVec) cowNulls(ri int) {
	if v.sealedWords > 0 && ri>>6 < v.sealedWords {
		v.nulls = append(make([]uint64, 0, cap(v.nulls)), v.nulls...)
		v.sealedWords = 0
	}
}

// Type returns the column's declared type.
func (v *ColumnVec) Type() sqlir.Type { return v.typ }

// Len returns the row count.
func (v *ColumnVec) Len() int { return v.n }

// NullCount returns the number of NULL rows.
func (v *ColumnVec) NullCount() int { return v.nullCount }

// IsNull reports whether row i is NULL.
func (v *ColumnVec) IsNull(i int) bool {
	return v.nulls[i>>6]&(1<<(uint(i)&63)) != 0
}

// Num returns row i's numeric value (0 when the row is NULL; check IsNull).
func (v *ColumnVec) Num(i int) float64 { return v.nums[i] }

// Code returns row i's dictionary code (0 when the row is NULL; check
// IsNull before trusting it — 0 is also a valid code).
func (v *ColumnVec) Code(i int) uint32 { return v.codes[i] }

// Dict returns the column's string dictionary (nil for numeric columns).
func (v *ColumnVec) Dict() *Dict { return v.dict }

// Value materializes row i as a sqlir.Value. The returned struct shares the
// interned string, so this allocates nothing.
func (v *ColumnVec) Value(i int) sqlir.Value {
	if v.IsNull(i) {
		return sqlir.Null()
	}
	switch v.typ {
	case sqlir.TypeNumber:
		return sqlir.NewNumber(v.nums[i])
	case sqlir.TypeText:
		return sqlir.NewText(v.dict.strs[v.codes[i]])
	default:
		return sqlir.Null()
	}
}

// appendValue extends the vector by one row. val's type has already been
// checked against the column type by Insert.
func (v *ColumnVec) appendValue(val sqlir.Value) {
	i := v.n
	v.n++
	if i>>6 >= len(v.nulls) {
		v.nulls = append(v.nulls, 0)
	}
	if val.IsNull() {
		v.cowNulls(i)
		v.nulls[i>>6] |= 1 << (uint(i) & 63)
		v.nullCount++
		switch v.typ {
		case sqlir.TypeNumber:
			v.nums = append(v.nums, 0)
		case sqlir.TypeText:
			v.codes = append(v.codes, 0)
		}
		return
	}
	switch v.typ {
	case sqlir.TypeNumber:
		v.nums = append(v.nums, val.Num)
	case sqlir.TypeText:
		if v.dict == nil {
			v.dict = &Dict{}
		}
		v.codes = append(v.codes, v.dict.intern(val.Text))
	}
}

// RawNums returns the numeric value slice (nil for text columns). NULL rows
// hold a zero placeholder; consult the null bitmap. The slice is the
// vector's live backing storage — callers must treat it as read-only. The
// segment store serializes columns from this without per-row calls.
func (v *ColumnVec) RawNums() []float64 { return v.nums }

// RawCodes returns the dictionary-code slice (nil for numeric columns).
// NULL rows hold a zero placeholder. Read-only, like RawNums.
func (v *ColumnVec) RawCodes() []uint32 { return v.codes }

// RawNullWords returns the null bitmap as 64-bit words (bit i of word i/64
// set = row i is NULL; trailing bits of the last word are zero). Read-only,
// like RawNums.
func (v *ColumnVec) RawNullWords() []uint64 { return v.nulls }

// vectorBytes estimates the vector's memory footprint excluding the
// dictionary (reported separately).
func (v *ColumnVec) vectorBytes() int64 {
	return int64(len(v.nums))*8 + int64(len(v.codes))*4 + int64(len(v.nulls))*8
}

// CodeIndex is a typed posting-list index over one column, the vectorized
// analogue of Table.Index: numeric columns key postings by float value,
// text columns by dictionary code (a dense slice, not a map). Columns whose
// non-null values are all integers in a compact range — the FK/PK id
// columns every join probes — get a dense array index instead of a hash
// map, so a join probe is an array load rather than a float hash. Posting
// lists preserve row order. Built lazily, memoized until the next Insert.
type CodeIndex struct {
	once sync.Once
	vec  *ColumnVec
	num  map[float64][]int32 // numeric columns; ±0 collapse like Value.Equal
	text [][]int32           // text columns: postings[code]

	// dense array index for compact integer columns: postings for value v
	// live at dense[int(v)-off]. nil when the column is not dense.
	dense [][]int32
	off   int

	// ready flips after the build completes; Table.adoptBase only extends
	// ready indexes so it never races an in-flight build on the
	// still-serving base table.
	ready atomic.Bool
}

// Num returns the posting list for a float value (nil when absent).
func (ix *CodeIndex) Num(f float64) []int32 {
	if ix.dense != nil {
		if f != math.Trunc(f) || f < float64(ix.off) || f >= float64(ix.off+len(ix.dense)) {
			return nil
		}
		return ix.dense[int(f)-ix.off]
	}
	return ix.num[f]
}

// Text returns the posting list for a dictionary code (nil when out of
// range — a code interned after the index was built has no postings, but
// Insert invalidates the index before that can be observed).
func (ix *CodeIndex) Text(code uint32) []int32 {
	if int(code) >= len(ix.text) {
		return nil
	}
	return ix.text[code]
}

// TextString returns the posting list for a string value via the dictionary
// (nil when the string is not stored in the column).
func (ix *CodeIndex) TextString(s string) []int32 {
	if ix.vec.dict == nil {
		return nil
	}
	c, ok := ix.vec.dict.Lookup(s)
	if !ok {
		return nil
	}
	return ix.Text(c)
}

// Postings returns the posting list for an arbitrary value: typed lookups
// for matching kinds, nil for NULL or kind-mismatched probes (a text value
// never matches a numeric column, exactly as the value-keyed index).
func (ix *CodeIndex) Postings(v sqlir.Value) []int32 {
	switch {
	case v.Kind == sqlir.KindNumber && ix.vec.typ == sqlir.TypeNumber:
		return ix.Num(v.Num)
	case v.Kind == sqlir.KindText && ix.vec.typ == sqlir.TypeText:
		return ix.TextString(v.Text)
	default:
		return nil
	}
}

func (ix *CodeIndex) build() {
	vec := ix.vec
	switch vec.typ {
	case sqlir.TypeNumber:
		if ix.buildDense() {
			return
		}
		ix.num = make(map[float64][]int32, vec.n-vec.nullCount)
		for i := 0; i < vec.n; i++ {
			if vec.IsNull(i) {
				continue
			}
			ix.num[vec.nums[i]] = append(ix.num[vec.nums[i]], int32(i))
		}
	case sqlir.TypeText:
		size := 0
		if vec.dict != nil {
			size = vec.dict.Size()
		}
		ix.text = make([][]int32, size)
		for i := 0; i < vec.n; i++ {
			if vec.IsNull(i) {
				continue
			}
			c := vec.codes[i]
			ix.text[c] = append(ix.text[c], int32(i))
		}
	}
}

// extendFrom populates the index from the previous epoch's ready index over
// the same column: posting lists are shared cap-clamped (delta appends
// reallocate instead of writing into the base's arrays) and only rows
// [baseN, vec.n) are scanned. Reports false when the delta cannot keep the
// base's dense layout — a non-integer or out-of-range value would shift
// every slot — in which case the caller falls back to a full lazy build.
func (ix *CodeIndex) extendFrom(base *CodeIndex, baseN int) bool {
	vec := ix.vec
	switch {
	case base.dense != nil:
		for i := baseN; i < vec.n; i++ {
			if vec.IsNull(i) {
				continue
			}
			f := vec.nums[i]
			if f != math.Trunc(f) || f < float64(base.off) || f >= float64(base.off+len(base.dense)) {
				return false
			}
		}
		ix.off = base.off
		ix.dense = make([][]int32, len(base.dense))
		for s, list := range base.dense {
			ix.dense[s] = list[:len(list):len(list)]
		}
		for i := baseN; i < vec.n; i++ {
			if vec.IsNull(i) {
				continue
			}
			slot := int(vec.nums[i]) - ix.off
			ix.dense[slot] = append(ix.dense[slot], int32(i))
		}
	case base.num != nil:
		ix.num = make(map[float64][]int32, len(base.num))
		for f, list := range base.num {
			ix.num[f] = list[:len(list):len(list)]
		}
		for i := baseN; i < vec.n; i++ {
			if vec.IsNull(i) {
				continue
			}
			ix.num[vec.nums[i]] = append(ix.num[vec.nums[i]], int32(i))
		}
	case vec.typ == sqlir.TypeText:
		size := 0
		if vec.dict != nil {
			size = vec.dict.Size()
		}
		ix.text = make([][]int32, size)
		for c, list := range base.text {
			ix.text[c] = list[:len(list):len(list)]
		}
		for i := baseN; i < vec.n; i++ {
			if vec.IsNull(i) {
				continue
			}
			c := vec.codes[i]
			ix.text[c] = append(ix.text[c], int32(i))
		}
	default:
		return false
	}
	return true
}

// buildDense tries the array-backed layout: every non-null value must be an
// integer and the value range must stay within a small multiple of the row
// count (so id-like columns qualify and sparse ones fall back to the map).
// Reports whether the dense index was built.
func (ix *CodeIndex) buildDense() bool {
	vec := ix.vec
	nonNull := vec.n - vec.nullCount
	if nonNull == 0 {
		return false
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < vec.n; i++ {
		if vec.IsNull(i) {
			continue
		}
		f := vec.nums[i]
		if f != math.Trunc(f) || math.Abs(f) > 1<<31 {
			return false
		}
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	width := hi - lo + 1
	if width > float64(4*nonNull)+1024 {
		return false // sparse ids: a dense array would be mostly holes
	}
	ix.off = int(lo)
	ix.dense = make([][]int32, int(width))
	for i := 0; i < vec.n; i++ {
		if vec.IsNull(i) {
			continue
		}
		slot := int(vec.nums[i]) - ix.off
		ix.dense[slot] = append(ix.dense[slot], int32(i))
	}
	return true
}

// Vector returns the named column's typed vector, or nil if the column does
// not exist. The vector is live: Insert extends it in place, so like Rows
// the snapshot is only stable while no concurrent Insert runs.
func (t *Table) Vector(col string) *ColumnVec {
	ci := t.ColumnIndex(col)
	if ci < 0 {
		return nil
	}
	return &t.vecs[ci]
}

// VectorAt returns the i-th column's typed vector.
func (t *Table) VectorAt(ci int) *ColumnVec { return &t.vecs[ci] }

// CodeIndex returns the typed posting-list index of the named column,
// lazily built and memoized until the next Insert — the code-keyed
// counterpart of Index used by the vectorized streaming pipeline.
func (t *Table) CodeIndex(col string) (*CodeIndex, error) {
	ci := t.ColumnIndex(col)
	if ci < 0 {
		return nil, fmt.Errorf("storage: table %s: no column %s", t.Name, col)
	}
	t.adoptBase()
	t.hashMu.Lock()
	if t.codeIdx == nil {
		t.codeIdx = map[int]*CodeIndex{}
	}
	ix, ok := t.codeIdx[ci]
	if !ok {
		ix = &CodeIndex{vec: &t.vecs[ci]}
		t.codeIdx[ci] = ix
	}
	t.hashMu.Unlock()
	ix.once.Do(ix.build)
	ix.ready.Store(true)
	return ix, nil
}

// ColumnFootprint reports one column's storage cost for the operator stats:
// how large the typed vector is and, for text columns, how much the
// dictionary holds.
type ColumnFootprint struct {
	Column      string
	Type        sqlir.Type
	Rows        int
	Nulls       int
	DictEntries int   // distinct interned strings; 0 for numeric columns
	DictBytes   int64 // dictionary payload + headers; 0 for numeric columns
	VectorBytes int64 // codes/nums vector + null bitmap
}

// Footprint reports per-column storage statistics for the table.
func (t *Table) Footprint() []ColumnFootprint {
	out := make([]ColumnFootprint, len(t.Columns))
	for i, c := range t.Columns {
		vec := &t.vecs[i]
		fp := ColumnFootprint{
			Column:      c.Name,
			Type:        c.Type,
			Rows:        vec.n,
			Nulls:       vec.nullCount,
			VectorBytes: vec.vectorBytes(),
		}
		if vec.dict != nil {
			fp.DictEntries = vec.dict.Size()
			fp.DictBytes = vec.dict.Bytes()
		}
		out[i] = fp
	}
	return out
}

// TableFootprint aggregates one table's columnar storage cost.
type TableFootprint struct {
	Table       string
	Rows        int
	VectorBytes int64
	DictBytes   int64
	Columns     []ColumnFootprint
}

// Footprint reports per-table columnar storage statistics for the whole
// database, in schema order.
func (d *Database) Footprint() []TableFootprint {
	out := make([]TableFootprint, 0, len(d.Schema.Tables))
	for _, t := range d.Schema.Tables {
		tf := TableFootprint{Table: t.Name, Rows: t.NumRows(), Columns: t.Footprint()}
		for _, cf := range tf.Columns {
			tf.VectorBytes += cf.VectorBytes
			tf.DictBytes += cf.DictBytes
		}
		out = append(out, tf)
	}
	return out
}

// sortFloats sorts and deduplicates distinct numeric values.
func sortFloats(set map[float64]struct{}) []float64 {
	out := make([]float64, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Float64s(out)
	return out
}
