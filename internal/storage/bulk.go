// Bulk ingestion: append many rows as typed column vectors in one call.
// The per-row Insert path pays, for every row, an arity/type check loop, a
// row-slice allocation, one mutex round-trip to invalidate the lazy indexes,
// and one atomic generation bump. At load-generation scales (10k–1M rows,
// internal/loadgen) that overhead dominates; BulkAppend amortises all of it
// to one validation pass, one backing-array allocation for the row adapter,
// one index invalidation, and one generation bump per batch.
package storage

import (
	"fmt"
	"math/bits"
	"time"

	"github.com/duoquest/duoquest/internal/faultinject"
	"github.com/duoquest/duoquest/internal/sqlir"
)

// ColumnData is one column's bulk payload for BulkAppend. Numeric columns
// set Nums. Text columns set either Texts (plain strings, interned value by
// value) or the dictionary-encoded pair Codes+Dict (each row is an index
// into Dict) — the natural output of columnar generators and by far the
// fastest ingest form: a fresh column adopts the referenced dictionary
// entries without any hashing. Dict entries never referenced by a non-NULL
// row are not interned, and codes are assigned in first-appearance row
// order, so a bulk-loaded column is byte-identical to the same data
// inserted row by row.
//
// Dict entries must be pairwise distinct — a dictionary is a code table,
// and a duplicate entry would make code-keyed equality unsound. BulkAppend
// rejects duplicates during validation (a fingerprint-set scan of Dict,
// far cheaper than interning every row), and the lazily built lookup map
// re-checks the invariant as a backstop.
//
// Nulls (if non-nil) marks NULL rows — the value slot of a NULL row is
// ignored and stored as the zero placeholder, exactly as Insert stores
// NULLs. NullWords is the packed alternative (bit i&63 of word i>>6 set =
// row i NULL, the column vectors' own layout): the segment loader decodes
// chunk bitmaps straight into it, so a trusted replay ORs whole words into
// the vector bitmap instead of expanding to a []bool and re-scanning it.
// Set at most one of the two forms.
// DictBlob, when non-empty, must be the concatenation of Dict in order —
// set by loaders whose Dict entries are substrings of one backing string.
// A trusted adoption hands it to the dictionary so fingerprinting can fold
// the whole string table as a single word stream.
type ColumnData struct {
	Nums      []float64
	Texts     []string
	Codes     []uint32
	Dict      []string
	DictBlob  string
	Nulls     []bool
	NullWords []uint64
}

// isNull reports whether payload row i is NULL.
func (c ColumnData) isNull(i int) bool {
	if c.Nulls != nil {
		return c.Nulls[i]
	}
	return c.NullWords != nil && c.NullWords[i>>6]>>(uint(i)&63)&1 == 1
}

// hasNulls reports whether the payload carries NULL flags in either form.
func (c ColumnData) hasNulls() bool { return c.Nulls != nil || c.NullWords != nil }

// rows returns the payload length and whether the payload matches the
// declared column type.
func (c ColumnData) rows(typ sqlir.Type) (int, bool) {
	switch typ {
	case sqlir.TypeNumber:
		return len(c.Nums), c.Texts == nil && c.Codes == nil
	case sqlir.TypeText:
		if c.Codes != nil {
			return len(c.Codes), c.Nums == nil && c.Texts == nil
		}
		return len(c.Texts), c.Nums == nil
	default:
		return 0, false
	}
}

// BulkAppend appends one batch of rows given column-wise. All columns must
// be present, typed correctly, and equally long. Only the typed vectors are
// written; the row adapter is left behind and re-materialized lazily on
// first row access (syncRows), so a bulk load that is only ever queried
// through the vectorized pipeline never builds rows at all. The lazy
// indexes are invalidated once and the table generation moves once — so
// downstream caches see one change, not n.
//
// On validation error nothing is appended. Like Insert, BulkAppend must not
// run concurrently with queries on the same table.
func (t *Table) BulkAppend(cols []ColumnData) error {
	return t.bulkAppend(cols, false)
}

// BulkAppendTrusted is BulkAppend minus the O(rows) payload validation:
// codes are not range-checked against the dictionary, the dictionary is not
// scanned for duplicates, and on a fresh column the payload's value slices
// and dictionary are adopted wholesale — no copy, no re-interning — so the
// payload slices must not be modified by the caller afterwards.
//
// The caller vouches that the payload upholds what validation would have
// checked AND what wholesale adoption assumes: every non-NULL code indexes
// Dict, Dict is duplicate-free, entries appear in first-appearance code
// order with every entry referenced, and NULL value slots already hold the
// zero placeholder (they are not re-zeroed). The segment store's load path
// qualifies — its chunks were serialized from vectors already holding these
// invariants, decode re-checks the code ranges, and the whole-database
// fingerprint is compared after the replay, so any divergence still fails
// the load. Everyone else must use BulkAppend.
func (t *Table) BulkAppendTrusted(cols []ColumnData) error {
	return t.bulkAppend(cols, true)
}

func (t *Table) bulkAppend(cols []ColumnData, trusted bool) error {
	// Chaos seam: the ingest path has no request context, so stalls come
	// from the process-global injector (nil in production — one atomic load).
	if d := faultinject.Global().IngestStall(); d > 0 {
		time.Sleep(d)
	}
	if t.frozen {
		return fmt.Errorf("storage: table %s: cannot append to a frozen snapshot", t.Name)
	}
	if len(cols) != len(t.Columns) {
		return fmt.Errorf("storage: table %s: bulk append has %d columns, want %d", t.Name, len(cols), len(t.Columns))
	}
	n := -1
	for i, c := range cols {
		cn, ok := c.rows(t.Columns[i].Type)
		if !ok {
			return fmt.Errorf("storage: table %s column %s: bulk payload does not match type %s",
				t.Name, t.Columns[i].Name, t.Columns[i].Type)
		}
		if c.Nulls != nil && len(c.Nulls) != cn {
			return fmt.Errorf("storage: table %s column %s: %d null flags for %d values",
				t.Name, t.Columns[i].Name, len(c.Nulls), cn)
		}
		if c.NullWords != nil && len(c.NullWords) != (cn+63)/64 {
			return fmt.Errorf("storage: table %s column %s: %d null words for %d values",
				t.Name, t.Columns[i].Name, len(c.NullWords), cn)
		}
		if n < 0 {
			n = cn
		} else if cn != n {
			return fmt.Errorf("storage: table %s column %s: %d values, other columns have %d",
				t.Name, t.Columns[i].Name, cn, n)
		}
		if c.Codes != nil && !trusted {
			for ri, code := range c.Codes {
				if !c.isNull(ri) && int(code) >= len(c.Dict) {
					return fmt.Errorf("storage: table %s column %s: row %d code %d out of dictionary range %d",
						t.Name, t.Columns[i].Name, ri, code, len(c.Dict))
				}
			}
			// Adoption (fresh column) cannot dedupe, so reject duplicate
			// dictionary entries here, at ingest, instead of letting the
			// lazily built lookup map discover them mid-query.
			if t.vecs[i].dict == nil {
				if s, dup := duplicateDictEntry(c.Dict); dup {
					return fmt.Errorf("storage: table %s column %s: duplicate dictionary entry %q",
						t.Name, t.Columns[i].Name, s)
				}
			}
		}
	}
	if n <= 0 {
		if n == 0 {
			return nil
		}
		return fmt.Errorf("storage: table %s: bulk append with no columns", t.Name)
	}

	for ci := range cols {
		t.vecs[ci].appendBulk(cols[ci], n, trusted)
	}
	t.rowsReady.Store(false)

	t.hashMu.Lock()
	t.hash = nil
	t.codeIdx = nil
	t.stats = nil
	t.hashMu.Unlock()
	t.gen.Add(1)
	return nil
}

// duplicateDictEntry reports whether a bulk dictionary holds the same
// string twice, returning the offending entry. The scan keys a set by
// 64-bit FNV-1a fingerprints — an integer-keyed map, several times cheaper
// than hashing the strings into a string-keyed set — and only on a
// fingerprint collision between *distinct* strings (probability ~n²/2⁶⁴)
// falls back to an exact string-set pass.
func duplicateDictEntry(dict []string) (string, bool) {
	seen := make(map[uint64]uint32, len(dict))
	for j, s := range dict {
		h := uint64(14695981039346656037) // FNV-1a offset basis
		for k := 0; k < len(s); k++ {
			h = (h ^ uint64(s[k])) * 1099511628211
		}
		if prev, ok := seen[h]; ok {
			if dict[prev] == s {
				return s, true
			}
			// Distinct strings sharing a 64-bit fingerprint: resolve
			// exactly, once, for the whole dictionary.
			set := make(map[string]struct{}, len(dict))
			for _, s2 := range dict {
				if _, dup := set[s2]; dup {
					return s2, true
				}
				set[s2] = struct{}{}
			}
			return "", false
		}
		seen[h] = uint32(j)
	}
	return "", false
}

// appendBulk extends the vector by n rows from one bulk payload. The
// payload has already been validated against the column type.
func (v *ColumnVec) appendBulk(c ColumnData, n int, trusted bool) {
	base := v.n
	v.n += n
	for (v.n+63)>>6 > len(v.nulls) {
		v.nulls = append(v.nulls, 0)
	}
	switch v.typ {
	case sqlir.TypeNumber:
		if trusted && base == 0 {
			// Trusted payloads hold zero placeholders in NULL slots, so the
			// slice can become the column storage as-is.
			v.nums = c.Nums
			v.setNullBits(c)
			return
		}
		v.nums = append(v.nums, c.Nums...)
		if c.hasNulls() {
			for i := 0; i < n; i++ {
				if c.isNull(i) {
					ri := base + i
					v.cowNulls(ri)
					v.nulls[ri>>6] |= 1 << (uint(ri) & 63)
					v.nullCount++
					v.nums[ri] = 0
				}
			}
		}
	case sqlir.TypeText:
		if trusted && c.Codes != nil && v.dict == nil && base == 0 {
			v.adoptCodes(c)
			return
		}
		if cap(v.codes)-len(v.codes) < n {
			grown := make([]uint32, len(v.codes), len(v.codes)+n)
			copy(grown, v.codes)
			v.codes = grown
		}
		if c.Codes != nil {
			v.appendCodes(c, base)
			return
		}
		if v.dict == nil {
			v.dict = &Dict{}
		}
		for i, s := range c.Texts {
			if c.isNull(i) {
				ri := base + i
				v.cowNulls(ri)
				v.nulls[ri>>6] |= 1 << (uint(ri) & 63)
				v.nullCount++
				v.codes = append(v.codes, 0)
				continue
			}
			v.codes = append(v.codes, v.dict.intern(s))
		}
	}
}

// appendCodes ingests a dictionary-encoded text payload. Codes are
// translated through a dense array (payload code → column code + 1), so
// repeated values cost an array load. On a fresh column the referenced
// dictionary entries are adopted in first-appearance order without any
// hashing — the column's lookup map is built lazily on first use — which is
// what makes dictionary-encoded bulk ingest so much cheaper than per-row
// interning. On a column that already holds a dictionary, each distinct
// payload entry is interned once.
// adoptCodes is the trusted fast path onto a fresh, empty column: the
// payload's dictionary and codes already are the column representation
// (entries in first-appearance code order, all referenced, zero
// placeholders on NULL slots — the BulkAppendTrusted contract), so both
// slices are taken wholesale, without even a copy. The lookup map stays
// lazy, exactly as after an untrusted adoption, and a later intern that
// outgrows the adopted dictionary reallocates rather than scribbling on
// the payload's backing array.
func (v *ColumnVec) adoptCodes(c ColumnData) {
	v.dict = &Dict{strs: c.Dict, blob: c.DictBlob}
	v.codes = c.Codes
	v.setNullBits(c)
}

// setNullBits records payload NULL flags in the vector bitmap without
// touching the value slots (trusted payloads already hold the zero
// placeholders there). Only called from the trusted adopt paths, where the
// batch starts at row 0, so a packed payload ORs straight into the vector
// words.
func (v *ColumnVec) setNullBits(c ColumnData) {
	if c.NullWords != nil {
		for wi, w := range c.NullWords {
			v.nulls[wi] |= w
			v.nullCount += bits.OnesCount64(w)
		}
		return
	}
	for i, isNull := range c.Nulls {
		if isNull {
			v.nulls[i>>6] |= 1 << (uint(i) & 63)
			v.nullCount++
		}
	}
}

func (v *ColumnVec) appendCodes(c ColumnData, base int) {
	adopt := v.dict == nil
	if adopt {
		v.dict = &Dict{strs: make([]string, 0, len(c.Dict))}
	}
	d := v.dict
	mapping := make([]uint32, len(c.Dict))
	for i, code := range c.Codes {
		if c.isNull(i) {
			ri := base + i
			v.cowNulls(ri)
			v.nulls[ri>>6] |= 1 << (uint(ri) & 63)
			v.nullCount++
			v.codes = append(v.codes, 0)
			continue
		}
		m := mapping[code]
		if m == 0 {
			if adopt {
				d.strs = append(d.strs, c.Dict[code])
				m = uint32(len(d.strs))
			} else {
				m = d.intern(c.Dict[code]) + 1
			}
			mapping[code] = m
		}
		v.codes = append(v.codes, m-1)
	}
}
