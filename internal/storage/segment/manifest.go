// Manifest: the one mutable file per persisted database. It names every
// table's segments and their per-column chunk addresses, records the
// database's storage fingerprint, and carries its own checksum, so a
// truncated or hand-edited manifest is rejected before any chunk is read.
// Chunks are immutable and content-addressed; all bookkeeping lives here,
// in the spirit of dolt's nbs manifest over its block store.
package segment

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"github.com/duoquest/duoquest/internal/sqlir"
)

// manifestVersion is bumped on any incompatible format change; a loader
// refuses versions it does not understand instead of misreading them.
const manifestVersion = 1

// manifestName is the manifest's filename inside a database directory.
const manifestName = "manifest.json"

// ManifestColumn is one column of a persisted table.
type ManifestColumn struct {
	Name string `json:"name"`
	Type string `json:"type"` // sqlir.Type.String(): "number" or "text"
}

// ManifestSegment is one immutable batch of rows: exactly one chunk per
// column, in schema order. A table's vectors are the concatenation of its
// segments in list order, each replayed through BulkAppend.
type ManifestSegment struct {
	Rows   int      `json:"rows"`
	Chunks []string `json:"chunks"`
	// Epoch is the storage epoch the flushed batch was published as
	// (AppendSegment routes the batch through Database.Append). Zero for
	// segments written by a full Persist, whose batches predate epoch
	// publication. Informational on load: replay reconstructs the data,
	// not the historical epoch numbering.
	Epoch int64 `json:"epoch,omitempty"`
}

// ManifestTable is one persisted table: schema plus its segment list.
type ManifestTable struct {
	Name       string            `json:"name"`
	PrimaryKey string            `json:"primary_key,omitempty"`
	Columns    []ManifestColumn  `json:"columns"`
	Segments   []ManifestSegment `json:"segments,omitempty"`
}

// ManifestFK is one persisted FK-PK constraint.
type ManifestFK struct {
	Table     string `json:"table"`
	Column    string `json:"column"`
	RefTable  string `json:"ref_table"`
	RefColumn string `json:"ref_column"`
}

// Manifest describes one persisted database. Fingerprint is the
// storage.Fingerprint of the database the chunks reconstruct, re-verified
// after every load; Checksum is the SHA-256 of the manifest's own JSON with
// the checksum field empty, verified before anything else is trusted.
type Manifest struct {
	Version     int             `json:"version"`
	Database    string          `json:"database"`
	Fingerprint string          `json:"fingerprint"` // %016x of storage.Fingerprint
	Tables      []ManifestTable `json:"tables"`
	ForeignKeys []ManifestFK    `json:"foreign_keys,omitempty"`
	Checksum    string          `json:"checksum"`
}

// Segments returns the total segment count across tables.
func (m *Manifest) Segments() int {
	n := 0
	for _, t := range m.Tables {
		n += len(t.Segments)
	}
	return n
}

// Chunks returns the total chunk count across tables.
func (m *Manifest) Chunks() int {
	n := 0
	for _, t := range m.Tables {
		for _, s := range t.Segments {
			n += len(s.Chunks)
		}
	}
	return n
}

// encode marshals the manifest with its checksum filled in, returning the
// bytes to write and the checksum.
func (m *Manifest) encode() ([]byte, string, error) {
	m.Checksum = ""
	body, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, "", err
	}
	sum := sha256.Sum256(body)
	m.Checksum = hex.EncodeToString(sum[:])
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, "", err
	}
	return append(out, '\n'), m.Checksum, nil
}

// decodeManifest parses and checksum-verifies a manifest. The checksum is
// recomputed over the canonical re-marshaling with the checksum field
// empty — the exact bytes encode hashed — so any corruption of the stored
// file (truncation, bit flips, edits) surfaces here, before chunks load.
func decodeManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("corrupt manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("manifest version %d not supported (want %d)", m.Version, manifestVersion)
	}
	want := m.Checksum
	if want == "" {
		return nil, fmt.Errorf("corrupt manifest: missing checksum")
	}
	m.Checksum = ""
	// encode hashed the indented marshaling with the checksum field empty;
	// reproduce those exact bytes for the comparison.
	canon, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(canon)
	if got := hex.EncodeToString(sum[:]); got != want {
		return nil, fmt.Errorf("corrupt manifest: checksum %s, recorded %s", got, want)
	}
	m.Checksum = want
	return &m, nil
}

// parseType resolves a manifest type name.
func parseType(s string) (sqlir.Type, error) {
	switch s {
	case "number":
		return sqlir.TypeNumber, nil
	case "text":
		return sqlir.TypeText, nil
	default:
		return sqlir.TypeUnknown, fmt.Errorf("unknown column type %q", s)
	}
}
