//go:build unix

package segment

import (
	"os"
	"syscall"
)

// readChunkBytes maps a chunk file read-only instead of copying it onto the
// heap. The decoded vectors alias the mapping (see asFloat64s/asUint32s and
// the dictionary blob), so a loaded database's chunk bytes stay backed by
// the page cache — clean, evictable pages the kernel can reclaim under
// pressure — and the cold start never pays the read(2) copy. The mapping is
// intentionally never munmapped: it must outlive the database that aliases
// it, and chunk files are immutable, so holding it is safe. PROT_READ means
// any accidental write through an aliasing slice faults loudly instead of
// corrupting the store.
func readChunkBytes(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size <= 0 || size != int64(int(size)) {
		// Empty (invalid anyway — chunks start with a 16-byte header) or
		// absurdly large: let the copying path produce the decode error.
		return os.ReadFile(path)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return os.ReadFile(path)
	}
	return data, nil
}
