// Package segment is the durable, content-addressed columnar store behind
// Duoquest's fast cold start. Everything above it rebuilds databases in
// memory on every boot; this package turns that rebuild into a load: each
// column of each ingested batch is written once as an immutable,
// SHA-256-addressed chunk file, a per-database manifest maps table →
// segments → chunk addresses, and a loader streams the chunks back through
// Table.BulkAppend's dictionary-adoption path, reconstructing a database
// that is byte-identical (storage.Fingerprint-verified) to the in-memory
// build — in tens of milliseconds where regeneration takes seconds.
//
// Layout under a store directory:
//
//	<dir>/<name>/manifest.json      checksummed bookkeeping (manifest.go)
//	<dir>/<name>/chunks/<sha256>    immutable column chunks (chunk.go)
//
// Chunks never change once written — an incremental flush appends a new
// segment and rewrites only the manifest — so concurrent readers of old
// state stay valid, the property the MVCC-epoch roadmap item builds on.
// Corruption is never silent: a loaded database must reproduce the
// manifest's recorded whole-database fingerprint before it is handed to
// the caller, and when that (or a structural decode check) fails, the
// chunks are re-hashed against their addresses so the error names the
// offending file. The expensive per-chunk hash pass is thus paid only on
// the failure path — on the happy path the fingerprint comparison carries
// the integrity guarantee, which is what keeps cold start in the
// tens-of-milliseconds range.
package segment

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/duoquest/duoquest/internal/storage"
)

// ErrChecksumMismatch marks a chunk whose bytes no longer hash to its
// address. It is always wrapped in a *ChunkError naming the chunk.
var ErrChecksumMismatch = errors.New("checksum mismatch")

// ChunkError is a load failure attributed to one concrete chunk, so an
// operator can name the corrupt file instead of guessing. A partial load is
// never returned alongside one.
type ChunkError struct {
	DB     string
	Table  string
	Column string
	Chunk  string // content address (also the filename)
	Err    error
}

func (e *ChunkError) Error() string {
	return fmt.Sprintf("segment: database %s table %s column %s chunk %s: %v",
		e.DB, e.Table, e.Column, e.Chunk, e.Err)
}

func (e *ChunkError) Unwrap() error { return e.Err }

// LoadInfo summarises one completed load for provenance reporting (/stats):
// what was read, the manifest checksum that vouched for it, and how long
// the cold start took.
type LoadInfo struct {
	Database     string
	Tables       int
	Segments     int
	Chunks       int
	Bytes        int64 // chunk bytes read
	ManifestHash string
	Fingerprint  uint64
	Elapsed      time.Duration
}

// Store is a directory of persisted databases. The zero value is unusable;
// build one with NewStore. A Store is safe for concurrent loads; Persist
// and AppendSegment on the same database must not race with each other.
type Store struct {
	dir string
}

// NewStore opens (creating if needed) a segment store rooted at dir.
func NewStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("segment: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("segment: create store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// checkName guards directory traversal through database names.
func checkName(name string) error {
	if name == "" || name == "." || name == ".." ||
		strings.ContainsAny(name, "/\\") {
		return fmt.Errorf("segment: invalid database name %q", name)
	}
	return nil
}

func (s *Store) dbDir(name string) string    { return filepath.Join(s.dir, name) }
func (s *Store) chunkDir(name string) string { return filepath.Join(s.dir, name, "chunks") }
func (s *Store) manifestAt(name string) string {
	return filepath.Join(s.dir, name, manifestName)
}

// Has reports whether a database is persisted under name (its manifest
// exists; corruption is only detected by Load).
func (s *Store) Has(name string) bool {
	if checkName(name) != nil {
		return false
	}
	_, err := os.Stat(s.manifestAt(name))
	return err == nil
}

// List returns the names of every persisted database, sorted.
func (s *Store) List() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("segment: list store: %w", err)
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() && s.Has(e.Name()) {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// Manifest reads and checksum-verifies the manifest of a persisted
// database without loading any chunks.
func (s *Store) Manifest(name string) (*Manifest, error) {
	if err := checkName(name); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(s.manifestAt(name))
	if err != nil {
		return nil, fmt.Errorf("segment: database %s: manifest: %w", name, err)
	}
	m, err := decodeManifest(data)
	if err != nil {
		return nil, fmt.Errorf("segment: database %s: manifest: %w", name, err)
	}
	return m, nil
}

// Persist writes a full snapshot of the database under its own name: one
// segment per table covering every current row, chunks shared by content
// address with whatever is already in the store. See PersistAs.
func (s *Store) Persist(db *storage.Database) (*Manifest, error) {
	return s.PersistAs(db.Name, db)
}

// PersistAs writes a full snapshot of the database under an explicit store
// name (the load harness keys cache entries by generation-spec content
// address rather than display name). Chunk files are immutable and written
// first; the manifest is written atomically (temp file + rename) last, so
// a crash mid-persist leaves either the previous manifest or none — never
// a manifest naming missing chunks. Must not run concurrently with writes
// to the same database.
func (s *Store) PersistAs(name string, db *storage.Database) (*Manifest, error) {
	if err := checkName(name); err != nil {
		return nil, err
	}
	if db == nil {
		return nil, errors.New("segment: nil database")
	}
	if err := os.MkdirAll(s.chunkDir(name), 0o755); err != nil {
		return nil, fmt.Errorf("segment: persist %s: %w", name, err)
	}
	m := &Manifest{
		Version:     manifestVersion,
		Database:    db.Name,
		Fingerprint: fmt.Sprintf("%016x", storage.Fingerprint(db)),
	}
	// Chunks are independent of one another, so encode+hash+write them in
	// parallel and assemble the manifest from the finished addresses.
	type chunkJob struct {
		ti, ci, rows int
		addr         string
		err          error
	}
	var jobs []*chunkJob
	for ti, t := range db.Schema.Tables {
		if rows := t.NumRows(); rows > 0 {
			for ci := range t.Columns {
				jobs = append(jobs, &chunkJob{ti: ti, ci: ci, rows: rows})
			}
		}
	}
	runJobs(len(jobs), func(i int) {
		j := jobs[i]
		t := db.Schema.Tables[j.ti]
		j.addr, j.err = s.writeChunk(name, encodeColumn(vectorColumn(t.VectorAt(j.ci)), j.rows))
	})
	addrByCol := map[[2]int]string{}
	for _, j := range jobs {
		if j.err != nil {
			t := db.Schema.Tables[j.ti]
			return nil, fmt.Errorf("segment: persist %s table %s column %s: %w",
				name, t.Name, t.Columns[j.ci].Name, j.err)
		}
		addrByCol[[2]int{j.ti, j.ci}] = j.addr
	}
	for ti, t := range db.Schema.Tables {
		mt := ManifestTable{Name: t.Name, PrimaryKey: t.PrimaryKey}
		for _, c := range t.Columns {
			mt.Columns = append(mt.Columns, ManifestColumn{Name: c.Name, Type: c.Type.String()})
		}
		if rows := t.NumRows(); rows > 0 {
			seg := ManifestSegment{Rows: rows}
			for ci := range t.Columns {
				seg.Chunks = append(seg.Chunks, addrByCol[[2]int{ti, ci}])
			}
			mt.Segments = append(mt.Segments, seg)
		}
		m.Tables = append(m.Tables, mt)
	}
	for _, fk := range db.Schema.ForeignKeys {
		m.ForeignKeys = append(m.ForeignKeys, ManifestFK{
			Table: fk.Table, Column: fk.Column, RefTable: fk.RefTable, RefColumn: fk.RefColumn,
		})
	}
	if err := s.writeManifest(name, m); err != nil {
		return nil, err
	}
	return m, nil
}

// AppendSegment flushes one bulk batch through to disk: the batch is
// applied to the live database via Database.Append — publishing it as a new
// storage epoch, so concurrent snapshot readers are isolated from the
// flush — its payload is written as one new segment (one chunk per column),
// and the manifest is atomically rewritten with the new segment, its epoch,
// and the table's post-append fingerprint. Old chunks are never touched —
// the store stays append-only. On error the on-disk state still describes a
// consistent database (the pre-append snapshot); re-Persist to
// resynchronize.
func (s *Store) AppendSegment(name string, db *storage.Database, table string, cols []storage.ColumnData) error {
	m, err := s.Manifest(name)
	if err != nil {
		return err
	}
	if m.Database != db.Name {
		return fmt.Errorf("segment: store entry %s holds database %s, not %s", name, m.Database, db.Name)
	}
	t := db.Table(table)
	if t == nil {
		return fmt.Errorf("segment: database %s has no table %s", db.Name, table)
	}
	var mt *ManifestTable
	for i := range m.Tables {
		if m.Tables[i].Name == table {
			mt = &m.Tables[i]
			break
		}
	}
	if mt == nil {
		return fmt.Errorf("segment: manifest for %s has no table %s", name, table)
	}
	before := t.NumRows()
	// Route through Database.Append so every flushed batch is also a
	// published epoch: readers pinned to earlier epochs keep their view
	// while the flush becomes visible atomically, and the manifest records
	// which epoch each durable segment corresponds to.
	epoch, err := db.Append(table, cols)
	if err != nil {
		return err
	}
	rows := t.NumRows() - before
	if rows == 0 {
		return nil
	}
	seg := ManifestSegment{Rows: rows, Epoch: epoch}
	for ci, c := range cols {
		addr, err := s.writeChunk(name, encodeColumn(normalize(c), rows))
		if err != nil {
			return fmt.Errorf("segment: append %s table %s column %s: %w",
				name, table, t.Columns[ci].Name, err)
		}
		seg.Chunks = append(seg.Chunks, addr)
	}
	mt.Segments = append(mt.Segments, seg)
	m.Fingerprint = fmt.Sprintf("%016x", storage.Fingerprint(db))
	return s.writeManifest(name, m)
}

// Load reconstructs a persisted database: manifest checksum first, then
// every chunk read, decoded, and replayed through the trusted bulk path in
// segment order, and finally the whole database's fingerprint compared
// against the manifest's record. Integrity is optimistic: the fingerprint
// comparison (plus decode's structural checks) is the fast-path gate, and
// only when it fails are the chunks re-hashed to name the corrupt one. Any
// failure returns a nil database — never a silent partial load.
func (s *Store) Load(name string) (*storage.Database, *LoadInfo, error) {
	start := time.Now()
	// The reconstruction allocates the whole database in one burst;
	// letting the collector trigger mid-burst re-marks the half-built
	// vectors (and the million-entry dictionaries) for no benefit. Hold it
	// off for the load and let the next cycle see only the finished heap.
	gcPrev := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(gcPrev)

	m, err := s.Manifest(name)
	if err != nil {
		return nil, nil, err
	}

	tables := make([]*storage.Table, 0, len(m.Tables))
	for _, mt := range m.Tables {
		cols := make([]storage.Column, 0, len(mt.Columns))
		for _, mc := range mt.Columns {
			typ, err := parseType(mc.Type)
			if err != nil {
				return nil, nil, fmt.Errorf("segment: database %s table %s column %s: %w", name, mt.Name, mc.Name, err)
			}
			cols = append(cols, storage.Column{Name: mc.Name, Type: typ})
		}
		tables = append(tables, storage.NewTable(mt.Name, mt.PrimaryKey, cols...))
	}
	schema := storage.NewSchema(tables...)
	for _, fk := range m.ForeignKeys {
		schema.AddForeignKey(fk.Table, fk.Column, fk.RefTable, fk.RefColumn)
	}
	if err := schema.Validate(); err != nil {
		return nil, nil, fmt.Errorf("segment: database %s: persisted schema invalid: %w", name, err)
	}

	info := &LoadInfo{Database: m.Database, Tables: len(m.Tables), ManifestHash: m.Checksum}
	for _, mt := range m.Tables {
		for _, seg := range mt.Segments {
			if len(seg.Chunks) != len(mt.Columns) {
				return nil, nil, fmt.Errorf("segment: database %s table %s: segment has %d chunks for %d columns",
					name, mt.Name, len(seg.Chunks), len(mt.Columns))
			}
			info.Segments++
			info.Chunks += len(seg.Chunks)
		}
	}

	// Tables replay independently, and within a table every chunk reads,
	// hash-verifies, and decodes independently — only the segment-order
	// BulkAppend replay is sequential per table. Parallelizing across
	// tables AND chunks is what gets a many-megabyte database into memory
	// in tens of milliseconds instead of hundreds.
	tableErrs := make([]error, len(m.Tables))
	tableBytes := make([]int64, len(m.Tables))
	runJobs(len(m.Tables), func(ti int) {
		tableBytes[ti], tableErrs[ti] = s.loadTable(name, m.Tables[ti], tables[ti])
	})
	for _, err := range tableErrs {
		if err != nil {
			return nil, nil, err
		}
	}
	for _, b := range tableBytes {
		info.Bytes += b
	}

	db := storage.NewDatabase(m.Database, schema)
	info.Fingerprint = storage.Fingerprint(db)
	if got := fmt.Sprintf("%016x", info.Fingerprint); got != m.Fingerprint {
		// Corruption, or a replay bug. Pay for the per-chunk hashes now to
		// name the corrupt chunk if there is one.
		if err := s.auditChunks(name, m); err != nil {
			return nil, nil, err
		}
		return nil, nil, fmt.Errorf("segment: database %s: loaded fingerprint %s does not match manifest %s",
			name, got, m.Fingerprint)
	}
	info.Elapsed = time.Since(start)
	return db, info, nil
}

// loadTable reads, hash-verifies, and decodes every chunk of one table in
// parallel, then replays its segments in order through the trusted bulk
// path: decodeColumn already range-checked the codes, chunk addresses
// verified the content, and Load compares the whole-database fingerprint
// afterwards, so skipping BulkAppend's O(rows) re-validation is safe and is
// most of the cold-start win. Returns the chunk bytes read.
func (s *Store) loadTable(name string, mt ManifestTable, t *storage.Table) (int64, error) {
	type chunkRes struct {
		col  storage.ColumnData
		rows int
		err  error
	}
	type chunkRef struct{ si, ci int }
	segCols := make([][]chunkRes, len(mt.Segments))
	var refs []chunkRef
	for si, seg := range mt.Segments {
		segCols[si] = make([]chunkRes, len(seg.Chunks))
		for ci := range seg.Chunks {
			refs = append(refs, chunkRef{si, ci})
		}
	}
	runJobs(len(refs), func(i int) {
		ref := refs[i]
		r := &segCols[ref.si][ref.ci]
		r.col, r.rows, r.err = s.readChunk(name, mt.Name, mt.Columns[ref.ci], mt.Segments[ref.si].Chunks[ref.ci])
	})
	var bytes int64
	for si, seg := range mt.Segments {
		cols := make([]storage.ColumnData, len(seg.Chunks))
		for ci := range segCols[si] {
			r := &segCols[si][ci]
			if r.err != nil {
				return 0, r.err
			}
			if r.rows != seg.Rows {
				return 0, &ChunkError{DB: name, Table: mt.Name, Column: mt.Columns[ci].Name, Chunk: seg.Chunks[ci],
					Err: fmt.Errorf("holds %d rows, manifest says %d", r.rows, seg.Rows)}
			}
			cols[ci] = r.col
			bytes += chunkFileSize(r.col, r.rows)
		}
		if err := t.BulkAppendTrusted(cols); err != nil {
			return 0, fmt.Errorf("segment: database %s table %s: replay segment: %w", name, mt.Name, err)
		}
	}
	return bytes, nil
}

// runJobs calls fn(0..n-1) across up to GOMAXPROCS goroutines and waits for
// all of them. fn must be safe to run concurrently for distinct indices.
func runJobs(n int, fn func(int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// readChunk reads and decodes one chunk. Verification is optimistic: the
// happy path does NOT re-hash the content (at tens of MB per database the
// SHA-256 pass alone would dominate the cold start) — decode's structural
// checks plus Load's whole-database fingerprint comparison catch every
// corruption, and only a failure pays for hashing, to attribute the error
// to checksum mismatch versus a format bug.
func (s *Store) readChunk(name, table string, col ManifestColumn, addr string) (storage.ColumnData, int, error) {
	var zero storage.ColumnData
	if len(addr) != 2*addressBytes || strings.ContainsAny(addr, "/\\") {
		return zero, 0, &ChunkError{DB: name, Table: table, Column: col.Name, Chunk: addr,
			Err: errors.New("malformed chunk address")}
	}
	data, err := readChunkBytes(filepath.Join(s.chunkDir(name), addr))
	if err != nil {
		return zero, 0, &ChunkError{DB: name, Table: table, Column: col.Name, Chunk: addr, Err: err}
	}
	typ, err := parseType(col.Type)
	if err != nil {
		return zero, 0, &ChunkError{DB: name, Table: table, Column: col.Name, Chunk: addr, Err: err}
	}
	c, rows, err := decodeColumn(data, typ)
	if err != nil {
		if got := address(data); got != addr {
			err = fmt.Errorf("%w: content hashes to %s", ErrChecksumMismatch, got)
		}
		return zero, 0, &ChunkError{DB: name, Table: table, Column: col.Name, Chunk: addr, Err: err}
	}
	return c, rows, nil
}

// auditChunks re-reads and re-hashes every chunk of a manifest, returning a
// *ChunkError naming the first whose bytes no longer match their address.
// It is the slow attribution pass behind optimistic verification, run only
// after the loaded database failed the fingerprint comparison.
func (s *Store) auditChunks(name string, m *Manifest) error {
	for _, mt := range m.Tables {
		for _, seg := range mt.Segments {
			for ci, addr := range seg.Chunks {
				data, err := os.ReadFile(filepath.Join(s.chunkDir(name), addr))
				if err != nil {
					return &ChunkError{DB: name, Table: mt.Name, Column: mt.Columns[ci].Name, Chunk: addr, Err: err}
				}
				if got := address(data); got != addr {
					return &ChunkError{DB: name, Table: mt.Name, Column: mt.Columns[ci].Name, Chunk: addr,
						Err: fmt.Errorf("%w: content hashes to %s", ErrChecksumMismatch, got)}
				}
			}
		}
	}
	return nil
}

// chunkFileSize recomputes a decoded chunk's on-disk size for LoadInfo
// accounting without a second stat call.
func chunkFileSize(c storage.ColumnData, rows int) int64 {
	return int64(encodedSize(c, rows, c.Nulls != nil || c.NullWords != nil))
}

// writeChunk stores encoded bytes under their content address, returning
// the address. An existing file with that address already holds identical
// content (that is the point of content addressing), so it is reused —
// repeated persists and shared columns across databases cost nothing new.
// Writes go through a temp file + rename so a crash never leaves a partial
// chunk under a valid address.
func (s *Store) writeChunk(name string, encoded []byte) (string, error) {
	addr := address(encoded)
	path := filepath.Join(s.chunkDir(name), addr)
	if st, err := os.Stat(path); err == nil && st.Size() == int64(len(encoded)) {
		return addr, nil
	}
	if err := atomicWrite(path, encoded); err != nil {
		return "", err
	}
	return addr, nil
}

// writeManifest atomically replaces the database's manifest.
func (s *Store) writeManifest(name string, m *Manifest) error {
	data, _, err := m.encode()
	if err != nil {
		return fmt.Errorf("segment: encode manifest for %s: %w", name, err)
	}
	if err := atomicWrite(s.manifestAt(name), data); err != nil {
		return fmt.Errorf("segment: write manifest for %s: %w", name, err)
	}
	return nil
}

// atomicWrite writes data to path via a temp file in the same directory
// and a rename, so readers never observe a partial file.
func atomicWrite(path string, data []byte) error {
	f, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
