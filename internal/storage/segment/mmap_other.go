//go:build !unix

package segment

import "os"

// readChunkBytes falls back to a plain heap read where mmap is unavailable.
func readChunkBytes(path string) ([]byte, error) {
	return os.ReadFile(path)
}
