package segment

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/duoquest/duoquest/internal/loadgen"
	"github.com/duoquest/duoquest/internal/sqlexec"
	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/storage"
)

// handBuilt returns a small database exercising every storage feature the
// chunk codec must round-trip: text dictionaries, NULLs in both column
// types, an FK constraint, and an empty table.
func handBuilt(t *testing.T) *storage.Database {
	t.Helper()
	genres := storage.NewTable("genres", "id",
		storage.Column{Name: "id", Type: sqlir.TypeNumber},
		storage.Column{Name: "name", Type: sqlir.TypeText},
	)
	movies := storage.NewTable("movies", "id",
		storage.Column{Name: "id", Type: sqlir.TypeNumber},
		storage.Column{Name: "title", Type: sqlir.TypeText},
		storage.Column{Name: "genre_id", Type: sqlir.TypeNumber},
		storage.Column{Name: "rating", Type: sqlir.TypeNumber},
	)
	empty := storage.NewTable("empty", "id",
		storage.Column{Name: "id", Type: sqlir.TypeNumber},
		storage.Column{Name: "note", Type: sqlir.TypeText},
	)
	schema := storage.NewSchema(genres, movies, empty)
	schema.AddForeignKey("movies", "genre_id", "genres", "id")
	if err := schema.Validate(); err != nil {
		t.Fatal(err)
	}
	genres.MustInsert(sqlir.NewNumber(1), sqlir.NewText("drama"))
	genres.MustInsert(sqlir.NewNumber(2), sqlir.NewText("comedy"))
	movies.MustInsert(sqlir.NewNumber(1), sqlir.NewText("Alpha"), sqlir.NewNumber(1), sqlir.NewNumber(8.1))
	movies.MustInsert(sqlir.NewNumber(2), sqlir.Null(), sqlir.NewNumber(2), sqlir.Null())
	movies.MustInsert(sqlir.NewNumber(3), sqlir.NewText("Alpha"), sqlir.NewNumber(1), sqlir.NewNumber(6.5))
	return storage.NewDatabase("handbuilt", schema)
}

// mustPersist persists db into a fresh store under a temp dir.
func mustPersist(t *testing.T, db *storage.Database) (*Store, *Manifest) {
	t.Helper()
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m, err := store.Persist(db)
	if err != nil {
		t.Fatal(err)
	}
	return store, m
}

func TestRoundTripHandBuilt(t *testing.T) {
	db := handBuilt(t)
	want := storage.Fingerprint(db)
	store, m := mustPersist(t, db)

	if m.Fingerprint != fmt.Sprintf("%016x", want) {
		t.Fatalf("manifest fingerprint %s, database %016x", m.Fingerprint, want)
	}
	// Three tables, one of them empty: two segments.
	if got := m.Segments(); got != 2 {
		t.Fatalf("segments = %d, want 2", got)
	}

	loaded, info, err := store.Load(db.Name)
	if err != nil {
		t.Fatal(err)
	}
	if got := storage.Fingerprint(loaded); got != want {
		t.Fatalf("loaded fingerprint %016x, want %016x", got, want)
	}
	if info.Tables != 3 || info.Segments != 2 || info.Chunks != 6 {
		t.Fatalf("info = %+v, want 3 tables / 2 segments / 6 chunks", info)
	}
	if loaded.Table("empty").NumRows() != 0 {
		t.Fatal("empty table gained rows")
	}
	if len(loaded.Schema.ForeignKeys) != 1 {
		t.Fatalf("foreign keys = %d, want 1", len(loaded.Schema.ForeignKeys))
	}
	// NULLs must survive as NULLs, not zero values.
	mv := loaded.Table("movies")
	if v := mv.Row(1)[1]; !v.IsNull() {
		t.Fatalf("movies row 1 title = %v, want NULL", v)
	}
	if v := mv.Row(1)[3]; !v.IsNull() {
		t.Fatalf("movies row 1 rating = %v, want NULL", v)
	}
}

// TestRoundTripProperty persists and reloads generated databases across the
// NULL-rate and skew grid, asserting fingerprint identity and — as a
// differential oracle — that verification probes answer identically against
// the loaded database and the never-persisted original.
func TestRoundTripProperty(t *testing.T) {
	rowCounts := []int{10_000, 100_000}
	if testing.Short() {
		rowCounts = []int{10_000}
	}
	for _, rows := range rowCounts {
		for _, nullRate := range []float64{-1, 0.35} {
			for _, zipf := range []float64{1.1, 2.0} {
				name := fmt.Sprintf("rows=%d/null=%g/zipf=%g", rows, nullRate, zipf)
				t.Run(name, func(t *testing.T) {
					spec := loadgen.Spec{Name: "prop", Tables: 5, Rows: rows, NullRate: nullRate, ZipfS: zipf}
					g, err := loadgen.Generate(spec, 42)
					if err != nil {
						t.Fatal(err)
					}
					want := storage.Fingerprint(g.DB)
					store, _ := mustPersist(t, g.DB)
					loaded, _, err := store.Load(g.DB.Name)
					if err != nil {
						t.Fatal(err)
					}
					if got := storage.Fingerprint(loaded); got != want {
						t.Fatalf("loaded fingerprint %016x, want %016x", got, want)
					}
					for pi, eq := range g.Probes(40, 7) {
						gotHit, err1 := sqlexec.Exists(loaded, eq)
						wantHit, err2 := sqlexec.Exists(g.DB, eq)
						if err1 != nil || err2 != nil {
							t.Fatalf("probe %d: %v / %v", pi, err1, err2)
						}
						if gotHit != wantHit {
							t.Fatalf("probe %d: loaded says %v, original says %v", pi, gotHit, wantHit)
						}
					}
				})
			}
		}
	}
}

// TestAppendSegment checks the incremental flush path: bulk batches applied
// through AppendSegment land as extra segments, and a load replays them to
// the exact same bytes.
func TestAppendSegment(t *testing.T) {
	db := handBuilt(t)
	store, _ := mustPersist(t, db)

	batch := []storage.ColumnData{
		{Nums: []float64{4, 5}},
		{Texts: []string{"Beta", "Alpha"}, Nulls: []bool{false, false}},
		{Nums: []float64{2, 1}},
		{Nums: []float64{0, 7.5}, Nulls: []bool{true, false}},
	}
	if err := store.AppendSegment(db.Name, db, "movies", batch); err != nil {
		t.Fatal(err)
	}
	if got := db.Table("movies").NumRows(); got != 5 {
		t.Fatalf("movies rows = %d, want 5", got)
	}
	m, err := store.Manifest(db.Name)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Segments(); got != 3 {
		t.Fatalf("segments = %d, want 3", got)
	}
	// The flush went through Database.Append, so the manifest records the
	// storage epoch the batch was published as (Persist-era segments stay 0).
	if got, want := db.Epoch(), int64(1); got < want {
		t.Fatalf("database epoch after flush = %d, want >= %d", got, want)
	}
	for _, mt := range m.Tables {
		if mt.Name != "movies" {
			continue
		}
		last := mt.Segments[len(mt.Segments)-1]
		if last.Epoch != db.Epoch() {
			t.Fatalf("flushed segment epoch = %d, want %d", last.Epoch, db.Epoch())
		}
	}
	loaded, _, err := store.Load(db.Name)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := storage.Fingerprint(loaded), storage.Fingerprint(db); got != want {
		t.Fatalf("loaded fingerprint %016x, want %016x", got, want)
	}
	if v := loaded.Table("movies").Row(3)[3]; !v.IsNull() {
		t.Fatalf("appended NULL came back %v", v)
	}
}

// firstChunkPath returns the path and address of one chunk of the persisted
// database, preferring a text column so dictionary bytes are in play.
func firstChunkPath(t *testing.T, store *Store, name string) (string, string) {
	t.Helper()
	m, err := store.Manifest(name)
	if err != nil {
		t.Fatal(err)
	}
	for _, mt := range m.Tables {
		for _, seg := range mt.Segments {
			for ci, addr := range seg.Chunks {
				if mt.Columns[ci].Type == "text" {
					return filepath.Join(store.Dir(), name, "chunks", addr), addr
				}
			}
		}
	}
	t.Fatal("no text chunk found")
	return "", ""
}

func TestCorruptChunkDetected(t *testing.T) {
	db := handBuilt(t)
	store, _ := mustPersist(t, db)
	path, addr := firstChunkPath(t, store, db.Name)

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, _, err = store.Load(db.Name)
	var ce *ChunkError
	if !errors.As(err, &ce) {
		t.Fatalf("want *ChunkError, got %v", err)
	}
	if ce.Chunk != addr {
		t.Fatalf("error names chunk %s, corrupted %s", ce.Chunk, addr)
	}
	if !errors.Is(err, ErrChecksumMismatch) {
		t.Fatalf("want ErrChecksumMismatch, got %v", err)
	}
	if !strings.Contains(err.Error(), addr) {
		t.Fatalf("error message does not name the chunk: %v", err)
	}
}

func TestMissingChunkDetected(t *testing.T) {
	db := handBuilt(t)
	store, _ := mustPersist(t, db)
	path, addr := firstChunkPath(t, store, db.Name)
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	_, _, err := store.Load(db.Name)
	var ce *ChunkError
	if !errors.As(err, &ce) {
		t.Fatalf("want *ChunkError, got %v", err)
	}
	if ce.Chunk != addr {
		t.Fatalf("error names chunk %s, deleted %s", ce.Chunk, addr)
	}
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("want os.ErrNotExist in chain, got %v", err)
	}
}

func TestTruncatedManifestDetected(t *testing.T) {
	db := handBuilt(t)
	store, _ := mustPersist(t, db)
	path := filepath.Join(store.Dir(), db.Name, manifestName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.Load(db.Name); err == nil ||
		!strings.Contains(err.Error(), "manifest") {
		t.Fatalf("want manifest error, got %v", err)
	}
}

func TestEditedManifestDetected(t *testing.T) {
	db := handBuilt(t)
	store, _ := mustPersist(t, db)
	path := filepath.Join(store.Dir(), db.Name, manifestName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	edited := strings.Replace(string(data), `"rows": 3`, `"rows": 4`, 1)
	if edited == string(data) {
		t.Fatal("edit did not apply")
	}
	if err := os.WriteFile(path, []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.Load(db.Name); err == nil ||
		!strings.Contains(err.Error(), "checksum") {
		t.Fatalf("want checksum error, got %v", err)
	}
}

// TestChunkDedupe: re-persisting the same database writes no new chunk
// files, and persisting under a second name shares every chunk address.
func TestChunkDedupe(t *testing.T) {
	db := handBuilt(t)
	store, m1 := mustPersist(t, db)
	countChunks := func() int {
		entries, err := os.ReadDir(filepath.Join(store.Dir(), db.Name, "chunks"))
		if err != nil {
			t.Fatal(err)
		}
		return len(entries)
	}
	before := countChunks()
	m2, err := store.Persist(db)
	if err != nil {
		t.Fatal(err)
	}
	if after := countChunks(); after != before {
		t.Fatalf("re-persist grew chunk dir %d -> %d", before, after)
	}
	if m1.Fingerprint != m2.Fingerprint {
		t.Fatalf("fingerprint drifted across persists: %s vs %s", m1.Fingerprint, m2.Fingerprint)
	}
}

func TestStoreNameValidation(t *testing.T) {
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	db := handBuilt(t)
	for _, bad := range []string{"", ".", "..", "a/b", `a\b`, "../escape"} {
		if _, err := store.PersistAs(bad, db); err == nil {
			t.Fatalf("PersistAs(%q) accepted", bad)
		}
		if store.Has(bad) {
			t.Fatalf("Has(%q) = true", bad)
		}
		if _, _, err := store.Load(bad); err == nil {
			t.Fatalf("Load(%q) accepted", bad)
		}
	}
}

func TestHasAndList(t *testing.T) {
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if store.Has("handbuilt") {
		t.Fatal("Has on empty store")
	}
	if _, err := store.Persist(handBuilt(t)); err != nil {
		t.Fatal(err)
	}
	if !store.Has("handbuilt") {
		t.Fatal("Has after persist")
	}
	// A stray directory without a manifest is not a database.
	if err := os.MkdirAll(filepath.Join(store.Dir(), "stray"), 0o755); err != nil {
		t.Fatal(err)
	}
	names, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "handbuilt" {
		t.Fatalf("List = %v, want [handbuilt]", names)
	}
}

// TestLoadIsolation: a corrupt entry fails alone; a healthy sibling in the
// same store still loads.
func TestLoadIsolation(t *testing.T) {
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	db := handBuilt(t)
	if _, err := store.PersistAs("good", db); err != nil {
		t.Fatal(err)
	}
	if _, err := store.PersistAs("bad", db); err != nil {
		t.Fatal(err)
	}
	path, _ := firstChunkPath(t, store, "bad")
	if err := os.Truncate(path, 3); err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.Load("bad"); err == nil {
		t.Fatal("corrupt entry loaded")
	}
	loaded, _, err := store.Load("good")
	if err != nil {
		t.Fatalf("healthy sibling failed: %v", err)
	}
	if got, want := storage.Fingerprint(loaded), storage.Fingerprint(db); got != want {
		t.Fatalf("sibling fingerprint %016x, want %016x", got, want)
	}
}
