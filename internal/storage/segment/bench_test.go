package segment

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"github.com/duoquest/duoquest/internal/loadgen"
	"github.com/duoquest/duoquest/internal/storage"
)

// benchScales are the persisted-database sizes the storage benchmarks
// sweep; the 1M-row point is the cold-start headline and is skipped under
// -short.
var benchScales = []int{100_000, 1_000_000}

// benchFixtures caches one generated database per scale across benchmarks,
// so BenchmarkSegmentWrite and BenchmarkSegmentLoad amortize the expensive
// generation instead of paying it once each.
var (
	benchMu       sync.Mutex
	benchFixtures = map[int]*loadgen.Generated{}
)

func benchDB(b *testing.B, rows int) *loadgen.Generated {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if g, ok := benchFixtures[rows]; ok {
		return g
	}
	spec, _ := loadgen.Preset("medium")
	spec.Name = "bench"
	spec.Rows = rows
	g, err := loadgen.Generate(spec, 1)
	if err != nil {
		b.Fatal(err)
	}
	benchFixtures[rows] = g
	return g
}

func skipLargeShort(b *testing.B, rows int) {
	if testing.Short() && rows > 100_000 {
		b.Skipf("skipping %d rows in -short", rows)
	}
}

// BenchmarkSegmentWrite measures a full persist: every chunk encoded,
// hashed, and written plus the manifest. Each iteration writes into a fresh
// store directory so content-address dedupe cannot turn later iterations
// into no-ops.
func BenchmarkSegmentWrite(b *testing.B) {
	for _, rows := range benchScales {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			skipLargeShort(b, rows)
			g := benchDB(b, rows)
			dir := b.TempDir()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				store, err := NewStore(filepath.Join(dir, fmt.Sprintf("iter%d", i)))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := store.Persist(g.DB); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			os.RemoveAll(dir)
		})
	}
}

// BenchmarkSegmentLoad is the cold start: manifest verify, every chunk
// read + hash-verified + decoded, BulkAppend replay, and the final
// whole-database fingerprint check. bytes/op is the chunk volume read.
func BenchmarkSegmentLoad(b *testing.B) {
	for _, rows := range benchScales {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			skipLargeShort(b, rows)
			g := benchDB(b, rows)
			want := storage.Fingerprint(g.DB)
			store, err := NewStore(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := store.Persist(g.DB); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				db, info, err := store.Load(g.DB.Name)
				if err != nil {
					b.Fatal(err)
				}
				if info.Fingerprint != want {
					b.Fatalf("fingerprint %016x, want %016x", info.Fingerprint, want)
				}
				if i == 0 {
					b.SetBytes(info.Bytes)
				}
				_ = db
				// A real cold start loads once into a young heap; without
				// this, iteration i pays to garbage-collect the i-1
				// databases this loop abandoned, which is benchmark
				// artifact, not load cost.
				b.StopTimer()
				runtime.GC()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkSegmentRebuild is the alternative the segment store replaces:
// regenerating the same database from its spec (deterministic plan build +
// value synthesis + bulk ingest). SegmentLoad ns/op over SegmentRebuild
// ns/op is the cold-start speedup EXPERIMENTS.md records.
func BenchmarkSegmentRebuild(b *testing.B) {
	for _, rows := range benchScales {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			skipLargeShort(b, rows)
			spec, _ := loadgen.Preset("medium")
			spec.Name = "bench"
			spec.Rows = rows
			for i := 0; i < b.N; i++ {
				if _, err := loadgen.Generate(spec, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
