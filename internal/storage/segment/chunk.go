// Chunk codec: one immutable, content-addressed file per column per
// segment. A chunk serializes exactly the bulk-ingest form of a column
// (storage.ColumnData): float64 vectors for numeric columns, dictionary
// codes plus the interned dictionary for text columns, and a packed null
// bitmap. The chunk's address is the SHA-256 of its encoded bytes, so the
// filename doubles as the checksum: a loader that rehashes the file and
// compares against the manifest's expected address detects every flipped
// bit without a separate checksum field.
package segment

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"unsafe"

	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/storage"
)

// chunk layout (all integers little-endian):
//
//	[0:4]   magic "DQS1"
//	[4]     kind: 0 = numeric, 1 = text (dictionary-coded)
//	[5]     flags: bit 0 = null bitmap present
//	[6:8]   reserved (zero)
//	[8:16]  row count (uint64)
//	numeric: rows × 8 bytes of float64 bits
//	text:    dict length (uint32), dictLen × uint32 entry byte lengths, the
//	         concatenated entry bytes, zero padding to the next 4-byte file
//	         offset, then rows × 4 bytes of dictionary codes
//	nulls:   ceil(rows/8) bytes, bit (i&7) of byte i>>3 set = row i NULL
//
// The value arrays sit at naturally aligned file offsets (the header is 16
// bytes and the code array is padded to 4), so on a little-endian host the
// loader reinterprets them in place instead of decoding element by element
// — the mmap-style zero-copy that keeps cold start in the memory-bandwidth
// regime. The dictionary stores all entry lengths before all entry bytes
// for the same reason: the loader materialises one backing string for the
// whole dictionary and slices entries out of it, one allocation instead of
// one per entry.
const (
	chunkMagic   = "DQS1"
	chunkHeader  = 16
	kindNum      = byte(0)
	kindText     = byte(1)
	flagNulls    = byte(1)
	addressBytes = sha256.Size
)

// pad4 returns the zero bytes needed to advance off to a 4-byte boundary.
func pad4(off int) int { return (4 - off&3) & 3 }

// hostLittleEndian gates the zero-copy reinterpretation of chunk payloads:
// the on-disk format is little-endian, so a big-endian host falls back to
// the element-wise decode.
var hostLittleEndian = binary.NativeEndian.Uint16([]byte{1, 0}) == 1

// address is a chunk's content hash, rendered as lower-case hex in the
// manifest and as the chunk's filename.
func address(encoded []byte) string {
	sum := sha256.Sum256(encoded)
	return hex.EncodeToString(sum[:])
}

// encodedSize returns the exact encoding length, so one allocation holds
// the whole chunk.
func encodedSize(c storage.ColumnData, rows int, hasNulls bool) int {
	n := chunkHeader
	if c.Nums != nil {
		n += rows * 8
	} else {
		n += 4 + 4*len(c.Dict)
		for _, s := range c.Dict {
			n += len(s)
		}
		n += pad4(n)
		n += rows * 4
	}
	if hasNulls {
		n += (rows + 7) / 8
	}
	return n
}

// encodeColumn serializes a normalized column payload (Nums or Codes+Dict —
// never Texts; see normalize) of the given row count.
func encodeColumn(c storage.ColumnData, rows int) []byte {
	hasNulls := false
	for _, isNull := range c.Nulls {
		if isNull {
			hasNulls = true
			break
		}
	}
	out := make([]byte, chunkHeader, encodedSize(c, rows, hasNulls))
	copy(out, chunkMagic)
	if c.Nums != nil {
		out[4] = kindNum
	} else {
		out[4] = kindText
	}
	if hasNulls {
		out[5] = flagNulls
	}
	binary.LittleEndian.PutUint64(out[8:], uint64(rows))

	var buf [8]byte
	if c.Nums != nil {
		for _, f := range c.Nums {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
			out = append(out, buf[:]...)
		}
	} else {
		binary.LittleEndian.PutUint32(buf[:4], uint32(len(c.Dict)))
		out = append(out, buf[:4]...)
		for _, s := range c.Dict {
			binary.LittleEndian.PutUint32(buf[:4], uint32(len(s)))
			out = append(out, buf[:4]...)
		}
		for _, s := range c.Dict {
			out = append(out, s...)
		}
		for range pad4(len(out)) {
			out = append(out, 0)
		}
		for _, code := range c.Codes {
			binary.LittleEndian.PutUint32(buf[:4], code)
			out = append(out, buf[:4]...)
		}
	}
	if hasNulls {
		bits := make([]byte, (rows+7)/8)
		for i, isNull := range c.Nulls {
			if isNull {
				bits[i>>3] |= 1 << (uint(i) & 7)
			}
		}
		out = append(out, bits...)
	}
	return out
}

// decodeColumn parses a chunk back into the bulk-ingest payload. The
// declared column type cross-checks the chunk kind, and every length is
// validated so a truncated or padded file fails loudly instead of feeding
// garbage to BulkAppend.
func decodeColumn(data []byte, typ sqlir.Type) (storage.ColumnData, int, error) {
	var c storage.ColumnData
	if len(data) < chunkHeader || string(data[:4]) != chunkMagic {
		return c, 0, fmt.Errorf("bad chunk header")
	}
	kind, flags := data[4], data[5]
	rows64 := binary.LittleEndian.Uint64(data[8:])
	if rows64 > uint64(math.MaxInt32) {
		return c, 0, fmt.Errorf("implausible row count %d", rows64)
	}
	rows := int(rows64)
	switch {
	case kind == kindNum && typ != sqlir.TypeNumber,
		kind == kindText && typ != sqlir.TypeText:
		return c, 0, fmt.Errorf("chunk kind %d does not match column type %s", kind, typ)
	}
	rest := data[chunkHeader:]
	switch kind {
	case kindNum:
		if len(rest) < rows*8 {
			return c, 0, fmt.Errorf("truncated numeric payload: %d bytes for %d rows", len(rest), rows)
		}
		c.Nums = asFloat64s(rest[:rows*8], rows)
		rest = rest[rows*8:]
	case kindText:
		if len(rest) < 4 {
			return c, 0, fmt.Errorf("truncated dictionary length")
		}
		dictLen := int(binary.LittleEndian.Uint32(rest))
		rest = rest[4:]
		if dictLen > len(rest)/4 {
			return c, 0, fmt.Errorf("truncated dictionary: %d bytes for %d entry lengths", len(rest), dictLen)
		}
		lens := rest[:4*dictLen]
		rest = rest[4*dictLen:]
		total := 0
		for i := 0; i < dictLen; i++ {
			n := int(binary.LittleEndian.Uint32(lens[i*4:]))
			if n > len(rest)-total {
				return c, 0, fmt.Errorf("truncated dictionary entry %d: %d bytes past payload end", i, n)
			}
			total += n
		}
		// One backing string for the whole dictionary; entries are
		// zero-copy substrings of it. The string itself views the chunk
		// buffer in place — the buffer is owned by this load and never
		// mutated (same contract as asFloat64s/asUint32s).
		var blob string
		if total > 0 {
			blob = unsafe.String(&rest[0], total)
		}
		rest = rest[total:]
		dict := make([]string, dictLen)
		off := 0
		for i := range dict {
			n := int(binary.LittleEndian.Uint32(lens[i*4:]))
			dict[i] = blob[off : off+n]
			off += n
		}
		if p := pad4(len(data) - len(rest)); p > 0 {
			if len(rest) < p {
				return c, 0, fmt.Errorf("truncated code padding")
			}
			rest = rest[p:]
		}
		if len(rest) < rows*4 {
			return c, 0, fmt.Errorf("truncated code payload: %d bytes for %d rows", len(rest), rows)
		}
		c.Codes = asUint32s(rest[:rows*4], rows)
		c.Dict = dict
		c.DictBlob = blob
		rest = rest[rows*4:]
	default:
		return c, 0, fmt.Errorf("unknown chunk kind %d", kind)
	}
	if flags&flagNulls != 0 {
		want := (rows + 7) / 8
		if len(rest) < want {
			return c, 0, fmt.Errorf("truncated null bitmap: %d bytes, want %d", len(rest), want)
		}
		// The chunk's byte-packed bitmap and the column vectors'
		// word-packed one share the same little-endian bit order, so the
		// bytes assemble into ColumnData's packed form directly and the
		// trusted replay ORs them into the vector without ever expanding
		// a []bool.
		words := make([]uint64, (rows+63)/64)
		for i := 0; i < want; i++ {
			words[i>>3] |= uint64(rest[i]) << (8 * uint(i&7))
		}
		c.NullWords = words
		rest = rest[want:]
	}
	if len(rest) != 0 {
		return c, 0, fmt.Errorf("%d trailing bytes after payload", len(rest))
	}
	// Range-check the codes here so the replay can use the trusted bulk
	// path: every non-NULL code must index the dictionary.
	for i, code := range c.Codes {
		if int(code) >= len(c.Dict) && !nullBit(c.NullWords, i) {
			return c, 0, fmt.Errorf("row %d code %d out of dictionary range %d", i, code, len(c.Dict))
		}
	}
	return c, rows, nil
}

// nullBit reports bit i of a packed null bitmap (false when absent).
func nullBit(words []uint64, i int) bool {
	return words != nil && words[i>>6]>>(uint(i)&63)&1 == 1
}

// asFloat64s views a little-endian float64 array in place when the host's
// byte order and the buffer's alignment allow, avoiding both the element
// loop and a second rows×8-byte allocation; otherwise it decodes a copy.
// The caller must keep the backing buffer immutable (chunk buffers are).
func asFloat64s(b []byte, rows int) []float64 {
	if rows == 0 {
		return []float64{}
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))&7 == 0 {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), rows)
	}
	out := make([]float64, rows)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

// asUint32s is asFloat64s for dictionary code arrays.
func asUint32s(b []byte, rows int) []uint32 {
	if rows == 0 {
		return []uint32{}
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))&3 == 0 {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), rows)
	}
	out := make([]uint32, rows)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[i*4:])
	}
	return out
}

// vectorColumn views a live column vector as a bulk payload without copying
// the value slices: exactly what encodeColumn serializes for a full-table
// segment. The null bitmap is expanded to the []bool bulk form only when
// the column actually holds NULLs.
func vectorColumn(vec *storage.ColumnVec) storage.ColumnData {
	var c storage.ColumnData
	switch vec.Type() {
	case sqlir.TypeNumber:
		c.Nums = vec.RawNums()
	case sqlir.TypeText:
		c.Codes = vec.RawCodes()
		if d := vec.Dict(); d != nil {
			c.Dict = d.Strings()
		} else {
			c.Dict = []string{}
		}
	}
	if vec.NullCount() > 0 {
		nulls := make([]bool, vec.Len())
		for wi, w := range vec.RawNullWords() {
			if w == 0 {
				continue
			}
			base := wi * 64
			for b := 0; b < 64 && base+b < len(nulls); b++ {
				if w&(1<<uint(b)) != 0 {
					nulls[base+b] = true
				}
			}
		}
		c.Nulls = nulls
	}
	return c
}

// normalize rewrites a text payload into the canonical dictionary-coded
// form every chunk stores: dictionary entries in first-appearance row
// order, only referenced entries kept, NULL slots coded zero — exactly the
// column state BulkAppend's adoption or per-row interning would build, so
// replaying the normalized chunk reproduces the in-memory append
// byte for byte. Texts payloads are interned; Codes+Dict payloads are
// remapped (a caller's dictionary may hold unreferenced or reordered
// entries that in-memory adoption would have dropped or renumbered); Nums
// payloads get their NULL slots zeroed (in memory the append stores the
// zero placeholder regardless of what the caller left in the slot).
func normalize(c storage.ColumnData) storage.ColumnData {
	switch {
	case c.Nums != nil:
		if c.Nulls == nil {
			return c
		}
		nums := make([]float64, len(c.Nums))
		copy(nums, c.Nums)
		for i, isNull := range c.Nulls {
			if isNull {
				nums[i] = 0
			}
		}
		return storage.ColumnData{Nums: nums, Nulls: c.Nulls}
	case c.Texts != nil:
		codes := make([]uint32, len(c.Texts))
		byStr := make(map[string]uint32, len(c.Texts))
		var dict []string
		for i, s := range c.Texts {
			if c.Nulls != nil && c.Nulls[i] {
				continue
			}
			code, ok := byStr[s]
			if !ok {
				code = uint32(len(dict))
				dict = append(dict, s)
				byStr[s] = code
			}
			codes[i] = code
		}
		if dict == nil {
			dict = []string{}
		}
		return storage.ColumnData{Codes: codes, Dict: dict, Nulls: c.Nulls}
	case c.Codes != nil:
		codes := make([]uint32, len(c.Codes))
		mapping := make([]uint32, len(c.Dict)) // payload code -> canonical code + 1
		var dict []string
		for i, code := range c.Codes {
			if c.Nulls != nil && c.Nulls[i] {
				continue
			}
			m := mapping[code]
			if m == 0 {
				dict = append(dict, c.Dict[code])
				m = uint32(len(dict))
				mapping[code] = m
			}
			codes[i] = m - 1
		}
		if dict == nil {
			dict = []string{}
		}
		return storage.ColumnData{Codes: codes, Dict: dict, Nulls: c.Nulls}
	default:
		return c
	}
}
