// Package storage implements the in-memory relational storage engine that
// Duoquest runs on: typed columns, tables of rows, and a catalog of foreign
// key → primary key relationships (the only join edges in the paper's task
// scope, §2.5).
package storage

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/duoquest/duoquest/internal/sqlir"
)

// Column describes one table column.
type Column struct {
	Name string
	Type sqlir.Type
}

// ForeignKey declares Table.Column references RefTable.RefColumn (a primary
// key). Duoquest requires FK-PK constraints to be explicit on the schema
// (§4.1).
type ForeignKey struct {
	Table     string
	Column    string
	RefTable  string
	RefColumn string
}

// String renders the constraint.
func (fk ForeignKey) String() string {
	return fk.Table + "." + fk.Column + " -> " + fk.RefTable + "." + fk.RefColumn
}

// Table is a named collection of typed rows, stored column-wise: the
// authoritative representation is one typed vector per column (see
// column.go), with the historical row slices kept in sync by Insert as an
// adapter for the materializing reference executor.
type Table struct {
	Name       string
	Columns    []Column
	PrimaryKey string

	// rows is the historical row adapter, kept for the materializing
	// reference executor. The typed vectors are authoritative; after a
	// BulkAppend the adapter lags behind and is re-materialized lazily on
	// first row access (syncRows), so bulk ingestion never pays for rows it
	// may never serve. rowsReady is true while the adapter covers every
	// vector row.
	rows      [][]sqlir.Value
	rowsReady atomic.Bool
	rowsMu    sync.Mutex

	vecs   []ColumnVec
	colIdx map[string]int

	// gen counts data changes. It is purely internal: epoch publication
	// (epoch.go) compares generations to decide which tables need a fresh
	// view and which can share the previous epoch's. Cross-request caches
	// no longer watch it — they key by frozen snapshot identity instead.
	gen atomic.Int64

	// frozen marks an immutable epoch snapshot table (epoch.go); mutation
	// attempts fail instead of corrupting published epochs.
	frozen bool

	// base is the previous epoch's frozen table (set at freeze, epoch.go).
	// adoptBase seeds the row-adapter prefix and extends the base's ready
	// indexes with just the appended suffix, then drops the reference, so
	// an epoch boundary costs O(delta) instead of O(n) on first read.
	base      *Table
	adoptOnce sync.Once
	adopted   atomic.Bool

	hashMu  sync.Mutex
	hash    map[string]*hashIndex
	codeIdx map[int]*CodeIndex
	// stats memoizes per-column statistics, cleared together with the lazy
	// indexes on mutation (direct invalidation — the table knows exactly
	// when its own data changes). Frozen snapshot tables never clear it, so
	// an epoch's statistics are computed at most once, ever.
	stats map[string]ColumnStats
}

// hashIndex is one lazily built per-column hash index. The sync.Once gates
// the build so concurrent first probes of the same column share a single
// scan; everyone else blocks until the posting lists are ready.
type hashIndex struct {
	once sync.Once
	m    map[sqlir.Value][]int32

	// ready flips after the build completes; adoptBase only extends ready
	// indexes so it never races an in-flight build on the still-serving
	// base table.
	ready atomic.Bool
}

// NewTable creates an empty table.
func NewTable(name string, pk string, cols ...Column) *Table {
	t := &Table{Name: name, Columns: cols, PrimaryKey: pk, colIdx: map[string]int{}}
	t.vecs = make([]ColumnVec, len(cols))
	for i, c := range cols {
		t.colIdx[c.Name] = i
		t.vecs[i].typ = c.Type
	}
	return t
}

// ColumnIndex returns the position of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	if i, ok := t.colIdx[name]; ok {
		return i
	}
	return -1
}

// Column returns the named column definition.
func (t *Table) Column(name string) (Column, bool) {
	i := t.ColumnIndex(name)
	if i < 0 {
		return Column{}, false
	}
	return t.Columns[i], true
}

// NumRows returns the row count.
func (t *Table) NumRows() int {
	if len(t.vecs) > 0 {
		return t.vecs[0].n
	}
	return len(t.rows)
}

// syncRows materializes the row adapter up to the current vector length.
// The fast path is one atomic load; the slow path (first row access after a
// BulkAppend) builds the missing suffix from the vectors under a mutex, so
// concurrent first readers share one materialization. Like all reads, it
// must not race with Insert/BulkAppend on the same table.
func (t *Table) syncRows() {
	if t.rowsReady.Load() {
		return
	}
	t.adoptBase()
	t.rowsMu.Lock()
	defer t.rowsMu.Unlock()
	n := t.NumRows()
	if len(t.rows) < n {
		nc := len(t.Columns)
		// One backing array for the whole suffix, sliced per row with a
		// full-slice expression so an append through a shared row slice can
		// never overwrite a neighbouring row.
		backing := make([]sqlir.Value, (n-len(t.rows))*nc)
		for ri := len(t.rows); ri < n; ri++ {
			row := backing[:nc:nc]
			backing = backing[nc:]
			for ci := range t.vecs {
				row[ci] = t.vecs[ci].Value(ri)
			}
			t.rows = append(t.rows, row)
		}
	}
	t.rowsReady.Store(true)
}

// adoptBase performs the one-shot adoption of the previous epoch's frozen
// table (handed over at freeze, epoch.go): the row-adapter prefix is
// borrowed outright — rows are append-only and immutable, so only the
// suffix needs boxing — and every hash/posting-list index the base had
// already built is extended in place with just the appended rows. Every
// lazy-structure entry point (syncRows, Index, CodeIndex) calls it first,
// so adoption always precedes a from-scratch build. The base reference is
// dropped afterwards and publication (epoch.go) only links adopted tables
// as bases, so chains never deepen past one hop.
func (t *Table) adoptBase() {
	t.adoptOnce.Do(func() {
		b := t.base
		if b == nil {
			t.adopted.Store(true)
			return
		}
		n := t.NumRows()
		baseN := b.NumRows()
		if b.rowsReady.Load() && baseN <= n {
			t.rowsMu.Lock()
			if len(t.rows) == 0 {
				// The full-slice expression caps capacity at the base's
				// length, so materializing this epoch's suffix reallocates
				// instead of writing into the base's backing array.
				t.rows = b.rows[:baseN:baseN]
				if baseN == n {
					t.rowsReady.Store(true)
				}
			}
			t.rowsMu.Unlock()
		}
		t.adoptHashes(b, baseN, n)
		t.adoptCodeIndexes(b, baseN, n)
		t.base = nil
		t.adopted.Store(true)
	})
}

// adoptHashes extends every ready hash index of the base table: posting
// lists are shared cap-clamped (appends for delta rows reallocate, never
// mutate the base's arrays) and only rows [baseN, n) are scanned.
func (t *Table) adoptHashes(b *Table, baseN, n int) {
	b.hashMu.Lock()
	bh := make(map[string]*hashIndex, len(b.hash))
	for col, h := range b.hash {
		bh[col] = h
	}
	b.hashMu.Unlock()
	for col, h := range bh {
		if !h.ready.Load() {
			continue
		}
		ci := t.ColumnIndex(col)
		if ci < 0 {
			continue
		}
		nm := make(map[sqlir.Value][]int32, len(h.m))
		for v, list := range h.m {
			nm[v] = list[:len(list):len(list)]
		}
		vec := &t.vecs[ci]
		for ri := baseN; ri < n; ri++ {
			v := vec.Value(ri)
			if v.IsNull() {
				continue
			}
			nm[v] = append(nm[v], int32(ri))
		}
		nh := &hashIndex{m: nm}
		nh.once.Do(func() {}) // mark built so Index never rebuilds it
		nh.ready.Store(true)
		t.hashMu.Lock()
		if t.hash == nil {
			t.hash = map[string]*hashIndex{}
		}
		t.hash[col] = nh
		t.hashMu.Unlock()
	}
}

// adoptCodeIndexes extends every ready typed posting-list index of the base
// table. An extension that cannot keep the base's dense layout (a delta
// value outside the dense range) is skipped: the index rebuilds lazily on
// demand instead.
func (t *Table) adoptCodeIndexes(b *Table, baseN, n int) {
	b.hashMu.Lock()
	bc := make(map[int]*CodeIndex, len(b.codeIdx))
	for ci, ix := range b.codeIdx {
		bc[ci] = ix
	}
	b.hashMu.Unlock()
	for ci, bix := range bc {
		if !bix.ready.Load() || ci >= len(t.vecs) {
			continue
		}
		nix := &CodeIndex{vec: &t.vecs[ci]}
		if !nix.extendFrom(bix, baseN) {
			continue
		}
		nix.once.Do(func() {}) // mark built so CodeIndex never rebuilds it
		nix.ready.Store(true)
		t.hashMu.Lock()
		if t.codeIdx == nil {
			t.codeIdx = map[int]*CodeIndex{}
		}
		t.codeIdx[ci] = nix
		t.hashMu.Unlock()
	}
}

// debugRowCopies makes Row and Rows return defensive copies so test builds
// can prove no caller mutates table data through the shared slices (the
// columnar vectors are authoritative; a mutated shared row would silently
// diverge from them). Enabled by SetDebugRowCopies in tests only — the copy
// per access is far too slow for production paths.
var debugRowCopies bool

// SetDebugRowCopies toggles defensive row copying (test builds only) and
// returns the previous setting. Not safe to flip concurrently with queries.
func SetDebugRowCopies(on bool) bool {
	prev := debugRowCopies
	debugRowCopies = on
	return prev
}

// Row returns the i-th row (shared slice; callers must not mutate — enable
// SetDebugRowCopies in tests to verify none does).
func (t *Table) Row(i int) []sqlir.Value {
	t.syncRows()
	if debugRowCopies {
		cp := make([]sqlir.Value, len(t.rows[i]))
		copy(cp, t.rows[i])
		return cp
	}
	return t.rows[i]
}

// Rows returns all rows (shared; callers must not mutate).
func (t *Table) Rows() [][]sqlir.Value {
	t.syncRows()
	if debugRowCopies {
		cp := make([][]sqlir.Value, len(t.rows))
		for i, r := range t.rows {
			rc := make([]sqlir.Value, len(r))
			copy(rc, r)
			cp[i] = rc
		}
		return cp
	}
	return t.rows
}

// CheckRowColumnConsistency verifies cell-for-cell agreement between the
// row adapter and the columnar vectors — the invariant behind the dual
// representation. Differential tests call it after mutation-heavy
// workloads; a mismatch means some caller wrote through a shared row slice.
func (t *Table) CheckRowColumnConsistency() error {
	t.syncRows()
	for ri, row := range t.rows {
		for ci := range t.Columns {
			rv := row[ci]
			cv := t.vecs[ci].Value(ri)
			if !rv.Equal(cv) {
				return fmt.Errorf("storage: table %s row %d column %s: row adapter has %s, column vector has %s",
					t.Name, ri, t.Columns[ci].Name, rv, cv)
			}
		}
	}
	return nil
}

// Insert appends a row after checking arity and types. NULLs are accepted in
// any column.
func (t *Table) Insert(vals ...sqlir.Value) error {
	if t.frozen {
		return fmt.Errorf("storage: table %s: cannot insert into a frozen snapshot", t.Name)
	}
	if len(vals) != len(t.Columns) {
		return fmt.Errorf("storage: table %s: insert arity %d, want %d", t.Name, len(vals), len(t.Columns))
	}
	for i, v := range vals {
		if v.IsNull() {
			continue
		}
		if v.Type() != t.Columns[i].Type {
			return fmt.Errorf("storage: table %s column %s: value %s has type %s, want %s",
				t.Name, t.Columns[i].Name, v, v.Type(), t.Columns[i].Type)
		}
	}
	t.syncRows() // a prior BulkAppend may have left the adapter behind
	row := make([]sqlir.Value, len(vals))
	copy(row, vals)
	t.rows = append(t.rows, row)
	for i, v := range vals {
		t.vecs[i].appendValue(v)
	}
	t.hashMu.Lock()
	t.hash = nil    // built indexes no longer cover the new row
	t.codeIdx = nil // likewise the typed posting-list indexes
	t.stats = nil   // and the memoized column statistics
	t.hashMu.Unlock()
	t.gen.Add(1)
	return nil
}

// Index returns the persistent hash index of the named column: non-null
// value → row ids in row order. The index is built lazily on first request
// and memoized until the next Insert, so join builds and equality probes
// across many queries share one scan. Callers must treat the returned map
// and its posting lists as read-only; like Rows, the snapshot is only
// stable while no concurrent Insert runs.
func (t *Table) Index(col string) (map[sqlir.Value][]int32, error) {
	ci := t.ColumnIndex(col)
	if ci < 0 {
		return nil, fmt.Errorf("storage: table %s: no column %s", t.Name, col)
	}
	t.adoptBase()
	t.hashMu.Lock()
	if t.hash == nil {
		t.hash = map[string]*hashIndex{}
	}
	h, ok := t.hash[col]
	if !ok {
		h = &hashIndex{}
		t.hash[col] = h
	}
	t.hashMu.Unlock()
	h.once.Do(func() {
		vec := &t.vecs[ci]
		h.m = make(map[sqlir.Value][]int32)
		for ri := 0; ri < vec.n; ri++ {
			v := vec.Value(ri)
			if v.IsNull() {
				continue
			}
			h.m[v] = append(h.m[v], int32(ri))
		}
	})
	h.ready.Store(true)
	return h.m, nil
}

// MustInsert inserts and panics on error; intended for dataset construction
// code where a failure is a programming bug.
func (t *Table) MustInsert(vals ...sqlir.Value) {
	if err := t.Insert(vals...); err != nil {
		panic(err)
	}
}

// ColumnStats summarises one column for verification and PBE abduction.
type ColumnStats struct {
	Min, Max sqlir.Value // over non-null values; Null if column empty
	Distinct int
	NonNull  int
}

// Stats returns memoized column statistics. The memo lives on the table and
// is cleared together with the lazy indexes whenever the table mutates; on
// frozen snapshot tables it is therefore computed at most once per epoch.
func (t *Table) Stats(col string) (ColumnStats, error) {
	t.hashMu.Lock()
	if st, ok := t.stats[col]; ok {
		t.hashMu.Unlock()
		return st, nil
	}
	t.hashMu.Unlock()
	st, err := t.computeStats(col)
	if err != nil {
		return ColumnStats{}, err
	}
	t.hashMu.Lock()
	if t.stats == nil {
		t.stats = map[string]ColumnStats{}
	}
	t.stats[col] = st
	t.hashMu.Unlock()
	return st, nil
}

// computeStats scans the typed vectors: a float scan for numeric columns,
// and for text columns the distinct count is simply the dictionary size —
// every interned string was inserted at least once and rows are never
// deleted.
func (t *Table) computeStats(col string) (ColumnStats, error) {
	ci := t.ColumnIndex(col)
	if ci < 0 {
		return ColumnStats{}, fmt.Errorf("storage: table %s: no column %s", t.Name, col)
	}
	vec := &t.vecs[ci]
	var st ColumnStats
	st.NonNull = vec.n - vec.nullCount
	if st.NonNull == 0 {
		return st, nil
	}
	switch vec.typ {
	case sqlir.TypeNumber:
		seen := make(map[float64]struct{}, st.NonNull)
		first := true
		var lo, hi float64
		for i := 0; i < vec.n; i++ {
			if vec.IsNull(i) {
				continue
			}
			f := vec.nums[i]
			if first {
				lo, hi, first = f, f, false
			} else {
				if f < lo {
					lo = f
				}
				if f > hi {
					hi = f
				}
			}
			seen[f] = struct{}{}
		}
		st.Min, st.Max = sqlir.NewNumber(lo), sqlir.NewNumber(hi)
		st.Distinct = len(seen)
	case sqlir.TypeText:
		strs := vec.dict.Strings()
		lo, hi := strs[0], strs[0]
		for _, s := range strs[1:] {
			if s < lo {
				lo = s
			}
			if s > hi {
				hi = s
			}
		}
		st.Min, st.Max = sqlir.NewText(lo), sqlir.NewText(hi)
		st.Distinct = vec.dict.Size()
	}
	return st, nil
}

// DistinctValues returns up to max distinct non-null values of the column in
// sorted order (max <= 0 means all). Text columns read the dictionary —
// already deduplicated — instead of scanning rows.
func (t *Table) DistinctValues(col string, max int) ([]sqlir.Value, error) {
	ci := t.ColumnIndex(col)
	if ci < 0 {
		return nil, fmt.Errorf("storage: table %s: no column %s", t.Name, col)
	}
	vec := &t.vecs[ci]
	var out []sqlir.Value
	switch vec.typ {
	case sqlir.TypeNumber:
		seen := make(map[float64]struct{})
		for i := 0; i < vec.n; i++ {
			if !vec.IsNull(i) {
				seen[vec.nums[i]] = struct{}{}
			}
		}
		for _, f := range sortFloats(seen) {
			out = append(out, sqlir.NewNumber(f))
		}
	case sqlir.TypeText:
		if vec.dict != nil {
			strs := append([]string{}, vec.dict.Strings()...)
			sort.Strings(strs)
			for _, s := range strs {
				out = append(out, sqlir.NewText(s))
			}
		}
	}
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out, nil
}

// Schema is the catalog: tables plus FK-PK constraints.
type Schema struct {
	Tables      []*Table
	ForeignKeys []ForeignKey

	tblIdx map[string]*Table
}

// NewSchema builds a schema over the given tables.
func NewSchema(tables ...*Table) *Schema {
	s := &Schema{Tables: tables, tblIdx: map[string]*Table{}}
	for _, t := range tables {
		s.tblIdx[t.Name] = t
	}
	return s
}

// AddForeignKey registers an FK-PK constraint.
func (s *Schema) AddForeignKey(table, column, refTable, refColumn string) {
	s.ForeignKeys = append(s.ForeignKeys, ForeignKey{table, column, refTable, refColumn})
}

// Table returns the named table, or nil.
func (s *Schema) Table(name string) *Table {
	return s.tblIdx[name]
}

// Resolve returns the type of table.column, reporting whether it exists.
func (s *Schema) Resolve(c sqlir.ColumnRef) (sqlir.Type, bool) {
	if c.IsStar() {
		return sqlir.TypeNumber, true // only used under COUNT(*)
	}
	t := s.Table(c.Table)
	if t == nil {
		return sqlir.TypeUnknown, false
	}
	col, ok := t.Column(c.Column)
	if !ok {
		return sqlir.TypeUnknown, false
	}
	return col.Type, true
}

// Validate checks structural consistency: unique table/column names, FK
// endpoints exist, FK references a table's primary key, and FK/PK column
// types agree.
func (s *Schema) Validate() error {
	names := map[string]bool{}
	for _, t := range s.Tables {
		if names[t.Name] {
			return fmt.Errorf("storage: duplicate table %s", t.Name)
		}
		names[t.Name] = true
		cols := map[string]bool{}
		for _, c := range t.Columns {
			if cols[c.Name] {
				return fmt.Errorf("storage: table %s: duplicate column %s", t.Name, c.Name)
			}
			cols[c.Name] = true
			if c.Type == sqlir.TypeUnknown {
				return fmt.Errorf("storage: table %s: column %s has unknown type", t.Name, c.Name)
			}
		}
		if t.PrimaryKey != "" && t.ColumnIndex(t.PrimaryKey) < 0 {
			return fmt.Errorf("storage: table %s: primary key %s not a column", t.Name, t.PrimaryKey)
		}
	}
	for _, fk := range s.ForeignKeys {
		ft := s.Table(fk.Table)
		rt := s.Table(fk.RefTable)
		if ft == nil || rt == nil {
			return fmt.Errorf("storage: foreign key %s: unknown table", fk)
		}
		fc, ok1 := ft.Column(fk.Column)
		rc, ok2 := rt.Column(fk.RefColumn)
		if !ok1 || !ok2 {
			return fmt.Errorf("storage: foreign key %s: unknown column", fk)
		}
		if rt.PrimaryKey != fk.RefColumn {
			return fmt.Errorf("storage: foreign key %s: referenced column is not %s's primary key", fk, fk.RefTable)
		}
		if fc.Type != rc.Type {
			return fmt.Errorf("storage: foreign key %s: type mismatch %s vs %s", fk, fc.Type, rc.Type)
		}
	}
	return nil
}

// NumColumns returns the total column count across tables (Table 5 stats).
func (s *Schema) NumColumns() int {
	n := 0
	for _, t := range s.Tables {
		n += len(t.Columns)
	}
	return n
}

// TextColumns lists every (table, column) pair of text type — the master
// inverted column index in the paper's autocomplete server spans these.
func (s *Schema) TextColumns() []sqlir.ColumnRef {
	var out []sqlir.ColumnRef
	for _, t := range s.Tables {
		for _, c := range t.Columns {
			if c.Type == sqlir.TypeText {
				out = append(out, sqlir.ColumnRef{Table: t.Name, Column: c.Name})
			}
		}
	}
	return out
}

// Database is a schema plus its data, with per-table memoized statistics
// and an epoch publication log (epoch.go) for snapshot-isolated readers.
type Database struct {
	Name   string
	Schema *Schema

	// Epoch publication state (epoch.go). writeMu serializes Append batches
	// and epoch publication; latest holds the newest published view;
	// retained keeps a bounded window of views addressable by SnapshotAt.
	writeMu  sync.Mutex
	latest   atomic.Pointer[dbView]
	retainMu sync.Mutex
	retained []*dbView
	epochSeq int64 // last assigned epoch number; guarded by writeMu

	// frozen marks an immutable epoch snapshot; snapEpoch is its number.
	frozen    bool
	snapEpoch int64
}

// NewDatabase wraps a schema as a database.
func NewDatabase(name string, schema *Schema) *Database {
	return &Database{Name: name, Schema: schema}
}

// Table returns the named table, or nil.
func (d *Database) Table(name string) *Table { return d.Schema.Table(name) }

// Stats returns memoized column statistics, delegating to the table's own
// memo. The memo is cleared by the table when its data changes, so
// statistics never describe pre-mutation data; on a frozen snapshot they
// are simply permanent.
func (d *Database) Stats(c sqlir.ColumnRef) (ColumnStats, error) {
	t := d.Schema.Table(c.Table)
	if t == nil {
		return ColumnStats{}, fmt.Errorf("storage: no table %s", c.Table)
	}
	return t.Stats(c.Column)
}

// TotalRows returns the sum of all table row counts.
func (d *Database) TotalRows() int {
	n := 0
	for _, t := range d.Schema.Tables {
		n += t.NumRows()
	}
	return n
}
