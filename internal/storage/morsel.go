// Morsel partitioning over the columnar vectors. A morsel is a fixed-size
// contiguous range of row positions — the unit of intra-query parallelism in
// the executor (morsel-driven parallelism in the style of Leis et al.): one
// worker scans one morsel at a time, and per-morsel partial results are
// merged deterministically in morsel order so the parallel plan stays
// bit-identical to the single-threaded scan. The executor's default morsel
// size is a multiple of the 64-row words of the null bitmaps, which is also
// the natural alignment for the future on-disk segment chunks (ROADMAP item
// 1): a segment boundary will always coincide with a morsel boundary.
// Arbitrary sizes (down to one row) remain legal — scans only read the
// shared vectors, so an unaligned boundary is a test knob, not a hazard.
package storage

// MorselAlign is the preferred row alignment of morsel boundaries: the word
// width of the null bitmaps. Sizes that are multiples of 64 keep every
// morsel (except the last) on whole bitmap words and will map one-to-one
// onto segment chunk boundaries.
const MorselAlign = 64

// Morsel is a half-open row range [Lo, Hi) over a table's row positions (or
// over the positions of a posting list being partitioned).
type Morsel struct {
	Lo, Hi int
}

// Len returns the number of rows in the morsel.
func (m Morsel) Len() int { return m.Hi - m.Lo }

// AlignMorselSize rounds a morsel size up to the bitmap-word alignment
// (minimum one word) — used to normalize operator-facing configuration like
// the -morsel-size flags, while tests may partition at any granularity.
func AlignMorselSize(size int) int {
	if size < MorselAlign {
		return MorselAlign
	}
	if rem := size % MorselAlign; rem != 0 {
		size += MorselAlign - rem
	}
	return size
}

// Morsels partitions n rows into morsels of the requested size (the last
// morsel takes the remainder). Sizes below one row are clamped to one;
// n <= 0 yields no morsels.
func Morsels(n, size int) []Morsel {
	if n <= 0 {
		return nil
	}
	if size < 1 {
		size = 1
	}
	out := make([]Morsel, 0, (n+size-1)/size)
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, Morsel{Lo: lo, Hi: hi})
	}
	return out
}
