// Epoch-based snapshot isolation (MVCC-lite). Storage is append-only — rows
// are inserted, never updated or deleted — so a consistent snapshot of a
// database is nothing more than a per-table row watermark plus the
// dictionary sizes at one instant. Writers publish immutable *epochs*:
// numbered views whose column vectors are capacity-clamped slice headers
// over the live backing arrays. Later appends only ever write past the
// published lengths (the null bitmap's partially filled boundary word is
// copy-on-write, see ColumnVec.cowNulls), so every published epoch stays
// valid forever at zero copy cost.
//
// Readers obtain a snapshot as a frozen *Database — structurally identical
// to a live one, so the whole query stack (sqlexec, verify, enumerate,
// autocomplete) runs on it unchanged — and caches key by the frozen
// database identity instead of being invalidated on write. Concurrency
// contract: once concurrent readers exist, all mutation must go through
// Database.Append (which serializes with publication); the table-level
// Insert/BulkAppend APIs remain build-phase-only.
package storage

import (
	"fmt"
	"maps"
	"sync"
	"sync/atomic"
)

// epochRetention bounds how many published epochs stay addressable through
// SnapshotAt. Older epochs are forgotten (their frozen databases remain
// valid for readers already holding them, they just can no longer be pinned
// by number). Sixteen epochs comfortably cover every in-flight synthesis
// session under sustained ingest without retaining unbounded view metadata.
const epochRetention = 16

// tableView is one table's state at publication: the generation it was
// captured at (to detect staleness and to share views across epochs for
// untouched tables) and a capacity-clamped copy of each column vector. The
// frozen Table is materialized lazily on first snapshot request and
// memoized, so all readers of an epoch share one table — and therefore one
// set of lazily built hash/posting-list indexes.
type tableView struct {
	gen  int64
	cols []ColumnVec

	// base is the previous epoch's frozen table when it had completed base
	// adoption by publication time: the new frozen table seeds its row
	// adapter and extends its warm indexes from it (Table.adoptBase —
	// append-only rows make prefixes shareable) instead of rebuilding from
	// scratch. Cleared on freeze.
	base *Table

	once sync.Once
	tbl  atomic.Pointer[Table]
}

// dbView is one published epoch: a number and the per-table views. Views of
// tables untouched since the previous epoch are shared with it, so an
// ingest burst into one table does not re-freeze (or re-index) the others.
type dbView struct {
	epoch  int64
	tables []*tableView

	once   sync.Once
	frozen *Database
}

// captureView snapshots the table's vectors under the database write lock.
// Each clamp seals the vector: the full-slice expressions pin length and
// capacity so a reader can never observe a later in-place append, and
// sealedWords arms the null-bitmap copy-on-write for the boundary word.
func (t *Table) captureView() *tableView {
	tv := &tableView{gen: t.gen.Load(), cols: make([]ColumnVec, len(t.vecs))}
	for i := range t.vecs {
		v := &t.vecs[i]
		fv := ColumnVec{
			typ:       v.typ,
			nums:      v.nums[:len(v.nums):len(v.nums)],
			codes:     v.codes[:len(v.codes):len(v.codes)],
			nulls:     v.nulls[:len(v.nulls):len(v.nulls)],
			n:         v.n,
			nullCount: v.nullCount,
		}
		if v.dict != nil {
			// The frozen dictionary shares the interned strings (clamped at
			// the current size) but owns its lookup map: the live
			// dictionary's map keeps growing under intern, and the blob
			// survives here even if a later intern clears the live one (the
			// clamped prefix still matches the adopted concatenation). When
			// the live map exists it is cloned outright — under the write
			// lock it covers exactly the clamped strings, and maps.Clone is
			// a bucket copy, so an epoch boundary never re-hashes the whole
			// dictionary (ensureMap skips the build when codes is pre-set).
			size := len(v.dict.strs)
			fv.dict = &Dict{strs: v.dict.strs[:size:size], blob: v.dict.blob}
			if v.dict.codes != nil {
				fv.dict.codes = maps.Clone(v.dict.codes)
			}
		}
		v.sealedWords = len(v.nulls)
		tv.cols[i] = fv
	}
	return tv
}

// freeze materializes the view as a read-only Table, once.
func (tv *tableView) freeze(src *Table) *Table {
	tv.once.Do(func() {
		ft := NewTable(src.Name, src.PrimaryKey, src.Columns...)
		copy(ft.vecs, tv.cols)
		ft.frozen = true
		ft.base = tv.base
		tv.base = nil
		tv.tbl.Store(ft)
	})
	return tv.tbl.Load()
}

// freeze materializes the epoch as a read-only Database, once. Unchanged
// tables reuse the previous epoch's frozen Table (same pointer), so their
// lazy indexes and statistics memos carry across epochs untouched.
func (v *dbView) freeze(src *Database) *Database {
	v.once.Do(func() {
		tables := make([]*Table, len(v.tables))
		for i, tv := range v.tables {
			tables[i] = tv.freeze(src.Schema.Tables[i])
		}
		sch := NewSchema(tables...)
		sch.ForeignKeys = append([]ForeignKey(nil), src.Schema.ForeignKeys...)
		fdb := NewDatabase(src.Name, sch)
		fdb.frozen = true
		fdb.snapEpoch = v.epoch
		v.frozen = fdb
	})
	return v.frozen
}

// changedSince reports whether any table mutated after the view was
// captured. Generations are atomics, so the check is safe against a
// concurrent Append and costs one load per table.
func (d *Database) changedSince(v *dbView) bool {
	if len(v.tables) != len(d.Schema.Tables) {
		return true
	}
	for i, t := range d.Schema.Tables {
		if t.gen.Load() != v.tables[i].gen {
			return true
		}
	}
	return false
}

// publishLocked captures a new epoch. Caller holds writeMu. Views of tables
// whose generation did not move are shared with the previous epoch.
func (d *Database) publishLocked() *dbView {
	prev := d.latest.Load()
	d.epochSeq++
	nv := &dbView{epoch: d.epochSeq, tables: make([]*tableView, len(d.Schema.Tables))}
	for i, t := range d.Schema.Tables {
		if prev != nil && i < len(prev.tables) && prev.tables[i].gen == t.gen.Load() {
			nv.tables[i] = prev.tables[i]
			continue
		}
		ntv := t.captureView()
		if prev != nil && i < len(prev.tables) {
			// Hand the new view the previous epoch's frozen table so the new
			// epoch's first reader extends its warm row adapter and indexes
			// with just the appended rows (Table.adoptBase). Requiring
			// adopted here also bounds base chains: an adopted table has
			// dropped its own base, so links never accumulate transitively.
			if pt := prev.tables[i].tbl.Load(); pt != nil && pt.adopted.Load() {
				ntv.base = pt
			}
		}
		nv.tables[i] = ntv
	}
	d.latest.Store(nv)
	d.retainMu.Lock()
	d.retained = append(d.retained, nv)
	if len(d.retained) > epochRetention {
		d.retained = d.retained[len(d.retained)-epochRetention:]
	}
	d.retainMu.Unlock()
	return nv
}

// Epoch returns the latest published epoch number (0 before the first
// publication). On a frozen snapshot it returns the pinned epoch.
func (d *Database) Epoch() int64 {
	if d.frozen {
		return d.snapEpoch
	}
	if v := d.latest.Load(); v != nil {
		return v.epoch
	}
	return 0
}

// Frozen reports whether the database is an immutable epoch snapshot.
func (d *Database) Frozen() bool { return d.frozen }

// Snapshot returns an immutable view of the latest data as a frozen
// Database. If build-phase mutations happened since the last publication,
// a fresh epoch is published first, so sequential insert-then-query code
// observes its own writes without an explicit Publish. The returned
// database is memoized per epoch: two snapshots of the same epoch are the
// same pointer, which is what lets caches key by database identity.
func (d *Database) Snapshot() *Database {
	if d.frozen {
		return d
	}
	if v := d.latest.Load(); v != nil && !d.changedSince(v) {
		return v.freeze(d)
	}
	d.writeMu.Lock()
	v := d.latest.Load()
	if v == nil || d.changedSince(v) {
		v = d.publishLocked()
	}
	d.writeMu.Unlock()
	return v.freeze(d)
}

// SnapshotAt returns the frozen database for a specific published epoch.
// Epoch 0 means "latest" (exactly Snapshot). A retired or never-published
// epoch is an error — the caller's pin can no longer be honoured.
func (d *Database) SnapshotAt(epoch int64) (*Database, error) {
	if epoch == 0 {
		return d.Snapshot(), nil
	}
	if d.frozen {
		if epoch == d.snapEpoch {
			return d, nil
		}
		return nil, fmt.Errorf("storage: database %s: snapshot is pinned at epoch %d, cannot serve epoch %d", d.Name, d.snapEpoch, epoch)
	}
	d.retainMu.Lock()
	var v *dbView
	for _, rv := range d.retained {
		if rv.epoch == epoch {
			v = rv
			break
		}
	}
	d.retainMu.Unlock()
	if v == nil {
		return nil, fmt.Errorf("storage: database %s: epoch %d is not retained (head %d, retention %d)", d.Name, epoch, d.Epoch(), epochRetention)
	}
	return v.freeze(d), nil
}

// Publish forces publication of the current data as a new epoch if anything
// changed since the last one, and returns the resulting head epoch number.
func (d *Database) Publish() int64 {
	if d.frozen {
		return d.snapEpoch
	}
	d.writeMu.Lock()
	v := d.latest.Load()
	if v == nil || d.changedSince(v) {
		v = d.publishLocked()
	}
	d.writeMu.Unlock()
	return v.epoch
}

// Append bulk-appends one batch to the named table and publishes the result
// as a new epoch, returning its number. This is the only mutation that may
// run concurrently with snapshot readers: the write lock serializes batches
// and publication, and published epochs are never written again. The
// returned epoch already includes the batch, so a SnapshotAt on it (or any
// later Snapshot) observes the new rows while earlier epochs do not.
func (d *Database) Append(table string, cols []ColumnData) (int64, error) {
	if d.frozen {
		return 0, fmt.Errorf("storage: database %s: cannot append to a frozen snapshot (epoch %d)", d.Name, d.snapEpoch)
	}
	t := d.Schema.Table(table)
	if t == nil {
		return 0, fmt.Errorf("storage: no table %s", table)
	}
	d.writeMu.Lock()
	defer d.writeMu.Unlock()
	if err := t.BulkAppend(cols); err != nil {
		return 0, err
	}
	return d.publishLocked().epoch, nil
}
