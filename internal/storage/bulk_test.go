package storage

import (
	"strings"
	"testing"

	"github.com/duoquest/duoquest/internal/sqlir"
)

func bulkTable() *Table {
	return NewTable("t", "id",
		Column{Name: "id", Type: sqlir.TypeNumber},
		Column{Name: "name", Type: sqlir.TypeText},
		Column{Name: "score", Type: sqlir.TypeNumber},
	)
}

// TestBulkAppendMatchesInsert: a bulk-built table is cell-for-cell identical
// to an Insert-built table with the same data, on both representations.
func TestBulkAppendMatchesInsert(t *testing.T) {
	byRow := bulkTable()
	byBulk := bulkTable()

	nums := []float64{1, 2, 3, 4}
	names := []string{"a", "b", "a", ""}
	nameNulls := []bool{false, false, false, true}
	scores := []float64{10.5, 0, 7, 10.5}
	scoreNulls := []bool{false, true, false, false}

	for i := range nums {
		name := sqlir.NewText(names[i])
		if nameNulls[i] {
			name = sqlir.Null()
		}
		score := sqlir.NewNumber(scores[i])
		if scoreNulls[i] {
			score = sqlir.Null()
		}
		byRow.MustInsert(sqlir.NewNumber(nums[i]), name, score)
	}
	if err := byBulk.BulkAppend([]ColumnData{
		{Nums: nums},
		{Texts: names, Nulls: nameNulls},
		{Nums: scores, Nulls: scoreNulls},
	}); err != nil {
		t.Fatal(err)
	}

	if byBulk.NumRows() != byRow.NumRows() {
		t.Fatalf("rows: bulk %d, insert %d", byBulk.NumRows(), byRow.NumRows())
	}
	for ri := 0; ri < byRow.NumRows(); ri++ {
		for ci := range byRow.Columns {
			rv := byRow.Row(ri)[ci]
			bv := byBulk.Row(ri)[ci]
			if !rv.Equal(bv) {
				t.Fatalf("row %d col %d: insert %s, bulk %s", ri, ci, rv, bv)
			}
			if got := byBulk.VectorAt(ci).Value(ri); !got.Equal(rv) {
				t.Fatalf("row %d col %d: vector %s, want %s", ri, ci, got, rv)
			}
		}
	}
	if err := byBulk.CheckRowColumnConsistency(); err != nil {
		t.Fatal(err)
	}
	// Null placeholders must be stored exactly as Insert stores them (zero),
	// not whatever the caller left in the payload slot.
	if got := byBulk.Vector("score").Num(1); got != 0 {
		t.Fatalf("null score placeholder = %v, want 0", got)
	}
}

// TestBulkAppendDictEncoded: the Codes+Dict payload form matches per-row
// interning exactly — first-appearance code order, unreferenced dictionary
// entries dropped — on both a fresh column (hash-free adoption) and a
// column that already holds a dictionary (per-entry intern).
func TestBulkAppendDictEncoded(t *testing.T) {
	byRow := bulkTable()
	byBulk := bulkTable()

	dict := []string{"zeta", "alpha", "unused", "beta"}
	codes := []uint32{3, 1, 3, 0, 9} // 9 sits in a NULL slot: ignored
	nulls := []bool{false, false, false, false, true}
	texts := []string{"beta", "alpha", "beta", "zeta", ""}

	for i := range codes {
		name := sqlir.NewText(texts[i])
		if nulls[i] {
			name = sqlir.Null()
		}
		byRow.MustInsert(sqlir.NewInt(i), name, sqlir.NewInt(i))
	}
	nums := []float64{0, 1, 2, 3, 4}
	if err := byBulk.BulkAppend([]ColumnData{
		{Nums: nums},
		{Codes: codes, Dict: dict, Nulls: nulls},
		{Nums: nums},
	}); err != nil {
		t.Fatal(err)
	}

	rowDict := byRow.Vector("name").Dict()
	bulkDict := byBulk.Vector("name").Dict()
	if rowDict.Size() != bulkDict.Size() {
		t.Fatalf("dict sizes: row %d, bulk %d ('unused' must not be interned)", rowDict.Size(), bulkDict.Size())
	}
	for i, s := range rowDict.Strings() {
		if got := bulkDict.Strings()[i]; got != s {
			t.Fatalf("dict[%d]: bulk %q, row %q (first-appearance order)", i, got, s)
		}
	}
	for ri := range codes {
		rv, bv := byRow.Row(ri)[1], byBulk.Row(ri)[1]
		if !rv.Equal(bv) {
			t.Fatalf("row %d: bulk %s, row-insert %s", ri, bv, rv)
		}
		if !nulls[ri] && byRow.Vector("name").Code(ri) != byBulk.Vector("name").Code(ri) {
			t.Fatalf("row %d: codes diverge", ri)
		}
	}
	// The lazily built lookup map answers like the eagerly built one.
	if c, ok := bulkDict.Lookup("beta"); !ok || bulkDict.String(c) != "beta" {
		t.Fatalf("Lookup(beta) = %d, %v after adoption", c, ok)
	}
	if _, ok := bulkDict.Lookup("unused"); ok {
		t.Fatal("unreferenced dictionary entry is interned")
	}

	// Second dictionary-encoded batch onto the now non-empty column.
	if err := byBulk.BulkAppend([]ColumnData{
		{Nums: []float64{5, 6}},
		{Codes: []uint32{0, 1}, Dict: []string{"gamma", "alpha"}},
		{Nums: []float64{5, 6}},
	}); err != nil {
		t.Fatal(err)
	}
	byRow.MustInsert(sqlir.NewInt(5), sqlir.NewText("gamma"), sqlir.NewInt(5))
	byRow.MustInsert(sqlir.NewInt(6), sqlir.NewText("alpha"), sqlir.NewInt(6))
	for ri := 5; ri < 7; ri++ {
		if rv, bv := byRow.Row(ri)[1], byBulk.Row(ri)[1]; !rv.Equal(bv) {
			t.Fatalf("row %d after second batch: bulk %s, row-insert %s", ri, bv, rv)
		}
	}
	if err := byBulk.CheckRowColumnConsistency(); err != nil {
		t.Fatal(err)
	}

	// A duplicate entry in an adopted dictionary would make code-keyed
	// equality unsound; validation rejects it atomically at ingest.
	dup := bulkTable()
	err := dup.BulkAppend([]ColumnData{
		{Nums: []float64{1, 2}},
		{Codes: []uint32{0, 1}, Dict: []string{"same", "same"}},
		{Nums: []float64{1, 2}},
	})
	if err == nil || !strings.Contains(err.Error(), "duplicate dictionary entry") {
		t.Fatalf("err = %v, want duplicate-entry rejection", err)
	}
	if dup.NumRows() != 0 {
		t.Fatalf("%d rows appended after duplicate dictionary", dup.NumRows())
	}
	// The lazily built lookup map re-checks the invariant as a backstop.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("ensureMap accepted a duplicate-entry dictionary")
			}
		}()
		(&Dict{strs: []string{"same", "same"}}).Lookup("same")
	}()

	// Out-of-range codes in non-NULL slots are rejected atomically.
	bad := bulkTable()
	err = bad.BulkAppend([]ColumnData{
		{Nums: []float64{1}},
		{Codes: []uint32{5}, Dict: []string{"only"}},
		{Nums: []float64{1}},
	})
	if err == nil || !strings.Contains(err.Error(), "out of dictionary range") {
		t.Fatalf("err = %v, want out-of-range rejection", err)
	}
	if bad.NumRows() != 0 {
		t.Fatalf("%d rows appended after invalid codes", bad.NumRows())
	}
}

// TestBulkAppendMixedWithInsert: batches and single rows interleave.
func TestBulkAppendMixedWithInsert(t *testing.T) {
	tb := bulkTable()
	tb.MustInsert(sqlir.NewInt(1), sqlir.NewText("x"), sqlir.NewInt(5))
	if err := tb.BulkAppend([]ColumnData{
		{Nums: []float64{2, 3}},
		{Texts: []string{"y", "x"}},
		{Nums: []float64{6, 7}},
	}); err != nil {
		t.Fatal(err)
	}
	tb.MustInsert(sqlir.NewInt(4), sqlir.NewText("z"), sqlir.Null())
	if tb.NumRows() != 4 {
		t.Fatalf("rows = %d, want 4", tb.NumRows())
	}
	if err := tb.CheckRowColumnConsistency(); err != nil {
		t.Fatal(err)
	}
	// The dictionary interned "x" once across both paths.
	if got := tb.Vector("name").Dict().Size(); got != 3 {
		t.Fatalf("dict size = %d, want 3", got)
	}
	idx, err := tb.Index("name")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(idx[sqlir.NewText("x")]); got != 2 {
		t.Fatalf("postings for x = %d, want 2", got)
	}
}

// TestBulkAppendGeneration: one Database.Append batch publishes exactly one
// epoch, so snapshot readers see batch boundaries, not per-row churn.
func TestBulkAppendGeneration(t *testing.T) {
	tb := bulkTable()
	db := NewDatabase("bulk", NewSchema(tb))
	e0 := db.Publish()
	epoch, err := db.Append(tb.Name, []ColumnData{
		{Nums: []float64{1, 2, 3}},
		{Texts: []string{"a", "b", "c"}},
		{Nums: []float64{4, 5, 6}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := epoch - e0; got != 1 {
		t.Fatalf("epoch moved by %d for one batch, want 1", got)
	}
	// A built index is invalidated by the next batch.
	if _, err := tb.Index("name"); err != nil {
		t.Fatal(err)
	}
	if err := tb.BulkAppend([]ColumnData{
		{Nums: []float64{7}},
		{Texts: []string{"a"}},
		{Nums: []float64{8}},
	}); err != nil {
		t.Fatal(err)
	}
	idx, err := tb.Index("name")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(idx[sqlir.NewText("a")]); got != 2 {
		t.Fatalf("postings for a after second batch = %d, want 2", got)
	}
}

// TestBulkAppendValidation: malformed payloads are rejected atomically.
func TestBulkAppendValidation(t *testing.T) {
	cases := []struct {
		name string
		cols []ColumnData
		want string
	}{
		{"arity", []ColumnData{{Nums: []float64{1}}}, "columns, want"},
		{"type mismatch", []ColumnData{
			{Texts: []string{"a"}}, {Texts: []string{"b"}}, {Nums: []float64{1}},
		}, "does not match type"},
		{"ragged", []ColumnData{
			{Nums: []float64{1, 2}}, {Texts: []string{"a"}}, {Nums: []float64{1, 2}},
		}, "other columns have"},
		{"null flags", []ColumnData{
			{Nums: []float64{1}}, {Texts: []string{"a"}, Nulls: []bool{false, true}}, {Nums: []float64{2}},
		}, "null flags"},
	}
	for _, tc := range cases {
		tb := bulkTable()
		err := tb.BulkAppend(tc.cols)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
		if tb.NumRows() != 0 {
			t.Errorf("%s: %d rows appended after validation error", tc.name, tb.NumRows())
		}
	}

	// Empty batch is a no-op, not an error.
	tb := bulkTable()
	if err := tb.BulkAppend([]ColumnData{{}, {}, {}}); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if tb.NumRows() != 0 {
		t.Fatalf("empty batch appended %d rows", tb.NumRows())
	}
}
