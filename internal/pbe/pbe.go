// Package pbe implements the SQuID-style programming-by-example baseline
// used throughout the paper's evaluation (§5.1.1): an open-world,
// no-schema-knowledge system that consumes example tuples alone and abduces
// a project-join query together with candidate selection "filters" the user
// can check or uncheck — including derived count filters ("authors with at
// least N papers"), SQuID's semantic-property abduction.
//
// Its documented limitations (§5.4.2) are modelled faithfully: no projected
// numeric columns or aggregate values, no negation or LIKE predicates, and
// no ordering or row limits.
package pbe

import (
	"fmt"
	"sort"

	"github.com/duoquest/duoquest/internal/schemagraph"
	"github.com/duoquest/duoquest/internal/sqlexec"
	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/storage"
	"github.com/duoquest/duoquest/internal/tsq"
)

// FilterKind discriminates abduced filters.
type FilterKind uint8

const (
	// FilterValue is an equality filter col = v common to all examples.
	FilterValue FilterKind = iota
	// FilterRange is a numeric range filter lo <= col <= hi.
	FilterRange
	// FilterCount is a derived semantic-property filter: the number of
	// joined rows per entity (COUNT(*) >= n).
	FilterCount
)

// Filter is one abduced candidate selection predicate.
type Filter struct {
	Kind   FilterKind
	Col    sqlir.ColumnRef // counted relation's star for FilterCount
	Val    sqlir.Value     // FilterValue
	Lo, Hi sqlir.Value     // FilterRange / FilterCount bounds
}

// String renders the filter for display.
func (f Filter) String() string {
	switch f.Kind {
	case FilterValue:
		return f.Col.String() + " = " + f.Val.String()
	case FilterRange:
		return f.Col.String() + " in [" + f.Lo.Display() + "," + f.Hi.Display() + "]"
	case FilterCount:
		return "COUNT(rows) >= " + f.Lo.Display()
	default:
		return "?"
	}
}

// Output is the system's single response (§5.4.1: PBE returns one set of
// projected columns with multiple candidate selection predicates at a single
// point in time).
type Output struct {
	Projections []sqlir.ColumnRef
	JoinPath    *sqlir.JoinPath
	Filters     []Filter
	// Unsupported is set when the examples cannot be expressed (e.g.
	// numeric example cells, no covering columns).
	Unsupported bool
	Reason      string
}

// Options bounds the abduction search.
type Options struct {
	// MaxMappings caps the projection-mapping combinations explored.
	MaxMappings int
	// MaxDomain is the largest distinct-value count for a text column to
	// be used as a filter source (SQuID's "concept" columns).
	MaxDomain int
}

// DefaultOptions mirrors the evaluation configuration.
func DefaultOptions() Options { return Options{MaxMappings: 200, MaxDomain: 120} }

// System is a PBE baseline bound to one database.
type System struct {
	db    *storage.Database
	graph *schemagraph.Graph
	opts  Options
}

// New builds a PBE system for a database.
func New(db *storage.Database, opts Options) *System {
	if opts.MaxMappings <= 0 {
		opts.MaxMappings = 200
	}
	if opts.MaxDomain <= 0 {
		opts.MaxDomain = 64
	}
	return &System{db: db, graph: schemagraph.New(db.Schema), opts: opts}
}

// Synthesize abduces a project-join query plus filters from example tuples.
func (s *System) Synthesize(examples []tsq.Tuple) (*Output, error) {
	if len(examples) == 0 {
		return &Output{Unsupported: true, Reason: "no examples"}, nil
	}
	width := len(examples[0])
	for _, ex := range examples {
		if len(ex) != width {
			return nil, fmt.Errorf("pbe: ragged example tuples")
		}
		for _, c := range ex {
			switch c.Kind {
			case tsq.CellExact:
				if c.Val.Kind != sqlir.KindText {
					return &Output{Unsupported: true,
						Reason: "numeric example cells are not supported"}, nil
				}
			case tsq.CellRange:
				return &Output{Unsupported: true,
					Reason: "range example cells are not supported"}, nil
			case tsq.CellEmpty:
				return &Output{Unsupported: true,
					Reason: "partial tuples require full example values"}, nil
			}
		}
	}

	// Step 1: per-column candidate projections — text columns covering
	// every example value in that position.
	cands := make([][]sqlir.ColumnRef, width)
	for j := 0; j < width; j++ {
		for _, col := range s.db.Schema.TextColumns() {
			if s.columnCovers(col, examples, j) {
				cands[j] = append(cands[j], col)
			}
		}
		if len(cands[j]) == 0 {
			return &Output{Unsupported: true,
				Reason: fmt.Sprintf("no column covers example column %d", j)}, nil
		}
	}

	// Step 2: try mappings in deterministic order, preferring shorter join
	// paths; first fully verified mapping wins.
	mappings := cartesian(cands, s.opts.MaxMappings)
	type scored struct {
		mapping []sqlir.ColumnRef
		path    *sqlir.JoinPath
	}
	var viable []scored
	for _, mapping := range mappings {
		tables := distinctTables(mapping)
		paths, err := s.graph.JoinPathsForDepth(tables, 0, 8)
		if err != nil {
			continue
		}
		if len(paths) == 0 {
			continue
		}
		viable = append(viable, scored{mapping: mapping, path: paths[0]})
	}
	sort.SliceStable(viable, func(i, j int) bool {
		return viable[i].path.Len() < viable[j].path.Len()
	})

	for _, v := range viable {
		ok, err := s.verifyMapping(v.mapping, v.path, examples)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		filters, err := s.abduceFilters(v.mapping, v.path, examples)
		if err != nil {
			return nil, err
		}
		return &Output{Projections: v.mapping, JoinPath: v.path, Filters: filters}, nil
	}
	return &Output{Unsupported: true, Reason: "no join path satisfies all examples"}, nil
}

// columnCovers reports whether every example's j-th value occurs in col.
func (s *System) columnCovers(col sqlir.ColumnRef, examples []tsq.Tuple, j int) bool {
	t := s.db.Schema.Table(col.Table)
	ci := t.ColumnIndex(col.Column)
	for _, ex := range examples {
		want := ex[j].Val
		found := false
		for _, row := range t.Rows() {
			if row[ci].Kind == sqlir.KindText && equalFold(row[ci].Text, want.Text) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// examplePreds builds the equality predicates binding one example tuple to a
// mapping.
func examplePreds(mapping []sqlir.ColumnRef, ex tsq.Tuple) []sqlir.Predicate {
	var preds []sqlir.Predicate
	for j, col := range mapping {
		preds = append(preds, sqlir.Predicate{
			Col: col, ColSet: true,
			Op: sqlir.OpEq, OpSet: true,
			Val: ex[j].Val, ValSet: true,
		})
	}
	return preds
}

// verifyMapping checks every example has a joined row under the mapping.
func (s *System) verifyMapping(mapping []sqlir.ColumnRef, path *sqlir.JoinPath, examples []tsq.Tuple) (bool, error) {
	for _, ex := range examples {
		ok, err := sqlexec.Exists(s.db, sqlexec.ExistsQuery{
			From:  path,
			Conj:  sqlir.LogicAnd,
			Preds: examplePreds(mapping, ex),
		})
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

// branchPaths returns, for each table reachable within depth FK hops of the
// base path, a minimal join path reaching it: the base plus the connecting
// edge chain. The base itself is included under the empty-string key. Each
// branch is joined independently so unrelated 1:N branches never multiply,
// and entities missing one relation are only dropped from that branch.
func (s *System) branchPaths(base *sqlir.JoinPath, depth int) map[string]*sqlir.JoinPath {
	out := map[string]*sqlir.JoinPath{"": base}
	inBase := map[string]bool{}
	for _, t := range base.Tables {
		inBase[t] = true
	}
	type node struct {
		table string
		path  *sqlir.JoinPath
	}
	frontier := []node{}
	for _, t := range base.Tables {
		frontier = append(frontier, node{table: t, path: base})
	}
	visited := map[string]bool{}
	for _, t := range base.Tables {
		visited[t] = true
	}
	for level := 0; level < depth; level++ {
		var next []node
		for _, n := range frontier {
			for _, fk := range s.db.Schema.ForeignKeys {
				var newTable string
				if fk.Table == n.table && !visited[fk.RefTable] {
					newTable = fk.RefTable
				} else if fk.RefTable == n.table && !visited[fk.Table] {
					newTable = fk.Table
				} else {
					continue
				}
				visited[newTable] = true
				ext := &sqlir.JoinPath{
					Tables: append(append([]string{}, n.path.Tables...), newTable),
					Edges: append(append([]sqlir.JoinEdge{}, n.path.Edges...), sqlir.JoinEdge{
						FromTable: fk.Table, FromColumn: fk.Column,
						ToTable: fk.RefTable, ToColumn: fk.RefColumn,
					}),
				}
				out[newTable] = ext
				next = append(next, node{table: newTable, path: ext})
			}
		}
		frontier = next
	}
	return out
}

// abduceFilters proposes candidate selection predicates: properties shared
// by every example's matching rows, over the base join path and each
// related-entity branch (SQuID's derived semantic properties).
func (s *System) abduceFilters(mapping []sqlir.ColumnRef, base *sqlir.JoinPath, examples []tsq.Tuple) ([]Filter, error) {
	mapped := map[sqlir.ColumnRef]bool{}
	for _, c := range mapping {
		mapped[c] = true
	}
	var filters []Filter
	branches := s.branchPaths(base, 3)

	// Deterministic branch order: base first, then by table name.
	var branchTables []string
	for t := range branches {
		if t != "" {
			branchTables = append(branchTables, t)
		}
	}
	sort.Strings(branchTables)

	abduceTable := func(tbl string, path *sqlir.JoinPath) error {
		t := s.db.Schema.Table(tbl)
		for _, c := range t.Columns {
			ref := sqlir.ColumnRef{Table: tbl, Column: c.Name}
			if mapped[ref] || c.Name == t.PrimaryKey {
				continue
			}
			if c.Type == sqlir.TypeText {
				st, err := s.db.Stats(ref)
				if err != nil {
					return err
				}
				if st.Distinct > s.opts.MaxDomain {
					continue
				}
				common, err := s.commonValues(ref, mapping, path, examples)
				if err != nil {
					return err
				}
				for _, v := range common {
					filters = append(filters, Filter{Kind: FilterValue, Col: ref, Val: v})
				}
			} else {
				lo, hi, ok, err := s.numericEnvelope(ref, mapping, path, examples)
				if err != nil {
					return err
				}
				if ok {
					filters = append(filters, Filter{Kind: FilterRange, Col: ref, Lo: lo, Hi: hi})
				}
			}
		}
		return nil
	}

	for _, tbl := range base.Tables {
		if err := abduceTable(tbl, base); err != nil {
			return nil, err
		}
	}
	for _, tbl := range branchTables {
		if err := abduceTable(tbl, branches[tbl]); err != nil {
			return nil, err
		}
	}

	// Derived count filters: per branch, the number of joined rows matching
	// each example ("authors with at least N papers").
	for _, tbl := range branchTables {
		path := branches[tbl]
		minCount := -1
		for _, ex := range examples {
			n, err := s.matchCount(mapping, path, ex)
			if err != nil {
				return nil, err
			}
			if minCount < 0 || n < minCount {
				minCount = n
			}
		}
		if minCount >= 1 {
			filters = append(filters, Filter{
				Kind: FilterCount,
				Col:  sqlir.ColumnRef{Table: tbl, Column: "*"},
				Lo:   sqlir.NewInt(minCount),
				Hi:   sqlir.NewInt(minCount),
			})
		}
	}
	return filters, nil
}

// matchedRows executes SELECT <col> FROM path WHERE mapping=example.
func (s *System) matchedValues(col sqlir.ColumnRef, mapping []sqlir.ColumnRef, path *sqlir.JoinPath, ex tsq.Tuple) ([]sqlir.Value, error) {
	q := sqlir.NewQuery()
	q.KWSet = true
	q.LimitSet = true
	q.SelectCountSet = true
	q.Select = []sqlir.SelectItem{{Agg: sqlir.AggNone, AggSet: true, Col: col, ColSet: true}}
	q.From = path
	q.WhereState = sqlir.ClausePresent
	q.Where = sqlir.Where{Conj: sqlir.LogicAnd, ConjSet: true, CountSet: true, Preds: examplePreds(mapping, ex)}
	res, err := sqlexec.Execute(s.db, q)
	if err != nil {
		return nil, err
	}
	var out []sqlir.Value
	for _, r := range res.Rows {
		out = append(out, r[0])
	}
	return out, nil
}

// commonValues intersects, across examples, the value sets of col among
// matching rows.
func (s *System) commonValues(col sqlir.ColumnRef, mapping []sqlir.ColumnRef, path *sqlir.JoinPath, examples []tsq.Tuple) ([]sqlir.Value, error) {
	var common map[string]sqlir.Value
	for _, ex := range examples {
		vals, err := s.matchedValues(col, mapping, path, ex)
		if err != nil {
			return nil, err
		}
		set := map[string]sqlir.Value{}
		for _, v := range vals {
			if !v.IsNull() {
				set[v.String()] = v
			}
		}
		if common == nil {
			common = set
			continue
		}
		for k := range common {
			if _, ok := set[k]; !ok {
				delete(common, k)
			}
		}
	}
	keys := make([]string, 0, len(common))
	for k := range common {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]sqlir.Value, 0, len(keys))
	for _, k := range keys {
		out = append(out, common[k])
	}
	return out, nil
}

// numericEnvelope returns the [max of minima, min of maxima] band that every
// example's matching rows intersect; ok=false if some example has no
// numeric values.
func (s *System) numericEnvelope(col sqlir.ColumnRef, mapping []sqlir.ColumnRef, path *sqlir.JoinPath, examples []tsq.Tuple) (lo, hi sqlir.Value, ok bool, err error) {
	first := true
	var bandLo, bandHi float64
	for _, ex := range examples {
		vals, verr := s.matchedValues(col, mapping, path, ex)
		if verr != nil {
			return sqlir.Null(), sqlir.Null(), false, verr
		}
		exLo, exHi := 0.0, 0.0
		seen := false
		for _, v := range vals {
			if v.Kind != sqlir.KindNumber {
				continue
			}
			if !seen {
				exLo, exHi = v.Num, v.Num
				seen = true
			} else {
				if v.Num < exLo {
					exLo = v.Num
				}
				if v.Num > exHi {
					exHi = v.Num
				}
			}
		}
		if !seen {
			return sqlir.Null(), sqlir.Null(), false, nil
		}
		if first {
			bandLo, bandHi = exLo, exHi
			first = false
		} else {
			if exLo > bandLo {
				bandLo = exLo
			}
			if exHi < bandHi {
				bandHi = exHi
			}
		}
	}
	if first || bandLo > bandHi {
		return sqlir.Null(), sqlir.Null(), false, nil
	}
	return sqlir.NewNumber(bandLo), sqlir.NewNumber(bandHi), true, nil
}

// matchCount counts joined rows matching one example.
func (s *System) matchCount(mapping []sqlir.ColumnRef, path *sqlir.JoinPath, ex tsq.Tuple) (int, error) {
	vals, err := s.matchedValues(mapping[0], mapping, path, ex)
	if err != nil {
		return 0, err
	}
	return len(vals), nil
}

// cartesian enumerates mapping combinations, capped.
func cartesian(cands [][]sqlir.ColumnRef, cap int) [][]sqlir.ColumnRef {
	out := [][]sqlir.ColumnRef{{}}
	for _, col := range cands {
		var next [][]sqlir.ColumnRef
		for _, prefix := range out {
			for _, c := range col {
				dup := false
				for _, p := range prefix {
					if p == c {
						dup = true
						break
					}
				}
				if dup {
					continue
				}
				ext := append(append([]sqlir.ColumnRef{}, prefix...), c)
				next = append(next, ext)
				if len(next) >= cap {
					break
				}
			}
			if len(next) >= cap {
				break
			}
		}
		out = next
	}
	return out
}

func distinctTables(cols []sqlir.ColumnRef) []string {
	var out []string
	seen := map[string]bool{}
	for _, c := range cols {
		if !seen[c.Table] {
			seen[c.Table] = true
			out = append(out, c.Table)
		}
	}
	return out
}

// Supports reports whether a gold query is expressible by this PBE system
// at all (§5.4.2): no projected aggregates or numeric columns, no negation
// or LIKE, no ordering, no row limit.
func Supports(gold *sqlir.Query, schema *storage.Schema) (bool, string) {
	for _, s := range gold.Select {
		if s.Agg != sqlir.AggNone {
			return false, "projected aggregate"
		}
		ty, _ := schema.Resolve(s.Col)
		if ty != sqlir.TypeText {
			return false, "projected numeric column"
		}
	}
	for _, p := range gold.Where.Preds {
		if p.Op == sqlir.OpNe {
			return false, "negation predicate"
		}
		if p.Op == sqlir.OpLike {
			return false, "LIKE predicate"
		}
	}
	if gold.OrderByState == sqlir.ClausePresent {
		return false, "ordered results"
	}
	if gold.LimitSet && gold.Limit > 0 {
		return false, "row limit"
	}
	return true, ""
}

// Correct labels an output against the gold query per §5.4.2: the gold
// selection predicates must be a subset of the produced candidate filters,
// ignoring differences in literal values, and the projections must match.
func (o *Output) Correct(gold *sqlir.Query) bool {
	if o.Unsupported {
		return false
	}
	if len(gold.Select) != len(o.Projections) {
		return false
	}
	for i, s := range gold.Select {
		if s.Agg != sqlir.AggNone || s.Col != o.Projections[i] {
			return false
		}
	}
	covered := func(col sqlir.ColumnRef, rangy bool) bool {
		for _, f := range o.Filters {
			if f.Kind == FilterCount {
				continue
			}
			if f.Col != col {
				continue
			}
			if rangy && f.Kind == FilterRange {
				return true
			}
			if !rangy && f.Kind == FilterValue {
				return true
			}
		}
		return false
	}
	for _, p := range gold.Where.Preds {
		rangy := p.Op.Ordering()
		if !covered(p.Col, rangy) {
			return false
		}
	}
	if gold.HavingState == sqlir.ClausePresent {
		if gold.Having.Agg != sqlir.AggCount {
			return false
		}
		found := false
		for _, f := range o.Filters {
			if f.Kind == FilterCount {
				found = true
			}
		}
		if !found {
			return false
		}
	}
	return true
}
