package pbe

import (
	"strings"
	"testing"

	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/sqlparse"
	"github.com/duoquest/duoquest/internal/storage"
	"github.com/duoquest/duoquest/internal/tsq"
)

func text(s string) sqlir.Value { return sqlir.NewText(s) }
func num(f float64) sqlir.Value { return sqlir.NewNumber(f) }

// academicDB: a small MAS-like database for PBE tests.
func academicDB() *storage.Database {
	author := storage.NewTable("author", "aid",
		storage.Column{Name: "aid", Type: sqlir.TypeNumber},
		storage.Column{Name: "name", Type: sqlir.TypeText},
		storage.Column{Name: "oid", Type: sqlir.TypeNumber},
	)
	org := storage.NewTable("organization", "oid",
		storage.Column{Name: "oid", Type: sqlir.TypeNumber},
		storage.Column{Name: "name", Type: sqlir.TypeText},
		storage.Column{Name: "continent", Type: sqlir.TypeText},
	)
	pub := storage.NewTable("publication", "pid",
		storage.Column{Name: "pid", Type: sqlir.TypeNumber},
		storage.Column{Name: "title", Type: sqlir.TypeText},
		storage.Column{Name: "year", Type: sqlir.TypeNumber},
		storage.Column{Name: "cid", Type: sqlir.TypeNumber},
	)
	conf := storage.NewTable("conference", "cid",
		storage.Column{Name: "cid", Type: sqlir.TypeNumber},
		storage.Column{Name: "name", Type: sqlir.TypeText},
	)
	writes := storage.NewTable("writes", "wid",
		storage.Column{Name: "wid", Type: sqlir.TypeNumber},
		storage.Column{Name: "aid", Type: sqlir.TypeNumber},
		storage.Column{Name: "pid", Type: sqlir.TypeNumber},
	)
	s := storage.NewSchema(author, org, pub, conf, writes)
	s.AddForeignKey("author", "oid", "organization", "oid")
	s.AddForeignKey("publication", "cid", "conference", "cid")
	s.AddForeignKey("writes", "aid", "author", "aid")
	s.AddForeignKey("writes", "pid", "publication", "pid")

	org.MustInsert(num(1), text("Michigan"), text("North America"))
	org.MustInsert(num(2), text("Oxford"), text("Europe"))
	author.MustInsert(num(1), text("Alice"), num(1))
	author.MustInsert(num(2), text("Bob"), num(1))
	author.MustInsert(num(3), text("Carol"), num(2))
	conf.MustInsert(num(1), text("SIGMOD"))
	conf.MustInsert(num(2), text("VLDB"))
	pub.MustInsert(num(1), text("Paper One"), num(2018), num(1))
	pub.MustInsert(num(2), text("Paper Two"), num(2019), num(1))
	pub.MustInsert(num(3), text("Paper Three"), num(2019), num(2))
	pub.MustInsert(num(4), text("Paper Four"), num(2020), num(1))
	// Alice wrote 1,2,4 (3 SIGMOD papers); Bob wrote 3 (VLDB); Carol wrote 2.
	writes.MustInsert(num(1), num(1), num(1))
	writes.MustInsert(num(2), num(1), num(2))
	writes.MustInsert(num(3), num(1), num(4))
	writes.MustInsert(num(4), num(2), num(3))
	writes.MustInsert(num(5), num(3), num(2))

	return storage.NewDatabase("academic", s)
}

func ex(vals ...string) tsq.Tuple {
	var tp tsq.Tuple
	for _, v := range vals {
		tp = append(tp, tsq.Exact(text(v)))
	}
	return tp
}

func TestSynthesizeSimpleProjection(t *testing.T) {
	db := academicDB()
	sys := New(db, DefaultOptions())
	out, err := sys.Synthesize([]tsq.Tuple{ex("Alice"), ex("Bob")})
	if err != nil {
		t.Fatal(err)
	}
	if out.Unsupported {
		t.Fatalf("unsupported: %s", out.Reason)
	}
	if len(out.Projections) != 1 || out.Projections[0] != (sqlir.ColumnRef{Table: "author", Column: "name"}) {
		t.Errorf("projections = %v", out.Projections)
	}
	// Alice and Bob share organization Michigan: expect that filter.
	found := false
	for _, f := range out.Filters {
		if f.Kind == FilterValue && f.Col.Table == "organization" && f.Val.Equal(text("Michigan")) {
			found = true
		}
	}
	if !found {
		t.Errorf("expected Michigan filter, got %v", out.Filters)
	}
}

// TestSynthesizeJoinDiscovery: examples pairing titles with conference names
// force a join path through publication-conference.
func TestSynthesizeJoinDiscovery(t *testing.T) {
	db := academicDB()
	sys := New(db, DefaultOptions())
	out, err := sys.Synthesize([]tsq.Tuple{ex("Paper One", "SIGMOD"), ex("Paper Two", "SIGMOD")})
	if err != nil {
		t.Fatal(err)
	}
	if out.Unsupported {
		t.Fatalf("unsupported: %s", out.Reason)
	}
	if !out.JoinPath.Contains("publication") || !out.JoinPath.Contains("conference") {
		t.Errorf("join path = %v", out.JoinPath)
	}
}

// TestSynthesizeCountFilter: Alice has 3 papers — the derived count filter
// must be proposed (SQuID's semantic property abduction).
func TestSynthesizeCountFilter(t *testing.T) {
	db := academicDB()
	sys := New(db, DefaultOptions())
	out, err := sys.Synthesize([]tsq.Tuple{ex("Alice")})
	if err != nil {
		t.Fatal(err)
	}
	if out.Unsupported {
		t.Fatalf("unsupported: %s", out.Reason)
	}
	// With the bare author table the count is 1; the abduction still
	// proposes a count filter candidate.
	foundCount := false
	for _, f := range out.Filters {
		if f.Kind == FilterCount {
			foundCount = true
		}
	}
	if !foundCount {
		t.Errorf("expected count filter, got %v", out.Filters)
	}
}

func TestSynthesizeUnsupportedInputs(t *testing.T) {
	db := academicDB()
	sys := New(db, DefaultOptions())
	cases := []struct {
		name     string
		examples []tsq.Tuple
		want     string
	}{
		{"numeric cell", []tsq.Tuple{{tsq.Exact(num(2019))}}, "numeric"},
		{"range cell", []tsq.Tuple{{tsq.Range(2010, 2019)}}, "range"},
		{"empty cell", []tsq.Tuple{{tsq.Empty()}}, "partial"},
		{"no examples", nil, "no examples"},
		{"unknown value", []tsq.Tuple{ex("Nobody Anywhere")}, "covers"},
	}
	for _, c := range cases {
		out, err := sys.Synthesize(c.examples)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !out.Unsupported || !strings.Contains(out.Reason, c.want) {
			t.Errorf("%s: out = %+v", c.name, out)
		}
	}
}

func TestSynthesizeRaggedExamplesError(t *testing.T) {
	sys := New(academicDB(), DefaultOptions())
	if _, err := sys.Synthesize([]tsq.Tuple{ex("Alice"), ex("Alice", "Bob")}); err == nil {
		t.Error("ragged examples should error")
	}
}

func TestSupports(t *testing.T) {
	db := academicDB()
	cases := []struct {
		sql    string
		ok     bool
		reason string
	}{
		{"SELECT name FROM author", true, ""},
		{"SELECT a.name, COUNT(*) FROM author a JOIN writes w ON a.aid = w.aid GROUP BY a.name", false, "aggregate"},
		{"SELECT year FROM publication", false, "numeric"},
		{"SELECT name FROM author WHERE name != 'Alice'", false, "negation"},
		{"SELECT title FROM publication WHERE title LIKE '%one%'", false, "LIKE"},
		{"SELECT name FROM author ORDER BY name ASC", false, "ordered"},
		{"SELECT title FROM publication ORDER BY year DESC LIMIT 3", false, "ordered"},
	}
	for _, c := range cases {
		gold := sqlparse.MustParse(db.Schema, c.sql)
		ok, reason := Supports(gold, db.Schema)
		if ok != c.ok || (!ok && !strings.Contains(reason, c.reason)) {
			t.Errorf("%q: ok=%v reason=%q", c.sql, ok, reason)
		}
	}
}

// TestCorrectLabeling follows §5.4.2: correct iff gold predicates ⊆ filters
// (ignoring literals) and projections match.
func TestCorrectLabeling(t *testing.T) {
	db := academicDB()
	sys := New(db, DefaultOptions())
	out, err := sys.Synthesize([]tsq.Tuple{ex("Alice"), ex("Bob")})
	if err != nil || out.Unsupported {
		t.Fatalf("synth: %v %+v", err, out)
	}
	gold := sqlparse.MustParse(db.Schema,
		"SELECT a.name FROM author a JOIN organization o ON a.oid = o.oid WHERE o.name = 'Michigan'")
	if !out.Correct(gold) {
		t.Errorf("gold should be covered: filters=%v", out.Filters)
	}
	// A predicate on an uncovered column is not correct.
	gold2 := sqlparse.MustParse(db.Schema,
		"SELECT a.name FROM author a JOIN writes w ON a.aid = w.aid JOIN publication p ON w.pid = p.pid WHERE p.title = 'Paper One'")
	if out.Correct(gold2) {
		t.Error("title filter was never proposed")
	}
	// Projection mismatch.
	gold3 := sqlparse.MustParse(db.Schema, "SELECT name FROM organization")
	if out.Correct(gold3) {
		t.Error("projection mismatch should fail")
	}
}

// TestCorrectWithCountFilter: a HAVING COUNT gold query is correct when the
// count filter is proposed with matching projections.
func TestCorrectWithCountFilter(t *testing.T) {
	db := academicDB()
	sys := New(db, DefaultOptions())
	// Alice (3 papers via writes): mapping through author alone proposes a
	// count filter from matching rows.
	out, err := sys.Synthesize([]tsq.Tuple{ex("Alice")})
	if err != nil || out.Unsupported {
		t.Fatalf("synth: %v %+v", err, out)
	}
	gold := sqlparse.MustParse(db.Schema,
		"SELECT a.name FROM author a JOIN writes w ON a.aid = w.aid GROUP BY a.name HAVING COUNT(*) > 2")
	// Projections match (author.name); count filter proposed.
	if !out.Correct(gold) {
		t.Errorf("count-filter gold should be correct: %v", out.Filters)
	}
}

func TestUnsupportedOutputNeverCorrect(t *testing.T) {
	out := &Output{Unsupported: true}
	gold := sqlparse.MustParse(academicDB().Schema, "SELECT name FROM author")
	if out.Correct(gold) {
		t.Error("unsupported output cannot be correct")
	}
}

func TestFilterString(t *testing.T) {
	f := Filter{Kind: FilterValue, Col: sqlir.ColumnRef{Table: "t", Column: "c"}, Val: text("x")}
	if f.String() != "t.c = 'x'" {
		t.Errorf("filter string = %q", f.String())
	}
	f = Filter{Kind: FilterRange, Col: sqlir.ColumnRef{Table: "t", Column: "n"}, Lo: num(1), Hi: num(2)}
	if f.String() != "t.n in [1,2]" {
		t.Errorf("range string = %q", f.String())
	}
	f = Filter{Kind: FilterCount, Lo: num(3)}
	if f.String() != "COUNT(rows) >= 3" {
		t.Errorf("count string = %q", f.String())
	}
}
