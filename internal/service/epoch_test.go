package service

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"github.com/duoquest/duoquest/internal/sqlparse"
	"github.com/duoquest/duoquest/internal/storage"
)

// movieBatch is one deterministic ingest payload for the movies database:
// four movie rows keyed off base, with years spread around the workload's
// 1995 predicate so head-epoch readers genuinely see different answers.
func movieBatch(base int) []storage.ColumnData {
	const n = 4
	mids := make([]float64, n)
	titles := make([]string, n)
	years := make([]float64, n)
	for i := 0; i < n; i++ {
		mids[i] = float64(1000 + base + i)
		titles[i] = fmt.Sprintf("Ingest Movie %d", base+i)
		years[i] = float64(1980 + (base+i)%30)
	}
	return []storage.ColumnData{{Nums: mids}, {Texts: titles}, {Nums: years}}
}

// TestPinnedEpochDifferentialUnderIngest is the acceptance-criteria proof
// for epoch isolation: a session pinned at epoch E, running concurrently
// with live ingest, returns results byte-identical to the same workload run
// against a frozen pre-ingest copy of the database. The oracle engine never
// sees a write; the live engine takes 16 Append batches mid-flight.
func TestPinnedEpochDifferentialUnderIngest(t *testing.T) {
	var work []Input
	for _, w := range mixedWorkload() {
		if w.db == "movies" {
			work = append(work, w.in)
		}
	}

	// Oracle: a frozen copy — the same dataset, no ingest, sequential runs.
	oracle := newTestEngine(t, workloadOptions())
	os, err := oracle.Session("movies")
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]string, len(work))
	for i, in := range work {
		res, err := os.Synthesize(context.Background(), in)
		if err != nil {
			t.Fatalf("oracle %d: %v", i, err)
		}
		want[i] = describe(res.Candidates)
	}

	// Live engine: pin the pre-ingest epoch, then ingest and read at once.
	live := newTestEngine(t, workloadOptions())
	pin, err := live.Snapshot("movies")
	if err != nil {
		t.Fatal(err)
	}
	preRows := pin.Database().Table("movie").NumRows()

	const writers, batchesPer = 2, 8
	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan error, writers*batchesPer+rounds*len(work))
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < batchesPer; i++ {
				if _, err := live.Append("movies", "movie", movieBatch((w*batchesPer+i)*4)); err != nil {
					errs <- fmt.Errorf("writer %d batch %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < rounds; r++ {
		for i, in := range work {
			wg.Add(1)
			go func(r, i int, in Input) {
				defer wg.Done()
				res, err := pin.Synthesize(context.Background(), in)
				if err != nil {
					errs <- fmt.Errorf("round %d request %d: %w", r, i, err)
					return
				}
				if got := describe(res.Candidates); !equalStrings(got, want[i]) {
					errs <- fmt.Errorf("round %d request %d diverged from frozen oracle:\n got %v\nwant %v", r, i, got, want[i])
				}
			}(r, i, in)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// One more pinned request after ingest settles, so the lag accounting
	// below is deterministic.
	if res, err := pin.Synthesize(context.Background(), work[0]); err != nil {
		t.Fatal(err)
	} else if got := describe(res.Candidates); !equalStrings(got, want[0]) {
		t.Errorf("post-ingest pinned run diverged:\n got %v\nwant %v", got, want[0])
	}

	// The pinned view never moved; the head took every batch.
	const totalBatches = writers * batchesPer
	if got := pin.Database().Table("movie").NumRows(); got != preRows {
		t.Errorf("pinned movie rows = %d, want %d", got, preRows)
	}
	headDB, _ := live.Lookup("movies")
	if got := headDB.Snapshot().Table("movie").NumRows(); got != preRows+totalBatches*4 {
		t.Errorf("head movie rows = %d, want %d", got, preRows+totalBatches*4)
	}

	st := live.Stats().Databases[0]
	if st.Database != "movies" {
		t.Fatalf("stats order: %q", st.Database)
	}
	if st.Appends != totalBatches {
		t.Errorf("Appends = %d, want %d", st.Appends, totalBatches)
	}
	if st.HeadEpoch != pin.Epoch()+totalBatches {
		t.Errorf("HeadEpoch = %d, want %d", st.HeadEpoch, pin.Epoch()+totalBatches)
	}
	if st.EpochLagMax != totalBatches {
		t.Errorf("EpochLagMax = %d, want %d (final pinned request trails every batch)", st.EpochLagMax, totalBatches)
	}
	if st.EpochLagAvg <= 0 {
		t.Errorf("EpochLagAvg = %v, want > 0", st.EpochLagAvg)
	}
	var pinStats *EpochCacheStats
	for i := range st.Epochs {
		if st.Epochs[i].Epoch == pin.Epoch() {
			pinStats = &st.Epochs[i]
		}
	}
	if pinStats == nil {
		t.Fatalf("stats carry no shard entry for pinned epoch %d: %+v", pin.Epoch(), st.Epochs)
	}
	if wantReq := int64(rounds*len(work) + 1); pinStats.Requests != wantReq {
		t.Errorf("pinned shard requests = %d, want %d", pinStats.Requests, wantReq)
	}
}

// TestEpochRoutingAndErrors covers the request-level epoch surface:
// Input.Epoch resolution, shard sharing between equal epochs, pinned-session
// conflicts, and the loud failure for retired epochs.
func TestEpochRoutingAndErrors(t *testing.T) {
	e := newTestEngine(t, Options{MaxStates: 2000, MaxCandidates: 3})
	snap, err := e.Snapshot("movies")
	if err != nil {
		t.Fatal(err)
	}
	e0 := snap.Epoch()
	if _, err := e.Append("movies", "movie", movieBatch(0)); err != nil {
		t.Fatal(err)
	}

	// SnapshotAt the old epoch shares the already-built shard (one cache per
	// epoch, not per handle).
	old, err := e.SnapshotAt("movies", e0)
	if err != nil {
		t.Fatal(err)
	}
	if old.Epoch() != e0 || old.pin != snap.pin {
		t.Errorf("SnapshotAt(%d) pin = %+v, want the shard %p shared with the first handle", e0, old.pin, snap.pin)
	}

	// An unpinned session routes Input.Epoch to the same shards.
	s, err := e.Session("movies")
	if err != nil {
		t.Fatal(err)
	}
	if sh, err := s.shard(e0); err != nil || sh != snap.pin {
		t.Errorf("shard(%d) = %p, %v; want %p", e0, sh, err, snap.pin)
	}
	head, err := s.shard(0)
	if err != nil {
		t.Fatal(err)
	}
	if head.epoch != e0+1 {
		t.Errorf("head shard epoch = %d, want %d", head.epoch, e0+1)
	}

	// A pinned handle accepts its own epoch and rejects any other.
	in := moviesInput()
	in.Epoch = e0
	if _, err := snap.Synthesize(context.Background(), in); err != nil {
		t.Errorf("pinned synthesize at own epoch: %v", err)
	}
	in.Epoch = e0 + 1
	if _, err := snap.Synthesize(context.Background(), in); err == nil || !strings.Contains(err.Error(), "pinned") {
		t.Errorf("conflicting epoch error = %v, want pinned-session conflict", err)
	}

	// Sustained ingest past the storage retention ring: epochs with a live
	// service shard stay servable (the shard holds the frozen database), but
	// an epoch nobody ever read — no shard, and storage has retired the
	// number — is a loud error, not stale data.
	for i := 1; i < 20; i++ {
		if _, err := e.Append("movies", "movie", movieBatch(i*4)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.SnapshotAt("movies", e0); err != nil {
		t.Errorf("SnapshotAt(%d) with a live shard after 20 epochs: %v, want success", e0, err)
	}
	if sh, err := s.shard(e0); err != nil || sh != snap.pin {
		t.Errorf("shard(%d) = %p, %v; want the live pinned shard %p", e0, sh, err, snap.pin)
	}
	unread := e0 + 2 // published by an append, never read, retired by storage
	if _, err := e.SnapshotAt("movies", unread); err == nil {
		t.Errorf("SnapshotAt(%d) with no shard after 20 epochs should fail (retention)", unread)
	}
	if _, err := s.shard(unread); err == nil {
		t.Errorf("shard(%d) with no shard after 20 epochs should fail (retention)", unread)
	}
}

// TestServiceZeroEvictionsOnAppend is the service-level half of the
// zero-eviction regression: an Engine.Append during an in-flight pinned
// session must not evict one memo from that session's shared caches, while
// the next unpinned request observes the new rows.
func TestServiceZeroEvictionsOnAppend(t *testing.T) {
	e := newTestEngine(t, Options{MaxStates: 3000, MaxCandidates: 4})
	snap, err := e.Snapshot("movies")
	if err != nil {
		t.Fatal(err)
	}
	cold, err := snap.Synthesize(context.Background(), moviesInput())
	if err != nil {
		t.Fatal(err)
	}
	q, err := sqlparse.Parse(snap.Database().Schema, "SELECT title FROM movie WHERE year = 1994")
	if err != nil {
		t.Fatal(err)
	}
	prev, err := snap.Preview(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	pinnedRows := len(prev.Rows)
	joins := snap.pin.cache.Joins()
	size, built := joins.Size(), joins.Stats().JoinsBuilt

	if _, err := e.Append("movies", "movie", []storage.ColumnData{
		{Nums: []float64{999}},
		{Texts: []string{"The Shawshank Redemption"}},
		{Nums: []float64{1994}},
	}); err != nil {
		t.Fatal(err)
	}

	warm, err := snap.Synthesize(context.Background(), moviesInput())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := describe(warm.Candidates), describe(cold.Candidates); !equalStrings(got, want) {
		t.Errorf("pinned results changed across append:\n got %v\nwant %v", got, want)
	}
	if got := joins.Size(); got != size {
		t.Errorf("pinned cache size after append = %d, want %d (zero evictions)", got, size)
	}
	if got := joins.Stats().JoinsBuilt; got != built {
		t.Errorf("joins built after append = %d, want %d (warm rerun is pure hits)", got, built)
	}
	prev, err = snap.Preview(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(prev.Rows) != pinnedRows {
		t.Errorf("pinned preview rows = %d, want %d", len(prev.Rows), pinnedRows)
	}

	// The head epoch sees the appended 1994 title.
	s, err := e.Session("movies")
	if err != nil {
		t.Fatal(err)
	}
	prev, err = s.Preview(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(prev.Rows) != pinnedRows+1 {
		t.Errorf("head preview rows = %d, want %d", len(prev.Rows), pinnedRows+1)
	}
}

// TestSnapshotSurvivesShardRetirement: with a tight EpochRetention the
// pinned shard falls out of the live map, but the handle keeps serving its
// epoch — retirement ends discoverability and per-epoch stats, not reads.
func TestSnapshotSurvivesShardRetirement(t *testing.T) {
	e := newTestEngine(t, Options{MaxStates: 2000, MaxCandidates: 3, EpochRetention: 2})
	snap, err := e.Snapshot("movies")
	if err != nil {
		t.Fatal(err)
	}
	preRows := snap.Database().Table("movie").NumRows()
	cold, err := snap.Synthesize(context.Background(), moviesInput())
	if err != nil {
		t.Fatal(err)
	}

	// Each append plus a head-resolving request creates a new shard; with
	// retention 2 the pinned shard retires quickly.
	s, err := e.Session("movies")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := e.Append("movies", "movie", movieBatch(i*4)); err != nil {
			t.Fatal(err)
		}
		if _, err := s.shard(0); err != nil {
			t.Fatal(err)
		}
	}

	st := e.Stats().Databases[0]
	if st.EpochsLive > 2 {
		t.Errorf("EpochsLive = %d, want <= 2", st.EpochsLive)
	}
	if st.EpochsRetired < 1 {
		t.Errorf("EpochsRetired = %d, want >= 1", st.EpochsRetired)
	}
	for _, ep := range st.Epochs {
		if ep.Epoch == snap.Epoch() {
			t.Errorf("pinned epoch %d still listed live after retirement", ep.Epoch)
		}
	}

	// The retired-but-pinned handle still answers, at its epoch.
	warm, err := snap.Synthesize(context.Background(), moviesInput())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := describe(warm.Candidates), describe(cold.Candidates); !equalStrings(got, want) {
		t.Errorf("retired pinned results changed:\n got %v\nwant %v", got, want)
	}
	if got := snap.Database().Table("movie").NumRows(); got != preRows {
		t.Errorf("pinned rows = %d, want %d", got, preRows)
	}
}

// TestAppendWarmsNextEpoch: the writer rebuilds what it invalidated — after
// an Append, the next epoch's shard is parked pre-warmed (joins carried or
// re-materialized) and the first reader adopts it instead of starting cold.
func TestAppendWarmsNextEpoch(t *testing.T) {
	e := newTestEngine(t, Options{MaxStates: 3000, MaxCandidates: 4})
	s, err := e.Session("movies")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Synthesize(context.Background(), moviesInput()); err != nil {
		t.Fatal(err)
	}
	head, err := s.shard(0)
	if err != nil {
		t.Fatal(err)
	}
	warmPaths := head.cache.Joins().Size()
	if warmPaths == 0 {
		t.Fatal("synthesis built no join paths; the warm-up premise is broken")
	}

	if _, err := e.Append("movies", "movie", []storage.ColumnData{
		{Nums: []float64{999}},
		{Texts: []string{"The Shawshank Redemption"}},
		{Nums: []float64{1994}},
	}); err != nil {
		t.Fatal(err)
	}

	// The warmed shard is parked, not in the retention ring: stats must not
	// list the new epoch yet.
	for _, ep := range e.Stats().Databases[0].Epochs {
		if ep.Epoch == head.epoch+1 {
			t.Fatalf("epoch %d entered the retention ring before any reader", ep.Epoch)
		}
	}

	next, err := s.shard(0)
	if err != nil {
		t.Fatal(err)
	}
	if next.epoch != head.epoch+1 {
		t.Fatalf("next shard epoch = %d, want %d", next.epoch, head.epoch+1)
	}
	// Every join path the old epoch had is already materialized in the new
	// shard — carried forward when its tables were untouched, rebuilt by
	// the writer when the append invalidated them — before any request ran.
	if got := next.cache.Joins().Size(); got < warmPaths {
		t.Errorf("adopted shard has %d join paths, want >= %d (writer-warmed)", got, warmPaths)
	}
	if reqs := next.requests.Load(); reqs != 0 {
		t.Errorf("adopted shard already served %d requests, want 0", reqs)
	}
}

// TestPinSurvivesStorageRetention proves a pinned epoch stays servable past
// storage's bounded view ring: as long as the service retains the epoch's
// shard (whose frozen database is valid forever), a by-number pin resolves
// from the shard map even after sustained ingest has retired the epoch
// number from storage, and the results stay bit-stable.
func TestPinSurvivesStorageRetention(t *testing.T) {
	e := newTestEngine(t, Options{MaxStates: 3000, MaxCandidates: 4})
	snap, err := e.Snapshot("movies")
	if err != nil {
		t.Fatal(err)
	}
	pin := snap.Epoch()
	before, err := snap.Synthesize(context.Background(), moviesInput())
	if err != nil {
		t.Fatal(err)
	}

	// Race far past the storage retention window (16 epochs).
	for i := 0; i < 24; i++ {
		if _, err := e.Append("movies", "movie", []storage.ColumnData{
			{Nums: []float64{float64(1000 + i)}},
			{Texts: []string{fmt.Sprintf("Filler %d", i)}},
			{Nums: []float64{2000}},
		}); err != nil {
			t.Fatal(err)
		}
	}

	// The raw storage view is gone...
	s, err := e.Session("movies")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Database().SnapshotAt(pin); err == nil {
		t.Fatalf("storage still retains epoch %d; test needs to race past retention", pin)
	}
	// ...but the service still resolves the pin from its shard ring.
	in := moviesInput()
	in.Epoch = pin
	after, err := s.Synthesize(context.Background(), in)
	if err != nil {
		t.Fatalf("pinned request after retention: %v", err)
	}
	if got, want := describe(after.Candidates), describe(before.Candidates); !equalStrings(got, want) {
		t.Errorf("pinned results drifted across retention:\n got %v\nwant %v", got, want)
	}
}
