package service

import (
	"sort"
	"time"

	"github.com/duoquest/duoquest/internal/sqlexec"
	"github.com/duoquest/duoquest/internal/storage"
)

// CacheStats summarises one database's shared-cache effectiveness, derived
// from the executor's cumulative PipelineStats.
type CacheStats struct {
	// JoinPaths is the number of join paths currently materialized.
	JoinPaths int
	// Pipeline is the cumulative executor counter snapshot.
	Pipeline sqlexec.PipelineStats
	// PrefixHitRate is PrefixHits / (PrefixHits + JoinsBuilt): the share
	// of join materializations served by extending a cached prefix.
	PrefixHitRate float64
	// StreamedRate is StreamedExists / (StreamedExists + FallbackExists):
	// the share of existence probes served by the streaming pipeline.
	StreamedRate float64
	// AvgMorselWorkers is the mean workers per morsel-parallel scan (caller
	// included) — 0 when morsel parallelism is disabled or no scan fanned
	// out yet.
	AvgMorselWorkers float64
	// MorselEfficiency is AvgMorselWorkers over the engine's per-query
	// parallelism cap: 1.0 means every fanned-out scan got its full worker
	// complement, lower values mean the shared pool was contended (tokens
	// held by enumeration verify workers).
	MorselEfficiency float64
}

// DictStats describes one text column's dictionary: how many distinct
// strings it interns and how much memory they take.
type DictStats struct {
	Table   string
	Column  string
	Entries int
	Bytes   int64
}

// StorageStats is the columnar footprint of one registered database:
// per-table vector/dictionary memory plus each text column's dictionary,
// so operators can see what every registered database costs to hold.
type StorageStats struct {
	Rows        int   // total rows across tables
	VectorBytes int64 // typed column vectors + null bitmaps
	DictBytes   int64 // interned string dictionaries
	Tables      []storage.TableFootprint
	Dicts       []DictStats // text columns only, schema order
	// Provenance records whether the database was built in memory or
	// loaded from a durable segment store, and what the load cost.
	Provenance Provenance
}

// EpochCacheStats is one live epoch shard's serving view: which epoch,
// how many syntheses resolved it, and how its caches are hitting.
type EpochCacheStats struct {
	Epoch         int64
	Requests      int64
	JoinPaths     int
	PrefixHitRate float64
	StreamedRate  float64
}

// DBStats is the aggregated serving view of one registered database.
type DBStats struct {
	Database         string
	Requests         int64
	Errors           int64
	Candidates       int64
	Truncated        int64 // requests that returned a Truncated anytime result
	Interrupted      int64 // requests cancelled by the caller (client disconnect)
	AutocompleteSize int   // 0 until the shared index is first used
	Cache            CacheStats
	Storage          StorageStats
	P50, P95         time.Duration // over the latency window; 0 if no requests

	// Epoch visibility: the head epoch, how many Engine.Append batches the
	// database has accepted, the live/retired epoch cache shards, the
	// per-request epoch lag (head minus resolved epoch at resolution time),
	// and each live shard's cache hit rates.
	HeadEpoch     int64
	Appends       int64
	EpochsLive    int
	EpochsRetired int64
	EpochLagMax   int64
	EpochLagAvg   float64
	Epochs        []EpochCacheStats

	// CancelReturns counts cancelled or deadline-expired requests; the
	// quantiles are their cancel-to-return latency — how long after the
	// context fired the request actually returned — over the window.
	CancelReturns        int64
	CancelP50, CancelP99 time.Duration
}

// Stats is the engine-wide serving snapshot.
type Stats struct {
	// InFlight is the number of syntheses currently running.
	InFlight int64
	// Queued is the number of requests waiting for an in-flight slot.
	Queued int64
	// Admitted counts requests that acquired a slot since startup.
	Admitted int64
	// Rejected counts requests shed with ErrOverloaded.
	Rejected int64
	// Databases holds per-database aggregates in registration order.
	Databases []DBStats
}

// Stats returns an engine-wide snapshot.
func (e *Engine) Stats() Stats {
	st := Stats{
		InFlight: e.inFlight.Load(),
		Queued:   e.queued.Load(),
		Admitted: e.admitted.Load(),
		Rejected: e.rejected.Load(),
	}
	e.mu.RLock()
	states := make([]*dbState, 0, len(e.order))
	for _, name := range e.order {
		states = append(states, e.dbs[name])
	}
	e.mu.RUnlock()
	for _, ds := range states {
		st.Databases = append(st.Databases, ds.snapshot())
	}
	return st
}

func (ds *dbState) snapshot() DBStats {
	ds.m.Lock()
	out := DBStats{
		Database:      ds.db.Name,
		Requests:      ds.requests,
		Errors:        ds.errors,
		Candidates:    ds.candidates,
		Truncated:     ds.truncated,
		Interrupted:   ds.interrupted,
		CancelReturns: ds.cretTotal,
		Appends:       ds.appends,
		EpochLagMax:   ds.lagMax,
	}
	if ds.lagN > 0 {
		out.EpochLagAvg = float64(ds.lagSum) / float64(ds.lagN)
	}
	if ds.idx != nil {
		out.AutocompleteSize = ds.idx.Size()
	}
	lat := make([]time.Duration, ds.latN)
	copy(lat, ds.lat[:ds.latN])
	cret := make([]time.Duration, ds.cretN)
	copy(cret, ds.cret[:ds.cretN])
	ds.m.Unlock()

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	out.P50 = percentile(lat, 0.50)
	out.P95 = percentile(lat, 0.95)
	sort.Slice(cret, func(i, j int) bool { return cret[i] < cret[j] })
	out.CancelP50 = percentile(cret, 0.50)
	out.CancelP99 = percentile(cret, 0.99)

	// Aggregate the per-epoch cache shards: cumulative pipeline counters
	// fold across retired and live shards, join paths count what is
	// materialized right now (live shards only).
	out.HeadEpoch = ds.db.Epoch()
	ds.epochMu.Lock()
	ps := ds.retired
	out.EpochsRetired = ds.retiredShards
	out.EpochsLive = len(ds.shardOrder)
	joinPaths := 0
	for _, ep := range ds.shardOrder {
		sh := ds.shards[ep]
		sps := sh.cache.Joins().Stats()
		size := sh.cache.Joins().Size()
		joinPaths += size
		addPipeline(&ps, sps)
		out.Epochs = append(out.Epochs, EpochCacheStats{
			Epoch:         ep,
			Requests:      sh.requests.Load(),
			JoinPaths:     size,
			PrefixHitRate: ratio(sps.PrefixHits, sps.PrefixHits+sps.JoinsBuilt),
			StreamedRate:  ratio(sps.StreamedExists, sps.StreamedExists+sps.FallbackExists),
		})
	}
	ds.epochMu.Unlock()
	out.Cache = CacheStats{
		JoinPaths:        joinPaths,
		Pipeline:         ps,
		PrefixHitRate:    ratio(ps.PrefixHits, ps.PrefixHits+ps.JoinsBuilt),
		StreamedRate:     ratio(ps.StreamedExists, ps.StreamedExists+ps.FallbackExists),
		AvgMorselWorkers: ps.AvgMorselWorkers(),
	}
	if pq := ds.eng.pool.PerQuery(); pq > 0 && out.Cache.AvgMorselWorkers > 0 {
		out.Cache.MorselEfficiency = out.Cache.AvgMorselWorkers / float64(pq)
	}
	// Footprint is measured on a frozen snapshot so the scan cannot race
	// concurrent ingest (and reflects the published head, matching what
	// requests actually observe).
	out.Storage = storageStats(ds.db.Snapshot())
	out.Storage.Provenance = ds.prov
	return out
}

// addPipeline folds one shard's cumulative pipeline counters into a total.
func addPipeline(a *sqlexec.PipelineStats, b sqlexec.PipelineStats) {
	a.StreamedExists += b.StreamedExists
	a.FallbackExists += b.FallbackExists
	a.IndexSeeds += b.IndexSeeds
	a.IndexProbes += b.IndexProbes
	a.PrefixHits += b.PrefixHits
	a.JoinsBuilt += b.JoinsBuilt
	a.MorselRuns += b.MorselRuns
	a.Morsels += b.Morsels
	a.MorselWorkers += b.MorselWorkers
}

// storageStats snapshots the database's columnar footprint.
func storageStats(db *storage.Database) StorageStats {
	st := StorageStats{Tables: db.Footprint()}
	for _, tf := range st.Tables {
		st.Rows += tf.Rows
		st.VectorBytes += tf.VectorBytes
		st.DictBytes += tf.DictBytes
		for _, cf := range tf.Columns {
			if cf.DictEntries == 0 && cf.DictBytes == 0 {
				continue
			}
			st.Dicts = append(st.Dicts, DictStats{
				Table:   tf.Table,
				Column:  cf.Column,
				Entries: cf.DictEntries,
				Bytes:   cf.DictBytes,
			})
		}
	}
	return st
}

// percentile returns the nearest-rank q-quantile of an ascending slice.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted)) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

func ratio(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
