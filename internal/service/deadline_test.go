package service

import (
	"context"
	"testing"
	"time"
)

// An expired per-request deadline is an anytime result, not an error: the
// request returns promptly with the candidates verified so far, Truncated
// set, and the cancel-to-return gap lands in the stats.
func TestRequestDeadlineAnytimeResult(t *testing.T) {
	e := newTestEngine(t, Options{MaxCandidates: 50})
	s, _ := e.Session("movies")
	in := moviesInput()
	in.Deadline = time.Nanosecond
	start := time.Now()
	res, err := s.Synthesize(context.Background(), in)
	if err != nil {
		t.Fatalf("deadline expiry must not be an error: %v", err)
	}
	if !res.Truncated {
		t.Error("expired request not flagged Truncated")
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Errorf("expired request took %v to return", el)
	}
	st := e.Stats().Databases[0]
	if st.Truncated != 1 {
		t.Errorf("Truncated counter = %d, want 1", st.Truncated)
	}
	if st.CancelReturns != 1 {
		t.Errorf("CancelReturns = %d, want 1", st.CancelReturns)
	}
	if st.Interrupted != 0 {
		t.Errorf("Interrupted = %d, want 0 (deadline, not disconnect)", st.Interrupted)
	}
	if st.Errors != 0 {
		t.Errorf("Errors = %d, want 0", st.Errors)
	}
}

// DefaultDeadline applies to requests that do not carry their own budget.
func TestDefaultDeadlineApplied(t *testing.T) {
	e := newTestEngine(t, Options{DefaultDeadline: time.Nanosecond})
	s, _ := e.Session("movies")
	res, err := s.Synthesize(context.Background(), moviesInput())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Error("request under DefaultDeadline not truncated")
	}
}

// MaxDeadline clamps both over-asking requests and requests that ask for no
// deadline at all.
func TestMaxDeadlineClamp(t *testing.T) {
	e := newTestEngine(t, Options{MaxDeadline: time.Nanosecond})
	s, _ := e.Session("movies")

	in := moviesInput()
	in.Deadline = time.Hour
	res, err := s.Synthesize(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Error("over-asking request not clamped to MaxDeadline")
	}

	res, err = s.Synthesize(context.Background(), moviesInput())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Error("no-deadline request not clamped to MaxDeadline")
	}
}

// A caller-cancelled request counts as an interruption, distinct from
// deadline truncations.
func TestClientCancelCountsInterrupted(t *testing.T) {
	e := newTestEngine(t, Options{})
	s, _ := e.Session("movies")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := s.Synthesize(ctx, moviesInput())
	if err != nil {
		t.Fatalf("cancellation must not be an error: %v", err)
	}
	if !res.Truncated {
		t.Error("cancelled request not flagged Truncated")
	}
	st := e.Stats().Databases[0]
	if st.Interrupted != 1 {
		t.Errorf("Interrupted = %d, want 1", st.Interrupted)
	}
	if st.CancelReturns != 1 {
		t.Errorf("CancelReturns = %d, want 1", st.CancelReturns)
	}
}

// A request that finishes within its deadline is a plain success: no
// truncation, no cancel accounting.
func TestDeadlineNotReachedIsClean(t *testing.T) {
	e := newTestEngine(t, Options{Budget: 2 * time.Second, MaxCandidates: 5})
	s, _ := e.Session("movies")
	in := moviesInput()
	in.Deadline = time.Minute
	res, err := s.Synthesize(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Error("in-budget request flagged Truncated")
	}
	if len(res.Candidates) == 0 {
		t.Error("no candidates")
	}
	st := e.Stats().Databases[0]
	if st.CancelReturns != 0 || st.Truncated != 0 || st.Interrupted != 0 {
		t.Errorf("clean request left cancel accounting: %+v", st)
	}
}
