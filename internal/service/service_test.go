package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/duoquest/duoquest/internal/dataset"
	"github.com/duoquest/duoquest/internal/enumerate"
	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/sqlparse"
	"github.com/duoquest/duoquest/internal/tsq"
)

func newTestEngine(t *testing.T, opts Options) *Engine {
	t.Helper()
	e := NewEngine(opts)
	if err := e.Register(dataset.Movies()); err != nil {
		t.Fatal(err)
	}
	if err := e.Register(dataset.MAS()); err != nil {
		t.Fatal(err)
	}
	return e
}

func moviesInput() Input {
	return Input{
		NLQ:      "titles of movies before 1995",
		Literals: []sqlir.Value{sqlir.NewNumber(1995)},
		Sketch: &tsq.TSQ{
			Types:  []sqlir.Type{sqlir.TypeText},
			Tuples: []tsq.Tuple{{tsq.Exact(sqlir.NewText("Forrest Gump"))}},
		},
	}
}

func TestRegistry(t *testing.T) {
	e := newTestEngine(t, Options{})
	if got := e.Databases(); len(got) != 2 || got[0] != "movies" || got[1] != "mas" {
		t.Errorf("Databases = %v", got)
	}
	if err := e.Register(dataset.Movies()); err == nil {
		t.Error("duplicate register should fail")
	}
	if _, ok := e.Lookup("mas"); !ok {
		t.Error("Lookup(mas) failed")
	}
	if _, err := e.Session("nope"); err == nil {
		t.Error("unknown database session should fail")
	}
}

func TestSessionSynthesize(t *testing.T) {
	e := newTestEngine(t, Options{Budget: 2 * time.Second, MaxCandidates: 5})
	s, err := e.Session("movies")
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Synthesize(context.Background(), moviesInput())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) == 0 {
		t.Fatal("no candidates")
	}
	st := e.Stats()
	if len(st.Databases) != 2 {
		t.Fatalf("stats databases = %d", len(st.Databases))
	}
	mov := st.Databases[0]
	if mov.Database != "movies" || mov.Requests != 1 || mov.Errors != 0 {
		t.Errorf("movies stats = %+v", mov)
	}
	if mov.Candidates != int64(len(res.Candidates)) {
		t.Errorf("candidates = %d, want %d", mov.Candidates, len(res.Candidates))
	}
	if mov.P50 <= 0 || mov.P95 < mov.P50 {
		t.Errorf("latency quantiles = %v / %v", mov.P50, mov.P95)
	}
	if st.Admitted != 1 || st.InFlight != 0 || st.Queued != 0 {
		t.Errorf("admission stats = %+v", st)
	}
}

func TestSketchValidation(t *testing.T) {
	e := newTestEngine(t, Options{})
	s, _ := e.Session("movies")
	in := moviesInput()
	in.Sketch = &tsq.TSQ{Limit: -1}
	if _, err := s.Synthesize(context.Background(), in); err == nil {
		t.Error("invalid sketch should fail")
	}
}

// Admission control, white-box: fill every slot and the queue by hand.
func TestAdmissionControl(t *testing.T) {
	e := newTestEngine(t, Options{MaxInFlight: 2, MaxQueue: 2})

	r1, err := e.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Stats(); got.InFlight != 2 {
		t.Errorf("InFlight = %d, want 2", got.InFlight)
	}

	// Third request queues; it must report queue depth while waiting and
	// admit once a slot frees.
	admitted := make(chan struct{})
	go func() {
		r3, err := e.admit(context.Background())
		if err != nil {
			t.Error(err)
			close(admitted)
			return
		}
		close(admitted)
		r3()
	}()
	waitFor(t, func() bool { return e.Stats().Queued == 1 })

	// A second waiter fills the queue; it honours context cancellation.
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := e.admit(ctx)
		errc <- err
	}()
	waitFor(t, func() bool { return e.Stats().Queued == 2 })

	// With the queue full, the next request is shed immediately.
	if _, err := e.admit(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Errorf("overflow err = %v, want ErrOverloaded", err)
	}
	if got := e.Stats(); got.Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", got.Rejected)
	}

	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled waiter err = %v", err)
	}

	r1() // free a slot; the first waiter admits
	<-admitted
	r2()
	waitFor(t, func() bool {
		st := e.Stats()
		return st.InFlight == 0 && st.Queued == 0
	})
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

// Concurrent requests against the shared caches must not corrupt them: the
// warm-cache answers stay identical to cold ones, and the cache counters
// show actual cross-request reuse.
func TestSharedCacheConcurrentReuse(t *testing.T) {
	e := newTestEngine(t, Options{Budget: 5 * time.Second, MaxCandidates: 5, MaxStates: 4000})
	s, _ := e.Session("movies")

	cold, err := s.Synthesize(context.Background(), moviesInput())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	results := make([][]string, 8)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := s.Synthesize(context.Background(), moviesInput())
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = sqlStrings(res)
		}(i)
	}
	wg.Wait()
	want := sqlStrings(cold)
	for i, got := range results {
		if !equalStrings(got, want) {
			t.Errorf("warm run %d = %v, want %v", i, got, want)
		}
	}
	st := e.Stats().Databases[0]
	if st.Cache.Pipeline.PrefixHits+st.Cache.Pipeline.StreamedExists == 0 {
		t.Error("expected shared-cache activity in stats")
	}
}

// Insert invalidation end to end: a result cached by the service layer must
// not survive a data change.
func TestServiceInvalidationOnInsert(t *testing.T) {
	e := newTestEngine(t, Options{})
	s, _ := e.Session("movies")
	q, err := sqlparse.Parse(s.Database().Schema, "SELECT title FROM movie WHERE year = 1994")
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Preview(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	before := len(res.Rows)
	s.Database().Table("movie").MustInsert(
		sqlir.NewNumber(99), sqlir.NewText("The Shawshank Redemption"), sqlir.NewNumber(1994))
	res, err = s.Preview(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != before+1 {
		t.Errorf("rows after insert = %d, want %d", len(res.Rows), before+1)
	}
}

// Preview truncation must hand back a private slice: growing it cannot
// touch rows the cache still owns.
func TestPreviewCopiesTruncatedRows(t *testing.T) {
	e := newTestEngine(t, Options{})
	s, _ := e.Session("movies")
	q, err := sqlparse.Parse(s.Database().Schema, "SELECT title FROM movie")
	if err != nil {
		t.Fatal(err)
	}
	full, err := s.Preview(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Rows) < 2 {
		t.Skip("need at least 2 rows")
	}
	trunc, err := s.Preview(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(trunc.Rows) != 1 {
		t.Fatalf("truncated rows = %d", len(trunc.Rows))
	}
	// Appending through the truncated slice must not overwrite the second
	// row of a subsequent full result.
	trunc.Rows = append(trunc.Rows, []sqlir.Value{sqlir.NewText("CLOBBER")})
	again, err := s.Preview(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if again.Rows[1][0].Text == "CLOBBER" {
		t.Error("truncated preview aliases shared rows")
	}
}

func sqlStrings(res *enumerate.Result) []string {
	out := make([]string, len(res.Candidates))
	for i, c := range res.Candidates {
		out[i] = c.Query.String()
	}
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
