// Package service implements the process-wide Duoquest engine behind the
// paper's Figure 3 deployment: long-lived micro-services (Enumerator +
// Verifier, Autocomplete Server) serving many interactive users at once.
//
// An Engine owns a registry of databases and, per database, the shared
// cross-request state that used to be rebuilt on every call: the
// prefix-sharing join cache, the column-wise and row-wise verification
// memos (verify.Cache), the lazily built autocomplete index, and the
// storage engine's persistent hash indexes warmed underneath them. Requests
// run through lightweight per-request Session handles that borrow this
// shared state, under bounded admission control (a fixed number of
// in-flight syntheses plus a bounded wait queue), and the Engine aggregates
// per-database serving statistics — request counts, cache hit rates from
// the executor's PipelineStats, and p50/p95 latencies.
//
// All shared caches invalidate on Insert via the storage generation
// counter, so a long-lived Engine never serves pre-Insert answers.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/duoquest/duoquest/internal/autocomplete"
	"github.com/duoquest/duoquest/internal/enumerate"
	"github.com/duoquest/duoquest/internal/faultinject"
	"github.com/duoquest/duoquest/internal/guidance"
	"github.com/duoquest/duoquest/internal/semrules"
	"github.com/duoquest/duoquest/internal/sqlexec"
	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/storage"
	"github.com/duoquest/duoquest/internal/tsq"
	"github.com/duoquest/duoquest/internal/verify"
)

// ErrOverloaded reports that the synthesis wait queue is full; the caller
// should shed the request (HTTP 503).
var ErrOverloaded = errors.New("service: synthesis queue is full")

// Input is one dual-specification synthesis request: the NLQ with its
// tagged literal values (the paper's L), plus an optional table sketch
// query. nil Sketch synthesizes from the NLQ alone.
type Input struct {
	NLQ      string
	Literals []sqlir.Value
	Sketch   *tsq.TSQ
	// Deadline is this request's wall-clock budget (0 = the engine's
	// DefaultDeadline). It is clamped to the engine's MaxDeadline. On expiry
	// the request returns an anytime partial result — the candidates
	// verified so far, flagged Truncated — not an error.
	Deadline time.Duration
}

// Options configures an Engine. The zero value is usable: lexical guidance,
// Table 4 semantic pruning, GPQE mode, unlimited candidates, no state/time
// bound, unbounded admission.
type Options struct {
	// Model is the guidance model; nil uses the lexical model. The model
	// is shared by all concurrent requests and must be stateless.
	Model guidance.Model
	// Rules is the semantic rule set; NoRules disables pruning, nil uses
	// the Table 4 defaults.
	Rules *semrules.RuleSet
	// NoRules disables semantic pruning (Rules is then ignored).
	NoRules bool
	// Mode selects the enumeration variant (default ModeGPQE).
	Mode enumerate.Mode
	// Budget bounds wall-clock search time per request (0 = none).
	Budget time.Duration
	// MaxCandidates stops a request after n candidates (<=0 = unlimited,
	// as in the enumerator).
	MaxCandidates int
	// MaxStates caps explored search states per request (0 = none).
	MaxStates int
	// Workers bounds each request's verification worker pool
	// (0 = GOMAXPROCS, 1 = verify inline).
	Workers int

	// QueryParallelism bounds intra-query morsel parallelism: the workers
	// (caller included) one scan, join probe, or grouped aggregation may
	// use. 0 = the resolved Workers count, 1 = disable morsel parallelism
	// entirely (single-threaded execution, the pre-morsel engine). The
	// engine's token pool is shared between verification workers and morsel
	// fan-out, so total parallelism stays capped at
	// max(Workers, QueryParallelism) regardless of how requests overlap.
	QueryParallelism int
	// MorselSize is the scan rows per morsel (0 = the executor default,
	// 4096). Values are normalized to the null-bitmap word alignment via
	// storage.AlignMorselSize.
	MorselSize int

	// DefaultDeadline is the per-request wall-clock budget applied when a
	// request does not carry its own (0 = none). Unlike Budget — which the
	// enumerator checks between states — the deadline rides the request
	// context, so expiry unwinds verification mid-scan through the
	// executor's cancellation checkpoints and yields a Truncated anytime
	// result.
	DefaultDeadline time.Duration
	// MaxDeadline clamps every request's deadline, including requests that
	// ask for none (0 = no clamp). The server's ?deadline_ms= knob is bounded
	// by this.
	MaxDeadline time.Duration

	// MaxInFlight bounds concurrently running syntheses across all
	// databases (0 = unbounded). Excess requests wait in a queue.
	MaxInFlight int
	// MaxQueue bounds the number of waiting requests beyond MaxInFlight
	// (0 = unbounded). When the queue is full, Synthesize returns
	// ErrOverloaded immediately. With MaxInFlight unbounded no queue ever
	// forms, so MaxQueue has no effect.
	MaxQueue int

	// PerRequestCaches disables cross-request cache sharing: every request
	// builds a private verifier cache, as the engine did before the
	// service layer existed. This is the baseline for the throughput
	// benchmarks and the oracle for the shared-cache differential tests.
	PerRequestCaches bool

	// LatencyWindow is the per-database ring size for latency quantiles
	// (<=0 means 1024).
	LatencyWindow int
}

// Engine is the process-wide synthesis service. It is safe for concurrent
// use; create one per process and share it across all requests.
type Engine struct {
	opts  Options
	model guidance.Model
	rules *semrules.RuleSet

	// pool is the shared execution-token pool behind morsel-driven
	// intra-query parallelism (nil when QueryParallelism is 1 or the engine
	// is effectively single-threaded — execution then takes the sequential
	// code paths untouched). Enumeration verify workers hold its tokens
	// per job, so verification fan-out and morsel fan-out share one budget.
	pool       *sqlexec.WorkerPool
	morselSize int

	// sem holds one token per running synthesis when MaxInFlight > 0.
	sem      chan struct{}
	inFlight atomic.Int64
	queued   atomic.Int64
	rejected atomic.Int64
	admitted atomic.Int64

	mu    sync.RWMutex
	dbs   map[string]*dbState
	order []string
}

// dbState is the shared per-database state, built once and borrowed by
// every request against that database.
type dbState struct {
	eng   *Engine
	db    *storage.Database
	cache *verify.Cache
	prov  Provenance

	idxOnce sync.Once
	idx     *autocomplete.Index

	m           sync.Mutex
	requests    int64
	errors      int64
	candidates  int64
	truncated   int64           // requests that returned a Truncated anytime result
	interrupted int64           // requests cancelled by the caller (client disconnect)
	lat         []time.Duration // latency ring
	latPos      int
	latN        int // number of valid entries (<= len(lat))
	// cancel-to-return ring: how long a cancelled or deadline-expired
	// request took to actually return after its context fired.
	cret      []time.Duration
	cretPos   int
	cretN     int
	cretTotal int64 // cumulative count of cancelled returns
}

// NewEngine builds an engine.
func NewEngine(opts Options) *Engine {
	if opts.LatencyWindow <= 0 {
		opts.LatencyWindow = 1024
	}
	e := &Engine{opts: opts, model: opts.Model, rules: opts.Rules, dbs: map[string]*dbState{}}
	if e.model == nil {
		e.model = guidance.NewLexicalModel()
	}
	if e.rules == nil && !opts.NoRules {
		e.rules = semrules.Default()
	}
	if opts.NoRules {
		e.rules = nil
	}
	if opts.MaxInFlight > 0 {
		e.sem = make(chan struct{}, opts.MaxInFlight)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	qp := opts.QueryParallelism
	if qp <= 0 {
		qp = workers
	}
	total := workers
	if qp > total {
		total = qp
	}
	if qp > 1 && total > 1 {
		e.pool = sqlexec.NewWorkerPool(total, qp)
	}
	if opts.MorselSize > 0 {
		e.morselSize = storage.AlignMorselSize(opts.MorselSize)
	}
	return e
}

// execCtx arms a request context for query execution: the shared worker
// pool (when morsel parallelism is enabled) and the engine's morsel size.
func (e *Engine) execCtx(ctx context.Context) context.Context {
	if e.pool == nil {
		return ctx
	}
	ctx = sqlexec.WithPool(ctx, e.pool)
	if e.morselSize > 0 {
		ctx = sqlexec.WithMorselSize(ctx, e.morselSize)
	}
	return ctx
}

// Provenance records where a registered database's bytes came from — built
// in memory by this process, or reconstructed from a durable segment store
// — and, for disk loads, what the load touched. Surfaced through
// DBStats.Storage and /stats so an operator can tell a cold-started replica
// from a freshly ingested one.
type Provenance struct {
	// Source is "memory" for databases built in-process or "disk" for
	// databases reconstructed from a segment store.
	Source string
	// Segments and Chunks count what the load replayed (disk only).
	Segments int
	Chunks   int
	// ManifestHash is the checksum of the manifest that vouched for the
	// load (disk only).
	ManifestHash string
	// LoadDuration is the cold-start wall time (disk only).
	LoadDuration time.Duration
}

// Register adds a database to the engine's registry and builds its shared
// caches. It fails on a duplicate name; databases cannot be unregistered.
// The database is recorded as built in memory; use RegisterWithProvenance
// for databases loaded from a segment store.
func (e *Engine) Register(db *storage.Database) error {
	return e.RegisterWithProvenance(db, Provenance{Source: "memory"})
}

// RegisterWithProvenance is Register with an explicit record of where the
// database came from.
func (e *Engine) RegisterWithProvenance(db *storage.Database, prov Provenance) error {
	if db == nil {
		return errors.New("service: nil database")
	}
	if prov.Source == "" {
		prov.Source = "memory"
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.dbs[db.Name]; ok {
		return fmt.Errorf("service: database %q already registered", db.Name)
	}
	e.dbs[db.Name] = &dbState{
		eng:   e,
		db:    db,
		cache: verify.NewCache(db),
		prov:  prov,
		lat:   make([]time.Duration, e.opts.LatencyWindow),
		cret:  make([]time.Duration, e.opts.LatencyWindow),
	}
	e.order = append(e.order, db.Name)
	return nil
}

// Databases returns the registered database names in registration order.
func (e *Engine) Databases() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return append([]string(nil), e.order...)
}

// Lookup returns a registered database by name.
func (e *Engine) Lookup(name string) (*storage.Database, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	ds, ok := e.dbs[name]
	if !ok {
		return nil, false
	}
	return ds.db, true
}

// Session opens a per-request handle on one registered database. Sessions
// are cheap: they borrow the database's shared caches and hold no state of
// their own, so callers may create one per request or keep one per client.
func (e *Engine) Session(name string) (*Session, error) {
	e.mu.RLock()
	ds, ok := e.dbs[name]
	e.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("service: unknown database %q", name)
	}
	return &Session{eng: e, ds: ds}, nil
}

// admit performs admission control: it blocks until an in-flight slot is
// free, the queue overflows (ErrOverloaded), or ctx is done. On success the
// returned release function must be called exactly once.
func (e *Engine) admit(ctx context.Context) (release func(), err error) {
	if e.sem == nil {
		e.inFlight.Add(1)
		e.admitted.Add(1)
		return func() { e.inFlight.Add(-1) }, nil
	}
	select {
	case e.sem <- struct{}{}: // free slot, no queueing
	default:
		q := e.queued.Add(1)
		if e.opts.MaxQueue > 0 && q > int64(e.opts.MaxQueue) {
			e.queued.Add(-1)
			e.rejected.Add(1)
			return nil, ErrOverloaded
		}
		select {
		case e.sem <- struct{}{}:
			e.queued.Add(-1)
		case <-ctx.Done():
			e.queued.Add(-1)
			return nil, ctx.Err()
		}
	}
	e.inFlight.Add(1)
	e.admitted.Add(1)
	return func() {
		e.inFlight.Add(-1)
		<-e.sem
	}, nil
}

// Session is a per-request view of one database: it borrows the Engine's
// shared per-database caches and runs requests under the Engine's admission
// control.
type Session struct {
	eng *Engine
	ds  *dbState
}

// Database returns the session's database.
func (s *Session) Database() *storage.Database { return s.ds.db }

// Synthesize runs dual-specification synthesis and returns the ranked
// candidates.
func (s *Session) Synthesize(ctx context.Context, in Input) (*enumerate.Result, error) {
	return s.SynthesizeStream(ctx, in, nil)
}

// SynthesizeStream runs synthesis, invoking emit for every candidate as it
// is found (the front-end's progressive display, §4). emit returning false
// stops the search. The verifier borrows the database's shared caches — the
// cross-request analogue of the paper's within-search prefix sharing —
// unless the engine was built with PerRequestCaches.
func (s *Session) SynthesizeStream(ctx context.Context, in Input, emit func(enumerate.Candidate) bool) (*enumerate.Result, error) {
	if in.Sketch != nil {
		if err := in.Sketch.Validate(); err != nil {
			return nil, err
		}
	}
	release, err := s.eng.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()

	start := time.Now()
	// Resolve the request's wall-clock deadline: its own ask, else the
	// engine default, clamped to the engine maximum. The budget starts after
	// admission — queueing time is the engine's debt, not the request's.
	budget := in.Deadline
	if budget <= 0 {
		budget = s.eng.opts.DefaultDeadline
	}
	if max := s.eng.opts.MaxDeadline; max > 0 && (budget <= 0 || budget > max) {
		budget = max
	}
	if budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, budget)
		defer cancel()
	}
	// Arm morsel-driven execution after the deadline is attached, so morsel
	// workers inherit the expiring context through their per-morsel derived
	// contexts and unwind at the executor's cancellation checkpoints.
	ctx = s.eng.execCtx(ctx)
	// Fault seam: a request marked faulty may draw a forced cancellation —
	// the chaos harness's client-disconnect simulation.
	if delay, forced := faultinject.From(ctx).RequestCancel(); forced {
		var cancel context.CancelFunc
		ctx, cancel = context.WithCancel(ctx)
		defer cancel()
		if delay <= 0 {
			cancel()
		} else {
			t := time.AfterFunc(delay, cancel)
			defer t.Stop()
		}
	}
	// Cancel-to-return watcher: stamp the instant the context fires so the
	// gap to Enumerate's return — the latency a disconnecting client
	// actually observes — lands in the per-database stats.
	var firedAt atomic.Int64
	stopWatch := context.AfterFunc(ctx, func() { firedAt.Store(time.Now().UnixNano()) })
	defer stopWatch()

	var v *verify.Verifier
	if s.eng.opts.PerRequestCaches {
		v = verify.New(s.ds.db, s.eng.rules, in.Sketch, in.Literals)
	} else {
		v = verify.NewWithCache(s.ds.db, s.eng.rules, in.Sketch, in.Literals, s.ds.cache)
	}
	en := enumerate.New(s.ds.db, s.eng.model, v, enumerate.Options{
		Mode:          s.eng.opts.Mode,
		MaxCandidates: s.eng.opts.MaxCandidates,
		MaxStates:     s.eng.opts.MaxStates,
		Budget:        s.eng.opts.Budget,
		Workers:       s.eng.opts.Workers,
	})
	res, err := en.Enumerate(ctx, in.NLQ, in.Literals, emit)
	stopWatch()
	var cancelReturn time.Duration
	cancelled := ctx.Err() != nil
	if cancelled {
		now := time.Now()
		if at := firedAt.Load(); at > 0 {
			cancelReturn = now.Sub(time.Unix(0, at))
		} else if dl, ok := ctx.Deadline(); ok && now.After(dl) {
			// The AfterFunc goroutine has not run yet; the deadline
			// overshoot is the same quantity measured without it.
			cancelReturn = now.Sub(dl)
		}
		if cancelReturn < 0 {
			cancelReturn = 0
		}
	}
	interrupted := errors.Is(ctx.Err(), context.Canceled)
	s.ds.record(time.Since(start), res, err, cancelled, cancelReturn, interrupted)
	return res, err
}

// Autocomplete suggests literal values for a prefix, backed by the shared
// master inverted column index over all text columns (§4). The index is
// built once, on first use, for all requests; like the paper's offline
// autocomplete server it is not rebuilt on Insert.
func (s *Session) Autocomplete(prefix string, max int) []autocomplete.Hit {
	return s.ds.autocompleteIndex().Complete(prefix, max)
}

// AutocompleteSize returns the size of the shared index, 0 if not yet built.
func (s *Session) AutocompleteSize() int {
	s.ds.m.Lock()
	idx := s.ds.idx
	s.ds.m.Unlock()
	if idx == nil {
		return 0
	}
	return idx.Size()
}

// Exists answers one raw existence probe — the building block of cascading
// verification — through the database's shared join cache (or a fresh
// executor under PerRequestCaches). The load harness's data-scale sweep
// drives this surface so its measurements exercise exactly the shared-cache
// path production verification uses.
func (s *Session) Exists(eq sqlexec.ExistsQuery) (bool, error) {
	return s.ExistsCtx(context.Background(), eq)
}

// ExistsCtx is Exists under a request context: the probe unwinds at the
// executor's cancellation checkpoints when ctx is cancelled, and a
// fault-marked context (see internal/faultinject) draws its injected probe
// latency here.
func (s *Session) ExistsCtx(ctx context.Context, eq sqlexec.ExistsQuery) (bool, error) {
	ctx = s.eng.execCtx(ctx)
	if s.eng.opts.PerRequestCaches {
		return sqlexec.ExistsCtx(ctx, s.ds.db, eq)
	}
	return s.ds.cache.Joins().ExistsCtx(ctx, eq)
}

// Preview executes a candidate query with a row cap, powering the
// front-end's "Query Preview" button (§4). The join runs through the shared
// join cache, and truncation copies the row slice so callers can never
// mutate cached or shared results.
func (s *Session) Preview(q *sqlir.Query, maxRows int) (*sqlexec.Result, error) {
	var res *sqlexec.Result
	var err error
	ctx := s.eng.execCtx(context.Background())
	if s.eng.opts.PerRequestCaches {
		res, err = sqlexec.ExecuteCtx(ctx, s.ds.db, q)
	} else {
		res, err = s.ds.cache.Joins().ExecuteCtx(ctx, q)
	}
	if err != nil {
		return nil, err
	}
	if maxRows > 0 && len(res.Rows) > maxRows {
		rows := make([][]sqlir.Value, maxRows)
		copy(rows, res.Rows)
		res.Rows = rows
	}
	return res, nil
}

func (ds *dbState) autocompleteIndex() *autocomplete.Index {
	ds.idxOnce.Do(func() {
		idx := autocomplete.Build(ds.db)
		ds.m.Lock()
		ds.idx = idx
		ds.m.Unlock()
	})
	ds.m.Lock()
	idx := ds.idx
	ds.m.Unlock()
	return idx
}

// record folds one finished request into the per-database accounting.
// cancelled marks a request whose context fired before it returned;
// cancelReturn is the observed cancel-to-return gap for such requests, and
// interrupted marks the caller-cancelled subset (client disconnects), which
// are accounted as interruptions rather than successes.
func (ds *dbState) record(d time.Duration, res *enumerate.Result, err error, cancelled bool, cancelReturn time.Duration, interrupted bool) {
	ds.m.Lock()
	defer ds.m.Unlock()
	ds.requests++
	if err != nil {
		ds.errors++
	}
	if res != nil {
		ds.candidates += int64(len(res.Candidates))
		if res.Truncated {
			ds.truncated++
		}
	}
	if interrupted {
		ds.interrupted++
	}
	if cancelled && len(ds.cret) > 0 {
		ds.cret[ds.cretPos] = cancelReturn
		ds.cretPos = (ds.cretPos + 1) % len(ds.cret)
		if ds.cretN < len(ds.cret) {
			ds.cretN++
		}
		ds.cretTotal++
	}
	if len(ds.lat) > 0 {
		ds.lat[ds.latPos] = d
		ds.latPos = (ds.latPos + 1) % len(ds.lat)
		if ds.latN < len(ds.lat) {
			ds.latN++
		}
	}
}
