// Package service implements the process-wide Duoquest engine behind the
// paper's Figure 3 deployment: long-lived micro-services (Enumerator +
// Verifier, Autocomplete Server) serving many interactive users at once.
//
// An Engine owns a registry of databases and, per database, the shared
// cross-request state that used to be rebuilt on every call: the
// prefix-sharing join cache, the column-wise and row-wise verification
// memos (verify.Cache), the lazily built autocomplete index, and the
// storage engine's persistent hash indexes warmed underneath them. Requests
// run through lightweight per-request Session handles that borrow this
// shared state, under bounded admission control (a fixed number of
// in-flight syntheses plus a bounded wait queue), and the Engine aggregates
// per-database serving statistics — request counts, cache hit rates from
// the executor's PipelineStats, and p50/p95 latencies.
//
// Consistency under live ingest is epoch-based (storage epoch snapshots):
// every request resolves a frozen snapshot of its database — the latest
// epoch, an explicit Input.Epoch, or the epoch pinned by an
// Engine.Snapshot handle — and runs the entire synthesis against it, so a
// concurrent Engine.Append can never tear a request's view. Shared caches
// are keyed by epoch (one verify.Cache per snapshot) instead of being
// invalidated: a write never evicts another reader's warm cache, and the
// next request at the new head simply starts that epoch's cache.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/duoquest/duoquest/internal/autocomplete"
	"github.com/duoquest/duoquest/internal/enumerate"
	"github.com/duoquest/duoquest/internal/faultinject"
	"github.com/duoquest/duoquest/internal/guidance"
	"github.com/duoquest/duoquest/internal/semrules"
	"github.com/duoquest/duoquest/internal/sqlexec"
	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/storage"
	"github.com/duoquest/duoquest/internal/tsq"
	"github.com/duoquest/duoquest/internal/verify"
)

// ErrOverloaded reports that the synthesis wait queue is full; the caller
// should shed the request (HTTP 503).
var ErrOverloaded = errors.New("service: synthesis queue is full")

// Input is one dual-specification synthesis request: the NLQ with its
// tagged literal values (the paper's L), plus an optional table sketch
// query. nil Sketch synthesizes from the NLQ alone.
type Input struct {
	NLQ      string
	Literals []sqlir.Value
	Sketch   *tsq.TSQ
	// Deadline is this request's wall-clock budget (0 = the engine's
	// DefaultDeadline). It is clamped to the engine's MaxDeadline. On expiry
	// the request returns an anytime partial result — the candidates
	// verified so far, flagged Truncated — not an error.
	Deadline time.Duration
	// Epoch pins the request to a published database epoch (0 = latest).
	// A request at epoch E observes exactly the rows visible when E was
	// published, regardless of concurrent ingest; a retired epoch is an
	// error. Sessions obtained through Engine.Snapshot are already pinned
	// and reject a conflicting Epoch.
	Epoch int64
}

// Config configures an Engine. The zero value is usable: lexical guidance,
// Table 4 semantic pruning, GPQE mode, unlimited candidates, no state/time
// bound, unbounded admission. This struct is the engine's whole
// configuration surface; the duoquest facade's WithX options are thin
// deprecated wrappers over it.
type Config struct {
	// Model is the guidance model; nil uses the lexical model. The model
	// is shared by all concurrent requests and must be stateless.
	Model guidance.Model
	// Rules is the semantic rule set; NoRules disables pruning, nil uses
	// the Table 4 defaults.
	Rules *semrules.RuleSet
	// NoRules disables semantic pruning (Rules is then ignored).
	NoRules bool
	// Mode selects the enumeration variant (default ModeGPQE).
	Mode enumerate.Mode
	// Budget bounds wall-clock search time per request (0 = none).
	Budget time.Duration
	// MaxCandidates stops a request after n candidates (<=0 = unlimited,
	// as in the enumerator).
	MaxCandidates int
	// MaxStates caps explored search states per request (0 = none).
	MaxStates int
	// Workers bounds each request's verification worker pool
	// (0 = GOMAXPROCS, 1 = verify inline).
	Workers int

	// QueryParallelism bounds intra-query morsel parallelism: the workers
	// (caller included) one scan, join probe, or grouped aggregation may
	// use. 0 = the resolved Workers count, 1 = disable morsel parallelism
	// entirely (single-threaded execution, the pre-morsel engine). The
	// engine's token pool is shared between verification workers and morsel
	// fan-out, so total parallelism stays capped at
	// max(Workers, QueryParallelism) regardless of how requests overlap.
	QueryParallelism int
	// MorselSize is the scan rows per morsel (0 = the executor default,
	// 4096). Values are normalized to the null-bitmap word alignment via
	// storage.AlignMorselSize.
	MorselSize int

	// DefaultDeadline is the per-request wall-clock budget applied when a
	// request does not carry its own (0 = none). Unlike Budget — which the
	// enumerator checks between states — the deadline rides the request
	// context, so expiry unwinds verification mid-scan through the
	// executor's cancellation checkpoints and yields a Truncated anytime
	// result.
	DefaultDeadline time.Duration
	// MaxDeadline clamps every request's deadline, including requests that
	// ask for none (0 = no clamp). The server's ?deadline_ms= knob is bounded
	// by this.
	MaxDeadline time.Duration

	// MaxInFlight bounds concurrently running syntheses across all
	// databases (0 = unbounded). Excess requests wait in a queue.
	MaxInFlight int
	// MaxQueue bounds the number of waiting requests beyond MaxInFlight
	// (0 = unbounded). When the queue is full, Synthesize returns
	// ErrOverloaded immediately. With MaxInFlight unbounded no queue ever
	// forms, so MaxQueue has no effect.
	MaxQueue int

	// PerRequestCaches disables cross-request cache sharing: every request
	// builds a private verifier cache, as the engine did before the
	// service layer existed. This is the baseline for the throughput
	// benchmarks and the oracle for the shared-cache differential tests.
	PerRequestCaches bool

	// LatencyWindow is the per-database ring size for latency quantiles
	// (<=0 means 1024).
	LatencyWindow int

	// EpochRetention bounds the live per-epoch cache shards kept per
	// database (<=0 means 4). When ingest publishes epochs faster than
	// requests drain, the oldest shard's cache is retired (its cumulative
	// pipeline counters are folded into the database totals). Pinned
	// snapshot handles keep working past retirement — only the shard's
	// discoverability and per-epoch stats end.
	EpochRetention int
}

// Options is the former name of Config.
//
// Deprecated: use Config.
type Options = Config

// Engine is the process-wide synthesis service. It is safe for concurrent
// use; create one per process and share it across all requests.
type Engine struct {
	opts  Config
	model guidance.Model
	rules *semrules.RuleSet

	// pool is the shared execution-token pool behind morsel-driven
	// intra-query parallelism (nil when QueryParallelism is 1 or the engine
	// is effectively single-threaded — execution then takes the sequential
	// code paths untouched). Enumeration verify workers hold its tokens
	// per job, so verification fan-out and morsel fan-out share one budget.
	pool       *sqlexec.WorkerPool
	morselSize int

	// sem holds one token per running synthesis when MaxInFlight > 0.
	sem      chan struct{}
	inFlight atomic.Int64
	queued   atomic.Int64
	rejected atomic.Int64
	admitted atomic.Int64

	mu    sync.RWMutex
	dbs   map[string]*dbState
	order []string
}

// dbState is the shared per-database state, built once and borrowed by
// every request against that database. db is the live head (the only thing
// Engine.Append mutates); all query work runs on frozen epoch snapshots
// tracked as epochShards.
type dbState struct {
	eng  *Engine
	db   *storage.Database
	prov Provenance

	idxOnce sync.Once
	idx     *autocomplete.Index

	// Epoch shards: one frozen snapshot plus its shared caches per epoch
	// that served (or is serving) requests, bounded by Config.EpochRetention.
	epochMu       sync.Mutex
	shards        map[int64]*epochShard
	shardOrder    []int64               // creation order, oldest first
	warmed        *epochShard           // writer-warmed shard awaiting its first reader
	retired       sqlexec.PipelineStats // folded counters of retired shards
	retiredShards int64

	m           sync.Mutex
	requests    int64
	errors      int64
	candidates  int64
	truncated   int64           // requests that returned a Truncated anytime result
	interrupted int64           // requests cancelled by the caller (client disconnect)
	lat         []time.Duration // latency ring
	latPos      int
	latN        int // number of valid entries (<= len(lat))
	// cancel-to-return ring: how long a cancelled or deadline-expired
	// request took to actually return after its context fired.
	cret      []time.Duration
	cretPos   int
	cretN     int
	cretTotal int64 // cumulative count of cancelled returns

	appends int64 // Engine.Append batches accepted for this database
	// Epoch lag accounting: per request, how many epochs the resolved
	// snapshot trailed the head at resolution time (always 0 for unpinned
	// requests, which resolve the head itself).
	lagSum int64
	lagMax int64
	lagN   int64
}

// epochShard is one epoch's serving state: the frozen snapshot plus the
// cross-request caches keyed to it. Shards are created on first use of an
// epoch and never invalidated — ingest makes new shards, not evictions.
type epochShard struct {
	epoch    int64
	db       *storage.Database // frozen epoch snapshot
	cache    *verify.Cache
	requests atomic.Int64
}

// shardAt resolves the serving shard for an epoch (0 = latest, publishing
// one if build-phase mutations are pending). Requests for the same epoch
// share one shard — and therefore one join cache and one set of memos.
func (ds *dbState) shardAt(epoch int64) (*epochShard, error) {
	if epoch != 0 {
		// A live shard keeps its epoch servable even after storage's
		// bounded view ring has retired the number: the shard holds the
		// frozen database, which is valid forever. Sustained ingest can
		// therefore never break a pin the service still retains.
		ds.epochMu.Lock()
		sh, ok := ds.shards[epoch]
		ds.epochMu.Unlock()
		if ok {
			return sh, nil
		}
	}
	var snap *storage.Database
	if epoch == 0 {
		snap = ds.db.Snapshot()
	} else {
		var err error
		snap, err = ds.db.SnapshotAt(epoch)
		if err != nil {
			return nil, err
		}
	}
	return ds.shardFor(snap), nil
}

// shardFor returns (creating if needed) the shard for a resolved snapshot,
// retiring the oldest shard beyond the retention bound.
func (ds *dbState) shardFor(snap *storage.Database) *epochShard {
	ep := snap.Epoch()
	ds.epochMu.Lock()
	defer ds.epochMu.Unlock()
	if sh, ok := ds.shards[ep]; ok {
		return sh
	}
	var sh *epochShard
	if w := ds.warmed; w != nil && w.epoch == ep && w.db == snap {
		// Adopt the shard the writer warmed after publishing this epoch —
		// it enters the retention ring only now, on first read, so pure
		// write bursts never churn readers' pinned shards out of it.
		sh = w
		ds.warmed = nil
	} else {
		// Seed the new shard's caches from the most recently created
		// shard: joins and memoized answers over tables unchanged between
		// the two epochs carry forward, so an append costs readers only
		// the changed table's state, not a fully cold cache.
		var prevCache *verify.Cache
		if n := len(ds.shardOrder); n > 0 {
			prevCache = ds.shards[ds.shardOrder[n-1]].cache
		}
		sh = &epochShard{epoch: ep, db: snap, cache: verify.NewCacheFrom(snap, prevCache)}
	}
	if ds.shards == nil {
		ds.shards = map[int64]*epochShard{}
	}
	ds.shards[ep] = sh
	ds.shardOrder = append(ds.shardOrder, ep)
	max := ds.eng.opts.EpochRetention
	if max <= 0 {
		max = 4
	}
	for len(ds.shardOrder) > max {
		old := ds.shardOrder[0]
		ds.shardOrder = ds.shardOrder[1:]
		if osh, ok := ds.shards[old]; ok {
			addPipeline(&ds.retired, osh.cache.Joins().Stats())
			ds.retiredShards++
			delete(ds.shards, old)
		}
	}
	return sh
}

// noteLag folds one request's epoch lag (head minus pinned epoch at
// resolution time) into the per-database accounting.
func (ds *dbState) noteLag(lag int64) {
	if lag < 0 {
		lag = 0
	}
	ds.m.Lock()
	ds.lagSum += lag
	ds.lagN++
	if lag > ds.lagMax {
		ds.lagMax = lag
	}
	ds.m.Unlock()
}

// NewEngine builds an engine.
func NewEngine(opts Config) *Engine {
	if opts.LatencyWindow <= 0 {
		opts.LatencyWindow = 1024
	}
	e := &Engine{opts: opts, model: opts.Model, rules: opts.Rules, dbs: map[string]*dbState{}}
	if e.model == nil {
		e.model = guidance.NewLexicalModel()
	}
	if e.rules == nil && !opts.NoRules {
		e.rules = semrules.Default()
	}
	if opts.NoRules {
		e.rules = nil
	}
	if opts.MaxInFlight > 0 {
		e.sem = make(chan struct{}, opts.MaxInFlight)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	qp := opts.QueryParallelism
	if qp <= 0 {
		qp = workers
	}
	total := workers
	if qp > total {
		total = qp
	}
	if qp > 1 && total > 1 {
		e.pool = sqlexec.NewWorkerPool(total, qp)
	}
	if opts.MorselSize > 0 {
		e.morselSize = storage.AlignMorselSize(opts.MorselSize)
	}
	return e
}

// execCtx arms a request context for query execution: the shared worker
// pool (when morsel parallelism is enabled) and the engine's morsel size.
func (e *Engine) execCtx(ctx context.Context) context.Context {
	if e.pool == nil {
		return ctx
	}
	ctx = sqlexec.WithPool(ctx, e.pool)
	if e.morselSize > 0 {
		ctx = sqlexec.WithMorselSize(ctx, e.morselSize)
	}
	return ctx
}

// Provenance records where a registered database's bytes came from — built
// in memory by this process, or reconstructed from a durable segment store
// — and, for disk loads, what the load touched. Surfaced through
// DBStats.Storage and /stats so an operator can tell a cold-started replica
// from a freshly ingested one.
type Provenance struct {
	// Source is "memory" for databases built in-process or "disk" for
	// databases reconstructed from a segment store.
	Source string
	// Segments and Chunks count what the load replayed (disk only).
	Segments int
	Chunks   int
	// ManifestHash is the checksum of the manifest that vouched for the
	// load (disk only).
	ManifestHash string
	// LoadDuration is the cold-start wall time (disk only).
	LoadDuration time.Duration
}

// Register adds a database to the engine's registry and builds its shared
// caches. It fails on a duplicate name; databases cannot be unregistered.
// The database is recorded as built in memory; use RegisterWithProvenance
// for databases loaded from a segment store.
func (e *Engine) Register(db *storage.Database) error {
	return e.RegisterWithProvenance(db, Provenance{Source: "memory"})
}

// RegisterWithProvenance is Register with an explicit record of where the
// database came from.
func (e *Engine) RegisterWithProvenance(db *storage.Database, prov Provenance) error {
	if db == nil {
		return errors.New("service: nil database")
	}
	if prov.Source == "" {
		prov.Source = "memory"
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.dbs[db.Name]; ok {
		return fmt.Errorf("service: database %q already registered", db.Name)
	}
	e.dbs[db.Name] = &dbState{
		eng:  e,
		db:   db,
		prov: prov,
		lat:  make([]time.Duration, e.opts.LatencyWindow),
		cret: make([]time.Duration, e.opts.LatencyWindow),
	}
	e.order = append(e.order, db.Name)
	return nil
}

// Databases returns the registered database names in registration order.
func (e *Engine) Databases() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return append([]string(nil), e.order...)
}

// Lookup returns a registered database by name.
func (e *Engine) Lookup(name string) (*storage.Database, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	ds, ok := e.dbs[name]
	if !ok {
		return nil, false
	}
	return ds.db, true
}

// Session opens a per-request handle on one registered database. Sessions
// are cheap: they borrow the database's shared caches and hold no state of
// their own, so callers may create one per request or keep one per client.
func (e *Engine) Session(name string) (*Session, error) {
	e.mu.RLock()
	ds, ok := e.dbs[name]
	e.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("service: unknown database %q", name)
	}
	return &Session{eng: e, ds: ds}, nil
}

// admit performs admission control: it blocks until an in-flight slot is
// free, the queue overflows (ErrOverloaded), or ctx is done. On success the
// returned release function must be called exactly once.
func (e *Engine) admit(ctx context.Context) (release func(), err error) {
	if e.sem == nil {
		e.inFlight.Add(1)
		e.admitted.Add(1)
		return func() { e.inFlight.Add(-1) }, nil
	}
	select {
	case e.sem <- struct{}{}: // free slot, no queueing
	default:
		q := e.queued.Add(1)
		if e.opts.MaxQueue > 0 && q > int64(e.opts.MaxQueue) {
			e.queued.Add(-1)
			e.rejected.Add(1)
			return nil, ErrOverloaded
		}
		select {
		case e.sem <- struct{}{}:
			e.queued.Add(-1)
		case <-ctx.Done():
			e.queued.Add(-1)
			return nil, ctx.Err()
		}
	}
	e.inFlight.Add(1)
	e.admitted.Add(1)
	return func() {
		e.inFlight.Add(-1)
		<-e.sem
	}, nil
}

// Session is a per-request view of one database: it borrows the Engine's
// shared per-epoch caches and runs requests under the Engine's admission
// control. An unpinned session resolves the latest epoch per request (or
// the request's Input.Epoch); a session inside a Snapshot handle is pinned
// to one epoch for its whole lifetime.
type Session struct {
	eng *Engine
	ds  *dbState
	pin *epochShard // nil = resolve per request
}

// Database returns the session's live database head. Mutating it directly
// is a build-phase-only operation; concurrent ingest must go through
// Engine.Append. For a stable read view use Engine.Snapshot (or the frozen
// database a Snapshot handle exposes).
func (s *Session) Database() *storage.Database { return s.ds.db }

// shard resolves the serving shard for one request: the pinned epoch if the
// session is a Snapshot handle, else the requested epoch (0 = latest).
func (s *Session) shard(epoch int64) (*epochShard, error) {
	if s.pin != nil {
		if epoch != 0 && epoch != s.pin.epoch {
			return nil, fmt.Errorf("service: session is pinned at epoch %d, cannot serve epoch %d", s.pin.epoch, epoch)
		}
		return s.pin, nil
	}
	return s.ds.shardAt(epoch)
}

// Snapshot is a Session pinned to one published epoch: every call on it —
// Synthesize, Exists, Preview — observes exactly that epoch's rows and
// shares that epoch's caches, no matter how much ingest happens meanwhile.
// The handle is reusable and safe for concurrent use.
type Snapshot struct {
	*Session
}

// Epoch returns the pinned epoch number.
func (sn *Snapshot) Epoch() int64 { return sn.pin.epoch }

// Database returns the pinned frozen database (shadowing the Session's live
// head): reads through it are stable by construction.
func (sn *Snapshot) Database() *storage.Database { return sn.pin.db }

// Snapshot opens a read handle pinned to the latest published epoch of a
// registered database (publishing one if build-phase mutations are
// pending). This is the service-level analogue of storage.Database.Snapshot:
// a consistent, reusable view under live ingest.
func (e *Engine) Snapshot(name string) (*Snapshot, error) {
	return e.SnapshotAt(name, 0)
}

// SnapshotAt is Snapshot pinned to a specific epoch (0 = latest). A retired
// or never-published epoch is an error.
func (e *Engine) SnapshotAt(name string, epoch int64) (*Snapshot, error) {
	s, err := e.Session(name)
	if err != nil {
		return nil, err
	}
	sh, err := s.ds.shardAt(epoch)
	if err != nil {
		return nil, err
	}
	s.pin = sh
	return &Snapshot{Session: s}, nil
}

// Append bulk-appends one batch to a table of a registered database and
// publishes it as a new epoch, returning the epoch number. This is the only
// mutation safe under concurrent requests: in-flight sessions keep their
// pinned epochs (and warm caches — zero evictions), and the next unpinned
// request observes the new rows.
func (e *Engine) Append(name, table string, cols []storage.ColumnData) (int64, error) {
	e.mu.RLock()
	ds, ok := e.dbs[name]
	e.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("service: unknown database %q", name)
	}
	// Remember the warmest shard before publication so the new epoch's
	// shard can be warmed from it below.
	ds.epochMu.Lock()
	var prev *epochShard
	if n := len(ds.shardOrder); n > 0 {
		prev = ds.shards[ds.shardOrder[n-1]]
	}
	if w := ds.warmed; w != nil && (prev == nil || w.epoch > prev.epoch) {
		// A prior write's parked shard that no reader adopted yet is the
		// warmest state there is — chain the new epoch's carry from it.
		prev = w
	}
	ds.epochMu.Unlock()
	epoch, err := ds.db.Append(table, cols)
	if err != nil {
		return 0, err
	}
	ds.m.Lock()
	ds.appends++
	ds.m.Unlock()
	// The write pays to rebuild what it invalidated: build the new epoch's
	// serving state now — carrying forward every cache entry that provably
	// still holds and re-materializing the joins that touched the appended
	// table — and park it for the first reader to adopt (shardFor). The
	// reader starts warm instead of absorbing the rebuild into its own
	// latency, and a pure write burst never enters the retention ring.
	if prev != nil {
		if snap, serr := ds.db.SnapshotAt(epoch); serr == nil {
			cache := verify.NewCacheFrom(snap, prev.cache)
			ds.epochMu.Lock()
			ds.warmed = &epochShard{epoch: epoch, db: snap, cache: cache}
			ds.epochMu.Unlock()
			// Park before warming: a reader that adopts the shard mid-warm
			// shares each join's single materialization (entry-level locks)
			// instead of duplicating the whole rebuild under its latency.
			cache.WarmFrom(context.Background(), prev.cache)
		}
	}
	return epoch, nil
}

// Synthesize runs dual-specification synthesis and returns the ranked
// candidates.
func (s *Session) Synthesize(ctx context.Context, in Input) (*enumerate.Result, error) {
	return s.SynthesizeStream(ctx, in, nil)
}

// SynthesizeStream runs synthesis, invoking emit for every candidate as it
// is found (the front-end's progressive display, §4). emit returning false
// stops the search. The verifier borrows the database's shared caches — the
// cross-request analogue of the paper's within-search prefix sharing —
// unless the engine was built with PerRequestCaches.
func (s *Session) SynthesizeStream(ctx context.Context, in Input, emit func(enumerate.Candidate) bool) (*enumerate.Result, error) {
	if in.Sketch != nil {
		if err := in.Sketch.Validate(); err != nil {
			return nil, err
		}
	}
	release, err := s.eng.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()

	start := time.Now()
	// Resolve the request's wall-clock deadline: its own ask, else the
	// engine default, clamped to the engine maximum. The budget starts after
	// admission — queueing time is the engine's debt, not the request's.
	budget := in.Deadline
	if budget <= 0 {
		budget = s.eng.opts.DefaultDeadline
	}
	if max := s.eng.opts.MaxDeadline; max > 0 && (budget <= 0 || budget > max) {
		budget = max
	}
	if budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, budget)
		defer cancel()
	}
	// Arm morsel-driven execution after the deadline is attached, so morsel
	// workers inherit the expiring context through their per-morsel derived
	// contexts and unwind at the executor's cancellation checkpoints.
	ctx = s.eng.execCtx(ctx)
	// Fault seam: a request marked faulty may draw a forced cancellation —
	// the chaos harness's client-disconnect simulation.
	if delay, forced := faultinject.From(ctx).RequestCancel(); forced {
		var cancel context.CancelFunc
		ctx, cancel = context.WithCancel(ctx)
		defer cancel()
		if delay <= 0 {
			cancel()
		} else {
			t := time.AfterFunc(delay, cancel)
			defer t.Stop()
		}
	}
	// Cancel-to-return watcher: stamp the instant the context fires so the
	// gap to Enumerate's return — the latency a disconnecting client
	// actually observes — lands in the per-database stats.
	var firedAt atomic.Int64
	stopWatch := context.AfterFunc(ctx, func() { firedAt.Store(time.Now().UnixNano()) })
	defer stopWatch()

	// Resolve the epoch snapshot the whole request will observe. The head
	// epoch is read at the same moment for the lag accounting.
	sh, err := s.shard(in.Epoch)
	if err != nil {
		return nil, err
	}
	s.ds.noteLag(s.ds.db.Epoch() - sh.epoch)
	sh.requests.Add(1)

	var v *verify.Verifier
	if s.eng.opts.PerRequestCaches {
		v = verify.New(sh.db, s.eng.rules, in.Sketch, in.Literals)
	} else {
		v = verify.NewWithCache(sh.db, s.eng.rules, in.Sketch, in.Literals, sh.cache)
	}
	en := enumerate.New(sh.db, s.eng.model, v, enumerate.Options{
		Mode:          s.eng.opts.Mode,
		MaxCandidates: s.eng.opts.MaxCandidates,
		MaxStates:     s.eng.opts.MaxStates,
		Budget:        s.eng.opts.Budget,
		Workers:       s.eng.opts.Workers,
	})
	res, err := en.Enumerate(ctx, in.NLQ, in.Literals, emit)
	stopWatch()
	var cancelReturn time.Duration
	cancelled := ctx.Err() != nil
	if cancelled {
		now := time.Now()
		if at := firedAt.Load(); at > 0 {
			cancelReturn = now.Sub(time.Unix(0, at))
		} else if dl, ok := ctx.Deadline(); ok && now.After(dl) {
			// The AfterFunc goroutine has not run yet; the deadline
			// overshoot is the same quantity measured without it.
			cancelReturn = now.Sub(dl)
		}
		if cancelReturn < 0 {
			cancelReturn = 0
		}
	}
	interrupted := errors.Is(ctx.Err(), context.Canceled)
	s.ds.record(time.Since(start), res, err, cancelled, cancelReturn, interrupted)
	return res, err
}

// Autocomplete suggests literal values for a prefix, backed by the shared
// master inverted column index over all text columns (§4). The index is
// built once, on first use, for all requests; like the paper's offline
// autocomplete server it is not rebuilt on Insert.
func (s *Session) Autocomplete(prefix string, max int) []autocomplete.Hit {
	return s.ds.autocompleteIndex().Complete(prefix, max)
}

// AutocompleteSize returns the size of the shared index, 0 if not yet built.
func (s *Session) AutocompleteSize() int {
	s.ds.m.Lock()
	idx := s.ds.idx
	s.ds.m.Unlock()
	if idx == nil {
		return 0
	}
	return idx.Size()
}

// Exists answers one raw existence probe — the building block of cascading
// verification — through the database's shared join cache (or a fresh
// executor under PerRequestCaches). The load harness's data-scale sweep
// drives this surface so its measurements exercise exactly the shared-cache
// path production verification uses.
func (s *Session) Exists(eq sqlexec.ExistsQuery) (bool, error) {
	return s.ExistsCtx(context.Background(), eq)
}

// ExistsCtx is Exists under a request context: the probe unwinds at the
// executor's cancellation checkpoints when ctx is cancelled, and a
// fault-marked context (see internal/faultinject) draws its injected probe
// latency here.
func (s *Session) ExistsCtx(ctx context.Context, eq sqlexec.ExistsQuery) (bool, error) {
	sh, err := s.shard(0)
	if err != nil {
		return false, err
	}
	ctx = s.eng.execCtx(ctx)
	if s.eng.opts.PerRequestCaches {
		return sqlexec.ExistsCtx(ctx, sh.db, eq)
	}
	return sh.cache.Joins().ExistsCtx(ctx, eq)
}

// Preview executes a candidate query with a row cap, powering the
// front-end's "Query Preview" button (§4). The join runs through the shared
// join cache, and truncation copies the row slice so callers can never
// mutate cached or shared results.
func (s *Session) Preview(q *sqlir.Query, maxRows int) (*sqlexec.Result, error) {
	sh, err := s.shard(0)
	if err != nil {
		return nil, err
	}
	var res *sqlexec.Result
	ctx := s.eng.execCtx(context.Background())
	if s.eng.opts.PerRequestCaches {
		res, err = sqlexec.ExecuteCtx(ctx, sh.db, q)
	} else {
		res, err = sh.cache.Joins().ExecuteCtx(ctx, q)
	}
	if err != nil {
		return nil, err
	}
	if maxRows > 0 && len(res.Rows) > maxRows {
		rows := make([][]sqlir.Value, maxRows)
		copy(rows, res.Rows)
		res.Rows = rows
	}
	return res, nil
}

func (ds *dbState) autocompleteIndex() *autocomplete.Index {
	ds.idxOnce.Do(func() {
		// Build from a frozen snapshot so the one-time build cannot race
		// concurrent ingest; like the paper's offline autocomplete server,
		// the index is not rebuilt on later appends.
		idx := autocomplete.Build(ds.db.Snapshot())
		ds.m.Lock()
		ds.idx = idx
		ds.m.Unlock()
	})
	ds.m.Lock()
	idx := ds.idx
	ds.m.Unlock()
	return idx
}

// record folds one finished request into the per-database accounting.
// cancelled marks a request whose context fired before it returned;
// cancelReturn is the observed cancel-to-return gap for such requests, and
// interrupted marks the caller-cancelled subset (client disconnects), which
// are accounted as interruptions rather than successes.
func (ds *dbState) record(d time.Duration, res *enumerate.Result, err error, cancelled bool, cancelReturn time.Duration, interrupted bool) {
	ds.m.Lock()
	defer ds.m.Unlock()
	ds.requests++
	if err != nil {
		ds.errors++
	}
	if res != nil {
		ds.candidates += int64(len(res.Candidates))
		if res.Truncated {
			ds.truncated++
		}
	}
	if interrupted {
		ds.interrupted++
	}
	if cancelled && len(ds.cret) > 0 {
		ds.cret[ds.cretPos] = cancelReturn
		ds.cretPos = (ds.cretPos + 1) % len(ds.cret)
		if ds.cretN < len(ds.cret) {
			ds.cretN++
		}
		ds.cretTotal++
	}
	if len(ds.lat) > 0 {
		ds.lat[ds.latPos] = d
		ds.latPos = (ds.latPos + 1) % len(ds.lat)
		if ds.latN < len(ds.lat) {
			ds.latN++
		}
	}
}
