package service

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/duoquest/duoquest/internal/enumerate"
	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/tsq"
)

// mixedWorkload is a fixed cross-database request mix: every entry names
// the target database and a dual-specification input. MaxStates (not the
// time budget) bounds each search so the reference answers are
// deterministic.
func mixedWorkload() []struct {
	db string
	in Input
} {
	text := sqlir.NewText
	num := sqlir.NewNumber
	return []struct {
		db string
		in Input
	}{
		{"movies", Input{
			NLQ:      "titles of movies before 1995",
			Literals: []sqlir.Value{num(1995)},
			Sketch: &tsq.TSQ{Types: []sqlir.Type{sqlir.TypeText},
				Tuples: []tsq.Tuple{{tsq.Exact(text("Forrest Gump"))}}},
		}},
		{"movies", Input{
			NLQ:      "names of actors starring in movies after 2000",
			Literals: []sqlir.Value{num(2000)},
			Sketch:   &tsq.TSQ{Types: []sqlir.Type{sqlir.TypeText}},
		}},
		{"movies", Input{
			NLQ: "how many movies are there",
			Sketch: &tsq.TSQ{Types: []sqlir.Type{sqlir.TypeNumber},
				Tuples: []tsq.Tuple{{tsq.Range(1, 100)}}},
		}},
		{"mas", Input{
			NLQ:      "List the names of organizations in continent Europe",
			Literals: []sqlir.Value{text("Europe")},
			Sketch: &tsq.TSQ{Types: []sqlir.Type{sqlir.TypeText},
				Tuples: []tsq.Tuple{{tsq.Exact(text("University of Oxford"))}}},
		}},
		{"mas", Input{
			NLQ:      "names of authors",
			Literals: nil,
			Sketch:   &tsq.TSQ{Types: []sqlir.Type{sqlir.TypeText}},
		}},
	}
}

func workloadOptions() Options {
	return Options{Budget: 30 * time.Second, MaxCandidates: 4, MaxStates: 3000}
}

// TestSharedCacheDifferential is the acceptance-criteria proof: for every
// request in a concurrent mixed-database workload, results served from the
// warm shared caches are identical — SQL, rank, and confidence — to the
// results a fresh per-request verifier produces.
func TestSharedCacheDifferential(t *testing.T) {
	// Reference: per-request caches (a fresh verifier per call), run
	// sequentially — the pre-service-layer behavior.
	refOpts := workloadOptions()
	refOpts.PerRequestCaches = true
	ref := newTestEngine(t, refOpts)

	work := mixedWorkload()
	want := make([][]string, len(work))
	for i, w := range work {
		s, err := ref.Session(w.db)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Synthesize(context.Background(), w.in)
		if err != nil {
			t.Fatalf("reference %d: %v", i, err)
		}
		want[i] = describe(res.Candidates)
	}

	// Shared engine: the same workload, issued concurrently and repeated
	// so later rounds hit warm caches.
	shared := newTestEngine(t, workloadOptions())
	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan error, rounds*len(work))
	for r := 0; r < rounds; r++ {
		for i, w := range work {
			wg.Add(1)
			go func(r, i int, db string, in Input) {
				defer wg.Done()
				s, err := shared.Session(db)
				if err != nil {
					errs <- err
					return
				}
				res, err := s.Synthesize(context.Background(), in)
				if err != nil {
					errs <- fmt.Errorf("round %d request %d: %w", r, i, err)
					return
				}
				got := describe(res.Candidates)
				if !equalStrings(got, want[i]) {
					errs <- fmt.Errorf("round %d request %d:\n got %v\nwant %v", r, i, got, want[i])
				}
			}(r, i, w.db, w.in)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// describe renders candidates as comparable strings: rank, SQL, confidence.
func describe(cs []enumerate.Candidate) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = fmt.Sprintf("#%d %.9f %s", c.Rank, c.Confidence, c.Query.String())
	}
	return out
}
