package experiments

import (
	"strings"
	"testing"

	"github.com/duoquest/duoquest/internal/dataset"
	"github.com/duoquest/duoquest/internal/enumerate"
)

func TestTable5MatchesPaperCounts(t *testing.T) {
	rows := Table5()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The paper's filtered task counts are reproduced exactly.
	if rows[2].Total != 589 || rows[2].Easy != 239 || rows[2].Medium != 252 || rows[2].Hard != 98 {
		t.Errorf("dev row = %+v", rows[2])
	}
	if rows[3].Total != 1247 || rows[3].Easy != 524 || rows[3].Medium != 481 || rows[3].Hard != 242 {
		t.Errorf("test row = %+v", rows[3])
	}
	if rows[0].AvgTables != 15 || rows[0].AvgFKs != 19 {
		t.Errorf("MAS row = %+v", rows[0])
	}
	out := RenderTable5(rows)
	for _, want := range []string{"spider-dev", "spider-test", "MAS", "589", "1247"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderTaskList(t *testing.T) {
	out := RenderTaskList()
	for _, want := range []string{"A1", "D3", "SIGMOD", "University of Michigan"} {
		if !strings.Contains(out, want) {
			t.Errorf("task list missing %q", want)
		}
	}
}

// TestSimulationSample runs the Figure 10/11 pipeline on a thin sample and
// asserts the paper's relationships: Dq ≥ NLI on top-1 and top-10, PBE far
// behind with a large unsupported share.
func TestSimulationSample(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation is slow")
	}
	cfg := QuickConfig()
	acc, err := Simulation(dataset.SpiderDev(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc.Tasks == 0 {
		t.Fatal("no tasks sampled")
	}
	if acc.DqTop1 < acc.NLITop1 {
		t.Errorf("Dq top-1 (%d) below NLI (%d)", acc.DqTop1, acc.NLITop1)
	}
	if acc.DqTop10 < acc.NLITop10 {
		t.Errorf("Dq top-10 (%d) below NLI (%d)", acc.DqTop10, acc.NLITop10)
	}
	if acc.PBEOK+acc.PBEUnsup > acc.Tasks {
		t.Errorf("PBE counts inconsistent: %+v", acc)
	}
	if acc.PBEUnsup == 0 {
		t.Error("PBE should find some tasks unsupported")
	}
	out := RenderFigure10(acc) + RenderFigure11(acc)
	for _, want := range []string{"Top-1", "Top-10", "easy", "hard"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

// TestAblationSample checks Figure 12's relationship on a thin sample: GPQE
// solves at least as many tasks within budget as either ablation.
func TestAblationSample(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation is slow")
	}
	cfg := QuickConfig()
	cfg.SampleEvery = 50
	curves, err := Ablation(dataset.SpiderDev(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 3 {
		t.Fatalf("curves = %d", len(curves))
	}
	var gpqe, nopq, noguide *AblationCurve
	for i := range curves {
		switch curves[i].Mode {
		case enumerate.ModeGPQE:
			gpqe = &curves[i]
		case enumerate.ModeNoPQ:
			nopq = &curves[i]
		case enumerate.ModeNoGuide:
			noguide = &curves[i]
		}
	}
	at := cfg.Budget
	if gpqe.CompletedWithin(at) < nopq.CompletedWithin(at) {
		t.Errorf("GPQE (%f%%) below NoPQ (%f%%)", gpqe.CompletedWithin(at), nopq.CompletedWithin(at))
	}
	if gpqe.CompletedWithin(at) < noguide.CompletedWithin(at) {
		t.Errorf("GPQE (%f%%) below NoGuide (%f%%)", gpqe.CompletedWithin(at), noguide.CompletedWithin(at))
	}
	out := RenderFigure12(curves, cfg.Budget)
	if !strings.Contains(out, "GPQE") || !strings.Contains(out, "NoPQ") || !strings.Contains(out, "NoGuide") {
		t.Errorf("render missing modes:\n%s", out)
	}
}

// TestSpecificationDetailSample checks Table 6's monotonicity on a thin
// sample: more TSQ detail never hurts top-10 accuracy, and every TSQ level
// beats the NLI baseline.
func TestSpecificationDetailSample(t *testing.T) {
	if testing.Short() {
		t.Skip("detail sweep is slow")
	}
	cfg := QuickConfig()
	cfg.SampleEvery = 50
	rows, err := SpecificationDetail(dataset.SpiderDev(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %v", rows)
	}
	byLevel := map[string]DetailRow{}
	for _, r := range rows {
		byLevel[r.Level] = r
	}
	if byLevel["Full"].Top10 < byLevel["Minimal"].Top10 {
		t.Errorf("Full (%v) below Minimal (%v)", byLevel["Full"].Top10, byLevel["Minimal"].Top10)
	}
	if byLevel["Minimal"].Top10 < byLevel["NLI"].Top10 {
		t.Errorf("Minimal (%v) below NLI (%v)", byLevel["Minimal"].Top10, byLevel["NLI"].Top10)
	}
	out := RenderTable6("dev", rows)
	if !strings.Contains(out, "Full") || !strings.Contains(out, "Minimal") {
		t.Errorf("render missing levels:\n%s", out)
	}
}

func TestVerificationStagesSample(t *testing.T) {
	if testing.Short() {
		t.Skip("stage report is slow")
	}
	cfg := QuickConfig()
	cfg.SampleEvery = 60
	rep, err := VerificationStages(dataset.SpiderDev(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checked == 0 {
		t.Error("no verifications recorded")
	}
	out := RenderStageReport(rep)
	if !strings.Contains(out, "Rejections by stage") {
		t.Errorf("render: %s", out)
	}
}

func TestConfigs(t *testing.T) {
	d := DefaultConfig()
	q := QuickConfig()
	if d.SampleEvery != 1 || q.SampleEvery <= 1 {
		t.Error("sampling configs wrong")
	}
	if q.Users >= d.Users {
		t.Error("quick config should use fewer users")
	}
}

// TestNoisyExamplesSample quantifies the §7 limitation: a corrupted example
// prunes the gold query (soundness works against wrong examples).
func TestNoisyExamplesSample(t *testing.T) {
	if testing.Short() {
		t.Skip("noise sweep is slow")
	}
	cfg := QuickConfig()
	cfg.SampleEvery = 60
	rep, err := NoisyExamples(dataset.SpiderDev(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tasks == 0 {
		t.Fatal("no tasks")
	}
	if rep.NoisyTop10 > rep.CleanTop10 {
		t.Errorf("noise should not help: clean %d, noisy %d", rep.CleanTop10, rep.NoisyTop10)
	}
	if rep.CleanTop10 == 0 {
		t.Error("clean accuracy collapsed")
	}
}

// TestDesignAblationsSample validates the §3.3.3 design discussion: the
// paper's product confidence is at least as accurate as the geometric-mean
// alternative, and semantic rules do not hurt accuracy while reducing
// search effort.
func TestDesignAblationsSample(t *testing.T) {
	if testing.Short() {
		t.Skip("design sweep is slow")
	}
	cfg := QuickConfig()
	cfg.SampleEvery = 60
	rows, err := DesignAblations(dataset.SpiderDev(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	byName := map[string]DesignRow{}
	for _, r := range rows {
		byName[r.Variant] = r
	}
	paper := byName["product+rules (paper)"]
	if paper.Top10 < byName["geometric mean"].Top10 {
		t.Errorf("product (%v) below geometric mean (%v)", paper.Top10, byName["geometric mean"].Top10)
	}
	out := RenderDesignAblations("dev", rows)
	if !strings.Contains(out, "geometric mean") {
		t.Errorf("render: %s", out)
	}
}
