package experiments

import (
	"math/rand"

	"github.com/duoquest/duoquest/internal/dataset"
	"github.com/duoquest/duoquest/internal/enumerate"
	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/tsq"
)

// NoiseReport quantifies the §7 limitation: Duoquest is not yet able to
// deal with noisy (incorrect) examples. We corrupt one cell of one example
// tuple in the Full TSQ and measure how top-10 accuracy degrades. Because
// every candidate must satisfy the sketch, a wrong example soundly-but-
// wrongly prunes the desired query — the failure mode the paper's future
// work (error detection, probabilistic reasoning) targets.
type NoiseReport struct {
	Tasks      int
	CleanTop10 int
	NoisyTop10 int
	// Recovered counts noisy tasks where the gold query still appeared
	// (the corrupted cell happened to be consistent with it).
	Recovered int
}

// NoisyExamples runs the clean-vs-corrupted comparison over a benchmark
// sample.
func NoisyExamples(bench *dataset.Benchmark, cfg Config) (*NoiseReport, error) {
	tasks := sample(bench.Tasks, cfg.SampleEvery)
	rep := &NoiseReport{Tasks: len(tasks)}
	for i, task := range tasks {
		seed := cfg.TSQSeed + int64(i)
		clean, err := dataset.SynthesizeTSQ(task, dataset.DetailFull, seed)
		if err != nil {
			return nil, err
		}
		out, err := runRanked(task, clean, enumerate.ModeGPQE, cfg)
		if err != nil {
			return nil, err
		}
		if out.rank >= 1 && out.rank <= 10 {
			rep.CleanTop10++
		}

		noisy := corruptSketch(clean, seed)
		out, err = runRanked(task, noisy, enumerate.ModeGPQE, cfg)
		if err != nil {
			return nil, err
		}
		if out.rank >= 1 && out.rank <= 10 {
			rep.NoisyTop10++
			rep.Recovered++
		}
	}
	return rep, nil
}

// corruptSketch flips one cell of the first example tuple to a wrong value:
// text cells get a scrambled string, numeric cells move far outside any
// plausible range.
func corruptSketch(sk *tsq.TSQ, seed int64) *tsq.TSQ {
	r := rand.New(rand.NewSource(seed))
	out := &tsq.TSQ{
		Types:  append([]sqlir.Type{}, sk.Types...),
		Sorted: sk.Sorted,
		Limit:  sk.Limit,
	}
	for _, tp := range sk.Tuples {
		out.Tuples = append(out.Tuples, append(tsq.Tuple{}, tp...))
	}
	if len(out.Tuples) == 0 || len(out.Tuples[0]) == 0 {
		return out
	}
	tp := out.Tuples[0]
	// Pick a non-empty cell to corrupt.
	idxs := r.Perm(len(tp))
	for _, j := range idxs {
		switch tp[j].Kind {
		case tsq.CellExact:
			if tp[j].Val.Kind == sqlir.KindText {
				tp[j] = tsq.Exact(sqlir.NewText("zz-" + tp[j].Val.Text + "-zz"))
			} else {
				tp[j] = tsq.Exact(sqlir.NewNumber(tp[j].Val.Num + 1e9))
			}
			return out
		case tsq.CellRange:
			lo := tp[j].Lo.Num + 1e9
			tp[j] = tsq.Range(lo, lo+1)
			return out
		}
	}
	return out
}
