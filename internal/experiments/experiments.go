// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the synthetic substrates: the dataset statistics
// (Table 5), the user studies (Figures 5–9), the simulation study
// (Figures 10–11), the GPQE ablation (Figure 12), and the specification
// detail sweep (Table 6). cmd/experiments drives it; bench_test.go wraps
// each experiment as a benchmark.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/duoquest/duoquest/internal/dataset"
	"github.com/duoquest/duoquest/internal/enumerate"
	"github.com/duoquest/duoquest/internal/guidance"
	"github.com/duoquest/duoquest/internal/pbe"
	"github.com/duoquest/duoquest/internal/semrules"
	"github.com/duoquest/duoquest/internal/simulate"
	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/tsq"
	"github.com/duoquest/duoquest/internal/verify"
)

// Config bounds experiment cost. The paper ran 60-second GPU timeouts; this
// CPU implementation is orders of magnitude faster per state, so budgets are
// sub-second (DESIGN.md §3, substitution 4).
type Config struct {
	// Budget is the per-task synthesis wall-clock budget.
	Budget time.Duration
	// MaxCandidates caps ranked lists (100 covers Table 6's Top-100).
	MaxCandidates int
	// SampleEvery runs every k-th task (1 = all tasks).
	SampleEvery int
	// Users is the user-study subject count.
	Users int
	// TSQSeed seeds the synthesized TSQs (§5.4.1: random example tuples).
	TSQSeed int64
}

// DefaultConfig is the configuration used for EXPERIMENTS.md.
func DefaultConfig() Config {
	return Config{
		Budget:        400 * time.Millisecond,
		MaxCandidates: 100,
		SampleEvery:   1,
		Users:         16,
		TSQSeed:       20200316, // the paper's arXiv date
	}
}

// QuickConfig is a scaled-down configuration for tests and benchmarks.
func QuickConfig() Config {
	cfg := DefaultConfig()
	cfg.Budget = 200 * time.Millisecond
	cfg.SampleEvery = 25
	cfg.Users = 4
	return cfg
}

// sample returns every k-th task.
func sample(tasks []*dataset.Task, every int) []*dataset.Task {
	if every <= 1 {
		return tasks
	}
	var out []*dataset.Task
	for i := 0; i < len(tasks); i += every {
		out = append(out, tasks[i])
	}
	return out
}

// rankOutcome is one task's ranked-list result.
type rankOutcome struct {
	rank    int           // gold rank (0 = not found)
	elapsed time.Duration // time to gold (0 if not found)
	states  int
}

// runRanked synthesizes one task and reports the gold query's rank. sketch
// may be nil (NLI). Stops as soon as the gold query is emitted or the
// candidate cap is reached.
func runRanked(task *dataset.Task, sketch *tsq.TSQ, mode enumerate.Mode, cfg Config) (rankOutcome, error) {
	v := verify.New(task.DB, semrules.Default(), sketch, task.Literals)
	e := enumerate.New(task.DB, guidance.NewLexicalModel(), v, enumerate.Options{
		Mode:          mode,
		MaxCandidates: cfg.MaxCandidates,
		Budget:        cfg.Budget,
	})
	out := rankOutcome{}
	res, err := e.Enumerate(context.Background(), task.NLQ, task.Literals, func(c enumerate.Candidate) bool {
		if sqlir.Equivalent(c.Query, task.Gold) {
			out.rank = c.Rank
			out.elapsed = c.Elapsed
			return false
		}
		return true
	})
	if err != nil {
		return out, fmt.Errorf("task %s: %w", task.ID, err)
	}
	out.states = res.States
	return out, nil
}

// --- Table 5: dataset statistics -------------------------------------------

// Table5Row is one dataset row of Table 5.
type Table5Row struct {
	Experiment string
	Dataset    string
	Databases  int
	Easy       int
	Medium     int
	Hard       int
	Total      int
	AvgTables  float64
	AvgColumns float64
	AvgFKs     float64
}

// Table5 computes the dataset statistics over the MAS and generated
// benchmarks.
func Table5() []Table5Row {
	masTasks, masDB := dataset.MASTasks()
	countMAS := func(ids []string) (e, m, h int) {
		for _, t := range masTasks {
			for _, id := range ids {
				if t.ID == id {
					switch t.Difficulty {
					case dataset.Easy:
						e++
					case dataset.Medium:
						m++
					default:
						h++
					}
				}
			}
		}
		return
	}
	nliIDs := []string{"A1", "A2", "A3", "A4", "B1", "B2", "B3", "B4"}
	pbeIDs := []string{"C1", "C2", "C3", "D1", "D2", "D3"}
	e1, m1, h1 := countMAS(nliIDs)
	e2, m2, h2 := countMAS(pbeIDs)

	rows := []Table5Row{
		{
			Experiment: "User Study vs. NLI", Dataset: "MAS", Databases: 1,
			Easy: e1, Medium: m1, Hard: h1, Total: e1 + m1 + h1,
			AvgTables:  float64(len(masDB.Schema.Tables)),
			AvgColumns: float64(masDB.Schema.NumColumns()),
			AvgFKs:     float64(len(masDB.Schema.ForeignKeys)),
		},
		{
			Experiment: "User Study vs. PBE", Dataset: "MAS", Databases: 1,
			Easy: e2, Medium: m2, Hard: h2, Total: e2 + m2 + h2,
			AvgTables:  float64(len(masDB.Schema.Tables)),
			AvgColumns: float64(masDB.Schema.NumColumns()),
			AvgFKs:     float64(len(masDB.Schema.ForeignKeys)),
		},
	}
	for _, bench := range []*dataset.Benchmark{dataset.SpiderDev(), dataset.SpiderTest()} {
		row := Table5Row{Experiment: "Simulation", Dataset: bench.Name, Databases: len(bench.Databases)}
		for _, t := range bench.Tasks {
			switch t.Difficulty {
			case dataset.Easy:
				row.Easy++
			case dataset.Medium:
				row.Medium++
			default:
				row.Hard++
			}
		}
		row.Total = len(bench.Tasks)
		var tbls, cols, fks int
		for _, db := range bench.Databases {
			tbls += len(db.Schema.Tables)
			cols += db.Schema.NumColumns()
			fks += len(db.Schema.ForeignKeys)
		}
		n := float64(len(bench.Databases))
		row.AvgTables = float64(tbls) / n
		row.AvgColumns = float64(cols) / n
		row.AvgFKs = float64(fks) / n
		rows = append(rows, row)
	}
	return rows
}

// RenderTable5 prints the table in the paper's layout.
func RenderTable5(rows []Table5Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %-12s %4s | %5s %5s %5s %6s | %7s %8s %6s\n",
		"Experiment", "Dataset", "DBs", "Easy", "Med", "Hard", "Total", "Tables", "Columns", "FK-PK")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %-12s %4d | %5d %5d %5d %6d | %7.1f %8.1f %6.1f\n",
			r.Experiment, r.Dataset, r.Databases, r.Easy, r.Medium, r.Hard, r.Total,
			r.AvgTables, r.AvgColumns, r.AvgFKs)
	}
	return b.String()
}

// --- Figures 5-9: user studies ----------------------------------------------

// NLIStudy runs the Duoquest-vs-NLI user study (Figures 5 and 6).
func NLIStudy(cfg Config) (*simulate.StudyResult, error) {
	tasks, _ := dataset.NLIStudyTasks()
	r := simulate.NewRunner()
	return r.RunStudy(tasks, [2]simulate.System{simulate.SystemDuoquest, simulate.SystemNLI}, cfg.Users)
}

// PBEStudy runs the Duoquest-vs-PBE user study (Figures 7, 8 and 9).
func PBEStudy(cfg Config) (*simulate.StudyResult, error) {
	tasks, _ := dataset.PBEStudyTasks()
	r := simulate.NewRunner()
	return r.RunStudy(tasks, [2]simulate.System{simulate.SystemDuoquest, simulate.SystemPBE}, cfg.Users)
}

// RenderStudySuccess renders Figure 5/7: % successful trials per task.
func RenderStudySuccess(sr *simulate.StudyResult, title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %% of trials completed successfully within 5 minutes\n", title)
	fmt.Fprintf(&b, "%-6s", "Task")
	for _, sys := range sr.Systems {
		fmt.Fprintf(&b, " %10s", sys)
	}
	b.WriteString("\n")
	for _, task := range sr.Tasks {
		fmt.Fprintf(&b, "%-6s", task)
		for _, sys := range sr.Systems {
			fmt.Fprintf(&b, " %9.1f%%", sr.SuccessPct[task][sys])
		}
		b.WriteString("\n")
	}
	for _, sys := range sr.Systems {
		ok, total := sr.OverallSuccess(sys)
		fmt.Fprintf(&b, "Overall %s: %d/%d (%.1f%%)\n", sys, ok, total, 100*float64(ok)/float64(total))
	}
	return b.String()
}

// RenderStudyTimes renders Figure 6/8: mean successful-trial time per task.
func RenderStudyTimes(sr *simulate.StudyResult, title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — mean time per task for correctly completed trials (s)\n", title)
	fmt.Fprintf(&b, "%-6s", "Task")
	for _, sys := range sr.Systems {
		fmt.Fprintf(&b, " %10s", sys)
	}
	b.WriteString("\n")
	for _, task := range sr.Tasks {
		fmt.Fprintf(&b, "%-6s", task)
		for _, sys := range sr.Systems {
			d := sr.MeanTime[task][sys]
			if d == 0 {
				fmt.Fprintf(&b, " %10s", "-")
			} else {
				fmt.Fprintf(&b, " %10.0f", d.Seconds())
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderStudyExamples renders Figure 9: mean example count per task.
func RenderStudyExamples(sr *simulate.StudyResult, title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — mean # examples used per task for successful trials\n", title)
	fmt.Fprintf(&b, "%-6s", "Task")
	for _, sys := range sr.Systems {
		fmt.Fprintf(&b, " %10s", sys)
	}
	b.WriteString("\n")
	for _, task := range sr.Tasks {
		fmt.Fprintf(&b, "%-6s", task)
		for _, sys := range sr.Systems {
			fmt.Fprintf(&b, " %10.1f", sr.MeanExamples[task][sys])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// --- Figures 10-11: simulation study ----------------------------------------

// DiffCell is a difficulty bucket of Figure 11.
type DiffCell struct {
	Total      int
	DqTop10    int
	NLITop10   int
	PBECorrect int
	PBEUnsupp  int
}

// SimAccuracy is the Figure 10 + Figure 11 result for one benchmark.
type SimAccuracy struct {
	Dataset  string
	Tasks    int
	DqTop1   int
	DqTop10  int
	NLITop1  int
	NLITop10 int
	PBEOK    int
	PBEUnsup int
	ByDiff   map[dataset.Difficulty]*DiffCell
}

// Simulation runs Duoquest, NLI, and PBE over a benchmark (§5.4.1):
// Duoquest receives NLQ + literals + Full TSQ; NLI receives NLQ + literals;
// PBE receives the TSQ's example tuples.
func Simulation(bench *dataset.Benchmark, cfg Config) (*SimAccuracy, error) {
	tasks := sample(bench.Tasks, cfg.SampleEvery)
	acc := &SimAccuracy{
		Dataset: bench.Name,
		Tasks:   len(tasks),
		ByDiff:  map[dataset.Difficulty]*DiffCell{},
	}
	for _, d := range []dataset.Difficulty{dataset.Easy, dataset.Medium, dataset.Hard} {
		acc.ByDiff[d] = &DiffCell{}
	}
	pbeSystems := map[string]*pbe.System{}
	for i, task := range tasks {
		cell := acc.ByDiff[task.Difficulty]
		cell.Total++
		sketch, err := dataset.SynthesizeTSQ(task, dataset.DetailFull, cfg.TSQSeed+int64(i))
		if err != nil {
			return nil, err
		}
		dq, err := runRanked(task, sketch, enumerate.ModeGPQE, cfg)
		if err != nil {
			return nil, err
		}
		if dq.rank >= 1 && dq.rank <= 1 {
			acc.DqTop1++
		}
		if dq.rank >= 1 && dq.rank <= 10 {
			acc.DqTop10++
			cell.DqTop10++
		}
		nl, err := runRanked(task, nil, enumerate.ModeGPQE, cfg)
		if err != nil {
			return nil, err
		}
		if nl.rank == 1 {
			acc.NLITop1++
		}
		if nl.rank >= 1 && nl.rank <= 10 {
			acc.NLITop10++
			cell.NLITop10++
		}
		// PBE: supported tasks get the example tuples.
		if ok, _ := pbe.Supports(task.Gold, task.DB.Schema); !ok {
			acc.PBEUnsup++
			cell.PBEUnsupp++
		} else {
			sys := pbeSystems[task.DB.Name]
			if sys == nil {
				sys = pbe.New(task.DB, pbe.DefaultOptions())
				pbeSystems[task.DB.Name] = sys
			}
			out, err := sys.Synthesize(sketch.Tuples)
			if err != nil {
				return nil, err
			}
			if out.Unsupported {
				acc.PBEUnsup++
				cell.PBEUnsupp++
			} else if out.Correct(task.Gold) {
				acc.PBEOK++
				cell.PBECorrect++
			}
		}
	}
	return acc, nil
}

// RenderFigure10 prints the top-1/top-10 accuracy table (Figure 10).
func RenderFigure10(acc *SimAccuracy) string {
	var b strings.Builder
	pct := func(n int) float64 { return 100 * float64(n) / float64(acc.Tasks) }
	fmt.Fprintf(&b, "%s (%d tasks)\n", acc.Dataset, acc.Tasks)
	fmt.Fprintf(&b, "%-6s %12s %12s %12s %12s\n", "Sys", "Top-1", "Top-10", "Correct", "Unsupp.")
	fmt.Fprintf(&b, "%-6s %5d %5.1f%% %5d %5.1f%% %12s %12s\n", "Dq",
		acc.DqTop1, pct(acc.DqTop1), acc.DqTop10, pct(acc.DqTop10), "-", "0  0.0%")
	fmt.Fprintf(&b, "%-6s %5d %5.1f%% %5d %5.1f%% %12s %12s\n", "NLI",
		acc.NLITop1, pct(acc.NLITop1), acc.NLITop10, pct(acc.NLITop10), "-", "0  0.0%")
	fmt.Fprintf(&b, "%-6s %12s %12s %5d %5.1f%% %5d %5.1f%%\n", "PBE",
		"-", "-", acc.PBEOK, pct(acc.PBEOK), acc.PBEUnsup, pct(acc.PBEUnsup))
	return b.String()
}

// RenderFigure11 prints the difficulty breakdown (Figure 11).
func RenderFigure11(acc *SimAccuracy) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s by difficulty (✓# / ✓%% / U#)\n", acc.Dataset)
	fmt.Fprintf(&b, "%-6s", "Sys")
	for _, d := range []dataset.Difficulty{dataset.Easy, dataset.Medium, dataset.Hard} {
		fmt.Fprintf(&b, " | %-22s", fmt.Sprintf("%s (%d)", d, acc.ByDiff[d].Total))
	}
	b.WriteString("\n")
	row := func(name string, get func(*DiffCell) (int, int)) {
		fmt.Fprintf(&b, "%-6s", name)
		for _, d := range []dataset.Difficulty{dataset.Easy, dataset.Medium, dataset.Hard} {
			cell := acc.ByDiff[d]
			okN, unN := get(cell)
			p := 0.0
			if cell.Total > 0 {
				p = 100 * float64(okN) / float64(cell.Total)
			}
			fmt.Fprintf(&b, " | %5d %5.1f%% U:%-5d", okN, p, unN)
		}
		b.WriteString("\n")
	}
	row("Dq", func(c *DiffCell) (int, int) { return c.DqTop10, 0 })
	row("NLI", func(c *DiffCell) (int, int) { return c.NLITop10, 0 })
	row("PBE", func(c *DiffCell) (int, int) { return c.PBECorrect, c.PBEUnsupp })
	return b.String()
}

// --- Figure 12: GPQE ablation -----------------------------------------------

// AblationCurve is one algorithm's time-to-correct-query distribution.
type AblationCurve struct {
	Mode  enumerate.Mode
	Times []time.Duration // per found task; unfound tasks are absent
	Total int
}

// Ablation compares GPQE with NoPQ and NoGuide (Figure 12): the time each
// algorithm needs to synthesize the correct query, as a distribution over
// tasks.
func Ablation(bench *dataset.Benchmark, cfg Config) ([]AblationCurve, error) {
	tasks := sample(bench.Tasks, cfg.SampleEvery)
	modes := []enumerate.Mode{enumerate.ModeGPQE, enumerate.ModeNoPQ, enumerate.ModeNoGuide}
	curves := make([]AblationCurve, len(modes))
	for mi, mode := range modes {
		curves[mi] = AblationCurve{Mode: mode, Total: len(tasks)}
		for i, task := range tasks {
			sketch, err := dataset.SynthesizeTSQ(task, dataset.DetailFull, cfg.TSQSeed+int64(i))
			if err != nil {
				return nil, err
			}
			out, err := runRanked(task, sketch, mode, cfg)
			if err != nil {
				return nil, err
			}
			if out.rank > 0 {
				curves[mi].Times = append(curves[mi].Times, out.elapsed)
			}
		}
	}
	return curves, nil
}

// CompletedWithin returns the percentage of tasks solved within d.
func (c *AblationCurve) CompletedWithin(d time.Duration) float64 {
	n := 0
	for _, t := range c.Times {
		if t <= d {
			n++
		}
	}
	return 100 * float64(n) / float64(c.Total)
}

// RenderFigure12 prints the CDF at log-spaced time buckets.
func RenderFigure12(curves []AblationCurve, budget time.Duration) string {
	buckets := []time.Duration{
		budget / 100, budget / 50, budget / 20, budget / 10,
		budget / 5, budget / 2, budget,
	}
	var b strings.Builder
	b.WriteString("% tasks completed within time budget (CDF)\n")
	fmt.Fprintf(&b, "%-10s", "Time")
	for _, c := range curves {
		fmt.Fprintf(&b, " %10s", c.Mode)
	}
	b.WriteString("\n")
	for _, d := range buckets {
		fmt.Fprintf(&b, "%-10s", d.Round(time.Millisecond))
		for _, c := range curves {
			fmt.Fprintf(&b, " %9.1f%%", c.CompletedWithin(d))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// --- Table 6: specification detail -------------------------------------------

// DetailRow is one row of Table 6.
type DetailRow struct {
	Level  string
	Top1   float64
	Top10  float64
	Top100 float64
}

// SpecificationDetail sweeps TSQ detail levels (Table 6): Full, Partial,
// Minimal, plus the NLI baseline with no TSQ at all.
func SpecificationDetail(bench *dataset.Benchmark, cfg Config) ([]DetailRow, error) {
	tasks := sample(bench.Tasks, cfg.SampleEvery)
	type counts struct{ t1, t10, t100 int }
	levels := []struct {
		name   string
		sketch func(task *dataset.Task, seed int64) (*tsq.TSQ, error)
	}{
		{"Full", func(t *dataset.Task, s int64) (*tsq.TSQ, error) {
			return dataset.SynthesizeTSQ(t, dataset.DetailFull, s)
		}},
		{"Partial", func(t *dataset.Task, s int64) (*tsq.TSQ, error) {
			return dataset.SynthesizeTSQ(t, dataset.DetailPartial, s)
		}},
		{"Minimal", func(t *dataset.Task, s int64) (*tsq.TSQ, error) {
			return dataset.SynthesizeTSQ(t, dataset.DetailMinimal, s)
		}},
		{"NLI", func(t *dataset.Task, s int64) (*tsq.TSQ, error) { return nil, nil }},
	}
	var rows []DetailRow
	for _, lv := range levels {
		c := counts{}
		for i, task := range tasks {
			sketch, err := lv.sketch(task, cfg.TSQSeed+int64(i))
			if err != nil {
				return nil, err
			}
			out, err := runRanked(task, sketch, enumerate.ModeGPQE, cfg)
			if err != nil {
				return nil, err
			}
			if out.rank == 1 {
				c.t1++
			}
			if out.rank >= 1 && out.rank <= 10 {
				c.t10++
			}
			if out.rank >= 1 && out.rank <= 100 {
				c.t100++
			}
		}
		n := float64(len(tasks))
		rows = append(rows, DetailRow{
			Level:  lv.name,
			Top1:   100 * float64(c.t1) / n,
			Top10:  100 * float64(c.t10) / n,
			Top100: 100 * float64(c.t100) / n,
		})
	}
	return rows, nil
}

// RenderTable6 prints the detail sweep.
func RenderTable6(name string, rows []DetailRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — exact matching accuracy (%%) by TSQ detail\n", name)
	fmt.Fprintf(&b, "%-8s %8s %8s %8s\n", "Detail", "T1", "T10", "T100")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %8.1f %8.1f %8.1f\n", r.Level, r.Top1, r.Top10, r.Top100)
	}
	return b.String()
}

// --- Tables 7/8: task listings -----------------------------------------------

// RenderTaskList prints the user-study task definitions.
func RenderTaskList() string {
	tasks, _ := dataset.MASTasks()
	var b strings.Builder
	b.WriteString("User-study tasks (Appendix A, literals re-scaled to the synthetic MAS)\n\n")
	for _, t := range tasks {
		fmt.Fprintf(&b, "%-3s [%-6s] %s\n    %s\n", t.ID, t.Difficulty, t.NLQ, t.SQL)
	}
	return b.String()
}

// --- Verification-stage ablation (design-choice validation, DESIGN.md §4) ---

// StageReport aggregates verifier work over a task sample, validating the
// ascending-cost ordering claim of §3.4: most rejections happen in the
// cheap, database-free stages.
type StageReport struct {
	Tasks     int
	Checked   int
	DBQueries int
	CacheHits int
	Rejected  map[verify.Stage]int

	// Streaming-executor counters: how much of the verification-query work
	// the pushdown pipeline and join-prefix sharing eliminated.
	StreamedExists int
	IndexHits      int
	JoinPrefixHits int
}

// VerificationStages runs GPQE over a sample and aggregates per-stage
// verifier statistics.
func VerificationStages(bench *dataset.Benchmark, cfg Config) (*StageReport, error) {
	tasks := sample(bench.Tasks, cfg.SampleEvery)
	rep := &StageReport{Tasks: len(tasks), Rejected: map[verify.Stage]int{}}
	for i, task := range tasks {
		sketch, err := dataset.SynthesizeTSQ(task, dataset.DetailFull, cfg.TSQSeed+int64(i))
		if err != nil {
			return nil, err
		}
		v := verify.New(task.DB, semrules.Default(), sketch, task.Literals)
		e := enumerate.New(task.DB, guidance.NewLexicalModel(), v, enumerate.Options{
			Mode:          enumerate.ModeGPQE,
			MaxCandidates: 10,
			Budget:        cfg.Budget,
		})
		if _, err := e.Enumerate(context.Background(), task.NLQ, task.Literals, nil); err != nil {
			return nil, err
		}
		st := v.Stats()
		rep.Checked += st.Checked
		rep.DBQueries += st.DBQueries
		rep.CacheHits += st.ColumnCache
		rep.StreamedExists += st.StreamedExists
		rep.IndexHits += st.IndexHits
		rep.JoinPrefixHits += st.JoinPrefixHits
		for k, n := range st.Rejected {
			rep.Rejected[k] += n
		}
	}
	return rep, nil
}

// RenderStageReport prints the stage distribution.
func RenderStageReport(rep *StageReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Verification over %d tasks: %d checks, %d DB queries, %d column-cache hits\n",
		rep.Tasks, rep.Checked, rep.DBQueries, rep.CacheHits)
	fmt.Fprintf(&b, "Streaming executor: %d streamed probes, %d index hits, %d join-prefix reuses\n",
		rep.StreamedExists, rep.IndexHits, rep.JoinPrefixHits)
	total := 0
	for _, n := range rep.Rejected {
		total += n
	}
	fmt.Fprintf(&b, "Rejections by stage (of %d):\n", total)
	for _, kv := range sortedStages(rep.Rejected) {
		fmt.Fprintf(&b, "  %s\n", kv)
	}
	return b.String()
}

// sortedStages is a helper for rendering verifier stats deterministically.
func sortedStages(m map[verify.Stage]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, fmt.Sprintf("%s=%d", k, m[verify.Stage(k)]))
	}
	return out
}
