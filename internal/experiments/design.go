package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/duoquest/duoquest/internal/dataset"
	"github.com/duoquest/duoquest/internal/enumerate"
	"github.com/duoquest/duoquest/internal/guidance"
	"github.com/duoquest/duoquest/internal/semrules"
	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/tsq"
	"github.com/duoquest/duoquest/internal/verify"
)

// DesignRow is one design-choice variant's accuracy over a benchmark sample.
type DesignRow struct {
	Variant string
	Top1    float64
	Top10   float64
	// MeanStates is the average number of explored states per task — the
	// search-effort cost of the variant.
	MeanStates float64
}

// DesignAblations validates two design choices the paper discusses:
//
//   - §3.3.3: product-of-softmax confidence vs the geometric-mean
//     alternative (the paper kept the product after observing no accuracy
//     harm from its short-query preference);
//   - §3.4 / Table 4: semantic pruning rules on vs off.
func DesignAblations(bench *dataset.Benchmark, cfg Config) ([]DesignRow, error) {
	tasks := sample(bench.Tasks, cfg.SampleEvery)
	variants := []struct {
		name  string
		geo   bool
		rules *semrules.RuleSet
	}{
		{"product+rules (paper)", false, semrules.Default()},
		{"geometric mean", true, semrules.Default()},
		{"no semantic rules", false, semrules.Empty()},
	}
	var rows []DesignRow
	for _, v := range variants {
		t1, t10, states := 0, 0, 0
		for i, task := range tasks {
			sketch, err := dataset.SynthesizeTSQ(task, dataset.DetailFull, cfg.TSQSeed+int64(i))
			if err != nil {
				return nil, err
			}
			out, err := runDesign(task, sketch, v.geo, v.rules, cfg)
			if err != nil {
				return nil, err
			}
			if out.rank == 1 {
				t1++
			}
			if out.rank >= 1 && out.rank <= 10 {
				t10++
			}
			states += out.states
		}
		n := float64(len(tasks))
		rows = append(rows, DesignRow{
			Variant:    v.name,
			Top1:       100 * float64(t1) / n,
			Top10:      100 * float64(t10) / n,
			MeanStates: float64(states) / n,
		})
	}
	return rows, nil
}

// runDesign is runRanked with explicit design knobs.
func runDesign(task *dataset.Task, sketch *tsq.TSQ, geo bool, rules *semrules.RuleSet, cfg Config) (rankOutcome, error) {
	v := verify.New(task.DB, rules, sketch, task.Literals)
	e := enumerate.New(task.DB, guidance.NewLexicalModel(), v, enumerate.Options{
		Mode:            enumerate.ModeGPQE,
		MaxCandidates:   cfg.MaxCandidates,
		Budget:          cfg.Budget,
		GeoMeanPriority: geo,
	})
	out := rankOutcome{}
	res, err := e.Enumerate(context.Background(), task.NLQ, task.Literals, func(c enumerate.Candidate) bool {
		if sqlir.Equivalent(c.Query, task.Gold) {
			out.rank = c.Rank
			out.elapsed = c.Elapsed
			return false
		}
		return true
	})
	if err != nil {
		return out, fmt.Errorf("task %s: %w", task.ID, err)
	}
	out.states = res.States
	return out, nil
}

// RenderDesignAblations prints the variant comparison.
func RenderDesignAblations(name string, rows []DesignRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — design-choice ablations (top-k %%, mean states/task)\n", name)
	fmt.Fprintf(&b, "%-24s %8s %8s %12s\n", "Variant", "T1", "T10", "states")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %8.1f %8.1f %12.0f\n", r.Variant, r.Top1, r.Top10, r.MeanStates)
	}
	return b.String()
}
