package experiments

// Table 1's capability matrix, asserted executably: Duoquest is sound,
// supports joins, selections and grouping, requires no schema knowledge
// (TSQs are positional), accepts partial tuples, and assumes an open world.
// The PBE baseline rejects partial tuples; the NLI baseline offers no
// soundness guarantee (asserted in internal/nli).

import (
	"context"
	"testing"
	"time"

	"github.com/duoquest/duoquest/internal/dataset"
	"github.com/duoquest/duoquest/internal/enumerate"
	"github.com/duoquest/duoquest/internal/guidance"
	"github.com/duoquest/duoquest/internal/pbe"
	"github.com/duoquest/duoquest/internal/semrules"
	"github.com/duoquest/duoquest/internal/sqlexec"
	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/tsq"
	"github.com/duoquest/duoquest/internal/verify"
)

// TestTable1DuoquestSoundness: every emitted candidate satisfies the TSQ,
// even under an adversarially vague NLQ.
func TestTable1DuoquestSoundness(t *testing.T) {
	tasks, db := dataset.MASTasks()
	task := tasks[12] // D2
	sketch := &tsq.TSQ{
		Types:  []sqlir.Type{sqlir.TypeText},
		Tuples: []tsq.Tuple{{tsq.Exact(sqlir.NewText("University of Oxford"))}},
	}
	v := verify.New(db, semrules.Default(), sketch, task.Literals)
	e := enumerate.New(db, guidance.NewLexicalModel(), v, enumerate.Options{
		MaxCandidates: 15, Budget: 2 * time.Second,
	})
	res, err := e.Enumerate(context.Background(), "show stuff", task.Literals, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Candidates {
		r, err := sqlexec.Execute(db, c.Query)
		if err != nil {
			t.Fatal(err)
		}
		if !sketch.Satisfies(r) {
			t.Errorf("unsound candidate: %s", c.Query)
		}
	}
}

// TestTable1PartialTuplesAndOpenWorld: a TSQ with an empty cell and a range
// cell (partial tuple) over a strict subset of the result (open world) still
// admits the gold query.
func TestTable1PartialTuplesAndOpenWorld(t *testing.T) {
	tasks, db := dataset.MASTasks()
	var a1 *dataset.Task
	for _, task := range tasks {
		if task.ID == "A1" {
			a1 = task
		}
	}
	gold, err := a1.GoldResult()
	if err != nil {
		t.Fatal(err)
	}
	if len(gold.Rows) < 3 {
		t.Fatal("A1 needs several rows for the open-world check")
	}
	// One partial tuple: exact title, year as a range. The result set has
	// dozens more rows — an open world.
	row := gold.Rows[0]
	sketch := &tsq.TSQ{
		Types: []sqlir.Type{sqlir.TypeText, sqlir.TypeNumber},
		Tuples: []tsq.Tuple{{
			tsq.Exact(row[0]),
			tsq.Range(row[1].Num-3, row[1].Num+3),
		}},
	}
	if !sketch.Satisfies(gold) {
		t.Fatal("partial/open-world sketch should accept the gold result")
	}
	v := verify.New(db, semrules.Default(), sketch, a1.Literals)
	e := enumerate.New(db, guidance.NewLexicalModel(), v, enumerate.Options{
		MaxCandidates: 10, Budget: 3 * time.Second,
	})
	foundGold := false
	_, err = e.Enumerate(context.Background(), a1.NLQ, a1.Literals, func(c enumerate.Candidate) bool {
		if sqlir.Equivalent(c.Query, a1.Gold) {
			foundGold = true
			return false
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !foundGold {
		t.Error("gold query not found under a partial, open-world sketch")
	}
}

// TestTable1PBERejectsPartialTuples: the PBE baseline cannot consume
// partial tuples (its ✗ cell in Table 1).
func TestTable1PBERejectsPartialTuples(t *testing.T) {
	_, db := dataset.MASTasks()
	sys := pbe.New(db, pbe.DefaultOptions())
	out, err := sys.Synthesize([]tsq.Tuple{{tsq.Exact(sqlir.NewText("SIGMOD")), tsq.Empty()}})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Unsupported {
		t.Error("PBE should reject partial tuples")
	}
}

// TestTable1GroupingExpressiveness: Duoquest synthesizes grouped aggregate
// queries (γ column of Table 1) — pinned by the A4 task.
func TestTable1GroupingExpressiveness(t *testing.T) {
	tasks, db := dataset.MASTasks()
	var a4 *dataset.Task
	for _, task := range tasks {
		if task.ID == "A4" {
			a4 = task
		}
	}
	sketch, err := dataset.SynthesizeTSQ(a4, dataset.DetailFull, 3)
	if err != nil {
		t.Fatal(err)
	}
	v := verify.New(db, semrules.Default(), sketch, a4.Literals)
	// The budget is a ceiling, not the expected runtime: the search stops at
	// the gold query (sub-second normally, a few seconds under -race).
	e := enumerate.New(db, guidance.NewLexicalModel(), v, enumerate.Options{
		MaxCandidates: 10, Budget: 30 * time.Second,
	})
	found := false
	_, err = e.Enumerate(context.Background(), a4.NLQ, a4.Literals, func(c enumerate.Candidate) bool {
		if sqlir.Equivalent(c.Query, a4.Gold) {
			found = true
			return false
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Error("grouped HAVING query not synthesized")
	}
}
