package loadgen

import (
	"testing"

	"github.com/duoquest/duoquest/internal/dataset"
	"github.com/duoquest/duoquest/internal/sqlexec"
	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/storage"
)

func testSpec(rows int) Spec {
	return Spec{Name: "t", Tables: 5, Rows: rows}
}

// TestGenerateDeterminism: two runs with the same seed produce
// byte-identical columns — same values, same dictionary code assignment,
// same null bitmaps — checked vector by vector and by Fingerprint. A
// different seed produces different data.
func TestGenerateDeterminism(t *testing.T) {
	a, err := Generate(testSpec(5000), 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(testSpec(5000), 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, ta := range a.DB.Schema.Tables {
		tb := b.DB.Table(ta.Name)
		if tb == nil {
			t.Fatalf("run 2 lacks table %s", ta.Name)
		}
		if ta.NumRows() != tb.NumRows() {
			t.Fatalf("table %s: %d vs %d rows", ta.Name, ta.NumRows(), tb.NumRows())
		}
		for _, c := range ta.Columns {
			va, vb := ta.Vector(c.Name), tb.Vector(c.Name)
			da, db := va.Dict(), vb.Dict()
			if (da == nil) != (db == nil) {
				t.Fatalf("%s.%s: dict present in one run only", ta.Name, c.Name)
			}
			if da != nil {
				sa, sb := da.Strings(), db.Strings()
				if len(sa) != len(sb) {
					t.Fatalf("%s.%s: dict sizes %d vs %d", ta.Name, c.Name, len(sa), len(sb))
				}
				for i := range sa {
					if sa[i] != sb[i] {
						t.Fatalf("%s.%s: dict[%d] %q vs %q", ta.Name, c.Name, i, sa[i], sb[i])
					}
				}
			}
			for i := 0; i < va.Len(); i++ {
				if va.IsNull(i) != vb.IsNull(i) {
					t.Fatalf("%s.%s row %d: null bit differs", ta.Name, c.Name, i)
				}
				if va.IsNull(i) {
					continue
				}
				switch c.Type {
				case sqlir.TypeText:
					if va.Code(i) != vb.Code(i) {
						t.Fatalf("%s.%s row %d: code %d vs %d", ta.Name, c.Name, i, va.Code(i), vb.Code(i))
					}
				default:
					if va.Num(i) != vb.Num(i) {
						t.Fatalf("%s.%s row %d: %v vs %v", ta.Name, c.Name, i, va.Num(i), vb.Num(i))
					}
				}
			}
		}
	}
	if fa, fb := Fingerprint(a.DB), Fingerprint(b.DB); fa != fb {
		t.Fatalf("fingerprints differ for identical seeds: %x vs %x", fa, fb)
	}
	c, err := Generate(testSpec(5000), 43)
	if err != nil {
		t.Fatal(err)
	}
	if Fingerprint(a.DB) == Fingerprint(c.DB) {
		t.Fatal("different seeds produced identical data")
	}
}

// TestGenerateShape: the recipe honors the spec — table count clamped to
// [3,8], total rows hit exactly, keys never NULL, nullable columns NULL at
// roughly the configured rate, dictionaries capped.
func TestGenerateShape(t *testing.T) {
	spec := Spec{Tables: 12, Rows: 20_000, NullRate: 0.2, DictCap: 64}
	g, err := Generate(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(g.DB.Schema.Tables); got != 8 {
		t.Fatalf("tables = %d, want clamp to 8", got)
	}
	if got := g.DB.TotalRows(); got != 20_000 {
		t.Fatalf("total rows = %d, want 20000", got)
	}
	if err := g.DB.Schema.Validate(); err != nil {
		t.Fatal(err)
	}
	nullable, nulls := 0, 0
	for ti, tp := range g.plan.tables {
		tab := g.DB.Table(tp.name)
		if ti > 0 && len(tp.parents) == 0 {
			t.Fatalf("table %s has no FK parent", tp.name)
		}
		for _, cp := range tp.cols {
			vec := tab.Vector(cp.name)
			if !cp.nullable && vec.NullCount() != 0 {
				t.Fatalf("%s.%s: %d NULLs in a key column", tp.name, cp.name, vec.NullCount())
			}
			if cp.nullable {
				nullable += vec.Len()
				nulls += vec.NullCount()
			}
			if cp.kind == colCat && vec.Dict() != nil && vec.Dict().Size() > 64 {
				t.Fatalf("%s.%s: dict size %d over cap 64", tp.name, cp.name, vec.Dict().Size())
			}
		}
	}
	rate := float64(nulls) / float64(nullable)
	if rate < 0.15 || rate > 0.25 {
		t.Fatalf("observed null rate %.3f, want ~0.2", rate)
	}
}

// TestBulkRowEquivalence: the bulk ingestion path and the per-row Insert
// path build byte-identical databases that answer identical verification
// queries, and both keep the row adapter and the column vectors in
// agreement.
func TestBulkRowEquivalence(t *testing.T) {
	defer storage.SetDebugRowCopies(storage.SetDebugRowCopies(true))
	bulk, err := Generate(testSpec(3000), 11)
	if err != nil {
		t.Fatal(err)
	}
	byRow, err := GenerateByRows(testSpec(3000), 11)
	if err != nil {
		t.Fatal(err)
	}
	if fb, fr := Fingerprint(bulk.DB), Fingerprint(byRow.DB); fb != fr {
		t.Fatalf("bulk fingerprint %x != row fingerprint %x", fb, fr)
	}
	for _, tab := range bulk.DB.Schema.Tables {
		if err := tab.CheckRowColumnConsistency(); err != nil {
			t.Fatal(err)
		}
	}
	probes := bulk.Probes(120, 5)
	for i, eq := range probes {
		gb, err := sqlexec.Exists(bulk.DB, eq)
		if err != nil {
			t.Fatalf("probe %d on bulk DB: %v", i, err)
		}
		gr, err := sqlexec.Exists(byRow.DB, eq)
		if err != nil {
			t.Fatalf("probe %d on row DB: %v", i, err)
		}
		if gb != gr {
			t.Fatalf("probe %d: bulk=%v row=%v", i, gb, gr)
		}
	}
}

// TestTasks: synthesized tasks parse against the generated schema, have
// non-empty gold results, and feed TSQ synthesis — the gold result always
// satisfies its own synthesized sketch.
func TestTasks(t *testing.T) {
	g, err := Generate(testSpec(4000), 3)
	if err != nil {
		t.Fatal(err)
	}
	tasks, err := g.Tasks(12, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) < 4 {
		t.Fatalf("only %d tasks synthesized", len(tasks))
	}
	hard := 0
	for _, task := range tasks {
		res, err := task.GoldResult()
		if err != nil {
			t.Fatalf("task %s: %v", task.ID, err)
		}
		if len(res.Rows) == 0 {
			t.Fatalf("task %s: empty gold result", task.ID)
		}
		sk, err := dataset.SynthesizeTSQ(task, dataset.DetailFull, 1)
		if err != nil {
			t.Fatalf("task %s: synthesize TSQ: %v", task.ID, err)
		}
		if err := sk.Validate(); err != nil {
			t.Fatalf("task %s: TSQ invalid: %v", task.ID, err)
		}
		if !sk.Satisfies(res) {
			t.Fatalf("task %s: gold result does not satisfy its own TSQ", task.ID)
		}
		if task.Difficulty == dataset.Hard {
			hard++
		}
	}
	if hard == 0 {
		t.Fatal("no Hard (grouped) task synthesized")
	}
	// Tasks are seeded: the same seed reproduces the same SQL.
	again, err := g.Tasks(12, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tasks {
		if tasks[i].SQL != again[i].SQL {
			t.Fatalf("task %d not reproducible: %q vs %q", i, tasks[i].SQL, again[i].SQL)
		}
	}
}
