package loadgen

import (
	"sync"
	"testing"

	"github.com/duoquest/duoquest/internal/sqlexec"
	"github.com/duoquest/duoquest/internal/storage"
)

// Paired ingestion benchmarks at 100k rows: the identical pre-generated
// payloads loaded through the per-row Insert path (arity/type checks, a row
// allocation, an index invalidation, and a generation bump per row) and
// through BulkAppend (one validation pass, one backing array, one
// invalidation, one generation bump per table). The fixture first proves
// the two paths build byte-identical databases that answer identical
// verification probes, so the speedup cannot come from skipped work.
// `make bench-loadgen` records the pair into BENCH_loadgen.json.

const ingestRows = 100_000

var (
	ingestOnce sync.Once
	ingestPlan *plan
	ingestCols [][]storage.ColumnData
)

// ingestFixture pre-generates the 100k-row payloads once, outside every
// timed region, and runs the equivalence self-check.
func ingestFixture(b *testing.B) (*plan, [][]storage.ColumnData) {
	b.Helper()
	ingestOnce.Do(func() {
		spec := Spec{Name: "ingest", Tables: 6, Rows: ingestRows}
		ingestPlan = buildPlan(spec, 77)
		r := newPayloadRand(77)
		for ti := range ingestPlan.tables {
			ingestCols = append(ingestCols, ingestPlan.payload(ti, r))
		}

		// Equivalence self-check: same bytes, same probe answers.
		bulk, err := Generate(spec, 77)
		if err != nil {
			panic(err)
		}
		byRow, err := GenerateByRows(spec, 77)
		if err != nil {
			panic(err)
		}
		if fb, fr := Fingerprint(bulk.DB), Fingerprint(byRow.DB); fb != fr {
			panic("ingest benchmark: bulk and row databases differ")
		}
		for _, eq := range bulk.Probes(60, 3) {
			gb, err1 := sqlexec.Exists(bulk.DB, eq)
			gr, err2 := sqlexec.Exists(byRow.DB, eq)
			if err1 != nil || err2 != nil || gb != gr {
				panic("ingest benchmark: bulk and row databases answer differently")
			}
		}
	})
	return ingestPlan, ingestCols
}

func BenchmarkLoadgenIngestRowInsert(b *testing.B) {
	p, cols := ingestFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := p.schema()
		for ti := range p.tables {
			insertRows(s.Table(p.tables[ti].name), cols[ti], p.tables[ti].rows)
		}
	}
}

func BenchmarkLoadgenIngestBulk(b *testing.B) {
	p, cols := ingestFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := p.schema()
		for ti := range p.tables {
			if err := s.Table(p.tables[ti].name).BulkAppend(cols[ti]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkLoadgenGenerate measures end-to-end generation (plan + payloads
// + bulk ingest) at the 100k scale — the fixed cost every load test and
// sweep pays per database.
func BenchmarkLoadgenGenerate(b *testing.B) {
	spec := Spec{Name: "gen", Tables: 6, Rows: ingestRows}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(spec, int64(77)); err != nil {
			b.Fatal(err)
		}
	}
}
