// Task and probe synthesis over generated databases: the loadtest harness
// drives Engine sessions with these NLQ+gold tasks (TSQs are then derived
// by dataset.SynthesizeTSQ, exactly as the simulation study does), and the
// scale sweep measures verification cost with the existence probes.
package loadgen

import (
	"fmt"
	"math/rand"

	"github.com/duoquest/duoquest/internal/dataset"
	"github.com/duoquest/duoquest/internal/sqlexec"
	"github.com/duoquest/duoquest/internal/sqlir"
)

// catColumn returns the table's categorical column plan.
func (tp *tablePlan) catColumn() *colPlan {
	for i := range tp.cols {
		if tp.cols[i].kind == colCat {
			return &tp.cols[i]
		}
	}
	return nil
}

// numColumn returns the table's measure column plan.
func (tp *tablePlan) numColumn() *colPlan {
	for i := range tp.cols {
		if tp.cols[i].kind == colNum {
			return &tp.cols[i]
		}
	}
	return nil
}

// headValue picks a zipf-head dictionary value: the low codes carry most of
// the mass, so equality literals drawn from them select real data.
func headValue(r *rand.Rand, dict []string) string {
	head := len(dict)
	if head > 8 {
		head = 8
	}
	return dict[r.Intn(head)]
}

// Tasks synthesizes up to n NLQ+gold tasks over the generated database,
// seeded for reproducibility. Gold queries are built from the recipe's
// schema, parsed through dataset.NewTask, and executed once; tasks whose
// gold result is empty are discarded (the simulation study removed those,
// §5.4.1), so every returned task can feed dataset.SynthesizeTSQ.
func (g *Generated) Tasks(n int, seed int64) ([]*dataset.Task, error) {
	r := rand.New(rand.NewSource(seed))
	var out []*dataset.Task
	for attempt := 0; len(out) < n && attempt < 6*n; attempt++ {
		nlq, sql, lits := g.taskTemplate(r, attempt%4)
		task, err := dataset.NewTask(fmt.Sprintf("gen-%d", attempt), g.DB, nlq, sql, lits)
		if err != nil {
			return nil, err
		}
		res, err := task.GoldResult()
		if err != nil {
			return nil, fmt.Errorf("loadgen: task %s gold: %w", task.ID, err)
		}
		if len(res.Rows) == 0 {
			continue
		}
		out = append(out, task)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("loadgen: no task template produced a non-empty gold result")
	}
	return out, nil
}

// taskTemplate renders one of four gold-query shapes covering the paper's
// difficulty classes: flat selection (Medium), join selection (Medium),
// grouped count with HAVING (Hard), and numeric range (Medium).
func (g *Generated) taskTemplate(r *rand.Rand, shape int) (nlq, sql string, lits []sqlir.Value) {
	p := g.plan
	ti := r.Intn(len(p.tables))
	tp := &p.tables[ti]
	switch shape {
	case 1, 2:
		if len(tp.parents) > 0 {
			parent := &p.tables[tp.parents[r.Intn(len(tp.parents))]]
			if shape == 2 {
				// Grouped count over the FK edge.
				k := 1 + r.Intn(3)
				nlq = fmt.Sprintf("list each %s name and the number of %s with more than %d %s",
					parent.entity, tp.name, k, tp.name)
				sql = fmt.Sprintf(
					"SELECT t2.name, COUNT(*) FROM %s AS t1 JOIN %s AS t2 ON t1.%s_id = t2.id GROUP BY t2.name HAVING COUNT(*) > %d",
					tp.name, parent.name, parent.name, k)
				lits = []sqlir.Value{sqlir.NewInt(k)}
				return nlq, sql, lits
			}
			// Selection through the parent's categorical column.
			cat := parent.catColumn()
			lit := headValue(r, cat.dict)
			nlq = fmt.Sprintf("list the names of %s whose %s has %s %s", tp.name, parent.entity, cat.name, lit)
			sql = fmt.Sprintf(
				"SELECT t1.name FROM %s AS t1 JOIN %s AS t2 ON t1.%s_id = t2.id WHERE t2.%s = '%s'",
				tp.name, parent.name, parent.name, cat.name, lit)
			lits = []sqlir.Value{sqlir.NewText(lit)}
			return nlq, sql, lits
		}
		fallthrough
	case 3:
		nm := tp.numColumn()
		k := nm.lo + nm.span/4 + r.Intn(nm.span/2+1)
		nlq = fmt.Sprintf("list the names of %s with %s greater than %d", tp.name, nm.name, k)
		sql = fmt.Sprintf("SELECT t1.name FROM %s AS t1 WHERE t1.%s > %d", tp.name, nm.name, k)
		lits = []sqlir.Value{sqlir.NewInt(k)}
		return nlq, sql, lits
	default:
		cat := tp.catColumn()
		lit := headValue(r, cat.dict)
		nlq = fmt.Sprintf("list the names of %s with %s %s", tp.name, cat.name, lit)
		sql = fmt.Sprintf("SELECT t1.name FROM %s AS t1 WHERE t1.%s = '%s'", tp.name, cat.name, lit)
		lits = []sqlir.Value{sqlir.NewText(lit)}
		return nlq, sql, lits
	}
}

// pred builds a complete predicate (the ExistsQuery building block).
func pred(table, col string, op sqlir.Op, v sqlir.Value) sqlir.Predicate {
	return sqlir.Predicate{
		Col: sqlir.ColumnRef{Table: table, Column: col}, ColSet: true,
		Op: op, OpSet: true, Val: v, ValSet: true,
	}
}

// Probes synthesizes n verification-shaped existence queries, seeded for
// reproducibility: selective equality + range probes over an FK join edge
// and grouped HAVING probes — the by-row and grouped shapes Duoquest's
// cascading verification executes hottest (§3.4). Roughly half the equality
// literals are drawn from the zipf tail or beyond the dictionary, so hits
// and misses both occur, as in real verification traffic.
func (g *Generated) Probes(n int, seed int64) []sqlexec.ExistsQuery {
	r := rand.New(rand.NewSource(seed))
	p := g.plan
	// Child tables with at least one FK edge, recipe order.
	var children []int
	for ti := range p.tables {
		if len(p.tables[ti].parents) > 0 {
			children = append(children, ti)
		}
	}
	probes := make([]sqlexec.ExistsQuery, 0, n)
	for i := 0; i < n; i++ {
		tp := &p.tables[children[r.Intn(len(children))]]
		parent := &p.tables[tp.parents[r.Intn(len(tp.parents))]]
		path := &sqlir.JoinPath{
			Tables: []string{tp.name, parent.name},
			Edges: []sqlir.JoinEdge{{
				FromTable: tp.name, FromColumn: parent.name + "_id",
				ToTable: parent.name, ToColumn: "id",
			}},
		}
		cat := parent.catColumn()
		lit := cat.dict[r.Intn(len(cat.dict))]
		if r.Intn(4) == 0 {
			lit = lit + "-miss" // not interned: probes that cannot match
		}
		switch i % 3 {
		case 0: // equality + range over the join edge
			nm := tp.numColumn()
			probes = append(probes, sqlexec.ExistsQuery{
				From: path,
				Conj: sqlir.LogicAnd,
				Preds: []sqlir.Predicate{
					pred(parent.name, cat.name, sqlir.OpEq, sqlir.NewText(lit)),
					pred(tp.name, nm.name, sqlir.OpGt, sqlir.NewInt(nm.lo+r.Intn(nm.span+1))),
				},
			})
		case 1: // by-row style: exact name through the join
			name := fmt.Sprintf("%s-%06d", tp.entity, 1+r.Intn(2*tp.rows)) // half miss
			probes = append(probes, sqlexec.ExistsQuery{
				From: path,
				Conj: sqlir.LogicAnd,
				Preds: []sqlir.Predicate{
					pred(tp.name, "name", sqlir.OpEq, sqlir.NewText(name)),
				},
			})
		default: // grouped existence: GROUP BY parent id, HAVING COUNT
			probes = append(probes, sqlexec.ExistsQuery{
				From:    path,
				Conj:    sqlir.LogicAnd,
				Preds:   []sqlir.Predicate{pred(parent.name, cat.name, sqlir.OpEq, sqlir.NewText(lit))},
				GroupBy: []sqlir.ColumnRef{{Table: parent.name, Column: "id"}},
				Havings: []sqlir.HavingExpr{{
					Agg: sqlir.AggCount, AggSet: true, Col: sqlir.Star, ColSet: true,
					Op: sqlir.OpGe, OpSet: true, Val: sqlir.NewInt(2 + r.Intn(6)), ValSet: true,
				}},
			})
		}
	}
	return probes
}
