// Package loadgen generates synthetic Duoquest databases at scales the
// hand-curated Movies/MAS sets cannot reach (10k–1M rows), so the columnar
// engine and the service layer can be measured — and CI-gated — under
// realistic load. Generation is fully deterministic from (Spec, seed): no
// clocks, no global randomness, only a seeded PRNG, so two runs with the
// same seed produce byte-identical column vectors (the determinism test
// compares Fingerprints) and the bulk- and row-built ingestion paths can be
// proven equivalent cell for cell.
//
// The generated data follows the shapes the paper's workloads care about:
// FK graphs of 3–8 tables with compact integer id columns (the dense
// posting-list fast path in storage), zipfian-skewed categorical text
// columns over interned dictionaries, skewed numeric measure ranges, and
// configurable NULL rates.
package loadgen

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/storage"
)

// Spec configures one synthetic database family. The zero value of any
// field falls back to the documented default.
type Spec struct {
	// Name is the database name ("gen" when empty); the row count and seed
	// are appended so registries can hold several generated databases.
	Name string
	// Tables is the table count, clamped to [3, 8]. Table 0 is the root
	// dimension; every later table holds at least one FK to an earlier one,
	// so the schema is a connected DAG like MAS.
	Tables int
	// Rows is the total row count across all tables (default 10_000).
	// Row counts grow geometrically toward the later fact tables.
	Rows int
	// ZipfS is the zipf skew exponent for categorical values and FK fan-in
	// (must be > 1; default 1.3). Higher = heavier heads.
	ZipfS float64
	// NullRate is the NULL probability on nullable (categorical and
	// measure) columns, in (0, 1). Zero falls back to the default 0.04; a
	// negative rate generates NULL-free data. Keys and FK columns are
	// never NULL.
	NullRate float64
	// DictCap caps the distinct-value count of each categorical column
	// (default 4096; each column targets rows/20 within [8, DictCap]).
	DictCap int
}

func (s Spec) withDefaults() Spec {
	if s.Name == "" {
		s.Name = "gen"
	}
	if s.Tables < 3 {
		s.Tables = 3
	}
	if s.Tables > 8 {
		s.Tables = 8
	}
	if s.Rows <= 0 {
		s.Rows = 10_000
	}
	if s.Rows < 4*s.Tables {
		s.Rows = 4 * s.Tables
	}
	if s.ZipfS <= 1 {
		s.ZipfS = 1.3
	}
	switch {
	case s.NullRate < 0:
		s.NullRate = 0
	case s.NullRate == 0 || s.NullRate >= 1:
		s.NullRate = 0.04
	}
	if s.DictCap <= 0 {
		s.DictCap = 4096
	}
	return s
}

// Preset returns the named scale preset: "small" (10k rows, 4 tables),
// "medium" (100k rows, 6 tables), or "large" (1M rows, 8 tables).
func Preset(scale string) (Spec, bool) {
	switch scale {
	case "small":
		return Spec{Name: "gen-small", Tables: 4, Rows: 10_000}, true
	case "medium":
		return Spec{Name: "gen-medium", Tables: 6, Rows: 100_000}, true
	case "large":
		return Spec{Name: "gen-large", Tables: 8, Rows: 1_000_000}, true
	default:
		return Spec{}, false
	}
}

// colKind discriminates the generator behind a column.
type colKind uint8

const (
	colPK   colKind = iota // dense ids 1..n
	colFK                  // zipf-skewed parent ids
	colName                // unique entity labels ("order-000042")
	colCat                 // zipf-sampled categorical dictionary
	colNum                 // skewed numeric measures
)

// colPlan is one column's generation recipe.
type colPlan struct {
	name     string
	typ      sqlir.Type
	kind     colKind
	parent   int      // colFK: parent table index
	dict     []string // colCat: the value dictionary, code order
	lo, span int      // colNum: value range [lo, lo+span]
	nullable bool
}

// tablePlan is one table's recipe: name, entity noun for NLQ phrasing, row
// count, and columns in schema order.
type tablePlan struct {
	name    string
	entity  string
	rows    int
	cols    []colPlan
	parents []int
}

// plan is a fully resolved generation recipe; schema and data both derive
// from it deterministically.
type plan struct {
	spec   Spec
	seed   int64
	tables []tablePlan
}

// tableVocab supplies up to 8 realistic table names with entity nouns,
// ordered dimension-first so FK targets read naturally.
var tableVocab = [8][2]string{
	{"regions", "region"}, {"users", "user"}, {"products", "product"},
	{"orders", "order"}, {"reviews", "review"}, {"sessions", "session"},
	{"payments", "payment"}, {"events", "event"},
}

// catVocab supplies categorical column names with seed words; dictionaries
// beyond the seed words extend with numbered variants.
var catVocab = []struct {
	name  string
	words []string
}{
	{"status", []string{"active", "inactive", "pending", "archived", "deleted", "draft"}},
	{"category", []string{"standard", "premium", "trial", "internal", "partner"}},
	{"channel", []string{"web", "mobile", "api", "store", "phone"}},
	{"tier", []string{"bronze", "silver", "gold", "platinum"}},
}

// numVocab supplies measure column names with value ranges.
var numVocab = []struct {
	name     string
	lo, span int
}{
	{"score", 0, 100},
	{"amount", 1, 9999},
	{"year", 1980, 45},
	{"quantity", 1, 49},
}

// buildPlan resolves a Spec into a concrete recipe using its own PRNG
// stream, so schema shape and data content are both functions of (spec,
// seed) alone.
func buildPlan(spec Spec, seed int64) *plan {
	spec = spec.withDefaults()
	r := rand.New(rand.NewSource(seed))
	p := &plan{spec: spec, seed: seed}

	// Row counts grow geometrically toward the later (fact) tables; the
	// remainder after rounding lands on the last table.
	nt := spec.Tables
	weights := make([]float64, nt)
	total := 0.0
	for i := range weights {
		w := 1.0
		for j := 0; j < i; j++ {
			w *= 2.3
		}
		weights[i] = w
		total += w
	}
	assigned := 0
	rows := make([]int, nt)
	for i := range rows {
		rows[i] = int(float64(spec.Rows) * weights[i] / total)
		if rows[i] < 4 {
			rows[i] = 4
		}
		assigned += rows[i]
	}
	rows[nt-1] += spec.Rows - assigned
	if rows[nt-1] < 4 {
		rows[nt-1] = 4
	}

	for ti := 0; ti < nt; ti++ {
		tp := tablePlan{name: tableVocab[ti][0], entity: tableVocab[ti][1], rows: rows[ti]}

		// FK edges: every non-root table references one earlier table;
		// deeper tables sometimes pick up a second edge, giving the 3–8
		// table DAGs multi-parent fact tables like MAS's link tables.
		if ti > 0 {
			tp.parents = append(tp.parents, r.Intn(ti))
			if ti >= 2 && r.Float64() < 0.45 {
				second := r.Intn(ti)
				if second != tp.parents[0] {
					tp.parents = append(tp.parents, second)
				}
			}
		}

		tp.cols = append(tp.cols,
			colPlan{name: "id", typ: sqlir.TypeNumber, kind: colPK},
			colPlan{name: "name", typ: sqlir.TypeText, kind: colName},
		)
		for _, parent := range tp.parents {
			tp.cols = append(tp.cols, colPlan{
				name: tableVocab[parent][0] + "_id", typ: sqlir.TypeNumber,
				kind: colFK, parent: parent,
			})
		}
		cat := catVocab[(ti+r.Intn(2))%len(catVocab)]
		dictSize := tp.rows / 20
		if dictSize < 8 {
			dictSize = 8
		}
		if dictSize > spec.DictCap {
			dictSize = spec.DictCap
		}
		tp.cols = append(tp.cols, colPlan{
			name: cat.name, typ: sqlir.TypeText, kind: colCat,
			dict: catDict(cat.name, cat.words, dictSize), nullable: true,
		})
		nm := numVocab[(ti+r.Intn(2))%len(numVocab)]
		tp.cols = append(tp.cols, colPlan{
			name: nm.name, typ: sqlir.TypeNumber, kind: colNum,
			lo: nm.lo, span: nm.span, nullable: true,
		})
		p.tables = append(p.tables, tp)
	}
	return p
}

// catDict builds a categorical dictionary: the seed words first, then
// numbered variants up to size.
func catDict(name string, words []string, size int) []string {
	out := make([]string, 0, size)
	for i := 0; i < size; i++ {
		if i < len(words) {
			out = append(out, words[i])
			continue
		}
		out = append(out, fmt.Sprintf("%s_%s_%d", words[i%len(words)], name, i))
	}
	return out
}

// payload generates one table's column payloads from the shared PRNG
// stream. Both ingestion paths consume exactly these payloads, which is
// what makes them provably equivalent.
func (p *plan) payload(ti int, r *rand.Rand) []storage.ColumnData {
	tp := &p.tables[ti]
	n := tp.rows
	out := make([]storage.ColumnData, len(tp.cols))
	for ci, cp := range tp.cols {
		switch cp.kind {
		case colPK:
			nums := make([]float64, n)
			for i := range nums {
				nums[i] = float64(i + 1)
			}
			out[ci] = storage.ColumnData{Nums: nums}
		case colFK:
			// Zipf-skewed fan-in over the parent's compact id range: a few
			// hot parents take most references, as real FK graphs do.
			parentRows := p.tables[cp.parent].rows
			z := rand.NewZipf(r, p.spec.ZipfS, 1, uint64(parentRows-1))
			nums := make([]float64, n)
			for i := range nums {
				nums[i] = float64(1 + z.Uint64())
			}
			out[ci] = storage.ColumnData{Nums: nums}
		case colName:
			// Unique labels, shipped dictionary-encoded with identity codes
			// so bulk ingest adopts the dictionary without hashing.
			dict := make([]string, n)
			codes := make([]uint32, n)
			for i := range dict {
				dict[i] = fmt.Sprintf("%s-%06d", tp.entity, i+1)
				codes[i] = uint32(i)
			}
			out[ci] = storage.ColumnData{Codes: codes, Dict: dict}
		case colCat:
			z := rand.NewZipf(r, p.spec.ZipfS, 1, uint64(len(cp.dict)-1))
			codes := make([]uint32, n)
			nulls := make([]bool, n)
			for i := range codes {
				if p.spec.NullRate > 0 && r.Float64() < p.spec.NullRate {
					nulls[i] = true
					continue
				}
				codes[i] = uint32(z.Uint64())
			}
			out[ci] = storage.ColumnData{Codes: codes, Dict: cp.dict, Nulls: nulls}
		case colNum:
			z := rand.NewZipf(r, p.spec.ZipfS, 1, uint64(cp.span))
			nums := make([]float64, n)
			nulls := make([]bool, n)
			for i := range nums {
				if p.spec.NullRate > 0 && r.Float64() < p.spec.NullRate {
					nulls[i] = true
					continue
				}
				nums[i] = float64(cp.lo + int(z.Uint64()))
			}
			out[ci] = storage.ColumnData{Nums: nums, Nulls: nulls}
		}
	}
	return out
}

// schema instantiates the plan's catalog.
func (p *plan) schema() *storage.Schema {
	tables := make([]*storage.Table, len(p.tables))
	for ti, tp := range p.tables {
		cols := make([]storage.Column, len(tp.cols))
		for ci, cp := range tp.cols {
			cols[ci] = storage.Column{Name: cp.name, Type: cp.typ}
		}
		tables[ti] = storage.NewTable(tp.name, "id", cols...)
	}
	s := storage.NewSchema(tables...)
	for _, tp := range p.tables {
		for _, parent := range tp.parents {
			s.AddForeignKey(tp.name, p.tables[parent].name+"_id", p.tables[parent].name, "id")
		}
	}
	return s
}

// Generated couples a generated database with the recipe that produced it;
// task and probe synthesis read the recipe instead of re-discovering the
// schema.
type Generated struct {
	DB   *storage.Database
	Spec Spec
	Seed int64

	plan *plan
}

// Generate builds a database through the bulk ingestion path: one
// BulkAppend per table, so each table sees one generation bump and one
// index invalidation regardless of row count.
func Generate(spec Spec, seed int64) (*Generated, error) {
	return generate(spec, seed, true)
}

// GenerateByRows builds the identical database through the historical
// per-row Insert path. It exists as the ingestion oracle: the paired
// benchmark and the equivalence tests prove bulk-built and row-built
// databases agree cell for cell and answer for answer.
func GenerateByRows(spec Spec, seed int64) (*Generated, error) {
	return generate(spec, seed, false)
}

// newPayloadRand returns the data-stream PRNG for a seed, kept distinct
// from the plan stream so schema shape and data content draw independently.
func newPayloadRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed + 1))
}

func generate(spec Spec, seed int64, bulk bool) (*Generated, error) {
	p := buildPlan(spec, seed)
	s := p.schema()
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("loadgen: generated schema invalid: %w", err)
	}
	r := newPayloadRand(seed)
	for ti := range p.tables {
		t := s.Table(p.tables[ti].name)
		cols := p.payload(ti, r)
		if bulk {
			if err := t.BulkAppend(cols); err != nil {
				return nil, fmt.Errorf("loadgen: %s: %w", t.Name, err)
			}
			continue
		}
		insertRows(t, cols, p.tables[ti].rows)
	}
	name := fmt.Sprintf("%s-%d-s%d", p.spec.Name, p.spec.Rows, seed)
	return &Generated{DB: storage.NewDatabase(name, s), Spec: p.spec, Seed: seed, plan: p}, nil
}

// insertRows replays a bulk payload through the per-row Insert path.
func insertRows(t *storage.Table, cols []storage.ColumnData, n int) {
	vals := make([]sqlir.Value, len(cols))
	for ri := 0; ri < n; ri++ {
		for ci, c := range cols {
			switch {
			case c.Nulls != nil && c.Nulls[ri]:
				vals[ci] = sqlir.Null()
			case c.Codes != nil:
				vals[ci] = sqlir.NewText(c.Dict[c.Codes[ri]])
			case c.Texts != nil:
				vals[ci] = sqlir.NewText(c.Texts[ri])
			default:
				vals[ci] = sqlir.NewNumber(c.Nums[ri])
			}
		}
		t.MustInsert(vals...)
	}
}

// Fingerprint hashes every column vector of the database — values, NULL
// bits, and dictionary contents in code order — into one FNV-1a sum. Two
// databases with byte-identical columnar state (same values, same dict
// code assignment, same null bitmaps) have equal fingerprints; the
// determinism test requires exactly this across two same-seed runs, the
// ingestion equivalence test requires it across the bulk and row paths,
// and the segment store requires it across a persist→load round trip. The
// implementation lives with the vectors (storage.Fingerprint); this
// wrapper keeps the historical loadgen call sites working.
func Fingerprint(db *storage.Database) uint64 {
	return storage.Fingerprint(db)
}

// SpecKey returns the content address of the database Generate(spec, seed)
// produces: the database name plus a short hash over every generation knob,
// so two specs that would generate different bytes can never share a
// segment-store cache entry. The load harness persists generated databases
// under this key and reloads them on later runs instead of regenerating.
func SpecKey(spec Spec, seed int64) string {
	spec = spec.withDefaults()
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%d|%g|%g|%d|%d", spec.Name, spec.Tables, spec.Rows, spec.ZipfS, spec.NullRate, spec.DictCap, seed)
	return fmt.Sprintf("%s-%d-s%d-%08x", spec.Name, spec.Rows, seed, uint32(h.Sum64()))
}

// FromPersisted couples a database loaded from a segment store with the
// deterministic recipe for (spec, seed), so task and probe synthesis work
// identically on loaded and freshly generated databases. Only the plan is
// rebuilt — the expensive payload generation is exactly what the caller
// avoided by loading. The loaded schema is validated against the plan; a
// mismatch means the cache entry was persisted under the wrong key.
func FromPersisted(db *storage.Database, spec Spec, seed int64) (*Generated, error) {
	p := buildPlan(spec, seed)
	for _, tp := range p.tables {
		t := db.Table(tp.name)
		if t == nil {
			return nil, fmt.Errorf("loadgen: persisted database %s lacks table %s for spec %+v seed %d", db.Name, tp.name, spec, seed)
		}
		if t.NumRows() != tp.rows {
			return nil, fmt.Errorf("loadgen: persisted table %s.%s has %d rows, spec wants %d", db.Name, tp.name, t.NumRows(), tp.rows)
		}
		if len(t.Columns) != len(tp.cols) {
			return nil, fmt.Errorf("loadgen: persisted table %s.%s has %d columns, spec wants %d", db.Name, tp.name, len(t.Columns), len(tp.cols))
		}
	}
	return &Generated{DB: db, Spec: p.spec, Seed: seed, plan: p}, nil
}
