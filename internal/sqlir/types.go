package sqlir

import "fmt"

// Type is a column (and TSQ annotation) data type. The paper's task scope
// uses two concrete types: text and number (Table 2).
type Type uint8

const (
	// TypeUnknown marks an undecided or unconstrained type.
	TypeUnknown Type = iota
	// TypeText is a string column.
	TypeText
	// TypeNumber is a numeric column.
	TypeNumber
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case TypeText:
		return "text"
	case TypeNumber:
		return "number"
	default:
		return "unknown"
	}
}

// AggFunc is an aggregate function applicable to a projection, HAVING
// expression, or ORDER BY key (Table 3, AGG module).
type AggFunc uint8

const (
	// AggNone means the column is projected unaggregated.
	AggNone AggFunc = iota
	AggMax
	AggMin
	AggCount
	AggSum
	AggAvg
)

// AllAggs lists every aggregate choice in module output order (None last so
// slices of real aggregates can reuse the prefix).
var AllAggs = []AggFunc{AggNone, AggMax, AggMin, AggCount, AggSum, AggAvg}

// String returns the SQL keyword for the aggregate.
func (a AggFunc) String() string {
	switch a {
	case AggNone:
		return ""
	case AggMax:
		return "MAX"
	case AggMin:
		return "MIN"
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	default:
		return fmt.Sprintf("AggFunc(%d)", uint8(a))
	}
}

// ResultType returns the type produced by applying the aggregate to a column
// of type in. COUNT always yields a number; SUM/AVG yield numbers; MIN/MAX
// preserve the input type; AggNone preserves the input type.
func (a AggFunc) ResultType(in Type) Type {
	switch a {
	case AggCount:
		return TypeNumber
	case AggSum, AggAvg:
		return TypeNumber
	default:
		return in
	}
}

// NumericOnly reports whether the aggregate may only be applied to numeric
// columns (Table 4, "Aggregate type usage").
func (a AggFunc) NumericOnly() bool {
	switch a {
	case AggMin, AggMax, AggAvg, AggSum:
		// The paper's rule forbids MIN/MAX/AVG/SUM on text columns.
		return true
	default:
		return false
	}
}

// Op is a predicate comparison operator (Table 3, OP module).
type Op uint8

const (
	OpEq Op = iota
	OpNe
	OpLt
	OpGt
	OpLe
	OpGe
	OpLike
)

// AllOps lists every operator in module output order.
var AllOps = []Op{OpEq, OpNe, OpLt, OpGt, OpLe, OpGe, OpLike}

// String returns the SQL spelling of the operator.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpGt:
		return ">"
	case OpLe:
		return "<="
	case OpGe:
		return ">="
	case OpLike:
		return "LIKE"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Ordering reports whether the operator is an order comparison (<, >, <=, >=)
// which Table 4 forbids on text columns.
func (o Op) Ordering() bool {
	switch o {
	case OpLt, OpGt, OpLe, OpGe:
		return true
	default:
		return false
	}
}

// Eval applies the operator to a left value and right literal. Comparisons
// involving NULL are false.
func (o Op) Eval(left, right Value) bool {
	if left.IsNull() || right.IsNull() {
		return false
	}
	switch o {
	case OpEq:
		return left.Equal(right)
	case OpNe:
		return !left.Equal(right)
	case OpLt:
		return left.Kind == right.Kind && left.Compare(right) < 0
	case OpGt:
		return left.Kind == right.Kind && left.Compare(right) > 0
	case OpLe:
		return left.Kind == right.Kind && left.Compare(right) <= 0
	case OpGe:
		return left.Kind == right.Kind && left.Compare(right) >= 0
	case OpLike:
		if right.Kind != KindText {
			return false
		}
		return left.Like(right.Text)
	default:
		return false
	}
}

// LogicalOp connects multiple selection predicates. The task scope (§2.5)
// disallows mixing AND and OR within one clause.
type LogicalOp uint8

const (
	LogicAnd LogicalOp = iota
	LogicOr
)

// String returns the SQL keyword.
func (l LogicalOp) String() string {
	if l == LogicOr {
		return "OR"
	}
	return "AND"
}

// ClauseState is the tri-state of an optional clause in a partial query:
// decided absent, decided present but not yet filled in, or filled in.
type ClauseState uint8

const (
	// ClauseAbsent: the KW module decided the clause does not appear.
	ClauseAbsent ClauseState = iota
	// ClausePending: the clause will appear but its contents are holes.
	ClausePending
	// ClausePresent: the clause contents have been (at least partly) built.
	ClausePresent
)

// String names the clause state.
func (c ClauseState) String() string {
	switch c {
	case ClauseAbsent:
		return "absent"
	case ClausePending:
		return "pending"
	default:
		return "present"
	}
}
