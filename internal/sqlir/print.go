package sqlir

import "strings"

// String renders the query as SQL text, with ? marking placeholders. The
// rendering is deterministic and is used for display, logging, and (via
// Canonical) for equality checks.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if q.Distinct {
		b.WriteString("DISTINCT ")
	}
	if !q.SelectCountSet && len(q.Select) == 0 {
		b.WriteString("?")
	} else {
		for i, s := range q.Select {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(s.String())
		}
		if !q.SelectCountSet {
			if len(q.Select) > 0 {
				b.WriteString(", ")
			}
			b.WriteString("...?")
		}
	}
	b.WriteString(" FROM ")
	b.WriteString(q.From.String())
	switch q.WhereState {
	case ClausePending:
		b.WriteString(" WHERE ?")
	case ClausePresent:
		b.WriteString(" WHERE ")
		if !q.Where.CountSet && len(q.Where.Preds) == 0 {
			b.WriteString("?")
		}
		for i, p := range q.Where.Preds {
			if i > 0 {
				conj := "?"
				if q.Where.ConjSet {
					conj = q.Where.Conj.String()
				}
				b.WriteString(" " + conj + " ")
			}
			b.WriteString(p.String())
		}
		if !q.Where.CountSet && len(q.Where.Preds) > 0 {
			b.WriteString(" ...?")
		}
	}
	switch q.GroupByState {
	case ClausePending:
		b.WriteString(" GROUP BY ?")
	case ClausePresent:
		b.WriteString(" GROUP BY ")
		if len(q.GroupBy) == 0 {
			b.WriteString("?")
		}
		for i, g := range q.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.String())
		}
		switch q.HavingState {
		case ClausePending:
			b.WriteString(" HAVING ?")
		case ClausePresent:
			b.WriteString(" HAVING ")
			b.WriteString(q.Having.String())
		}
	}
	switch q.OrderByState {
	case ClausePending:
		b.WriteString(" ORDER BY ?")
	case ClausePresent:
		b.WriteString(" ORDER BY ")
		b.WriteString(q.OrderBy.String())
	}
	if q.LimitSet {
		if q.Limit > 0 {
			b.WriteString(" LIMIT ")
			b.WriteString(FormatNumber(float64(q.Limit)))
		}
	} else if q.OrderByState != ClauseAbsent {
		b.WriteString(" LIMIT ?")
	}
	return b.String()
}
