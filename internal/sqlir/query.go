package sqlir

import "strings"

// ColumnRef names a schema column. Column "*" with any table refers to the
// star used by COUNT(*).
type ColumnRef struct {
	Table  string
	Column string
}

// Star is the COUNT(*) column reference.
var Star = ColumnRef{Column: "*"}

// IsStar reports whether the reference is the * pseudo-column.
func (c ColumnRef) IsStar() bool { return c.Column == "*" }

// IsZero reports whether the reference is unset.
func (c ColumnRef) IsZero() bool { return c.Table == "" && c.Column == "" }

// String renders table.column (or * / ? placeholders).
func (c ColumnRef) String() string {
	if c.IsZero() {
		return "?"
	}
	if c.IsStar() {
		return "*"
	}
	if c.Table == "" {
		return c.Column
	}
	return c.Table + "." + c.Column
}

// SelectItem is one projection: an optional aggregate over a column.
// AggSet/ColSet distinguish decided fields from placeholders in a partial
// query.
type SelectItem struct {
	Agg    AggFunc
	AggSet bool
	Col    ColumnRef
	ColSet bool
}

// Complete reports whether both the aggregate and column are decided.
func (s SelectItem) Complete() bool { return s.AggSet && s.ColSet }

// String renders the projection, using ? for holes.
func (s SelectItem) String() string {
	col := "?"
	if s.ColSet {
		col = s.Col.String()
	}
	if !s.AggSet {
		return "?(" + col + ")"
	}
	if s.Agg == AggNone {
		return col
	}
	return s.Agg.String() + "(" + col + ")"
}

// Predicate is one selection predicate col op value. Each field carries a
// decided flag so partial queries can hold per-field holes.
type Predicate struct {
	Col    ColumnRef
	ColSet bool
	Op     Op
	OpSet  bool
	Val    Value
	ValSet bool
}

// Complete reports whether all three fields are decided.
func (p Predicate) Complete() bool { return p.ColSet && p.OpSet && p.ValSet }

// String renders the predicate with ? placeholders for holes.
func (p Predicate) String() string {
	var b strings.Builder
	if p.ColSet {
		b.WriteString(p.Col.String())
	} else {
		b.WriteString("?")
	}
	b.WriteString(" ")
	if p.OpSet {
		b.WriteString(p.Op.String())
	} else {
		b.WriteString("?")
	}
	b.WriteString(" ")
	if p.ValSet {
		b.WriteString(p.Val.String())
	} else {
		b.WriteString("?")
	}
	return b.String()
}

// Where is a flat conjunction or disjunction of predicates (§2.5 disallows
// mixed nesting).
type Where struct {
	Conj     LogicalOp
	ConjSet  bool
	Preds    []Predicate
	CountSet bool // number of predicates decided
}

// Complete reports whether the clause has no holes left.
func (w Where) Complete() bool {
	if !w.CountSet {
		return false
	}
	if len(w.Preds) >= 2 && !w.ConjSet {
		return false
	}
	for _, p := range w.Preds {
		if !p.Complete() {
			return false
		}
	}
	return true
}

// HavingExpr is a single HAVING condition agg(col) op value.
type HavingExpr struct {
	Agg    AggFunc
	AggSet bool
	Col    ColumnRef // column under the aggregate ("*" for COUNT(*))
	ColSet bool
	Op     Op
	OpSet  bool
	Val    Value
	ValSet bool
}

// Complete reports whether the HAVING expression has no holes.
func (h HavingExpr) Complete() bool { return h.AggSet && h.ColSet && h.OpSet && h.ValSet }

// String renders the condition with ? placeholders.
func (h HavingExpr) String() string {
	agg, col, op, val := "?", "?", "?", "?"
	if h.AggSet {
		agg = h.Agg.String()
	}
	if h.ColSet {
		col = h.Col.String()
	}
	if h.OpSet {
		op = h.Op.String()
	}
	if h.ValSet {
		val = h.Val.String()
	}
	return agg + "(" + col + ") " + op + " " + val
}

// OrderKey is the ORDER BY expression: an optional aggregate over a column.
type OrderKey struct {
	Agg AggFunc
	Col ColumnRef
}

// String renders the key.
func (k OrderKey) String() string {
	if k.Agg == AggNone {
		return k.Col.String()
	}
	return k.Agg.String() + "(" + k.Col.String() + ")"
}

// OrderBy captures ORDER BY plus the adjacent LIMIT (the paper's DESC/ASC
// module decides direction and limit together, Table 3).
type OrderBy struct {
	Key    OrderKey
	KeySet bool
	Desc   bool
	DirSet bool
}

// Complete reports whether the clause has no holes.
func (o OrderBy) Complete() bool { return o.KeySet && o.DirSet }

// String renders the clause with placeholders.
func (o OrderBy) String() string {
	key := "?"
	if o.KeySet {
		key = o.Key.String()
	}
	dir := "?"
	if o.DirSet {
		if o.Desc {
			dir = "DESC"
		} else {
			dir = "ASC"
		}
	}
	return key + " " + dir
}

// JoinEdge is one FK→PK join condition between two tables.
type JoinEdge struct {
	FromTable  string // table containing the foreign key
	FromColumn string
	ToTable    string // table containing the referenced primary key
	ToColumn   string
}

// String renders the ON condition.
func (e JoinEdge) String() string {
	return e.FromTable + "." + e.FromColumn + " = " + e.ToTable + "." + e.ToColumn
}

// JoinPath is the FROM clause: a connected set of tables joined along FK-PK
// edges. Edges are ordered so that each edge connects one new table to the
// set of tables already introduced (Tables[0] plus earlier edges).
type JoinPath struct {
	Tables []string
	Edges  []JoinEdge
}

// Contains reports whether the path includes the named table.
func (j *JoinPath) Contains(table string) bool {
	for _, t := range j.Tables {
		if t == table {
			return true
		}
	}
	return false
}

// Len returns the number of tables (the tiebreaker in §3.3.4: shorter join
// paths are preferred among states of equal confidence).
func (j *JoinPath) Len() int {
	if j == nil {
		return 0
	}
	return len(j.Tables)
}

// String renders the FROM clause body.
func (j *JoinPath) String() string {
	if j == nil || len(j.Tables) == 0 {
		return "?"
	}
	var b strings.Builder
	b.WriteString(j.Tables[0])
	seen := map[string]bool{j.Tables[0]: true}
	for _, e := range j.Edges {
		nt := e.FromTable
		if seen[nt] {
			nt = e.ToTable
		}
		seen[nt] = true
		b.WriteString(" JOIN ")
		b.WriteString(nt)
		b.WriteString(" ON ")
		b.WriteString(e.String())
	}
	return b.String()
}

// Query is a (possibly partial) SPJA query. Optional clauses carry a
// ClauseState; inner slots carry their own decided flags. A Query with every
// slot decided is a complete SQL query.
type Query struct {
	Distinct bool

	Select         []SelectItem
	SelectCountSet bool

	From *JoinPath // nil = join path not yet constructed

	WhereState ClauseState
	Where      Where

	GroupByState ClauseState
	GroupBy      []ColumnRef

	HavingState ClauseState // meaningful only when GroupByState != ClauseAbsent
	Having      HavingExpr

	OrderByState ClauseState
	OrderBy      OrderBy

	// Limit is the LIMIT row count; 0 means no LIMIT clause. LimitSet
	// records whether the decision has been made.
	Limit    int
	LimitSet bool

	// KWSet records whether the KW module has decided which clauses are
	// present at all.
	KWSet bool
}

// NewQuery returns an empty partial query: everything is a placeholder.
func NewQuery() *Query {
	return &Query{}
}

// Complete reports whether the query has no remaining placeholders and can
// be executed (Line 10 of Algorithm 1).
func (q *Query) Complete() bool {
	if !q.KWSet || !q.SelectCountSet || q.From == nil {
		return false
	}
	if len(q.Select) == 0 {
		return false
	}
	for _, s := range q.Select {
		if !s.Complete() {
			return false
		}
	}
	switch q.WhereState {
	case ClausePending:
		return false
	case ClausePresent:
		if !q.Where.Complete() {
			return false
		}
	}
	switch q.GroupByState {
	case ClausePending:
		return false
	case ClausePresent:
		if len(q.GroupBy) == 0 {
			return false
		}
		switch q.HavingState {
		case ClausePending:
			return false
		case ClausePresent:
			if !q.Having.Complete() {
				return false
			}
		}
	}
	switch q.OrderByState {
	case ClausePending:
		return false
	case ClausePresent:
		if !q.OrderBy.Complete() {
			return false
		}
	}
	if !q.LimitSet {
		// LIMIT is decided together with ORDER BY direction; a query
		// with no ORDER BY has no LIMIT and LimitSet is set by KW.
		return false
	}
	return true
}

// HasAggregate reports whether any decided projection carries an aggregate.
func (q *Query) HasAggregate() bool {
	for _, s := range q.Select {
		if s.AggSet && s.Agg != AggNone {
			return true
		}
	}
	return false
}

// AggregatedProjections returns the indexes of decided aggregate projections.
func (q *Query) AggregatedProjections() []int {
	var idx []int
	for i, s := range q.Select {
		if s.AggSet && s.Agg != AggNone {
			idx = append(idx, i)
		}
	}
	return idx
}

// ReferencedTables returns the distinct tables referenced by decided column
// slots outside the FROM clause, in first-reference order (Line 2-3 of
// Algorithm 2).
func (q *Query) ReferencedTables() []string {
	var out []string
	seen := map[string]bool{}
	add := func(c ColumnRef) {
		if c.IsStar() || c.Table == "" || seen[c.Table] {
			return
		}
		seen[c.Table] = true
		out = append(out, c.Table)
	}
	for _, s := range q.Select {
		if s.ColSet {
			add(s.Col)
		}
	}
	for _, p := range q.Where.Preds {
		if p.ColSet {
			add(p.Col)
		}
	}
	for _, g := range q.GroupBy {
		add(g)
	}
	if q.HavingState == ClausePresent && q.Having.ColSet {
		add(q.Having.Col)
	}
	if q.OrderByState == ClausePresent && q.OrderBy.KeySet {
		add(q.OrderBy.Key.Col)
	}
	return out
}

// Literals returns every decided literal value in WHERE, HAVING, and LIMIT
// (the paper's L is "the text and numeric literal values used in the query",
// so a top-k row count counts).
func (q *Query) Literals() []Value {
	var out []Value
	for _, p := range q.Where.Preds {
		if p.ValSet {
			out = append(out, p.Val)
		}
	}
	if q.HavingState == ClausePresent && q.Having.ValSet {
		out = append(out, q.Having.Val)
	}
	if q.LimitSet && q.Limit > 0 {
		out = append(out, NewInt(q.Limit))
	}
	return out
}

// Clone returns a deep copy of the query; enumeration branches mutate clones.
func (q *Query) Clone() *Query {
	cp := *q
	if q.Select != nil {
		cp.Select = make([]SelectItem, len(q.Select))
		copy(cp.Select, q.Select)
	}
	if q.Where.Preds != nil {
		cp.Where.Preds = make([]Predicate, len(q.Where.Preds))
		copy(cp.Where.Preds, q.Where.Preds)
	}
	if q.GroupBy != nil {
		cp.GroupBy = make([]ColumnRef, len(q.GroupBy))
		copy(cp.GroupBy, q.GroupBy)
	}
	if q.From != nil {
		jp := &JoinPath{
			Tables: make([]string, len(q.From.Tables)),
			Edges:  make([]JoinEdge, len(q.From.Edges)),
		}
		copy(jp.Tables, q.From.Tables)
		copy(jp.Edges, q.From.Edges)
		cp.From = jp
	}
	return &cp
}
