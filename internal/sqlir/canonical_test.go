package sqlir

import "testing"

func TestCanonicalPredicateOrderInsensitive(t *testing.T) {
	mk := func(swap bool) *Query {
		q := buildComplete()
		q.Where.Preds = []Predicate{
			{Col: ColumnRef{"movie", "year"}, ColSet: true, Op: OpGt, OpSet: true, Val: NewInt(2000), ValSet: true},
			{Col: ColumnRef{"movie", "year"}, ColSet: true, Op: OpLt, OpSet: true, Val: NewInt(2020), ValSet: true},
		}
		if swap {
			q.Where.Preds[0], q.Where.Preds[1] = q.Where.Preds[1], q.Where.Preds[0]
		}
		return q
	}
	if !Equivalent(mk(false), mk(true)) {
		t.Error("predicate order should not matter")
	}
}

func TestCanonicalConjunctionMatters(t *testing.T) {
	mk := func(c LogicalOp) *Query {
		q := buildComplete()
		q.Where.Conj = c
		q.Where.Preds = append(q.Where.Preds, Predicate{
			Col: ColumnRef{"movie", "year"}, ColSet: true, Op: OpLt, OpSet: true, Val: NewInt(1995), ValSet: true,
		})
		return q
	}
	if Equivalent(mk(LogicAnd), mk(LogicOr)) {
		t.Error("AND vs OR must differ")
	}
}

func TestCanonicalJoinOrderInsensitive(t *testing.T) {
	a := buildComplete()
	b := buildComplete()
	b.From = &JoinPath{
		Tables: []string{"starring", "movie"},
		Edges:  []JoinEdge{{"starring", "mid", "movie", "mid"}},
	}
	if !Equivalent(a, b) {
		t.Errorf("join order should not matter:\n%s\n%s", a.Canonical(), b.Canonical())
	}
}

func TestCanonicalEdgeDirectionInsensitive(t *testing.T) {
	a := buildComplete()
	b := buildComplete()
	b.From.Edges = []JoinEdge{{"movie", "mid", "starring", "mid"}}
	if !Equivalent(a, b) {
		t.Errorf("edge direction should not matter:\n%s\n%s", a.Canonical(), b.Canonical())
	}
}

func TestCanonicalSelectOrderSignificant(t *testing.T) {
	a := buildComplete()
	b := buildComplete()
	b.Select[0], b.Select[1] = b.Select[1], b.Select[0]
	if Equivalent(a, b) {
		t.Error("projection order is significant")
	}
}

func TestCanonicalGroupByOrderInsensitive(t *testing.T) {
	a := buildComplete()
	a.GroupBy = []ColumnRef{{"movie", "name"}, {"movie", "year"}}
	b := buildComplete()
	b.GroupBy = []ColumnRef{{"movie", "year"}, {"movie", "name"}}
	if !Equivalent(a, b) {
		t.Error("group by order should not matter")
	}
}

func TestCanonicalLimitSignificant(t *testing.T) {
	a := buildComplete()
	b := buildComplete()
	b.Limit = 10
	if Equivalent(a, b) {
		t.Error("limit must be significant")
	}
}

func TestCanonicalDistinctSignificant(t *testing.T) {
	a := buildComplete()
	b := buildComplete()
	b.Distinct = true
	if Equivalent(a, b) {
		t.Error("distinct must be significant")
	}
}

func TestEquivalentNil(t *testing.T) {
	if !Equivalent(nil, nil) {
		t.Error("nil == nil")
	}
	if Equivalent(nil, buildComplete()) || Equivalent(buildComplete(), nil) {
		t.Error("nil != non-nil")
	}
}

func TestCanonicalSelfEquivalence(t *testing.T) {
	q := buildComplete()
	if !Equivalent(q, q.Clone()) {
		t.Error("clone must be equivalent to original")
	}
}
