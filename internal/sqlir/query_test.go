package sqlir

import (
	"strings"
	"testing"
)

// buildComplete returns a fully decided query:
// SELECT m.name, MAX(m.year) FROM movie JOIN starring ON ... WHERE m.year > 2000 GROUP BY m.name
func buildComplete() *Query {
	q := NewQuery()
	q.KWSet = true
	q.SelectCountSet = true
	q.Select = []SelectItem{
		{Agg: AggNone, AggSet: true, Col: ColumnRef{"movie", "name"}, ColSet: true},
		{Agg: AggMax, AggSet: true, Col: ColumnRef{"movie", "year"}, ColSet: true},
	}
	q.From = &JoinPath{
		Tables: []string{"movie", "starring"},
		Edges:  []JoinEdge{{"starring", "mid", "movie", "mid"}},
	}
	q.WhereState = ClausePresent
	q.Where = Where{
		CountSet: true,
		ConjSet:  true,
		Conj:     LogicAnd,
		Preds: []Predicate{
			{Col: ColumnRef{"movie", "year"}, ColSet: true, Op: OpGt, OpSet: true, Val: NewInt(2000), ValSet: true},
		},
	}
	q.GroupByState = ClausePresent
	q.GroupBy = []ColumnRef{{"movie", "name"}}
	q.HavingState = ClauseAbsent
	q.OrderByState = ClauseAbsent
	q.LimitSet = true
	return q
}

func TestQueryComplete(t *testing.T) {
	q := buildComplete()
	if !q.Complete() {
		t.Fatalf("expected complete, got %s", q)
	}
	// Removing individual decisions makes it incomplete again.
	mutations := []func(*Query){
		func(q *Query) { q.KWSet = false },
		func(q *Query) { q.SelectCountSet = false },
		func(q *Query) { q.Select[0].ColSet = false },
		func(q *Query) { q.Select[1].AggSet = false },
		func(q *Query) { q.From = nil },
		func(q *Query) { q.WhereState = ClausePending },
		func(q *Query) { q.Where.Preds[0].OpSet = false },
		func(q *Query) { q.Where.Preds[0].ValSet = false },
		func(q *Query) { q.Where.CountSet = false },
		func(q *Query) { q.GroupByState = ClausePending },
		func(q *Query) { q.GroupBy = nil },
		func(q *Query) { q.HavingState = ClausePending },
		func(q *Query) { q.OrderByState = ClausePending },
		func(q *Query) { q.LimitSet = false },
	}
	for i, m := range mutations {
		qc := buildComplete()
		m(qc)
		if qc.Complete() {
			t.Errorf("mutation %d: query should be incomplete: %s", i, qc)
		}
	}
}

func TestWhereConjRequiredOnlyForMultiplePreds(t *testing.T) {
	q := buildComplete()
	q.Where.ConjSet = false // single predicate: conjunction irrelevant
	if !q.Complete() {
		t.Error("single-predicate WHERE should not need ConjSet")
	}
	q.Where.Preds = append(q.Where.Preds, Predicate{
		Col: ColumnRef{"movie", "year"}, ColSet: true, Op: OpLt, OpSet: true, Val: NewInt(2020), ValSet: true,
	})
	if q.Complete() {
		t.Error("two-predicate WHERE needs ConjSet")
	}
	q.Where.ConjSet = true
	if !q.Complete() {
		t.Error("should be complete with ConjSet")
	}
}

func TestHasAggregate(t *testing.T) {
	q := buildComplete()
	if !q.HasAggregate() {
		t.Error("query has MAX, HasAggregate should be true")
	}
	q.Select[1].Agg = AggNone
	if q.HasAggregate() {
		t.Error("no aggregates left")
	}
	if got := buildComplete().AggregatedProjections(); len(got) != 1 || got[0] != 1 {
		t.Errorf("AggregatedProjections = %v, want [1]", got)
	}
}

func TestReferencedTables(t *testing.T) {
	q := buildComplete()
	got := q.ReferencedTables()
	if len(got) != 1 || got[0] != "movie" {
		t.Errorf("ReferencedTables = %v, want [movie]", got)
	}
	// Add a where column on a second table.
	q.Where.Preds = append(q.Where.Preds, Predicate{
		Col: ColumnRef{"actor", "name"}, ColSet: true, Op: OpEq, OpSet: true, Val: NewText("X"), ValSet: true,
	})
	got = q.ReferencedTables()
	if len(got) != 2 || got[1] != "actor" {
		t.Errorf("ReferencedTables = %v, want [movie actor]", got)
	}
	// Star and undecided columns do not contribute.
	q2 := NewQuery()
	q2.Select = []SelectItem{{Agg: AggCount, AggSet: true, Col: Star, ColSet: true}}
	if got := q2.ReferencedTables(); len(got) != 0 {
		t.Errorf("star should not contribute tables: %v", got)
	}
}

func TestLiterals(t *testing.T) {
	q := buildComplete()
	lits := q.Literals()
	if len(lits) != 1 || !lits[0].Equal(NewInt(2000)) {
		t.Errorf("Literals = %v", lits)
	}
	q.HavingState = ClausePresent
	q.Having = HavingExpr{
		Agg: AggCount, AggSet: true, Col: Star, ColSet: true,
		Op: OpGt, OpSet: true, Val: NewInt(5), ValSet: true,
	}
	lits = q.Literals()
	if len(lits) != 2 || !lits[1].Equal(NewInt(5)) {
		t.Errorf("Literals with HAVING = %v", lits)
	}
}

func TestCloneIndependence(t *testing.T) {
	q := buildComplete()
	c := q.Clone()
	c.Select[0].Col.Column = "changed"
	c.Where.Preds[0].Val = NewInt(9999)
	c.GroupBy[0].Column = "changed"
	c.From.Tables[0] = "changed"
	if q.Select[0].Col.Column != "name" {
		t.Error("clone mutated original select")
	}
	if !q.Where.Preds[0].Val.Equal(NewInt(2000)) {
		t.Error("clone mutated original where")
	}
	if q.GroupBy[0].Column != "name" {
		t.Error("clone mutated original group by")
	}
	if q.From.Tables[0] != "movie" {
		t.Error("clone mutated original join path")
	}
}

func TestQueryStringCompleteRendering(t *testing.T) {
	q := buildComplete()
	s := q.String()
	for _, want := range []string{
		"SELECT movie.name, MAX(movie.year)",
		"FROM movie JOIN starring ON starring.mid = movie.mid",
		"WHERE movie.year > 2000",
		"GROUP BY movie.name",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	if strings.Contains(s, "?") {
		t.Errorf("complete query should have no placeholders: %q", s)
	}
}

func TestQueryStringPlaceholders(t *testing.T) {
	q := NewQuery()
	s := q.String()
	if !strings.Contains(s, "SELECT ?") || !strings.Contains(s, "FROM ?") {
		t.Errorf("empty query rendering: %q", s)
	}
	q.WhereState = ClausePending
	if !strings.Contains(q.String(), "WHERE ?") {
		t.Errorf("pending where rendering: %q", q.String())
	}
	q.OrderByState = ClausePending
	if !strings.Contains(q.String(), "ORDER BY ?") {
		t.Errorf("pending order rendering: %q", q.String())
	}
}

func TestOrderByLimitRendering(t *testing.T) {
	q := buildComplete()
	q.OrderByState = ClausePresent
	q.OrderBy = OrderBy{
		Key:    OrderKey{Agg: AggCount, Col: Star},
		KeySet: true,
		Desc:   true,
		DirSet: true,
	}
	q.Limit = 5
	s := q.String()
	if !strings.Contains(s, "ORDER BY COUNT(*) DESC") || !strings.Contains(s, "LIMIT 5") {
		t.Errorf("order/limit rendering: %q", s)
	}
}

func TestJoinPathString(t *testing.T) {
	jp := &JoinPath{
		Tables: []string{"actor", "starring", "movie"},
		Edges: []JoinEdge{
			{"starring", "aid", "actor", "aid"},
			{"starring", "mid", "movie", "mid"},
		},
	}
	s := jp.String()
	want := "actor JOIN starring ON starring.aid = actor.aid JOIN movie ON starring.mid = movie.mid"
	if s != want {
		t.Errorf("JoinPath.String() = %q, want %q", s, want)
	}
	if jp.Len() != 3 {
		t.Errorf("Len = %d", jp.Len())
	}
	if !jp.Contains("movie") || jp.Contains("director") {
		t.Error("Contains wrong")
	}
	var nilPath *JoinPath
	if nilPath.Len() != 0 || nilPath.String() != "?" {
		t.Error("nil path handling")
	}
}

func TestSelectItemString(t *testing.T) {
	si := SelectItem{Agg: AggNone, AggSet: true, Col: ColumnRef{"t", "c"}, ColSet: true}
	if si.String() != "t.c" {
		t.Errorf("got %q", si.String())
	}
	si.Agg = AggCount
	if si.String() != "COUNT(t.c)" {
		t.Errorf("got %q", si.String())
	}
	si.AggSet = false
	if si.String() != "?(t.c)" {
		t.Errorf("got %q", si.String())
	}
}

func TestColumnRefString(t *testing.T) {
	if Star.String() != "*" {
		t.Error("star")
	}
	if (ColumnRef{}).String() != "?" {
		t.Error("zero ref")
	}
	if (ColumnRef{"t", "c"}).String() != "t.c" {
		t.Error("qualified ref")
	}
	if (ColumnRef{Column: "c"}).String() != "c" {
		t.Error("bare ref")
	}
}
