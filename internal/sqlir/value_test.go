package sqlir

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValueConstructors(t *testing.T) {
	if !Null().IsNull() {
		t.Error("Null() should be null")
	}
	if v := NewText("abc"); v.Kind != KindText || v.Text != "abc" {
		t.Errorf("NewText: got %+v", v)
	}
	if v := NewNumber(3.5); v.Kind != KindNumber || v.Num != 3.5 {
		t.Errorf("NewNumber: got %+v", v)
	}
	if v := NewInt(7); v.Kind != KindNumber || v.Num != 7 {
		t.Errorf("NewInt: got %+v", v)
	}
}

func TestValueType(t *testing.T) {
	cases := []struct {
		v    Value
		want Type
	}{
		{Null(), TypeUnknown},
		{NewText("x"), TypeText},
		{NewInt(1), TypeNumber},
	}
	for _, c := range cases {
		if got := c.v.Type(); got != c.want {
			t.Errorf("%v.Type() = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestValueEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{NewText("a"), NewText("a"), true},
		{NewText("a"), NewText("b"), false},
		{NewInt(1), NewInt(1), true},
		{NewInt(1), NewNumber(1.5), false},
		{Null(), Null(), true},
		{Null(), NewInt(0), false},
		{NewText("1"), NewInt(1), false},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("%v.Equal(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(1), 1},
		{NewInt(2), NewInt(2), 0},
		{NewText("a"), NewText("b"), -1},
		{NewText("b"), NewText("a"), 1},
		{Null(), NewInt(5), -1},       // null sorts first
		{NewText("a"), NewInt(5), -1}, // text kind < number kind
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("%v.Compare(%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareAntisymmetric(t *testing.T) {
	gen := func(r *rand.Rand) Value {
		switch r.Intn(3) {
		case 0:
			return Null()
		case 1:
			return NewNumber(float64(r.Intn(10)))
		default:
			return NewText(string(rune('a' + r.Intn(5))))
		}
	}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		a, b := gen(r), gen(r)
		if a.Compare(b) != -b.Compare(a) {
			t.Fatalf("Compare not antisymmetric for %v, %v", a, b)
		}
		if (a.Compare(b) == 0) != (b.Compare(a) == 0) {
			t.Fatalf("Compare zero not symmetric for %v, %v", a, b)
		}
	}
}

func TestLike(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h_l", false},
		{"hello", "%x%", false},
		{"hello", "%", true},
		{"", "%", true},
		{"", "_", false},
		{"Hello", "hello", true}, // case-insensitive
		{"abc", "a%c", true},
		{"ac", "a%c", true},
		{"abcdc", "a%c", true},
		{"abcd", "a%c", false},
	}
	for _, c := range cases {
		if got := NewText(c.s).Like(c.p); got != c.want {
			t.Errorf("%q LIKE %q = %v, want %v", c.s, c.p, got, c.want)
		}
	}
	if NewInt(5).Like("5") {
		t.Error("numbers should not match LIKE")
	}
	if Null().Like("%") {
		t.Error("NULL should not match LIKE")
	}
}

func TestLikePercentMatchesEverything(t *testing.T) {
	f := func(s string) bool { return NewText(s).Like("%") }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLikeExactSelfMatch(t *testing.T) {
	// A pattern with no wildcards matches exactly itself (case-folded).
	f := func(s string) bool {
		for _, r := range s {
			if r == '%' || r == '_' {
				return true // skip wildcard-bearing inputs
			}
		}
		return NewText(s).Like(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{NewText("ab"), "'ab'"},
		{NewText("a'b"), "'a''b'"},
		{NewInt(42), "42"},
		{NewNumber(2.5), "2.5"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestValueDisplay(t *testing.T) {
	if got := NewText("ab").Display(); got != "ab" {
		t.Errorf("Display = %q", got)
	}
	if got := NewInt(3).Display(); got != "3" {
		t.Errorf("Display = %q", got)
	}
	if got := Null().Display(); got != "NULL" {
		t.Errorf("Display = %q", got)
	}
}

func TestFormatNumber(t *testing.T) {
	cases := []struct {
		f    float64
		want string
	}{
		{0, "0"},
		{-3, "-3"},
		{1995, "1995"},
		{2.5, "2.5"},
	}
	for _, c := range cases {
		if got := FormatNumber(c.f); got != c.want {
			t.Errorf("FormatNumber(%v) = %q, want %q", c.f, got, c.want)
		}
	}
}

func TestOpEval(t *testing.T) {
	cases := []struct {
		op   Op
		l, r Value
		want bool
	}{
		{OpEq, NewInt(1), NewInt(1), true},
		{OpEq, NewInt(1), NewInt(2), false},
		{OpNe, NewInt(1), NewInt(2), true},
		{OpLt, NewInt(1), NewInt(2), true},
		{OpGt, NewInt(3), NewInt(2), true},
		{OpLe, NewInt(2), NewInt(2), true},
		{OpGe, NewInt(2), NewInt(3), false},
		{OpLike, NewText("forrest gump"), NewText("%gump%"), true},
		{OpEq, Null(), Null(), false}, // NULL comparisons are false
		{OpEq, Null(), NewInt(1), false},
		{OpLt, NewText("a"), NewInt(1), false}, // cross-kind ordering is false
	}
	for _, c := range cases {
		if got := c.op.Eval(c.l, c.r); got != c.want {
			t.Errorf("%v %v %v = %v, want %v", c.l, c.op, c.r, got, c.want)
		}
	}
}

func TestOpStrings(t *testing.T) {
	want := map[Op]string{
		OpEq: "=", OpNe: "!=", OpLt: "<", OpGt: ">",
		OpLe: "<=", OpGe: ">=", OpLike: "LIKE",
	}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), s)
		}
	}
}

func TestOpOrdering(t *testing.T) {
	for _, op := range []Op{OpLt, OpGt, OpLe, OpGe} {
		if !op.Ordering() {
			t.Errorf("%v should be ordering", op)
		}
	}
	for _, op := range []Op{OpEq, OpNe, OpLike} {
		if op.Ordering() {
			t.Errorf("%v should not be ordering", op)
		}
	}
}

func TestAggResultType(t *testing.T) {
	cases := []struct {
		a    AggFunc
		in   Type
		want Type
	}{
		{AggNone, TypeText, TypeText},
		{AggCount, TypeText, TypeNumber},
		{AggSum, TypeNumber, TypeNumber},
		{AggAvg, TypeNumber, TypeNumber},
		{AggMax, TypeNumber, TypeNumber},
		{AggMin, TypeText, TypeText},
	}
	for _, c := range cases {
		if got := c.a.ResultType(c.in); got != c.want {
			t.Errorf("%v.ResultType(%v) = %v, want %v", c.a, c.in, got, c.want)
		}
	}
}

func TestAggNumericOnly(t *testing.T) {
	for _, a := range []AggFunc{AggMin, AggMax, AggSum, AggAvg} {
		if !a.NumericOnly() {
			t.Errorf("%v should be numeric-only", a)
		}
	}
	for _, a := range []AggFunc{AggNone, AggCount} {
		if a.NumericOnly() {
			t.Errorf("%v should not be numeric-only", a)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindNull.String() != "null" || KindText.String() != "text" || KindNumber.String() != "number" {
		t.Error("kind names wrong")
	}
}

func TestTypeString(t *testing.T) {
	if TypeText.String() != "text" || TypeNumber.String() != "number" || TypeUnknown.String() != "unknown" {
		t.Error("type names wrong")
	}
}

func TestLogicalOpString(t *testing.T) {
	if LogicAnd.String() != "AND" || LogicOr.String() != "OR" {
		t.Error("logical op names wrong")
	}
}

func TestClauseStateString(t *testing.T) {
	if ClauseAbsent.String() != "absent" || ClausePending.String() != "pending" || ClausePresent.String() != "present" {
		t.Error("clause state names wrong")
	}
}
