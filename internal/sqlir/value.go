// Package sqlir defines the SQL intermediate representation shared by every
// layer of Duoquest: typed values, column references, and the partial-query
// AST (Definition 3.1 of the paper) in which any query element may be a
// placeholder awaiting an enumeration decision.
package sqlir

import (
	"fmt"
	"strconv"
	"strings"
)

// ValueKind discriminates the runtime kind of a Value.
type ValueKind uint8

const (
	// KindNull is the SQL NULL value.
	KindNull ValueKind = iota
	// KindText is a string value.
	KindText
	// KindNumber is a numeric value (stored as float64).
	KindNumber
)

// String returns a human-readable name for the kind.
func (k ValueKind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindText:
		return "text"
	case KindNumber:
		return "number"
	default:
		return fmt.Sprintf("ValueKind(%d)", uint8(k))
	}
}

// Value is a single SQL cell value. The zero Value is NULL.
type Value struct {
	Kind ValueKind
	Text string
	Num  float64
}

// Null returns the SQL NULL value.
func Null() Value { return Value{} }

// Text returns a text value.
func NewText(s string) Value { return Value{Kind: KindText, Text: s} }

// NewNumber returns a numeric value.
func NewNumber(f float64) Value { return Value{Kind: KindNumber, Num: f} }

// NewInt returns a numeric value from an int.
func NewInt(i int) Value { return Value{Kind: KindNumber, Num: float64(i)} }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// Type returns the column Type corresponding to the value's kind.
// NULL values report TypeUnknown.
func (v Value) Type() Type {
	switch v.Kind {
	case KindText:
		return TypeText
	case KindNumber:
		return TypeNumber
	default:
		return TypeUnknown
	}
}

// Equal reports whether two values are identical. NULL equals only NULL
// (three-valued logic is collapsed: comparisons involving NULL are false at
// the predicate layer; Equal here is structural equality used for grouping
// and result matching).
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KindNull:
		return true
	case KindText:
		return v.Text == o.Text
	case KindNumber:
		return v.Num == o.Num
	}
	return false
}

// Compare orders two values: -1 if v < o, 0 if equal, +1 if v > o.
// NULL sorts before everything; text and numbers are incomparable kinds and
// are ordered by kind (text < number) to give a deterministic total order.
func (v Value) Compare(o Value) int {
	if v.Kind != o.Kind {
		if v.Kind < o.Kind {
			return -1
		}
		return 1
	}
	switch v.Kind {
	case KindNull:
		return 0
	case KindText:
		return strings.Compare(v.Text, o.Text)
	case KindNumber:
		switch {
		case v.Num < o.Num:
			return -1
		case v.Num > o.Num:
			return 1
		default:
			return 0
		}
	}
	return 0
}

// Less reports whether v sorts strictly before o.
func (v Value) Less(o Value) bool { return v.Compare(o) < 0 }

// Like reports whether the value matches a SQL LIKE pattern with % and _
// wildcards. Matching is case-insensitive, as in SQLite's default collation.
// Only text values can match; NULL and numbers never match.
func (v Value) Like(pattern string) bool {
	if v.Kind != KindText {
		return false
	}
	return likeMatch(strings.ToLower(v.Text), strings.ToLower(pattern))
}

// likeMatch implements LIKE with % (any run) and _ (any single rune) using
// iterative backtracking over the last % seen.
func likeMatch(s, p string) bool {
	sr, pr := []rune(s), []rune(p)
	si, pi := 0, 0
	star, match := -1, 0
	for si < len(sr) {
		switch {
		case pi < len(pr) && (pr[pi] == '_' || pr[pi] == sr[si]):
			si++
			pi++
		case pi < len(pr) && pr[pi] == '%':
			star = pi
			match = si
			pi++
		case star != -1:
			pi = star + 1
			match++
			si = match
		default:
			return false
		}
	}
	for pi < len(pr) && pr[pi] == '%' {
		pi++
	}
	return pi == len(pr)
}

// String renders the value as a SQL literal.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindText:
		return "'" + strings.ReplaceAll(v.Text, "'", "''") + "'"
	case KindNumber:
		return FormatNumber(v.Num)
	default:
		return "?"
	}
}

// Display renders the value for human-facing tables (no quoting).
func (v Value) Display() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindText:
		return v.Text
	case KindNumber:
		return FormatNumber(v.Num)
	default:
		return "?"
	}
}

// FormatNumber renders a float64 the way SQL renders it: integers without a
// decimal point, everything else in minimal form.
func FormatNumber(f float64) string {
	if f == float64(int64(f)) {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}
