package sqlir

import (
	"sort"
	"strings"
)

// Canonical returns a normalized rendering of a complete query used for
// exact-match comparison (the simulation study's accuracy metric). Two
// queries are equivalent when they differ only in:
//
//   - predicate order within WHERE (AND/OR are commutative),
//   - GROUP BY column order,
//   - join order within the FROM clause (inner joins are commutative), and
//   - spelling of the same join edge in either direction.
//
// Projection order is significant: it determines the result columns that a
// TSQ's tuples are matched against.
func (q *Query) Canonical() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if q.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, s := range q.Select {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(s.String())
	}
	b.WriteString(" FROM ")
	b.WriteString(canonicalJoin(q.From))
	if q.WhereState == ClausePresent && len(q.Where.Preds) > 0 {
		b.WriteString(" WHERE ")
		preds := make([]string, len(q.Where.Preds))
		for i, p := range q.Where.Preds {
			preds[i] = p.String()
		}
		sort.Strings(preds)
		conj := " " + q.Where.Conj.String() + " "
		if len(preds) == 1 {
			conj = " "
		}
		b.WriteString(strings.Join(preds, conj))
	}
	if q.GroupByState == ClausePresent && len(q.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		cols := make([]string, len(q.GroupBy))
		for i, g := range q.GroupBy {
			cols[i] = g.String()
		}
		sort.Strings(cols)
		b.WriteString(strings.Join(cols, ", "))
		if q.HavingState == ClausePresent {
			b.WriteString(" HAVING ")
			b.WriteString(q.Having.String())
		}
	}
	if q.OrderByState == ClausePresent {
		b.WriteString(" ORDER BY ")
		b.WriteString(q.OrderBy.String())
	}
	if q.LimitSet && q.Limit > 0 {
		b.WriteString(" LIMIT ")
		b.WriteString(FormatNumber(float64(q.Limit)))
	}
	return b.String()
}

// canonicalJoin renders a join path as the sorted table set plus the sorted,
// direction-normalized edge set.
func canonicalJoin(j *JoinPath) string {
	if j == nil || len(j.Tables) == 0 {
		return "?"
	}
	tables := make([]string, len(j.Tables))
	copy(tables, j.Tables)
	sort.Strings(tables)
	edges := make([]string, len(j.Edges))
	for i, e := range j.Edges {
		a := e.FromTable + "." + e.FromColumn
		z := e.ToTable + "." + e.ToColumn
		if a > z {
			a, z = z, a
		}
		edges[i] = a + "=" + z
	}
	sort.Strings(edges)
	s := strings.Join(tables, ",")
	if len(edges) > 0 {
		s += " ON " + strings.Join(edges, "&")
	}
	return s
}

// Equivalent reports whether two complete queries are exact matches under
// Canonical normalization.
func Equivalent(a, b *Query) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.Canonical() == b.Canonical()
}
