package sqlir

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genQuery builds a random complete single-table query over a toy schema
// for property tests.
func genQuery(r *rand.Rand) *Query {
	cols := []ColumnRef{
		{"t", "a"}, {"t", "b"}, {"t", "c"}, {"t", "d"},
	}
	q := NewQuery()
	q.KWSet = true
	q.LimitSet = true
	q.SelectCountSet = true
	n := 1 + r.Intn(3)
	for i := 0; i < n; i++ {
		q.Select = append(q.Select, SelectItem{
			Agg: AggNone, AggSet: true, Col: cols[r.Intn(len(cols))], ColSet: true,
		})
	}
	q.From = &JoinPath{Tables: []string{"t"}}
	if r.Intn(2) == 0 {
		q.WhereState = ClausePresent
		q.Where.CountSet = true
		q.Where.ConjSet = true
		if r.Intn(2) == 0 {
			q.Where.Conj = LogicOr
		}
		np := 1 + r.Intn(3)
		for i := 0; i < np; i++ {
			q.Where.Preds = append(q.Where.Preds, Predicate{
				Col: cols[r.Intn(len(cols))], ColSet: true,
				Op: AllOps[r.Intn(len(AllOps))], OpSet: true,
				Val: NewInt(r.Intn(10)), ValSet: true,
			})
		}
	}
	return q
}

// Property: Canonical is invariant under predicate permutation.
func TestQuickCanonicalPermutationInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		q := genQuery(r)
		if len(q.Where.Preds) < 2 {
			continue
		}
		p := q.Clone()
		i, j := r.Intn(len(p.Where.Preds)), r.Intn(len(p.Where.Preds))
		p.Where.Preds[i], p.Where.Preds[j] = p.Where.Preds[j], p.Where.Preds[i]
		if q.Canonical() != p.Canonical() {
			t.Fatalf("permutation changed canonical:\n%s\n%s", q.Canonical(), p.Canonical())
		}
	}
}

// Property: Clone is canonically identical and structurally independent.
func TestQuickCloneFaithful(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for i := 0; i < 300; i++ {
		q := genQuery(r)
		c := q.Clone()
		if q.Canonical() != c.Canonical() {
			t.Fatal("clone differs canonically")
		}
		if !reflect.DeepEqual(q.String(), c.String()) {
			t.Fatal("clone renders differently")
		}
		// Mutating the clone must not affect the original.
		c.Select[0].Col = ColumnRef{"t", "zzz"}
		if q.Select[0].Col.Column == "zzz" {
			t.Fatal("clone shares select storage")
		}
	}
}

// Property: generated complete queries report Complete().
func TestQuickGeneratedQueriesComplete(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 300; i++ {
		if !genQuery(r).Complete() {
			t.Fatal("generated query incomplete")
		}
	}
}

// Property (testing/quick): Value round-trips through Display for text, and
// Equal is reflexive.
func TestQuickValueReflexive(t *testing.T) {
	f := func(s string, n float64) bool {
		tv, nv := NewText(s), NewNumber(n)
		return tv.Equal(tv) && nv.Equal(nv) && tv.Display() == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property (testing/quick): Compare is transitive-consistent on numbers.
func TestQuickNumberCompareConsistent(t *testing.T) {
	f := func(a, b float64) bool {
		va, vb := NewNumber(a), NewNumber(b)
		c := va.Compare(vb)
		switch {
		case a < b:
			return c == -1
		case a > b:
			return c == 1
		default:
			return c == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property (testing/quick): Op.Eval(OpEq) agrees with Value.Equal for
// same-kind values.
func TestQuickEqOpAgreesWithEqual(t *testing.T) {
	f := func(a, b float64) bool {
		va, vb := NewNumber(a), NewNumber(b)
		return OpEq.Eval(va, vb) == va.Equal(vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ReferencedTables never contains duplicates.
func TestQuickReferencedTablesDistinct(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	for i := 0; i < 300; i++ {
		q := genQuery(r)
		seen := map[string]bool{}
		for _, tb := range q.ReferencedTables() {
			if seen[tb] {
				t.Fatalf("duplicate table %s", tb)
			}
			seen[tb] = true
		}
	}
}
