package schemagraph

import (
	"strings"
	"testing"

	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/storage"
)

// chainSchema: a -> b -> c -> d linear chain plus a spur e off b.
func chainSchema() *storage.Schema {
	mk := func(name string) *storage.Table {
		return storage.NewTable(name, "id",
			storage.Column{Name: "id", Type: sqlir.TypeNumber},
			storage.Column{Name: "a_id", Type: sqlir.TypeNumber},
			storage.Column{Name: "b_id", Type: sqlir.TypeNumber},
			storage.Column{Name: "c_id", Type: sqlir.TypeNumber},
		)
	}
	s := storage.NewSchema(mk("a"), mk("b"), mk("c"), mk("d"), mk("e"))
	s.AddForeignKey("b", "a_id", "a", "id")
	s.AddForeignKey("c", "b_id", "b", "id")
	s.AddForeignKey("d", "c_id", "c", "id")
	s.AddForeignKey("e", "b_id", "b", "id")
	return s
}

// movieSchema: actor <- starring -> movie.
func movieSchema() *storage.Schema {
	actor := storage.NewTable("actor", "aid",
		storage.Column{Name: "aid", Type: sqlir.TypeNumber},
		storage.Column{Name: "name", Type: sqlir.TypeText},
	)
	movie := storage.NewTable("movie", "mid",
		storage.Column{Name: "mid", Type: sqlir.TypeNumber},
		storage.Column{Name: "title", Type: sqlir.TypeText},
	)
	starring := storage.NewTable("starring", "sid",
		storage.Column{Name: "sid", Type: sqlir.TypeNumber},
		storage.Column{Name: "aid", Type: sqlir.TypeNumber},
		storage.Column{Name: "mid", Type: sqlir.TypeNumber},
	)
	s := storage.NewSchema(actor, movie, starring)
	s.AddForeignKey("starring", "aid", "actor", "aid")
	s.AddForeignKey("starring", "mid", "movie", "mid")
	return s
}

func TestGraphCounts(t *testing.T) {
	g := New(chainSchema())
	if g.NumTables() != 5 || g.NumEdges() != 4 {
		t.Errorf("tables=%d edges=%d", g.NumTables(), g.NumEdges())
	}
}

func TestSteinerSingleTerminal(t *testing.T) {
	g := New(chainSchema())
	paths, err := g.Steiner([]string{"b"})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || paths[0].Len() != 1 || paths[0].Tables[0] != "b" {
		t.Errorf("paths = %v", paths)
	}
}

func TestSteinerAdjacent(t *testing.T) {
	g := New(chainSchema())
	paths, err := g.Steiner([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || paths[0].Len() != 2 || len(paths[0].Edges) != 1 {
		t.Fatalf("paths = %v", paths)
	}
}

// The classic Duoquest case: actor and movie connect only through starring,
// which must be added as a Steiner node.
func TestSteinerIntermediateNode(t *testing.T) {
	g := New(movieSchema())
	paths, err := g.Steiner([]string{"actor", "movie"})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("paths = %v", paths)
	}
	jp := paths[0]
	if jp.Len() != 3 || !jp.Contains("starring") {
		t.Errorf("path = %v", jp)
	}
	if len(jp.Edges) != 2 {
		t.Errorf("edges = %v", jp.Edges)
	}
}

func TestSteinerLongChain(t *testing.T) {
	g := New(chainSchema())
	paths, err := g.Steiner([]string{"a", "d"})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || paths[0].Len() != 4 {
		t.Fatalf("a-d should span 4 tables: %v", paths)
	}
	if paths[0].Contains("e") {
		t.Error("spur e must not be included")
	}
}

func TestSteinerDisconnected(t *testing.T) {
	s := chainSchema()
	iso := storage.NewTable("island", "id", storage.Column{Name: "id", Type: sqlir.TypeNumber})
	s2 := storage.NewSchema(append(s.Tables, iso)...)
	s2.ForeignKeys = s.ForeignKeys
	g := New(s2)
	if _, err := g.Steiner([]string{"a", "island"}); err == nil {
		t.Error("disconnected terminals should error")
	}
}

func TestSteinerUnknownTable(t *testing.T) {
	g := New(chainSchema())
	if _, err := g.Steiner([]string{"nope"}); err == nil {
		t.Error("unknown terminal should error")
	}
	if _, err := g.Steiner(nil); err == nil {
		t.Error("no terminals should error")
	}
}

// diamondSchema has two equal-length routes between a and d; both minimal
// trees should be returned.
func diamondSchema() *storage.Schema {
	mk := func(name string) *storage.Table {
		return storage.NewTable(name, "id",
			storage.Column{Name: "id", Type: sqlir.TypeNumber},
			storage.Column{Name: "a_id", Type: sqlir.TypeNumber},
			storage.Column{Name: "b_id", Type: sqlir.TypeNumber},
			storage.Column{Name: "c_id", Type: sqlir.TypeNumber},
		)
	}
	s := storage.NewSchema(mk("a"), mk("b"), mk("c"), mk("d"))
	s.AddForeignKey("b", "a_id", "a", "id")
	s.AddForeignKey("c", "a_id", "a", "id")
	s.AddForeignKey("d", "b_id", "b", "id")
	s.AddForeignKey("d", "c_id", "c", "id")
	return s
}

func TestSteinerAllMinimalTrees(t *testing.T) {
	g := New(diamondSchema())
	paths, err := g.Steiner([]string{"a", "d"})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("want both a-b-d and a-c-d, got %v", paths)
	}
	for _, jp := range paths {
		if jp.Len() != 3 {
			t.Errorf("non-minimal path: %v", jp)
		}
	}
}

func TestJoinPathsForEmptySet(t *testing.T) {
	g := New(movieSchema())
	paths, err := g.JoinPathsFor(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("every table should be a candidate: %v", paths)
	}
	for _, jp := range paths {
		if jp.Len() != 1 {
			t.Errorf("single-table path expected: %v", jp)
		}
	}
}

// TestJoinPathsExpansion reproduces Example 3.2: SELECT a.name with a
// starring join requires the expansion step.
func TestJoinPathsExpansion(t *testing.T) {
	g := New(movieSchema())
	paths, err := g.JoinPathsFor([]string{"actor"})
	if err != nil {
		t.Fatal(err)
	}
	// Expect: [actor], [actor+starring] (depth 1), and
	// [actor+starring+movie] (depth 2).
	if len(paths) != 3 {
		t.Fatalf("paths = %v", paths)
	}
	if paths[0].Len() != 1 || paths[0].Tables[0] != "actor" {
		t.Errorf("first path should be bare actor: %v", paths[0])
	}
	if paths[1].Len() != 2 || !paths[1].Contains("starring") {
		t.Errorf("depth-1 expansion should add starring: %v", paths[1])
	}
	if paths[2].Len() != 3 || !paths[2].Contains("movie") {
		t.Errorf("depth-2 expansion should add movie: %v", paths[2])
	}
	// Depth 1 limits the expansion.
	d1, err := g.JoinPathsForDepth([]string{"actor"}, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(d1) != 2 {
		t.Errorf("depth-1 paths = %v", d1)
	}
}

func TestJoinPathsSortedByLength(t *testing.T) {
	g := New(chainSchema())
	paths, err := g.JoinPathsFor([]string{"b"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(paths); i++ {
		if paths[i-1].Len() > paths[i].Len() {
			t.Fatalf("paths not sorted by length: %v", paths)
		}
	}
	// b has 3 incident edges (a-b, b-c, b-e): 1 base + 3 depth-1
	// expansions + 4 depth-2 + 3 depth-3 expansions.
	if len(paths) != 11 {
		t.Errorf("got %d paths: %v", len(paths), paths)
	}
}

func TestJoinPathsDeduped(t *testing.T) {
	g := New(diamondSchema())
	paths, err := g.JoinPathsFor([]string{"a", "d"})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, jp := range paths {
		sig := pathSignature(jp)
		if seen[sig] {
			t.Fatalf("duplicate path %v", jp)
		}
		seen[sig] = true
	}
}

func TestConstructJoinPathsFromQuery(t *testing.T) {
	g := New(movieSchema())
	q := sqlir.NewQuery()
	q.Select = []sqlir.SelectItem{
		{Agg: sqlir.AggNone, AggSet: true, Col: sqlir.ColumnRef{Table: "actor", Column: "name"}, ColSet: true},
		{Agg: sqlir.AggNone, AggSet: true, Col: sqlir.ColumnRef{Table: "movie", Column: "title"}, ColSet: true},
	}
	paths, err := g.ConstructJoinPaths(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 || !paths[0].Contains("starring") {
		t.Errorf("paths = %v", paths)
	}
}

// Property: every returned path is executable in order — each edge connects
// a new table to the already-joined prefix.
func TestPropPathsWellOrdered(t *testing.T) {
	for _, schema := range []*storage.Schema{chainSchema(), movieSchema(), diamondSchema()} {
		g := New(schema)
		for _, terms := range [][]string{
			{schema.Tables[0].Name},
			{schema.Tables[0].Name, schema.Tables[len(schema.Tables)-1].Name},
		} {
			paths, err := g.JoinPathsFor(terms)
			if err != nil {
				continue // disconnected combos are fine to skip
			}
			for _, jp := range paths {
				inPath := map[string]bool{jp.Tables[0]: true}
				count := 1
				for _, e := range jp.Edges {
					var nt string
					switch {
					case inPath[e.FromTable] && !inPath[e.ToTable]:
						nt = e.ToTable
					case inPath[e.ToTable] && !inPath[e.FromTable]:
						nt = e.FromTable
					default:
						t.Fatalf("edge %v not incremental in %v", e, jp)
					}
					inPath[nt] = true
					count++
				}
				if count != jp.Len() {
					t.Fatalf("path %v has %d tables but %d joined", jp, jp.Len(), count)
				}
				// Every terminal is spanned.
				for _, term := range terms {
					if !inPath[term] {
						t.Fatalf("path %v missing terminal %s", jp, term)
					}
				}
			}
		}
	}
}

// Property: Steiner trees are minimal — no returned tree is larger than the
// smallest.
func TestPropSteinerMinimal(t *testing.T) {
	g := New(chainSchema())
	paths, err := g.Steiner([]string{"a", "c", "e"})
	if err != nil {
		t.Fatal(err)
	}
	for _, jp := range paths {
		if jp.Len() != paths[0].Len() {
			t.Fatalf("non-uniform minimal trees: %v", paths)
		}
	}
	// a-c-e must route through b: 4 tables.
	if paths[0].Len() != 4 {
		t.Errorf("want 4-table tree, got %v", paths[0])
	}
}

func TestHeuristicPath(t *testing.T) {
	// Force the heuristic by calling it directly on the chain.
	g := New(chainSchema())
	term, err := g.terminalIDs([]string{"a", "d"})
	if err != nil {
		t.Fatal(err)
	}
	jp, err := g.steinerHeuristic(term)
	if err != nil {
		t.Fatal(err)
	}
	if jp.Len() != 4 {
		t.Errorf("heuristic path = %v", jp)
	}
	if !strings.Contains(jp.String(), "JOIN") {
		t.Errorf("path rendering = %q", jp.String())
	}
}

func TestHeuristicDisconnected(t *testing.T) {
	s := chainSchema()
	iso := storage.NewTable("island", "id", storage.Column{Name: "id", Type: sqlir.TypeNumber})
	s2 := storage.NewSchema(append(s.Tables, iso)...)
	s2.ForeignKeys = s.ForeignKeys
	g := New(s2)
	term, _ := g.terminalIDs([]string{"a", "island"})
	if _, err := g.steinerHeuristic(term); err == nil {
		t.Error("heuristic should report disconnection")
	}
}
