// Package schemagraph models the database schema as a graph whose nodes are
// tables and whose edges are foreign key → primary key relationships, and
// implements the paper's progressive join path construction (Algorithm 2):
// a Steiner tree over the tables referenced by a partial query, plus
// one-level foreign-key expansions to cover queries whose FROM clause uses
// more tables than are referenced elsewhere (Example 3.2).
package schemagraph

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/storage"
)

// Graph is the schema join graph. All edge weights are 1, as in the paper
// (weights could also be derived from a query log [2]).
type Graph struct {
	nodes []string       // sorted table names
	index map[string]int // table -> node id
	edges []edge         // all FK edges (undirected for connectivity)
	adj   [][]int        // node -> incident edge ids
}

// edge is one FK-PK relationship between two nodes.
type edge struct {
	a, b int // node ids: a = FK side, b = PK side
	fk   storage.ForeignKey
}

// New builds the join graph for a schema.
func New(schema *storage.Schema) *Graph {
	g := &Graph{index: map[string]int{}}
	for _, t := range schema.Tables {
		g.nodes = append(g.nodes, t.Name)
	}
	sort.Strings(g.nodes)
	for i, n := range g.nodes {
		g.index[n] = i
	}
	g.adj = make([][]int, len(g.nodes))
	for _, fk := range schema.ForeignKeys {
		a, okA := g.index[fk.Table]
		b, okB := g.index[fk.RefTable]
		if !okA || !okB {
			continue
		}
		id := len(g.edges)
		g.edges = append(g.edges, edge{a: a, b: b, fk: fk})
		g.adj[a] = append(g.adj[a], id)
		if b != a {
			g.adj[b] = append(g.adj[b], id)
		}
	}
	return g
}

// NumTables returns the node count.
func (g *Graph) NumTables() int { return len(g.nodes) }

// NumEdges returns the FK edge count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// joinEdge converts an FK edge to the IR representation.
func (e edge) joinEdge() sqlir.JoinEdge {
	return sqlir.JoinEdge{
		FromTable:  e.fk.Table,
		FromColumn: e.fk.Column,
		ToTable:    e.fk.RefTable,
		ToColumn:   e.fk.RefColumn,
	}
}

// Steiner returns minimum-node connected subtrees spanning the terminal
// tables (unit edge weights make tree cost = node count - 1). All minimal
// node sets are returned, each as one spanning tree. The search is exact
// for schemas up to exactLimit tables and falls back to a shortest-path
// merge heuristic beyond that.
func (g *Graph) Steiner(terminals []string) ([]*sqlir.JoinPath, error) {
	const exactLimit = 18
	term, err := g.terminalIDs(terminals)
	if err != nil {
		return nil, err
	}
	if len(term) == 0 {
		return nil, fmt.Errorf("schemagraph: no terminals")
	}
	if len(term) == 1 {
		return []*sqlir.JoinPath{{Tables: []string{g.nodes[term[0]]}}}, nil
	}
	if len(g.nodes) <= exactLimit {
		return g.steinerExact(term)
	}
	jp, err := g.steinerHeuristic(term)
	if err != nil {
		return nil, err
	}
	return []*sqlir.JoinPath{jp}, nil
}

func (g *Graph) terminalIDs(terminals []string) ([]int, error) {
	seen := map[int]bool{}
	var ids []int
	for _, t := range terminals {
		id, ok := g.index[t]
		if !ok {
			return nil, fmt.Errorf("schemagraph: unknown table %q", t)
		}
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids, nil
}

// steinerExact enumerates node supersets of the terminals in increasing
// size and returns a spanning tree for every minimal connected superset.
func (g *Graph) steinerExact(term []int) ([]*sqlir.JoinPath, error) {
	n := len(g.nodes)
	termMask := 0
	for _, t := range term {
		termMask |= 1 << t
	}
	var optional []int
	for i := 0; i < n; i++ {
		if termMask&(1<<i) == 0 {
			optional = append(optional, i)
		}
	}
	// Enumerate optional-node subsets grouped by size.
	var found []*sqlir.JoinPath
	for extra := 0; extra <= len(optional); extra++ {
		masks := combinations(len(optional), extra)
		for _, m := range masks {
			mask := termMask
			for i, opt := range optional {
				if m&(1<<i) != 0 {
					mask |= 1 << opt
				}
			}
			if tree, ok := g.spanningTree(mask); ok {
				found = append(found, tree)
			}
		}
		if len(found) > 0 {
			break // minimal size reached; all same-size trees collected
		}
	}
	if len(found) == 0 {
		return nil, fmt.Errorf("schemagraph: terminals not connected: %v", names(g, term))
	}
	sortPaths(found)
	return found, nil
}

// combinations returns all bitmasks over n items with k bits set, in
// deterministic lexicographic order. n is bounded by exactLimit.
func combinations(n, k int) []int {
	if k == 0 {
		return []int{0}
	}
	if k > n {
		return nil
	}
	var out []int
	for m := 0; m < 1<<n; m++ {
		if bits.OnesCount(uint(m)) == k {
			out = append(out, m)
		}
	}
	return out
}

// spanningTree builds a deterministic spanning tree over the node set mask,
// returning false if the induced subgraph is disconnected.
func (g *Graph) spanningTree(mask int) (*sqlir.JoinPath, bool) {
	var nodesIn []int
	for i := 0; i < len(g.nodes); i++ {
		if mask&(1<<i) != 0 {
			nodesIn = append(nodesIn, i)
		}
	}
	if len(nodesIn) == 0 {
		return nil, false
	}
	start := nodesIn[0]
	visited := map[int]bool{start: true}
	jp := &sqlir.JoinPath{Tables: []string{g.nodes[start]}}
	frontier := []int{start}
	for len(frontier) > 0 {
		v := frontier[0]
		frontier = frontier[1:]
		for _, eid := range g.adj[v] {
			e := g.edges[eid]
			w := e.a
			if w == v {
				w = e.b
			}
			if mask&(1<<w) == 0 || visited[w] {
				continue
			}
			visited[w] = true
			jp.Tables = append(jp.Tables, g.nodes[w])
			jp.Edges = append(jp.Edges, e.joinEdge())
			frontier = append(frontier, w)
		}
	}
	if len(jp.Tables) != len(nodesIn) {
		return nil, false
	}
	return jp, true
}

// steinerHeuristic merges shortest paths from each terminal into a growing
// component (the classical 2-approximation), used for very large schemas.
func (g *Graph) steinerHeuristic(term []int) (*sqlir.JoinPath, error) {
	inTree := map[int]bool{term[0]: true}
	jp := &sqlir.JoinPath{Tables: []string{g.nodes[term[0]]}}
	for _, t := range term[1:] {
		if inTree[t] {
			continue
		}
		// BFS from t to the current tree.
		prev := map[int]int{t: -1}
		prevEdge := map[int]int{}
		queue := []int{t}
		reached := -1
		for len(queue) > 0 && reached < 0 {
			v := queue[0]
			queue = queue[1:]
			for _, eid := range g.adj[v] {
				e := g.edges[eid]
				w := e.a
				if w == v {
					w = e.b
				}
				if _, seen := prev[w]; seen {
					continue
				}
				prev[w] = v
				prevEdge[w] = eid
				if inTree[w] {
					reached = w
					break
				}
				queue = append(queue, w)
			}
		}
		if reached < 0 {
			return nil, fmt.Errorf("schemagraph: terminal %s not connected", g.nodes[t])
		}
		// Walk back from the tree to t, adding nodes and edges.
		for v := reached; prev[v] != -1; v = prev[v] {
			u := prev[v] // u is one step closer to t
			if !inTree[u] {
				inTree[u] = true
				jp.Tables = append(jp.Tables, g.nodes[u])
			}
			jp.Edges = append(jp.Edges, g.edges[prevEdge[v]].joinEdge())
		}
	}
	return normalizePath(g, jp)
}

// ConstructJoinPaths implements Algorithm 2 for a partial query: candidate
// join paths covering the tables referenced by its decided columns, plus
// one-level FK-PK expansions (Lines 10–12).
func (g *Graph) ConstructJoinPaths(q *sqlir.Query) ([]*sqlir.JoinPath, error) {
	return g.JoinPathsFor(q.ReferencedTables())
}

// JoinPathsFor returns candidate join paths for an explicit table set. With
// no tables, every table in the database is a candidate single-table path
// (Line 6: e.g. SELECT COUNT(*)). Expansion depth follows Algorithm 2's
// recursive AddJoin with a default depth of 3, which covers FROM clauses
// reaching an entity three FK hops beyond the projected tables (e.g.
// author→writes→publication→conference).
func (g *Graph) JoinPathsFor(tables []string) ([]*sqlir.JoinPath, error) {
	return g.JoinPathsForDepth(tables, 3, 96)
}

// JoinPathsForDepth is JoinPathsFor with explicit expansion depth and a cap
// on the number of returned paths.
func (g *Graph) JoinPathsForDepth(tables []string, depth, maxPaths int) ([]*sqlir.JoinPath, error) {
	if len(tables) == 0 {
		out := make([]*sqlir.JoinPath, len(g.nodes))
		for i, n := range g.nodes {
			out[i] = &sqlir.JoinPath{Tables: []string{n}}
		}
		return out, nil
	}
	base, err := g.Steiner(tables)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out []*sqlir.JoinPath
	add := func(jp *sqlir.JoinPath) bool {
		sig := pathSignature(jp)
		if seen[sig] {
			return false
		}
		seen[sig] = true
		out = append(out, jp)
		return true
	}
	for _, jp := range base {
		add(jp)
	}
	// Levels of expansion: add any FK edge from a path table to a table
	// outside the path (AddJoin in Algorithm 2, applied recursively).
	frontier := base
	for level := 0; level < depth && len(out) < maxPaths; level++ {
		var next []*sqlir.JoinPath
		for _, jp := range frontier {
			inPath := map[string]bool{}
			for _, t := range jp.Tables {
				inPath[t] = true
			}
			for _, e := range g.edges {
				ta, tb := g.nodes[e.a], g.nodes[e.b]
				var newTable string
				switch {
				case inPath[ta] && !inPath[tb]:
					newTable = tb
				case inPath[tb] && !inPath[ta]:
					newTable = ta
				default:
					continue
				}
				ext := &sqlir.JoinPath{
					Tables: append(append([]string{}, jp.Tables...), newTable),
					Edges:  append(append([]sqlir.JoinEdge{}, jp.Edges...), e.joinEdge()),
				}
				if add(ext) {
					next = append(next, ext)
				}
				if len(out) >= maxPaths {
					break
				}
			}
		}
		frontier = next
	}
	sortPaths(out)
	return out, nil
}

// normalizePath re-orders a path's edges so each edge attaches a new table
// (the executor's requirement), verifying connectivity.
func normalizePath(g *Graph, jp *sqlir.JoinPath) (*sqlir.JoinPath, error) {
	if len(jp.Tables) == 0 {
		return nil, fmt.Errorf("schemagraph: empty path")
	}
	out := &sqlir.JoinPath{Tables: []string{jp.Tables[0]}}
	inPath := map[string]bool{jp.Tables[0]: true}
	remaining := append([]sqlir.JoinEdge{}, jp.Edges...)
	for len(remaining) > 0 {
		progressed := false
		for i, e := range remaining {
			var nt string
			switch {
			case inPath[e.FromTable] && !inPath[e.ToTable]:
				nt = e.ToTable
			case inPath[e.ToTable] && !inPath[e.FromTable]:
				nt = e.FromTable
			case inPath[e.FromTable] && inPath[e.ToTable]:
				// Redundant edge (cycle); drop it.
				remaining = append(remaining[:i], remaining[i+1:]...)
				progressed = true
			default:
				continue
			}
			if nt != "" {
				inPath[nt] = true
				out.Tables = append(out.Tables, nt)
				out.Edges = append(out.Edges, e)
				remaining = append(remaining[:i], remaining[i+1:]...)
				progressed = true
			}
			break
		}
		if !progressed {
			return nil, fmt.Errorf("schemagraph: disconnected path")
		}
	}
	return out, nil
}

// pathSignature canonically identifies a path by its table and edge sets.
func pathSignature(jp *sqlir.JoinPath) string {
	tables := append([]string{}, jp.Tables...)
	sort.Strings(tables)
	edges := make([]string, len(jp.Edges))
	for i, e := range jp.Edges {
		a := e.FromTable + "." + e.FromColumn
		b := e.ToTable + "." + e.ToColumn
		if a > b {
			a, b = b, a
		}
		edges[i] = a + "=" + b
	}
	sort.Strings(edges)
	return strings.Join(tables, ",") + "|" + strings.Join(edges, "&")
}

// sortPaths orders paths by length then signature — the §3.3.4 tiebreaker
// (shorter join paths first) with a deterministic total order.
func sortPaths(paths []*sqlir.JoinPath) {
	sort.Slice(paths, func(i, j int) bool {
		if paths[i].Len() != paths[j].Len() {
			return paths[i].Len() < paths[j].Len()
		}
		return pathSignature(paths[i]) < pathSignature(paths[j])
	})
}

func names(g *Graph, ids []int) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = g.nodes[id]
	}
	return out
}
