package faultinject

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestDecideDeterministic proves the scheduling function is pure: the same
// (seed, site, index, rate) always yields the same decision, and two
// injectors with the same config produce identical sequential schedules.
func TestDecideDeterministic(t *testing.T) {
	for _, seed := range []int64{0, 1, 42, -7, 1 << 40} {
		for site := Site(0); site < numSites; site++ {
			for n := uint64(0); n < 512; n++ {
				a := Decide(seed, site, n, 0.25)
				b := Decide(seed, site, n, 0.25)
				if a != b {
					t.Fatalf("Decide(%d, %v, %d) not deterministic", seed, site, n)
				}
			}
		}
	}

	cfg := Config{Seed: 99, ProbeRate: 0.3, ProbeLatency: time.Nanosecond,
		VerifyErrRate: 0.2, CancelRate: 0.5, CancelAfter: time.Nanosecond}
	schedule := func() []bool {
		in := New(cfg)
		var out []bool
		for i := 0; i < 256; i++ {
			out = append(out, in.ProbeDelay() > 0)
			out = append(out, in.VerifyError() != nil)
			_, c := in.RequestCancel()
			out = append(out, c)
		}
		return out
	}
	a, b := schedule(), schedule()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed injectors diverge at decision %d", i)
		}
	}
}

// TestDecideSeedsDiffer sanity-checks that different seeds produce
// different schedules (the mixer is not degenerate).
func TestDecideSeedsDiffer(t *testing.T) {
	same := 0
	for n := uint64(0); n < 1024; n++ {
		if Decide(1, SiteProbe, n, 0.5) == Decide(2, SiteProbe, n, 0.5) {
			same++
		}
	}
	if same > 700 || same < 300 {
		t.Fatalf("seeds 1 and 2 agree on %d/1024 decisions; mixer looks degenerate", same)
	}
}

// TestRateBounds checks rate 0 never fires and rate 1 always fires, and
// that an intermediate rate lands near its expectation.
func TestRateBounds(t *testing.T) {
	fired := 0
	for n := uint64(0); n < 4096; n++ {
		if Decide(7, SiteVerify, n, 0) {
			t.Fatal("rate 0 fired")
		}
		if !Decide(7, SiteVerify, n, 1) {
			t.Fatal("rate 1 did not fire")
		}
		if Decide(7, SiteVerify, n, 0.25) {
			fired++
		}
	}
	if fired < 850 || fired > 1200 {
		t.Fatalf("rate 0.25 fired %d/4096 times; expected ~1024", fired)
	}
}

// TestContextCarrier checks With/From round-trips and that clean contexts
// stay clean.
func TestContextCarrier(t *testing.T) {
	in := New(Config{Seed: 1})
	ctx := With(context.Background(), in)
	if got := From(ctx); got != in {
		t.Fatalf("From returned %v, want the attached injector", got)
	}
	if got := From(context.Background()); got != nil {
		t.Fatalf("clean context returned injector %v", got)
	}
	if With(context.Background(), nil) != context.Background() {
		t.Fatal("With(nil) should be the identity")
	}
}

// TestGlobal checks the process-global carrier used by context-free seams.
func TestGlobal(t *testing.T) {
	in := New(Config{Seed: 3, IngestRate: 1, IngestStall: time.Nanosecond})
	SetGlobal(in)
	defer SetGlobal(nil)
	if Global() != in {
		t.Fatal("Global did not return the installed injector")
	}
	if d := Global().IngestStall(); d != time.Nanosecond {
		t.Fatalf("IngestStall = %v, want 1ns at rate 1", d)
	}
	SetGlobal(nil)
	if Global() != nil {
		t.Fatal("Global not cleared")
	}
}

// TestInjectedErrors checks the sentinel wrapping.
func TestInjectedErrors(t *testing.T) {
	in := New(Config{Seed: 5, VerifyErrRate: 1})
	err := in.VerifyError()
	if err == nil || !IsInjected(err) {
		t.Fatalf("VerifyError at rate 1 = %v; want injected error", err)
	}
	if IsInjected(errors.New("plain")) {
		t.Fatal("plain error misreported as injected")
	}
	if IsInjected(fmt.Errorf("wrap: %w", context.Canceled)) {
		t.Fatal("cancellation misreported as injected")
	}
}

// TestNilInjectorHooks checks every hook is a safe no-op on a nil receiver
// (the disabled fast path call sites rely on).
func TestNilInjectorHooks(t *testing.T) {
	var in *Injector
	if in.ProbeDelay() != 0 {
		t.Fatal("nil ProbeDelay fired")
	}
	if in.VerifyError() != nil {
		t.Fatal("nil VerifyError fired")
	}
	if _, ok := in.RequestCancel(); ok {
		t.Fatal("nil RequestCancel fired")
	}
	if in.IngestStall() != 0 {
		t.Fatal("nil IngestStall fired")
	}
}

// TestCountsConcurrent checks the counters are race-free and the total
// fault count matches the deterministic schedule's count, regardless of
// which goroutine drew which index.
func TestCountsConcurrent(t *testing.T) {
	const calls = 4096
	cfg := Config{Seed: 11, VerifyErrRate: 0.5}
	in := New(cfg)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < calls/8; i++ {
				in.VerifyError()
			}
		}()
	}
	wg.Wait()
	want := 0
	for n := uint64(0); n < calls; n++ {
		if Decide(cfg.Seed, SiteVerify, n, cfg.VerifyErrRate) {
			want++
		}
	}
	gotCalls, gotFaults := in.Counts(SiteVerify)
	if gotCalls != calls || gotFaults != uint64(want) {
		t.Fatalf("Counts = (%d, %d), want (%d, %d)", gotCalls, gotFaults, calls, want)
	}
}

// TestSleepHonoursCancel checks injected latency unwinds on cancellation.
func TestSleepHonoursCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	Sleep(ctx, time.Minute)
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("Sleep on cancelled ctx took %v", d)
	}
}
