// Package faultinject is a deterministic, seed-driven fault-injection
// layer for the execution stack. An Injector decides, per call site and per
// call index, whether a fault fires: injected per-probe latency in the
// streaming executor, injected errors at the verify seam, forced request
// cancellations at the service seam, and simulated ingest stalls in bulk
// loading. Decisions are a pure function of (seed, site, call index, rate),
// so the same seed always yields the same fault schedule — which is what
// lets the chaos harness assert that clean traffic interleaved with faulty
// traffic stays byte-identical to a fault-free run, and what makes a chaos
// failure replayable.
//
// Injection is opt-in per request: an Injector rides in the request
// context (With/From), so only requests explicitly marked faulty ever see a
// fault, and shared caches serving clean requests are never poisoned. Call
// sites without a context (storage bulk ingest) consult an optional
// process-global injector. When nothing is enabled — the production
// default — every hook is a single atomic load and the package costs
// nothing on the hot path.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// Site names one fault-injection seam.
type Site uint8

// The instrumented seams.
const (
	// SiteProbe fires inside the streaming executor, once per index probe.
	SiteProbe Site = iota
	// SiteVerify fires at the verifier's entry, once per Verify call.
	SiteVerify
	// SiteRequest fires at service admission, once per synthesis request.
	SiteRequest
	// SiteIngest fires in storage.BulkAppend, once per bulk batch.
	SiteIngest
	numSites
)

// String names the site.
func (s Site) String() string {
	switch s {
	case SiteProbe:
		return "probe"
	case SiteVerify:
		return "verify"
	case SiteRequest:
		return "request"
	case SiteIngest:
		return "ingest"
	default:
		return fmt.Sprintf("site(%d)", uint8(s))
	}
}

// ErrInjected is the sentinel all injected errors wrap. Downstream layers
// treat injected errors like cancellations for caching purposes: they are
// never memoized, so a fault against one request cannot poison the shared
// caches other requests borrow.
var ErrInjected = errors.New("faultinject: injected error")

// IsInjected reports whether err is (or wraps) an injected fault.
func IsInjected(err error) bool { return errors.Is(err, ErrInjected) }

// Config is one injector's deterministic fault plan. Rates are in [0, 1]:
// the fraction of calls at that site that fault. Zero-valued fields disable
// their fault class.
type Config struct {
	// Seed drives the whole schedule; same seed, same faults.
	Seed int64

	// ProbeRate/ProbeLatency: inject ProbeLatency of sleep into this
	// fraction of streaming-executor index probes (slow-disk/page-fault
	// simulation; stresses the cancellation checkpoints).
	ProbeRate    float64
	ProbeLatency time.Duration

	// VerifyErrRate: this fraction of Verify calls fail with an injected
	// error instead of verifying.
	VerifyErrRate float64

	// CancelRate/CancelAfter: this fraction of synthesis requests are
	// force-cancelled CancelAfter after admission (client-disconnect
	// simulation).
	CancelRate  float64
	CancelAfter time.Duration

	// IngestRate/IngestStall: this fraction of bulk-append batches sleep
	// IngestStall before appending (stalled-writer simulation).
	IngestRate  float64
	IngestStall time.Duration
}

// Injector is a live fault schedule: per-site call counters over a Config.
// It is safe for concurrent use; the counters are atomic, so under
// concurrency the schedule (which call indexes fault) is deterministic even
// though the assignment of indexes to goroutines is not.
type Injector struct {
	cfg      Config
	counters [numSites]atomic.Uint64
	fired    [numSites]atomic.Uint64
}

// New builds an injector over a config.
func New(cfg Config) *Injector { return &Injector{cfg: cfg} }

// Config returns the injector's fault plan.
func (in *Injector) Config() Config { return in.cfg }

// splitmix64 is the SplitMix64 finalizer: a cheap, high-quality bijective
// mixer, so consecutive call indexes decorrelate fully.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Decide is the pure scheduling function: whether call n at site under seed
// faults at the given rate. Exported so tests (and the chaos harness) can
// predict and replay a schedule without an Injector.
func Decide(seed int64, site Site, n uint64, rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	h := splitmix64(uint64(seed) ^ splitmix64(uint64(site)+1) ^ splitmix64(n))
	// 53 uniform bits → [0, 1).
	return float64(h>>11)/(1<<53) < rate
}

// fires advances site's call counter and reports whether this call faults.
func (in *Injector) fires(site Site, rate float64) bool {
	n := in.counters[site].Add(1) - 1
	if Decide(in.cfg.Seed, site, n, rate) {
		in.fired[site].Add(1)
		return true
	}
	return false
}

// Counts reports (calls, faults) seen at a site so far — the chaos
// harness's accounting of how much fault pressure a run actually applied.
func (in *Injector) Counts(site Site) (calls, faults uint64) {
	return in.counters[site].Load(), in.fired[site].Load()
}

// ProbeDelay returns the latency to inject into the current index probe
// (0 = none). The caller sleeps; the injector only schedules.
func (in *Injector) ProbeDelay() time.Duration {
	if in == nil || in.cfg.ProbeRate <= 0 || in.cfg.ProbeLatency <= 0 {
		return 0
	}
	if in.fires(SiteProbe, in.cfg.ProbeRate) {
		return in.cfg.ProbeLatency
	}
	return 0
}

// VerifyError returns an injected verification error, or nil.
func (in *Injector) VerifyError() error {
	if in == nil || in.cfg.VerifyErrRate <= 0 {
		return nil
	}
	if in.fires(SiteVerify, in.cfg.VerifyErrRate) {
		return fmt.Errorf("injected verify fault: %w", ErrInjected)
	}
	return nil
}

// RequestCancel reports whether the current request should be
// force-cancelled, and after what delay.
func (in *Injector) RequestCancel() (time.Duration, bool) {
	if in == nil || in.cfg.CancelRate <= 0 {
		return 0, false
	}
	if in.fires(SiteRequest, in.cfg.CancelRate) {
		return in.cfg.CancelAfter, true
	}
	return 0, false
}

// IngestStall returns the stall to inject into the current bulk-append
// batch (0 = none).
func (in *Injector) IngestStall() time.Duration {
	if in == nil || in.cfg.IngestRate <= 0 || in.cfg.IngestStall <= 0 {
		return 0
	}
	if in.fires(SiteIngest, in.cfg.IngestRate) {
		return in.cfg.IngestStall
	}
	return 0
}

// ctxKey keys the context carrier.
type ctxKey struct{}

// anyActive is the fast-path gate: it stays false until the first With or
// SetGlobal, so deployments that never inject pay one atomic load per hook.
var anyActive atomic.Bool

// globalInj is the process-global injector for seams without a context.
var globalInj atomic.Pointer[Injector]

// With marks a request faulty by attaching an injector to its context.
// Requests without one never see a context-scoped fault.
func With(ctx context.Context, in *Injector) context.Context {
	if in == nil {
		return ctx
	}
	anyActive.Store(true)
	return context.WithValue(ctx, ctxKey{}, in)
}

// From extracts the request's injector, nil when the request is clean (or
// injection has never been enabled in this process).
func From(ctx context.Context) *Injector {
	if !anyActive.Load() {
		return nil
	}
	in, _ := ctx.Value(ctxKey{}).(*Injector)
	return in
}

// SetGlobal installs (or, with nil, removes) the process-global injector
// consulted by context-free seams such as bulk ingest.
func SetGlobal(in *Injector) {
	if in != nil {
		anyActive.Store(true)
	}
	globalInj.Store(in)
}

// Global returns the process-global injector, nil when unset or injection
// has never been enabled.
func Global() *Injector {
	if !anyActive.Load() {
		return nil
	}
	return globalInj.Load()
}

// Sleep performs an injected delay, honouring ctx so a cancelled request
// does not serve out its injected latency.
func Sleep(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}
