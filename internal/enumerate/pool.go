package enumerate

import (
	"context"
	"errors"
	"sync"

	"github.com/duoquest/duoquest/internal/faultinject"
	"github.com/duoquest/duoquest/internal/sqlexec"
	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/verify"
)

// transientErr reports whether err reflects the request's fate —
// cancellation, deadline expiry, or an injected fault — rather than a real
// verification failure. Transient errors truncate the search into an
// anytime partial result instead of surfacing as errors.
func transientErr(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		faultinject.IsInjected(err)
}

// verifyJob is one candidate state handed to the pool. idx is the child's
// position within its expansion batch, so results arriving out of order can
// be reassembled into the sequential engine's processing order.
type verifyJob struct {
	idx int
	q   *sqlir.Query
	out chan<- verifyResult
}

// verifyResult is one verification outcome fed back to the search loop.
type verifyResult struct {
	idx       int
	out       verify.Outcome
	err       error
	cancelled bool
}

// verifyPool is a bounded pool of workers running TSQ verification
// concurrently. Ascending-cost cascading verification dominates GPQE
// wall-clock (§3.4), so it is the one stage worth fanning out; the priority
// queue and guidance scoring stay on the enumerator's goroutine to keep the
// paper's best-first order deterministic. A pool is bound to one Enumerate
// call and must be closed when the search ends.
type verifyPool struct {
	jobs chan verifyJob
	wg   sync.WaitGroup
}

// newVerifyPool starts n workers verifying against v. Workers exit when the
// pool is closed; a cancelled context makes them report cancellation
// instead of verifying, so a cancelled search drains quickly.
//
// When the context carries the engine's shared sqlexec.WorkerPool, each
// worker holds one of its tokens for the duration of a verification job
// (advisory, via TryAcquire — verification itself never blocks on the
// pool). A held token shrinks what the morsel fan-out inside that very
// verification can additionally recruit, so inter-state parallelism and
// intra-query morsel parallelism draw on one budget: with a full expansion
// batch in flight every token is held here and probes run sequentially;
// with a single state in flight its probes can fan out across the idle
// tokens — either way total parallelism stays capped at the engine's
// Workers setting.
func newVerifyPool(ctx context.Context, v *verify.Verifier, n int) *verifyPool {
	p := &verifyPool{jobs: make(chan verifyJob)}
	shared := sqlexec.PoolFrom(ctx)
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer p.wg.Done()
			for j := range p.jobs {
				if ctx.Err() != nil {
					j.out <- verifyResult{idx: j.idx, cancelled: true}
					continue
				}
				held := shared.TryAcquire()
				out, err := v.VerifyCtx(ctx, j.q)
				if held {
					shared.Release()
				}
				if transientErr(err) {
					// The request was cancelled (or faulted) mid-check: the
					// partial outcome is meaningless, report cancellation.
					j.out <- verifyResult{idx: j.idx, cancelled: true}
					continue
				}
				j.out <- verifyResult{idx: j.idx, out: out, err: err}
			}
		}()
	}
	return p
}

// verifyBatch fans one expansion's children out to the workers and collects
// the outcomes into a slice aligned with states — the reordering buffer that
// keeps emission order identical to the sequential engine. Children for
// which needVerify reports false are left as zero values and must not be
// consulted by the caller.
func (p *verifyPool) verifyBatch(states []*state, needVerify func(*state) bool) []verifyResult {
	results := make([]verifyResult, len(states))
	// Buffered to the batch size so workers never block feeding results
	// back while jobs are still being dispatched.
	resCh := make(chan verifyResult, len(states))
	dispatched := 0
	for i, s := range states {
		if !needVerify(s) {
			continue
		}
		p.jobs <- verifyJob{idx: i, q: s.q, out: resCh}
		dispatched++
	}
	for k := 0; k < dispatched; k++ {
		r := <-resCh
		results[r.idx] = r
	}
	return results
}

// close shuts the pool down and waits for all workers to exit.
func (p *verifyPool) close() {
	close(p.jobs)
	p.wg.Wait()
}
