package enumerate

import (
	"context"
	"sync/atomic"
	"testing"

	"github.com/duoquest/duoquest/internal/guidance"
	"github.com/duoquest/duoquest/internal/semrules"
	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/verify"
)

// poolStates builds n fresh root states (empty partial queries, which the
// cascade always passes).
func poolStates(n int) []*state {
	out := make([]*state, n)
	for i := range out {
		out[i] = &state{q: sqlir.NewQuery()}
	}
	return out
}

// TestPoolReorderSkipsUnverified: the reordering buffer leaves slots whose
// needVerify said no as zero values and fills every dispatched slot, in
// index alignment, regardless of worker completion order.
func TestPoolReorderSkipsUnverified(t *testing.T) {
	v := verify.New(movieDB(), semrules.Default(), nil, nil)
	pool := newVerifyPool(context.Background(), v, 4)
	defer pool.close()

	states := poolStates(16)
	for round := 0; round < 8; round++ {
		results := pool.verifyBatch(states, func(s *state) bool {
			return indexOf(states, s)%2 == 0
		})
		if len(results) != len(states) {
			t.Fatalf("got %d results for %d states", len(results), len(states))
		}
		for i, r := range results {
			if i%2 == 1 {
				if r.cancelled || r.err != nil || r.out.OK {
					t.Fatalf("slot %d was skipped but holds %+v", i, r)
				}
				continue
			}
			if r.cancelled || r.err != nil || !r.out.OK {
				t.Fatalf("slot %d: outcome %+v, want verified OK", i, r)
			}
		}
	}
}

func indexOf(states []*state, s *state) int {
	for i := range states {
		if states[i] == s {
			return i
		}
	}
	return -1
}

// TestPoolCancelMidDrain cancels the search context halfway through a
// batch's dispatch, while workers are already draining earlier jobs. Every
// dispatched slot must still come back — as a real outcome or as a
// cancellation — in index alignment, and close() must not deadlock on the
// partially drained queue.
func TestPoolCancelMidDrain(t *testing.T) {
	v := verify.New(movieDB(), semrules.Default(), nil, nil)
	ctx, cancel := context.WithCancel(context.Background())
	pool := newVerifyPool(ctx, v, 3)
	defer pool.close()

	states := poolStates(24)
	var dispatched atomic.Int64
	results := pool.verifyBatch(states, func(*state) bool {
		if dispatched.Add(1) == int64(len(states)/2) {
			cancel()
		}
		return true
	})

	sawCancelled := false
	for i, r := range results {
		switch {
		case r.cancelled:
			sawCancelled = true
		case r.err == nil && r.out.OK:
			// verified before the cancellation landed
		default:
			t.Fatalf("slot %d: neither verified nor cancelled: %+v", i, r)
		}
	}
	if !sawCancelled {
		t.Skip("cancellation landed after the whole batch drained (scheduling)")
	}

	// A batch dispatched entirely after cancellation reports cancelled
	// everywhere: a cancelled search drains without touching the verifier.
	results = pool.verifyBatch(poolStates(6), func(*state) bool { return true })
	for i, r := range results {
		if !r.cancelled {
			t.Fatalf("slot %d after cancel: %+v, want cancelled", i, r)
		}
	}
}

// TestEnumerateEmitStopParallel: emit returning false stops the search with
// the pool still loaded, the engine returns exactly the candidates emitted
// so far, and the parallel engine's truncated stream equals the sequential
// engine's — the reorder buffer keeps emission order stable even when the
// caller cuts the search short.
func TestEnumerateEmitStopParallel(t *testing.T) {
	db := movieDB()
	nlq := "titles of movies before 1995"
	lits := []sqlir.Value{num(1995)}
	runWith := func(workers int) []string {
		v := verify.New(db, semrules.Default(), nil, lits)
		e := New(db, guidance.NewLexicalModel(), v, Options{
			Mode:      ModeGPQE,
			MaxStates: 20000,
			Workers:   workers,
		})
		var got []string
		res, err := e.Enumerate(context.Background(), nlq, lits, func(c Candidate) bool {
			got = append(got, c.Query.Canonical())
			return len(got) < 3
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 3 {
			t.Fatalf("workers=%d: emit saw %d candidates, want 3", workers, len(got))
		}
		if len(res.Candidates) != 3 {
			t.Fatalf("workers=%d: result has %d candidates, want the 3 emitted", workers, len(res.Candidates))
		}
		return got
	}
	seq := runWith(1)
	par := runWith(4)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("candidate %d diverges:\n sequential %s\n parallel   %s", i, seq[i], par[i])
		}
	}
}
