package enumerate

// Anytime-result properties: a search cut short by cancellation or deadline
// expiry returns the candidates verified so far as a deterministic prefix of
// what the untruncated run would have produced, with Truncated set — and the
// search's own bounds (MaxStates, MaxCandidates, emit stop) are NOT
// truncations.

import (
	"context"
	"testing"
	"time"

	"github.com/duoquest/duoquest/internal/guidance"
	"github.com/duoquest/duoquest/internal/semrules"
	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/sqlparse"
	"github.com/duoquest/duoquest/internal/verify"
)

// anytimeTask is the shared fixture: a literal-bearing search whose
// untruncated run produces a healthy stream of ranked candidates.
func anytimeTask(t *testing.T) (run func(ctx context.Context, workers int, emit func(Candidate) bool) *Result) {
	t.Helper()
	db := movieDB()
	gold := sqlparse.MustParse(db.Schema, "SELECT title FROM movie WHERE year < 1995")
	sketch := synthTSQ(t, db, gold)
	lits := []sqlir.Value{num(1995)}
	return func(ctx context.Context, workers int, emit func(Candidate) bool) *Result {
		v := verify.New(db, semrules.Default(), sketch, lits)
		e := New(db, guidance.NewLexicalModel(), v, Options{MaxCandidates: 20, Workers: workers})
		res, err := e.Enumerate(ctx, "movies before 1995", lits, emit)
		if err != nil {
			t.Fatalf("enumerate: %v", err)
		}
		return res
	}
}

func canonicals(res *Result) []string {
	out := make([]string, len(res.Candidates))
	for i, c := range res.Candidates {
		out[i] = c.Query.Canonical()
	}
	return out
}

// requirePrefix fails unless got is an exact ranked prefix of ref.
func requirePrefix(t *testing.T, ref, got []string, label string) {
	t.Helper()
	if len(got) > len(ref) {
		t.Fatalf("%s: %d candidates, reference has %d", label, len(got), len(ref))
	}
	for i := range got {
		if got[i] != ref[i] {
			t.Fatalf("%s: candidate %d diverges from reference:\n got %s\nwant %s",
				label, i+1, got[i], ref[i])
		}
	}
}

// TestCancelMidSearchTruncatedPrefix cancels the context from inside emit at
// every possible candidate rank and checks, deterministically, that the
// anytime result is a prefix of the untruncated run containing at least the
// candidates emitted before the cancel.
func TestCancelMidSearchTruncatedPrefix(t *testing.T) {
	run := anytimeTask(t)
	ref := run(context.Background(), 1, nil)
	if len(ref.Candidates) < 3 {
		t.Fatalf("reference run found only %d candidates", len(ref.Candidates))
	}
	refC := canonicals(ref)
	sawTruncated := false
	for k := 1; k < len(refC); k++ {
		ctx, cancel := context.WithCancel(context.Background())
		n := 0
		res := run(ctx, 1, func(Candidate) bool {
			n++
			if n == k {
				cancel()
			}
			return true
		})
		cancel()
		requirePrefix(t, refC, canonicals(res), "cancel")
		if len(res.Candidates) < k {
			t.Fatalf("cancel at rank %d: only %d candidates returned", k, len(res.Candidates))
		}
		// The cancel is noticed at the next checkpoint, so the same
		// expansion may legally emit a few more candidates first; but the
		// run must either be truncated or have reached the same natural
		// stopping point as the reference.
		if res.Truncated {
			sawTruncated = true
		} else if len(res.Candidates) != len(refC) {
			t.Fatalf("cancel at rank %d: %d candidates, neither truncated nor complete (%d)",
				k, len(res.Candidates), len(refC))
		}
		if res.Exhausted && res.Truncated {
			t.Fatalf("cancel at rank %d: both Exhausted and Truncated", k)
		}
	}
	if !sawTruncated {
		t.Fatal("no cancellation point produced a Truncated result")
	}
}

// TestDeadlineExpiryAnytimePrefix drives wall-clock deadlines through the
// context, the way the service layer's per-request budgets arrive. Wherever
// the deadline lands, the result must be err-free and a prefix of the
// untruncated run.
func TestDeadlineExpiryAnytimePrefix(t *testing.T) {
	run := anytimeTask(t)
	refC := canonicals(run(context.Background(), 1, nil))
	for _, budget := range []time.Duration{100 * time.Microsecond, time.Millisecond, 10 * time.Millisecond} {
		ctx, cancel := context.WithTimeout(context.Background(), budget)
		res := run(ctx, 1, nil)
		cancel()
		requirePrefix(t, refC, canonicals(res), budget.String())
		if !res.Truncated && len(res.Candidates) != len(refC) {
			t.Fatalf("budget %v: %d candidates, neither truncated nor complete (%d)",
				budget, len(res.Candidates), len(refC))
		}
	}
}

// TestCancelRacesPoolDrain races client cancellation against the parallel
// verification pool's drain from every angle the scheduler will give us; run
// under -race this is the data-race gate for the cancellation paths. The
// anytime prefix property must hold at every cancellation point.
func TestCancelRacesPoolDrain(t *testing.T) {
	run := anytimeTask(t)
	refC := canonicals(run(context.Background(), 4, nil))
	for i := 0; i < 24; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		delay := time.Duration(i) * 37 * time.Microsecond
		timer := time.AfterFunc(delay, cancel)
		res := run(ctx, 4, nil)
		timer.Stop()
		cancel()
		requirePrefix(t, refC, canonicals(res), "race")
		if !res.Truncated && len(res.Candidates) != len(refC) {
			t.Fatalf("iteration %d: %d candidates, neither truncated nor complete (%d)",
				i, len(res.Candidates), len(refC))
		}
	}
}

// TestBoundsAreNotTruncations: stopping at the search's own configured
// bounds is a complete answer, not an anytime degradation.
func TestBoundsAreNotTruncations(t *testing.T) {
	db := movieDB()
	v := verify.New(db, semrules.Default(), nil, nil)

	res, err := New(db, guidance.NewLexicalModel(), v, Options{MaxStates: 50}).
		Enumerate(context.Background(), "movies", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Error("MaxStates stop marked Truncated")
	}

	res, err = New(db, guidance.NewLexicalModel(), v, Options{MaxCandidates: 2}).
		Enumerate(context.Background(), "movie titles", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Error("MaxCandidates stop marked Truncated")
	}

	count := 0
	res, err = New(db, guidance.NewLexicalModel(), v, Options{MaxCandidates: 20}).
		Enumerate(context.Background(), "movie titles", nil, func(Candidate) bool {
			count++
			return count < 2
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Error("emit stop marked Truncated")
	}
}
