// Package enumerate implements guided partial query enumeration (GPQE,
// Algorithm 1): a best-first search over partial-query states ordered by
// the cumulative product of guidance-model softmax scores (§3.3.3), with
// progressive join path construction (§3.3.4) and ascending-cost cascading
// verification pruning branches as early as possible (§3.4).
//
// The package also provides the paper's two §5.4.3 ablations: ModeNoPQ
// verifies only complete queries (the naïve chaining approach of §3.5) and
// ModeNoGuide replaces best-first order with breadth-first enumeration that
// ignores confidence scores.
package enumerate

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"runtime"
	"time"

	"github.com/duoquest/duoquest/internal/guidance"
	"github.com/duoquest/duoquest/internal/schemagraph"
	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/storage"
	"github.com/duoquest/duoquest/internal/verify"
)

// Mode selects the enumeration variant.
type Mode uint8

const (
	// ModeGPQE is the full algorithm: guided order + partial-query pruning.
	ModeGPQE Mode = iota
	// ModeNoPQ keeps guided order but verifies only complete queries.
	ModeNoPQ
	// ModeNoGuide uses breadth-first order (simpler queries first, schema
	// order within a level) while keeping partial-query pruning.
	ModeNoGuide
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeNoPQ:
		return "NoPQ"
	case ModeNoGuide:
		return "NoGuide"
	default:
		return "GPQE"
	}
}

// Options configures a run.
type Options struct {
	Mode Mode
	// MaxCandidates stops the search after emitting this many candidates
	// (0 = unlimited).
	MaxCandidates int
	// MaxStates caps explored states as a safety net (default 500000).
	MaxStates int
	// Budget is the wall-clock budget (0 = none); the front-end's
	// pre-specified timeout (§4).
	Budget time.Duration
	// GeoMeanPriority orders states by the geometric mean of their module
	// softmax values instead of the product — the alternative confidence
	// definition §3.3.3 discusses (it removes the preference for shorter
	// queries at the cost of Property 1). Off by default, as in the paper.
	GeoMeanPriority bool
	// Workers bounds the verification worker pool. Each dequeued state's
	// children fan out to the pool for ascending-cost cascading
	// verification (§3.4, the enumeration hot path) while the priority
	// queue and guidance scoring stay single-threaded, so the emitted
	// candidate set and order are identical to the sequential engine's.
	// 0 defaults to runtime.GOMAXPROCS(0); 1 verifies inline.
	Workers int
}

// Candidate is one emitted complete query.
type Candidate struct {
	Query *sqlir.Query
	// Confidence is the cumulative product of module softmax values.
	Confidence float64
	// Rank is the 1-based emission order (highest confidence first under
	// GPQE's best-first policy).
	Rank int
	// Elapsed is the time from search start to emission.
	Elapsed time.Duration
	// States is the number of states explored before emission.
	States int
}

// Result summarises a finished search.
type Result struct {
	Candidates []Candidate
	States     int
	Exhausted  bool // the whole space was enumerated
	// Truncated marks an anytime partial result: the search was cut short by
	// cancellation, deadline expiry, or an injected fault, and Candidates
	// holds what was verified up to that point. Because candidates are
	// consumed in the reordering buffer's sequential order, a truncated
	// candidate list is always a prefix of the untruncated run's. MaxStates,
	// MaxCandidates, and emit-stopped searches are complete answers under
	// their configured bounds, not truncations.
	Truncated bool
	Elapsed   time.Duration
}

// state is one search node: a partial query plus its confidence.
type state struct {
	q       *sqlir.Query
	logConf float64
	joinLen int // §3.3.4 tiebreaker: shorter join paths first
	depth   int // decision depth, the NoGuide BFS key
	seq     int // FIFO tiebreaker for determinism
}

// stateQueue is the priority collection P of Algorithm 1.
type stateQueue struct {
	items   []*state
	noGuide bool
	geoMean bool
}

func (pq *stateQueue) Len() int { return len(pq.items) }

// priority returns the best-first key for a state.
func (pq *stateQueue) priority(s *state) float64 {
	if pq.geoMean && s.depth > 0 {
		return s.logConf / float64(s.depth)
	}
	return s.logConf
}

func (pq *stateQueue) Less(i, j int) bool {
	a, b := pq.items[i], pq.items[j]
	if pq.noGuide {
		if a.depth != b.depth {
			return a.depth < b.depth
		}
		return a.seq < b.seq
	}
	pa, pb := pq.priority(a), pq.priority(b)
	if pa != pb {
		return pa > pb
	}
	if a.joinLen != b.joinLen {
		return a.joinLen < b.joinLen
	}
	return a.seq < b.seq
}
func (pq *stateQueue) Swap(i, j int) { pq.items[i], pq.items[j] = pq.items[j], pq.items[i] }
func (pq *stateQueue) Push(x any)    { pq.items = append(pq.items, x.(*state)) }
func (pq *stateQueue) Pop() any {
	old := pq.items
	n := len(old)
	it := old[n-1]
	pq.items = old[:n-1]
	return it
}

// Enumerator runs GPQE for one synthesis task.
type Enumerator struct {
	db       *storage.Database
	graph    *schemagraph.Graph
	model    guidance.Model
	verifier *verify.Verifier
	opts     Options

	seq int
}

// New builds an enumerator. The verifier encapsulates the TSQ, literals, and
// semantic rules; pass a verifier built with a nil sketch for the NLI
// baseline.
func New(db *storage.Database, model guidance.Model, verifier *verify.Verifier, opts Options) *Enumerator {
	if opts.MaxStates <= 0 {
		opts.MaxStates = 500000
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	return &Enumerator{
		db:       db,
		graph:    schemagraph.New(db.Schema),
		model:    model,
		verifier: verifier,
		opts:     opts,
	}
}

// Enumerate runs Algorithm 1, invoking emit for each candidate query in
// ranked order. emit returning false stops the search early.
//
// Cancellation and the Budget deadline produce an anytime result, not an
// error: the returned Result carries the candidates verified so far (a
// deterministic prefix of the untruncated run) with Truncated set.
func (e *Enumerator) Enumerate(ctx context.Context, nlq string, literals []sqlir.Value, emit func(Candidate) bool) (*Result, error) {
	start := time.Now()
	if e.opts.Budget > 0 {
		// The budget rides the context so verification workers mid-scan see
		// the expiry at the executor's cancellation checkpoints instead of
		// running their state to completion.
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, start.Add(e.opts.Budget))
		defer cancel()
	}
	mctx := guidance.NewContextDB(nlq, literals, e.db, nil)

	pq := &stateQueue{noGuide: e.opts.Mode == ModeNoGuide, geoMean: e.opts.GeoMeanPriority}
	root := &state{q: sqlir.NewQuery(), logConf: 0}
	heap.Push(pq, root)

	// needVerify reports whether a child state runs the verification
	// cascade: always under GPQE/NoGuide; only complete queries under NoPQ.
	needVerify := func(c *state) bool {
		return e.opts.Mode != ModeNoPQ || c.q.Complete()
	}
	var pool *verifyPool
	if e.opts.Workers > 1 {
		pool = newVerifyPool(ctx, e.verifier, e.opts.Workers)
		defer pool.close()
	}

	res := &Result{}
	seen := map[string]bool{} // canonical dedup of emitted candidates
	emitted := 0

	// truncate finalizes the anytime partial result for a search cut short.
	truncate := func() (*Result, error) {
		res.Truncated = true
		res.Elapsed = time.Since(start)
		return res, nil
	}

	for pq.Len() > 0 {
		if res.States >= e.opts.MaxStates {
			return res, nil
		}
		select {
		case <-ctx.Done():
			return truncate()
		default:
		}

		p := heap.Pop(pq).(*state)
		res.States++

		children, err := e.nextStep(mctx, p)
		if err != nil {
			return res, err
		}
		// With a pool, the whole expansion fans out at once and the
		// reordering buffer restores child order; otherwise each child is
		// verified inline exactly as the sequential engine does. Either
		// way, results are consumed in child order below, so emitted
		// candidates and queue contents are identical in both modes.
		var batch []verifyResult
		if pool != nil && len(children) > 1 {
			batch = pool.verifyBatch(children, needVerify)
		}
		for i, c := range children {
			if needVerify(c) {
				var out verify.Outcome
				if batch != nil {
					r := batch[i]
					if r.cancelled {
						return truncate()
					}
					out, err = r.out, r.err
				} else {
					out, err = e.verifier.VerifyCtx(ctx, c.q)
				}
				if transientErr(err) {
					// The request died (or drew an injected fault) mid-
					// verification: degrade to the candidates already emitted.
					return truncate()
				}
				if err != nil {
					return res, err
				}
				if !out.OK {
					continue
				}
			}
			if c.q.Complete() {
				key := c.q.Canonical()
				if seen[key] {
					continue
				}
				seen[key] = true
				emitted++
				cand := Candidate{
					Query:      c.q,
					Confidence: math.Exp(c.logConf),
					Rank:       emitted,
					Elapsed:    time.Since(start),
					States:     res.States,
				}
				res.Candidates = append(res.Candidates, cand)
				if emit != nil && !emit(cand) {
					res.Elapsed = time.Since(start)
					return res, nil
				}
				if e.opts.MaxCandidates > 0 && emitted >= e.opts.MaxCandidates {
					res.Elapsed = time.Since(start)
					return res, nil
				}
			} else {
				heap.Push(pq, c)
			}
		}
	}
	res.Exhausted = true
	res.Elapsed = time.Since(start)
	return res, nil
}

// child clones the parent state and applies a decision with probability p.
func (e *Enumerator) child(parent *state, p float64, mutate func(q *sqlir.Query)) *state {
	q := parent.q.Clone()
	mutate(q)
	e.seq++
	lc := parent.logConf
	if p > 0 {
		lc += math.Log(p)
	} else {
		lc = math.Inf(-1)
	}
	jl := parent.joinLen
	if q.From != nil {
		jl = q.From.Len()
	}
	return &state{q: q, logConf: lc, joinLen: jl, depth: parent.depth + 1, seq: e.seq}
}

// nextStep is EnumNextStep (Algorithm 1, Line 5): it finds the next pending
// decision in module execution order (§3.3.1) and produces one child state
// per output class of the corresponding module.
func (e *Enumerator) nextStep(mctx *guidance.Context, p *state) ([]*state, error) {
	q := p.q
	ctx := mctx.WithQuery(q)
	uniform := e.opts.Mode == ModeNoGuide

	switch {
	case !q.KWSet:
		return e.kwChildren(ctx, p, uniform), nil

	case !q.SelectCountSet:
		return mapChildren(e, p, uniform, e.model.SelectCount(ctx), func(q *sqlir.Query, n int) {
			q.Select = make([]sqlir.SelectItem, n)
			q.SelectCountSet = true
		}), nil

	case firstUndecidedCol(q) >= 0:
		idx := firstUndecidedCol(q)
		return mapChildren(e, p, uniform, e.model.SelectColumn(ctx, idx), func(q *sqlir.Query, c sqlir.ColumnRef) {
			q.Select[idx].Col = c
			q.Select[idx].ColSet = true
		}), nil

	case firstUndecidedAgg(q) >= 0:
		idx := firstUndecidedAgg(q)
		return mapChildren(e, p, uniform, e.model.SelectAgg(ctx, idx, q.Select[idx].Col), func(q *sqlir.Query, a sqlir.AggFunc) {
			q.Select[idx].Agg = a
			q.Select[idx].AggSet = true
		}), nil

	case q.From == nil:
		return e.joinPathChildren(p)

	case q.WhereState == sqlir.ClausePending:
		return mapChildren(e, p, uniform, e.model.WhereCount(ctx), func(q *sqlir.Query, n int) {
			q.Where.Preds = make([]sqlir.Predicate, n)
			q.Where.CountSet = true
			q.WhereState = sqlir.ClausePresent
		}), nil

	case q.WhereState == sqlir.ClausePresent && len(q.Where.Preds) >= 2 && !q.Where.ConjSet:
		return mapChildren(e, p, uniform, e.model.WhereConj(ctx), func(q *sqlir.Query, c sqlir.LogicalOp) {
			q.Where.Conj = c
			q.Where.ConjSet = true
		}), nil

	case firstPredWithout(q, predColUnset) >= 0:
		idx := firstPredWithout(q, predColUnset)
		return mapChildren(e, p, uniform, e.model.WhereColumn(ctx, idx), func(q *sqlir.Query, c sqlir.ColumnRef) {
			q.Where.Preds[idx].Col = c
			q.Where.Preds[idx].ColSet = true
		}), nil

	case firstPredWithout(q, predOpUnset) >= 0:
		idx := firstPredWithout(q, predOpUnset)
		return mapChildren(e, p, uniform, e.model.WhereOp(ctx, q.Where.Preds[idx].Col), func(q *sqlir.Query, op sqlir.Op) {
			q.Where.Preds[idx].Op = op
			q.Where.Preds[idx].OpSet = true
		}), nil

	case firstPredWithout(q, predValUnset) >= 0:
		idx := firstPredWithout(q, predValUnset)
		pr := q.Where.Preds[idx]
		return mapChildren(e, p, uniform, e.model.WhereValue(ctx, pr.Col, pr.Op), func(q *sqlir.Query, v sqlir.Value) {
			q.Where.Preds[idx].Val = v
			q.Where.Preds[idx].ValSet = true
		}), nil

	case q.GroupByState == sqlir.ClausePending:
		// GROUP BY is determined by SQL semantics: every unaggregated
		// projection must be grouped. No unaggregated projections means
		// the branch has no valid grouping within the task scope.
		cols := unaggregatedCols(q)
		if len(cols) == 0 {
			return nil, nil
		}
		return []*state{e.child(p, 1, func(q *sqlir.Query) {
			q.GroupBy = cols
			q.GroupByState = sqlir.ClausePresent
			q.HavingState = sqlir.ClausePending
		})}, nil

	case q.GroupByState == sqlir.ClausePresent && q.HavingState == sqlir.ClausePending && !q.Having.AggSet:
		var out []*state
		for _, s := range e.model.HavingPresent(ctx) {
			prob := s.Prob
			if uniform {
				prob = 1
			}
			if s.Class {
				for _, ac := range e.model.HavingAggCol(ctx) {
					pac := ac.Prob
					if uniform {
						pac = 1
					}
					agg, col := ac.Class.Agg, ac.Class.Col
					out = append(out, e.child(p, prob*pac, func(q *sqlir.Query) {
						q.HavingState = sqlir.ClausePresent
						q.Having.Agg = agg
						q.Having.AggSet = true
						q.Having.Col = col
						q.Having.ColSet = true
					}))
				}
			} else {
				out = append(out, e.child(p, prob, func(q *sqlir.Query) {
					q.HavingState = sqlir.ClauseAbsent
				}))
			}
		}
		return out, nil

	case q.HavingState == sqlir.ClausePresent && !q.Having.OpSet:
		return mapChildren(e, p, uniform, e.model.HavingOp(ctx), func(q *sqlir.Query, op sqlir.Op) {
			q.Having.Op = op
			q.Having.OpSet = true
		}), nil

	case q.HavingState == sqlir.ClausePresent && !q.Having.ValSet:
		return mapChildren(e, p, uniform, e.model.HavingValue(ctx), func(q *sqlir.Query, v sqlir.Value) {
			q.Having.Val = v
			q.Having.ValSet = true
		}), nil

	case q.OrderByState == sqlir.ClausePending:
		return mapChildren(e, p, uniform, e.model.OrderKey(ctx), func(q *sqlir.Query, k guidance.AggCol) {
			q.OrderBy.Key = sqlir.OrderKey{Agg: k.Agg, Col: k.Col}
			q.OrderBy.KeySet = true
			q.OrderByState = sqlir.ClausePresent
		}), nil

	case q.OrderByState == sqlir.ClausePresent && !q.OrderBy.DirSet:
		return mapChildren(e, p, uniform, e.model.OrderDir(ctx), func(q *sqlir.Query, d guidance.DirLimit) {
			q.OrderBy.Desc = d.Desc
			q.OrderBy.DirSet = true
			q.Limit = d.Limit
			q.LimitSet = true
		}), nil
	}
	return nil, fmt.Errorf("enumerate: no pending decision for %s", q)
}

// kwChildren expands the KW module: one child per clause combination.
func (e *Enumerator) kwChildren(ctx *guidance.Context, p *state, uniform bool) []*state {
	var out []*state
	for _, s := range e.model.Keywords(ctx) {
		prob := s.Prob
		if uniform {
			prob = 1
		}
		ks := s.Class
		out = append(out, e.child(p, prob, func(q *sqlir.Query) {
			q.KWSet = true
			q.WhereState = stateIf(ks.Where)
			q.GroupByState = stateIf(ks.GroupBy)
			q.OrderByState = stateIf(ks.OrderBy)
			if !ks.OrderBy {
				// LIMIT is decided with ORDER BY direction; without
				// ORDER BY the query has no LIMIT.
				q.LimitSet = true
			}
		}))
	}
	return out
}

// pathPenalty discounts expansion tables beyond the minimal Steiner tree so
// the candidate stream is not flooded by semantically-superfluous join
// variants of the same logical query. The §3.3.4 length tie-breaker alone
// cannot separate them once deeper decisions differentiate confidence.
const pathPenalty = 0.45

// joinPathChildren expands progressive join path construction (Algorithm 2):
// one child per candidate path. The minimal paths keep the parent's
// confidence (as in the paper); each expansion table multiplies in
// pathPenalty, and path length remains the secondary tiebreaker.
func (e *Enumerator) joinPathChildren(p *state) ([]*state, error) {
	paths, err := e.graph.ConstructJoinPaths(p.q)
	if err != nil {
		// Disconnected column sets have no valid FROM clause: prune.
		return nil, nil
	}
	minLen := 0
	for i, jp := range paths {
		if i == 0 || jp.Len() < minLen {
			minLen = jp.Len()
		}
	}
	var out []*state
	for _, jp := range paths {
		jp := jp
		prob := math.Pow(pathPenalty, float64(jp.Len()-minLen))
		out = append(out, e.child(p, prob, func(q *sqlir.Query) {
			q.From = jp
		}))
	}
	return out, nil
}

// mapChildren turns a module distribution into child states.
func mapChildren[T any](e *Enumerator, p *state, uniform bool, scored []guidance.Scored[T], apply func(q *sqlir.Query, class T)) []*state {
	var out []*state
	for _, s := range scored {
		prob := s.Prob
		if uniform {
			prob = 1
		}
		class := s.Class
		out = append(out, e.child(p, prob, func(q *sqlir.Query) {
			apply(q, class)
		}))
	}
	return out
}

func stateIf(present bool) sqlir.ClauseState {
	if present {
		return sqlir.ClausePending
	}
	return sqlir.ClauseAbsent
}

func firstUndecidedCol(q *sqlir.Query) int {
	for i, s := range q.Select {
		if !s.ColSet {
			return i
		}
	}
	return -1
}

func firstUndecidedAgg(q *sqlir.Query) int {
	for i, s := range q.Select {
		if !s.AggSet {
			return i
		}
	}
	return -1
}

func predColUnset(p sqlir.Predicate) bool { return !p.ColSet }
func predOpUnset(p sqlir.Predicate) bool  { return !p.OpSet }
func predValUnset(p sqlir.Predicate) bool { return !p.ValSet }

func firstPredWithout(q *sqlir.Query, unset func(sqlir.Predicate) bool) int {
	if q.WhereState != sqlir.ClausePresent {
		return -1
	}
	for i, p := range q.Where.Preds {
		if unset(p) {
			return i
		}
	}
	return -1
}

// unaggregatedCols lists the unaggregated projected columns (the GROUP BY
// key mandated by SQL semantics).
func unaggregatedCols(q *sqlir.Query) []sqlir.ColumnRef {
	var out []sqlir.ColumnRef
	for _, s := range q.Select {
		if s.Complete() && s.Agg == sqlir.AggNone && !s.Col.IsStar() {
			out = append(out, s.Col)
		}
	}
	return out
}

// SchemaGraph exposes the enumerator's schema graph (used by the PBE
// baseline and tooling to share join path construction).
func (e *Enumerator) SchemaGraph() *schemagraph.Graph { return e.graph }

// VerifierStats exposes the verifier's per-stage counters.
func (e *Enumerator) VerifierStats() verify.Stats { return e.verifier.Stats() }
