package enumerate

import (
	"context"
	"testing"
	"time"

	"github.com/duoquest/duoquest/internal/guidance"
	"github.com/duoquest/duoquest/internal/semrules"
	"github.com/duoquest/duoquest/internal/sqlexec"
	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/sqlparse"
	"github.com/duoquest/duoquest/internal/storage"
	"github.com/duoquest/duoquest/internal/tsq"
	"github.com/duoquest/duoquest/internal/verify"
)

func text(s string) sqlir.Value { return sqlir.NewText(s) }
func num(f float64) sqlir.Value { return sqlir.NewNumber(f) }

func movieDB() *storage.Database {
	actor := storage.NewTable("actor", "aid",
		storage.Column{Name: "aid", Type: sqlir.TypeNumber},
		storage.Column{Name: "name", Type: sqlir.TypeText},
		storage.Column{Name: "gender", Type: sqlir.TypeText},
		storage.Column{Name: "birth_yr", Type: sqlir.TypeNumber},
	)
	movie := storage.NewTable("movie", "mid",
		storage.Column{Name: "mid", Type: sqlir.TypeNumber},
		storage.Column{Name: "title", Type: sqlir.TypeText},
		storage.Column{Name: "year", Type: sqlir.TypeNumber},
		storage.Column{Name: "revenue", Type: sqlir.TypeNumber},
	)
	starring := storage.NewTable("starring", "sid",
		storage.Column{Name: "sid", Type: sqlir.TypeNumber},
		storage.Column{Name: "aid", Type: sqlir.TypeNumber},
		storage.Column{Name: "mid", Type: sqlir.TypeNumber},
	)
	s := storage.NewSchema(actor, movie, starring)
	s.AddForeignKey("starring", "aid", "actor", "aid")
	s.AddForeignKey("starring", "mid", "movie", "mid")

	actor.MustInsert(num(1), text("Tom Hanks"), text("male"), num(1956))
	actor.MustInsert(num(2), text("Sandra Bullock"), text("female"), num(1964))
	actor.MustInsert(num(3), text("Brad Pitt"), text("male"), num(1963))

	movie.MustInsert(num(1), text("Forrest Gump"), num(1994), num(678))
	movie.MustInsert(num(2), text("Gravity"), num(2013), num(723))
	movie.MustInsert(num(3), text("Fight Club"), num(1999), num(101))
	movie.MustInsert(num(4), text("Cast Away"), num(2000), num(429))

	starring.MustInsert(num(1), num(1), num(1))
	starring.MustInsert(num(2), num(2), num(2))
	starring.MustInsert(num(3), num(3), num(3))
	starring.MustInsert(num(4), num(1), num(4))

	return storage.NewDatabase("movies", s)
}

// synthTSQ builds a Full TSQ from the gold query's result (§5.4.1): type
// annotations, up to two example tuples, τ and k from the gold query.
func synthTSQ(t *testing.T, db *storage.Database, gold *sqlir.Query) *tsq.TSQ {
	t.Helper()
	res, err := sqlexec.Execute(db, gold)
	if err != nil {
		t.Fatalf("gold exec: %v", err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("gold query has empty result")
	}
	sk := &tsq.TSQ{
		Types:  res.Types,
		Sorted: gold.OrderByState == sqlir.ClausePresent,
		Limit:  gold.Limit,
	}
	for i := 0; i < len(res.Rows) && i < 2; i++ {
		var tp tsq.Tuple
		for _, v := range res.Rows[i] {
			tp = append(tp, tsq.Exact(v))
		}
		sk.Tuples = append(sk.Tuples, tp)
	}
	return sk
}

// runTask enumerates with the given model/sketch and returns the rank of the
// gold query (0 = not found).
func runTask(t *testing.T, db *storage.Database, model guidance.Model, sketch *tsq.TSQ,
	nlq string, lits []sqlir.Value, gold *sqlir.Query, mode Mode) (int, *Result) {
	t.Helper()
	v := verify.New(db, semrules.Default(), sketch, lits)
	// 30s is a ceiling, not the expected runtime: searches stop at the gold
	// query or the candidate cap (well under a second normally; the slack
	// absorbs the -race slowdown on loaded runners).
	e := New(db, model, v, Options{Mode: mode, MaxCandidates: 100, Budget: 30 * time.Second})
	goldRank := 0
	res, err := e.Enumerate(context.Background(), nlq, lits, func(c Candidate) bool {
		if goldRank == 0 && sqlir.Equivalent(c.Query, gold) {
			goldRank = c.Rank
			return false
		}
		return true
	})
	if err != nil {
		t.Fatalf("enumerate: %v", err)
	}
	return goldRank, res
}

// TestOracleFindsGoldImmediately: with a zero-noise oracle, GPQE must emit
// the gold query at rank 1 for a variety of query shapes (completeness +
// ordering sanity).
func TestOracleFindsGoldImmediately(t *testing.T) {
	db := movieDB()
	tasks := []struct {
		nlq  string
		sql  string
		lits []sqlir.Value
	}{
		{"all movie titles", "SELECT title FROM movie", nil},
		{"how many movies are there", "SELECT COUNT(*) FROM movie", nil},
		{"titles of movies before 1995", "SELECT title FROM movie WHERE year < 1995", []sqlir.Value{num(1995)}},
		{"titles and years ordered by year", "SELECT title, year FROM movie ORDER BY year ASC", nil},
		{"movies before 1995 or after 2000",
			"SELECT title FROM movie WHERE year < 1995 OR year > 2000", []sqlir.Value{num(1995), num(2000)}},
		{"actors and number of movies each",
			"SELECT a.name, COUNT(*) FROM actor a JOIN starring s ON s.aid = a.aid GROUP BY a.name", nil},
		{"actors with more than 1 movie",
			"SELECT a.name FROM actor a JOIN starring s ON s.aid = a.aid GROUP BY a.name HAVING COUNT(*) > 1",
			[]sqlir.Value{num(1)}},
		{"top 2 movies by revenue",
			"SELECT title FROM movie ORDER BY revenue DESC LIMIT 2", []sqlir.Value{num(2)}},
		{"names of actors in Gravity",
			"SELECT a.name FROM actor a JOIN starring s ON s.aid = a.aid JOIN movie m ON s.mid = m.mid WHERE m.title = 'Gravity'",
			[]sqlir.Value{text("Gravity")}},
	}
	for _, task := range tasks {
		gold := sqlparse.MustParse(db.Schema, task.sql)
		sketch := synthTSQ(t, db, gold)
		model := guidance.NewOracleModel(gold, 0)
		rank, res := runTask(t, db, model, sketch, task.nlq, task.lits, gold, ModeGPQE)
		if rank != 1 {
			t.Errorf("%q: gold rank = %d (states=%d, candidates=%d), want 1",
				task.sql, rank, res.States, len(res.Candidates))
		}
	}
}

// TestSoundness: every emitted candidate satisfies the TSQ (the soundness
// guarantee of Table 1).
func TestSoundness(t *testing.T) {
	db := movieDB()
	gold := sqlparse.MustParse(db.Schema, "SELECT title, year FROM movie WHERE year > 2000")
	sketch := synthTSQ(t, db, gold)
	v := verify.New(db, semrules.Default(), sketch, []sqlir.Value{num(2000)})
	e := New(db, guidance.NewLexicalModel(), v, Options{MaxCandidates: 50, Budget: 5 * time.Second})
	res, err := e.Enumerate(context.Background(), "movies after 2000 with their years",
		[]sqlir.Value{num(2000)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) == 0 {
		t.Fatal("no candidates")
	}
	for _, c := range res.Candidates {
		r, err := sqlexec.Execute(db, c.Query)
		if err != nil {
			t.Fatalf("candidate %s: %v", c.Query, err)
		}
		if !sketch.Satisfies(r) {
			t.Errorf("unsound candidate emitted: %s", c.Query)
		}
	}
}

// TestTSQPrunesVsNLI: the dual-specification run must rank the gold query at
// least as high as the NLQ-only run, and typically strictly higher — the
// core claim of the paper.
func TestTSQPrunesVsNLI(t *testing.T) {
	db := movieDB()
	tasks := []struct {
		nlq  string
		sql  string
		lits []sqlir.Value
	}{
		{"show movies and actors and years from before 1995 and after 2000 from earliest to most recent",
			"SELECT m.title, a.name, m.year FROM actor a JOIN starring s ON s.aid = a.aid JOIN movie m ON s.mid = m.mid " +
				"WHERE m.year < 1995 OR m.year > 2000 ORDER BY m.year ASC",
			[]sqlir.Value{num(1995), num(2000)}},
		{"names of movies before 1995",
			"SELECT title FROM movie WHERE year < 1995", []sqlir.Value{num(1995)}},
	}
	for _, task := range tasks {
		gold := sqlparse.MustParse(db.Schema, task.sql)
		sketch := synthTSQ(t, db, gold)
		model := guidance.NewLexicalModel()
		dqRank, _ := runTask(t, db, model, sketch, task.nlq, task.lits, gold, ModeGPQE)
		nliRank, _ := runTask(t, db, model, nil, task.nlq, task.lits, gold, ModeGPQE)
		if dqRank == 0 {
			t.Errorf("%q: Duoquest did not find gold", task.sql)
			continue
		}
		if nliRank != 0 && dqRank > nliRank {
			t.Errorf("%q: Duoquest rank %d worse than NLI rank %d", task.sql, dqRank, nliRank)
		}
	}
}

// TestDeterminism: two identical runs produce identical candidate lists.
func TestDeterminism(t *testing.T) {
	db := movieDB()
	gold := sqlparse.MustParse(db.Schema, "SELECT title FROM movie WHERE year < 1995")
	sketch := synthTSQ(t, db, gold)
	lits := []sqlir.Value{num(1995)}
	run := func() []string {
		v := verify.New(db, semrules.Default(), sketch, lits)
		e := New(db, guidance.NewLexicalModel(), v, Options{MaxCandidates: 20, Budget: 5 * time.Second})
		res, err := e.Enumerate(context.Background(), "movies before 1995", lits, nil)
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, c := range res.Candidates {
			out = append(out, c.Query.Canonical())
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("candidate %d differs:\n%s\n%s", i, a[i], b[i])
		}
	}
}

// TestConfidenceMonotone: under GPQE (best-first on the product confidence),
// emitted candidates are in non-increasing confidence order.
func TestConfidenceMonotone(t *testing.T) {
	db := movieDB()
	gold := sqlparse.MustParse(db.Schema, "SELECT title FROM movie WHERE year < 1995")
	sketch := synthTSQ(t, db, gold)
	lits := []sqlir.Value{num(1995)}
	v := verify.New(db, semrules.Default(), sketch, lits)
	e := New(db, guidance.NewLexicalModel(), v, Options{MaxCandidates: 25, Budget: 5 * time.Second})
	res, err := e.Enumerate(context.Background(), "movies before 1995", lits, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Candidates); i++ {
		if res.Candidates[i].Confidence > res.Candidates[i-1].Confidence+1e-12 {
			t.Errorf("confidence increased at rank %d: %v > %v",
				i+1, res.Candidates[i].Confidence, res.Candidates[i-1].Confidence)
		}
	}
}

// TestNoPQExploresMoreStates: without partial pruning, reaching the gold
// query costs at least as many states.
func TestNoPQExploresMoreStates(t *testing.T) {
	db := movieDB()
	gold := sqlparse.MustParse(db.Schema,
		"SELECT m.title, a.name FROM actor a JOIN starring s ON s.aid = a.aid JOIN movie m ON s.mid = m.mid WHERE m.year < 1995")
	sketch := synthTSQ(t, db, gold)
	lits := []sqlir.Value{num(1995)}
	model := guidance.NewLexicalModel()
	_, gp := runTask(t, db, model, sketch, "movies and actor names before 1995", lits, gold, ModeGPQE)
	_, np := runTask(t, db, model, sketch, "movies and actor names before 1995", lits, gold, ModeNoPQ)
	if np.States < gp.States {
		t.Errorf("NoPQ states %d < GPQE states %d", np.States, gp.States)
	}
}

// TestNoGuideFindsGold: NoGuide explores the same space in BFS order, so it
// still finds a shallow gold query — just without confidence ranking.
func TestNoGuideFindsGold(t *testing.T) {
	db := movieDB()
	gold := sqlparse.MustParse(db.Schema, "SELECT title, year FROM movie")
	sketch := synthTSQ(t, db, gold)
	rank, _ := runTask(t, db, guidance.NewLexicalModel(), sketch, "movie titles and years", nil, gold, ModeNoGuide)
	if rank == 0 {
		t.Error("NoGuide should still find the gold query")
	}
}

// TestNoGuideDrownsOnDeepQueries: for a literal-bearing task the BFS order
// floods the candidate list with shallow spurious queries before the gold
// one — the behaviour Figure 12 measures. The guided run finds gold within
// the same candidate budget.
func TestNoGuideDrownsOnDeepQueries(t *testing.T) {
	db := movieDB()
	gold := sqlparse.MustParse(db.Schema, "SELECT title FROM movie WHERE year < 1995")
	sketch := synthTSQ(t, db, gold)
	lits := []sqlir.Value{num(1995)}
	guidedRank, _ := runTask(t, db, guidance.NewLexicalModel(), sketch, "movies before 1995", lits, gold, ModeGPQE)
	bfsRank, _ := runTask(t, db, guidance.NewLexicalModel(), sketch, "movies before 1995", lits, gold, ModeNoGuide)
	if guidedRank == 0 {
		t.Fatal("guided run should find gold")
	}
	if bfsRank != 0 && bfsRank <= guidedRank {
		t.Errorf("NoGuide rank %d should trail guided rank %d", bfsRank, guidedRank)
	}
}

// TestBudgetRespected: a tiny budget terminates promptly.
func TestBudgetRespected(t *testing.T) {
	db := movieDB()
	v := verify.New(db, semrules.Default(), nil, nil)
	e := New(db, guidance.NewLexicalModel(), v, Options{Budget: 10 * time.Millisecond})
	start := time.Now()
	_, err := e.Enumerate(context.Background(), "everything about everything", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("budget ignored")
	}
}

// TestContextCancellation stops the search.
func TestContextCancellation(t *testing.T) {
	db := movieDB()
	v := verify.New(db, semrules.Default(), nil, nil)
	e := New(db, guidance.NewLexicalModel(), v, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := e.Enumerate(ctx, "movies", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.States > 1 {
		t.Errorf("cancelled run explored %d states", res.States)
	}
}

// TestMaxStatesCap bounds exploration.
func TestMaxStatesCap(t *testing.T) {
	db := movieDB()
	v := verify.New(db, semrules.Default(), nil, nil)
	e := New(db, guidance.NewLexicalModel(), v, Options{MaxStates: 50})
	res, err := e.Enumerate(context.Background(), "movies", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.States > 50 {
		t.Errorf("states = %d exceeds cap", res.States)
	}
}

// TestEmitStop: returning false from emit stops the search.
func TestEmitStop(t *testing.T) {
	db := movieDB()
	v := verify.New(db, semrules.Default(), nil, nil)
	e := New(db, guidance.NewLexicalModel(), v, Options{Budget: 5 * time.Second})
	count := 0
	res, err := e.Enumerate(context.Background(), "movie titles", nil, func(c Candidate) bool {
		count++
		return count < 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 3 || len(res.Candidates) != 3 {
		t.Errorf("count = %d, candidates = %d", count, len(res.Candidates))
	}
}

// TestCandidatesDeduped: no two emitted candidates are canonically equal.
func TestCandidatesDeduped(t *testing.T) {
	db := movieDB()
	gold := sqlparse.MustParse(db.Schema, "SELECT title FROM movie WHERE year < 1995 OR year > 2000")
	sketch := synthTSQ(t, db, gold)
	lits := []sqlir.Value{num(1995), num(2000)}
	v := verify.New(db, semrules.Default(), sketch, lits)
	e := New(db, guidance.NewLexicalModel(), v, Options{MaxCandidates: 30, Budget: 5 * time.Second})
	res, err := e.Enumerate(context.Background(), "movies before 1995 or after 2000", lits, nil)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, c := range res.Candidates {
		k := c.Query.Canonical()
		if seen[k] {
			t.Errorf("duplicate candidate: %s", k)
		}
		seen[k] = true
	}
}

// TestExhaustiveSmallSpace: a tightly constrained TSQ on a tiny schema lets
// the enumerator exhaust the space.
func TestExhaustiveSmallSpace(t *testing.T) {
	items := storage.NewTable("items", "id",
		storage.Column{Name: "id", Type: sqlir.TypeNumber},
		storage.Column{Name: "label", Type: sqlir.TypeText},
	)
	items.MustInsert(num(1), text("a"))
	items.MustInsert(num(2), text("b"))
	db := storage.NewDatabase("tiny", storage.NewSchema(items))
	sketch := &tsq.TSQ{Types: []sqlir.Type{sqlir.TypeText}}
	v := verify.New(db, semrules.Default(), sketch, nil)
	e := New(db, guidance.NewLexicalModel(), v, Options{Budget: 5 * time.Second})
	res, err := e.Enumerate(context.Background(), "labels", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted {
		t.Errorf("small space should be exhausted (states=%d)", res.States)
	}
	if len(res.Candidates) == 0 {
		t.Error("no candidates found")
	}
}

// TestModeString names.
func TestModeString(t *testing.T) {
	if ModeGPQE.String() != "GPQE" || ModeNoPQ.String() != "NoPQ" || ModeNoGuide.String() != "NoGuide" {
		t.Error("mode names")
	}
}
