package enumerate

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/duoquest/duoquest/internal/guidance"
	"github.com/duoquest/duoquest/internal/semrules"
	"github.com/duoquest/duoquest/internal/sqlexec"
	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/sqlparse"
	"github.com/duoquest/duoquest/internal/tsq"
	"github.com/duoquest/duoquest/internal/verify"
)

// enumerateWith runs one search with the given worker count and renders the
// emitted candidates as "rank confidence canonical-sql" lines.
func enumerateWith(t *testing.T, workers int, mode Mode, sketch *tsq.TSQ,
	nlq string, lits []sqlir.Value, maxCand int) ([]string, *Result) {
	t.Helper()
	db := movieDB()
	v := verify.New(db, semrules.Default(), sketch, lits)
	// No wall-clock budget: termination is by candidate count or the state
	// cap, both deterministic, so sequential and parallel runs are exactly
	// comparable (a time budget would cut the faster run at a different
	// state count).
	e := New(db, guidance.NewLexicalModel(), v, Options{
		Mode:          mode,
		MaxCandidates: maxCand,
		MaxStates:     20000,
		Workers:       workers,
	})
	res, err := e.Enumerate(context.Background(), nlq, lits, nil)
	if err != nil {
		t.Fatalf("enumerate (workers=%d): %v", workers, err)
	}
	var out []string
	for _, c := range res.Candidates {
		out = append(out, fmt.Sprintf("%d %.12f %s", c.Rank, c.Confidence, c.Query.Canonical()))
	}
	return out, res
}

// TestParallelMatchesSequential: for every enumeration mode and a range of
// query shapes, the parallel engine emits exactly the candidate list of the
// sequential engine — same queries, same confidences, same ranks. This is
// the equivalence the worker pool's reordering buffer guarantees.
func TestParallelMatchesSequential(t *testing.T) {
	db := movieDB()
	tasks := []struct {
		nlq  string
		sql  string
		lits []sqlir.Value
	}{
		{"all movie titles", "SELECT title FROM movie", nil},
		{"titles of movies before 1995", "SELECT title FROM movie WHERE year < 1995", []sqlir.Value{num(1995)}},
		{"movies before 1995 or after 2000",
			"SELECT title FROM movie WHERE year < 1995 OR year > 2000", []sqlir.Value{num(1995), num(2000)}},
		{"actors and number of movies each",
			"SELECT a.name, COUNT(*) FROM actor a JOIN starring s ON s.aid = a.aid GROUP BY a.name", nil},
		{"top 2 movies by revenue",
			"SELECT title FROM movie ORDER BY revenue DESC LIMIT 2", []sqlir.Value{num(2)}},
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 4
	}
	for _, mode := range []Mode{ModeGPQE, ModeNoPQ, ModeNoGuide} {
		for _, task := range tasks {
			gold := sqlparse.MustParse(db.Schema, task.sql)
			sketch := synthTSQ(t, db, gold)
			seq, seqRes := enumerateWith(t, 1, mode, sketch, task.nlq, task.lits, 15)
			par, parRes := enumerateWith(t, workers, mode, sketch, task.nlq, task.lits, 15)
			if len(seq) != len(par) {
				t.Errorf("%s %q: %d sequential vs %d parallel candidates",
					mode, task.sql, len(seq), len(par))
				continue
			}
			for i := range seq {
				if seq[i] != par[i] {
					t.Errorf("%s %q: candidate %d differs:\nseq: %s\npar: %s",
						mode, task.sql, i, seq[i], par[i])
				}
			}
			if seqRes.States != parRes.States {
				t.Errorf("%s %q: states %d vs %d", mode, task.sql, seqRes.States, parRes.States)
			}
			if seqRes.Exhausted != parRes.Exhausted {
				t.Errorf("%s %q: exhausted %v vs %v", mode, task.sql, seqRes.Exhausted, parRes.Exhausted)
			}
		}
	}
}

// TestParallelNLIMode: equivalence also holds with no sketch at all (NLI
// baseline), where only the cheap no-database stages run.
func TestParallelNLIMode(t *testing.T) {
	lits := []sqlir.Value{num(1995)}
	seq, _ := enumerateWith(t, 1, ModeGPQE, nil, "movies before 1995", lits, 15)
	par, _ := enumerateWith(t, 8, ModeGPQE, nil, "movies before 1995", lits, 15)
	if len(seq) == 0 {
		t.Fatal("no candidates")
	}
	if len(seq) != len(par) {
		t.Fatalf("%d sequential vs %d parallel candidates", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Errorf("candidate %d differs:\nseq: %s\npar: %s", i, seq[i], par[i])
		}
	}
}

// TestParallelSoundness: every candidate emitted by the parallel engine
// still satisfies the TSQ (Table 1's soundness guarantee must survive the
// concurrency change).
func TestParallelSoundness(t *testing.T) {
	db := movieDB()
	gold := sqlparse.MustParse(db.Schema, "SELECT title, year FROM movie WHERE year > 2000")
	sketch := synthTSQ(t, db, gold)
	lits := []sqlir.Value{num(2000)}
	v := verify.New(db, semrules.Default(), sketch, lits)
	e := New(db, guidance.NewLexicalModel(), v, Options{
		MaxCandidates: 50, Budget: 10 * time.Second, Workers: 8,
	})
	res, err := e.Enumerate(context.Background(), "movies after 2000 with their years", lits, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) == 0 {
		t.Fatal("no candidates")
	}
	for _, c := range res.Candidates {
		r, err := sqlexec.Execute(db, c.Query)
		if err != nil {
			t.Fatalf("candidate %s: %v", c.Query, err)
		}
		if !sketch.Satisfies(r) {
			t.Errorf("unsound candidate emitted: %s", c.Query)
		}
	}
}

// TestParallelEmitStop: the emit callback still runs on the search
// goroutine and stopping early terminates the pool cleanly.
func TestParallelEmitStop(t *testing.T) {
	db := movieDB()
	v := verify.New(db, semrules.Default(), nil, nil)
	e := New(db, guidance.NewLexicalModel(), v, Options{Budget: 5 * time.Second, Workers: 8})
	count := 0
	res, err := e.Enumerate(context.Background(), "movie titles", nil, func(c Candidate) bool {
		count++
		return count < 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 3 || len(res.Candidates) != 3 {
		t.Errorf("count = %d, candidates = %d", count, len(res.Candidates))
	}
}

// TestParallelContextCancellation: a cancelled context stops a parallel
// search promptly and without leaking workers.
func TestParallelContextCancellation(t *testing.T) {
	db := movieDB()
	v := verify.New(db, semrules.Default(), nil, nil)
	e := New(db, guidance.NewLexicalModel(), v, Options{Workers: 8})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := e.Enumerate(ctx, "movies", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.States > 1 {
		t.Errorf("cancelled run explored %d states", res.States)
	}
}

// TestSharedVerifierConcurrentEnumerations: distinct enumerators sharing one
// verifier (and thus one join/memo cache) may run concurrently — the
// verifier's memos are the shared mutable state the pool leans on, so hammer
// them from several full searches at once. Run with -race to make this a
// data-race test.
func TestSharedVerifierConcurrentEnumerations(t *testing.T) {
	db := movieDB()
	gold := sqlparse.MustParse(db.Schema, "SELECT title FROM movie WHERE year < 1995")
	sketch := synthTSQ(t, db, gold)
	lits := []sqlir.Value{num(1995)}
	v := verify.New(db, semrules.Default(), sketch, lits)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := New(db, guidance.NewLexicalModel(), v, Options{
				MaxCandidates: 20, Budget: 10 * time.Second, Workers: 4,
			})
			if _, err := e.Enumerate(context.Background(), "movies before 1995", lits, nil); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if st := v.Stats(); st.Checked == 0 {
		t.Error("verifier saw no checks")
	}
}
