// Package verify implements the paper's ascending-cost cascading
// verification (Algorithm 3): a sequence of checks on partial queries
// ordered from cheapest (no database access) to most expensive (executing
// verification queries), so large branches of the search space are pruned
// before any database work is done.
//
// Stage order, as in Algorithm 3:
//
//	VerifyClauses      — sorting/limit flags vs the TSQ (no DB)
//	VerifySemantics    — Table 4 semantic rules (no DB)
//	VerifyColumnTypes  — projection types vs TSQ annotations (schema only)
//	VerifyByColumn     — per-column existence of example cells (cheap DB)
//	VerifyByRow        — per-tuple existence under the partial query (DB)
//	VerifyLiterals     — complete queries must use all NLQ literals
//	VerifyByOrder      — complete queries must satisfy the full TSQ
//	                     (ordering, distinctness, limit) by execution
package verify

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"

	"github.com/duoquest/duoquest/internal/faultinject"
	"github.com/duoquest/duoquest/internal/semrules"
	"github.com/duoquest/duoquest/internal/sqlexec"
	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/storage"
	"github.com/duoquest/duoquest/internal/tsq"
)

// Stage names a verification stage.
type Stage string

// Stages in ascending cost order.
const (
	StageClauses     Stage = "clauses"
	StageSemantics   Stage = "semantics"
	StageColumnTypes Stage = "column-types"
	StageByColumn    Stage = "by-column"
	StageByRow       Stage = "by-row"
	StageLiterals    Stage = "literals"
	StageByOrder     Stage = "by-order"
)

// Outcome reports a verification decision.
type Outcome struct {
	OK     bool
	Stage  Stage  // the stage that rejected (when !OK)
	Reason string // human-readable rejection reason
}

func pass() Outcome { return Outcome{OK: true} }

func fail(stage Stage, format string, args ...any) Outcome {
	return Outcome{OK: false, Stage: stage, Reason: fmt.Sprintf(format, args...)}
}

// Stats counts per-stage work for the cost-ordering analysis (§3.4). The
// executor-level counters report how much work the streaming pipeline's
// predicate pushdown and prefix-sharing JoinCache eliminate.
type Stats struct {
	Checked     int           // total Verify calls
	Rejected    map[Stage]int // rejections per stage
	ColumnCache int           // column-check cache hits
	DBQueries   int           // verification queries actually executed

	StreamedExists int // existence probes served by the streaming executor
	IndexHits      int // posting-list lookups served by persistent column indexes
	JoinPrefixHits int // joins materialized by extending a cached join-path prefix
}

// Verifier checks partial queries against a TSQ, the NLQ literals, and the
// semantic rule set. A Verifier is safe for concurrent use: the enumerator's
// verification worker pool calls Verify from many goroutines, sharing the
// column-wise, row-wise, and join memos (concurrent first checks of the same
// key share one database query). Create one per synthesis task — the rules,
// sketch, and literals are request state — but the memos themselves depend
// only on the database contents, so verifiers for the same database may
// share them through a Cache (NewWithCache): a later request re-asking a
// question an earlier request already answered pays no database work.
type Verifier struct {
	db       *storage.Database
	rules    *semrules.RuleSet
	sketch   *tsq.TSQ // nil disables TSQ checks (NLI mode)
	literals []sqlir.Value

	colCache *boolMemo // column-wise verification memo (shared via Cache)
	rowCache *boolMemo // row-wise verification memo (shared via Cache)
	joins    *sqlexec.JoinCache
	// base is the join cache's counter snapshot at verifier creation;
	// Stats reports the delta so a shared cache's counters from earlier
	// requests are not attributed to this one. Under concurrent requests
	// the delta also includes their overlapping work — the per-database
	// cumulative view lives in the service layer's stats.
	base sqlexec.PipelineStats

	statsMu sync.Mutex
	stats   Stats
}

// boolMemo memoizes a keyed boolean computation under fixed-size hashed
// keys (see keys.go — no per-lookup string building). Concurrent first
// lookups of a key share one computation: the loser of the map race blocks
// on the winner's entry lock instead of re-running the (possibly expensive
// database) check. A transient failure — the computing request was
// cancelled, expired, or drew an injected fault — is reported to its caller
// but never memoized, so a shared memo cannot replay one request's fate to
// later, healthy requests.
type boolMemo struct {
	mu   sync.Mutex
	m    map[memoKey]*boolEntry
	sigs map[memoKey]string // debug mode: canonical string per key
}

type boolEntry struct {
	mu   sync.Mutex
	done bool
	val  bool
	err  error
	deps []string // tables the answer reads; carries the entry across epochs
	// mono marks an answer that is monotone under append-only ingest: the
	// question is "does any row/value satisfy X" with no HAVING-style
	// aggregate equality, so once true it stays true in every later epoch —
	// a true entry carries across epochs even when its tables changed.
	mono bool
}

// transient reports whether err reflects one request's fate (cancellation,
// deadline expiry, injected fault) rather than a property of the database.
func transient(err error) bool {
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		faultinject.IsInjected(err)
}

// do returns the memoized value for key, computing it at most once across
// all callers. hit reports whether a previously computed entry answered the
// call. sig renders the pre-hash canonical string; it is only invoked when
// the debug collision cross-check is on. deps names the tables the answer
// reads; it is only invoked when a freshly computed entry is stored, and
// lets carryMemo move the entry across an epoch boundary when none of its
// tables changed — or, for monotone questions that answered true, even when
// they did.
func (bm *boolMemo) do(key memoKey, sig func() string, deps func() (tables []string, monotone bool), f func() (bool, error)) (val, hit bool, err error) {
	if memoKeyDebugEnabled() {
		bm.checkKeyCollision(key, sig())
	}
	bm.mu.Lock()
	if bm.m == nil {
		bm.m = map[memoKey]*boolEntry{}
	}
	e, ok := bm.m[key]
	if !ok {
		e = &boolEntry{}
		bm.m[key] = e
	}
	bm.mu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.done {
		return e.val, ok, e.err
	}
	val, err = f()
	if err != nil && transient(err) {
		// Leave the entry uncomputed for the next request.
		return false, false, err
	}
	e.val, e.err, e.done = val, err, true
	if deps != nil {
		e.deps, e.mono = deps()
	}
	return e.val, false, e.err
}

// carryMemo builds the next epoch's memo from a previous epoch's, copying
// every completed entry that provably still answers the same question:
//
//   - entries whose dependency tables resolve to the same frozen *Table in
//     both snapshots — the answer is a pure function of those tables'
//     contents, so it cannot differ; and
//   - monotone entries that answered true — under append-only ingest an
//     existing satisfying row never disappears, so the answer holds in
//     every later epoch no matter what was appended.
//
// Everything else (false answers over changed tables, HAVING-style
// aggregate checks, entries without recorded dependencies) restarts cold.
func carryMemo(db, prevDB *storage.Database, prev *boolMemo) *boolMemo {
	next := &boolMemo{}
	prev.mu.Lock()
	entries := make(map[memoKey]*boolEntry, len(prev.m))
	for k, e := range prev.m {
		entries[k] = e
	}
	prev.mu.Unlock()
	for k, e := range entries {
		e.mu.Lock()
		done, val, err, deps, mono := e.done, e.val, e.err, e.deps, e.mono
		e.mu.Unlock()
		if !done || err != nil || len(deps) == 0 {
			continue
		}
		carry := mono && val
		if !carry {
			carry = true
			for _, name := range deps {
				t := db.Table(name)
				if t == nil || t != prevDB.Table(name) {
					carry = false
					break
				}
			}
		}
		if !carry {
			continue
		}
		if next.m == nil {
			next.m = map[memoKey]*boolEntry{}
		}
		next.m[k] = &boolEntry{done: true, val: val, deps: deps, mono: mono}
	}
	return next
}

// Cache is the per-database-epoch shared verification state: the
// prefix-sharing join cache plus the column-wise and row-wise verification
// memos. Every memoized answer is a function of the database contents alone
// (the sketch and literals only choose which questions get asked), so one
// Cache is safely shared by all verifiers — and therefore all requests —
// bound to the same database. The cache assumes its database is an
// immutable view (the service layer builds one Cache per frozen epoch
// snapshot): memos are never invalidated, so a write to the live database
// can never evict another reader's warm answers — readers that want the new
// rows use a new snapshot's Cache.
type Cache struct {
	db    *storage.Database
	joins *sqlexec.JoinCache
	col   *boolMemo
	row   *boolMemo
}

// NewCache builds the shared verification state for a database (normally a
// frozen epoch snapshot; see the type comment).
func NewCache(db *storage.Database) *Cache {
	return &Cache{
		db:    db,
		joins: sqlexec.NewJoinCache(db),
		col:   &boolMemo{},
		row:   &boolMemo{},
	}
}

// NewCacheFrom builds the shared verification state for a new frozen epoch
// snapshot, carrying the previous epoch's warm state forward wherever it
// provably still holds: materialized joins over unchanged tables
// (sqlexec.NewJoinCacheFrom) and memoized column-/row-wise answers whose
// dependency tables are unchanged (carryMemo). An append touches one
// table, so everything not reading that table stays warm across the epoch
// boundary — a write costs readers only the changed table's state, never a
// fully cold cache.
func NewCacheFrom(db *storage.Database, prev *Cache) *Cache {
	if prev == nil {
		return NewCache(db)
	}
	return &Cache{
		db:    db,
		joins: sqlexec.NewJoinCacheFrom(db, prev.joins),
		col:   carryMemo(db, prev.db, prev.col),
		row:   carryMemo(db, prev.db, prev.row),
	}
}

// WarmFrom rebuilds the joins the previous epoch's cache had but this one
// could not carry forward (sqlexec.JoinCache.WarmFrom). Writers call it
// after publishing an epoch so readers never see a cold shard.
func (c *Cache) WarmFrom(ctx context.Context, prev *Cache) {
	if prev != nil {
		c.joins.WarmFrom(ctx, prev.joins)
	}
}

// Joins exposes the shared join cache (the service layer routes cached
// previews and its stats snapshots through it).
func (c *Cache) Joins() *sqlexec.JoinCache { return c.joins }

// handles returns the cache's memos. They live as long as the cache: the
// database underneath is an immutable snapshot, so they never go stale.
func (c *Cache) handles() (col, row *boolMemo) {
	return c.col, c.row
}

// New builds a verifier with private caches. sketch may be nil (no TSQ
// given); rules may be nil to disable semantic pruning; literals may be
// empty.
func New(db *storage.Database, rules *semrules.RuleSet, sketch *tsq.TSQ, literals []sqlir.Value) *Verifier {
	return NewWithCache(db, rules, sketch, literals, NewCache(db))
}

// NewWithCache builds a verifier borrowing a shared per-database Cache, so
// column-wise checks, row-wise checks, and join materializations are reused
// across every verifier created from the same Cache. The cache must have
// been built for db: memo keys do not encode database identity, so a
// mismatched pair would serve another database's answers.
func NewWithCache(db *storage.Database, rules *semrules.RuleSet, sketch *tsq.TSQ, literals []sqlir.Value, cache *Cache) *Verifier {
	if cache.db != db {
		panic("verify: cache was built for a different database")
	}
	col, row := cache.handles()
	return &Verifier{
		db:       db,
		rules:    rules,
		sketch:   sketch,
		literals: literals,
		colCache: col,
		rowCache: row,
		joins:    cache.joins,
		base:     cache.joins.Stats(),
		stats:    Stats{Rejected: map[Stage]int{}},
	}
}

// Stats returns a copy of the per-stage counters, folding in the executor
// pipeline counters from the join cache.
func (v *Verifier) Stats() Stats {
	v.statsMu.Lock()
	defer v.statsMu.Unlock()
	cp := v.stats
	cp.Rejected = map[Stage]int{}
	for k, n := range v.stats.Rejected {
		cp.Rejected[k] = n
	}
	ps := v.joins.Stats()
	cp.StreamedExists = int(ps.StreamedExists - v.base.StreamedExists)
	cp.IndexHits = int(ps.IndexHits() - v.base.IndexHits())
	cp.JoinPrefixHits = int(ps.PrefixHits - v.base.PrefixHits)
	return cp
}

// countDBQuery bumps the executed-verification-query counter.
func (v *Verifier) countDBQuery() {
	v.statsMu.Lock()
	v.stats.DBQueries++
	v.statsMu.Unlock()
}

// Verify runs the full cascade of Algorithm 3 on a partial query.
func (v *Verifier) Verify(q *sqlir.Query) (Outcome, error) {
	return v.VerifyCtx(context.Background(), q)
}

// VerifyCtx is Verify under a request context: the database-touching stages
// poll ctx through the executor's cancellation checkpoints and unwind with
// ctx.Err() when the request is cancelled or past its deadline.
func (v *Verifier) VerifyCtx(ctx context.Context, q *sqlir.Query) (Outcome, error) {
	v.statsMu.Lock()
	v.stats.Checked++
	v.statsMu.Unlock()
	if err := faultinject.From(ctx).VerifyError(); err != nil {
		return Outcome{}, err
	}
	out, err := v.verify(ctx, q)
	if err != nil {
		return out, err
	}
	if !out.OK {
		v.statsMu.Lock()
		v.stats.Rejected[out.Stage]++
		v.statsMu.Unlock()
	}
	return out, nil
}

func (v *Verifier) verify(ctx context.Context, q *sqlir.Query) (Outcome, error) {
	if out := v.verifyClauses(q); !out.OK {
		return out, nil
	}
	if out := v.verifySemantics(q); !out.OK {
		return out, nil
	}
	if out := v.verifyColumnTypes(q); !out.OK {
		return out, nil
	}
	out, err := v.verifyByColumn(ctx, q)
	if err != nil || !out.OK {
		return out, err
	}
	if v.canCheckRows(q) {
		out, err = v.verifyByRow(ctx, q)
		if err != nil || !out.OK {
			return out, err
		}
	}
	if q.Complete() {
		if out := v.verifyLiterals(q); !out.OK {
			return out, nil
		}
		out, err = v.verifyByOrder(ctx, q)
		if err != nil || !out.OK {
			return out, err
		}
	}
	return pass(), nil
}

// verifyClauses checks the sorting flag and limit against the TSQ (Example
// 3.3: a TSQ with τ=⊥ rejects any partial query carrying ORDER BY).
func (v *Verifier) verifyClauses(q *sqlir.Query) Outcome {
	if v.sketch == nil {
		return pass()
	}
	if !v.sketch.Sorted && q.OrderByState != sqlir.ClauseAbsent {
		return fail(StageClauses, "TSQ is unsorted but query has ORDER BY")
	}
	if v.sketch.Sorted && q.KWSet && q.OrderByState == sqlir.ClauseAbsent {
		return fail(StageClauses, "TSQ is sorted but query decided against ORDER BY")
	}
	if q.LimitSet {
		if v.sketch.Limit == 0 && q.Limit > 0 {
			return fail(StageClauses, "TSQ has no limit but query has LIMIT %d", q.Limit)
		}
		if v.sketch.Limit > 0 && q.Limit == 0 {
			return fail(StageClauses, "TSQ limits to %d rows but query has no LIMIT", v.sketch.Limit)
		}
		if v.sketch.Limit > 0 && q.Limit > v.sketch.Limit {
			return fail(StageClauses, "query LIMIT %d exceeds TSQ limit %d", q.Limit, v.sketch.Limit)
		}
	}
	return pass()
}

// verifySemantics applies the Table 4 rules.
func (v *Verifier) verifySemantics(q *sqlir.Query) Outcome {
	if v.rules == nil {
		return pass()
	}
	if viol := v.rules.Check(q, v.db.Schema); viol != nil {
		return fail(StageSemantics, "%s", viol.Error())
	}
	return pass()
}

// verifyColumnTypes compares decided projections against the TSQ type
// annotations (Example 3.4).
func (v *Verifier) verifyColumnTypes(q *sqlir.Query) Outcome {
	if v.sketch == nil {
		return pass()
	}
	w := v.sketch.Width()
	if w == 0 {
		return pass()
	}
	if q.SelectCountSet && len(q.Select) != w {
		return fail(StageColumnTypes, "query projects %d columns, TSQ has %d", len(q.Select), w)
	}
	if len(q.Select) > w {
		return fail(StageColumnTypes, "query already projects %d columns, TSQ has %d", len(q.Select), w)
	}
	if len(v.sketch.Types) == 0 {
		return pass()
	}
	for i, s := range q.Select {
		if !s.Complete() {
			continue
		}
		want := v.sketch.Types[i]
		if want == sqlir.TypeUnknown {
			continue
		}
		colType, ok := v.db.Schema.Resolve(s.Col)
		if !ok {
			return fail(StageColumnTypes, "unknown column %s", s.Col)
		}
		got := s.Agg.ResultType(colType)
		if got != want {
			return fail(StageColumnTypes, "projection %d is %s, TSQ wants %s", i, got, want)
		}
	}
	return pass()
}

// verifyByColumn checks each decided projection column-wise against the
// example tuples (Example 3.5): the cell value (or range) must occur in the
// projected column's own table. COUNT and SUM projections are skipped; AVG
// is checked against the column's min/max range.
func (v *Verifier) verifyByColumn(ctx context.Context, q *sqlir.Query) (Outcome, error) {
	if v.sketch == nil || len(v.sketch.Tuples) == 0 {
		return pass(), nil
	}
	for i, s := range q.Select {
		if !s.Complete() || s.Col.IsStar() {
			continue
		}
		switch s.Agg {
		case sqlir.AggCount, sqlir.AggSum:
			// No conclusion can be drawn for partial queries (§3.4).
			continue
		}
		for ti, tp := range v.sketch.Tuples {
			if i >= len(tp) {
				break
			}
			cell := tp[i]
			if cell.Kind == tsq.CellEmpty {
				continue
			}
			ok, err := v.columnCellCheck(ctx, s.Agg, s.Col, cell)
			if err != nil {
				return pass(), err
			}
			if !ok {
				return fail(StageByColumn,
					"tuple %d cell %d (%s) has no match in %s", ti, i, cell, s.Col), nil
			}
		}
	}
	return pass(), nil
}

// columnCellCheck answers "does any value of col satisfy cell", memoized
// under a hashed fixed-size key (the debug closure renders the
// pre-refactor string key for the collision cross-check).
func (v *Verifier) columnCellCheck(ctx context.Context, agg sqlir.AggFunc, col sqlir.ColumnRef, cell tsq.Cell) (bool, error) {
	key := columnCellKey(agg == sqlir.AggAvg, col, cell)
	sig := func() string { return fmt.Sprintf("%v|%s|%s", agg == sqlir.AggAvg, col, cell) }
	// Both forms are monotone under append-only ingest: a matching value
	// never disappears, and the AVG range check's [min, max] only widens.
	deps := func() ([]string, bool) { return []string{col.Table}, true }
	ok, hit, err := v.colCache.do(key, sig, deps, func() (bool, error) {
		if agg == sqlir.AggAvg {
			// The average lies within [min, max]: verification fails only
			// if the cell cannot intersect that range.
			st, serr := v.db.Stats(col)
			if serr != nil {
				return false, serr
			}
			return avgCellPossible(st, cell), nil
		}
		// Unaggregated, MIN and MAX projections produce exact column
		// values: run SELECT 1 FROM t WHERE <cell constraint> LIMIT 1.
		preds := cellPredicates(col, cell)
		v.countDBQuery()
		return v.joins.ExistsCtx(ctx, sqlexec.ExistsQuery{
			From:  &sqlir.JoinPath{Tables: []string{col.Table}},
			Conj:  sqlir.LogicAnd,
			Preds: preds,
		})
	})
	if err != nil {
		return false, err
	}
	if hit {
		v.statsMu.Lock()
		v.stats.ColumnCache++
		v.statsMu.Unlock()
	}
	return ok, nil
}

// avgCellPossible checks intersection of the cell with the column's
// [min, max] range.
func avgCellPossible(st storage.ColumnStats, cell tsq.Cell) bool {
	if st.NonNull == 0 {
		return false
	}
	if st.Min.Kind != sqlir.KindNumber {
		return false
	}
	lo, hi := st.Min.Num, st.Max.Num
	switch cell.Kind {
	case tsq.CellExact:
		if cell.Val.Kind != sqlir.KindNumber {
			return false
		}
		return cell.Val.Num >= lo && cell.Val.Num <= hi
	case tsq.CellRange:
		return cell.Hi.Num >= lo && cell.Lo.Num <= hi
	default:
		return true
	}
}

// cellPredicates renders a cell as WHERE predicates on col.
func cellPredicates(col sqlir.ColumnRef, cell tsq.Cell) []sqlir.Predicate {
	switch cell.Kind {
	case tsq.CellExact:
		return []sqlir.Predicate{{
			Col: col, ColSet: true, Op: sqlir.OpEq, OpSet: true,
			Val: cell.Val, ValSet: true,
		}}
	case tsq.CellRange:
		return []sqlir.Predicate{
			{Col: col, ColSet: true, Op: sqlir.OpGe, OpSet: true, Val: cell.Lo, ValSet: true},
			{Col: col, ColSet: true, Op: sqlir.OpLe, OpSet: true, Val: cell.Hi, ValSet: true},
		}
	default:
		return nil
	}
}

// canCheckRows enforces the precondition for row-wise verification: a join
// path must exist, and a query with aggregated projections needs completed
// WHERE and GROUP BY clauses, because filling their holes could change the
// aggregates (§3.4).
func (v *Verifier) canCheckRows(q *sqlir.Query) bool {
	if v.sketch == nil || len(v.sketch.Tuples) == 0 {
		return false
	}
	if q.From == nil {
		return false
	}
	// At least one decided projection must carry a checkable constraint.
	checkable := false
	for i, s := range q.Select {
		if !s.Complete() {
			continue
		}
		for _, tp := range v.sketch.Tuples {
			if i < len(tp) && tp[i].Kind != tsq.CellEmpty {
				checkable = true
			}
		}
	}
	if !checkable {
		return false
	}
	if len(q.AggregatedProjections()) > 0 {
		if q.WhereState == sqlir.ClausePending {
			return false
		}
		if q.WhereState == sqlir.ClausePresent && !q.Where.Complete() {
			return false
		}
		if q.GroupByState == sqlir.ClausePending {
			return false
		}
		if q.GroupByState == sqlir.ClausePresent && len(q.GroupBy) == 0 {
			return false
		}
	}
	return true
}

// verifyByRow runs one row-wise verification query per example tuple
// (Example 3.6): the cell constraints of all decided projections must be
// satisfied by a single joined row (or group). The query retains the partial
// query's own predicates whenever doing so is sound (AND semantics), and
// drops them otherwise so the check runs against a superset — a failure
// then still soundly prunes every completion.
func (v *Verifier) verifyByRow(ctx context.Context, q *sqlir.Query) (Outcome, error) {
	basePreds, baseConj := soundPredicates(q)
	var baseHavings []sqlir.HavingExpr
	if q.GroupByState == sqlir.ClausePresent && q.HavingState == sqlir.ClausePresent &&
		q.Having.Complete() {
		baseHavings = append(baseHavings, q.Having)
	}
	var groupBy []sqlir.ColumnRef
	if q.GroupByState == sqlir.ClausePresent {
		groupBy = q.GroupBy
	}
	hasAgg := len(q.AggregatedProjections()) > 0

	for ti, tp := range v.sketch.Tuples {
		eq := sqlexec.ExistsQuery{
			From:    q.From,
			Conj:    baseConj,
			Preds:   basePreds,
			GroupBy: groupBy,
		}
		eq.Havings = append(eq.Havings, baseHavings...)
		constrained := false
		for i, s := range q.Select {
			if !s.Complete() || i >= len(tp) {
				continue
			}
			cell := tp[i]
			if cell.Kind == tsq.CellEmpty {
				continue
			}
			if s.Agg == sqlir.AggNone {
				if !q.From.Contains(s.Col.Table) {
					return fail(StageByRow, "projection %s outside join path", s.Col), nil
				}
				eq.AndPreds = append(eq.AndPreds, cellPredicates(s.Col, cell)...)
				constrained = true
			} else {
				// Aggregated projections move to HAVING (RV2). Only
				// sound when grouping semantics are fixed.
				if !hasAgg {
					continue
				}
				eq.Havings = append(eq.Havings, cellHavings(s.Agg, s.Col, cell)...)
				constrained = true
			}
		}
		if !constrained {
			continue
		}
		// Sibling states (e.g. differing only in ORDER BY decisions) issue
		// identical row checks; memoize by hashed query signature.
		key := existsKey(eq)
		// Plain exists-over-join questions are monotone under append-only
		// ingest; HAVING conditions are not (a group's aggregate can move
		// off the checked value), so those entries never outlive their
		// tables.
		deps := func() ([]string, bool) { return existsDeps(eq), len(eq.Havings) == 0 }
		ok, _, err := v.rowCache.do(key, func() string { return existsSig(eq) }, deps, func() (bool, error) {
			v.countDBQuery()
			return v.joins.ExistsCtx(ctx, eq)
		})
		if err != nil {
			return pass(), err
		}
		if !ok {
			return fail(StageByRow, "tuple %d %s has no satisfying row", ti, tp), nil
		}
	}
	return pass(), nil
}

// existsDeps names every table an exists query reads — the join path plus
// any table a predicate, grouping column, or having condition references —
// deduplicated, for the row memo's epoch carry-forward.
func existsDeps(eq sqlexec.ExistsQuery) []string {
	seen := map[string]bool{}
	var deps []string
	add := func(t string) {
		if t != "" && !seen[t] {
			seen[t] = true
			deps = append(deps, t)
		}
	}
	if eq.From != nil {
		for _, t := range eq.From.Tables {
			add(t)
		}
	}
	for _, p := range eq.Preds {
		add(p.Col.Table)
	}
	for _, p := range eq.AndPreds {
		add(p.Col.Table)
	}
	for _, g := range eq.GroupBy {
		add(g.Table)
	}
	for _, h := range eq.Havings {
		add(h.Col.Table)
	}
	return deps
}

// soundPredicates returns the subset of the partial query's WHERE clause
// that can be conjoined with cell constraints without excluding any
// completion's results:
//
//   - complete WHERE: use it verbatim;
//   - incomplete with AND semantics: the decided predicates (adding the
//     remaining ones later can only shrink the result);
//   - incomplete with OR or undecided connective: nothing (a later OR arm
//     can only grow the result, so the sound superset drops the clause).
func soundPredicates(q *sqlir.Query) ([]sqlir.Predicate, sqlir.LogicalOp) {
	if q.WhereState != sqlir.ClausePresent {
		return nil, sqlir.LogicAnd
	}
	var decided []sqlir.Predicate
	for _, p := range q.Where.Preds {
		if p.Complete() {
			decided = append(decided, p)
		}
	}
	if q.Where.Complete() {
		conj := q.Where.Conj
		if len(q.Where.Preds) == 1 {
			conj = sqlir.LogicAnd
		}
		return decided, conj
	}
	andLike := (q.Where.ConjSet && q.Where.Conj == sqlir.LogicAnd) ||
		(q.Where.CountSet && len(q.Where.Preds) == 1)
	if andLike {
		return decided, sqlir.LogicAnd
	}
	return nil, sqlir.LogicAnd
}

// cellHavings renders a cell as HAVING constraints on agg(col).
func cellHavings(agg sqlir.AggFunc, col sqlir.ColumnRef, cell tsq.Cell) []sqlir.HavingExpr {
	mk := func(op sqlir.Op, val sqlir.Value) sqlir.HavingExpr {
		return sqlir.HavingExpr{
			Agg: agg, AggSet: true, Col: col, ColSet: true,
			Op: op, OpSet: true, Val: val, ValSet: true,
		}
	}
	switch cell.Kind {
	case tsq.CellExact:
		return []sqlir.HavingExpr{mk(sqlir.OpEq, cell.Val)}
	case tsq.CellRange:
		return []sqlir.HavingExpr{mk(sqlir.OpGe, cell.Lo), mk(sqlir.OpLe, cell.Hi)}
	default:
		return nil
	}
}

// existsSig renders an exists query as the pre-refactor canonical string
// key. The live memo keys are the fixed-size hashes of keys.go; this
// rendering is kept for the debug collision cross-check (SetDebugMemoKeys),
// which verifies old and new keys agree on equality.
func existsSig(eq sqlexec.ExistsQuery) string {
	var b strings.Builder
	if eq.From != nil {
		for _, t := range eq.From.Tables {
			b.WriteString(t)
			b.WriteByte(',')
		}
		for _, e := range eq.From.Edges {
			b.WriteString(e.String())
			b.WriteByte(',')
		}
	}
	b.WriteByte('|')
	b.WriteString(eq.Conj.String())
	for _, p := range eq.Preds {
		b.WriteString(p.String())
		b.WriteByte(';')
	}
	b.WriteByte('|')
	for _, p := range eq.AndPreds {
		b.WriteString(p.String())
		b.WriteByte(';')
	}
	b.WriteByte('|')
	for _, g := range eq.GroupBy {
		b.WriteString(g.String())
		b.WriteByte(';')
	}
	b.WriteByte('|')
	for _, h := range eq.Havings {
		b.WriteString(h.String())
		b.WriteByte(';')
	}
	return b.String()
}

// verifyLiterals requires a complete query to use every literal tagged in
// the NLQ.
func (v *Verifier) verifyLiterals(q *sqlir.Query) Outcome {
	used := q.Literals()
	for _, lit := range v.literals {
		found := false
		for _, u := range used {
			if u.Equal(lit) {
				found = true
				break
			}
		}
		if !found {
			return fail(StageLiterals, "literal %s unused", lit)
		}
	}
	return pass()
}

// verifyByOrder executes the complete query and checks full TSQ
// satisfaction — Definition 2.4's distinct matching, ordering (when τ=⊤ and
// at least two tuples exist), and row limit. This is the final soundness
// gate: every emitted candidate satisfies the TSQ.
func (v *Verifier) verifyByOrder(ctx context.Context, q *sqlir.Query) (Outcome, error) {
	if v.sketch == nil {
		return pass(), nil
	}
	v.countDBQuery()
	res, err := v.joins.ExecuteCtx(ctx, q)
	if err != nil {
		return pass(), err
	}
	if !v.sketch.Satisfies(res) {
		return fail(StageByOrder, "result does not satisfy the TSQ"), nil
	}
	return pass(), nil
}
