package verify

import (
	"testing"

	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/sqlparse"
	"github.com/duoquest/duoquest/internal/tsq"
)

// Verifiers created from one shared Cache reuse each other's column-wise
// answers (no repeated database work) and report only their own executor
// counters. The cache is bound to one epoch snapshot: an Insert into the
// live database never evicts its memos — a verifier on the next epoch's
// snapshot (with its own cache) sees the new row instead.
func TestSharedCacheAcrossVerifiers(t *testing.T) {
	live := movieDB()
	db := live.Snapshot()
	cache := NewCache(db)
	sketch := &tsq.TSQ{
		Types:  []sqlir.Type{sqlir.TypeText},
		Tuples: []tsq.Tuple{{tsq.Exact(text("Interstellar"))}},
	}
	q, err := sqlparse.Parse(db.Schema, "SELECT title FROM movie")
	if err != nil {
		t.Fatal(err)
	}

	v1 := NewWithCache(db, nil, sketch, nil, cache)
	out, err := v1.Verify(q)
	if err != nil {
		t.Fatal(err)
	}
	if out.OK || out.Stage != StageByColumn {
		t.Fatalf("v1 outcome = %+v, want by-column rejection", out)
	}
	if st := v1.Stats(); st.DBQueries == 0 {
		t.Error("v1 should have executed the column check itself")
	}

	// Second request, same database: the column-wise answer is served from
	// the shared memo — no new verification query.
	v2 := NewWithCache(db, nil, sketch, nil, cache)
	out, err = v2.Verify(q)
	if err != nil {
		t.Fatal(err)
	}
	if out.OK || out.Stage != StageByColumn {
		t.Fatalf("v2 outcome = %+v, want by-column rejection", out)
	}
	st := v2.Stats()
	if st.DBQueries != 0 {
		t.Errorf("v2 DBQueries = %d, want 0 (shared memo)", st.DBQueries)
	}
	if st.ColumnCache != 1 {
		t.Errorf("v2 ColumnCache = %d, want 1", st.ColumnCache)
	}

	// Insert the missing title into the live database: the pinned cache
	// keeps serving the old epoch's answer from its memo, and a verifier on
	// the next snapshot (with that snapshot's cache) accepts the query.
	live.Table("movie").MustInsert(num(9), text("Interstellar"), num(2014), num(677))
	v3 := NewWithCache(db, nil, sketch, nil, cache)
	out, err = v3.Verify(q)
	if err != nil {
		t.Fatal(err)
	}
	if out.OK || out.Stage != StageByColumn {
		t.Fatalf("pinned v3 outcome = %+v, want by-column rejection at the old epoch", out)
	}
	if st := v3.Stats(); st.DBQueries != 0 {
		t.Errorf("pinned v3 DBQueries = %d, want 0 (memo survived the insert)", st.DBQueries)
	}
	db2 := live.Snapshot()
	v4 := NewWithCache(db2, nil, sketch, nil, NewCache(db2))
	out, err = v4.Verify(q)
	if err != nil {
		t.Fatal(err)
	}
	if !out.OK {
		t.Fatalf("fresh-epoch v4 outcome = %+v, want pass after insert", out)
	}
}

// Stats deltas: a verifier borrowing a warm shared cache must not report the
// previous requests' executor work as its own.
func TestSharedCacheStatsDelta(t *testing.T) {
	db := movieDB()
	cache := NewCache(db)
	sketch := &tsq.TSQ{
		Types:  []sqlir.Type{sqlir.TypeText},
		Tuples: []tsq.Tuple{{tsq.Exact(text("Forrest Gump"))}},
	}
	q, err := sqlparse.Parse(db.Schema, "SELECT title FROM movie")
	if err != nil {
		t.Fatal(err)
	}
	v1 := NewWithCache(db, nil, sketch, nil, cache)
	if _, err := v1.Verify(q); err != nil {
		t.Fatal(err)
	}
	if st := v1.Stats(); st.StreamedExists == 0 {
		t.Skip("column check did not stream; delta assertion not applicable")
	}
	v2 := NewWithCache(db, nil, sketch, nil, cache)
	if st := v2.Stats(); st.StreamedExists != 0 || st.IndexHits != 0 || st.JoinPrefixHits != 0 {
		t.Errorf("fresh verifier on warm cache reports prior work: %+v", st)
	}
}
